// Snapshot-isolated serving: epoch publication, COW slab sharing, the
// pin/retire lifecycle, and readers racing a live writer — the
// concurrency-correctness layer of docs/SERVING.md. Every pinned-epoch
// count is cross-checked against the writer's maintained total and
// (sampled) against a from-scratch materialization recounted by the
// CPU baseline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/cpu_tc.h"
#include "bitmatrix/sliced_store.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "runtime/bank_pool.h"
#include "runtime/epoch_manager.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;
using graph::VertexId;
using runtime::EpochManager;
using runtime::EpochSnapshot;
using runtime::StreamSession;
using stream::EdgeDelta;

Graph SeedGraph() {
  // Two triangles sharing edge {1, 2} plus a detached edge.
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(4, 5);
  return std::move(b).Build();
}

/// Reader-side count of a pinned epoch straight off its COW matrix —
/// no writer state touched, exact for every orientation.
std::uint64_t CountPin(const EpochManager::Pin& pin) {
  return pin->matrix->AndPopcountAllEdges() /
         graph::CountMultiplier(pin->orientation);
}

/// The sequential-oracle path: rebuild the graph from the matrix alone
/// and recount with the CPU baseline.
std::uint64_t OracleCount(const EpochManager::Pin& pin) {
  return baseline::CountTrianglesReference(
      runtime::MaterializeEpochGraph(*pin));
}

// --- EpochManager lifecycle ------------------------------------------------

TEST(EpochManagerLifecycle, PublishStampsIncreasingEpochs) {
  EpochManager epochs;
  EXPECT_EQ(epochs.PinCurrent(), nullptr);
  EXPECT_EQ(epochs.current_epoch(), 0u);
  EXPECT_EQ(epochs.published(), 0u);

  EpochSnapshot first;
  first.matrix = std::make_shared<const bit::SlicedMatrix>();
  EXPECT_EQ(epochs.Publish(std::move(first)), 0u);
  EpochSnapshot second;
  second.matrix = std::make_shared<const bit::SlicedMatrix>();
  EXPECT_EQ(epochs.Publish(std::move(second)), 1u);

  EXPECT_EQ(epochs.current_epoch(), 1u);
  EXPECT_EQ(epochs.published(), 2u);
  const EpochManager::Pin pin = epochs.PinCurrent();
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->epoch, 1u);
}

TEST(EpochManagerLifecycle, RetirementIsSynchronousOnLastPinDrop) {
  EpochManager epochs;
  EpochSnapshot seed;
  seed.matrix = std::make_shared<const bit::SlicedMatrix>();
  (void)epochs.Publish(std::move(seed));

  // Two readers pin epoch 0; a publish supersedes it.
  EpochManager::Pin a = epochs.PinCurrent();
  EpochManager::Pin b = epochs.PinCurrent();
  EpochSnapshot next;
  next.matrix = std::make_shared<const bit::SlicedMatrix>();
  (void)epochs.Publish(std::move(next));
  EXPECT_EQ(epochs.live_epochs(), 2u);
  EXPECT_EQ(epochs.retired(), 0u);

  // First reader exits: epoch 0 stays live (b still holds it).
  a.reset();
  EXPECT_EQ(epochs.live_epochs(), 2u);
  EXPECT_EQ(epochs.retired(), 0u);

  // Last reader exits: retirement happens NOW, no grace period.
  b.reset();
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired(), 1u);
}

// --- StreamSession epoch publication ---------------------------------------

TEST(SnapshotIsolation, ConstructorPublishesEpochZero) {
  StreamSession session(SeedGraph());
  const EpochManager::Pin pin = session.PinEpoch();
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->epoch, 0u);
  EXPECT_EQ(pin->triangles, 2u);
  EXPECT_EQ(pin->num_vertices, 6u);
  EXPECT_EQ(pin->num_edges, 6u);
  EXPECT_EQ(CountPin(pin), 2u);
  EXPECT_EQ(OracleCount(pin), 2u);
  EXPECT_EQ(session.epochs().published(), 1u);
  EXPECT_EQ(session.epochs().live_epochs(), 1u);
}

TEST(SnapshotIsolation, PinnedEpochIsImmutableUnderLaterBatches) {
  StreamSession session(SeedGraph());
  const EpochManager::Pin before = session.PinEpoch();

  EdgeDelta delta;
  delta.Insert(0, 3);  // closes {0,1,3} and {0,2,3}
  const StreamSession::AppliedBatch applied = session.Apply(delta);
  EXPECT_EQ(applied.epoch, 1u);
  EXPECT_EQ(applied.batch.triangles, 4u);

  // The old pin still answers with its epoch's state...
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->triangles, 2u);
  EXPECT_EQ(CountPin(before), 2u);
  EXPECT_EQ(OracleCount(before), 2u);
  // ...while a fresh pin sees the published batch.
  const EpochManager::Pin after = session.PinEpoch();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_EQ(after->triangles, 4u);
  EXPECT_EQ(CountPin(after), 4u);
  EXPECT_EQ(OracleCount(after), 4u);
}

TEST(SnapshotIsolation, ReaderPinningMidPublishSeesPreviousEpoch) {
  // Deterministic "pin during publish": the hook runs with the batch
  // applied to writer state but the new epoch NOT yet published — a
  // reader pinning at that instant must get the previous epoch intact.
  StreamSession session(SeedGraph());
  std::uint64_t hook_epoch = ~0ULL;
  std::uint64_t hook_triangles = 0;
  std::uint64_t hook_count = 0;
  session.SetBeforePublishHook([&] {
    const EpochManager::Pin pin = session.PinEpoch();
    hook_epoch = pin->epoch;
    hook_triangles = pin->triangles;
    hook_count = CountPin(pin);
  });

  EdgeDelta delta;
  delta.Insert(0, 3);
  const StreamSession::AppliedBatch applied = session.Apply(delta);
  EXPECT_EQ(hook_epoch, 0u);
  EXPECT_EQ(hook_triangles, 2u);
  EXPECT_EQ(hook_count, 2u);
  EXPECT_EQ(applied.epoch, 1u);
  EXPECT_EQ(session.PinEpoch()->triangles, 4u);
}

// --- COW slab sharing ------------------------------------------------------

TEST(SnapshotCow, ConsecutiveEpochsShareUntouchedSlabs) {
  // 400 vertices = 7 slabs per store; a one-edge batch touches O(1)
  // slabs, so consecutive epoch matrices must share almost all slabs
  // (the whole point of publishing a full matrix per batch).
  const Graph g = graph::ErdosRenyi(400, 2000, 5);
  StreamSession session(g);
  const EpochManager::Pin e0 = session.PinEpoch();

  EdgeDelta delta;
  delta.Insert(0, 400);  // grows the universe by one vertex
  (void)session.Apply(delta);
  const EpochManager::Pin e1 = session.PinEpoch();

  const std::size_t slabs = e0->matrix->rows().slab_count();
  ASSERT_GE(slabs, 7u);
  EXPECT_GE(SharedSlabCount(e0->matrix->rows(), e1->matrix->rows()),
            slabs - 2);
  EXPECT_GE(SharedSlabCount(e0->matrix->cols(), e1->matrix->cols()),
            slabs - 2);
  // Sharing is real aliasing, not equality: both epochs stay exact.
  EXPECT_EQ(CountPin(e0), e0->triangles);
  EXPECT_EQ(CountPin(e1), e1->triangles);
}

TEST(SnapshotCow, EpochRetirementBoundsMemoryAcrossManyBatches) {
  // 1000 publish/retire cycles toggling one edge: with nothing pinned,
  // every superseded epoch must retire synchronously inside Apply and
  // free its COW slabs — live stays at 1 and the current matrix's heap
  // footprint stays within a small constant of the seed's.
  StreamSession session(SeedGraph());
  const std::uint64_t seed_bytes = session.PinEpoch()->matrix->HeapBytes();

  bool insert = true;
  for (int i = 0; i < 1000; ++i) {
    EdgeDelta delta;
    if (insert) {
      delta.Insert(0, 3);
    } else {
      delta.Erase(0, 3);
    }
    insert = !insert;
    (void)session.Apply(delta);
  }

  const EpochManager& epochs = session.epochs();
  EXPECT_EQ(epochs.published(), 1001u);
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired(), 1000u);
  const EpochManager::Pin last = session.PinEpoch();
  EXPECT_LE(last->matrix->HeapBytes(), 4 * seed_bytes);
  EXPECT_EQ(CountPin(last), last->triangles);
}

// --- readers racing a writer ----------------------------------------------

TEST(SnapshotConcurrency, ReadersRaceWriterAndStayExact) {
  // N reader threads pin/count/release continuously while one writer
  // streams randomized batches. Readers never synchronize with the
  // writer beyond PinCurrent(); every pinned count must equal the
  // writer's maintained total for that epoch, and a sampled subset is
  // cross-checked against the from-scratch CPU oracle.
  const Graph seed = graph::ErdosRenyi(200, 800, 17);
  StreamSession session(seed);
  constexpr int kReaders = 4;
  constexpr int kBatches = 30;

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checks{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(r));
      std::uint64_t last_epoch = 0;
      // do-while: on a single-core host the writer may finish before a
      // reader is first scheduled; every reader still checks >= once.
      do {
        const EpochManager::Pin pin = session.PinEpoch();
        if (pin->epoch < last_epoch) failures.fetch_add(1);  // monotonic
        last_epoch = pin->epoch;
        if (CountPin(pin) != pin->triangles) failures.fetch_add(1);
        if (rng() % 8 == 0 && OracleCount(pin) != pin->triangles) {
          failures.fetch_add(1);
        }
        checks.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  util::Xoshiro256 rng(99);
  std::uint64_t last_epoch = 0;
  for (int b = 0; b < kBatches; ++b) {
    EdgeDelta delta;
    for (int k = 0; k < 8; ++k) {
      const auto u = static_cast<VertexId>(rng() % 210);
      const auto v = static_cast<VertexId>(rng() % 210);
      if (rng() % 3 == 0) {
        delta.Erase(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    const StreamSession::AppliedBatch applied = session.Apply(delta);
    EXPECT_EQ(applied.epoch, static_cast<std::uint64_t>(b) + 1);
    last_epoch = applied.epoch;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checks.load(), 0u);
  EXPECT_EQ(session.epochs().current_epoch(), last_epoch);
  // With all pins dropped only the current epoch stays live.
  EXPECT_EQ(session.epochs().live_epochs(), 1u);
  EXPECT_EQ(baseline::CountTrianglesReference(session.Snapshot()),
            session.triangles());
}

// --- bank-pool serving reads across orientations ---------------------------

class SnapshotOrientationTest : public ::testing::TestWithParam<Orientation> {
};

TEST_P(SnapshotOrientationTest, BankPoolCountsPinnedEpochsExactly) {
  // The scheduler's query path in miniature: pin an epoch, hand its
  // COW matrix to BankPool::HostCountMatrix (no re-orient, no
  // re-slice), expect the writer's total — per orientation, across a
  // churning stream.
  stream::StreamConfig config;
  config.orientation = GetParam();
  StreamSession session(graph::ErdosRenyi(150, 700, 3), config);
  runtime::BankPoolConfig pool_config;
  pool_config.num_banks = 2;
  const runtime::BankPool pool(pool_config);

  util::Xoshiro256 rng(7);
  for (int b = 0; b < 5; ++b) {
    EdgeDelta delta;
    for (int k = 0; k < 10; ++k) {
      const auto u = static_cast<VertexId>(rng() % 155);
      const auto v = static_cast<VertexId>(rng() % 155);
      if (rng() % 3 == 0) {
        delta.Erase(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    (void)session.Apply(delta);
    const EpochManager::Pin pin = session.PinEpoch();
    ASSERT_EQ(pool.HostCountMatrix(*pin->matrix, pin->orientation),
              pin->triangles)
        << "batch " << b;
    ASSERT_EQ(OracleCount(pin), pin->triangles) << "batch " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Orientations, SnapshotOrientationTest,
                         ::testing::Values(Orientation::kUpper,
                                           Orientation::kDegree,
                                           Orientation::kFullSymmetric),
                         [](const auto& info) {
                           return graph::ToString(info.param);
                         });

// --- 2D serving-plan cache under streaming updates -------------------------

TEST(Snapshot2dServing, HubFlipInvalidatesPlanAndPreservesPinnedEpochs) {
  // The streaming regression of the k2dHubReplicated serving path: a
  // batch that flips edges on a hub column must drop the carried plan
  // (its replicas hold stale hub slices), while a pinned pre-batch
  // epoch keeps serving exactly from its own untouched plan cache.
  stream::StreamConfig config;
  config.orientation = Orientation::kDegree;
  StreamSession session(graph::Rmat(200, 1500, graph::RmatParams{}, 21),
                        config);

  runtime::BankPoolConfig pool_config;
  pool_config.num_banks = 3;
  pool_config.partition = runtime::PartitionStrategy::k2dHubReplicated;
  pool_config.partition2d.hub_k = 8;
  const runtime::BankPool pool(pool_config);

  // Query the seed epoch: builds the 2D plan + replicas into its cache.
  const EpochManager::Pin pin0 = session.PinEpoch();
  ASSERT_NE(pin0->plan2d, nullptr);
  ASSERT_EQ(pool.HostCountEpoch(*pin0), pin0->triangles);
  const auto built0 = pin0->plan2d->Get();
  ASSERT_NE(built0, nullptr);
  ASSERT_NE(built0->partition.plan2d, nullptr);
  ASSERT_FALSE(built0->partition.plan2d->hubs.empty());
  EXPECT_EQ(built0->replicas.size(), 3u);  // one hub replica per bank
  const VertexId hub = built0->partition.plan2d->hubs.front();

  // Mid-apply (after the batch applied, before the new epoch
  // publishes): nothing invalidated yet, and the pinned epoch still
  // serves exactly from its pre-batch plan and replicas.
  bool hook_ran = false;
  session.SetBeforePublishHook([&] {
    hook_ran = true;
    EXPECT_EQ(session.plan2d_invalidations(), 0u);
    EXPECT_EQ(pool.HostCountEpoch(*pin0), pin0->triangles);
  });
  EdgeDelta hub_flip;
  hub_flip.Insert(hub, static_cast<VertexId>((hub + 1) % 200));
  (void)session.Apply(hub_flip);
  session.SetBeforePublishHook({});
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(session.plan2d_invalidations(), 1u);

  // The pinned epoch's cache is untouched — same built plan object,
  // same exact total (snapshot isolation of the serving plan).
  EXPECT_EQ(pin0->plan2d->Get(), built0);
  EXPECT_EQ(pool.HostCountEpoch(*pin0), pin0->triangles);
  EXPECT_EQ(OracleCount(pin0), pin0->triangles);

  // The new epoch starts with a fresh cache and re-plans exactly.
  const EpochManager::Pin pin1 = session.PinEpoch();
  ASSERT_NE(pin1->plan2d, nullptr);
  EXPECT_NE(pin1->plan2d, pin0->plan2d);
  EXPECT_FALSE(pin1->plan2d->has_plan());
  EXPECT_EQ(pool.HostCountEpoch(*pin1), pin1->triangles);
  EXPECT_EQ(OracleCount(pin1), pin1->triangles);

  // A batch touching only tail vertices carries the built plan
  // forward: shared cache pointer, no invalidation tick, still exact.
  const auto built1 = pin1->plan2d->Get();
  ASSERT_NE(built1, nullptr);
  const std::vector<std::uint8_t>& is_hub = built1->partition.plan2d->is_hub;
  VertexId a = 0;
  while (a < is_hub.size() && is_hub[a] != 0) ++a;
  VertexId b = a + 1;
  while (b < is_hub.size() && is_hub[b] != 0) ++b;
  ASSERT_LT(b, is_hub.size());
  EdgeDelta tail;
  tail.Insert(a, b);
  (void)session.Apply(tail);
  EXPECT_EQ(session.plan2d_invalidations(), 1u);
  const EpochManager::Pin pin2 = session.PinEpoch();
  EXPECT_EQ(pin2->plan2d, pin1->plan2d);
  EXPECT_EQ(pool.HostCountEpoch(*pin2), pin2->triangles);
  EXPECT_EQ(OracleCount(pin2), pin2->triangles);
}

TEST(Snapshot2dServing, VertexGrowthInvalidatesCarriedPlan) {
  // is_hub / tile bounds are sized to the old n: growing the vertex
  // space must always drop a built plan, even when no hub is touched.
  StreamSession session(graph::ErdosRenyi(100, 500, 5));
  runtime::BankPoolConfig pool_config;
  pool_config.num_banks = 2;
  pool_config.partition = runtime::PartitionStrategy::k2dHubReplicated;
  pool_config.partition2d.hub_k = 4;
  const runtime::BankPool pool(pool_config);

  const EpochManager::Pin pin0 = session.PinEpoch();
  ASSERT_EQ(pool.HostCountEpoch(*pin0), pin0->triangles);
  ASSERT_TRUE(pin0->plan2d->has_plan());

  EdgeDelta grow;
  grow.Insert(150, 151);  // beyond the seed's 100 vertices
  (void)session.Apply(grow);
  EXPECT_EQ(session.plan2d_invalidations(), 1u);
  const EpochManager::Pin pin1 = session.PinEpoch();
  EXPECT_FALSE(pin1->plan2d->has_plan());
  EXPECT_EQ(pool.HostCountEpoch(*pin1), pin1->triangles);
  EXPECT_EQ(OracleCount(pin1), pin1->triangles);
}

}  // namespace
}  // namespace tcim
