// Tests for graph statistics: degrees, wedges, transitivity, local
// clustering.
#include <gtest/gtest.h>

#include "baseline/cpu_tc.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace tcim::graph {
namespace {

TEST(DegreeSummary, CompleteGraph) {
  const DegreeSummary s = SummarizeDegrees(Complete(10));
  EXPECT_EQ(s.min, 9u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_DOUBLE_EQ(s.mean, 9.0);
  EXPECT_EQ(s.median, 9u);
  EXPECT_EQ(s.isolated_vertices, 0u);
}

TEST(DegreeSummary, StarGraph) {
  const DegreeSummary s = SummarizeDegrees(Star(101));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_EQ(s.median, 1u);
}

TEST(DegreeSummary, CountsIsolatedVertices) {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  const DegreeSummary s = SummarizeDegrees(std::move(b).Build());
  EXPECT_EQ(s.isolated_vertices, 3u);
}

TEST(DegreeSummary, EmptyGraphIsZero) {
  const DegreeSummary s = SummarizeDegrees(GraphBuilder(0).Build());
  EXPECT_EQ(s.max, 0u);
}

TEST(WedgeCount, ClosedForms) {
  // K_n: n * C(n-1, 2) wedges.
  EXPECT_EQ(WedgeCount(Complete(5)), 5u * 6u);
  // Path of n vertices: n-2 wedges.
  EXPECT_EQ(WedgeCount(Path(10)), 8u);
  // Star: C(n-1, 2) wedges at the hub.
  EXPECT_EQ(WedgeCount(Star(7)), 15u);
  // Cycle: one wedge per vertex.
  EXPECT_EQ(WedgeCount(Cycle(9)), 9u);
}

TEST(Transitivity, CompleteGraphIsOne) {
  const Graph g = Complete(12);
  const std::uint64_t t = baseline::CountTrianglesReference(g);
  EXPECT_DOUBLE_EQ(Transitivity(g, t), 1.0);
}

TEST(Transitivity, TriangleFreeIsZero) {
  const Graph g = CompleteBipartite(6, 8);
  EXPECT_DOUBLE_EQ(Transitivity(g, 0), 0.0);
}

TEST(Transitivity, BetweenZeroAndOne) {
  const Graph g = HolmeKim(1000, 6000, 0.7, 1);
  const std::uint64_t t = baseline::CountTrianglesReference(g);
  const double trans = Transitivity(g, t);
  EXPECT_GT(trans, 0.0);
  EXPECT_LE(trans, 1.0);
}

TEST(Transitivity, WedgelessGraphIsZero) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(Transitivity(std::move(b).Build(), 0), 0.0);
}

TEST(LocalClustering, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(AverageLocalClustering(Complete(8), 1000, 1), 1.0);
}

TEST(LocalClustering, TriangleFreeIsZero) {
  EXPECT_DOUBLE_EQ(AverageLocalClustering(GridLattice(10, 10), 1000, 1),
                   0.0);
}

TEST(LocalClustering, SampledTracksExhaustive) {
  const Graph g = HolmeKim(2000, 10000, 0.8, 2);
  const double exact = AverageLocalClustering(g, g.num_vertices(), 1);
  const double sampled = AverageLocalClustering(g, 500, 7);
  EXPECT_NEAR(sampled, exact, 0.1);
  EXPECT_GT(exact, 0.1);  // Holme-Kim with p=0.8 is strongly clustered
}

TEST(LocalClustering, DeterministicForSeed) {
  const Graph g = ErdosRenyi(500, 4000, 3);
  EXPECT_DOUBLE_EQ(AverageLocalClustering(g, 100, 5),
                   AverageLocalClustering(g, 100, 5));
}

TEST(Log2Histogram, BucketsDegreesCorrectly) {
  // Star(5): hub degree 4 -> bucket 3 ([4,8)); leaves degree 1 ->
  // bucket 1 ([1,2)).
  const auto hist = Log2DegreeHistogram(Star(5));
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[1], 4u);  // 4 leaves
  EXPECT_EQ(hist[3], 1u);  // hub
}

TEST(Log2Histogram, CountsSumToVertices) {
  const Graph g = Rmat(1024, 8000, RmatParams{}, 4);
  const auto hist = Log2DegreeHistogram(g);
  std::uint64_t total = 0;
  for (const auto c : hist) total += c;
  EXPECT_EQ(total, g.num_vertices());
}

TEST(Log2Histogram, PowerLawHasLongTail) {
  const Graph rmat = Rmat(4096, 40000, RmatParams{}, 5);
  const Graph er = ErdosRenyi(4096, 40000, 5);
  EXPECT_GT(Log2DegreeHistogram(rmat).size(),
            Log2DegreeHistogram(er).size());
}

}  // namespace
}  // namespace tcim::graph
