// Compile-fail fixture for the clang thread-safety gate. One TU, two
// ctest entries (see CMakeLists.txt "Thread-safety compile-fail
// harness"):
//
//   thread_safety_compile_ok    compiles this file as-is with
//                               -Werror=thread-safety — must SUCCEED,
//                               proving the harness itself is sound
//                               (right flags, right include path).
//   thread_safety_compile_fail  compiles it with -DTCIM_SEED_VIOLATION
//                               — must FAIL (ctest WILL_FAIL), proving
//                               the analysis actually rejects a
//                               guarded-field access without the lock.
//
// Both entries register only when a clang is found (the annotations
// are no-ops everywhere else, so there is nothing to prove without
// one); the clang-analysis CI leg always runs them.
//
// This is a fixture, not part of the library: never added to any
// build target's sources.
#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(std::uint64_t amount) {
    tcim::util::MutexLock lock(&mu_);
    balance_ += amount;
  }

  std::uint64_t Balance() const {
#if defined(TCIM_SEED_VIOLATION)
    // The seeded bug: reading the guarded field without mu_ held.
    // clang: error: reading variable 'balance_' requires holding
    // mutex 'mu_' [-Werror,-Wthread-safety-precise]
    return balance_;
#else
    tcim::util::MutexLock lock(&mu_);
    return balance_;
#endif
  }

 private:
  mutable tcim::util::Mutex mu_;
  std::uint64_t balance_ TCIM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return account.Balance() == 1 ? 0 : 1;
}
