// Property-based tests: randomized graph families swept over seeds,
// asserting the invariants that hold for *every* input —
//  (1) all TC implementations agree,
//  (2) Eq. (5) bookkeeping identities,
//  (3) slicing statistics conservation,
//  (4) cache statistics conservation and capacity monotonicity,
//  (5) incremental counts over randomized update batches equal a full
//      CPU recount of the evolved graph,
//  (6) concurrent epoch-pinned reads during a randomized update stream
//      match a sequential replay at every published epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <utility>
#include <vector>

#include "baseline/cpu_tc.h"
#include "bitmatrix/kernel_backend.h"
#include "core/accelerator.h"
#include "core/bitwise_tc.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "graph/stats.h"
#include "runtime/epoch_manager.h"
#include "runtime/stream_session.h"
#include "stream/incremental_counter.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;

struct FamilyCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

const FamilyCase kFamilies[] = {
    {"erdos_sparse",
     [](std::uint64_t s) { return graph::ErdosRenyi(400, 1200, s); }},
    {"erdos_dense",
     [](std::uint64_t s) { return graph::ErdosRenyi(150, 5000, s); }},
    {"rmat",
     [](std::uint64_t s) {
       return graph::Rmat(512, 4000, graph::RmatParams{}, s);
     }},
    {"holmekim_clustered",
     [](std::uint64_t s) { return graph::HolmeKim(350, 2800, 0.9, s); }},
    {"holmekim_flat",
     [](std::uint64_t s) { return graph::HolmeKim(350, 2800, 0.1, s); }},
    {"smallworld",
     [](std::uint64_t s) { return graph::WattsStrogatz(500, 4, 0.3, s); }},
    {"road",
     [](std::uint64_t s) {
       return graph::GeometricRoad(1200, graph::RoadParams{}, s);
     }},
};

class FamilySeedTest
    : public ::testing::TestWithParam<std::tuple<FamilyCase, std::uint64_t>> {
 protected:
  Graph MakeGraph() const {
    return std::get<0>(GetParam()).make(std::get<1>(GetParam()));
  }
};

TEST_P(FamilySeedTest, AllCountingPathsAgree) {
  const Graph g = MakeGraph();
  const std::uint64_t expected =
      CountTriangles(g, baseline::TcAlgorithm::kEdgeIteratorMerge);
  EXPECT_EQ(CountTriangles(g, baseline::TcAlgorithm::kNodeIterator),
            expected);
  EXPECT_EQ(CountTriangles(g, baseline::TcAlgorithm::kEdgeIteratorMark),
            expected);
  EXPECT_EQ(CountTriangles(g, baseline::TcAlgorithm::kForward), expected);
  EXPECT_EQ(CountTriangles(g, baseline::TcAlgorithm::kDenseTrace),
            expected);
  EXPECT_EQ(core::CountTrianglesDense(g), expected);
  EXPECT_EQ(core::CountTrianglesSliced(g), expected);

  core::TcimConfig c;
  c.array.capacity_bytes = 1ULL << 20;
  EXPECT_EQ(core::TcimAccelerator{c}.Run(g).triangles, expected);
}

TEST_P(FamilySeedTest, Equation5IdentityAcrossOrientations) {
  const Graph g = MakeGraph();
  const std::uint64_t t = core::CountTrianglesSliced(g);
  // Upper and degree orientations count each triangle once; the full
  // symmetric matrix counts it six times (paper Eq. (1) vs Fig. 2).
  const bit::SlicedMatrix upper =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  const bit::SlicedMatrix degree =
      core::BuildSlicedMatrix(g, Orientation::kDegree, 64);
  const bit::SlicedMatrix full =
      core::BuildSlicedMatrix(g, Orientation::kFullSymmetric, 64);
  EXPECT_EQ(upper.AndPopcountAllEdges(), t);
  EXPECT_EQ(degree.AndPopcountAllEdges(), t);
  EXPECT_EQ(full.AndPopcountAllEdges(), 6 * t);
}

TEST_P(FamilySeedTest, SliceStatsConservation) {
  const Graph g = MakeGraph();
  const bit::SlicedMatrix m =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  const bit::SliceStats s = m.ComputeStats();
  EXPECT_EQ(s.edges, g.num_edges());
  EXPECT_EQ(s.total_pairs, s.edges * m.rows().slices_per_vector());
  EXPECT_LE(s.valid_pairs, s.total_pairs);
  EXPECT_LE(s.touched_row_slices, s.row_valid_slices);
  EXPECT_LE(s.touched_col_slices, s.col_valid_slices);
  // Every set bit lives in exactly one valid slice; slices are
  // non-empty.
  EXPECT_LE(s.row_valid_slices, g.num_edges());
  EXPECT_LE(s.col_valid_slices, g.num_edges());
  EXPECT_EQ(m.rows().set_bit_count(), g.num_edges());
  EXPECT_EQ(m.cols().set_bit_count(), g.num_edges());
  EXPECT_EQ(s.CompressedBytes(),
            (s.row_valid_slices + s.col_valid_slices) * 12);
}

TEST_P(FamilySeedTest, ExecStatsConservation) {
  const Graph g = MakeGraph();
  core::TcimConfig c;
  c.array.capacity_bytes = 512ULL << 10;
  const core::TcimResult r = core::TcimAccelerator{c}.Run(g);
  EXPECT_EQ(r.exec.cache.hits + r.exec.cache.misses, r.exec.valid_pairs);
  EXPECT_EQ(r.exec.col_slice_writes, r.exec.cache.misses);
  EXPECT_LE(r.exec.cache.exchanges, r.exec.cache.misses);
  EXPECT_EQ(r.exec.valid_pairs, r.slices.valid_pairs);
  EXPECT_EQ(r.exec.edges_processed, g.num_edges());
  // Misses can never be fewer than the distinct column slices touched.
  EXPECT_GE(r.exec.cache.misses, r.slices.touched_col_slices);
  // Triangles bound: at most wedges/3.
  EXPECT_LE(3 * r.triangles, graph::WedgeCount(g));
}

TEST_P(FamilySeedTest, CapacityMonotonicity) {
  const Graph g = MakeGraph();
  std::uint64_t prev_exchanges = ~0ULL;
  for (const std::uint64_t capacity :
       {64ULL << 10, 256ULL << 10, 2ULL << 20}) {
    core::TcimConfig c;
    c.array.capacity_bytes = capacity;
    const core::TcimResult r = core::TcimAccelerator{c}.Run(g);
    // Growing the array can only reduce eviction pressure.
    EXPECT_LE(r.exec.cache.exchanges, prev_exchanges)
        << "capacity=" << capacity;
    prev_exchanges = r.exec.cache.exchanges;
  }
}

TEST_P(FamilySeedTest, IncrementalCountMatchesFullRecount) {
  const Graph g = MakeGraph();
  const std::uint64_t param_seed = std::get<1>(GetParam());
  // Three stream sessions, one per maintained orientation, fed the
  // same randomized batches; every batch's running total must equal a
  // from-scratch CPU recount of the evolved graph. Batches include
  // duplicate inserts, deletes of nonexistent edges, self-loops and
  // vertex growth; small batches exercise the incremental path, the
  // occasional large one the recount fallback.
  std::vector<stream::IncrementalCounter> counters;
  for (const Orientation o :
       {Orientation::kUpper, Orientation::kDegree,
        Orientation::kFullSymmetric}) {
    stream::StreamConfig config;
    config.orientation = o;
    counters.emplace_back(g, config);
  }
  util::Xoshiro256 rng(0xD1CE + param_seed);
  const auto n = g.num_vertices();
  for (int batch = 0; batch < 8; ++batch) {
    stream::EdgeDelta delta;
    const bool big = batch == 5;  // one fallback-sized batch per sweep
    const int ops = big ? static_cast<int>(g.num_edges() / 4) : 10;
    for (int k = 0; k < ops; ++k) {
      // +4 lets endpoints land past the current universe (growth);
      // equal endpoints produce self-loop no-ops.
      const auto u = static_cast<graph::VertexId>(rng() % (n + 4));
      const auto v = static_cast<graph::VertexId>(rng() % (n + 4));
      if (rng() % 3 == 0) {
        delta.Erase(u, v);  // frequently nonexistent
      } else {
        delta.Insert(u, v);  // frequently duplicate
      }
      if (rng() % 7 == 0) delta.Insert(u, v);  // literal duplicate op
    }
    std::uint64_t expected = ~0ULL;
    for (stream::IncrementalCounter& counter : counters) {
      const stream::BatchResult r = counter.ApplyBatch(delta);
      if (expected == ~0ULL) {
        expected =
            baseline::CountTrianglesReference(counter.graph().ToGraph());
      }
      ASSERT_EQ(r.triangles, expected)
          << "batch " << batch << " orientation "
          << graph::ToString(counter.config().orientation);
    }
  }
}

TEST_P(FamilySeedTest, ConcurrentEpochReadsMatchSequentialReplay) {
  // Snapshot-isolation property: while a writer streams randomized
  // batches (same adversarial op mix as above, including one
  // fallback-sized batch), a concurrent reader pins epochs and counts
  // them straight off the COW matrix. Afterwards, every observed
  // (epoch, count) pair must equal a SEQUENTIAL replay of the same
  // deltas at that epoch — for each maintained orientation.
  const Graph g = MakeGraph();
  const std::uint64_t param_seed = std::get<1>(GetParam());
  util::Xoshiro256 rng(0xEC0 + param_seed);
  const auto n = g.num_vertices();
  constexpr int kBatches = 6;
  std::vector<stream::EdgeDelta> deltas(kBatches);
  for (int batch = 0; batch < kBatches; ++batch) {
    const bool big = batch == 3;  // one recount-fallback batch per sweep
    const int ops = big ? static_cast<int>(g.num_edges() / 4) : 10;
    for (int k = 0; k < ops; ++k) {
      const auto u = static_cast<graph::VertexId>(rng() % (n + 4));
      const auto v = static_cast<graph::VertexId>(rng() % (n + 4));
      if (rng() % 3 == 0) {
        deltas[batch].Erase(u, v);
      } else {
        deltas[batch].Insert(u, v);
      }
    }
  }

  for (const Orientation o :
       {Orientation::kUpper, Orientation::kDegree,
        Orientation::kFullSymmetric}) {
    stream::StreamConfig config;
    config.orientation = o;
    runtime::StreamSession session(g, config);

    std::atomic<bool> done{false};
    std::vector<std::pair<std::uint64_t, std::uint64_t>> observed;
    std::thread reader([&] {
      do {
        const runtime::EpochManager::Pin pin = session.PinEpoch();
        observed.emplace_back(pin->epoch,
                              pin->matrix->AndPopcountAllEdges() /
                                  graph::CountMultiplier(pin->orientation));
      } while (!done.load(std::memory_order_acquire));
    });
    for (const stream::EdgeDelta& delta : deltas) {
      (void)session.Apply(delta);
    }
    done.store(true, std::memory_order_release);
    reader.join();

    // Sequential replay oracle: epoch e -> exact total after e batches.
    stream::IncrementalCounter replay(g, config);
    std::vector<std::uint64_t> oracle{replay.triangles()};
    for (const stream::EdgeDelta& delta : deltas) {
      oracle.push_back(replay.ApplyBatch(delta).triangles);
    }
    ASSERT_FALSE(observed.empty());
    for (const auto& [epoch, count] : observed) {
      ASSERT_LT(epoch, oracle.size());
      ASSERT_EQ(count, oracle[epoch])
          << "epoch " << epoch << " orientation " << graph::ToString(o);
    }
    EXPECT_EQ(session.triangles(), oracle.back());
    EXPECT_EQ(baseline::CountTrianglesReference(session.Snapshot()),
              oracle.back());
  }
}

TEST_P(FamilySeedTest, KernelBackendsAgreeOnTriangleCount) {
  // Every compiled-in-and-supported SIMD backend must produce the same
  // triangle count as the CPU reference on every family x seed —
  // forced through the process-wide dispatch, exactly as production
  // code reaches the kernels. Scope-exit restore so a throw mid-loop
  // cannot leak a forced backend into the rest of the binary.
  struct BackendRestore {
    bit::KernelBackend saved = bit::ActiveBackend();
    ~BackendRestore() { bit::SetActiveBackend(saved); }
  } restore;
  const Graph g = MakeGraph();
  const std::uint64_t expected = baseline::CountTrianglesReference(g);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  for (const bit::KernelBackend backend : bit::SupportedKernelBackends()) {
    bit::SetActiveBackend(backend);
    EXPECT_EQ(core::CountTrianglesSliced(matrix, Orientation::kUpper),
              expected)
        << "backend=" << bit::ToString(backend);
  }
}

std::string CaseName(
    const ::testing::TestParamInfo<std::tuple<FamilyCase, std::uint64_t>>&
        info) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s_seed%llu",
                std::get<0>(info.param).name,
                static_cast<unsigned long long>(std::get<1>(info.param)));
  return buf;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FamilySeedTest,
    ::testing::Combine(::testing::ValuesIn(kFamilies),
                       ::testing::Values(1u, 2u, 3u)),
    CaseName);

}  // namespace
}  // namespace tcim
