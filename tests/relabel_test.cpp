// Tests for load-time vertex relabeling (graph/relabel.h): bijection
// invariants of every order, triangle-count invariance, the growable
// original<->internal map, CountValidSlices against the built stores,
// the ChooseRelabeling auto policy, and the stream delta mapping that
// keeps the rename invisible at the replay surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <vector>

#include "baseline/cpu_tc.h"
#include "bitmatrix/sliced_matrix.h"
#include "core/bitwise_tc.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/relabel.h"
#include "stream/edge_delta.h"
#include "util/rng.h"

namespace tcim::graph {
namespace {

Graph WheelPlusTail() {
  // Vertex 0 is the hub of a 6-spoke wheel; 7..9 form a path tail, so
  // degrees span 1..6 with ties among the rim vertices.
  GraphBuilder b(10);
  for (VertexId v = 1; v <= 6; ++v) b.AddEdge(0, v);
  for (VertexId v = 1; v <= 6; ++v) b.AddEdge(v, v % 6 + 1);
  b.AddEdge(6, 7);
  b.AddEdge(7, 8);
  b.AddEdge(8, 9);
  return std::move(b).Build();
}

Graph RandomGraph(VertexId n, std::uint64_t edges, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  GraphBuilder b(n);
  for (std::uint64_t e = 0; e < edges; ++e) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(n)),
              static_cast<VertexId>(rng.UniformBelow(n)));
  }
  return std::move(b).Build();
}

/// True when `map` is a bijection of [0, n) onto [0, n).
void ExpectBijection(const VertexRelabeling& map, VertexId n) {
  ASSERT_EQ(map.size(), n);
  std::vector<bool> seen(n, false);
  for (VertexId internal = 0; internal < n; ++internal) {
    const VertexId original = map.ToOriginal(internal);
    ASSERT_LT(original, n);
    EXPECT_FALSE(seen[original]) << "original " << original << " twice";
    seen[original] = true;
    ASSERT_TRUE(map.FindInternal(original).has_value());
    EXPECT_EQ(*map.FindInternal(original), internal);
  }
}

TEST(VertexRelabeling, IdentityMapsEveryIdToItself) {
  const VertexRelabeling map = VertexRelabeling::Identity(17);
  ExpectBijection(map, 17);
  EXPECT_TRUE(map.IsIdentity());
  for (VertexId v = 0; v < 17; ++v) EXPECT_EQ(map.ToOriginal(v), v);
}

TEST(VertexRelabeling, DegreeAscendingIsABijectionInDegreeOrder) {
  const Graph g = WheelPlusTail();
  const VertexRelabeling map = VertexRelabeling::DegreeAscending(g);
  ExpectBijection(map, g.num_vertices());
  for (VertexId internal = 1; internal < map.size(); ++internal) {
    const VertexId prev = map.ToOriginal(internal - 1);
    const VertexId cur = map.ToOriginal(internal);
    const std::uint64_t dp = g.Degree(prev);
    const std::uint64_t dc = g.Degree(cur);
    EXPECT_TRUE(dp < dc || (dp == dc && prev < cur))
        << "internal " << internal << ": degree order violated";
  }
  // Ascending: the hub gets the HIGHEST internal id, so under kUpper
  // every edge points toward its higher-degree endpoint.
  EXPECT_EQ(map.ToOriginal(map.size() - 1), 0u);
}

TEST(VertexRelabeling, BfsFromHubsVisitsEveryVertexHubFirst) {
  const Graph g = WheelPlusTail();
  const VertexRelabeling map = VertexRelabeling::BfsFromHubs(g);
  ExpectBijection(map, g.num_vertices());
  // The traversal seeds at the highest-degree vertex (the hub).
  EXPECT_EQ(map.ToOriginal(0), 0u);
  // Disconnected vertices still get ids (seed loop covers them).
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  const Graph two_islands = std::move(b).Build();
  ExpectBijection(VertexRelabeling::BfsFromHubs(two_islands), 5);
}

TEST(VertexRelabeling, ApplyPreservesStructure) {
  const Graph g = RandomGraph(120, 700, 11);
  for (const VertexRelabeling& map :
       {VertexRelabeling::DegreeAscending(g), VertexRelabeling::BfsFromHubs(g)}) {
    const Graph h = map.Apply(g);
    ASSERT_EQ(h.num_vertices(), g.num_vertices());
    ASSERT_EQ(h.num_edges(), g.num_edges());
    // Degrees follow the vertices through the rename...
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(h.Degree(*map.FindInternal(v)), g.Degree(v));
    }
    // ...and so do the triangles.
    EXPECT_EQ(baseline::CountTrianglesReference(h),
              baseline::CountTrianglesReference(g));
  }
}

TEST(VertexRelabeling, SlicedCountInvariantUnderRelabeling) {
  // The full Eq. (5) pipeline counts identically on the renamed graph —
  // the invariance the CLI's --relabel flag relies on.
  for (const PaperRef& ref : AllPaperRefs()) {
    const DatasetInstance inst = SynthesizePaperGraph(ref.id, 0.02, 42);
    const std::uint64_t expected =
        baseline::CountTrianglesReference(inst.graph);
    for (const RelabelMode mode :
         {RelabelMode::kDegree, RelabelMode::kBfs, RelabelMode::kAuto}) {
      RelabelChoice choice = ChooseRelabeling(inst.graph, mode, 64);
      const Graph renamed = choice.map.Apply(inst.graph);
      const bit::SlicedMatrix matrix =
          core::BuildSlicedMatrix(renamed, Orientation::kUpper, 64);
      EXPECT_EQ(core::CountTrianglesSliced(matrix, Orientation::kUpper),
                expected)
          << ref.name << " mode=" << ToString(mode);
    }
  }
}

TEST(VertexRelabeling, ToInternalGrowsOnFirstSight) {
  VertexRelabeling map;
  EXPECT_EQ(map.size(), 0u);
  // Sparse originals arrive in arbitrary order; internals stay dense.
  EXPECT_EQ(map.ToInternal(1000), 0u);
  EXPECT_EQ(map.ToInternal(5), 1u);
  EXPECT_EQ(map.ToInternal(1000), 0u);  // idempotent
  EXPECT_EQ(map.ToInternal(0), 2u);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.ToOriginal(0), 1000u);
  EXPECT_EQ(map.ToOriginal(2), 0u);
  EXPECT_FALSE(map.FindInternal(999).has_value());
  EXPECT_FALSE(map.FindInternal(1001).has_value());
  EXPECT_FALSE(map.IsIdentity());  // 1000 -> 0
  EXPECT_THROW((void)map.ToOriginal(3), std::out_of_range);
}

TEST(VertexRelabeling, ApplyThrowsOnUnmappedVertices) {
  const Graph g = WheelPlusTail();
  VertexRelabeling partial;
  (void)partial.ToInternal(0);
  EXPECT_THROW((void)partial.Apply(g), std::invalid_argument);
}

TEST(CountValidSlices, MatchesBuiltStoreStats) {
  // The O(E log E) edge-list NVS must equal the row+col valid-slice
  // count of the actually-built kUpper matrix, for identity and for
  // every relabeling, across slice widths.
  const Graph g = RandomGraph(300, 2500, 77);
  for (const std::uint32_t slice_bits : {64u, 128u, 512u}) {
    for (const RelabelMode mode :
         {RelabelMode::kNone, RelabelMode::kDegree, RelabelMode::kBfs}) {
      RelabelChoice choice = ChooseRelabeling(g, mode, slice_bits);
      const std::uint64_t predicted =
          CountValidSlices(g, choice.map, slice_bits);
      const Graph renamed = choice.map.Apply(g);
      const bit::SliceStats stats =
          core::BuildSlicedMatrix(renamed, Orientation::kUpper, slice_bits)
              .ComputeStats();
      EXPECT_EQ(predicted, stats.row_valid_slices + stats.col_valid_slices)
          << "slice_bits=" << slice_bits << " mode=" << ToString(mode);
    }
  }
  EXPECT_THROW(
      (void)CountValidSlices(g, VertexRelabeling::Identity(1), 64),
      std::invalid_argument);  // unmapped vertices
  EXPECT_THROW(
      (void)CountValidSlices(g, VertexRelabeling::Identity(g.num_vertices()),
                             0),
      std::invalid_argument);
}

TEST(ChooseRelabeling, AutoNeverLosesToIdentity) {
  for (const PaperRef& ref : AllPaperRefs()) {
    const DatasetInstance inst = SynthesizePaperGraph(ref.id, 0.02, 42);
    const RelabelChoice choice =
        ChooseRelabeling(inst.graph, RelabelMode::kAuto, 64);
    EXPECT_NE(choice.applied, RelabelMode::kAuto) << ref.name;
    EXPECT_LE(choice.chosen_valid_slices, choice.identity_valid_slices)
        << ref.name;
    EXPECT_LE(choice.ValidSliceRatio(), 1.0) << ref.name;
    if (choice.applied == RelabelMode::kNone) {
      EXPECT_TRUE(choice.map.IsIdentity()) << ref.name;
      EXPECT_EQ(choice.chosen_valid_slices, choice.identity_valid_slices);
    }
  }
}

TEST(ChooseRelabeling, ExplicitModesAreHonoredUnconditionally) {
  const Graph g = RandomGraph(200, 1200, 5);
  const RelabelChoice none = ChooseRelabeling(g, RelabelMode::kNone, 64);
  EXPECT_EQ(none.applied, RelabelMode::kNone);
  EXPECT_TRUE(none.map.IsIdentity());
  EXPECT_EQ(none.chosen_valid_slices, none.identity_valid_slices);

  const RelabelChoice degree = ChooseRelabeling(g, RelabelMode::kDegree, 64);
  EXPECT_EQ(degree.applied, RelabelMode::kDegree);
  EXPECT_EQ(degree.chosen_valid_slices,
            CountValidSlices(g, degree.map, 64));

  const RelabelChoice bfs = ChooseRelabeling(g, RelabelMode::kBfs, 64);
  EXPECT_EQ(bfs.applied, RelabelMode::kBfs);

  // Auto picks the minimum of the three scored orders.
  const RelabelChoice chosen = ChooseRelabeling(g, RelabelMode::kAuto, 64);
  EXPECT_EQ(chosen.chosen_valid_slices,
            std::min({none.identity_valid_slices, degree.chosen_valid_slices,
                      bfs.chosen_valid_slices}));
}

TEST(RelabelMode, NamesRoundTrip) {
  for (const RelabelMode mode : {RelabelMode::kNone, RelabelMode::kDegree,
                                 RelabelMode::kBfs, RelabelMode::kAuto}) {
    const auto parsed = ParseRelabelMode(ToString(mode));
    ASSERT_TRUE(parsed.has_value()) << ToString(mode);
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseRelabelMode("").has_value());
  EXPECT_FALSE(ParseRelabelMode("Degree").has_value());
  EXPECT_FALSE(ParseRelabelMode("random").has_value());
}

TEST(RelabelByDegree, ReturnsRenamedGraphAndMap) {
  const Graph g = WheelPlusTail();
  VertexRelabeling map;
  const Graph renamed = RelabelByDegree(g, &map);
  ExpectBijection(map, g.num_vertices());
  EXPECT_EQ(renamed.num_edges(), g.num_edges());
  EXPECT_EQ(baseline::CountTrianglesReference(renamed),
            baseline::CountTrianglesReference(g));
  // The hub (original 0, max degree) lands on the top internal id.
  EXPECT_EQ(*map.FindInternal(0), g.num_vertices() - 1);
}

TEST(MapToInternal, RewritesDeltasAndGrowsTheMap) {
  const Graph g = WheelPlusTail();
  VertexRelabeling map;
  const Graph renamed = RelabelByDegree(g, &map);
  (void)renamed;
  stream::EdgeDelta delta;
  delta.Insert(0, 3);
  delta.Erase(7, 8);
  delta.Insert(500, 0);  // vertex the loaded graph never saw
  const stream::EdgeDelta internal = stream::MapToInternal(delta, map);
  ASSERT_EQ(internal.size(), 3u);
  EXPECT_EQ(internal.ops[0].u, *map.FindInternal(0));
  EXPECT_EQ(internal.ops[0].v, *map.FindInternal(3));
  EXPECT_EQ(internal.ops[1].u, *map.FindInternal(7));
  EXPECT_EQ(internal.ops[1].v, *map.FindInternal(8));
  // 500 was assigned the next free internal id, and the map remembers.
  ASSERT_TRUE(map.FindInternal(500).has_value());
  EXPECT_EQ(*map.FindInternal(500), g.num_vertices());
  EXPECT_EQ(map.ToOriginal(g.num_vertices()), 500u);
  EXPECT_EQ(internal.ops[2].u, g.num_vertices());
}

TEST(Relabeling, PerVertexReportingIsInvisibleThroughTheInverseMap) {
  // The round-trip the CLI's top-degree report relies on: the
  // (original id, degree) multiset read through the inverse map off a
  // relabeled graph equals the same read off the unrelabeled graph.
  const Graph g = RandomGraph(150, 900, 321);
  RelabelChoice choice = ChooseRelabeling(g, RelabelMode::kDegree, 64);
  const Graph renamed = choice.map.Apply(g);
  std::vector<std::pair<VertexId, std::uint64_t>> direct;
  std::vector<std::pair<VertexId, std::uint64_t>> via_map;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    direct.emplace_back(v, g.Degree(v));
    via_map.emplace_back(choice.map.ToOriginal(v), renamed.Degree(v));
  }
  std::sort(via_map.begin(), via_map.end());
  EXPECT_EQ(direct, via_map);
}

}  // namespace
}  // namespace tcim::graph
