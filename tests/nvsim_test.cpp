// Tests for the NVSim-style array model: validation, cost positivity,
// monotonicity in the physical parameters, and paper-scale sanity.
#include <gtest/gtest.h>

#include "device/mtj_device.h"
#include "nvsim/array_model.h"
#include "nvsim/tech.h"

namespace tcim::nvsim {
namespace {

const device::MtjDevice& Device() {
  static const device::MtjDevice dev(device::PaperMtjParams());
  return dev;
}

ArrayModel MakeModel(ArrayConfig config = {},
                     TechnologyParams tech = Default45nm()) {
  return ArrayModel(tech, config, Device());
}

TEST(TechnologyParams, DefaultsValidate) {
  EXPECT_NO_THROW(Default45nm().Validate());
}

TEST(TechnologyParams, RejectsNonPhysical) {
  TechnologyParams t = Default45nm();
  t.feature_size = 0;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
  t = Default45nm();
  t.sa_nominal_margin = -1;
  EXPECT_THROW(t.Validate(), std::invalid_argument);
}

TEST(ArrayConfig, DefaultIsPaper16MB) {
  const ArrayConfig c;
  EXPECT_EQ(c.capacity_bytes, 16ULL << 20);
  EXPECT_EQ(c.access_width_bits, 64u);
  EXPECT_NO_THROW(c.Validate());
}

TEST(ArrayConfig, DerivedGeometry) {
  const ArrayConfig c;
  EXPECT_EQ(c.subarray_bits(), 512ULL * 512);
  EXPECT_EQ(c.total_subarrays(), (16ULL << 23) / (512 * 512));
  EXPECT_EQ(c.slices_per_row(), 8u);
}

TEST(ArrayConfig, RejectsBadGeometry) {
  ArrayConfig c;
  c.subarray_rows = 500;  // not a power of two
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ArrayConfig{};
  c.access_width_bits = 100;  // does not divide cols
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ArrayConfig{};
  c.access_width_bits = 1024;  // wider than a row
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = ArrayConfig{};
  c.banks = 0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
}

TEST(ArrayModel, AllCostsPositive) {
  const ArrayModel m = MakeModel();
  const ArrayPerf& p = m.perf();
  EXPECT_GT(p.read_slice.latency, 0.0);
  EXPECT_GT(p.read_slice.energy, 0.0);
  EXPECT_GT(p.and_slice.latency, 0.0);
  EXPECT_GT(p.and_slice.energy, 0.0);
  EXPECT_GT(p.write_slice.latency, 0.0);
  EXPECT_GT(p.write_slice.energy, 0.0);
  EXPECT_GT(p.leakage_w, 0.0);
  EXPECT_GT(p.area_mm2, 0.0);
  EXPECT_GT(p.subarrays, 0u);
}

TEST(ArrayModel, NvmCostHierarchy) {
  const ArrayPerf& p = MakeModel().perf();
  // STT-MRAM: write is slower and far more energetic than read; AND
  // (two wordlines + bigger sensed current) costs more than READ.
  EXPECT_GT(p.write_slice.latency, p.read_slice.latency);
  EXPECT_GT(p.write_slice.energy, 5.0 * p.read_slice.energy);
  EXPECT_GE(p.and_slice.energy, p.read_slice.energy);
}

TEST(ArrayModel, PaperScaleSanity) {
  const ArrayPerf& p = MakeModel().perf();
  // ns-class accesses, pJ-class energies, tens of mm^2 for 16 MB at
  // 45nm, sub-watt leakage — the regime NVSim reports for MRAM.
  EXPECT_GT(p.read_slice.latency, 0.1e-9);
  EXPECT_LT(p.read_slice.latency, 50e-9);
  EXPECT_LT(p.write_slice.latency, 100e-9);
  EXPECT_GT(p.read_slice.energy, 1e-14);
  EXPECT_LT(p.write_slice.energy, 1e-9);
  EXPECT_GT(p.area_mm2, 1.0);
  EXPECT_LT(p.area_mm2, 100.0);
  EXPECT_LT(p.leakage_w, 1.0);
}

TEST(ArrayModel, BiggerCapacityMeansMoreSubarraysAndArea) {
  ArrayConfig small;
  small.capacity_bytes = 4ULL << 20;
  ArrayConfig big;
  big.capacity_bytes = 64ULL << 20;
  const ArrayModel ms = MakeModel(small);
  const ArrayModel mb = MakeModel(big);
  EXPECT_GT(mb.perf().subarrays, ms.perf().subarrays);
  EXPECT_GT(mb.perf().area_mm2, ms.perf().area_mm2);
  EXPECT_GT(mb.perf().leakage_w, ms.perf().leakage_w);
  // Bigger chips pay more global wire delay.
  EXPECT_GT(mb.GlobalTransferDelay(), ms.GlobalTransferDelay());
}

TEST(ArrayModel, TallerSubarraySlowsBitline) {
  ArrayConfig tall;
  tall.subarray_rows = 1024;
  const ArrayModel mt = MakeModel(tall);
  const ArrayModel md = MakeModel();
  EXPECT_GT(mt.BitlineDelay(), md.BitlineDelay());
  EXPECT_GT(mt.DecoderDelay(), md.DecoderDelay());
}

TEST(ArrayModel, WiderSubarraySlowsWordline) {
  ArrayConfig wide;
  wide.subarray_cols = 2048;
  const ArrayModel mw = MakeModel(wide);
  const ArrayModel md = MakeModel();
  EXPECT_GT(mw.WordlineDelay(), md.WordlineDelay());
}

TEST(ArrayModel, SenseDelayScalesInverselyWithMargin) {
  const ArrayModel m = MakeModel();
  const double at_nominal = m.SenseDelay(Default45nm().sa_nominal_margin);
  EXPECT_NEAR(at_nominal, Default45nm().sa_base_latency, 1e-15);
  EXPECT_NEAR(m.SenseDelay(Default45nm().sa_nominal_margin / 2),
              2 * at_nominal, 1e-12);
  // Degenerate margin is flagged with a huge delay, not UB.
  EXPECT_GT(m.SenseDelay(0.0), 1e-7);
}

TEST(ArrayModel, RejectsNonSwitchingDevice) {
  device::MtjParams weak = device::PaperMtjParams();
  weak.write_voltage = 0.12;  // barely above read; current ~ Ic/3
  const device::MtjDevice dev(weak);
  EXPECT_THROW(ArrayModel(Default45nm(), ArrayConfig{}, dev),
               std::invalid_argument);
}

TEST(ArrayModel, SummaryMentionsKeyNumbers) {
  const std::string s = MakeModel().perf().Summary();
  EXPECT_NE(s.find("read"), std::string::npos);
  EXPECT_NE(s.find("write"), std::string::npos);
  EXPECT_NE(s.find("subarrays"), std::string::npos);
}

TEST(TechnologyPresets, AllNodesValidate) {
  EXPECT_NO_THROW(Scaled65nm().Validate());
  EXPECT_NO_THROW(Scaled32nm().Validate());
  EXPECT_NEAR(Scaled65nm().feature_size, 65e-9, 1e-12);
  EXPECT_NEAR(Scaled32nm().feature_size, 32e-9, 1e-12);
}

TEST(TechnologyPresets, NewerNodeIsFasterAndDenser) {
  const ArrayModel m65 = MakeModel(ArrayConfig{}, Scaled65nm());
  const ArrayModel m45 = MakeModel(ArrayConfig{}, Default45nm());
  const ArrayModel m32 = MakeModel(ArrayConfig{}, Scaled32nm());
  // Area shrinks with the node.
  EXPECT_GT(m65.perf().area_mm2, m45.perf().area_mm2);
  EXPECT_GT(m45.perf().area_mm2, m32.perf().area_mm2);
  // Peripheral (decoder) delay follows FO4.
  EXPECT_GT(m65.DecoderDelay(), m45.DecoderDelay());
  EXPECT_GT(m45.DecoderDelay(), m32.DecoderDelay());
  // READ energy improves with scaling.
  EXPECT_GT(m65.perf().read_slice.energy, m32.perf().read_slice.energy);
}

TEST(ArrayModel, ParallelLanesEqualSubarrays) {
  const ArrayPerf& p = MakeModel().perf();
  EXPECT_EQ(p.parallel_lanes, p.subarrays);
}

}  // namespace
}  // namespace tcim::nvsim
