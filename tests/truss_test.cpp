// Tests for the k-truss extension: per-edge supports (CPU vs TCIM
// in-memory kernel), peeling decomposition vs the naive reference, and
// closed-form trussness of known families.
#include <gtest/gtest.h>

#include "baseline/cpu_tc.h"
#include "baseline/truss_ref.h"
#include "core/edge_support.h"
#include "core/truss.h"
#include "graph/generators.h"

namespace tcim::core {
namespace {

using graph::Graph;

TcimAccelerator SmallAccel() {
  TcimConfig config;
  config.array.capacity_bytes = 1ULL << 20;
  return TcimAccelerator{config};
}

Graph Bowtie() {
  // Two triangles sharing edge (1,2).
  graph::GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

TEST(EdgeSupports, CpuMatchesKnownValues) {
  const EdgeSupports s = ComputeEdgeSupportsCpu(Bowtie());
  // ForEachEdge order: (0,1),(0,2),(1,2),(1,3),(2,3).
  EXPECT_EQ(s.support,
            (std::vector<std::uint32_t>{1, 1, 2, 1, 1}));
  EXPECT_EQ(s.TriangleCount(), 2u);
}

TEST(EdgeSupports, TriangleCountIdentityOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = graph::HolmeKim(300, 1800, 0.7, seed);
    const EdgeSupports s = ComputeEdgeSupportsCpu(g);
    EXPECT_EQ(s.TriangleCount(), baseline::CountTrianglesReference(g))
        << seed;
  }
}

TEST(EdgeSupports, TcimKernelMatchesCpu) {
  const TcimAccelerator accel = SmallAccel();
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::ErdosRenyi(250, 2200, seed);
    const EdgeSupports cpu = ComputeEdgeSupportsCpu(g);
    const EdgeSupports pim = ComputeEdgeSupportsTcim(g, accel);
    ASSERT_EQ(pim.support, cpu.support) << seed;
  }
}

TEST(EdgeSupports, TcimReportsExecStats) {
  const TcimAccelerator accel = SmallAccel();
  const Graph g = graph::HolmeKim(500, 3000, 0.6, 9);
  TcimResult result;
  const EdgeSupports s = ComputeEdgeSupportsTcim(g, accel, &result);
  // Symmetric matrix: every undirected edge visited twice.
  EXPECT_EQ(result.exec.edges_processed, 2 * g.num_edges());
  // Accumulated bitcount = Sum of supports over both arc directions
  // = 6T; TriangleCount identity must hold.
  EXPECT_EQ(result.triangles, s.TriangleCount());
  EXPECT_GT(result.perf.serial_seconds, 0.0);
}

TEST(Truss, CompleteGraphIsNTruss) {
  for (const graph::VertexId n : {3u, 4u, 5u, 7u}) {
    const TrussResult r = DecomposeTrussCpu(graph::Complete(n));
    EXPECT_EQ(r.max_truss, n) << n;
    for (const std::uint32_t t : r.trussness) {
      EXPECT_EQ(t, n);
    }
  }
}

TEST(Truss, TriangleFreeGraphsAreTwoTruss) {
  for (const auto& g :
       {graph::Cycle(10), graph::Star(10), graph::GridLattice(5, 5),
        graph::CompleteBipartite(4, 5)}) {
    const TrussResult r = DecomposeTrussCpu(g);
    EXPECT_EQ(r.max_truss, 2u);
    for (const std::uint32_t t : r.trussness) {
      EXPECT_EQ(t, 2u);
    }
  }
}

TEST(Truss, BowtieIsAllThreeTruss) {
  const TrussResult r = DecomposeTrussCpu(Bowtie());
  EXPECT_EQ(r.max_truss, 3u);
  for (const std::uint32_t t : r.trussness) {
    EXPECT_EQ(t, 3u);
  }
}

TEST(Truss, CliquePlusPendantSeparates) {
  // K4 plus a pendant edge: clique edges trussness 4, pendant 2.
  graph::GraphBuilder b(5);
  for (graph::VertexId u = 0; u < 4; ++u) {
    for (graph::VertexId v = u + 1; v < 4; ++v) b.AddEdge(u, v);
  }
  b.AddEdge(3, 4);
  const Graph g = std::move(b).Build();
  const TrussResult r = DecomposeTrussCpu(g);
  EXPECT_EQ(r.max_truss, 4u);
  std::uint64_t edge_id = 0;
  g.ForEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (v == 4) {
      EXPECT_EQ(r.trussness[edge_id], 2u) << u << "-" << v;
    } else {
      EXPECT_EQ(r.trussness[edge_id], 4u) << u << "-" << v;
    }
    ++edge_id;
  });
}

TEST(Truss, MatchesNaiveReferenceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::ErdosRenyi(60, 320, seed);
    const TrussResult fast = DecomposeTrussCpu(g);
    const std::vector<std::uint32_t> ref =
        baseline::TrussDecompositionReference(g);
    ASSERT_EQ(fast.trussness, ref) << "seed=" << seed;
  }
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::HolmeKim(80, 480, 0.8, seed);
    const TrussResult fast = DecomposeTrussCpu(g);
    ASSERT_EQ(fast.trussness, baseline::TrussDecompositionReference(g))
        << "seed=" << seed;
  }
}

TEST(Truss, TcimSupportsFeedTheSameDecomposition) {
  const TcimAccelerator accel = SmallAccel();
  const Graph g = graph::HolmeKim(300, 2100, 0.8, 3);
  const TrussResult from_cpu = DecomposeTrussCpu(g);
  const TrussResult from_pim =
      DecomposeTruss(g, ComputeEdgeSupportsTcim(g, accel).support);
  EXPECT_EQ(from_cpu.trussness, from_pim.trussness);
  EXPECT_EQ(from_cpu.max_truss, from_pim.max_truss);
}

TEST(Truss, HistogramAndKTrussCountsAreConsistent) {
  const Graph g = graph::HolmeKim(400, 2400, 0.7, 5);
  const TrussResult r = DecomposeTrussCpu(g);
  const auto hist = r.Histogram();
  std::uint64_t total = 0;
  for (const auto c : hist) total += c;
  EXPECT_EQ(total, g.num_edges());
  // KTrussEdgeCount(k) is the tail sum of the histogram.
  for (std::uint32_t k = 2; k <= r.max_truss; ++k) {
    std::uint64_t tail = 0;
    for (std::uint32_t t = k; t <= r.max_truss; ++t) tail += hist[t];
    EXPECT_EQ(r.KTrussEdgeCount(k), tail) << "k=" << k;
  }
  // Monotone non-increasing in k; k=2 covers everything.
  EXPECT_EQ(r.KTrussEdgeCount(2), g.num_edges());
  for (std::uint32_t k = 3; k <= r.max_truss; ++k) {
    EXPECT_LE(r.KTrussEdgeCount(k), r.KTrussEdgeCount(k - 1));
  }
  EXPECT_GT(r.KTrussEdgeCount(r.max_truss), 0u);
  EXPECT_EQ(r.KTrussEdgeCount(r.max_truss + 1), 0u);
}

TEST(Truss, EmptyAndTinyGraphs) {
  const TrussResult empty = DecomposeTrussCpu(graph::GraphBuilder(5).Build());
  EXPECT_EQ(empty.max_truss, 2u);
  EXPECT_TRUE(empty.trussness.empty());
  const TrussResult single_edge = DecomposeTrussCpu(graph::Path(2));
  EXPECT_EQ(single_edge.trussness, (std::vector<std::uint32_t>{2}));
}

TEST(Truss, RejectsMismatchedSupportVector) {
  EXPECT_THROW(
      DecomposeTruss(Bowtie(), std::vector<std::uint32_t>{1, 2}),
      std::invalid_argument);
}

}  // namespace
}  // namespace tcim::core
