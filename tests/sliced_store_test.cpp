// Tests for the compressed valid-slice representation (paper §IV-B):
// SlicedStore packing/round-trip and SlicedMatrix pair enumeration +
// statistics.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitmatrix/kernel_backend.h"
#include "bitmatrix/sliced_matrix.h"
#include "bitmatrix/sliced_store.h"
#include "util/env.h"
#include "util/rng.h"

namespace tcim::bit {
namespace {

/// Builds a store from explicit per-vector position lists.
SlicedStore MakeStore(std::uint32_t num_vectors, std::uint64_t universe,
                      const std::vector<std::vector<std::uint32_t>>& rows,
                      std::uint32_t slice_bits) {
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> positions;
  for (const auto& row : rows) {
    positions.insert(positions.end(), row.begin(), row.end());
    offsets.push_back(positions.size());
  }
  return SlicedStore::FromCsr(num_vectors, universe, offsets, positions,
                              slice_bits);
}

TEST(SlicedStore, EmptyStoreHasNoSlices) {
  const SlicedStore s = MakeStore(3, 100, {{}, {}, {}}, 64);
  EXPECT_EQ(s.valid_slice_count(), 0u);
  EXPECT_EQ(s.compressed_bytes(), 0u);
  EXPECT_EQ(s.set_bit_count(), 0u);
  EXPECT_EQ(s.SliceCount(0), 0u);
}

TEST(SlicedStore, SingleBitMakesOneValidSlice) {
  const SlicedStore s = MakeStore(1, 1000, {{130}}, 64);
  EXPECT_EQ(s.valid_slice_count(), 1u);
  ASSERT_EQ(s.SliceIndices(0).size(), 1u);
  EXPECT_EQ(s.SliceIndices(0)[0], 130u / 64u);
  EXPECT_EQ(s.SliceWords(0, 0)[0], 1ULL << (130 % 64));
}

TEST(SlicedStore, BitsInSameSliceShareIt) {
  const SlicedStore s = MakeStore(1, 256, {{64, 65, 100, 127}}, 64);
  EXPECT_EQ(s.valid_slice_count(), 1u);
  EXPECT_EQ(s.set_bit_count(), 4u);
}

TEST(SlicedStore, BitsInDifferentSlicesSplit) {
  const SlicedStore s = MakeStore(1, 256, {{0, 64, 128, 192}}, 64);
  EXPECT_EQ(s.valid_slice_count(), 4u);
  const auto idx = s.SliceIndices(0);
  EXPECT_EQ(std::vector<std::uint32_t>(idx.begin(), idx.end()),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(SlicedStore, CompressedBytesFollowsPaperFormula) {
  // NVS * (|S|/8 + 4) bytes.
  const SlicedStore s = MakeStore(2, 512, {{0, 100, 200}, {300}}, 64);
  EXPECT_EQ(s.compressed_bytes(), s.valid_slice_count() * (64 / 8 + 4));
}

TEST(SlicedStore, SlicesPerVectorIsCeilUniverseOverS) {
  const SlicedStore s = MakeStore(1, 100, {{}}, 64);
  EXPECT_EQ(s.slices_per_vector(), 2u);  // ceil(100/64)
  const SlicedStore t = MakeStore(1, 128, {{}}, 64);
  EXPECT_EQ(t.slices_per_vector(), 2u);
  const SlicedStore u = MakeStore(1, 129, {{}}, 64);
  EXPECT_EQ(u.slices_per_vector(), 3u);
}

TEST(SlicedStore, NonPowerOfTwoSliceBits) {
  const SlicedStore s = MakeStore(1, 100, {{0, 47, 48, 99}}, 48);
  // positions 0,47 -> slice 0; 48 -> slice 1; 99 -> slice 2.
  EXPECT_EQ(s.valid_slice_count(), 3u);
  EXPECT_EQ(s.set_bit_count(), 4u);
  const BitVector round = s.ToBitVector(0);
  EXPECT_TRUE(round.Get(0));
  EXPECT_TRUE(round.Get(47));
  EXPECT_TRUE(round.Get(48));
  EXPECT_TRUE(round.Get(99));
  EXPECT_EQ(round.Count(), 4u);
}

TEST(SlicedStore, MultiWordSlices) {
  // 128-bit slices: two words per slice.
  const SlicedStore s = MakeStore(1, 1024, {{0, 64, 127, 128}}, 128);
  EXPECT_EQ(s.words_per_slice(), 2u);
  EXPECT_EQ(s.valid_slice_count(), 2u);  // slice 0 (0..127), slice 1 (128)
  const auto w0 = s.SliceWords(0, 0);
  EXPECT_EQ(w0[0], (1ULL << 0) | (1ULL << 64 % 64));  // bits 0 and 64? no:
  // bit 0 -> word0 bit0; bit 64 -> word1 bit0; bit 127 -> word1 bit63.
  EXPECT_EQ(w0[0], 1ULL);
  EXPECT_EQ(w0[1], 1ULL | (1ULL << 63));
}

TEST(SlicedStore, RoundTripRandom) {
  util::Xoshiro256 rng(77);
  for (const std::uint32_t slice_bits : {8u, 16u, 32u, 64u, 128u, 256u}) {
    std::vector<std::vector<std::uint32_t>> rows(20);
    std::vector<BitVector> reference(20, BitVector(700));
    for (int v = 0; v < 20; ++v) {
      std::uint32_t pos = 0;
      while (true) {
        pos += 1 + static_cast<std::uint32_t>(rng.UniformBelow(60));
        if (pos >= 700) break;
        rows[v].push_back(pos);
        reference[v].Set(pos);
      }
    }
    const SlicedStore s = MakeStore(20, 700, rows, slice_bits);
    for (std::uint32_t v = 0; v < 20; ++v) {
      EXPECT_EQ(s.ToBitVector(v), reference[v])
          << "slice_bits=" << slice_bits << " v=" << v;
    }
  }
}

TEST(SlicedStore, ForEachSetBitVisitsInOrder) {
  const std::vector<std::uint32_t> positions = {3, 64, 65, 200, 500};
  const SlicedStore s =
      MakeStore(1, 512, {positions}, 64);
  std::vector<std::uint64_t> visited;
  s.ForEachSetBit(0, [&](std::uint64_t p) { visited.push_back(p); });
  EXPECT_EQ(visited, (std::vector<std::uint64_t>{3, 64, 65, 200, 500}));
}

TEST(SlicedStore, GlobalOrdinalIsStableAndDense) {
  const SlicedStore s =
      MakeStore(3, 256, {{0, 64}, {}, {128, 192}}, 64);
  EXPECT_EQ(s.GlobalOrdinal(0, 0), 0u);
  EXPECT_EQ(s.GlobalOrdinal(0, 1), 1u);
  EXPECT_EQ(s.GlobalOrdinal(2, 0), 2u);
  EXPECT_EQ(s.GlobalOrdinal(2, 1), 3u);
  EXPECT_THROW((void)s.GlobalOrdinal(1, 0), std::out_of_range);
  EXPECT_THROW((void)s.GlobalOrdinal(3, 0), std::out_of_range);
}

TEST(SlicedStore, RejectsMalformedInput) {
  const std::vector<std::uint64_t> offsets = {0, 2};
  const std::vector<std::uint32_t> unsorted = {10, 5};
  EXPECT_THROW(
      SlicedStore::FromCsr(1, 100, offsets, unsorted, 64),
      std::invalid_argument);
  const std::vector<std::uint32_t> dup = {5, 5};
  EXPECT_THROW(SlicedStore::FromCsr(1, 100, offsets, dup, 64),
               std::invalid_argument);
  const std::vector<std::uint32_t> out = {5, 200};
  EXPECT_THROW(SlicedStore::FromCsr(1, 100, offsets, out, 64),
               std::invalid_argument);
  const std::vector<std::uint32_t> ok = {5, 10};
  EXPECT_THROW(SlicedStore::FromCsr(1, 100, offsets, ok, 0),
               std::invalid_argument);
  EXPECT_THROW(SlicedStore::FromCsr(1, 100, offsets, ok, 1000),
               std::invalid_argument);
  const std::vector<std::uint64_t> bad_offsets = {1, 2};
  EXPECT_THROW(SlicedStore::FromCsr(1, 100, bad_offsets, ok, 64),
               std::invalid_argument);
}

TEST(SlicedStore, ExtractVectorsKeepsShapeAndKeptVectorsOnly) {
  const SlicedStore s = MakeStore(
      5, 512, {{0, 64}, {3, 130}, {}, {500}, {1, 2, 3}}, 64);
  const std::vector<std::uint32_t> keep = {1, 3};
  const SlicedStore sub = s.ExtractVectors(keep);
  // Same shape — the replica substitutes for the column store 1:1.
  EXPECT_EQ(sub.num_vectors(), s.num_vectors());
  EXPECT_EQ(sub.universe(), s.universe());
  EXPECT_EQ(sub.slice_bits(), s.slice_bits());
  // Kept vectors are bit-identical; everything else is empty.
  for (std::uint32_t v = 0; v < 5; ++v) {
    if (std::find(keep.begin(), keep.end(), v) != keep.end()) {
      EXPECT_EQ(sub.ToBitVector(v), s.ToBitVector(v)) << "kept " << v;
    } else {
      EXPECT_EQ(sub.ToBitVector(v).Count(), 0u) << "dropped " << v;
      EXPECT_EQ(sub.SliceCount(v), 0u);
    }
  }
  EXPECT_EQ(sub.set_bit_count(), 3u);  // vectors 1 and 3
}

TEST(SlicedStore, ExtractVectorsSharesFullyKeptSlabs) {
  // Keep EVERY vector: the extract must be a pure COW copy — all
  // slabs shared by pointer, zero words copied.
  std::vector<std::vector<std::uint32_t>> rows(300);
  util::Xoshiro256 rng(7);
  for (auto& row : rows) {
    std::uint32_t p = 0;
    for (int k = 0; k < 6; ++k) {
      p += 1 + static_cast<std::uint32_t>(rng.UniformBelow(100));
      if (p < 1024) row.push_back(p);
    }
  }
  const SlicedStore s = MakeStore(300, 1024, rows, 64);
  std::vector<std::uint32_t> all(300);
  for (std::uint32_t v = 0; v < 300; ++v) all[v] = v;
  const SlicedStore everything = s.ExtractVectors(all);
  EXPECT_EQ(SharedSlabCount(s, everything), s.slab_count());
  // A partial keep still shares every slab it keeps in full.
  const std::vector<std::uint32_t> keep_one = {5};
  const SlicedStore partial = s.ExtractVectors(keep_one);
  EXPECT_LT(SharedSlabCount(s, partial), s.slab_count());
  EXPECT_EQ(partial.ToBitVector(5), s.ToBitVector(5));
}

TEST(SlicedStore, ExtractVectorsEmptyKeepGivesEmptyStore) {
  const SlicedStore s = MakeStore(3, 256, {{0}, {64}, {128}}, 64);
  const SlicedStore none = s.ExtractVectors({});
  EXPECT_EQ(none.num_vectors(), 3u);
  EXPECT_EQ(none.valid_slice_count(), 0u);
  EXPECT_EQ(none.set_bit_count(), 0u);
}

TEST(SlicedStore, ExtractVectorsRejectsBadKeepLists) {
  const SlicedStore s = MakeStore(3, 256, {{0}, {64}, {128}}, 64);
  const std::vector<std::uint32_t> unsorted = {2, 0};
  EXPECT_THROW((void)s.ExtractVectors(unsorted), std::invalid_argument);
  const std::vector<std::uint32_t> dup = {1, 1};
  EXPECT_THROW((void)s.ExtractVectors(dup), std::invalid_argument);
  const std::vector<std::uint32_t> out = {3};
  EXPECT_THROW((void)s.ExtractVectors(out), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SlicedMatrix

/// Small oriented CSR: arcs 0->1, 0->2, 1->2, 1->3, 2->3 (Fig. 2).
SlicedMatrix Fig2Matrix(std::uint32_t slice_bits = 64) {
  const std::vector<std::uint64_t> offsets = {0, 2, 4, 5, 5};
  const std::vector<std::uint32_t> neighbors = {1, 2, 2, 3, 3};
  return SlicedMatrix::FromCsr(4, offsets, neighbors, slice_bits);
}

TEST(SlicedMatrix, Fig2RowAndColumnStores) {
  const SlicedMatrix m = Fig2Matrix();
  EXPECT_EQ(m.num_vertices(), 4u);
  EXPECT_EQ(m.edge_count(), 5u);
  // Row 0 = {1,2}; column 3 = {1,2}.
  EXPECT_EQ(m.rows().ToBitVector(0).Count(), 2u);
  EXPECT_TRUE(m.cols().ToBitVector(3).Get(1));
  EXPECT_TRUE(m.cols().ToBitVector(3).Get(2));
}

TEST(SlicedMatrix, Fig2BitwiseCountIsTwoTriangles) {
  // With the upper-triangular orientation Eq. (5) counts each triangle
  // exactly once: the paper's example totals 2.
  EXPECT_EQ(Fig2Matrix().AndPopcountAllEdges(), 2u);
}

TEST(SlicedMatrix, Fig2WorksAtAllSliceWidths) {
  for (const std::uint32_t s : {1u, 2u, 3u, 4u, 8u, 16u, 32u, 64u}) {
    EXPECT_EQ(Fig2Matrix(s).AndPopcountAllEdges(), 2u) << "slice=" << s;
  }
}

TEST(SlicedMatrix, ColumnStoreIsTranspose) {
  util::Xoshiro256 rng(31);
  const std::uint32_t n = 80;
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(0.1)) adj[i].push_back(j);
    }
  }
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (const auto& row : adj) {
    neighbors.insert(neighbors.end(), row.begin(), row.end());
    offsets.push_back(neighbors.size());
  }
  const SlicedMatrix m = SlicedMatrix::FromCsr(n, offsets, neighbors, 64);
  for (std::uint32_t i = 0; i < n; ++i) {
    const BitVector row = m.rows().ToBitVector(i);
    row.ForEachSetBit([&](std::uint64_t j) {
      EXPECT_TRUE(
          m.cols().ToBitVector(static_cast<std::uint32_t>(j)).Get(i));
    });
  }
  EXPECT_EQ(m.rows().set_bit_count(), m.cols().set_bit_count());
}

TEST(SlicedMatrix, ForEachValidPairMergesSortedIndices) {
  // 256 vertices; row 0 -> {1, 130, 200}, everything else empty.
  std::vector<std::uint64_t> offsets(257, 3);
  offsets[0] = 0;
  const std::vector<std::uint32_t> neighbors = {1, 130, 200};
  const SlicedMatrix m = SlicedMatrix::FromCsr(256, offsets, neighbors, 64);
  // Row 0 valid slices: {0 (bit 1), 2 (bit 130), 3 (bit 200)}.
  std::vector<std::uint32_t> visited;
  m.ForEachValidPair(0, 130, [&](std::uint32_t k, std::size_t,
                                 std::size_t) { visited.push_back(k); });
  // Column 130 contains only vertex 0 -> slice 0; common slice = {0}.
  EXPECT_EQ(visited, (std::vector<std::uint32_t>{0}));
}

TEST(SlicedMatrix, StatsInvariants) {
  const SlicedMatrix m = Fig2Matrix();
  const SliceStats stats = m.ComputeStats();
  EXPECT_EQ(stats.edges, 5u);
  EXPECT_EQ(stats.valid_pairs, 5u);  // n=4 fits in one slice: all valid
  EXPECT_EQ(stats.total_pairs, 5u * 1u);
  EXPECT_LE(stats.touched_row_slices, stats.row_valid_slices);
  EXPECT_LE(stats.touched_col_slices, stats.col_valid_slices);
  EXPECT_EQ(stats.CompressedBytes(),
            (stats.row_valid_slices + stats.col_valid_slices) * 12);
  EXPECT_GT(stats.ValidSliceFraction(), 0.0);
  EXPECT_LE(stats.ValidSliceFraction(), 1.0);
  EXPECT_DOUBLE_EQ(stats.ValidPairFraction(), 1.0);
}

TEST(SlicedMatrix, SparsityReducesValidPairFraction) {
  // A large sparse ring: most (row, col) slice pairs are invalid.
  const std::uint32_t n = 4096;
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    neighbors.push_back(i + 1);
    offsets[i + 1] = neighbors.size();
  }
  offsets[n] = neighbors.size();
  const SlicedMatrix m = SlicedMatrix::FromCsr(n, offsets, neighbors, 64);
  const SliceStats stats = m.ComputeStats();
  EXPECT_LT(stats.ValidPairFraction(), 0.05);
  EXPECT_LT(stats.ValidSliceFraction(), 0.05);
}

TEST(SlicedMatrix, RejectsOutOfRangeNeighbor) {
  const std::vector<std::uint64_t> offsets = {0, 1};
  const std::vector<std::uint32_t> neighbors = {5};
  EXPECT_THROW(SlicedMatrix::FromCsr(1, offsets, neighbors, 64),
               std::invalid_argument);
}

TEST(SlicedMatrix, HeapBytesPositiveForNonEmpty) {
  EXPECT_GT(Fig2Matrix().HeapBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Batched Eq. (5) evaluation: AndPopcountAllEdges/AndPopcountRows now
// gather valid pairs and issue block dispatches; these tests pin the
// batched path to the per-pair formulation it replaced, across slice
// widths (words_per_slice 1..8), row shards, and forced backends.

/// Random upper-triangular CSR over `n` vertices with ~`avg_degree`
/// out-arcs per vertex.
SlicedMatrix RandomUpperMatrix(std::uint32_t n, std::uint32_t avg_degree,
                               std::uint32_t slice_bits, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::vector<std::uint32_t> out;
    for (std::uint32_t d = 0; d < avg_degree; ++d) {
      if (i + 1 < n) {
        out.push_back(i + 1 +
                      static_cast<std::uint32_t>(rng.UniformBelow(n - i - 1)));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    neighbors.insert(neighbors.end(), out.begin(), out.end());
    offsets.push_back(neighbors.size());
  }
  return SlicedMatrix::FromCsr(n, offsets, neighbors, slice_bits);
}

/// The dispatch-per-slice-pair reference, evaluated with the exact
/// per-word SWAR strategy so it never touches the SIMD dispatch under
/// test.
std::uint64_t PerPairReference(const SlicedMatrix& m) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < m.num_vertices(); ++i) {
    m.rows().ForEachSetBit(i, [&](std::uint64_t j64) {
      const auto j = static_cast<std::uint32_t>(j64);
      m.ForEachValidPair(i, j, [&](std::uint32_t, std::size_t ra,
                                   std::size_t cb) {
        total += AndPopcount(m.rows().SliceWords(i, ra),
                             m.cols().SliceWords(j, cb), PopcountKind::kSwar);
      });
    });
  }
  return total;
}

/// Restores the active backend on scope exit.
class ActiveBackendGuard {
 public:
  ActiveBackendGuard() : saved_(ActiveBackend()) {}
  ~ActiveBackendGuard() { SetActiveBackend(saved_); }

 private:
  KernelBackend saved_;
};

TEST(SlicedMatrixBatched, MatchesPerPairLoopAcrossWidthsAndBackends) {
  ActiveBackendGuard guard;
  // words_per_slice covers 1..8 (|S| = 64w), plus non-multiples of 64
  // to exercise zero-padded tail words inside each pair.
  for (const std::uint32_t slice_bits :
       {8u, 64u, 100u, 128u, 192u, 256u, 320u, 384u, 448u, 512u}) {
    const SlicedMatrix m = RandomUpperMatrix(300, 6, slice_bits, 4242);
    const std::uint64_t expected = PerPairReference(m);
    for (const KernelBackend backend : SupportedKernelBackends()) {
      SetActiveBackend(backend);
      EXPECT_EQ(m.AndPopcountAllEdges(), expected)
          << "slice_bits=" << slice_bits << " backend=" << ToString(backend);
    }
  }
}

TEST(SlicedMatrixBatched, DisjointRowShardsPartitionTheTotal) {
  const SlicedMatrix m = RandomUpperMatrix(500, 5, 64, 77);
  const std::uint64_t total = m.AndPopcountAllEdges();
  for (const std::uint32_t shards : {1u, 2u, 3u, 7u}) {
    std::uint64_t sum = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint32_t begin = m.num_vertices() * s / shards;
      const std::uint32_t end = m.num_vertices() * (s + 1) / shards;
      sum += m.AndPopcountRows(begin, end);
    }
    EXPECT_EQ(sum, total) << "shards=" << shards;
  }
  EXPECT_EQ(m.AndPopcountRows(0, 0), 0u);
  EXPECT_EQ(m.AndPopcountRows(m.num_vertices(), m.num_vertices()), 0u);
  EXPECT_THROW((void)m.AndPopcountRows(2, 1), std::out_of_range);
  EXPECT_THROW((void)m.AndPopcountRows(0, m.num_vertices() + 1),
               std::out_of_range);
}

TEST(SlicedMatrixBatched, LargeRowCrossesFlushBoundary) {
  // A near-complete upper matrix: the first pivot rows alone gather
  // far more than the 2 Ki-word flush block (row 0 has ~1499 edges,
  // each matching many of its ~24 valid slices), so the arena must
  // flush repeatedly *mid-row* and still sum exactly.
  const SlicedMatrix m = RandomUpperMatrix(1500, 1500, 64, 9001);
  ASSERT_GT(m.edge_count(), 500000u);  // dense enough to force flushes
  EXPECT_EQ(m.AndPopcountAllEdges(), PerPairReference(m));
}

TEST(SlicedMatrixBatched, HotPathNeverTouchesHardwareModelCounters) {
  const SlicedMatrix m = RandomUpperMatrix(200, 8, 64, 5);
  const std::uint64_t before = Lut8Invocations();
  (void)m.AndPopcountAllEdges();
  (void)m.AndPopcountRows(0, m.num_vertices());
  (void)AndPopcountVectors(m.rows(), 0, m.cols(), 1);
  EXPECT_EQ(Lut8Invocations(), before)
      << "batched kBuiltin path fed words to the LUT8 hardware model";
  // The hardware-model strategy still routes through it, per word.
  const std::uint64_t lut_total = m.AndPopcountAllEdges(PopcountKind::kLut8);
  EXPECT_EQ(lut_total, m.AndPopcountAllEdges());
  EXPECT_GT(Lut8Invocations(), before);
}

// ---------------------------------------------------------------------------
// Adaptive pair policy at the matrix level: every forced policy and
// the auto rule must produce the exact per-pair total, and the
// PairPathCounters must attribute every gathered pair to the path
// that actually consumed it.

/// Restores the forced pair policy on scope exit.
class PairPolicyGuard {
 public:
  PairPolicyGuard() : saved_(ActivePairPolicy().forced) {}
  ~PairPolicyGuard() { SetActivePairPolicy(saved_); }

 private:
  std::optional<PairPolicy> saved_;
};

TEST(SlicedMatrixPolicy, ForcedPoliciesAgreeAndRouteCounters) {
  PairPolicyGuard guard;
  for (const std::uint32_t slice_bits : {64u, 448u, 512u}) {
    const SlicedMatrix m = RandomUpperMatrix(300, 6, slice_bits, 2024);
    const std::uint64_t expected = PerPairReference(m);

    SetActivePairPolicy(std::nullopt);
    PairPathCounters auto_counters;
    EXPECT_EQ(m.AndPopcountAllEdges(PopcountKind::kBuiltin, &auto_counters),
              expected)
        << "slice_bits=" << slice_bits;
    // Default decision table: zero-copy at every width (schema-v4
    // measurement — the arena memcpy never pays for itself).
    EXPECT_EQ(auto_counters.batched_pairs, 0u);
    EXPECT_EQ(auto_counters.per_pair_pairs, 0u);
    EXPECT_GT(auto_counters.zero_copy_pairs, 0u);
    const std::uint64_t total_pairs = auto_counters.TotalPairs();

    SetActivePairPolicy(PairPolicy::kBatched);
    PairPathCounters batched;
    EXPECT_EQ(m.AndPopcountAllEdges(PopcountKind::kBuiltin, &batched),
              expected);
    EXPECT_EQ(batched.batched_pairs, total_pairs);
    EXPECT_EQ(batched.zero_copy_pairs, 0u);
    EXPECT_EQ(batched.per_pair_pairs, 0u);
    EXPECT_GT(batched.batched_flushes, 0u);

    SetActivePairPolicy(PairPolicy::kZeroCopy);
    PairPathCounters zero_copy;
    EXPECT_EQ(m.AndPopcountAllEdges(PopcountKind::kBuiltin, &zero_copy),
              expected);
    EXPECT_EQ(zero_copy.zero_copy_pairs, total_pairs);
    EXPECT_EQ(zero_copy.batched_pairs, 0u);
    EXPECT_GT(zero_copy.zero_copy_flushes, 0u);

    SetActivePairPolicy(PairPolicy::kPerPair);
    PairPathCounters per_pair;
    EXPECT_EQ(m.AndPopcountAllEdges(PopcountKind::kBuiltin, &per_pair),
              expected);
    EXPECT_EQ(per_pair.per_pair_pairs, total_pairs);
    EXPECT_EQ(per_pair.batched_pairs, 0u);
    EXPECT_EQ(per_pair.zero_copy_pairs, 0u);
  }
}

TEST(SlicedMatrixPolicy, RowShardCountersSumToWholeMatrix) {
  PairPolicyGuard guard;
  SetActivePairPolicy(std::nullopt);
  const SlicedMatrix m = RandomUpperMatrix(400, 7, 64, 4096);
  PairPathCounters whole;
  const std::uint64_t total =
      m.AndPopcountAllEdges(PopcountKind::kBuiltin, &whole);
  PairPathCounters sharded;
  std::uint64_t sum = 0;
  for (const auto [begin, end] :
       {std::pair<std::uint32_t, std::uint32_t>{0, 100},
        {100, 101},
        {101, 400}}) {
    sum += m.AndPopcountRows(begin, end, PopcountKind::kBuiltin, &sharded);
  }
  EXPECT_EQ(sum, total);
  EXPECT_EQ(sharded.TotalPairs(), whole.TotalPairs());
  EXPECT_EQ(sharded.zero_copy_pairs, whole.zero_copy_pairs);
}

TEST(SlicedMatrixPolicy, FlushBoundaryParityUnderEveryPolicy) {
  // Dense enough that single rows gather past the 2 Ki-word flush
  // block repeatedly; the total must be exact on every route.
  PairPolicyGuard guard;
  const SlicedMatrix m = RandomUpperMatrix(700, 700, 64, 31415);
  const std::uint64_t expected = PerPairReference(m);
  for (const std::optional<PairPolicy> forced :
       {std::optional<PairPolicy>{}, std::optional{PairPolicy::kBatched},
        std::optional{PairPolicy::kZeroCopy},
        std::optional{PairPolicy::kPerPair}}) {
    SetActivePairPolicy(forced);
    EXPECT_EQ(m.AndPopcountAllEdges(), expected)
        << (forced.has_value() ? ToString(*forced) : "auto");
  }
}

TEST(SlicedStoreGather, GatherValidPairsMatchesMergeAndCountsPairs) {
  ActiveBackendGuard guard;
  const SlicedMatrix m = RandomUpperMatrix(120, 10, 64, 321);
  for (std::uint32_t u = 0; u < 40; ++u) {
    for (std::uint32_t v = u; v < 40; v += 7) {
      // Reference: exact per-pair strategy path (no SIMD dispatch).
      std::uint64_t ref_pairs = 0;
      const std::uint64_t ref = AndPopcountVectors(
          m.rows(), u, m.cols(), v, PopcountKind::kSwar, &ref_pairs);
      for (const KernelBackend backend : SupportedKernelBackends()) {
        SetActiveBackend(backend);
        std::uint64_t pairs = 0;
        EXPECT_EQ(AndPopcountVectors(m.rows(), u, m.cols(), v,
                                     PopcountKind::kBuiltin, &pairs),
                  ref)
            << "u=" << u << " v=" << v << " backend=" << ToString(backend);
        EXPECT_EQ(pairs, ref_pairs);
        PairArena arena;
        EXPECT_EQ(GatherValidPairs(m.rows(), u, m.cols(), v, arena),
                  ref_pairs);
        EXPECT_EQ(arena.pair_count(), ref_pairs);
        EXPECT_EQ(AndPopcountPairs(arena), ref);
      }
    }
  }
}

TEST(SlicedStoreGather, MismatchedSliceBitsThrow) {
  const SlicedStore a = MakeStore(1, 128, {{0, 64}}, 64);
  const SlicedStore b = MakeStore(1, 128, {{0, 64}}, 32);
  PairArena arena;
  EXPECT_THROW((void)GatherValidPairs(a, 0, b, 0, arena),
               std::invalid_argument);
  EXPECT_THROW((void)AndPopcountVectors(a, 0, b, 0, PopcountKind::kSwar),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Seeded fuzz-style stress test for ApplyEdits: hundreds of randomized
// flip batches against a dense reference model, every intermediate
// state cross-checked against a freshly sliced store. On failure the
// SCOPED_TRACE prints the (slice_bits, run, seed) triple — rerun with
// that seed hard-coded to reproduce.

/// Dense mutable model the compressed store is checked against.
struct DenseModel {
  std::uint32_t num_vectors = 0;
  std::uint64_t universe = 0;
  std::vector<std::vector<bool>> bits;  // bits[v][pos]

  void Grow(std::uint32_t nv, std::uint64_t uni) {
    num_vectors = std::max(num_vectors, nv);
    universe = std::max(universe, uni);
    bits.resize(num_vectors);
    for (auto& row : bits) row.resize(universe, false);
  }

  [[nodiscard]] SlicedStore Freshly(std::uint32_t slice_bits) const {
    std::vector<std::uint64_t> offsets = {0};
    std::vector<std::uint32_t> positions;
    for (const auto& row : bits) {
      for (std::uint32_t p = 0; p < row.size(); ++p) {
        if (row[p]) positions.push_back(p);
      }
      offsets.push_back(positions.size());
    }
    return SlicedStore::FromCsr(num_vectors, universe, offsets, positions,
                                slice_bits);
  }
};

void ExpectStoreMatchesModel(const SlicedStore& store,
                             const DenseModel& model,
                             std::uint32_t slice_bits) {
  const SlicedStore fresh = model.Freshly(slice_bits);
  ASSERT_EQ(store.num_vectors(), fresh.num_vectors());
  ASSERT_EQ(store.universe(), fresh.universe());
  ASSERT_EQ(store.valid_slice_count(), fresh.valid_slice_count());
  ASSERT_EQ(store.set_bit_count(), fresh.set_bit_count());
  ASSERT_EQ(store.compressed_bytes(), fresh.compressed_bytes());
  for (std::uint32_t v = 0; v < store.num_vectors(); ++v) {
    const auto live = store.SliceIndices(v);
    const auto want = fresh.SliceIndices(v);
    ASSERT_TRUE(std::equal(live.begin(), live.end(), want.begin(),
                           want.end()))
        << "slice indices diverge at vector " << v;
    ASSERT_EQ(store.ToBitVector(v), fresh.ToBitVector(v))
        << "payload diverges at vector " << v;
  }
}

TEST(SlicedStoreFuzz, RandomizedFlipBatchesMatchFreshSlicing) {
  // TCIM_SEED shifts the whole sweep (reproduce any CI failure by
  // exporting the seed from the trace message).
  const std::uint64_t base_seed = 0xF1A9 + util::SplitMix64(util::BaseSeed());
  for (const std::uint32_t slice_bits : {32u, 64u, 192u}) {
    for (int run = 0; run < 3; ++run) {
      const std::uint64_t seed =
          util::SplitMix64(base_seed + slice_bits * 131 + run);
      SCOPED_TRACE("slice_bits=" + std::to_string(slice_bits) + " run=" +
                   std::to_string(run) + " seed=" + std::to_string(seed));
      util::Xoshiro256 rng(seed);

      DenseModel model;
      model.Grow(12, 5 * slice_bits + 7);  // non-aligned universe
      // Seed ~25% fill so both set and clear flips are plentiful.
      for (auto& row : model.bits) {
        for (std::size_t p = 0; p < row.size(); ++p) {
          row[p] = rng() % 4 == 0;
        }
      }
      SlicedStore store = model.Freshly(slice_bits);

      for (int batch = 0; batch < 120; ++batch) {
        // Occasionally grow the store mid-stream.
        std::uint32_t new_nv = model.num_vectors;
        std::uint64_t new_uni = model.universe;
        if (batch % 17 == 16) {
          new_nv += static_cast<std::uint32_t>(rng() % 3);
          new_uni += rng() % (slice_bits + 2);
          model.Grow(new_nv, new_uni);
        }

        const int edits = 1 + static_cast<int>(rng() % 20);
        std::vector<SliceEdit> edit_batch;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> touched;
        for (int e = 0; e < edits; ++e) {
          const auto v = static_cast<std::uint32_t>(rng() % model.num_vectors);
          std::uint64_t pos = rng() % model.universe;
          switch (rng() % 4) {
            case 0:  // slice-boundary bit
              pos = std::min<std::uint64_t>(
                  (pos / slice_bits) * slice_bits, model.universe - 1);
              break;
            case 1:  // last bit of a slice (recompaction trigger when
                     // it is the slice's only set bit)
              pos = std::min<std::uint64_t>(
                  (pos / slice_bits) * slice_bits + slice_bits - 1,
                  model.universe - 1);
              break;
            default:
              break;  // uniform
          }
          const auto p32 = static_cast<std::uint32_t>(pos);
          bool dup = false;
          for (const auto& [tv, tp] : touched) {
            if (tv == v && tp == p32) dup = true;
          }
          if (dup) continue;  // duplicates are tested separately below
          touched.emplace_back(v, p32);
          const bool set = !model.bits[v][p32];
          edit_batch.push_back(SliceEdit{v, p32, set});
          model.bits[v][p32] = set;
        }

        const std::uint64_t before_valid = store.valid_slice_count();
        const PatchStats stats = store.ApplyEdits(edit_batch, new_nv, new_uni);
        ExpectStoreMatchesModel(store, model, slice_bits);
        if (::testing::Test::HasFatalFailure()) return;
        // Structural accounting must reconcile with the slice census.
        ASSERT_EQ(before_valid + stats.slices_inserted - stats.slices_removed,
                  store.valid_slice_count());
        ASSERT_EQ(stats.bits_patched + stats.slices_inserted +
                      stats.slices_removed >
                      0,
                  !edit_batch.empty());

        // Every ~9th batch: malformed batches must throw and leave the
        // store untouched (duplicate edit, then a non-flip edit).
        if (batch % 9 == 3 && !edit_batch.empty()) {
          std::vector<SliceEdit> bad = {edit_batch.front(),
                                        edit_batch.front()};
          EXPECT_THROW((void)store.ApplyEdits(bad, new_nv, new_uni),
                       std::invalid_argument);
          const SliceEdit& last = edit_batch.back();
          // Re-applying the same flip is now a non-flip (set of a set
          // bit or clear of a clear bit).
          std::vector<SliceEdit> nonflip = {last};
          EXPECT_THROW((void)store.ApplyEdits(nonflip, new_nv, new_uni),
                       std::invalid_argument);
          ExpectStoreMatchesModel(store, model, slice_bits);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

}  // namespace
}  // namespace tcim::bit
