// Tests for the five CPU baseline TC algorithms: closed-form values,
// mutual agreement (parameterized across algorithms and graph
// families), and the published-comparator helpers.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "baseline/cpu_tc.h"
#include "baseline/reference_numbers.h"
#include "graph/generators.h"

namespace tcim::baseline {
namespace {

using graph::Graph;

const std::vector<TcAlgorithm>& AllAlgorithms() {
  static const std::vector<TcAlgorithm> algos = {
      TcAlgorithm::kNodeIterator, TcAlgorithm::kEdgeIteratorMerge,
      TcAlgorithm::kEdgeIteratorMark, TcAlgorithm::kForward,
      TcAlgorithm::kDenseTrace};
  return algos;
}

class AlgorithmTest : public ::testing::TestWithParam<TcAlgorithm> {};

TEST_P(AlgorithmTest, EmptyGraphHasNoTriangles) {
  EXPECT_EQ(CountTriangles(graph::GraphBuilder(0).Build(), GetParam()), 0u);
  EXPECT_EQ(CountTriangles(graph::GraphBuilder(10).Build(), GetParam()), 0u);
}

TEST_P(AlgorithmTest, SingleTriangle) {
  EXPECT_EQ(CountTriangles(graph::Complete(3), GetParam()), 1u);
}

TEST_P(AlgorithmTest, ClosedFormFamilies) {
  const TcAlgorithm algo = GetParam();
  EXPECT_EQ(CountTriangles(graph::Complete(9), algo), 84u);  // C(9,3)
  EXPECT_EQ(CountTriangles(graph::Cycle(12), algo), 0u);
  EXPECT_EQ(CountTriangles(graph::Path(12), algo), 0u);
  EXPECT_EQ(CountTriangles(graph::Star(12), algo), 0u);
  EXPECT_EQ(CountTriangles(graph::Wheel(12), algo), 11u);
  EXPECT_EQ(CountTriangles(graph::GridLattice(6, 6), algo), 0u);
  EXPECT_EQ(CountTriangles(graph::CompleteBipartite(5, 6), algo), 0u);
}

TEST_P(AlgorithmTest, AgreesWithMergeReferenceOnRandomGraphs) {
  const TcAlgorithm algo = GetParam();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = graph::ErdosRenyi(300, 2500, seed);
    ASSERT_EQ(CountTriangles(g, algo), CountTrianglesReference(g))
        << "seed=" << seed;
  }
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::HolmeKim(400, 2000, 0.7, seed);
    ASSERT_EQ(CountTriangles(g, algo), CountTrianglesReference(g))
        << "seed=" << seed;
  }
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Graph g = graph::Rmat(512, 3000, graph::RmatParams{}, seed);
    ASSERT_EQ(CountTriangles(g, algo), CountTrianglesReference(g))
        << "seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmTest,
                         ::testing::ValuesIn(AllAlgorithms()),
                         [](const auto& info) {
                           std::string name = ToString(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(DenseTrace, RejectsHugeGraphs) {
  const Graph g = graph::ErdosRenyi(5000, 5000, 1);
  EXPECT_THROW((void)CountTriangles(g, TcAlgorithm::kDenseTrace),
               std::invalid_argument);
}

TEST(ToStringNames, AreDistinct) {
  std::set<std::string> names;
  for (const TcAlgorithm a : AllAlgorithms()) {
    names.insert(ToString(a));
  }
  EXPECT_EQ(names.size(), AllAlgorithms().size());
}

TEST(ReferenceNumbers, FpgaEnergyUsesPaperRuntime) {
  const auto& fb = graph::GetPaperRefByName("ego-facebook");
  EXPECT_NEAR(FpgaEnergyJoules(fb), 0.093 * kFpgaBoardPowerWatts, 1e-9);
  const auto& amazon = graph::GetPaperRefByName("com-amazon");
  EXPECT_LT(FpgaEnergyJoules(amazon), 0.0);  // N/A in the paper
}

TEST(ReferenceNumbers, GpuEnergyUsesPaperRuntime) {
  const auto& ca = graph::GetPaperRefByName("roadNet-CA");
  EXPECT_NEAR(GpuEnergyJoules(ca), 0.18 * kGpuBoardPowerWatts, 1e-9);
}

TEST(ReferenceNumbers, SpeedupHandlesMissingData) {
  EXPECT_DOUBLE_EQ(Speedup(10.0, 2.0), 5.0);
  EXPECT_LT(Speedup(-1.0, 2.0), 0.0);
  EXPECT_LT(Speedup(10.0, 0.0), 0.0);
}

}  // namespace
}  // namespace tcim::baseline
