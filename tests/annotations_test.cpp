// Tests for src/util/mutex.h + src/util/thread_annotations.h: the
// annotated wrappers must behave exactly like the std primitives they
// veneer (mutual exclusion, RAII scope, TryLock, predicate waits) on
// every compiler, and the annotation macros must be true no-ops when
// the compiler is not clang — this TU compiling warning-free under
// g++ -Wall -Wextra -Werror *is* half of that claim, and the
// stringize checks below pin the other half.
//
// The static side — that clang -Werror=thread-safety REJECTS a
// guarded-field access without the lock — cannot be a runtime test:
// it is the `thread_safety_compile_fail` / `thread_safety_compile_ok`
// ctest pair, which feeds tests/compile_fail/guarded_by_violation.cpp
// to a clang found on the machine (skipped when there is none; the
// clang-analysis CI leg always has one). docs/STATIC_ANALYSIS.md maps
// the whole harness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::util {
namespace {

// --- the macros are no-ops off clang ---------------------------------------

#define TCIM_TEST_STR2(x) #x
#define TCIM_TEST_STR(x) TCIM_TEST_STR2(x)

#if !defined(__clang__)
// Stringizing an annotation use must yield the empty string: the
// wrappers add zero attributes, zero bytes, zero cycles under gcc.
static_assert(sizeof(TCIM_TEST_STR(TCIM_GUARDED_BY(mu_))) == 1,
              "TCIM_GUARDED_BY must expand to nothing off clang");
static_assert(sizeof(TCIM_TEST_STR(TCIM_REQUIRES(mu_))) == 1,
              "TCIM_REQUIRES must expand to nothing off clang");
static_assert(sizeof(TCIM_TEST_STR(TCIM_EXCLUDES(mu_))) == 1,
              "TCIM_EXCLUDES must expand to nothing off clang");
static_assert(sizeof(TCIM_TEST_STR(TCIM_ACQUIRE())) == 1,
              "TCIM_ACQUIRE must expand to nothing off clang");
static_assert(sizeof(TCIM_TEST_STR(TCIM_RELEASE())) == 1,
              "TCIM_RELEASE must expand to nothing off clang");
static_assert(sizeof(TCIM_TEST_STR(TCIM_NO_THREAD_SAFETY_ANALYSIS)) == 1,
              "the escape hatch must expand to nothing off clang");
#endif

// The wrapper must not grow the primitive: a capability attribute is
// metadata, not state.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "util::Mutex must add no state over std::mutex");

// --- runtime semantics match the std primitives -----------------------------

// An annotated guarded structure, used exactly per the repo
// conventions (docs/STATIC_ANALYSIS.md): Mutex + GUARDED_BY fields +
// a REQUIRES private helper.
class GuardedCounter {
 public:
  void Add(std::uint64_t delta) {
    MutexLock lock(&mu_);
    AddLocked(delta);
  }

  [[nodiscard]] std::uint64_t Value() const {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  void AddLocked(std::uint64_t delta) TCIM_REQUIRES(mu_) { value_ += delta; }

  mutable Mutex mu_;
  std::uint64_t value_ TCIM_GUARDED_BY(mu_) = 0;
};

TEST(AnnotatedMutex, MutualExclusionUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(AnnotatedMutex, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(AnnotatedCondVar, PredicateLoopHandshake) {
  // The repo's wait convention: explicit predicate loop around
  // CondVar::Wait (a lambda handed to std::condition_variable::wait
  // would be a function body the analysis cannot see into).
  Mutex mu;
  CondVar cv;
  bool ready = false;       // guarded by mu (scope-local discipline)
  std::uint64_t value = 0;  // guarded by mu

  std::thread producer([&] {
    MutexLock lock(&mu);
    value = 42;
    ready = true;
    cv.NotifyOne();
  });

  {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(mu);
    EXPECT_EQ(value, 42u);
  }
  producer.join();
}

TEST(AnnotatedCondVar, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(mu);
      woke.fetch_add(1, std::memory_order_relaxed);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
    cv.NotifyAll();
  }
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(AnnotatedCondVar, WaitReleasesTheMutexWhileBlocked) {
  // If Wait failed to release the native mutex, the producer below
  // could never acquire it and this test would hang (ctest timeout).
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread producer;
  {
    MutexLock lock(&mu);
    producer = std::thread([&] {
      MutexLock inner(&mu);  // must be acquirable while main waits
      ready = true;
      cv.NotifyOne();
    });
    while (!ready) cv.Wait(mu);
  }
  producer.join();
  EXPECT_TRUE(ready);
}

}  // namespace
}  // namespace tcim::util
