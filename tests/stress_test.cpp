// Heavy concurrency stress over the snapshot-serving runtime. Scaled
// by environment knobs so the default registration stays minutes-fast
// while the nightly CI leg (and TSan) can crank it up:
//
//   TCIM_STRESS_ITERS    — writer batches per scenario (default 200)
//   TCIM_STRESS_THREADS  — reader/tenant threads      (default 4)
//
// Registered as a single ctest entry under the `stress` label (see
// CMakeLists.txt); quick legs exclude it with `ctest -LE stress`.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/cpu_tc.h"
#include "graph/generators.h"
#include "runtime/epoch_manager.h"
#include "runtime/scheduler.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"
#include "stream/incremental_counter.h"
#include "util/env.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::VertexId;
using runtime::EpochManager;
using runtime::StreamSession;
using stream::EdgeDelta;

std::uint64_t StressIters() { return util::EnvU64("TCIM_STRESS_ITERS", 200); }
std::uint64_t StressThreads() {
  return std::max<std::uint64_t>(1, util::EnvU64("TCIM_STRESS_THREADS", 4));
}

EdgeDelta RandomDelta(util::Xoshiro256& rng, VertexId universe, int ops) {
  EdgeDelta delta;
  for (int k = 0; k < ops; ++k) {
    const auto u = static_cast<VertexId>(rng() % universe);
    const auto v = static_cast<VertexId>(rng() % universe);
    if (rng() % 3 == 0) {
      delta.Erase(u, v);
    } else {
      delta.Insert(u, v);
    }
  }
  return delta;
}

std::uint64_t CountPin(const EpochManager::Pin& pin) {
  return pin->matrix->AndPopcountAllEdges() /
         graph::CountMultiplier(pin->orientation);
}

TEST(StressRunner, ReadersVsWriterRandomChurn) {
  // Direct-session stress: TCIM_STRESS_THREADS readers pin and count
  // continuously while the writer streams TCIM_STRESS_ITERS randomized
  // batches. Every pin is checked against its epoch's maintained
  // total; every 32nd against the from-scratch CPU oracle.
  const Graph seed = graph::ErdosRenyi(250, 1000, 21);
  StreamSession session(seed);
  const std::uint64_t iters = StressIters();
  const std::uint64_t readers = StressThreads();

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> checks{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(readers);
  for (std::uint64_t r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      util::Xoshiro256 rng(0xBEEF + r);
      // do-while so every reader checks at least once even when the
      // writer finishes before this thread is first scheduled.
      do {
        const EpochManager::Pin pin = session.PinEpoch();
        if (CountPin(pin) != pin->triangles) failures.fetch_add(1);
        if (rng() % 32 == 0 &&
            baseline::CountTrianglesReference(
                runtime::MaterializeEpochGraph(*pin)) != pin->triangles) {
          failures.fetch_add(1);
        }
        checks.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }

  util::Xoshiro256 rng(0xABCD);
  for (std::uint64_t b = 0; b < iters; ++b) {
    const StreamSession::AppliedBatch applied =
        session.Apply(RandomDelta(rng, 260, 8));
    ASSERT_EQ(applied.epoch, b + 1);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checks.load(), 0u);
  EXPECT_EQ(session.epochs().live_epochs(), 1u);
  EXPECT_EQ(session.epochs().retired(), iters);
  EXPECT_EQ(baseline::CountTrianglesReference(session.Snapshot()),
            session.triangles());
}

TEST(StressRunner, SchedulerMixedQueryUpdateChurn) {
  // Scheduler-path stress: tenant threads flood SubmitQuery while the
  // main thread submits the update stream. Afterwards every update
  // outcome must replay in submission order on a sequential oracle,
  // and every query outcome must match the oracle total at the epoch
  // it pinned.
  const Graph seed = graph::ErdosRenyi(200, 800, 31);
  auto session = std::make_shared<StreamSession>(seed);
  runtime::SchedulerConfig config;
  config.dispatch_threads = 2;
  config.pool.num_banks = 2;
  runtime::Scheduler scheduler(config);

  const std::uint64_t batches = std::max<std::uint64_t>(8, StressIters() / 4);
  const std::uint64_t tenants = StressThreads();

  util::Xoshiro256 rng(0x5EED);
  std::vector<EdgeDelta> deltas;
  deltas.reserve(batches);
  for (std::uint64_t b = 0; b < batches; ++b) {
    deltas.push_back(RandomDelta(rng, 210, 6));
  }

  std::atomic<bool> done{false};
  std::vector<std::vector<runtime::JobHandle>> tenant_queries(tenants);
  std::vector<std::thread> threads;
  threads.reserve(tenants);
  for (std::uint64_t t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      do {
        tenant_queries[t].push_back(scheduler.SubmitQuery(session, {}));
        std::this_thread::yield();
      } while (!done.load(std::memory_order_acquire));
    });
  }

  std::vector<runtime::JobHandle> updates;
  updates.reserve(batches);
  for (const EdgeDelta& delta : deltas) {
    updates.push_back(scheduler.SubmitUpdate(session, delta, {}));
  }
  for (const runtime::JobHandle& h : updates) (void)h.Wait();
  done.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  scheduler.Shutdown();

  // Sequential replay oracle: epoch e -> exact triangle total.
  std::map<std::uint64_t, std::uint64_t> oracle;
  stream::IncrementalCounter replay(seed);
  oracle[0] = replay.triangles();
  for (std::uint64_t b = 0; b < batches; ++b) {
    oracle[b + 1] = replay.ApplyBatch(deltas[b]).triangles;
  }

  for (std::uint64_t b = 0; b < batches; ++b) {
    const runtime::JobOutcome outcome = updates[b].Wait();
    ASSERT_EQ(outcome.state, runtime::JobState::kDone) << outcome.error;
    // Updates serialize in submission order: batch b publishes epoch
    // b+1 and reproduces the sequential totals exactly.
    ASSERT_EQ(outcome.epoch, b + 1);
    ASSERT_EQ(outcome.update.triangles, oracle[b + 1]) << "batch " << b;
  }

  std::uint64_t answered = 0;
  for (const std::vector<runtime::JobHandle>& handles : tenant_queries) {
    for (const runtime::JobHandle& h : handles) {
      const runtime::JobOutcome outcome = h.Wait();
      ASSERT_EQ(outcome.state, runtime::JobState::kDone) << outcome.error;
      ASSERT_TRUE(oracle.count(outcome.query.epoch));
      ASSERT_EQ(outcome.query.triangles, oracle[outcome.query.epoch])
          << "epoch " << outcome.query.epoch;
      ++answered;
    }
  }
  EXPECT_GT(answered, 0u);
  EXPECT_EQ(baseline::CountTrianglesReference(session->Snapshot()),
            session->triangles());
}

}  // namespace
}  // namespace tcim
