// Tests for DAG orientation (paper §III): arc counts, acyclicity,
// degree-order properties, and triangle-count equivalence across
// orientations.
#include <gtest/gtest.h>

#include "baseline/cpu_tc.h"
#include "graph/generators.h"
#include "graph/orientation.h"

namespace tcim::graph {
namespace {

TEST(Orientation, ToStringNames) {
  EXPECT_EQ(ToString(Orientation::kUpper), "upper");
  EXPECT_EQ(ToString(Orientation::kDegree), "degree");
  EXPECT_EQ(ToString(Orientation::kFullSymmetric), "full");
}

TEST(Orientation, CountMultipliers) {
  EXPECT_EQ(CountMultiplier(Orientation::kUpper), 1u);
  EXPECT_EQ(CountMultiplier(Orientation::kDegree), 1u);
  EXPECT_EQ(CountMultiplier(Orientation::kFullSymmetric), 6u);
}

TEST(Orientation, UpperKeepsOneArcPerEdge) {
  const Graph g = ErdosRenyi(200, 1500, 1);
  const OrientedCsr dag = Orient(g, Orientation::kUpper);
  EXPECT_EQ(dag.arc_count(), g.num_edges());
  for (VertexId u = 0; u < dag.num_vertices; ++u) {
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      ASSERT_LT(u, dag.neighbors[e]);  // arc points to larger id
    }
  }
}

TEST(Orientation, FullKeepsBothArcs) {
  const Graph g = ErdosRenyi(200, 1500, 2);
  const OrientedCsr full = Orient(g, Orientation::kFullSymmetric);
  EXPECT_EQ(full.arc_count(), 2 * g.num_edges());
}

TEST(Orientation, DegreeKeepsOneArcPerEdge) {
  const Graph g = Rmat(512, 4000, RmatParams{}, 3);
  const OrientedCsr dag = Orient(g, Orientation::kDegree);
  EXPECT_EQ(dag.arc_count(), g.num_edges());
}

TEST(Orientation, DegreeRelabelIsAPermutation) {
  const Graph g = Rmat(256, 2000, RmatParams{}, 4);
  const OrientedCsr dag = Orient(g, Orientation::kDegree);
  ASSERT_EQ(dag.relabel.size(), g.num_vertices());
  std::vector<bool> seen(g.num_vertices(), false);
  for (const VertexId r : dag.relabel) {
    ASSERT_LT(r, g.num_vertices());
    ASSERT_FALSE(seen[r]);
    seen[r] = true;
  }
}

TEST(Orientation, DegreeArcsPointToHigherRank) {
  const Graph g = HolmeKim(300, 1800, 0.5, 5);
  const OrientedCsr dag = Orient(g, Orientation::kDegree);
  for (VertexId u = 0; u < dag.num_vertices; ++u) {
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      ASSERT_LT(u, dag.neighbors[e]);  // ranks are the new ids
    }
  }
}

TEST(Orientation, DegreeBoundsHubOutDegree) {
  // A star: the hub has degree n-1 but rank-orientation gives it
  // out-degree 0 (every leaf has smaller degree).
  const Graph g = Star(1000);
  const OrientedCsr upper = Orient(g, Orientation::kUpper);
  const OrientedCsr degree = Orient(g, Orientation::kDegree);
  EXPECT_EQ(upper.MaxOutDegree(), 999u);  // hub is vertex 0
  EXPECT_EQ(degree.MaxOutDegree(), 1u);   // leaves each point at the hub
}

TEST(Orientation, DegreeReducesMaxOutDegreeOnSkewedGraphs) {
  const Graph g = Rmat(2048, 20000, RmatParams{}, 6);
  const OrientedCsr upper = Orient(g, Orientation::kUpper);
  const OrientedCsr degree = Orient(g, Orientation::kDegree);
  EXPECT_LT(degree.MaxOutDegree(), upper.MaxOutDegree());
}

TEST(Orientation, PreservesDegreeSums) {
  const Graph g = ErdosRenyi(150, 900, 7);
  for (const Orientation o :
       {Orientation::kUpper, Orientation::kDegree}) {
    const OrientedCsr dag = Orient(g, o);
    // Out-degree + in-degree must equal the undirected degree; check
    // via total arcs and per-vertex conservation through the relabel.
    std::vector<std::uint64_t> in_deg(g.num_vertices(), 0);
    for (const VertexId v : dag.neighbors) ++in_deg[v];
    for (VertexId u = 0; u < dag.num_vertices; ++u) {
      const std::uint64_t out_deg = dag.offsets[u + 1] - dag.offsets[u];
      const VertexId old_id =
          o == Orientation::kUpper
              ? u
              : [&] {
                  for (VertexId x = 0; x < g.num_vertices(); ++x) {
                    if (dag.relabel[x] == u) return x;
                  }
                  return VertexId{0};
                }();
      ASSERT_EQ(out_deg + in_deg[u], g.Degree(old_id)) << "u=" << u;
    }
  }
}

TEST(Orientation, RowsAreSortedStrictlyIncreasing) {
  const Graph g = HolmeKim(400, 2400, 0.6, 8);
  for (const Orientation o : {Orientation::kUpper, Orientation::kDegree,
                              Orientation::kFullSymmetric}) {
    const OrientedCsr dag = Orient(g, o);
    for (VertexId u = 0; u < dag.num_vertices; ++u) {
      for (std::uint64_t e = dag.offsets[u] + 1; e < dag.offsets[u + 1];
           ++e) {
        ASSERT_LT(dag.neighbors[e - 1], dag.neighbors[e]);
      }
    }
  }
}

}  // namespace
}  // namespace tcim::graph
