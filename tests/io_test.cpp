// Tests for SNAP text + binary graph serialization.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/generators.h"
#include "graph/io.h"

namespace tcim::graph {
namespace {

TEST(SnapReader, ParsesBasicEdgeList) {
  std::istringstream in("0 1\n1 2\n0 2\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
}

TEST(SnapReader, SkipsCommentsAndBlankLines) {
  std::istringstream in(
      "# Directed graph (each unordered pair of nodes is saved once)\n"
      "% another comment style\n"
      "\n"
      "   \t \n"
      "0\t1\n"
      "# trailing comment\n"
      "1\t2\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SnapReader, RemapsSparseIds) {
  std::istringstream in("1000000 42\n42 99999\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  // Remap is by sorted original id: 42->0, 99999->1, 1000000->2.
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(0, 1));
}

TEST(SnapReader, DropsDuplicatesAndSelfLoops) {
  std::istringstream in("0 1\n1 0\n0 1\n2 2\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(SnapReader, ThrowsOnGarbage) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(ReadSnapEdgeList(in), std::runtime_error);
}

TEST(SnapReader, ThrowsOnMissingSecondId) {
  std::istringstream in("0\n");
  EXPECT_THROW(ReadSnapEdgeList(in), std::runtime_error);
}

TEST(SnapReader, IgnoresExtraColumns) {
  std::istringstream in("0 1 1588893600\n1 2 1588893700\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SnapReader, RejectsTrailingJunkGluedToAnId) {
  // "1 2garbage" must not silently parse as edge (1, 2).
  std::istringstream second("1 2garbage\n");
  EXPECT_THROW(ReadSnapEdgeList(second), std::runtime_error);
  std::istringstream first("1x 2\n");
  EXPECT_THROW(ReadSnapEdgeList(first), std::runtime_error);
}

TEST(SnapReader, RejectsNonNumericExtraColumns) {
  std::istringstream in("0 1 ok-then\n");
  EXPECT_THROW(ReadSnapEdgeList(in), std::runtime_error);
  std::istringstream glued("0 1 123abc\n");
  EXPECT_THROW(ReadSnapEdgeList(glued), std::runtime_error);
}

TEST(SnapReader, AcceptsRealValuedWeightColumns) {
  // Weighted edge lists carry float weights; they are numeric extra
  // columns, not junk.
  std::istringstream in("0 1 0.75\n1 2 -3.5e-2 7\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SnapReader, JunkErrorsNameTheLine) {
  std::istringstream in("0 1\n# fine\n2 3oops\n");
  try {
    (void)ReadSnapEdgeList(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(SnapReader, AcceptsCrlfLineEndings) {
  std::istringstream in("# comment\r\n0\t1\r\n1 2 1588893600\r\n\r\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
}

TEST(SnapReader, BothCommentStylesAnywhere) {
  std::istringstream in(
      "% matrix-market style header\n"
      "0 1\n"
      "  # indented snap comment\n"
      "  % indented percent comment\n"
      "1 2\n");
  const Graph g = ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(SnapRoundTrip, WriteThenReadPreservesGraph) {
  const Graph original = HolmeKim(200, 1000, 0.5, 3);
  std::stringstream buffer;
  WriteSnapEdgeList(original, buffer);
  const Graph restored = ReadSnapEdgeList(buffer);
  ASSERT_EQ(restored.num_vertices(), original.num_vertices());
  ASSERT_EQ(restored.num_edges(), original.num_edges());
  EXPECT_TRUE(std::equal(original.adjacency().begin(),
                         original.adjacency().end(),
                         restored.adjacency().begin()));
}

TEST(BinaryRoundTrip, PreservesGraph) {
  const Graph original = GeometricRoad(2000, RoadParams{}, 4);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(original, buffer);
  const Graph restored = ReadBinary(buffer);
  ASSERT_EQ(restored.num_vertices(), original.num_vertices());
  ASSERT_EQ(restored.num_edges(), original.num_edges());
  EXPECT_TRUE(std::equal(original.adjacency().begin(),
                         original.adjacency().end(),
                         restored.adjacency().begin()));
}

TEST(BinaryRoundTrip, EmptyGraph) {
  const Graph original = GraphBuilder(7).Build();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(original, buffer);
  const Graph restored = ReadBinary(buffer);
  EXPECT_EQ(restored.num_vertices(), 7u);
  EXPECT_EQ(restored.num_edges(), 0u);
}

TEST(BinaryReader, RejectsBadMagic) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  buffer << "NOTAGRAPHFILE................";
  EXPECT_THROW(ReadBinary(buffer), std::runtime_error);
}

TEST(BinaryReader, RejectsTruncatedFile) {
  const Graph original = ErdosRenyi(100, 300, 5);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  WriteBinary(original, buffer);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data,
                              std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(ReadBinary(truncated), std::runtime_error);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(ReadSnapEdgeListFile("/nonexistent/path.txt"),
               std::runtime_error);
  EXPECT_THROW(ReadBinaryFile("/nonexistent/path.bin"), std::runtime_error);
}

TEST(FileIo, WriteAndReadBackFiles) {
  const Graph original = ErdosRenyi(50, 120, 6);
  const std::string text_path = ::testing::TempDir() + "/tcim_io_test.txt";
  const std::string bin_path = ::testing::TempDir() + "/tcim_io_test.bin";
  {
    std::ofstream out(text_path);
    WriteSnapEdgeList(original, out);
  }
  WriteBinaryFile(original, bin_path);
  const Graph from_text = ReadSnapEdgeListFile(text_path);
  const Graph from_bin = ReadBinaryFile(bin_path);
  EXPECT_EQ(from_text.num_edges(), original.num_edges());
  EXPECT_EQ(from_bin.num_edges(), original.num_edges());
}

}  // namespace
}  // namespace tcim::graph
