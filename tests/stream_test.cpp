// Streaming layer: delta parsing, in-place slice-store patching,
// dynamic orientation maintenance, exact incremental counting, and the
// scheduler's update-job kind.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "baseline/cpu_tc.h"
#include "bitmatrix/sliced_store.h"
#include "graph/generators.h"
#include "runtime/scheduler.h"
#include "runtime/stream_session.h"
#include "stream/dynamic_graph.h"
#include "stream/edge_delta.h"
#include "stream/incremental_counter.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;
using graph::VertexId;
using stream::EdgeDelta;
using stream::EdgeOp;

// --- delta replay format ---------------------------------------------------

TEST(EdgeDeltaIo, ParsesOpsCommentsAndBatchSeparators) {
  std::istringstream in(
      "# header comment\n"
      "+ 0 1\n"
      "  + 1 2\n"
      "% alt comment\n"
      "- 0 1\n"
      "=\n"
      "+ 3 4\n");
  const std::vector<EdgeDelta> batches = stream::ReadDeltaStream(in);
  ASSERT_EQ(batches.size(), 2u);
  ASSERT_EQ(batches[0].size(), 3u);
  EXPECT_TRUE(batches[0].ops[0].insert);
  EXPECT_EQ(batches[0].ops[0].u, 0u);
  EXPECT_EQ(batches[0].ops[0].v, 1u);
  EXPECT_FALSE(batches[0].ops[2].insert);
  ASSERT_EQ(batches[1].size(), 1u);
  EXPECT_EQ(batches[1].ops[0].u, 3u);
}

TEST(EdgeDeltaIo, RoundTripsThroughWriter) {
  std::vector<EdgeDelta> batches(2);
  batches[0].Insert(1, 2);
  batches[0].Erase(3, 4);
  batches[1].Insert(5, 6);
  std::ostringstream out;
  stream::WriteDeltaStream(batches, out);
  std::istringstream in(out.str());
  const std::vector<EdgeDelta> parsed = stream::ReadDeltaStream(in);
  ASSERT_EQ(parsed.size(), 2u);
  ASSERT_EQ(parsed[0].size(), 2u);
  EXPECT_FALSE(parsed[0].ops[1].insert);
  EXPECT_EQ(parsed[1].ops[0].v, 6u);
}

TEST(EdgeDeltaIo, ThrowsOnMalformedLine) {
  std::istringstream bad_verb("* 1 2\n");
  EXPECT_THROW((void)stream::ReadDeltaStream(bad_verb), std::runtime_error);
  std::istringstream missing_field("+ 7\n");
  EXPECT_THROW((void)stream::ReadDeltaStream(missing_field),
               std::runtime_error);
  // Ids that do not fit VertexId must be rejected, not truncated;
  // negative input wraps to huge unsigned and is caught the same way.
  std::istringstream too_big("+ 4294967296 5\n");
  EXPECT_THROW((void)stream::ReadDeltaStream(too_big), std::runtime_error);
  std::istringstream negative("- 0 -1\n");
  EXPECT_THROW((void)stream::ReadDeltaStream(negative), std::runtime_error);
}

// --- SlicedStore::ApplyEdits ----------------------------------------------

bit::SlicedStore StoreFromRows(
    const std::vector<std::vector<std::uint32_t>>& rows, std::uint64_t universe,
    std::uint32_t slice_bits) {
  std::vector<std::uint64_t> offsets{0};
  std::vector<std::uint32_t> positions;
  for (const auto& row : rows) {
    positions.insert(positions.end(), row.begin(), row.end());
    offsets.push_back(positions.size());
  }
  return bit::SlicedStore::FromCsr(static_cast<std::uint32_t>(rows.size()),
                                   universe, offsets, positions, slice_bits);
}

TEST(SlicedStoreEdits, InPlacePatchWhenSlicesStayValid) {
  bit::SlicedStore store = StoreFromRows({{1, 5}, {64, 70}}, 128, 64);
  const std::vector<bit::SliceEdit> edits = {
      {0, 6, true},    // same slice as bits 1/5
      {1, 64, false},  // slice keeps bit 70
  };
  const bit::PatchStats stats = store.ApplyEdits(edits, 2, 128);
  EXPECT_FALSE(stats.rebuilt);
  EXPECT_EQ(stats.bits_patched, 2u);
  EXPECT_EQ(stats.slices_inserted, 0u);
  EXPECT_EQ(stats.slices_removed, 0u);
  EXPECT_TRUE(store.TestBit(0, 6));
  EXPECT_FALSE(store.TestBit(1, 64));
  EXPECT_TRUE(store.TestBit(1, 70));
  EXPECT_EQ(store.valid_slice_count(), 2u);
}

TEST(SlicedStoreEdits, StructuralInsertAndRemove) {
  bit::SlicedStore store = StoreFromRows({{1}, {64}}, 128, 64);
  const std::vector<bit::SliceEdit> edits = {
      {0, 100, true},  // fresh slice for row 0
      {1, 64, false},  // empties row 1's only slice
  };
  const bit::PatchStats stats = store.ApplyEdits(edits, 2, 128);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_EQ(stats.slices_inserted, 1u);
  EXPECT_EQ(stats.slices_removed, 1u);
  EXPECT_TRUE(store.TestBit(0, 100));
  EXPECT_FALSE(store.TestBit(1, 64));
  EXPECT_EQ(store.SliceCount(1), 0u);
  // Invariants: no empty slice survives, indices strictly increasing.
  EXPECT_EQ(store.valid_slice_count(), 2u);
}

TEST(SlicedStoreEdits, GrowsVectorsAndUniverse) {
  bit::SlicedStore store = StoreFromRows({{0}}, 64, 64);
  const std::vector<bit::SliceEdit> edits = {{3, 130, true}};
  const bit::PatchStats stats = store.ApplyEdits(edits, 4, 192);
  EXPECT_TRUE(stats.rebuilt);
  EXPECT_EQ(store.num_vectors(), 4u);
  EXPECT_EQ(store.universe(), 192u);
  EXPECT_EQ(store.slices_per_vector(), 3u);
  EXPECT_TRUE(store.TestBit(3, 130));
  EXPECT_TRUE(store.TestBit(0, 0));
}

TEST(SlicedStoreEdits, RejectsNonFlipsDuplicatesAndShrink) {
  bit::SlicedStore store = StoreFromRows({{1}}, 64, 64);
  // Set of an already-set bit.
  EXPECT_THROW(
      (void)store.ApplyEdits(std::vector<bit::SliceEdit>{{0, 1, true}}, 1, 64),
      std::invalid_argument);
  // Clear of an already-clear bit (valid slice).
  EXPECT_THROW(
      (void)store.ApplyEdits(std::vector<bit::SliceEdit>{{0, 2, false}}, 1,
                             64),
      std::invalid_argument);
  // Clear landing in an invalid slice.
  EXPECT_THROW((void)store.ApplyEdits(
                   std::vector<bit::SliceEdit>{{0, 63, false}}, 1, 64),
               std::invalid_argument);
  // Duplicate edits of one position.
  EXPECT_THROW((void)store.ApplyEdits(
                   std::vector<bit::SliceEdit>{{0, 5, true}, {0, 5, true}}, 1,
                   64),
               std::invalid_argument);
  // Shrinking dimensions.
  EXPECT_THROW((void)store.ApplyEdits({}, 0, 64), std::invalid_argument);
  // The store is untouched after the failed batches.
  EXPECT_TRUE(store.TestBit(0, 1));
  EXPECT_EQ(store.valid_slice_count(), 1u);
}

TEST(SlicedStoreEdits, RandomizedEditsMatchFreshBuild) {
  util::Xoshiro256 rng(7);
  for (int round = 0; round < 20; ++round) {
    const std::uint32_t n = 24;
    const std::uint32_t slice_bits = round % 2 == 0 ? 64 : 32;
    std::vector<std::vector<std::uint32_t>> rows(n);
    std::vector<std::vector<bool>> dense(n, std::vector<bool>(n, false));
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < n; ++p) {
        if (rng() % 4 == 0) {
          rows[v].push_back(p);
          dense[v][p] = true;
        }
      }
    }
    bit::SlicedStore store = StoreFromRows(rows, n, slice_bits);
    // Random flip batch (unique positions).
    std::vector<bit::SliceEdit> edits;
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < n; ++p) {
        if (rng() % 5 == 0) {
          edits.push_back(bit::SliceEdit{v, p, !dense[v][p]});
          dense[v][p] = !dense[v][p];
        }
      }
    }
    (void)store.ApplyEdits(edits, n, n);
    // The patched store must equal a store built from the edited rows.
    std::vector<std::vector<std::uint32_t>> expected_rows(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < n; ++p) {
        if (dense[v][p]) expected_rows[v].push_back(p);
      }
    }
    const bit::SlicedStore fresh = StoreFromRows(expected_rows, n, slice_bits);
    ASSERT_EQ(store.valid_slice_count(), fresh.valid_slice_count());
    ASSERT_EQ(store.set_bit_count(), fresh.set_bit_count());
    for (std::uint32_t v = 0; v < n; ++v) {
      for (std::uint32_t p = 0; p < n; ++p) {
        ASSERT_EQ(store.TestBit(v, p), dense[v][p])
            << "round " << round << " v=" << v << " p=" << p;
      }
    }
  }
}

TEST(SlicedStoreKernel, AndPopcountVectorsMatchesDenseIntersection) {
  bit::SlicedStore store =
      StoreFromRows({{1, 5, 64, 100}, {5, 64, 101}, {}}, 128, 64);
  std::uint64_t pairs = 0;
  EXPECT_EQ(bit::AndPopcountVectors(store, 0, store, 1,
                                    bit::PopcountKind::kBuiltin, &pairs),
            2u);  // {5, 64}
  EXPECT_EQ(pairs, 2u);  // both slices of each row are valid and shared
  EXPECT_EQ(bit::AndPopcountVectors(store, 0, store, 2), 0u);
}

// --- DynamicGraph ----------------------------------------------------------

Graph SeedGraph() {
  // Fig. 2-sized playground: two triangles sharing edge {1, 2}.
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(4, 5);
  return std::move(b).Build();
}

TEST(DynamicGraph, NormalizeDropsNoOps) {
  const stream::DynamicGraph dyn(SeedGraph(), Orientation::kUpper, 64);
  EdgeDelta delta;
  delta.Insert(0, 1);   // duplicate of an existing edge
  delta.Insert(0, 3);   // real insert
  delta.Insert(3, 0);   // duplicate of the pending insert (reversed)
  delta.Erase(4, 4);    // self-loop
  delta.Erase(0, 5);    // absent edge
  delta.Erase(4, 5);    // real delete
  delta.Erase(4, 5);    // duplicate delete
  const std::vector<EdgeOp> ops = dyn.Normalize(delta);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].insert);
  EXPECT_EQ(ops[0].u, 0u);
  EXPECT_EQ(ops[0].v, 3u);
  EXPECT_FALSE(ops[1].insert);
}

TEST(DynamicGraph, InsertDeleteToggleNormalizesToSequence) {
  const stream::DynamicGraph dyn(SeedGraph(), Orientation::kUpper, 64);
  EdgeDelta delta;
  delta.Insert(0, 3);  // absent -> real insert
  delta.Erase(0, 3);   // now present -> real delete
  const std::vector<EdgeOp> ops = dyn.Normalize(delta);
  EXPECT_EQ(ops.size(), 2u);  // both kept: each flips membership
}

void ExpectMatrixMatchesRebuild(const stream::DynamicGraph& dyn) {
  // The patched matrix must be bit-identical to a fresh re-slice.
  stream::DynamicGraph fresh(dyn.ToGraph(), dyn.orientation(),
                             dyn.slice_bits());
  const bit::SlicedStore& got = dyn.matrix().rows();
  const bit::SlicedStore& want = fresh.matrix().rows();
  ASSERT_EQ(got.num_vectors(), want.num_vectors());
  ASSERT_EQ(got.valid_slice_count(), want.valid_slice_count());
  ASSERT_EQ(got.set_bit_count(), want.set_bit_count());
  for (std::uint32_t v = 0; v < got.num_vectors(); ++v) {
    EXPECT_TRUE(got.ToBitVector(v) == want.ToBitVector(v)) << "row " << v;
  }
  ASSERT_EQ(dyn.matrix().cols().set_bit_count(), want.set_bit_count());
}

TEST(DynamicGraph, PatchedMatrixMatchesRebuildUpper) {
  stream::DynamicGraph dyn(SeedGraph(), Orientation::kUpper, 64);
  EdgeDelta delta;
  delta.Insert(0, 3);
  delta.Erase(1, 2);
  delta.Insert(3, 5);
  (void)dyn.Apply(delta);
  EXPECT_EQ(dyn.num_edges(), 7u);
  EXPECT_TRUE(dyn.HasEdge(0, 3));
  EXPECT_FALSE(dyn.HasEdge(1, 2));
  ExpectMatrixMatchesRebuild(dyn);
}

TEST(DynamicGraph, DegreeOrientationFlipsAffectedArcsOnly) {
  stream::DynamicGraph dyn(SeedGraph(), Orientation::kDegree, 64);
  // Pump vertex 0's degree: its key passes several neighbours, so
  // surviving arcs incident to 0 must flip while the rest stand.
  EdgeDelta delta;
  delta.Insert(0, 3);
  delta.Insert(0, 4);
  delta.Insert(0, 5);
  const stream::ApplyStats stats = dyn.Apply(delta);
  EXPECT_EQ(stats.inserted, 3u);
  EXPECT_GT(stats.flipped_arcs, 0u);
  ExpectMatrixMatchesRebuild(dyn);
}

TEST(DynamicGraph, GrowsVertexUniverse) {
  stream::DynamicGraph dyn(SeedGraph(), Orientation::kUpper, 64);
  EdgeDelta delta;
  delta.Insert(2, 9);  // vertex 9 did not exist
  const stream::ApplyStats stats = dyn.Apply(delta);
  EXPECT_EQ(stats.grown_vertices, 4u);
  EXPECT_EQ(dyn.num_vertices(), 10u);
  EXPECT_TRUE(dyn.HasEdge(9, 2));
  ExpectMatrixMatchesRebuild(dyn);
}

TEST(DynamicGraph, ApplyNormalizedRejectsRawOps) {
  stream::DynamicGraph dyn(SeedGraph(), Orientation::kUpper, 64);
  const std::vector<EdgeOp> raw = {{0, 1, true}};  // edge already exists
  EXPECT_THROW((void)dyn.ApplyNormalized(raw), std::invalid_argument);
}

// --- IncrementalCounter ----------------------------------------------------

std::uint64_t RecountTruth(const stream::IncrementalCounter& counter) {
  return baseline::CountTrianglesReference(counter.graph().ToGraph());
}

TEST(IncrementalCounter, SingleInsertClosesWedges) {
  stream::StreamConfig config;
  config.recount_fraction = 1.0;  // 6-edge toy graph: keep 1-op batches
                                  // on the incremental path
  stream::IncrementalCounter counter(SeedGraph(), config);
  EXPECT_EQ(counter.triangles(), 2u);
  EdgeDelta delta;
  delta.Insert(0, 3);  // closes {0,1,3} and {0,2,3}
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_EQ(r.delta, 2);
  EXPECT_EQ(r.triangles, 4u);
  EXPECT_FALSE(r.stats.used_recount);
  EXPECT_GT(r.stats.and_ops, 0u);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

TEST(IncrementalCounter, BatchedWedgeKernelSkipsHardwareModel) {
  // The 4-way wedge kernel gathers all four store combinations into
  // one batched dispatch at the default kBuiltin — never feeding the
  // LUT8 hardware-model counter — while a kLut8-configured counter
  // still routes through the exact per-word model and stays exact.
  stream::StreamConfig config;
  config.recount_fraction = 1.0;
  stream::IncrementalCounter fast(SeedGraph(), config);
  const std::uint64_t before = bit::Lut8Invocations();
  EdgeDelta delta;
  delta.Insert(0, 3);
  EXPECT_EQ(fast.ApplyBatch(delta).delta, 2);
  EXPECT_EQ(bit::Lut8Invocations(), before)
      << "kBuiltin wedge kernel touched the LUT8 hardware model";

  config.popcount = bit::PopcountKind::kLut8;
  stream::IncrementalCounter modeled(SeedGraph(), config);
  EXPECT_GT(bit::Lut8Invocations(), before);  // init recount fed it
  const std::uint64_t mid = bit::Lut8Invocations();
  const stream::BatchResult r = modeled.ApplyBatch(delta);
  EXPECT_EQ(r.delta, 2);
  EXPECT_EQ(r.triangles, 4u);
  EXPECT_GT(bit::Lut8Invocations(), mid);
  EXPECT_EQ(r.triangles, RecountTruth(modeled));
}

TEST(IncrementalCounter, WedgeKernelExactUnderEveryPairPolicy) {
  // The same insert batch must produce the same triangle delta on
  // every forced pair-enumeration policy, and BatchStats.paths must
  // attribute the wedge ANDs to the path that actually ran (the auto
  // rule routes every width zero-copy; see kernel_backend.h).
  const std::optional<bit::PairPolicy> saved = bit::ActivePairPolicy().forced;
  stream::StreamConfig config;
  config.recount_fraction = 1.0;

  bit::SetActivePairPolicy(std::nullopt);
  {
    stream::IncrementalCounter counter(SeedGraph(), config);
    EdgeDelta delta;
    delta.Insert(0, 3);
    const stream::BatchResult r = counter.ApplyBatch(delta);
    EXPECT_EQ(r.delta, 2);
    EXPECT_GT(r.stats.paths.zero_copy_pairs, 0u);
    EXPECT_EQ(r.stats.paths.batched_pairs, 0u);
    EXPECT_EQ(r.stats.paths.per_pair_pairs, 0u);
    EXPECT_EQ(r.stats.paths.TotalPairs(), r.stats.and_ops);
  }
  for (const bit::PairPolicy forced :
       {bit::PairPolicy::kBatched, bit::PairPolicy::kZeroCopy,
        bit::PairPolicy::kPerPair}) {
    bit::SetActivePairPolicy(forced);
    stream::IncrementalCounter counter(SeedGraph(), config);
    EdgeDelta delta;
    delta.Insert(0, 3);
    const stream::BatchResult r = counter.ApplyBatch(delta);
    EXPECT_EQ(r.delta, 2) << bit::ToString(forced);
    EXPECT_EQ(r.triangles, RecountTruth(counter)) << bit::ToString(forced);
    EXPECT_EQ(r.stats.paths.TotalPairs(), r.stats.and_ops)
        << bit::ToString(forced);
    switch (forced) {
      case bit::PairPolicy::kBatched:
        EXPECT_EQ(r.stats.paths.batched_pairs, r.stats.and_ops);
        break;
      case bit::PairPolicy::kZeroCopy:
        EXPECT_EQ(r.stats.paths.zero_copy_pairs, r.stats.and_ops);
        break;
      case bit::PairPolicy::kPerPair:
        EXPECT_EQ(r.stats.paths.per_pair_pairs, r.stats.and_ops);
        break;
    }
  }
  bit::SetActivePairPolicy(saved);
}

TEST(IncrementalCounter, SingleDeleteOpensWedges) {
  stream::IncrementalCounter counter(SeedGraph());
  EdgeDelta delta;
  delta.Erase(1, 2);  // shared edge of both triangles
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_EQ(r.delta, -2);
  EXPECT_EQ(r.triangles, 0u);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

TEST(IncrementalCounter, BatchInternalTrianglesAreExact) {
  // All three edges of a fresh triangle in one batch: the wedge count
  // of each op must see the batch's earlier ops (overlay corrections).
  graph::GraphBuilder b(3);
  b.AddEdge(0, 1);  // placeholder so the graph is non-empty
  stream::StreamConfig config;
  config.recount_fraction = 100.0;  // force the incremental path
  stream::IncrementalCounter counter(std::move(b).Build(), config);
  EdgeDelta delta;
  delta.Insert(1, 2);
  delta.Insert(0, 2);
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_FALSE(r.stats.used_recount);
  EXPECT_EQ(r.delta, 1);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

TEST(IncrementalCounter, ToggleWithinBatchIsNetNeutral) {
  stream::StreamConfig config;
  config.recount_fraction = 100.0;
  stream::IncrementalCounter counter(SeedGraph(), config);
  EdgeDelta delta;
  delta.Insert(0, 3);
  delta.Erase(0, 3);
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_EQ(r.delta, 0);
  EXPECT_EQ(r.triangles, 2u);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

TEST(IncrementalCounter, RecountFallbackOnLargeBatch) {
  stream::StreamConfig config;
  config.recount_fraction = 0.0;  // every non-empty batch recounts
  stream::IncrementalCounter counter(SeedGraph(), config);
  EdgeDelta delta;
  delta.Insert(0, 3);
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_TRUE(r.stats.used_recount);
  EXPECT_EQ(r.triangles, 4u);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

TEST(IncrementalCounter, BulkLoadIntoEmptyGraph) {
  stream::IncrementalCounter counter(Graph{});
  EXPECT_EQ(counter.triangles(), 0u);
  EdgeDelta delta;
  delta.Insert(0, 1);
  delta.Insert(1, 2);
  delta.Insert(0, 2);
  const stream::BatchResult r = counter.ApplyBatch(delta);
  EXPECT_EQ(r.triangles, 1u);
  EXPECT_EQ(counter.graph().num_vertices(), 3u);
  EXPECT_EQ(r.triangles, RecountTruth(counter));
}

class IncrementalOrientationTest
    : public ::testing::TestWithParam<Orientation> {};

TEST_P(IncrementalOrientationTest, RandomChurnStaysExact) {
  const Graph seed = graph::ErdosRenyi(120, 600, 11);
  stream::StreamConfig config;
  config.orientation = GetParam();
  config.recount_fraction = 100.0;  // keep every batch incremental
  stream::IncrementalCounter counter(seed, config);
  util::Xoshiro256 rng(29);
  for (int batch = 0; batch < 15; ++batch) {
    EdgeDelta delta;
    for (int k = 0; k < 12; ++k) {
      const auto u = static_cast<VertexId>(rng() % 130);
      const auto v = static_cast<VertexId>(rng() % 130);
      if (rng() % 3 == 0) {
        delta.Erase(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    const stream::BatchResult r = counter.ApplyBatch(delta);
    EXPECT_FALSE(r.stats.used_recount);
    ASSERT_EQ(r.triangles, RecountTruth(counter)) << "batch " << batch;
  }
}

INSTANTIATE_TEST_SUITE_P(Orientations, IncrementalOrientationTest,
                         ::testing::Values(Orientation::kUpper,
                                           Orientation::kDegree,
                                           Orientation::kFullSymmetric),
                         [](const auto& info) {
                           return graph::ToString(info.param);
                         });

// --- runtime integration ---------------------------------------------------

TEST(StreamSession, AggregatesBatchStats) {
  stream::StreamConfig config;
  config.recount_fraction = 1.0;  // keep the toy batches incremental
  runtime::StreamSession session(SeedGraph(), config);
  EdgeDelta first;
  first.Insert(0, 3);
  EdgeDelta second;
  second.Erase(1, 2);
  (void)session.Apply(first);
  (void)session.Apply(second);
  const runtime::StreamStats stats = session.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.edges_inserted, 1u);
  EXPECT_EQ(stats.edges_deleted, 1u);
  EXPECT_EQ(stats.net_delta,
            static_cast<std::int64_t>(session.triangles()) - 2);
  EXPECT_GT(stats.exec.valid_pairs, 0u);
  EXPECT_EQ(baseline::CountTrianglesReference(session.Snapshot()),
            session.triangles());
}

TEST(SchedulerUpdateJobs, InterleaveWithCountJobs) {
  auto session = std::make_shared<runtime::StreamSession>(SeedGraph());
  runtime::SchedulerConfig config;
  config.pool.num_banks = 1;
  runtime::Scheduler scheduler(config);

  EdgeDelta delta;
  delta.Insert(0, 3);
  runtime::JobHandle update =
      scheduler.SubmitUpdate(session, delta, {});
  runtime::JobHandle count = scheduler.Submit(SeedGraph(), {});

  const runtime::JobOutcome update_outcome = update.Wait();
  ASSERT_EQ(update_outcome.state, runtime::JobState::kDone);
  EXPECT_EQ(update_outcome.kind, runtime::JobKind::kUpdate);
  EXPECT_EQ(update_outcome.update.delta, 2);
  EXPECT_EQ(update_outcome.update.triangles, 4u);

  const runtime::JobOutcome count_outcome = count.Wait();
  ASSERT_EQ(count_outcome.state, runtime::JobState::kDone);
  EXPECT_EQ(count_outcome.kind, runtime::JobKind::kCount);
  EXPECT_EQ(count_outcome.result.triangles, 2u);

  // The session advanced; a follow-up count of its snapshot sees it.
  runtime::JobHandle after = scheduler.Submit(session->Snapshot(), {});
  EXPECT_EQ(after.Wait().result.triangles, 4u);
}

TEST(SchedulerUpdateJobs, NullSessionThrows) {
  runtime::SchedulerConfig config;
  config.pool.num_banks = 1;
  runtime::Scheduler scheduler(config);
  EXPECT_THROW((void)scheduler.SubmitUpdate(nullptr, EdgeDelta{}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcim
