// Tests for the approximate TC estimators (DOULION, wedge sampling).
#include <gtest/gtest.h>

#include "baseline/approx_tc.h"
#include "baseline/cpu_tc.h"
#include "graph/generators.h"

namespace tcim::baseline {
namespace {

using graph::Graph;

TEST(Doulion, ExactWhenPIsOne) {
  const Graph g = graph::HolmeKim(500, 3000, 0.7, 1);
  const ApproxResult r = DoulionEstimate(g, 1.0, 7);
  EXPECT_DOUBLE_EQ(r.estimate,
                   static_cast<double>(CountTrianglesReference(g)));
  EXPECT_EQ(r.sampled_units, g.num_edges());
}

TEST(Doulion, UnbiasedWithinTolerance) {
  const Graph g = graph::HolmeKim(2000, 14000, 0.8, 2);
  const auto exact = static_cast<double>(CountTrianglesReference(g));
  double sum = 0.0;
  constexpr int kRuns = 12;
  for (int run = 0; run < kRuns; ++run) {
    sum += DoulionEstimate(g, 0.5, 100 + run).estimate;
  }
  EXPECT_NEAR(sum / kRuns, exact, exact * 0.15);
}

TEST(Doulion, SparsifiesProportionally) {
  const Graph g = graph::ErdosRenyi(1000, 8000, 3);
  const ApproxResult r = DoulionEstimate(g, 0.25, 11);
  EXPECT_NEAR(static_cast<double>(r.sampled_units), 2000.0, 300.0);
}

TEST(Doulion, DeterministicPerSeed) {
  const Graph g = graph::ErdosRenyi(500, 4000, 4);
  EXPECT_DOUBLE_EQ(DoulionEstimate(g, 0.3, 5).estimate,
                   DoulionEstimate(g, 0.3, 5).estimate);
}

TEST(Doulion, RejectsBadP) {
  const Graph g = graph::Cycle(5);
  EXPECT_THROW((void)DoulionEstimate(g, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)DoulionEstimate(g, 1.5, 1), std::invalid_argument);
}

TEST(WedgeSampling, ZeroOnTriangleFreeGraphs) {
  EXPECT_DOUBLE_EQ(
      WedgeSamplingEstimate(graph::GridLattice(20, 20), 5000, 1).estimate,
      0.0);
  EXPECT_DOUBLE_EQ(
      WedgeSamplingEstimate(graph::Star(100), 5000, 1).estimate, 0.0);
}

TEST(WedgeSampling, ExactOnCompleteGraph) {
  // Every wedge of K_n closes: estimate = wedges/3 = C(n,3) exactly.
  const Graph g = graph::Complete(12);
  const ApproxResult r = WedgeSamplingEstimate(g, 2000, 3);
  EXPECT_DOUBLE_EQ(r.estimate, 220.0);  // C(12,3)
}

TEST(WedgeSampling, ConvergesOnClusteredGraph) {
  const Graph g = graph::HolmeKim(2000, 14000, 0.8, 5);
  const auto exact = static_cast<double>(CountTrianglesReference(g));
  const ApproxResult r = WedgeSamplingEstimate(g, 200000, 9);
  EXPECT_NEAR(r.estimate, exact, exact * 0.1);
}

TEST(WedgeSampling, DeterministicPerSeed) {
  const Graph g = graph::ErdosRenyi(400, 3000, 6);
  EXPECT_DOUBLE_EQ(WedgeSamplingEstimate(g, 1000, 7).estimate,
                   WedgeSamplingEstimate(g, 1000, 7).estimate);
}

TEST(WedgeSampling, HandlesWedgelessGraph) {
  // A perfect matching has no wedges at all.
  graph::GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  const ApproxResult r =
      WedgeSamplingEstimate(std::move(b).Build(), 100, 1);
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST(WedgeSampling, RejectsZeroSamples) {
  EXPECT_THROW((void)WedgeSamplingEstimate(graph::Cycle(5), 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tcim::baseline
