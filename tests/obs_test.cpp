// Tests for src/obs: the metrics registry (counter/gauge/histogram
// semantics, percentile error bound, JSON/text scrape) and the Chrome
// trace-event writer (valid output, per-thread span nesting, the
// disabled fast path, concurrent emitters).
//
// The histogram parity suite is the contract behind the
// runtime::LatencyRecorder migration: bucketed nearest-rank
// percentiles must track the exact nearest-rank sample within the
// documented 1/(2*kSubBuckets) relative error.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/aggregate.h"
#include "util/rng.h"

namespace tcim::obs {
namespace {

// Documented bound is 1/(2*kSubBuckets) = 1/128; allow a little
// floating-point headroom on top.
constexpr double kRelTol = 1.0 / 128.0 + 1e-9;

// Exact nearest-rank percentile over a sorted sample vector — the
// definition the pre-migration LatencyRecorder implemented.
double ExactNearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double n = static_cast<double>(sorted.size());
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p / 100.0 * n)));
  return sorted[std::min(rank, sorted.size()) - 1];
}

// --- registry ---------------------------------------------------------------

TEST(Registry, SameNameReturnsSameMetric) {
  Registry& reg = Registry::Global();
  Counter& a = reg.GetCounter("obs_test.identity_counter");
  Counter& b = reg.GetCounter("obs_test.identity_counter");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &reg.GetCounter("obs_test.other_counter"));
  EXPECT_EQ(&reg.GetGauge("obs_test.g"), &reg.GetGauge("obs_test.g"));
  EXPECT_EQ(&reg.GetHistogram("obs_test.h"), &reg.GetHistogram("obs_test.h"));
}

TEST(Registry, CounterAndGaugeSemantics) {
  Counter& c = Registry::Global().GetCounter("obs_test.semantics_counter");
  const std::uint64_t base = c.Value();
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), base + 42);

  Gauge& g = Registry::Global().GetGauge("obs_test.semantics_gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Set(-1.0);  // last write wins, negatives allowed
  EXPECT_DOUBLE_EQ(g.Value(), -1.0);
}

TEST(Registry, SnapshotIsSortedAndTyped) {
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.snap_b").Add(3);
  reg.GetGauge("obs_test.snap_a").Set(1.5);
  reg.GetHistogram("obs_test.snap_c").Observe(0.25);

  const std::vector<MetricSample> snap = reg.Snapshot();
  ASSERT_FALSE(snap.empty());
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSample& x, const MetricSample& y) {
        return x.name < y.name;
      }));
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const MetricSample& s : snap) {
    if (s.name == "obs_test.snap_b") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kCounter);
      EXPECT_EQ(s.count, 3u);
      saw_counter = true;
    } else if (s.name == "obs_test.snap_a") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kGauge);
      EXPECT_DOUBLE_EQ(s.sum, 1.5);
      saw_gauge = true;
    } else if (s.name == "obs_test.snap_c") {
      EXPECT_EQ(s.kind, MetricSample::Kind::kHistogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_NEAR(s.p50, 0.25, 0.25 * kRelTol);
      saw_hist = true;
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

// Light structural validation: balanced braces/brackets outside of
// strings. Full JSON parsing lives in tools/check_trace.py (Python).
void ExpectBalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(Registry, WriteJsonIsBalancedAndStamped) {
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.json_counter").Add(7);
  reg.GetHistogram("obs_test.json_hist").Observe(1.0);

  std::ostringstream os;
  reg.WriteJson(os);
  const std::string text = os.str();
  ExpectBalancedJson(text);
  EXPECT_NE(text.find("\"meta\""), std::string::npos);
  EXPECT_NE(text.find("\"date\""), std::string::npos);
  EXPECT_NE(text.find("\"compiler\""), std::string::npos);
  EXPECT_NE(text.find("\"scale\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.json_counter\":"), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.json_hist\":"), std::string::npos);
}

TEST(Registry, WriteTextPrefixFilters) {
  Registry& reg = Registry::Global();
  reg.GetCounter("obs_test.text_counter").Add(1);
  reg.GetCounter("obs_test_other.text_counter").Add(1);

  std::ostringstream filtered;
  reg.WriteText(filtered, "obs_test.");
  EXPECT_NE(filtered.str().find("obs_test.text_counter"), std::string::npos);
  EXPECT_EQ(filtered.str().find("obs_test_other."), std::string::npos);

  std::ostringstream all;
  reg.WriteText(all);
  EXPECT_NE(all.str().find("obs_test_other.text_counter"),
            std::string::npos);
}

TEST(RunMetadataTest, FieldsArePopulated) {
  const RunMetadata meta = CollectRunMetadata();
  // ISO-8601 UTC: "YYYY-MM-DDThh:mm:ssZ".
  ASSERT_EQ(meta.date.size(), 20u);
  EXPECT_EQ(meta.date[4], '-');
  EXPECT_EQ(meta.date[10], 'T');
  EXPECT_EQ(meta.date.back(), 'Z');
  EXPECT_FALSE(meta.compiler.empty());
  EXPECT_GT(meta.scale, 0.0);

  const std::string fields = RunMetadataJsonFields();
  EXPECT_NE(fields.find("\"date\":"), std::string::npos);
  EXPECT_NE(fields.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(fields.find("\"scale\":"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape(std::string_view("a\nb")), "a\\nb");
}

// --- histogram --------------------------------------------------------------

TEST(Histogram, ExactStatsAlongsideBuckets) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);

  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(2.0);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Sum(), 4.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.5);  // min/max are exact, not bucketed
  EXPECT_DOUBLE_EQ(h.Max(), 2.0);
}

TEST(Histogram, BucketRepresentativeWithinDocumentedError) {
  util::Xoshiro256 rng(2026);
  const double lo = std::ldexp(1.0, Histogram::kMinExponent);
  const double hi = std::ldexp(1.0, Histogram::kMaxExponent);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform over the full bucketed range.
    const double u = static_cast<double>(rng()) / 1.8446744073709552e19;
    const double v = lo * std::exp(u * std::log(hi / lo));
    if (v < lo || v >= hi) continue;
    const std::uint32_t idx = Histogram::BucketIndex(v);
    const double rep = Histogram::BucketRepresentative(idx);
    EXPECT_NEAR(rep, v, v * kRelTol) << "value " << v << " bucket " << idx;
  }
}

TEST(Histogram, BucketIndexIsMonotoneAndClamps) {
  EXPECT_EQ(Histogram::BucketIndex(0.0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(-1.0), 0u);
  const double tiny = std::ldexp(1.0, Histogram::kMinExponent - 3);
  EXPECT_EQ(Histogram::BucketIndex(tiny), 0u);  // underflow bucket

  std::uint32_t prev = 0;
  for (double v = 1e-9; v < 128.0; v *= 1.07) {
    const std::uint32_t idx = Histogram::BucketIndex(v);
    EXPECT_GE(idx, prev) << "at " << v;
    EXPECT_LT(idx, Histogram::kNumBuckets);
    prev = idx;
  }
  // Overflow clamps into the top bucket instead of indexing out.
  EXPECT_EQ(Histogram::BucketIndex(1e12), Histogram::kNumBuckets - 1);
}

TEST(Histogram, PercentileParityVsExactNearestRank) {
  util::Xoshiro256 rng(7);
  Histogram h;
  std::vector<double> samples;
  samples.reserve(500);
  for (int i = 0; i < 500; ++i) {
    // Log-uniform latencies from 1 us to 10 s.
    const double u = static_cast<double>(rng()) / 1.8446744073709552e19;
    const double v = 1e-6 * std::exp(u * std::log(10.0 / 1e-6));
    samples.push_back(v);
    h.Observe(v);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  for (const double p : {0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0,
                         99.9, 100.0}) {
    const double exact = ExactNearestRank(sorted, p);
    EXPECT_NEAR(h.Percentile(p), exact, exact * kRelTol) << "p" << p;
  }
}

// The LatencyRecorder migration contract (satellite of this PR): the
// recorder's percentiles must track the exact nearest-rank values the
// old mutex-and-vector implementation returned, within the histogram
// bound; count/mean/max stay exact.
TEST(LatencyRecorderParity, TracksExactNearestRank) {
  util::Xoshiro256 rng(99);
  runtime::LatencyRecorder recorder;
  std::vector<double> samples;
  samples.reserve(300);
  double sum = 0.0;
  for (int i = 0; i < 300; ++i) {
    const double u = static_cast<double>(rng()) / 1.8446744073709552e19;
    const double v = 1e-5 * std::exp(u * std::log(1.0 / 1e-5));
    samples.push_back(v);
    sum += v;
    recorder.Record(v);
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(recorder.count(), 300u);
  EXPECT_NEAR(recorder.mean(), sum / 300.0, 1e-12);
  EXPECT_DOUBLE_EQ(recorder.max(), sorted.back());
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double exact = ExactNearestRank(sorted, p);
    EXPECT_NEAR(recorder.Percentile(p), exact, exact * kRelTol) << "p" << p;
  }
}

TEST(Histogram, ConcurrentObserversLoseNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-4 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.Min(), 1e-4);
  EXPECT_DOUBLE_EQ(h.Max(), 8e-4);
}

// --- tracing ----------------------------------------------------------------

TEST(Trace, DisabledModeEmitsNothing) {
  StopTracing();  // establish the disabled state regardless of env
  ASSERT_FALSE(TraceEnabled());
  const std::size_t before = TraceSnapshotForTest().size();
  {
    TraceSpan span("obs_test.disabled", "test");
    TraceInstant("obs_test.disabled_i", "test");
    TraceAsyncBegin("obs_test.disabled_a", "test", 1);
    TraceAsyncEnd("obs_test.disabled_a", "test", 1);
  }
  EXPECT_EQ(TraceSnapshotForTest().size(), before);
}

// The disabled path is one relaxed atomic load + branch per span; a
// counted hot loop of a million spans must be effectively free. The
// bound is deliberately loose (wall-clock on shared CI hardware) —
// it catches accidental clock reads or allocations on the disabled
// path, not nanosecond regressions.
TEST(Trace, DisabledSpanHotLoopIsCheap) {
  StopTracing();
  ASSERT_FALSE(TraceEnabled());
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000000; ++i) {
    TraceSpan span("obs_test.hot", "test");
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(seconds, 1.0);
}

TEST(Trace, SpansNestPerThread) {
  // TempDir keeps the file out of the working tree even if the
  // process-exit rewrite re-emits it after the std::remove below.
  const std::string path = testing::TempDir() + "obs_test_nest_trace.json";
  StopTracing();
  StartTracing(path);
  ASSERT_TRUE(TraceEnabled());
  {
    TraceSpan outer("obs_test.outer", "test");
    {
      TraceSpan inner("obs_test.inner", "test", "\"depth\":1");
    }
  }
  StopTracing();

  const std::vector<internal::TraceEvent> events = TraceSnapshotForTest();
  const internal::TraceEvent* outer = nullptr;
  const internal::TraceEvent* inner = nullptr;
  for (const internal::TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test.outer") outer = &e;
    if (std::string(e.name) == "obs_test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(inner->phase, 'X');
  EXPECT_EQ(outer->tid, inner->tid);
  // Proper nesting: inner starts no earlier and ends no later.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  EXPECT_EQ(inner->args, "\"depth\":1");
  std::remove(path.c_str());
}

TEST(Trace, FileIsBalancedJsonWithMetadata) {
  const std::string path = testing::TempDir() + "obs_test_file_trace.json";
  StopTracing();
  StartTracing(path);
  {
    TraceSpan span("obs_test.span", "test");
    TraceInstant("obs_test.marker", "test", "\"k\":1");
    TraceAsyncBegin("obs_test.async", "test", 42);
    TraceAsyncEnd("obs_test.async", "test", 42);
  }
  StopTracing();
  EXPECT_EQ(TracePath(), path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  ExpectBalancedJson(text);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(text.find("\"metadata\""), std::string::npos);
  EXPECT_NE(text.find("\"compiler\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.span\""), std::string::npos);
  EXPECT_NE(text.find("\"obs_test.marker\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Trace, ConcurrentEmittersLoseNothing) {
  const std::string path = testing::TempDir() + "obs_test_concurrent_trace.json";
  StopTracing();
  StartTracing(path);
  const std::size_t before = TraceSnapshotForTest().size();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span("obs_test.worker_span", "test");
      }
    });
  }
  for (std::thread& t : threads) t.join();  // thread-exit flushes
  StopTracing();

  const std::vector<internal::TraceEvent> events = TraceSnapshotForTest();
  EXPECT_EQ(TraceDroppedForTest(), 0u);
  std::size_t worker_events = 0;
  for (const internal::TraceEvent& e : events) {
    if (std::string(e.name) == "obs_test.worker_span") ++worker_events;
  }
  EXPECT_EQ(worker_events,
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_GE(events.size(), before);
  std::remove(path.c_str());
}

// Regression (found by the thread-safety annotation sweep):
// Collector::base_ — the capture origin NowNs() subtracts on every
// stamp — was a plain steady_clock::time_point that Start() rewrote
// under the collector mutex while emitter threads read it lock-free
// through NowNs(). A capture restarted while spans were in flight was
// therefore a data race on base_; it is now an atomic nanosecond
// offset. This test pins the racy interleaving: emitters stamp spans
// continuously while the main thread stops and restarts the capture,
// and under the TSan CI leg it flags a plain-field base_ the moment
// one reappears.
//
// Why the annotation pass caught this and the TSan leg never did: the
// old write was `base_ = steady_clock::now();`, and GCC's TSan pass
// does not instrument a store that is the direct LHS of a call — the
// race was invisible to the sanitizer by compiler limitation
// (verified: staging the same store through a local makes TSan flag
// this exact test). Static analysis has no such blind spot, which is
// the point of the annotation gate.
TEST(Trace, RestartWhileEmittingIsRaceFree) {
  const std::string path = testing::TempDir() + "obs_test_restart_trace.json";
  StopTracing();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span("obs_test.restart_span", "test");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    StartTracing(path);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    StopTracing();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  StopTracing();  // fold any post-stop thread-exit flushes into the file
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcim::obs
