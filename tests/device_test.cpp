// Tests for the MTJ device layer: parameter validation, Brinkman
// bias-dependent resistance, LLG switching dynamics, and the cell
// characterization consumed by the array model.
#include <gtest/gtest.h>

#include "device/brinkman.h"
#include "device/llg.h"
#include "device/mtj_device.h"
#include "device/mtj_params.h"

namespace tcim::device {
namespace {

TEST(MtjParams, PaperDefaultsValidate) {
  EXPECT_NO_THROW(PaperMtjParams().Validate());
}

TEST(MtjParams, PaperTableIValues) {
  const MtjParams p = PaperMtjParams();
  EXPECT_DOUBLE_EQ(p.surface_length, 40e-9);
  EXPECT_DOUBLE_EQ(p.surface_width, 40e-9);
  EXPECT_DOUBLE_EQ(p.spin_hall_angle, 0.3);
  EXPECT_DOUBLE_EQ(p.resistance_area_product, 1e-12);
  EXPECT_DOUBLE_EQ(p.oxide_thickness, 0.82e-9);
  EXPECT_DOUBLE_EQ(p.tmr, 1.0);
  EXPECT_DOUBLE_EQ(p.saturation_magnetization, 1e6);
  EXPECT_DOUBLE_EQ(p.gilbert_damping, 0.03);
  EXPECT_DOUBLE_EQ(p.anisotropy_field, 4.5e5);
  EXPECT_DOUBLE_EQ(p.temperature, 300.0);
}

TEST(MtjParams, ValidationCatchesNonPhysicalValues) {
  MtjParams p = PaperMtjParams();
  p.tmr = -0.5;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = PaperMtjParams();
  p.gilbert_damping = 1.5;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = PaperMtjParams();
  p.temperature = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = PaperMtjParams();
  p.write_voltage = 0.05;  // below read voltage
  EXPECT_THROW(p.Validate(), std::invalid_argument);
  p = PaperMtjParams();
  p.spin_polarization = 0.0;
  EXPECT_THROW(p.Validate(), std::invalid_argument);
}

TEST(Brinkman, ZeroBiasResistanceFollowsRaAndTmr) {
  const MtjParams p = PaperMtjParams();
  const BrinkmanModel model(p);
  const double expected_rp = p.resistance_area_product / p.Area();
  EXPECT_NEAR(model.ZeroBiasResistance(MtjState::kParallel), expected_rp,
              1e-6);
  EXPECT_NEAR(model.ZeroBiasResistance(MtjState::kAntiParallel),
              expected_rp * (1.0 + p.tmr), 1e-6);
  EXPECT_NEAR(expected_rp, 625.0, 1.0);  // 1 Ohm*um^2 / (40nm)^2
}

TEST(Brinkman, ResistanceDecreasesWithBias) {
  const BrinkmanModel model(PaperMtjParams());
  for (const MtjState s : {MtjState::kParallel, MtjState::kAntiParallel}) {
    double prev = model.Resistance(s, 0.0);
    for (double v = 0.1; v <= 0.8; v += 0.1) {
      const double r = model.Resistance(s, v);
      EXPECT_LT(r, prev) << "state=" << static_cast<int>(s) << " v=" << v;
      prev = r;
    }
  }
}

TEST(Brinkman, TmrRollsOffWithBias) {
  const BrinkmanModel model(PaperMtjParams());
  EXPECT_NEAR(model.TmrAtBias(0.0), 1.0, 1e-12);
  EXPECT_GT(model.TmrAtBias(0.1), model.TmrAtBias(0.3));
  // At V = V_h the TMR halves by construction.
  EXPECT_NEAR(model.TmrAtBias(PaperMtjParams().tmr_rolloff_volts), 0.5,
              1e-12);
}

TEST(Brinkman, ApAlwaysAboveP) {
  const BrinkmanModel model(PaperMtjParams());
  for (double v = 0.0; v <= 0.8; v += 0.05) {
    EXPECT_GT(model.Resistance(MtjState::kAntiParallel, v),
              model.Resistance(MtjState::kParallel, v));
  }
}

TEST(Brinkman, CurrentIsMonotoneInBias) {
  const BrinkmanModel model(PaperMtjParams());
  double prev = 0.0;
  for (double v = 0.05; v <= 0.8; v += 0.05) {
    const double i = model.Current(MtjState::kParallel, v);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

TEST(Brinkman, QuadraticCoefficientPositive) {
  EXPECT_GT(BrinkmanModel(PaperMtjParams()).QuadraticCoefficient(), 0.0);
}

TEST(Llg, ThermalStabilityIsRetentionClass) {
  const LlgSolver llg(PaperMtjParams());
  // 40x40x1 nm free layer with these Ms/Hk: Delta ~ 109.
  EXPECT_NEAR(llg.ThermalStability(), 109.0, 5.0);
  EXPECT_GT(llg.InitialTiltAngle(), 0.0);
  EXPECT_LT(llg.InitialTiltAngle(), 0.2);
}

TEST(Llg, CriticalCurrentIsTensOfMicroamps) {
  const LlgSolver llg(PaperMtjParams());
  EXPECT_GT(llg.CriticalCurrent(), 10e-6);
  EXPECT_LT(llg.CriticalCurrent(), 1e-3);
}

TEST(Llg, BelowCriticalCurrentDoesNotSwitch) {
  const LlgSolver llg(PaperMtjParams());
  const LlgResult r =
      llg.SimulateSwitching(0.8 * llg.CriticalCurrent(), 20e-9);
  EXPECT_FALSE(r.switched);
  EXPECT_GT(r.final_mz, 0.5);  // stays near the initial pole
}

TEST(Llg, AboveCriticalCurrentSwitches) {
  const LlgSolver llg(PaperMtjParams());
  const LlgResult r = llg.SimulateSwitching(2.0 * llg.CriticalCurrent());
  EXPECT_TRUE(r.switched);
  EXPECT_GT(r.switching_time, 0.0);
  EXPECT_LT(r.switching_time, 20e-9);
  EXPECT_LT(r.final_mz, -0.9);
}

TEST(Llg, SwitchingTimeDecreasesWithOverdrive) {
  const LlgSolver llg(PaperMtjParams());
  double prev = 1.0;
  for (const double mult : {1.5, 2.0, 3.0, 5.0, 8.0}) {
    const LlgResult r =
        llg.SimulateSwitching(mult * llg.CriticalCurrent());
    ASSERT_TRUE(r.switched) << "mult=" << mult;
    EXPECT_LT(r.switching_time, prev) << "mult=" << mult;
    prev = r.switching_time;
  }
}

TEST(Llg, CurrentForSwitchingTimeBisection) {
  const LlgSolver llg(PaperMtjParams());
  const double target = 3e-9;
  const double current = llg.CurrentForSwitchingTime(target);
  const LlgResult r = llg.SimulateSwitching(current);
  ASSERT_TRUE(r.switched);
  EXPECT_LE(r.switching_time, target * 1.02);
  // Must not be wildly overdriven either: 10% less current should miss
  // the target.
  const LlgResult slower = llg.SimulateSwitching(0.9 * current);
  EXPECT_TRUE(!slower.switched || slower.switching_time > target * 0.98);
}

TEST(Llg, RejectsBadIntegrationParams) {
  const LlgSolver llg(PaperMtjParams());
  EXPECT_THROW((void)llg.SimulateSwitching(1e-4, -1.0), std::invalid_argument);
  EXPECT_THROW((void)llg.SimulateSwitching(1e-4, 1e-9, 0.0),
               std::invalid_argument);
}

TEST(MtjDevice, CharacterizationIsSane) {
  const MtjDevice dev(PaperMtjParams());
  const MtjElectrical& e = dev.Characterize();
  EXPECT_GT(e.r_p, 0.0);
  EXPECT_GT(e.r_ap, e.r_p);
  EXPECT_GT(e.i_read_1, e.i_read_0);
  EXPECT_GT(e.read_margin, 0.0);
  EXPECT_GT(e.and_margin, 0.0);
  // AND levels are ordered: (1,1) > (1,0) > (0,0).
  EXPECT_GT(e.i_and_11, e.i_and_10);
  EXPECT_GT(e.i_and_10, e.i_and_00);
  // AND reference separates (1,1) from (1,0).
  EXPECT_GT(e.i_and_11, e.and_reference);
  EXPECT_LT(e.i_and_10, e.and_reference);
  // Write actually switches and costs sub-pJ energy per bit.
  EXPECT_GT(e.write_current, e.critical_current);
  EXPECT_GT(e.switching_time, 0.0);
  EXPECT_LT(e.switching_time, 20e-9);
  EXPECT_GT(e.write_energy_bit, 0.0);
  EXPECT_LT(e.write_energy_bit, 10e-12);
  EXPECT_GT(e.thermal_stability, 40.0);  // retention-grade
}

TEST(MtjDevice, CharacterizationIsCached) {
  const MtjDevice dev(PaperMtjParams());
  const MtjElectrical& a = dev.Characterize();
  const MtjElectrical& b = dev.Characterize();
  EXPECT_EQ(&a, &b);
}

TEST(MtjDevice, CellCurrentRespectsSeriesResistance) {
  const MtjDevice dev(PaperMtjParams());
  const MtjParams& p = dev.params();
  const double i = dev.CellCurrent(MtjState::kParallel, p.read_voltage);
  // Bounded above by V / R_access and below by V / (R_access + R_AP0).
  EXPECT_LT(i, p.read_voltage / p.access_resistance);
  EXPECT_GT(i, p.read_voltage /
                   (p.access_resistance +
                    dev.brinkman().ZeroBiasResistance(
                        MtjState::kAntiParallel)));
}

TEST(MtjDevice, HigherDampingRaisesCriticalCurrent) {
  MtjParams lo = PaperMtjParams();
  MtjParams hi = PaperMtjParams();
  hi.gilbert_damping = 0.06;
  EXPECT_GT(LlgSolver(hi).CriticalCurrent(),
            LlgSolver(lo).CriticalCurrent());
}

TEST(MtjDevice, SmallerCellLowersCriticalCurrentButAlsoStability) {
  MtjParams small = PaperMtjParams();
  small.surface_length = 20e-9;
  small.surface_width = 20e-9;
  const LlgSolver llg_small(small);
  const LlgSolver llg_paper(PaperMtjParams());
  EXPECT_LT(llg_small.CriticalCurrent(), llg_paper.CriticalCurrent());
  EXPECT_LT(llg_small.ThermalStability(), llg_paper.ThermalStability());
}

}  // namespace
}  // namespace tcim::device
