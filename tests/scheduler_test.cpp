// Scheduler tests: submission/dispatch ordering (FIFO and priority),
// concurrent submission from many threads, both graceful-shutdown
// flavours, epoch-pinned query jobs (coalescing, admission control)
// and the deterministic interleavings of the snapshot-serving layer.
// Pause()/Resume() stages deterministic queue contents so the ordering
// assertions are race-free; SchedulerTestHooks pins the exact
// publish/pin/retire interleavings instead of hoping a stress run
// hits them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/bitwise_tc.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "runtime/scheduler.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"
#include "stream/incremental_counter.h"
#include "util/rng.h"

namespace tcim {
namespace {

using runtime::JobHandle;
using runtime::JobOptions;
using runtime::JobOutcome;
using runtime::JobState;
using runtime::Scheduler;
using runtime::SchedulerConfig;
using runtime::SchedulerTestHooks;
using runtime::SchedulingPolicy;
using runtime::StreamSession;
using stream::EdgeDelta;

SchedulerConfig SmallScheduler(SchedulingPolicy policy,
                               std::uint32_t dispatch_threads = 1) {
  SchedulerConfig config;
  config.policy = policy;
  config.dispatch_threads = dispatch_threads;
  config.pool.num_banks = 2;
  config.pool.accelerator.array.capacity_bytes = 1ULL << 20;
  return config;
}

graph::Graph JobGraph(std::uint64_t seed) {
  return graph::HolmeKim(120, 700, 0.7, seed);
}

TEST(SchedulerTest, SingleJobRunsToDoneWithExactCount) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  const graph::Graph g = JobGraph(1);
  const std::uint64_t expected = core::CountTrianglesDense(g);
  const JobHandle handle = scheduler.Submit(g);
  const JobOutcome outcome = handle.Wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.result.triangles, expected);
  EXPECT_GE(outcome.queue_seconds, 0.0);
  EXPECT_GT(outcome.run_seconds, 0.0);
}

TEST(SchedulerTest, FifoDispatchFollowsSubmissionOrder) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  scheduler.Pause();
  std::vector<JobHandle> handles;
  for (std::uint64_t j = 0; j < 6; ++j) {
    handles.push_back(scheduler.Submit(JobGraph(j)));
  }
  EXPECT_EQ(scheduler.pending(), 6u);
  scheduler.Resume();
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobOutcome outcome = handles[j].Wait();
    ASSERT_EQ(outcome.state, JobState::kDone);
    EXPECT_EQ(outcome.start_order, j);
  }
}

TEST(SchedulerTest, PriorityDispatchRunsHighestFirstFifoWithin) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kPriority)};
  scheduler.Pause();
  // Submission order: prio 0, 5, 1, 5, 0 → dispatch 1,3 (prio 5 in
  // submission order), then 2 (prio 1), then 0,4 (prio 0 in order).
  const int priorities[] = {0, 5, 1, 5, 0};
  std::vector<JobHandle> handles;
  for (std::size_t j = 0; j < std::size(priorities); ++j) {
    JobOptions options;
    options.priority = priorities[j];
    handles.push_back(scheduler.Submit(JobGraph(j), options));
  }
  scheduler.Resume();
  const std::uint64_t expected_order[] = {3, 0, 2, 1, 4};
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobOutcome outcome = handles[j].Wait();
    ASSERT_EQ(outcome.state, JobState::kDone);
    EXPECT_EQ(outcome.start_order, expected_order[j]) << "job " << j;
  }
}

TEST(SchedulerTest, ConcurrentSubmissionFromManyThreads) {
  Scheduler scheduler{
      SmallScheduler(SchedulingPolicy::kFifo, /*dispatch_threads=*/3)};
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 6;
  std::vector<std::vector<JobHandle>> handles(kSubmitters);
  std::vector<std::uint64_t> expected(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    expected[t] = core::CountTrianglesDense(JobGraph(t));
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsEach; ++j) {
        handles[t].push_back(scheduler.Submit(JobGraph(t)));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(scheduler.submitted(),
            static_cast<std::uint64_t>(kSubmitters * kJobsEach));
  for (int t = 0; t < kSubmitters; ++t) {
    for (const JobHandle& handle : handles[t]) {
      const JobOutcome outcome = handle.Wait();
      ASSERT_EQ(outcome.state, JobState::kDone);
      EXPECT_EQ(outcome.result.triangles, expected[t]);
    }
  }
  EXPECT_EQ(scheduler.completed(),
            static_cast<std::uint64_t>(kSubmitters * kJobsEach));
}

TEST(SchedulerTest, ShutdownCancelPendingCancelsQueuedJobs) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  scheduler.Pause();  // nothing dispatches: every job stays queued
  std::vector<JobHandle> handles;
  for (std::uint64_t j = 0; j < 5; ++j) {
    handles.push_back(scheduler.Submit(JobGraph(j)));
  }
  scheduler.Shutdown(Scheduler::ShutdownMode::kCancelPending);
  for (const JobHandle& handle : handles) {
    const JobOutcome outcome = handle.Wait();  // returns immediately
    EXPECT_EQ(outcome.state, JobState::kCancelled);
    EXPECT_EQ(outcome.run_seconds, 0.0);
  }
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(scheduler.completed(), 5u);
  EXPECT_THROW((void)scheduler.Submit(JobGraph(9)), std::runtime_error);
}

TEST(SchedulerTest, ShutdownDrainFinishesEverythingQueued) {
  std::vector<JobHandle> handles;
  {
    Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
    scheduler.Pause();
    for (std::uint64_t j = 0; j < 4; ++j) {
      handles.push_back(scheduler.Submit(JobGraph(j)));
    }
    // Shutdown implies Resume(): a paused scheduler must still drain.
    scheduler.Shutdown(Scheduler::ShutdownMode::kDrain);
    EXPECT_EQ(scheduler.pending(), 0u);
    EXPECT_EQ(scheduler.completed(), 4u);
  }  // destructor: second (idempotent) drain
  for (const JobHandle& handle : handles) {
    EXPECT_EQ(handle.Wait().state, JobState::kDone);
  }
}

TEST(SchedulerTest, DoubleShutdownIsIdempotent) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  (void)scheduler.Submit(JobGraph(1)).Wait();
  scheduler.Shutdown();
  scheduler.Shutdown(Scheduler::ShutdownMode::kCancelPending);
  EXPECT_EQ(scheduler.completed(), 1u);
}

// --- epoch-pinned query jobs ----------------------------------------------

graph::Graph TwoTriangles() {
  // Two triangles sharing edge {1, 2}; Insert(0, 3) closes two more.
  graph::GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  b.AddEdge(4, 5);
  return std::move(b).Build();
}

TEST(SchedulerQueryJobs, QueryCountsThePublishedEpoch) {
  auto session = std::make_shared<StreamSession>(TwoTriangles());
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};

  const JobOutcome before = scheduler.SubmitQuery(session, {}).Wait();
  ASSERT_EQ(before.state, JobState::kDone);
  EXPECT_EQ(before.kind, runtime::JobKind::kQuery);
  EXPECT_EQ(before.query.epoch, 0u);
  EXPECT_EQ(before.epoch, 0u);
  EXPECT_EQ(before.query.triangles, 2u);
  EXPECT_EQ(before.query.num_vertices, 6u);
  EXPECT_EQ(before.query.batch_size, 1u);
  EXPECT_FALSE(before.query.coalesced);

  EdgeDelta delta;
  delta.Insert(0, 3);
  const JobOutcome update = scheduler.SubmitUpdate(session, delta, {}).Wait();
  ASSERT_EQ(update.state, JobState::kDone);
  EXPECT_EQ(update.epoch, 1u);

  const JobOutcome after = scheduler.SubmitQuery(session, {}).Wait();
  ASSERT_EQ(after.state, JobState::kDone);
  EXPECT_EQ(after.query.epoch, 1u);
  EXPECT_EQ(after.query.triangles, 4u);
}

TEST(SchedulerQueryJobs, QueuedQueriesCoalesceIntoOneSharedPass) {
  auto session = std::make_shared<StreamSession>(TwoTriangles());
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  scheduler.Pause();
  std::vector<JobHandle> handles;
  for (int q = 0; q < 5; ++q) {
    handles.push_back(scheduler.SubmitQuery(session, {}));
  }
  scheduler.Resume();

  int leaders = 0;
  for (const JobHandle& handle : handles) {
    const JobOutcome outcome = handle.Wait();
    ASSERT_EQ(outcome.state, JobState::kDone);
    // One shared pass answered all five with the same pinned epoch.
    EXPECT_EQ(outcome.query.epoch, 0u);
    EXPECT_EQ(outcome.query.triangles, 2u);
    EXPECT_EQ(outcome.query.batch_size, 5u);
    leaders += outcome.query.coalesced ? 0 : 1;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(scheduler.coalesced(), 4u);
}

TEST(SchedulerQueryJobs, NullSessionAndShutdownThrow) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  EXPECT_THROW((void)scheduler.SubmitQuery(nullptr, {}),
               std::invalid_argument);
  scheduler.Shutdown();
  auto session = std::make_shared<StreamSession>(TwoTriangles());
  EXPECT_THROW((void)scheduler.SubmitQuery(session, {}), std::runtime_error);
}

// --- admission control -----------------------------------------------------

TEST(SchedulerAdmission, RejectsSubmissionsBeyondMaxPending) {
  SchedulerConfig config = SmallScheduler(SchedulingPolicy::kFifo);
  config.max_pending = 2;
  Scheduler scheduler{config};
  scheduler.Pause();  // nothing dispatches: the queue fills deterministically

  std::vector<JobHandle> handles;
  for (std::uint64_t j = 0; j < 4; ++j) {
    handles.push_back(scheduler.Submit(JobGraph(j)));
  }
  // First two admitted; the rest shed as failed handles, not thrown.
  EXPECT_EQ(scheduler.pending(), 2u);
  EXPECT_EQ(scheduler.submitted(), 2u);
  EXPECT_EQ(scheduler.rejected(), 2u);
  for (std::size_t j = 2; j < 4; ++j) {
    const JobOutcome outcome = handles[j].Wait();  // already terminal
    EXPECT_EQ(outcome.state, JobState::kFailed);
    EXPECT_EQ(outcome.error, "admission: queue full");
  }

  scheduler.Resume();
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(handles[j].Wait().state, JobState::kDone);
  }
}

// --- cross-kind ordering (regression) --------------------------------------

TEST(SchedulerUpdateOrdering, ConcurrentSubmittersApplyInSubmissionOrder) {
  // Regression for the cross-kind ordering bug: updates must serialize
  // among themselves in submission order even when several submitter
  // threads race and several dispatcher threads run. The probe is the
  // published epoch (the b-th applied batch publishes epoch b+1) and a
  // sequential replay of the deltas in handle-id order, which must
  // reproduce every outcome's running total exactly.
  const graph::Graph seed = TwoTriangles();
  auto session = std::make_shared<StreamSession>(seed);
  Scheduler scheduler{
      SmallScheduler(SchedulingPolicy::kFifo, /*dispatch_threads=*/3)};

  constexpr int kSubmitters = 3;
  constexpr int kBatchesEach = 6;
  std::vector<std::vector<std::pair<JobHandle, EdgeDelta>>> submitted(
      kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      util::Xoshiro256 rng(77 + static_cast<std::uint64_t>(t));
      for (int b = 0; b < kBatchesEach; ++b) {
        EdgeDelta delta;
        for (int k = 0; k < 4; ++k) {
          const auto u = static_cast<graph::VertexId>(rng() % 12);
          const auto v = static_cast<graph::VertexId>(rng() % 12);
          if (rng() % 3 == 0) {
            delta.Erase(u, v);
          } else {
            delta.Insert(u, v);
          }
        }
        submitted[t].emplace_back(scheduler.SubmitUpdate(session, delta, {}),
                                  delta);
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  // Collect (id, outcome, delta) and sort by submission id.
  struct Applied {
    std::uint64_t id;
    JobOutcome outcome;
    EdgeDelta delta;
  };
  std::vector<Applied> applied;
  for (const auto& per_thread : submitted) {
    for (const auto& [handle, delta] : per_thread) {
      applied.push_back(Applied{handle.id(), handle.Wait(), delta});
    }
  }
  std::sort(applied.begin(), applied.end(),
            [](const Applied& a, const Applied& b) { return a.id < b.id; });

  stream::IncrementalCounter replay(seed);
  for (std::size_t b = 0; b < applied.size(); ++b) {
    ASSERT_EQ(applied[b].outcome.state, JobState::kDone)
        << applied[b].outcome.error;
    // Submission order == apply order == epoch order.
    ASSERT_EQ(applied[b].outcome.epoch, b + 1);
    ASSERT_EQ(applied[b].outcome.update.triangles,
              replay.ApplyBatch(applied[b].delta).triangles)
        << "batch " << b;
  }
  EXPECT_EQ(session->epochs().current_epoch(),
            static_cast<std::uint64_t>(kSubmitters * kBatchesEach));
}

// --- deterministic interleavings -------------------------------------------

TEST(SchedulerInterleaving, PublishDuringCountAnswersThePinnedEpoch) {
  // The writer publishes a new epoch AFTER the query pinned but BEFORE
  // it counted: the query must still answer for the epoch it pinned.
  auto session = std::make_shared<StreamSession>(TwoTriangles());
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  std::atomic<bool> once{false};
  SchedulerTestHooks hooks;
  hooks.after_query_pin = [&](std::uint64_t) {
    if (once.exchange(true)) return;
    EdgeDelta delta;
    delta.Insert(0, 3);
    (void)session->Apply(delta);  // publish mid-count, bypassing the lanes
  };
  scheduler.SetTestHooks(hooks);

  const JobOutcome outcome = scheduler.SubmitQuery(session, {}).Wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.query.epoch, 0u);
  EXPECT_EQ(outcome.query.triangles, 2u);  // pre-publish state
  EXPECT_EQ(session->triangles(), 4u);     // the session moved on

  const JobOutcome after = scheduler.SubmitQuery(session, {}).Wait();
  EXPECT_EQ(after.query.epoch, 1u);
  EXPECT_EQ(after.query.triangles, 4u);
}

TEST(SchedulerInterleaving, SupersededEpochRetiresWhenLastReaderExits) {
  // The query's pin is the LAST reference to its epoch once the hook
  // publishes a successor: retirement must fire exactly when the query
  // drops the pin (before its handle resolves), not while it counts.
  auto session = std::make_shared<StreamSession>(TwoTriangles());
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  std::atomic<bool> once{false};
  std::atomic<std::uint64_t> live_during{0};
  std::atomic<std::uint64_t> retired_during{0};
  SchedulerTestHooks hooks;
  hooks.after_query_pin = [&](std::uint64_t) {
    if (once.exchange(true)) return;
    EdgeDelta delta;
    delta.Insert(0, 3);
    (void)session->Apply(delta);  // supersede the pinned epoch
    live_during = session->epochs().live_epochs();
    retired_during = session->epochs().retired();
  };
  scheduler.SetTestHooks(hooks);

  const JobOutcome outcome = scheduler.SubmitQuery(session, {}).Wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.query.epoch, 0u);
  // While the query counted, its pin kept the superseded epoch alive.
  EXPECT_EQ(live_during.load(), 2u);
  EXPECT_EQ(retired_during.load(), 0u);
  // The handle resolves only after the pin dropped: retired already 1.
  EXPECT_EQ(session->epochs().live_epochs(), 1u);
  EXPECT_EQ(session->epochs().retired(), 1u);
}

}  // namespace
}  // namespace tcim
