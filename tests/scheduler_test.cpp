// Scheduler tests: submission/dispatch ordering (FIFO and priority),
// concurrent submission from many threads, and both graceful-shutdown
// flavours. Pause()/Resume() stages deterministic queue contents so
// the ordering assertions are race-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/bitwise_tc.h"
#include "graph/generators.h"
#include "runtime/scheduler.h"

namespace tcim {
namespace {

using runtime::JobHandle;
using runtime::JobOptions;
using runtime::JobOutcome;
using runtime::JobState;
using runtime::Scheduler;
using runtime::SchedulerConfig;
using runtime::SchedulingPolicy;

SchedulerConfig SmallScheduler(SchedulingPolicy policy,
                               std::uint32_t dispatch_threads = 1) {
  SchedulerConfig config;
  config.policy = policy;
  config.dispatch_threads = dispatch_threads;
  config.pool.num_banks = 2;
  config.pool.accelerator.array.capacity_bytes = 1ULL << 20;
  return config;
}

graph::Graph JobGraph(std::uint64_t seed) {
  return graph::HolmeKim(120, 700, 0.7, seed);
}

TEST(SchedulerTest, SingleJobRunsToDoneWithExactCount) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  const graph::Graph g = JobGraph(1);
  const std::uint64_t expected = core::CountTrianglesDense(g);
  const JobHandle handle = scheduler.Submit(g);
  const JobOutcome outcome = handle.Wait();
  ASSERT_EQ(outcome.state, JobState::kDone);
  EXPECT_EQ(outcome.result.triangles, expected);
  EXPECT_GE(outcome.queue_seconds, 0.0);
  EXPECT_GT(outcome.run_seconds, 0.0);
}

TEST(SchedulerTest, FifoDispatchFollowsSubmissionOrder) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  scheduler.Pause();
  std::vector<JobHandle> handles;
  for (std::uint64_t j = 0; j < 6; ++j) {
    handles.push_back(scheduler.Submit(JobGraph(j)));
  }
  EXPECT_EQ(scheduler.pending(), 6u);
  scheduler.Resume();
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobOutcome outcome = handles[j].Wait();
    ASSERT_EQ(outcome.state, JobState::kDone);
    EXPECT_EQ(outcome.start_order, j);
  }
}

TEST(SchedulerTest, PriorityDispatchRunsHighestFirstFifoWithin) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kPriority)};
  scheduler.Pause();
  // Submission order: prio 0, 5, 1, 5, 0 → dispatch 1,3 (prio 5 in
  // submission order), then 2 (prio 1), then 0,4 (prio 0 in order).
  const int priorities[] = {0, 5, 1, 5, 0};
  std::vector<JobHandle> handles;
  for (std::size_t j = 0; j < std::size(priorities); ++j) {
    JobOptions options;
    options.priority = priorities[j];
    handles.push_back(scheduler.Submit(JobGraph(j), options));
  }
  scheduler.Resume();
  const std::uint64_t expected_order[] = {3, 0, 2, 1, 4};
  for (std::size_t j = 0; j < handles.size(); ++j) {
    const JobOutcome outcome = handles[j].Wait();
    ASSERT_EQ(outcome.state, JobState::kDone);
    EXPECT_EQ(outcome.start_order, expected_order[j]) << "job " << j;
  }
}

TEST(SchedulerTest, ConcurrentSubmissionFromManyThreads) {
  Scheduler scheduler{
      SmallScheduler(SchedulingPolicy::kFifo, /*dispatch_threads=*/3)};
  constexpr int kSubmitters = 4;
  constexpr int kJobsEach = 6;
  std::vector<std::vector<JobHandle>> handles(kSubmitters);
  std::vector<std::uint64_t> expected(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    expected[t] = core::CountTrianglesDense(JobGraph(t));
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsEach; ++j) {
        handles[t].push_back(scheduler.Submit(JobGraph(t)));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(scheduler.submitted(),
            static_cast<std::uint64_t>(kSubmitters * kJobsEach));
  for (int t = 0; t < kSubmitters; ++t) {
    for (const JobHandle& handle : handles[t]) {
      const JobOutcome outcome = handle.Wait();
      ASSERT_EQ(outcome.state, JobState::kDone);
      EXPECT_EQ(outcome.result.triangles, expected[t]);
    }
  }
  EXPECT_EQ(scheduler.completed(),
            static_cast<std::uint64_t>(kSubmitters * kJobsEach));
}

TEST(SchedulerTest, ShutdownCancelPendingCancelsQueuedJobs) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  scheduler.Pause();  // nothing dispatches: every job stays queued
  std::vector<JobHandle> handles;
  for (std::uint64_t j = 0; j < 5; ++j) {
    handles.push_back(scheduler.Submit(JobGraph(j)));
  }
  scheduler.Shutdown(Scheduler::ShutdownMode::kCancelPending);
  for (const JobHandle& handle : handles) {
    const JobOutcome outcome = handle.Wait();  // returns immediately
    EXPECT_EQ(outcome.state, JobState::kCancelled);
    EXPECT_EQ(outcome.run_seconds, 0.0);
  }
  EXPECT_EQ(scheduler.pending(), 0u);
  EXPECT_EQ(scheduler.completed(), 5u);
  EXPECT_THROW((void)scheduler.Submit(JobGraph(9)), std::runtime_error);
}

TEST(SchedulerTest, ShutdownDrainFinishesEverythingQueued) {
  std::vector<JobHandle> handles;
  {
    Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
    scheduler.Pause();
    for (std::uint64_t j = 0; j < 4; ++j) {
      handles.push_back(scheduler.Submit(JobGraph(j)));
    }
    // Shutdown implies Resume(): a paused scheduler must still drain.
    scheduler.Shutdown(Scheduler::ShutdownMode::kDrain);
    EXPECT_EQ(scheduler.pending(), 0u);
    EXPECT_EQ(scheduler.completed(), 4u);
  }  // destructor: second (idempotent) drain
  for (const JobHandle& handle : handles) {
    EXPECT_EQ(handle.Wait().state, JobState::kDone);
  }
}

TEST(SchedulerTest, DoubleShutdownIsIdempotent) {
  Scheduler scheduler{SmallScheduler(SchedulingPolicy::kFifo)};
  (void)scheduler.Submit(JobGraph(1)).Wait();
  scheduler.Shutdown();
  scheduler.Shutdown(Scheduler::ShutdownMode::kCancelPending);
  EXPECT_EQ(scheduler.completed(), 1u);
}

}  // namespace
}  // namespace tcim
