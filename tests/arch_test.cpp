// Tests for the architecture layer: set-associative slice cache
// (policies, stats invariants), the slice mapper's physical
// consistency, and the Algorithm-1 controller on known inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "arch/controller.h"
#include "arch/mapper.h"
#include "arch/slice_cache.h"
#include "bitmatrix/sliced_matrix.h"
#include "util/rng.h"

namespace tcim::arch {
namespace {

TEST(SliceCache, ColdMissesThenHits) {
  SliceCache cache(4, 2, ReplacementPolicy::kLru);
  EXPECT_FALSE(cache.Access(0, 100).hit);
  EXPECT_TRUE(cache.Access(0, 100).hit);
  EXPECT_FALSE(cache.Access(0, 200).hit);
  EXPECT_TRUE(cache.Access(0, 200).hit);
  EXPECT_EQ(cache.stats().lookups, 4u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().exchanges, 0u);
}

TEST(SliceCache, LruEvictsLeastRecentlyUsed) {
  SliceCache cache(1, 2, ReplacementPolicy::kLru);
  (void)cache.Access(0, 1);  // miss, fill
  (void)cache.Access(0, 2);  // miss, fill
  (void)cache.Access(0, 1);  // hit: 1 is now MRU
  const AccessResult r = cache.Access(0, 3);  // must evict 2
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_tag, 2u);
  EXPECT_TRUE(cache.Contains(0, 1));
  EXPECT_TRUE(cache.Contains(0, 3));
  EXPECT_FALSE(cache.Contains(0, 2));
}

TEST(SliceCache, FifoEvictsOldestInsert) {
  SliceCache cache(1, 2, ReplacementPolicy::kFifo);
  (void)cache.Access(0, 1);
  (void)cache.Access(0, 2);
  (void)cache.Access(0, 1);  // hit does NOT refresh FIFO order
  const AccessResult r = cache.Access(0, 3);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_tag, 1u);  // oldest insert, despite recent hit
}

TEST(SliceCache, RandomPolicyIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    SliceCache cache(1, 4, ReplacementPolicy::kRandom, seed);
    util::Xoshiro256 rng(9);
    std::vector<std::uint64_t> evictions;
    for (int i = 0; i < 200; ++i) {
      const AccessResult r = cache.Access(0, rng.UniformBelow(32));
      if (r.evicted) evictions.push_back(r.evicted_tag);
    }
    return evictions;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SliceCache, SetsAreIndependent) {
  SliceCache cache(2, 1, ReplacementPolicy::kLru);
  (void)cache.Access(0, 7);
  (void)cache.Access(1, 7);
  EXPECT_TRUE(cache.Contains(0, 7));
  EXPECT_TRUE(cache.Contains(1, 7));
  (void)cache.Access(0, 8);  // evicts only in set 0
  EXPECT_FALSE(cache.Contains(0, 7));
  EXPECT_TRUE(cache.Contains(1, 7));
}

TEST(SliceCache, OccupancyNeverExceedsAssociativity) {
  SliceCache cache(4, 3, ReplacementPolicy::kLru);
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 1000; ++i) {
    (void)cache.Access(rng.UniformBelow(4), rng.UniformBelow(100));
    for (std::uint64_t s = 0; s < 4; ++s) {
      ASSERT_LE(cache.Occupancy(s), 3u);
    }
  }
}

struct PolicyCase {
  ReplacementPolicy policy;
};

class CacheInvariantTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(CacheInvariantTest, StatsConservationUnderRandomWorkload) {
  SliceCache cache(8, 4, GetParam().policy, 3);
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    (void)cache.Access(rng.UniformBelow(8), rng.UniformBelow(64));
  }
  const CacheStats& s = cache.stats();
  EXPECT_EQ(s.lookups, 5000u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_EQ(s.inserts, s.misses);
  EXPECT_LE(s.exchanges, s.misses);
  EXPECT_NEAR(s.HitRate() + s.ColdMissRate() + s.ExchangeRate(), 1.0,
              1e-12);
}

TEST_P(CacheInvariantTest, NoExchangesWhenWorkingSetFits) {
  SliceCache cache(2, 8, GetParam().policy, 3);
  util::Xoshiro256 rng(12);
  for (int i = 0; i < 2000; ++i) {
    // 8 distinct tags per set, capacity 8: never overflows.
    (void)cache.Access(rng.UniformBelow(2), rng.UniformBelow(8));
  }
  EXPECT_EQ(cache.stats().exchanges, 0u);
  // Each of the 16 (set, tag) pairs misses exactly once.
  EXPECT_EQ(cache.stats().misses, 16u);
}

INSTANTIATE_TEST_SUITE_P(Policies, CacheInvariantTest,
                         ::testing::Values(PolicyCase{ReplacementPolicy::kLru},
                                           PolicyCase{ReplacementPolicy::kFifo},
                                           PolicyCase{
                                               ReplacementPolicy::kRandom}),
                         [](const auto& info) {
                           return ToString(info.param.policy);
                         });

TEST(SliceCache, LruBeatsRandomOnSkewedReuse) {
  // Zipf-ish stream: a hot set of tags reused heavily. LRU should keep
  // them; random eviction loses them regularly.
  const auto hit_rate = [](ReplacementPolicy policy) {
    SliceCache cache(1, 16, policy, 4);
    util::Xoshiro256 rng(13);
    for (int i = 0; i < 20000; ++i) {
      const std::uint64_t tag = rng.Bernoulli(0.8)
                                    ? rng.UniformBelow(12)    // hot set
                                    : 12 + rng.UniformBelow(500);
      (void)cache.Access(0, tag);
    }
    return cache.stats().HitRate();
  };
  EXPECT_GT(hit_rate(ReplacementPolicy::kLru),
            hit_rate(ReplacementPolicy::kRandom));
}

TEST(SliceCache, RejectsDegenerateGeometry) {
  EXPECT_THROW(SliceCache(0, 1, ReplacementPolicy::kLru),
               std::invalid_argument);
  EXPECT_THROW(SliceCache(1, 0, ReplacementPolicy::kLru),
               std::invalid_argument);
  SliceCache cache(1, 1, ReplacementPolicy::kLru);
  EXPECT_THROW(cache.Access(1, 0), std::out_of_range);
  EXPECT_THROW((void)cache.Contains(1, 0), std::out_of_range);
}

// --- mapper ----------------------------------------------------------------

TEST(SliceMapper, SetsCoverAllSubarrayColumnPairs) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  const SliceMapper mapper(config);
  EXPECT_EQ(mapper.num_sets(), config.total_subarrays() * 8);
  EXPECT_EQ(mapper.ways_per_set(), config.subarray_rows - 1);
}

TEST(SliceMapper, StagingAndWaysShareSetGeometry) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  const SliceMapper mapper(config);
  for (std::uint64_t set = 0; set < mapper.num_sets(); set += 17) {
    const pim::SliceAddr staging = mapper.StagingAddr(set);
    EXPECT_EQ(staging.row, 0u);
    for (std::uint32_t way = 0; way < 5; ++way) {
      const pim::SliceAddr w = mapper.WayAddr(set, way);
      // Same subarray + column group as staging: AND-compatible.
      EXPECT_EQ(w.subarray, staging.subarray);
      EXPECT_EQ(w.col_group, staging.col_group);
      EXPECT_EQ(w.row, way + 1);  // never collides with staging
    }
  }
}

TEST(SliceMapper, MinimalSpreadMapsSliceIndexToOneSet) {
  nvsim::ArrayConfig config;
  const SliceMapper mapper(config);
  for (std::uint32_t k = 0; k < 10000; k += 7) {
    // spread = 1: every column of slice index k lands in the same set.
    EXPECT_EQ(mapper.SetOf(k, 3, 1), k % mapper.num_sets());
    EXPECT_EQ(mapper.SetOf(k, 900, 1), mapper.SetOf(k, 17, 1));
  }
}

TEST(SliceMapper, SpreadFansColumnsAcrossSets) {
  nvsim::ArrayConfig config;
  const SliceMapper mapper(config);
  // Deterministic per (k, j)...
  EXPECT_EQ(mapper.SetOf(5, 123, 8), mapper.SetOf(5, 123, 8));
  // ...and distributing across `spread` distinct sets for one k.
  std::set<std::uint64_t> sets;
  for (std::uint32_t j = 0; j < 64; ++j) {
    sets.insert(mapper.SetOf(5, j, 8));
  }
  EXPECT_EQ(sets.size(), 8u);
}

TEST(SliceMapper, SpreadForFillsArray) {
  nvsim::ArrayConfig config;  // 16 MB -> 4096 sets
  const SliceMapper mapper(config);
  EXPECT_EQ(mapper.SpreadFor(4096), 1u);
  EXPECT_EQ(mapper.SpreadFor(10000), 1u);   // more indices than sets
  EXPECT_EQ(mapper.SpreadFor(64), 64u);     // small graph: fan out
  EXPECT_EQ(mapper.SpreadFor(0), 1u);       // degenerate
}

// --- controller -------------------------------------------------------------

bit::SlicedMatrix Fig2Matrix() {
  const std::vector<std::uint64_t> offsets = {0, 2, 4, 5, 5};
  const std::vector<std::uint32_t> neighbors = {1, 2, 2, 3, 3};
  return bit::SlicedMatrix::FromCsr(4, offsets, neighbors, 64);
}

TEST(Controller, Fig2WalkthroughCounts) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);
  ControllerConfig controller_config;
  controller_config.spread_override = 1;  // the paper's minimal mapping
  Controller controller(array, controller_config);
  const ExecStats stats = controller.Run(Fig2Matrix());

  EXPECT_EQ(stats.accumulated_bitcount, 2u);  // two triangles
  EXPECT_EQ(stats.edges_processed, 5u);
  EXPECT_EQ(stats.valid_pairs, 5u);  // all 5 non-zeros, single slice
  // Columns C1, C2, C3 loaded once each (misses), reused twice total:
  // C2 at step 3 and C3 at step 5 (paper Fig. 2 discussion).
  EXPECT_EQ(stats.col_slice_writes, 3u);
  EXPECT_EQ(stats.cache.hits, 2u);
  EXPECT_EQ(stats.cache.exchanges, 0u);
  // Rows R0, R1, R2 staged once each (n=4 -> one slice per row).
  EXPECT_EQ(stats.row_slice_writes, 3u);
}

TEST(Controller, Fig2CommandSequence) {
  // The paper's five-step walkthrough at array-command granularity:
  //   step 1: load R0, load C1, AND      step 4: load C3, AND
  //   step 2: load C2, AND               step 5: load R2, AND (C3 hit)
  //   step 3: load R1, AND (C2 hit)
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);
  array.EnableTrace(64);
  ControllerConfig cc;
  cc.spread_override = 1;
  Controller controller(array, cc);
  (void)controller.Run(Fig2Matrix());

  using Op = pim::TraceEntry::Op;
  std::vector<Op> ops;
  for (const pim::TraceEntry& e : array.trace()) ops.push_back(e.op);
  EXPECT_EQ(ops, (std::vector<Op>{
                     Op::kWrite, Op::kWrite, Op::kAnd,   // R0, C1, AND
                     Op::kWrite, Op::kAnd,               // C2, AND
                     Op::kWrite, Op::kAnd,               // R1, AND (C2 hit)
                     Op::kWrite, Op::kAnd,               // C3, AND
                     Op::kWrite, Op::kAnd}));            // R2, AND (C3 hit)
  EXPECT_FALSE(array.trace_truncated());
  // Every AND pairs the staging row (row 0) with a cache way.
  for (const pim::TraceEntry& e : array.trace()) {
    if (e.op == Op::kAnd) {
      EXPECT_EQ(e.a.row, 0u);
      EXPECT_GT(e.b.row, 0u);
      EXPECT_EQ(e.a.subarray, e.b.subarray);
      EXPECT_EQ(e.a.col_group, e.b.col_group);
    }
  }
}

TEST(Controller, AccumulatorMatchesSoftwareEquation5) {
  util::Xoshiro256 rng(21);
  // Random upper-triangular CSR over 300 vertices.
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < 300; ++i) {
    for (std::uint32_t j = i + 1; j < 300; ++j) {
      if (rng.Bernoulli(0.05)) neighbors.push_back(j);
    }
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(300, offsets, neighbors, 64);

  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);
  Controller controller(array, ControllerConfig{});
  const ExecStats stats = controller.Run(matrix);
  EXPECT_EQ(stats.accumulated_bitcount, matrix.AndPopcountAllEdges());
}

TEST(Controller, StatsConservationLaws) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);
  Controller controller(array, ControllerConfig{});

  util::Xoshiro256 rng(22);
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < 500; ++i) {
    for (std::uint32_t j = i + 1; j < 500; ++j) {
      if (rng.Bernoulli(0.02)) neighbors.push_back(j);
    }
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(500, offsets, neighbors, 64);
  const ExecStats stats = controller.Run(matrix);

  EXPECT_EQ(stats.cache.lookups, stats.valid_pairs);
  EXPECT_EQ(stats.col_slice_writes, stats.cache.misses);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, stats.cache.lookups);
  EXPECT_EQ(array.counts().ands, stats.valid_pairs);
  EXPECT_EQ(array.counts().writes, stats.TotalWrites());
  // Per-subarray counts sum to totals.
  std::uint64_t and_sum = 0;
  for (const auto a : stats.per_subarray_ands) and_sum += a;
  EXPECT_EQ(and_sum, stats.valid_pairs);
  std::uint64_t write_sum = 0;
  for (const auto w : stats.per_subarray_writes) write_sum += w;
  EXPECT_EQ(write_sum, stats.TotalWrites());
  // Row staging writes: at least one per touched row slice, at most
  // one per valid pair (full spread replication).
  EXPECT_LE(stats.row_slice_writes, stats.valid_pairs);
  EXPECT_GE(stats.spread, 1u);
}

TEST(Controller, SpreadOneStagesOncePerRowSlice) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);
  ControllerConfig cc;
  cc.spread_override = 1;
  Controller controller(array, cc);

  util::Xoshiro256 rng(29);
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < 400; ++i) {
    for (std::uint32_t j = i + 1; j < 400; ++j) {
      if (rng.Bernoulli(0.03)) neighbors.push_back(j);
    }
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(400, offsets, neighbors, 64);
  const ExecStats stats = controller.Run(matrix);
  // With spread 1 each row slice is staged at most once per row
  // iteration: bounded by the touched row slices.
  EXPECT_LE(stats.row_slice_writes, matrix.rows().valid_slice_count());
  EXPECT_EQ(stats.spread, 1u);
  EXPECT_EQ(stats.accumulated_bitcount, matrix.AndPopcountAllEdges());
}

TEST(Controller, AutoSpreadFillsSmallGraphIntoBigArray) {
  // 400-vertex graph: 7 slice indices; a 1 MB array has 256 sets.
  // Auto spread must exceed 1 and counts must be unchanged.
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray a1(config);
  pim::ComputationalArray a2(config);
  ControllerConfig auto_cfg;  // spread_override = 0
  ControllerConfig minimal;
  minimal.spread_override = 1;

  util::Xoshiro256 rng(30);
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < 400; ++i) {
    for (std::uint32_t j = i + 1; j < 400; ++j) {
      if (rng.Bernoulli(0.05)) neighbors.push_back(j);
    }
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(400, offsets, neighbors, 64);

  Controller c_auto(a1, auto_cfg);
  Controller c_min(a2, minimal);
  const ExecStats s_auto = c_auto.Run(matrix);
  const ExecStats s_min = c_min.Run(matrix);
  EXPECT_GT(s_auto.spread, 1u);
  EXPECT_EQ(s_auto.accumulated_bitcount, s_min.accumulated_bitcount);
  // Spreading can only help column retention (more usable ways).
  EXPECT_GE(s_auto.cache.hits, s_min.cache.hits);
}

TEST(Controller, TinyArrayForcesExchanges) {
  // 64 KiB array: 2 subarrays, 16 sets; column slices of a dense-ish
  // matrix must thrash.
  nvsim::ArrayConfig config;
  config.capacity_bytes = 64ULL << 10;
  pim::ComputationalArray array(config);
  Controller controller(array, ControllerConfig{});

  util::Xoshiro256 rng(23);
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  const std::uint32_t n = 4096;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t d = 1; d <= 40; ++d) {
      const std::uint32_t j = i + 1 + rng.UniformBelow(n / 2);
      if (j < n) neighbors.push_back(j);
    }
    std::sort(neighbors.begin() + offsets.back(), neighbors.end());
    neighbors.erase(
        std::unique(neighbors.begin() + offsets.back(), neighbors.end()),
        neighbors.end());
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(n, offsets, neighbors, 64);
  const ExecStats stats = controller.Run(matrix);
  EXPECT_GT(stats.cache.exchanges, 0u);
  EXPECT_EQ(stats.accumulated_bitcount, matrix.AndPopcountAllEdges());
}

TEST(Controller, CapacityModelShrinksWays) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray a1(config);
  pim::ComputationalArray a2(config);
  ControllerConfig with_index;
  with_index.capacity_model = CapacityModel::kWithIndexOverhead;
  ControllerConfig data_only;
  data_only.capacity_model = CapacityModel::kDataOnly;
  const Controller c1(a1, with_index);
  const Controller c2(a2, data_only);
  EXPECT_LT(c1.cache().associativity(), c2.cache().associativity());
  // |S|=64: 8B data + 4B index -> 2/3 of the data-only ways.
  EXPECT_EQ(c1.cache().associativity(),
            static_cast<std::uint32_t>((config.subarray_rows - 1) * 8.0 /
                                       12.0));
}

TEST(Controller, SliceIndexAliasingRegression) {
  // Regression: with more slice indices than sets, distinct k alias
  // onto one set (k mod num_sets); consecutive aliased groups within a
  // row must each restage their own RiSk or the AND reads a stale row
  // slice. n >> 64 * num_sets triggers the aliasing densely.
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;  // 256 sets
  pim::ComputationalArray array(config);
  Controller controller(array, ControllerConfig{});

  util::Xoshiro256 rng(31);
  const std::uint32_t n = 40000;
  std::vector<std::uint64_t> offsets = {0};
  std::vector<std::uint32_t> neighbors;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::size_t begin = neighbors.size();
    for (int d = 0; d < 6; ++d) {
      const std::uint32_t j =
          i + 1 + static_cast<std::uint32_t>(rng.UniformBelow(n - i));
      if (j < n) neighbors.push_back(j);
    }
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(begin),
              neighbors.end());
    neighbors.erase(
        std::unique(neighbors.begin() + static_cast<std::ptrdiff_t>(begin),
                    neighbors.end()),
        neighbors.end());
    offsets.push_back(neighbors.size());
  }
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(n, offsets, neighbors, 64);
  const ExecStats stats = controller.Run(matrix);
  EXPECT_EQ(stats.accumulated_bitcount, matrix.AndPopcountAllEdges());
}

TEST(Controller, RejectsSliceWidthMismatch) {
  nvsim::ArrayConfig config;
  config.capacity_bytes = 1ULL << 20;
  pim::ComputationalArray array(config);  // 64-bit access
  Controller controller(array, ControllerConfig{});
  const std::vector<std::uint64_t> offsets = {0, 1, 1};
  const std::vector<std::uint32_t> neighbors = {1};
  const bit::SlicedMatrix matrix =
      bit::SlicedMatrix::FromCsr(2, offsets, neighbors, 32);
  EXPECT_THROW((void)controller.Run(matrix), std::invalid_argument);
}

}  // namespace
}  // namespace tcim::arch
