// Tests for src/util: deterministic RNG, table rendering, unit
// formatting, env knobs, timers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/env.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/units.h"

namespace tcim::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_EQ(SplitMix64(42), SplitMix64(42));
}

TEST(SplitMix64, DistinctInputsGiveDistinctOutputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(SplitMix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, ZeroSeedIsNotDegenerate) {
  Xoshiro256 rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 90u);
}

TEST(Xoshiro256, UniformBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformBelow(bound), bound);
    }
  }
}

TEST(Xoshiro256, UniformBelowZeroBoundIsZero) {
  Xoshiro256 rng(7);
  EXPECT_EQ(rng.UniformBelow(0), 0u);
}

TEST(Xoshiro256, UniformBelowIsRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.UniformBelow(kBuckets)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Xoshiro256, UniformInRangeInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.UniformInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, UniformDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(13);
  double sum = 0;
  double sq = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Xoshiro256, ForkDecorrelates) {
  Xoshiro256 parent(21);
  Xoshiro256 child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, BernoulliExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(TablePrinter, RendersMarkdownPipes) {
  TablePrinter t({"A", "B"});
  t.AddRow({"x", "1"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| A"), std::string::npos);
  EXPECT_NE(out.find("| x"), std::string::npos);
  EXPECT_NE(out.find("- | -"), std::string::npos);  // separator rule
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter t({"A", "B"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TablePrinter, RejectsEmptyHeaders) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(TablePrinter, RejectsMismatchedAlignments) {
  EXPECT_THROW(TablePrinter({"A", "B"}, {Align::kLeft}),
               std::invalid_argument);
}

TEST(TablePrinter, FormattingHelpers) {
  EXPECT_EQ(TablePrinter::Fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::WithThousands(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::WithThousands(1), "1");
  EXPECT_EQ(TablePrinter::WithThousands(999), "999");
  EXPECT_EQ(TablePrinter::WithThousands(1000), "1,000");
  EXPECT_EQ(TablePrinter::Percent(0.72, 0), "72%");
  EXPECT_EQ(TablePrinter::Ratio(23.42, 1), "23.4x");
}

TEST(TablePrinter, CompactCounts) {
  EXPECT_EQ(TablePrinter::Compact(0), "0");
  EXPECT_EQ(TablePrinter::Compact(999), "999");
  EXPECT_EQ(TablePrinter::Compact(1000), "1.0k");
  EXPECT_EQ(TablePrinter::Compact(1234), "1.2k");
  EXPECT_EQ(TablePrinter::Compact(1234567), "1.2M");
  EXPECT_EQ(TablePrinter::Compact(3400000000ULL), "3.4G");
  EXPECT_EQ(TablePrinter::Compact(5600000000000ULL, 2), "5.60T");
  // Rounding at a magnitude boundary bumps the suffix, never "1000.0k".
  EXPECT_EQ(TablePrinter::Compact(999999), "1.0M");
  EXPECT_EQ(TablePrinter::Compact(999999999), "1.0G");
  EXPECT_EQ(TablePrinter::Compact(999499), "999.5k");
  // u64 max lands in the exa range instead of overflowing the table.
  EXPECT_EQ(TablePrinter::Compact(18446744073709551615ULL, 1), "18.4E");
}

TEST(TablePrinter, AlignmentPadsCorrectly) {
  TablePrinter t({"Name", "Val"}, {Align::kLeft, Align::kRight});
  t.AddRow({"ab", "7"});
  t.AddRow({"longer", "123"});
  std::ostringstream os;
  t.Print(os, /*markdown=*/false);
  // Right-aligned "7" must be padded on the left within its column.
  EXPECT_NE(os.str().find("  7"), std::string::npos);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(FormatBytes(16.8 * kMiB, 1), "16.8 MiB");
  EXPECT_EQ(FormatBytes(512, 0), "512 B");
  EXPECT_EQ(FormatBytes(2.0 * kGiB, 0), "2 GiB");
}

TEST(Units, FormatJoules) {
  EXPECT_EQ(FormatJoules(1.5e-12, 1), "1.5 pJ");
  EXPECT_EQ(FormatJoules(2e-9, 0), "2 nJ");
}

TEST(Units, FormatOhmsAndAmps) {
  EXPECT_EQ(FormatOhms(625.0, 0), "625 Ohm");
  EXPECT_EQ(FormatOhms(1.25e3, 2), "1.25 kOhm");
  EXPECT_EQ(FormatAmps(50e-6, 0), "50 uA");
}

TEST(Units, PhysicalConstantsSane) {
  EXPECT_NEAR(kBoltzmann, 1.38e-23, 1e-25);
  EXPECT_NEAR(kMu0, 1.2566e-6, 1e-9);
  EXPECT_GT(kGyromagneticRatio, 1e11);
}

TEST(Env, DoubleFallbackAndClamp) {
  ::unsetenv("TCIM_TEST_KNOB");
  EXPECT_DOUBLE_EQ(EnvDouble("TCIM_TEST_KNOB", 0.5, 0.0, 1.0), 0.5);
  ::setenv("TCIM_TEST_KNOB", "0.75", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("TCIM_TEST_KNOB", 0.5, 0.0, 1.0), 0.75);
  ::setenv("TCIM_TEST_KNOB", "7.5", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("TCIM_TEST_KNOB", 0.5, 0.0, 1.0), 1.0);
  ::setenv("TCIM_TEST_KNOB", "garbage", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("TCIM_TEST_KNOB", 0.5, 0.0, 1.0), 0.5);
  ::unsetenv("TCIM_TEST_KNOB");
}

TEST(Env, U64FallbackAndParse) {
  ::unsetenv("TCIM_TEST_SEED");
  EXPECT_EQ(EnvU64("TCIM_TEST_SEED", 42u), 42u);
  ::setenv("TCIM_TEST_SEED", "123456789", 1);
  EXPECT_EQ(EnvU64("TCIM_TEST_SEED", 42u), 123456789u);
  ::unsetenv("TCIM_TEST_SEED");
}

TEST(Env, StringFallbackAndRead) {
  ::unsetenv("TCIM_TEST_KERNEL");
  EXPECT_EQ(EnvString("TCIM_TEST_KERNEL", "auto"), "auto");
  ::setenv("TCIM_TEST_KERNEL", "", 1);
  EXPECT_EQ(EnvString("TCIM_TEST_KERNEL", "auto"), "auto");
  ::setenv("TCIM_TEST_KERNEL", "avx2", 1);
  EXPECT_EQ(EnvString("TCIM_TEST_KERNEL", "auto"), "avx2");
  ::unsetenv("TCIM_TEST_KERNEL");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 1000000; ++i) x = x + 1.0;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GT(t.ElapsedNanos(), 0u);
}

TEST(Timer, FormatSeconds) {
  EXPECT_EQ(FormatSeconds(1.5), "1.500 s");
  EXPECT_EQ(FormatSeconds(0.0215), "21.500 ms");
  EXPECT_EQ(FormatSeconds(3.2e-6), "3.200 us");
  EXPECT_EQ(FormatSeconds(5e-9), "5.0 ns");
}

TEST(Timer, TimePerIterationPositive) {
  const double per_iter = TimePerIteration([] {
    volatile int x = 0;
    for (int i = 0; i < 100; ++i) x = x + i;
  }, 0.01);
  EXPECT_GT(per_iter, 0.0);
}

}  // namespace
}  // namespace tcim::util
