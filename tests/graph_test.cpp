// Tests for the CSR graph substrate and its builder invariants.
#include <gtest/gtest.h>

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace tcim::graph {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = GraphBuilder(0).Build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, VerticesWithoutEdges) {
  const Graph g = GraphBuilder(5).Build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.Degree(v), 0u);
    EXPECT_TRUE(g.Neighbors(v).empty());
  }
}

TEST(GraphBuilder, SingleEdgeIsSymmetric) {
  GraphBuilder b(3);
  b.AddEdge(0, 2);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(2), 1u);
}

TEST(GraphBuilder, DropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);  // same edge, reversed
  b.AddEdge(0, 1);  // exact duplicate
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphBuilder, RejectsOutOfRangeVertices) {
  GraphBuilder b(3);
  EXPECT_THROW(b.AddEdge(0, 3), std::out_of_range);
  EXPECT_THROW(b.AddEdge(3, 0), std::out_of_range);
}

TEST(Graph, NeighborsAreSortedStrictlyIncreasing) {
  util::Xoshiro256 rng(42);
  GraphBuilder b(200);
  for (int i = 0; i < 2000; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(200)),
              static_cast<VertexId>(rng.UniformBelow(200)));
  }
  const Graph g = std::move(b).Build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.Neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      ASSERT_LT(nbrs[i - 1], nbrs[i]);
    }
  }
}

TEST(Graph, AdjacencyIsSymmetric) {
  util::Xoshiro256 rng(43);
  GraphBuilder b(100);
  for (int i = 0; i < 500; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(100)),
              static_cast<VertexId>(rng.UniformBelow(100)));
  }
  const Graph g = std::move(b).Build();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.Neighbors(v)) {
      ASSERT_TRUE(g.HasEdge(u, v));
    }
  }
}

TEST(Graph, DegreeSumsToTwiceEdges) {
  util::Xoshiro256 rng(44);
  GraphBuilder b(150);
  for (int i = 0; i < 900; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(150)),
              static_cast<VertexId>(rng.UniformBelow(150)));
  }
  const Graph g = std::move(b).Build();
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) degree_sum += g.Degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

TEST(Graph, ForEachEdgeVisitsEachOnceOrdered) {
  GraphBuilder b(5);
  b.AddEdge(3, 1);
  b.AddEdge(0, 4);
  b.AddEdge(2, 0);
  const Graph g = std::move(b).Build();
  std::vector<std::pair<VertexId, VertexId>> edges;
  g.ForEachEdge([&](VertexId u, VertexId v) { edges.emplace_back(u, v); });
  EXPECT_EQ(edges, (std::vector<std::pair<VertexId, VertexId>>{
                       {0, 2}, {0, 4}, {1, 3}}));
}

TEST(Graph, MaxAndMeanDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(0, 3);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 6.0 / 4.0);
}

TEST(Graph, AccessorsRejectOutOfRange) {
  const Graph g = GraphBuilder(2).Build();
  EXPECT_THROW((void)g.Neighbors(2), std::out_of_range);
  EXPECT_THROW((void)g.Degree(2), std::out_of_range);
  EXPECT_THROW((void)g.HasEdge(0, 2), std::out_of_range);
}

TEST(Graph, HasEdgeSearchesSmallerList) {
  // Hub vertex 0 with many neighbours; probe from both sides.
  GraphBuilder b(1000);
  for (VertexId v = 1; v < 1000; ++v) b.AddEdge(0, v);
  b.AddEdge(500, 501);
  const Graph g = std::move(b).Build();
  EXPECT_TRUE(g.HasEdge(0, 999));
  EXPECT_TRUE(g.HasEdge(999, 0));
  EXPECT_TRUE(g.HasEdge(500, 501));
  EXPECT_FALSE(g.HasEdge(501, 502));
}

TEST(Graph, OffsetsSpanAdjacency) {
  util::Xoshiro256 rng(45);
  GraphBuilder b(50);
  for (int i = 0; i < 100; ++i) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(50)),
              static_cast<VertexId>(rng.UniformBelow(50)));
  }
  const Graph g = std::move(b).Build();
  const auto offsets = g.offsets();
  ASSERT_EQ(offsets.size(), g.num_vertices() + 1u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), g.adjacency().size());
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_LE(offsets[i - 1], offsets[i]);
  }
}

}  // namespace
}  // namespace tcim::graph
