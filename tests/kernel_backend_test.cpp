// Tests for the SIMD kernel-backend subsystem (kernel_backend.h):
// backend enumeration/naming, runtime detection invariants, bit-exact
// parity of every supported backend against the scalar reference over
// adversarial span shapes, the TCIM_KERNEL env override, and
// whole-pipeline count parity on the Table II stand-ins.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "baseline/cpu_tc.h"
#include "bitmatrix/kernel_backend.h"
#include "bitmatrix/popcount.h"
#include "core/bitwise_tc.h"
#include "graph/datasets.h"
#include "util/rng.h"

namespace tcim::bit {
namespace {

/// Restores the active backend (and TCIM_KERNEL) on scope exit so a
/// failing test cannot leak a forced backend into later tests.
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveBackend()) {
    const char* env = std::getenv("TCIM_KERNEL");
    if (env != nullptr) saved_env_ = env;
  }
  ~BackendGuard() {
    if (saved_env_.has_value()) {
      ::setenv("TCIM_KERNEL", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("TCIM_KERNEL");
    }
    SetActiveBackend(saved_);
  }

 private:
  KernelBackend saved_;
  std::optional<std::string> saved_env_;
};

/// Trivially-correct reference, independent of every backend.
std::uint64_t ReferenceAndPopcount(const std::vector<std::uint64_t>& a,
                                   const std::vector<std::uint64_t>& b) {
  std::uint64_t total = 0;
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

TEST(KernelBackend, NamesRoundTrip) {
  for (const KernelBackend backend : AllKernelBackends()) {
    const auto parsed = ParseKernelBackend(ToString(backend));
    ASSERT_TRUE(parsed.has_value()) << ToString(backend);
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_EQ(ParseKernelBackend("swar"), KernelBackend::kSwar64x4);
  EXPECT_EQ(ParseKernelBackend("avx512"), KernelBackend::kAvx512Vpopcnt);
  EXPECT_FALSE(ParseKernelBackend("auto").has_value());
  EXPECT_FALSE(ParseKernelBackend("").has_value());
  EXPECT_FALSE(ParseKernelBackend("AVX2").has_value());
}

TEST(KernelBackend, DetectionInvariants) {
  // The portable backends can never be absent: they are the fallback.
  EXPECT_TRUE(BackendCompiledIn(KernelBackend::kScalar));
  EXPECT_TRUE(BackendCompiledIn(KernelBackend::kSwar64x4));
  EXPECT_TRUE(BackendSupported(KernelBackend::kScalar));
  EXPECT_TRUE(BackendSupported(KernelBackend::kSwar64x4));
  // Supported implies compiled in, and the auto pick must be runnable.
  for (const KernelBackend backend : AllKernelBackends()) {
    if (BackendSupported(backend)) {
      EXPECT_TRUE(BackendCompiledIn(backend)) << ToString(backend);
    }
  }
  EXPECT_TRUE(BackendSupported(BestSupportedBackend()));
  EXPECT_TRUE(BackendSupported(ActiveBackend()));
}

TEST(KernelBackend, UnsupportedBackendThrowsInsteadOfExecuting) {
  for (const KernelBackend backend : AllKernelBackends()) {
    if (BackendSupported(backend)) continue;
    const std::vector<std::uint64_t> w = {0xFFULL};
    EXPECT_THROW((void)AndPopcountBackend(w, w, backend),
                 std::invalid_argument)
        << ToString(backend);
    EXPECT_THROW(SetActiveBackend(backend), std::invalid_argument)
        << ToString(backend);
  }
}

// ---------------------------------------------------------------------------
// Parity: every supported backend, adversarial lengths x fill patterns.

class BackendParityTest : public ::testing::TestWithParam<KernelBackend> {
 protected:
  void SetUp() override {
    if (!BackendSupported(GetParam())) {
      GTEST_SKIP() << ToString(GetParam())
                   << " is not executable on this machine";
    }
  }
};

/// Lengths covering 0, 1, and 1–7-word tails past each SIMD block
/// width in play (NEON pairs = 2, AVX2 vector = 4, AVX-512 = 8/16,
/// Harley–Seal block = 64).
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,   6,   7,   8,  9,
                                11, 15, 16, 17, 19, 23,  31,  32,  33, 37,
                                63, 64, 65, 67, 71, 127, 128, 131, 200};

enum class Fill { kZero, kOnes, kDense, kSparse, kAlternating };

std::vector<std::uint64_t> MakeWords(std::size_t n, Fill fill,
                                     std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> words(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (fill) {
      case Fill::kZero:
        words[i] = 0;
        break;
      case Fill::kOnes:
        words[i] = ~0ULL;
        break;
      case Fill::kDense:
        words[i] = rng();
        break;
      case Fill::kSparse:
        words[i] = 1ULL << (rng() % 64);
        break;
      case Fill::kAlternating:
        words[i] = (i % 2 == 0) ? 0xAAAAAAAAAAAAAAAAULL
                                : 0x5555555555555555ULL;
        break;
    }
  }
  return words;
}

TEST_P(BackendParityTest, AndPopcountMatchesScalarOnAllShapes) {
  const KernelBackend backend = GetParam();
  const Fill fills[] = {Fill::kZero, Fill::kOnes, Fill::kDense, Fill::kSparse,
                        Fill::kAlternating};
  std::uint64_t seed = 1;
  for (const std::size_t n : kLengths) {
    for (const Fill fa : fills) {
      for (const Fill fb : fills) {
        const auto a = MakeWords(n, fa, seed++);
        const auto b = MakeWords(n, fb, seed++);
        const std::uint64_t expected = ReferenceAndPopcount(a, b);
        ASSERT_EQ(AndPopcountBackend(a, b, backend), expected)
            << ToString(backend) << " n=" << n << " fills=("
            << static_cast<int>(fa) << "," << static_cast<int>(fb) << ")";
        ASSERT_EQ(AndPopcountBackend(a, b, KernelBackend::kScalar), expected);
      }
    }
  }
}

TEST_P(BackendParityTest, PopcountWordsMatchesScalar) {
  const KernelBackend backend = GetParam();
  for (const std::size_t n : kLengths) {
    const auto w = MakeWords(n, Fill::kDense, 7 + n);
    ASSERT_EQ(PopcountWordsBackend(w, backend),
              PopcountWordsBackend(w, KernelBackend::kScalar))
        << ToString(backend) << " n=" << n;
  }
}

TEST_P(BackendParityTest, MismatchedSpanSizesUseCommonPrefix) {
  const auto a = MakeWords(70, Fill::kDense, 1001);
  const auto b = MakeWords(33, Fill::kDense, 1002);
  EXPECT_EQ(AndPopcountBackend(a, b, GetParam()),
            ReferenceAndPopcount(a, b));
}

// ---------------------------------------------------------------------------
// Batched pair kernel: for every supported backend, the single-dispatch
// block evaluation must equal the per-pair loop it replaced — across
// every words_per_slice in play (1..8), empty and single-pair arenas,
// odd tails past every SIMD block width, and blocks big enough to
// cross the internal flush/Harley–Seal boundaries.

TEST_P(BackendParityTest, BatchedPairsMatchPerPairLoop) {
  const KernelBackend backend = GetParam();
  util::Xoshiro256 rng(99);
  for (std::size_t width = 1; width <= 8; ++width) {
    for (const std::size_t pairs : {std::size_t{0}, std::size_t{1},
                                    std::size_t{3}, std::size_t{7},
                                    std::size_t{65}, std::size_t{1021}}) {
      PairArena arena;
      std::uint64_t expected = 0;
      std::vector<std::uint64_t> a(width);
      std::vector<std::uint64_t> b(width);
      for (std::size_t p = 0; p < pairs; ++p) {
        for (std::size_t k = 0; k < width; ++k) {
          // Mix of dense and sparse pair payloads.
          a[k] = (p % 3 == 0) ? rng() : 1ULL << (rng() % 64);
          b[k] = (p % 5 == 0) ? ~0ULL : rng();
        }
        arena.Push(a.data(), b.data(), width);
        expected += ReferenceAndPopcount(a, b);
      }
      ASSERT_EQ(arena.pair_count(), pairs);
      ASSERT_EQ(arena.word_count(), pairs * width);
      ASSERT_EQ(AndPopcountPairsBackend(arena, backend), expected)
          << ToString(backend) << " width=" << width << " pairs=" << pairs;
    }
  }
}

TEST_P(BackendParityTest, BatchedPairsRouteThroughForcedDispatch) {
  BackendGuard guard;
  SetActiveBackend(GetParam());
  util::Xoshiro256 rng(7);
  PairArena arena;
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> a(4);
  std::vector<std::uint64_t> b(4);
  for (int p = 0; p < 37; ++p) {
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    arena.Push(a.data(), b.data(), a.size());
    expected += ReferenceAndPopcount(a, b);
  }
  EXPECT_EQ(AndPopcountPairs(arena), expected);
  // Clear keeps the capacity but forgets the pairs.
  arena.Clear();
  EXPECT_TRUE(arena.Empty());
  EXPECT_EQ(arena.pair_count(), 0u);
  EXPECT_EQ(AndPopcountPairs(arena), 0u);
}

TEST(PairArena, EmptyArenaCountsZeroOnEveryBackend) {
  const PairArena arena;
  EXPECT_TRUE(arena.Empty());
  for (const KernelBackend backend : SupportedKernelBackends()) {
    EXPECT_EQ(AndPopcountPairsBackend(arena, backend), 0u)
        << ToString(backend);
  }
}

TEST(PairArena, UnsupportedBackendThrows) {
  PairArena arena;
  const std::uint64_t word = 0xF0F0F0F0F0F0F0F0ULL;
  arena.Push(&word, &word, 1);
  for (const KernelBackend backend : AllKernelBackends()) {
    if (BackendSupported(backend)) continue;
    EXPECT_THROW((void)AndPopcountPairsBackend(arena, backend),
                 std::invalid_argument)
        << ToString(backend);
  }
}

// ---------------------------------------------------------------------------
// Zero-copy pair kernel: in-place descriptor evaluation must be
// bit-exact with the per-pair reference for every supported backend,
// across every length in kLengths (0 words up to 200 — past every
// SIMD block width in play) and with mixed widths in one list.

TEST_P(BackendParityTest, ZeroCopyPairsMatchReferenceOnAllLengths) {
  const KernelBackend backend = GetParam();
  std::uint64_t seed = 31;
  for (const std::size_t n : kLengths) {
    const auto a = MakeWords(n, Fill::kDense, seed++);
    const auto b = MakeWords(n, Fill::kSparse, seed++);
    const PairRef ref{a.data(), b.data(), static_cast<std::uint32_t>(n)};
    ASSERT_EQ(AndPopcountPairsZeroCopyBackend(std::span(&ref, 1), backend),
              ReferenceAndPopcount(a, b))
        << ToString(backend) << " n=" << n;
  }
}

TEST_P(BackendParityTest, ZeroCopyMixedWidthListMatchesReference) {
  const KernelBackend backend = GetParam();
  util::Xoshiro256 rng(613);
  std::vector<std::vector<std::uint64_t>> storage;
  std::vector<PairRef> refs;
  std::uint64_t expected = 0;
  for (const std::size_t n : kLengths) {
    auto a = MakeWords(n, Fill::kDense, rng());
    auto b = MakeWords(n, Fill::kAlternating, rng());
    expected += ReferenceAndPopcount(a, b);
    storage.push_back(std::move(a));
    storage.push_back(std::move(b));
    const auto& sa = storage[storage.size() - 2];
    const auto& sb = storage[storage.size() - 1];
    refs.push_back(PairRef{sa.data(), sb.data(),
                           static_cast<std::uint32_t>(n)});
  }
  EXPECT_EQ(AndPopcountPairsZeroCopyBackend(refs, backend), expected)
      << ToString(backend);
  // Empty list sums to zero without touching any pointer.
  EXPECT_EQ(AndPopcountPairsZeroCopyBackend({}, backend), 0u);
}

TEST_P(BackendParityTest, ZeroCopyActiveDispatchMatchesForcedBackend) {
  BackendGuard guard;
  SetActiveBackend(GetParam());
  util::Xoshiro256 rng(1789);
  std::vector<std::uint64_t> a(8);
  std::vector<std::uint64_t> b(8);
  for (auto& w : a) w = rng();
  for (auto& w : b) w = rng();
  std::vector<PairRef> refs;
  for (std::uint32_t words = 0; words <= 8; ++words) {
    refs.push_back(PairRef{a.data(), b.data(), words});
  }
  EXPECT_EQ(AndPopcountPairsZeroCopy(refs),
            AndPopcountPairsZeroCopyBackend(refs, GetParam()));
}

TEST(ZeroCopyPairs, UnsupportedBackendThrows) {
  const std::uint64_t word = 0x123456789ABCDEF0ULL;
  const PairRef ref{&word, &word, 1};
  for (const KernelBackend backend : AllKernelBackends()) {
    if (BackendSupported(backend)) continue;
    EXPECT_THROW(
        (void)AndPopcountPairsZeroCopyBackend(std::span(&ref, 1), backend),
        std::invalid_argument)
        << ToString(backend);
  }
}

// ---------------------------------------------------------------------------
// PairArena block-flush audit: parity exactly at, just under, and just
// past the 2048-word flush granularity the matrix gather uses — the
// widths {1, 7, 8} make the boundary land mid-pair, at a pair edge,
// and at a power-of-two pair edge respectively. Every supported
// backend must agree with the per-pair reference on both the arena
// and the zero-copy formulation of the same pair list.

TEST_P(BackendParityTest, FlushBoundaryParityOnArenaAndZeroCopy) {
  const KernelBackend backend = GetParam();
  constexpr std::size_t kFlushWords = 2048;
  util::Xoshiro256 rng(20480);
  for (const std::size_t width : {std::size_t{1}, std::size_t{7},
                                  std::size_t{8}}) {
    const std::size_t at_boundary = kFlushWords / width;
    for (const std::size_t pairs :
         {at_boundary - 1, at_boundary, at_boundary + 1,
          2 * at_boundary + 1}) {
      PairArena arena;
      std::vector<std::vector<std::uint64_t>> storage;
      std::vector<PairRef> refs;
      std::uint64_t expected = 0;
      storage.reserve(2 * pairs);
      for (std::size_t p = 0; p < pairs; ++p) {
        auto a = MakeWords(width, Fill::kDense, rng());
        auto b = MakeWords(width, p % 2 == 0 ? Fill::kOnes : Fill::kSparse,
                           rng());
        expected += ReferenceAndPopcount(a, b);
        arena.Push(a.data(), b.data(), width);
        storage.push_back(std::move(a));
        storage.push_back(std::move(b));
        refs.push_back(PairRef{storage[storage.size() - 2].data(),
                               storage[storage.size() - 1].data(),
                               static_cast<std::uint32_t>(width)});
      }
      ASSERT_EQ(AndPopcountPairsBackend(arena, backend), expected)
          << ToString(backend) << " width=" << width << " pairs=" << pairs;
      ASSERT_EQ(AndPopcountPairsZeroCopyBackend(refs, backend), expected)
          << ToString(backend) << " width=" << width << " pairs=" << pairs;
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive pair policy: the decision table, the TCIM_PAIR_POLICY
// vocabulary, and the process-wide forced override.

/// Restores the forced pair policy (and TCIM_PAIR_POLICY) on scope
/// exit, mirroring BackendGuard.
class PairPolicyGuard {
 public:
  PairPolicyGuard() : saved_(ActivePairPolicy().forced) {
    const char* env = std::getenv("TCIM_PAIR_POLICY");
    if (env != nullptr) saved_env_ = env;
  }
  ~PairPolicyGuard() {
    if (saved_env_.has_value()) {
      ::setenv("TCIM_PAIR_POLICY", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("TCIM_PAIR_POLICY");
    }
    SetActivePairPolicy(saved_);
  }

 private:
  std::optional<PairPolicy> saved_;
  std::optional<std::string> saved_env_;
};

TEST(PairPolicy, NamesRoundTripAndAliases) {
  for (const PairPolicy policy : {PairPolicy::kBatched, PairPolicy::kZeroCopy,
                                  PairPolicy::kPerPair}) {
    const auto parsed = ParsePairPolicy(ToString(policy));
    ASSERT_TRUE(parsed.has_value()) << ToString(policy);
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_EQ(ParsePairPolicy("zero_copy"), PairPolicy::kZeroCopy);
  EXPECT_EQ(ParsePairPolicy("zero-copy"), PairPolicy::kZeroCopy);
  EXPECT_EQ(ParsePairPolicy("per_pair"), PairPolicy::kPerPair);
  EXPECT_EQ(ParsePairPolicy("per-pair"), PairPolicy::kPerPair);
  EXPECT_FALSE(ParsePairPolicy("auto").has_value());
  EXPECT_FALSE(ParsePairPolicy("").has_value());
  EXPECT_FALSE(ParsePairPolicy("Batched").has_value());
}

TEST(PairPolicy, DefaultDecisionTableRoutesEverythingZeroCopy) {
  // The measured schema-v4 cells: zero-copy >= batched at every
  // (width, pairs) cell, so the default config never picks the arena.
  const PairPolicyConfig cfg;
  ASSERT_FALSE(cfg.forced.has_value());
  for (const std::size_t width : {1u, 2u, 4u, 8u, 16u}) {
    for (const std::size_t pairs : {0u, 1u, 15u, 16u, 2048u}) {
      EXPECT_EQ(ChoosePairPolicy(width, pairs, cfg), PairPolicy::kZeroCopy)
          << "width=" << width << " pairs=" << pairs;
    }
  }
}

TEST(PairPolicy, RaisedMinWidthReopensTheBatchedWindow) {
  // The crossover logic stays testable for ports where a contiguous
  // stream beats gathered loads: narrow-and-long routes batched,
  // wide-or-short still routes zero-copy, and kPerPair is only ever
  // returned when forced.
  PairPolicyConfig cfg;
  cfg.zero_copy_min_width = 4;
  cfg.batched_min_pairs = 16;
  EXPECT_EQ(ChoosePairPolicy(1, 2048, cfg), PairPolicy::kBatched);
  EXPECT_EQ(ChoosePairPolicy(3, 16, cfg), PairPolicy::kBatched);
  EXPECT_EQ(ChoosePairPolicy(1, 15, cfg), PairPolicy::kZeroCopy);
  EXPECT_EQ(ChoosePairPolicy(4, 2048, cfg), PairPolicy::kZeroCopy);
  EXPECT_EQ(ChoosePairPolicy(8, 1, cfg), PairPolicy::kZeroCopy);
  for (const PairPolicy forced :
       {PairPolicy::kBatched, PairPolicy::kZeroCopy, PairPolicy::kPerPair}) {
    cfg.forced = forced;
    EXPECT_EQ(ChoosePairPolicy(1, 2048, cfg), forced);
    EXPECT_EQ(ChoosePairPolicy(8, 1, cfg), forced);
  }
}

TEST(PairPolicy, DirectPairLoopRequiresAllThreeSignals) {
  // The cold-no-reuse regime needs every signal at once: wide slices,
  // a store that spills the cache, and no slice reuse to amortize the
  // deferred flush against.
  const PairPolicyConfig cfg;
  const std::uint64_t spill = cfg.direct_min_store_bytes + 1;
  EXPECT_TRUE(ChooseDirectPairLoop(8, spill, 1.3, cfg));
  EXPECT_TRUE(ChooseDirectPairLoop(16, spill * 4, 1.0, cfg));
  // Any one signal missing keeps the gathered executor.
  EXPECT_FALSE(ChooseDirectPairLoop(7, spill, 1.3, cfg));     // narrow
  EXPECT_FALSE(ChooseDirectPairLoop(8, spill - 2, 1.3, cfg))  // cache-resident
      << "store at the threshold must stay gathered";
  EXPECT_FALSE(ChooseDirectPairLoop(8, spill, 1.7, cfg));  // hub reuse
  // Threshold edges: width and avg-valid-slices are inclusive, bytes
  // is strictly greater-than.
  EXPECT_TRUE(ChooseDirectPairLoop(cfg.direct_min_width, spill,
                                   cfg.direct_max_avg_valid_slices, cfg));
  EXPECT_FALSE(ChooseDirectPairLoop(8, cfg.direct_min_store_bytes, 1.3, cfg));
}

TEST(PairPolicy, DirectPairLoopNeverFiresWhenForced) {
  // Forcing a policy pins the gathered executor; the pass-level direct
  // rule must stand down so forced A/B runs measure what they claim.
  PairPolicyConfig cfg;
  const std::uint64_t spill = cfg.direct_min_store_bytes + 1;
  ASSERT_TRUE(ChooseDirectPairLoop(8, spill, 1.0, cfg));
  for (const PairPolicy forced :
       {PairPolicy::kBatched, PairPolicy::kZeroCopy, PairPolicy::kPerPair}) {
    cfg.forced = forced;
    EXPECT_FALSE(ChooseDirectPairLoop(8, spill, 1.0, cfg));
  }
}

TEST(PairPolicy, SetActivePairPolicyRoundTrips) {
  PairPolicyGuard guard;
  for (const PairPolicy forced :
       {PairPolicy::kBatched, PairPolicy::kZeroCopy, PairPolicy::kPerPair}) {
    SetActivePairPolicy(forced);
    const PairPolicyConfig cfg = ActivePairPolicy();
    ASSERT_TRUE(cfg.forced.has_value());
    EXPECT_EQ(*cfg.forced, forced);
    EXPECT_EQ(ChoosePairPolicy(1, 2048, cfg), forced);
  }
  SetActivePairPolicy(std::nullopt);
  EXPECT_FALSE(ActivePairPolicy().forced.has_value());
}

TEST(PairPolicy, EnvOverrideRoundTrips) {
  PairPolicyGuard guard;
  for (const char* name : {"batched", "zerocopy", "perpair"}) {
    ::setenv("TCIM_PAIR_POLICY", name, 1);
    const PairPolicyConfig cfg = RefreshPairPolicyFromEnv();
    ASSERT_TRUE(cfg.forced.has_value()) << name;
    EXPECT_EQ(*cfg.forced, *ParsePairPolicy(name)) << name;
  }
  ::setenv("TCIM_PAIR_POLICY", "auto", 1);
  EXPECT_FALSE(RefreshPairPolicyFromEnv().forced.has_value());
  ::unsetenv("TCIM_PAIR_POLICY");
  EXPECT_FALSE(RefreshPairPolicyFromEnv().forced.has_value());
  // Unknown values warn and mean auto, mirroring TCIM_KERNEL.
  ::setenv("TCIM_PAIR_POLICY", "quantum", 1);
  EXPECT_FALSE(RefreshPairPolicyFromEnv().forced.has_value());
}

// ---------------------------------------------------------------------------
// kSwar64x4 is formally the no-POPCNT fallback: the code has always
// claimed auto-dispatch never picks it over scalar-with-POPCNT; this
// pins the claim down (the schema-v1 seed measured it at 0.39–0.45x
// scalar, so selecting it would be a real end-to-end regression).

TEST(KernelBackendDispatch, AutoNeverPicksSwarWhenScalarHasPopcnt) {
  if (ScalarHasPopcntInstruction()) {
    EXPECT_NE(BestSupportedBackend(), KernelBackend::kSwar64x4);
    BackendGuard guard;
    ::unsetenv("TCIM_KERNEL");
    EXPECT_NE(RefreshActiveBackendFromEnv(), KernelBackend::kSwar64x4);
    ::setenv("TCIM_KERNEL", "auto", 1);
    EXPECT_NE(RefreshActiveBackendFromEnv(), KernelBackend::kSwar64x4);
  } else {
    // Without a hardware popcount, the SWAR unroll is exactly what
    // auto-dispatch should fall back to when no SIMD backend runs.
    bool any_simd = false;
    for (const KernelBackend backend :
         {KernelBackend::kAvx2, KernelBackend::kAvx512Vpopcnt,
          KernelBackend::kNeon}) {
      any_simd = any_simd || BackendSupported(backend);
    }
    if (!any_simd) {
      EXPECT_EQ(BestSupportedBackend(), KernelBackend::kSwar64x4);
    }
  }
}

TEST_P(BackendParityTest, SpanApiRoutesThroughForcedBackend) {
  // AndPopcount/PopcountWords at kBuiltin must agree with the scalar
  // reference under every forced backend (dispatch divergence check).
  BackendGuard guard;
  SetActiveBackend(GetParam());
  EXPECT_EQ(ActiveBackend(), GetParam());
  const auto a = MakeWords(129, Fill::kDense, 2001);
  const auto b = MakeWords(129, Fill::kDense, 2002);
  EXPECT_EQ(AndPopcount(a, b), ReferenceAndPopcount(a, b));
  EXPECT_EQ(PopcountWords(a, PopcountKind::kBuiltin),
            ReferenceAndPopcount(a, a));
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendParityTest,
    ::testing::ValuesIn(std::vector<KernelBackend>(
        AllKernelBackends().begin(), AllKernelBackends().end())),
    [](const auto& info) { return std::string(ToString(info.param)); });

// ---------------------------------------------------------------------------
// TCIM_KERNEL env override.

TEST(KernelBackendEnv, ForcedDispatchThroughEnv) {
  BackendGuard guard;
  ::setenv("TCIM_KERNEL", "scalar", 1);
  EXPECT_EQ(RefreshActiveBackendFromEnv(), KernelBackend::kScalar);
  EXPECT_EQ(ActiveBackend(), KernelBackend::kScalar);

  for (const KernelBackend backend : SupportedKernelBackends()) {
    ::setenv("TCIM_KERNEL", ToString(backend), 1);
    EXPECT_EQ(RefreshActiveBackendFromEnv(), backend);
    EXPECT_EQ(ActiveBackend(), backend);
  }
}

TEST(KernelBackendEnv, AutoAndUnsetPickBestSupported) {
  BackendGuard guard;
  ::setenv("TCIM_KERNEL", "auto", 1);
  EXPECT_EQ(RefreshActiveBackendFromEnv(), BestSupportedBackend());
  ::unsetenv("TCIM_KERNEL");
  EXPECT_EQ(RefreshActiveBackendFromEnv(), BestSupportedBackend());
}

TEST(KernelBackendEnv, UnknownValueFallsBackToAuto) {
  BackendGuard guard;
  ::setenv("TCIM_KERNEL", "quantum", 1);
  EXPECT_EQ(RefreshActiveBackendFromEnv(), BestSupportedBackend());
}

// ---------------------------------------------------------------------------
// Whole-pipeline parity: identical triangle counts on the nine Table II
// stand-ins for every supported backend (tiny scale keeps this a unit
// test; the perf harness covers the full-scale sweep).

TEST(KernelBackendPipeline, TableTwoStandInsCountIdenticallyOnAllBackends) {
  BackendGuard guard;
  for (const graph::PaperRef& ref : graph::AllPaperRefs()) {
    const graph::DatasetInstance inst =
        graph::SynthesizePaperGraph(ref.id, /*scale=*/0.02, /*seed=*/42);
    const std::uint64_t expected =
        baseline::CountTrianglesReference(inst.graph);
    const bit::SlicedMatrix matrix = core::BuildSlicedMatrix(
        inst.graph, graph::Orientation::kUpper, /*slice_bits=*/64);
    for (const KernelBackend backend : SupportedKernelBackends()) {
      SetActiveBackend(backend);
      EXPECT_EQ(core::CountTrianglesSliced(matrix, graph::Orientation::kUpper),
                expected)
          << ref.name << " backend=" << ToString(backend);
    }
  }
}

}  // namespace
}  // namespace tcim::bit
