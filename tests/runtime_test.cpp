// Multi-bank runtime tests: partitioner invariants, count-exactness of
// the bank pool against the single-accelerator path (the PR's core
// acceptance property), the matrix-direct serving read path, stats
// aggregation, latency percentiles, and seed derivation — plus a
// compact concurrency stress section (the heavy version lives in
// stress_test under the `stress` ctest label).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "baseline/cpu_tc.h"
#include "core/accelerator.h"
#include "core/bitwise_tc.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "runtime/aggregate.h"
#include "runtime/bank_pool.h"
#include "runtime/epoch_manager.h"
#include "runtime/partitioner.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;
using runtime::BankPool;
using runtime::BankPoolConfig;
using runtime::GraphPartition;
using runtime::PartitionStrategy;

core::TcimConfig SmallConfig() {
  core::TcimConfig config;
  config.array.capacity_bytes = 1ULL << 20;  // 1 MB: forces exchanges
  return config;
}

BankPoolConfig PoolConfig(std::uint32_t banks, PartitionStrategy strategy) {
  BankPoolConfig config;
  config.num_banks = banks;
  config.partition = strategy;
  config.accelerator = SmallConfig();
  return config;
}

// --- partitioner -----------------------------------------------------------

TEST(PartitionerTest, RangesCoverVertexSpaceDisjointly) {
  const Graph g = graph::Rmat(700, 5000, graph::RmatParams{}, 7);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  for (const auto strategy :
       {PartitionStrategy::kContiguous, PartitionStrategy::kDegreeBalanced}) {
    for (const std::uint32_t banks : {1u, 2u, 5u, 16u}) {
      const GraphPartition p =
          runtime::PartitionOrientedCsr(csr, banks, strategy);
      ASSERT_EQ(p.num_banks(), banks);
      std::uint64_t arcs = 0;
      graph::VertexId cursor = 0;
      for (const runtime::ShardInfo& shard : p.shards) {
        EXPECT_EQ(shard.row_begin, cursor);
        EXPECT_LE(shard.row_begin, shard.row_end);
        cursor = shard.row_end;
        arcs += shard.owned_arcs;
        EXPECT_LE(shard.cut_arcs, shard.owned_arcs);
        EXPECT_LE(shard.remote_cols, shard.needed_cols);
      }
      EXPECT_EQ(cursor, csr.num_vertices);
      EXPECT_EQ(arcs, csr.arc_count());
      EXPECT_EQ(p.stats.total_arcs, csr.arc_count());
      EXPECT_GE(p.stats.LoadImbalance(), 1.0);
      EXPECT_GE(p.stats.ColReplicationFactor(), 1.0);
    }
  }
}

TEST(PartitionerTest, DegreeBalancedBeatsContiguousOnSkewedGraph) {
  // Upper orientation on an R-MAT graph concentrates arcs in low ids:
  // the naive equal-width split is badly imbalanced there.
  const Graph g = graph::Rmat(2000, 16000, graph::RmatParams{}, 11);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  const GraphPartition naive = runtime::PartitionOrientedCsr(
      csr, 8, PartitionStrategy::kContiguous);
  const GraphPartition balanced = runtime::PartitionOrientedCsr(
      csr, 8, PartitionStrategy::kDegreeBalanced);
  EXPECT_LT(balanced.stats.LoadImbalance(), naive.stats.LoadImbalance());
  EXPECT_LT(balanced.stats.LoadImbalance(), 1.5);
}

TEST(PartitionerTest, MoreBanksThanVerticesYieldsEmptyShards) {
  const Graph g = graph::Complete(5);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  const GraphPartition p = runtime::PartitionOrientedCsr(
      csr, 9, PartitionStrategy::kDegreeBalanced);
  ASSERT_EQ(p.num_banks(), 9u);
  std::uint64_t arcs = 0;
  for (const auto& shard : p.shards) arcs += shard.owned_arcs;
  EXPECT_EQ(arcs, csr.arc_count());
}

TEST(PartitionerTest, ZeroBanksThrows) {
  const Graph g = graph::Complete(4);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  EXPECT_THROW(runtime::PartitionOrientedCsr(
                   csr, 0, PartitionStrategy::kContiguous),
               std::invalid_argument);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  EXPECT_THROW(
      runtime::PartitionMatrixRows(matrix, 0, PartitionStrategy::kContiguous),
      std::invalid_argument);
}

TEST(PartitionerTest, MatrixRowPartitionMatchesCsrPartition) {
  // PartitionMatrixRows weighs rows by their set-bit counts — exactly
  // the CSR row degrees — so the shard boundaries must reproduce
  // PartitionOrientedCsr's for every strategy and bank count (only the
  // communication stats, which need the CSR, are left zero).
  const Graph g = graph::Rmat(700, 5000, graph::RmatParams{}, 7);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  for (const auto strategy :
       {PartitionStrategy::kContiguous, PartitionStrategy::kDegreeBalanced}) {
    for (const std::uint32_t banks : {1u, 2u, 5u, 16u}) {
      const GraphPartition want =
          runtime::PartitionOrientedCsr(csr, banks, strategy);
      const GraphPartition got =
          runtime::PartitionMatrixRows(matrix, banks, strategy);
      ASSERT_EQ(got.num_banks(), banks);
      std::uint64_t arcs = 0;
      for (std::uint32_t b = 0; b < banks; ++b) {
        EXPECT_EQ(got.shards[b].row_begin, want.shards[b].row_begin);
        EXPECT_EQ(got.shards[b].row_end, want.shards[b].row_end);
        EXPECT_EQ(got.shards[b].owned_arcs, want.shards[b].owned_arcs);
        arcs += got.shards[b].owned_arcs;
      }
      EXPECT_EQ(arcs, matrix.edge_count());
    }
  }
}

// --- bank pool exactness (tentpole acceptance property) --------------------

struct FamilyCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

const FamilyCase kFamilies[] = {
    {"erdos", [](std::uint64_t s) { return graph::ErdosRenyi(400, 1800, s); }},
    {"rmat",
     [](std::uint64_t s) {
       return graph::Rmat(512, 4000, graph::RmatParams{}, s);
     }},
    {"holmekim",
     [](std::uint64_t s) { return graph::HolmeKim(350, 2600, 0.8, s); }},
    {"smallworld",
     [](std::uint64_t s) { return graph::WattsStrogatz(500, 4, 0.3, s); }},
    {"road",
     [](std::uint64_t s) {
       return graph::GeometricRoad(900, graph::RoadParams{}, s);
     }},
    {"community",
     [](std::uint64_t s) {
       return graph::CommunityCliques(600, 5000, graph::CommunityParams{}, s);
     }},
    {"complete", [](std::uint64_t) { return graph::Complete(60); }},
};

class BankCountExactnessTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, PartitionStrategy>> {};

TEST_P(BankCountExactnessTest, MultiBankEqualsSingleAcceleratorEverywhere) {
  const auto [banks, strategy] = GetParam();
  const core::TcimAccelerator single{SmallConfig()};
  const BankPool pool{PoolConfig(banks, strategy)};
  for (const FamilyCase& family : kFamilies) {
    const Graph g = family.make(/*seed=*/123);
    const core::TcimResult reference = single.Run(g);
    const runtime::ClusterResult cluster = pool.Count(g);
    EXPECT_EQ(cluster.triangles, reference.triangles) << family.name;
    // The shards partition the work, so the merged op counters must
    // reproduce the single run's totals exactly (cache fills differ —
    // each bank starts cold — but the algorithmic counts cannot).
    EXPECT_EQ(cluster.exec.edges_processed, reference.exec.edges_processed)
        << family.name;
    EXPECT_EQ(cluster.exec.valid_pairs, reference.exec.valid_pairs)
        << family.name;
    EXPECT_EQ(cluster.exec.accumulated_bitcount,
              reference.exec.accumulated_bitcount)
        << family.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BanksByStrategy, BankCountExactnessTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 7u),
                       ::testing::Values(PartitionStrategy::kContiguous,
                                         PartitionStrategy::kDegreeBalanced)));

TEST(BankPoolTest, FullSymmetricOrientationAggregatesExactly) {
  // Under kFullSymmetric a *shard's* bitcount need not divide by 6 —
  // only the cluster sum does. This is the regression test for
  // aggregating raw bitcounts instead of per-bank triangle counts.
  core::TcimConfig config = SmallConfig();
  config.orientation = Orientation::kFullSymmetric;
  BankPoolConfig pool_config;
  pool_config.num_banks = 3;
  pool_config.accelerator = config;
  const BankPool pool{pool_config};
  const Graph g = graph::HolmeKim(300, 2200, 0.7, 5);
  EXPECT_EQ(pool.Count(g).triangles, core::CountTrianglesDense(g));
}

TEST(BankPoolTest, PaperDatasetStandInsMatchSingleAccelerator) {
  // The ISSUE's registered acceptance check: >= 2 banks reproduce the
  // single-accelerator count on every PaperDataset synthetic stand-in.
  const core::TcimAccelerator single{SmallConfig()};
  const BankPool pool{
      PoolConfig(4, PartitionStrategy::kDegreeBalanced)};
  for (const graph::PaperRef& ref : graph::AllPaperRefs()) {
    const graph::DatasetInstance inst =
        graph::SynthesizePaperGraph(ref.id, /*scale=*/0.02, /*seed=*/42);
    const runtime::ClusterResult cluster = pool.Count(inst.graph);
    EXPECT_EQ(cluster.triangles, single.Run(inst.graph).triangles)
        << ref.name;
    EXPECT_GT(cluster.Speedup(), 1.0) << ref.name;
  }
}

TEST(BankPoolTest, MoreBanksThanVerticesStillExact) {
  const Graph g = graph::Complete(6);  // 20 triangles, 6 vertices
  const BankPool pool{PoolConfig(11, PartitionStrategy::kContiguous)};
  EXPECT_EQ(pool.Count(g).triangles, 20u);
}

TEST(BankPoolTest, HostCountMatchesSimulatedCountEverywhere) {
  // HostCount runs the batched host Eq. (5) kernel per shard instead
  // of the functional array; the two pipelines must agree exactly on
  // every family x bank count x strategy combination.
  for (const FamilyCase& family : kFamilies) {
    const Graph g = family.make(21);
    const std::uint64_t expected =
        core::TcimAccelerator{SmallConfig()}.Run(g).triangles;
    for (const std::uint32_t banks : {1u, 3u}) {
      for (const PartitionStrategy strategy :
           {PartitionStrategy::kContiguous,
            PartitionStrategy::kDegreeBalanced}) {
        const BankPool pool{PoolConfig(banks, strategy)};
        EXPECT_EQ(pool.HostCount(g), expected)
            << family.name << " banks=" << banks;
        EXPECT_EQ(pool.Count(g).triangles, expected)
            << family.name << " banks=" << banks;
      }
    }
  }
}

TEST(BankPoolTest, HostCountExactUnderFullSymmetricOrientation) {
  // Raw shard bitcounts must be summed before the /6 divide: a single
  // kFullSymmetric shard's bitcount need not be divisible by 6.
  core::TcimConfig config = SmallConfig();
  config.orientation = Orientation::kFullSymmetric;
  BankPoolConfig pool_config;
  pool_config.num_banks = 3;
  pool_config.accelerator = config;
  const BankPool pool{pool_config};
  const Graph g = graph::HolmeKim(300, 2200, 0.7, 5);
  EXPECT_EQ(pool.HostCount(g), core::CountTrianglesDense(g));
}

TEST(BankPoolTest, HostCountMatrixMatchesHostCountEverywhere) {
  // The serving read path counts an already-sliced matrix directly; it
  // must agree with the orient-slice-count pipelines on every family
  // and orientation.
  const BankPool pool{PoolConfig(3, PartitionStrategy::kDegreeBalanced)};
  for (const FamilyCase& family : kFamilies) {
    const Graph g = family.make(33);
    const std::uint64_t expected = baseline::CountTrianglesReference(g);
    for (const Orientation orientation :
         {Orientation::kUpper, Orientation::kDegree,
          Orientation::kFullSymmetric}) {
      const bit::SlicedMatrix matrix =
          core::BuildSlicedMatrix(g, orientation, 64);
      EXPECT_EQ(pool.HostCountMatrix(matrix, orientation), expected)
          << family.name << " " << graph::ToString(orientation);
    }
  }
}

TEST(BankPoolTest, FewerThreadsThanBanksStillExact) {
  BankPoolConfig config = PoolConfig(6, PartitionStrategy::kDegreeBalanced);
  config.num_threads = 2;
  const BankPool pool{config};
  const Graph g = graph::HolmeKim(400, 3000, 0.6, 9);
  EXPECT_EQ(pool.Count(g).triangles,
            core::TcimAccelerator{SmallConfig()}.Run(g).triangles);
}

TEST(BankPoolTest, DerivedSeedsAreDistinctAcrossBanks) {
  std::set<std::uint64_t> seeds;
  for (std::uint32_t b = 0; b < 64; ++b) {
    seeds.insert(runtime::DeriveBankSeed(1, b));
  }
  EXPECT_EQ(seeds.size(), 64u);
  EXPECT_EQ(runtime::DeriveBankSeed(1, 0), 1u);  // bank 0 keeps the base
  EXPECT_NE(runtime::DeriveBankSeed(1, 3), runtime::DeriveBankSeed(2, 3));
}

TEST(BankPoolTest, BanksCarryDerivedControllerSeeds) {
  BankPoolConfig config = PoolConfig(4, PartitionStrategy::kContiguous);
  config.accelerator.controller.rng_seed = 77;
  const BankPool pool{config};
  std::set<std::uint64_t> seeds;
  for (std::uint32_t b = 0; b < pool.num_banks(); ++b) {
    seeds.insert(pool.bank(b).config().controller.rng_seed);
  }
  EXPECT_EQ(seeds.size(), 4u);
  EXPECT_EQ(pool.bank(0).config().controller.rng_seed, 77u);
}

TEST(BankPoolTest, RandomReplacementStaysExactWithDerivedSeeds) {
  BankPoolConfig config = PoolConfig(3, PartitionStrategy::kDegreeBalanced);
  config.accelerator.controller.policy = arch::ReplacementPolicy::kRandom;
  const BankPool pool{config};
  const Graph g = graph::Rmat(600, 5000, graph::RmatParams{}, 3);
  core::TcimConfig single_config = SmallConfig();
  single_config.controller.policy = arch::ReplacementPolicy::kRandom;
  EXPECT_EQ(pool.Count(g).triangles,
            core::TcimAccelerator{single_config}.Run(g).triangles);
}

// --- controller range plumbing ---------------------------------------------

TEST(RunRowsTest, DisjointRangesPartitionTheBitcount) {
  const Graph g = graph::HolmeKim(250, 1800, 0.8, 21);
  const core::TcimAccelerator accel{SmallConfig()};
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  const std::uint32_t n = matrix.num_vertices();
  const core::TcimResult full =
      accel.RunOnMatrix(matrix, Orientation::kUpper);
  const core::TcimResult lo =
      accel.RunOnMatrixRows(matrix, Orientation::kUpper, 0, n / 3);
  const core::TcimResult hi =
      accel.RunOnMatrixRows(matrix, Orientation::kUpper, n / 3, n);
  EXPECT_EQ(lo.exec.accumulated_bitcount + hi.exec.accumulated_bitcount,
            full.exec.accumulated_bitcount);
  EXPECT_EQ(lo.exec.valid_pairs + hi.exec.valid_pairs,
            full.exec.valid_pairs);
}

TEST(RunRowsTest, InvalidRangeThrows) {
  const Graph g = graph::Complete(10);
  const core::TcimAccelerator accel{SmallConfig()};
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  EXPECT_THROW(
      (void)accel.RunOnMatrixRows(matrix, Orientation::kUpper, 5, 3),
      std::out_of_range);
  EXPECT_THROW(
      (void)accel.RunOnMatrixRows(matrix, Orientation::kUpper, 0, 11),
      std::out_of_range);
}

// --- aggregation -----------------------------------------------------------

TEST(AggregateTest, MergeExecStatsSumsCounters) {
  arch::ExecStats a;
  a.edges_processed = 10;
  a.valid_pairs = 4;
  a.row_slice_writes = 3;
  a.col_slice_writes = 2;
  a.accumulated_bitcount = 7;
  a.cache.lookups = 2;
  a.cache.hits = 1;
  a.per_subarray_ands = {1, 2};
  arch::ExecStats b;
  b.edges_processed = 5;
  b.valid_pairs = 6;
  b.accumulated_bitcount = 8;
  b.cache.lookups = 3;
  b.per_subarray_ands = {4, 0, 9};
  const std::vector<arch::ExecStats> shards = {a, b};
  const arch::ExecStats merged = runtime::MergeExecStats(shards);
  EXPECT_EQ(merged.edges_processed, 15u);
  EXPECT_EQ(merged.valid_pairs, 10u);
  EXPECT_EQ(merged.row_slice_writes, 3u);
  EXPECT_EQ(merged.col_slice_writes, 2u);
  EXPECT_EQ(merged.accumulated_bitcount, 15u);
  EXPECT_EQ(merged.cache.lookups, 5u);
  EXPECT_EQ(merged.cache.hits, 1u);
  ASSERT_EQ(merged.per_subarray_ands.size(), 3u);
  EXPECT_EQ(merged.per_subarray_ands[0], 5u);
  EXPECT_EQ(merged.per_subarray_ands[1], 2u);
  EXPECT_EQ(merged.per_subarray_ands[2], 9u);
}

TEST(AggregateTest, LatencyViewsAreSumAndMax) {
  GraphPartition partition;
  partition.shards.resize(2);
  std::vector<core::TcimResult> banks(2);
  banks[0].perf.serial_seconds = 3.0;
  banks[0].perf.parallel_seconds = 1.0;
  banks[0].perf.energy_joules = 0.5;
  banks[1].perf.serial_seconds = 5.0;
  banks[1].perf.parallel_seconds = 2.0;
  banks[1].perf.energy_joules = 0.25;
  core::PerfModelParams params;
  params.host_platform_power = 2.0;
  const runtime::ClusterResult cluster = runtime::AggregateClusterResult(
      std::move(partition), Orientation::kUpper, std::move(banks), {},
      params);
  EXPECT_DOUBLE_EQ(cluster.serial_sum_seconds, 8.0);
  EXPECT_DOUBLE_EQ(cluster.critical_path_seconds, 5.0);
  EXPECT_DOUBLE_EQ(cluster.parallel_critical_path_seconds, 2.0);
  EXPECT_DOUBLE_EQ(cluster.energy_joules, 0.75);
  EXPECT_DOUBLE_EQ(cluster.platform_joules, 0.75 + 2.0 * 5.0);
  EXPECT_DOUBLE_EQ(cluster.Speedup(), 8.0 / 5.0);
}

TEST(AggregateTest, LatencyRecorderNearestRankPercentiles) {
  runtime::LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.Percentile(99.0), 0.0);
  // Record 1ms..10ms out of order. count/mean/max stay exact (the
  // backing obs::Histogram keeps exact sum/min/max atomics); the
  // nearest-rank percentiles come from the log2-bucketed histogram, so
  // they match the exact sample to the bucket's relative width (<= 1%
  // at 64 sub-buckets per octave — parity pinned in tests/obs_test).
  for (const double ms : {4., 1., 9., 2., 7., 5., 10., 3., 8., 6.}) {
    recorder.Record(ms / 1e3);
  }
  EXPECT_EQ(recorder.count(), 10u);
  EXPECT_DOUBLE_EQ(recorder.mean(), 5.5e-3);
  EXPECT_DOUBLE_EQ(recorder.max(), 10e-3);
  EXPECT_NEAR(recorder.Percentile(50.0), 5e-3, 5e-3 * 0.01);
  EXPECT_NEAR(recorder.Percentile(99.0), 10e-3, 10e-3 * 0.01);
  EXPECT_NEAR(recorder.Percentile(0.0), 1e-3, 1e-3 * 0.01);
  EXPECT_NEAR(recorder.Percentile(100.0), 10e-3, 10e-3 * 0.01);
  EXPECT_NE(recorder.Summary().find("n=10"), std::string::npos);
  EXPECT_NE(recorder.Summary().find("p99="), std::string::npos);
}

// --- concurrency stress (compact; heavy runs live in stress_test) ----------

TEST(RuntimeStress, ReadersCountConsistentEpochsWhileWriterStreams) {
  runtime::StreamSession session(graph::ErdosRenyi(150, 600, 13));
  constexpr int kReaders = 2;
  constexpr int kBatches = 12;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      do {
        const runtime::EpochManager::Pin pin = session.PinEpoch();
        const std::uint64_t counted =
            pin->matrix->AndPopcountAllEdges() /
            graph::CountMultiplier(pin->orientation);
        if (counted != pin->triangles) failures.fetch_add(1);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  util::Xoshiro256 rng(3);
  for (int b = 0; b < kBatches; ++b) {
    stream::EdgeDelta delta;
    for (int k = 0; k < 6; ++k) {
      const auto u = static_cast<graph::VertexId>(rng() % 155);
      const auto v = static_cast<graph::VertexId>(rng() % 155);
      if (rng() % 3 == 0) {
        delta.Erase(u, v);
      } else {
        delta.Insert(u, v);
      }
    }
    (void)session.Apply(delta);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(session.epochs().live_epochs(), 1u);
  EXPECT_EQ(baseline::CountTrianglesReference(session.Snapshot()),
            session.triangles());
}

}  // namespace
}  // namespace tcim
