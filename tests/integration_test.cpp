// Cross-module integration tests: the full device -> array -> arch ->
// core pipeline against the CPU baselines, on downscaled instances of
// every paper dataset and on configuration grids.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "baseline/cpu_tc.h"
#include "core/accelerator.h"
#include "core/bitwise_tc.h"
#include "core/edge_support.h"
#include "core/truss.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;

/// Accelerator with a small array (keeps tests fast and forces real
/// cache behaviour).
core::TcimResult RunTcim(const Graph& g, std::uint64_t capacity_bytes,
                         Orientation o = Orientation::kUpper) {
  core::TcimConfig c;
  c.orientation = o;
  c.array.capacity_bytes = capacity_bytes;
  return core::TcimAccelerator{c}.Run(g);
}

class PaperDatasetTest
    : public ::testing::TestWithParam<graph::PaperDataset> {};

TEST_P(PaperDatasetTest, TcimMatchesBaselineOnScaledInstance) {
  // Tiny scale: the structural generators stay in regime while the
  // functional PIM simulation stays fast.
  const graph::DatasetInstance inst =
      SynthesizePaperGraph(GetParam(), 0.01, 42);
  const std::uint64_t expected =
      baseline::CountTrianglesReference(inst.graph);
  const core::TcimResult r = RunTcim(inst.graph, 1ULL << 20);
  EXPECT_EQ(r.triangles, expected) << inst.source;
  // The whole point of slicing: far fewer AND ops than the
  // slicing-oblivious total.
  EXPECT_LT(r.slices.ValidPairFraction(), 0.5) << inst.source;
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, PaperDatasetTest,
    ::testing::Values(
        graph::PaperDataset::kEgoFacebook, graph::PaperDataset::kEmailEnron,
        graph::PaperDataset::kComAmazon, graph::PaperDataset::kComDblp,
        graph::PaperDataset::kComYoutube, graph::PaperDataset::kRoadNetPa,
        graph::PaperDataset::kRoadNetTx, graph::PaperDataset::kRoadNetCa,
        graph::PaperDataset::kComLiveJournal),
    [](const auto& info) {
      std::string name = graph::GetPaperRef(info.param).name;
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(Integration, ConfigurationGridAgreesEverywhere) {
  const Graph g = graph::HolmeKim(1200, 7200, 0.65, 9);
  const std::uint64_t expected = baseline::CountTrianglesReference(g);
  for (const auto o : {Orientation::kUpper, Orientation::kDegree}) {
    for (const std::uint32_t slice_bits : {32u, 64u}) {
      for (const auto policy :
           {arch::ReplacementPolicy::kLru, arch::ReplacementPolicy::kFifo,
            arch::ReplacementPolicy::kRandom}) {
        for (const std::uint64_t capacity :
             {256ULL << 10, 4ULL << 20}) {
          core::TcimConfig c;
          c.orientation = o;
          c.slice_bits = slice_bits;
          c.controller.policy = policy;
          c.array.capacity_bytes = capacity;
          const core::TcimResult r = core::TcimAccelerator{c}.Run(g);
          ASSERT_EQ(r.triangles, expected)
              << graph::ToString(o) << "/" << slice_bits << "/"
              << arch::ToString(policy) << "/" << capacity;
        }
      }
    }
  }
}

TEST(Integration, SnapFileToTcimPipeline) {
  // Graph -> SNAP text -> reload -> TCIM; counts survive the full trip.
  const Graph original = graph::Rmat(2048, 16000, graph::RmatParams{}, 10);
  const std::string path = ::testing::TempDir() + "/tcim_integration.txt";
  {
    std::ofstream out(path);
    WriteSnapEdgeList(original, out);
  }
  const Graph reloaded = graph::ReadSnapEdgeListFile(path);
  const std::uint64_t expected =
      baseline::CountTrianglesReference(original);
  EXPECT_EQ(baseline::CountTrianglesReference(reloaded), expected);
  EXPECT_EQ(RunTcim(reloaded, 2ULL << 20).triangles, expected);
  std::remove(path.c_str());
}

TEST(Integration, TransitivityPipelineOnSocialGraph) {
  // The intro's motivating metric: clustering from a TC run.
  const Graph g = graph::HolmeKim(3000, 18000, 0.8, 11);
  const core::TcimResult r = RunTcim(g, 4ULL << 20);
  const double transitivity = graph::Transitivity(g, r.triangles);
  EXPECT_GT(transitivity, 0.05);
  EXPECT_LE(transitivity, 1.0);
}

TEST(Integration, WriteSavingsTrackHitRate) {
  const Graph g = graph::HolmeKim(2500, 20000, 0.6, 12);
  const core::TcimResult r = RunTcim(g, 1ULL << 20);
  // Without reuse every valid pair would write its column slice:
  // savings = hits / lookups by definition, and must be materialized
  // as fewer column writes.
  EXPECT_EQ(r.exec.col_slice_writes + r.exec.cache.hits,
            r.exec.valid_pairs);
  EXPECT_DOUBLE_EQ(r.exec.WriteSavings(), r.exec.cache.HitRate());
}

TEST(Integration, DegreeOrientationReducesWorkOnSkewedGraphs) {
  const Graph g = graph::Rmat(8192, 80000, graph::RmatParams{}, 13);
  const core::TcimResult upper = RunTcim(g, 4ULL << 20,
                                         Orientation::kUpper);
  const core::TcimResult degree = RunTcim(g, 4ULL << 20,
                                          Orientation::kDegree);
  EXPECT_EQ(upper.triangles, degree.triangles);
  // Degree orientation bounds out-degrees, shrinking row slice counts
  // and the pair workload on heavy-tailed graphs.
  EXPECT_LT(degree.exec.valid_pairs, upper.exec.valid_pairs);
}

TEST(Integration, FullSymmetricCostsSixTimesThePairs) {
  const Graph g = graph::ErdosRenyi(1500, 9000, 14);
  const core::TcimResult upper = RunTcim(g, 4ULL << 20,
                                         Orientation::kUpper);
  const core::TcimResult full = RunTcim(g, 4ULL << 20,
                                        Orientation::kFullSymmetric);
  EXPECT_EQ(upper.triangles, full.triangles);
  // Full-symmetric processes both arc directions and pairs both
  // triangle "sides": strictly more work (roughly 4-6x pairs).
  EXPECT_GT(full.exec.valid_pairs, 3 * upper.exec.valid_pairs);
}

TEST(Integration, EnergyDominatedByWritesOnColdWorkloads) {
  // STT-MRAM writes are ~20x the AND energy; on a low-reuse workload
  // write energy must dominate the breakdown (the motivation for the
  // paper's reuse strategy).
  const Graph g = graph::GeometricRoad(20000, graph::RoadParams{}, 15);
  const core::TcimResult r = RunTcim(g, 16ULL << 20);
  const auto& e = r.perf.energy;
  EXPECT_GT(e.row_write_j + e.col_write_j, e.and_j);
}

TEST(Integration, TrussPipelineOnScaledDataset) {
  const graph::DatasetInstance inst = SynthesizePaperGraph(
      graph::PaperDataset::kComDblp, 0.02, 42);
  core::TcimConfig c;
  c.array.capacity_bytes = 2ULL << 20;
  const core::TcimAccelerator accel{c};
  core::TcimResult run;
  const core::EdgeSupports supports =
      core::ComputeEdgeSupportsTcim(inst.graph, accel, &run);
  // Triangle identity across three independent routes.
  const std::uint64_t expected =
      baseline::CountTrianglesReference(inst.graph);
  EXPECT_EQ(supports.TriangleCount(), expected);
  EXPECT_EQ(run.triangles, expected);
  // Peel and cross-check against the CPU support path.
  const core::TrussResult a =
      core::DecomposeTruss(inst.graph, supports.support);
  const core::TrussResult b = core::DecomposeTrussCpu(inst.graph);
  EXPECT_EQ(a.trussness, b.trussness);
  EXPECT_GE(a.max_truss, 3u);  // a clustered graph has deep trusses
}

TEST(Integration, IsolatedVerticesAndDisconnectedComponents) {
  // Two far-apart cliques plus isolated vertices; slicing must not
  // trip on empty rows/columns.
  graph::GraphBuilder b(1000);
  for (graph::VertexId u = 0; u < 6; ++u) {
    for (graph::VertexId v = u + 1; v < 6; ++v) b.AddEdge(u, v);
  }
  for (graph::VertexId u = 900; u < 907; ++u) {
    for (graph::VertexId v = u + 1; v < 907; ++v) b.AddEdge(u, v);
  }
  const Graph g = std::move(b).Build();
  const std::uint64_t expected = 20 + 35;  // C(6,3) + C(7,3)
  EXPECT_EQ(baseline::CountTrianglesReference(g), expected);
  EXPECT_EQ(RunTcim(g, 1ULL << 20).triangles, expected);
}

TEST(Integration, EdgelessGraphRunsCleanly) {
  const core::TcimResult r = RunTcim(graph::GraphBuilder(100).Build(),
                                     1ULL << 20);
  EXPECT_EQ(r.triangles, 0u);
  EXPECT_EQ(r.exec.valid_pairs, 0u);
  EXPECT_EQ(r.exec.TotalWrites(), 0u);
}

TEST(Integration, CrlfEdgeListParses) {
  std::istringstream in("# comment\r\n0 1\r\n1 2\r\n0 2\r\n");
  const Graph g = graph::ReadSnapEdgeList(in);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(baseline::CountTrianglesReference(g), 1u);
}

TEST(Integration, HostRuntimeIsRecorded) {
  const Graph g = graph::ErdosRenyi(500, 3000, 16);
  const core::TcimResult r = RunTcim(g, 1ULL << 20);
  EXPECT_GT(r.host_seconds, 0.0);
  EXPECT_LT(r.host_seconds, 60.0);
}

}  // namespace
}  // namespace tcim
