// Tests for the functional PIM layer: bit counter fidelity, array
// addressing, WRITE/READ/AND semantics and the physical placement
// constraints of multi-row activation.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "pim/bit_counter.h"
#include "pim/computational_array.h"
#include "util/rng.h"

namespace tcim::pim {
namespace {

nvsim::ArrayConfig SmallConfig() {
  nvsim::ArrayConfig c;
  c.capacity_bytes = 1ULL << 20;  // 1 MB: 32 subarrays of 512x512
  return c;
}

TEST(BitCounter, MatchesPopcountExhaustively16Bit) {
  BitCounter counter;
  for (std::uint64_t v = 0; v < 65536; ++v) {
    ASSERT_EQ(counter.Feed(v), static_cast<std::uint32_t>(std::popcount(v)));
  }
}

TEST(BitCounter, MatchesPopcountOnRandom64Bit) {
  BitCounter counter;
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng();
    ASSERT_EQ(counter.Feed(v), static_cast<std::uint32_t>(std::popcount(v)));
  }
}

TEST(BitCounter, AccumulatesTotals) {
  BitCounter counter;
  counter.Feed(0b1011);          // 3
  counter.Feed(0xFF);            // 8
  const std::vector<std::uint64_t> slice = {0b1, 0b11};
  counter.FeedWords(slice);      // 1 + 2
  EXPECT_EQ(counter.total(), 14u);
  EXPECT_EQ(counter.words_processed(), 4u);
}

TEST(BitCounter, EnergyAndLatencyScaleWithWords) {
  BitCounter counter;
  for (int i = 0; i < 100; ++i) counter.Feed(~0ULL);
  EXPECT_DOUBLE_EQ(counter.DynamicEnergy(),
                   100 * counter.params().energy_per_word);
  EXPECT_DOUBLE_EQ(counter.SerialLatency(),
                   100 * counter.params().latency_per_word);
}

TEST(BitCounter, ResetClearsState) {
  BitCounter counter;
  counter.Feed(0xFFFF);
  counter.Reset();
  EXPECT_EQ(counter.total(), 0u);
  EXPECT_EQ(counter.words_processed(), 0u);
}

TEST(BitCounter, RejectsNonByteWidths) {
  BitCounterParams p;
  p.word_bits = 60;  // not a multiple of the 8-bit LUT granularity
  EXPECT_THROW(BitCounter{p}, std::invalid_argument);
}

TEST(ComputationalArray, GeometryFromConfig) {
  const ComputationalArray array(SmallConfig());
  EXPECT_EQ(array.num_subarrays(), 32u);
  EXPECT_EQ(array.slices_per_row(), 8u);
  EXPECT_EQ(array.total_slots(), 32ULL * 512 * 8);
  EXPECT_EQ(array.words_per_slice(), 1u);
}

TEST(ComputationalArray, AddrRoundTrip) {
  const ComputationalArray array(SmallConfig());
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t flat = rng.UniformBelow(array.total_slots());
    const SliceAddr addr = array.AddrOf(flat);
    EXPECT_EQ(array.FlatIndex(addr), flat);
  }
  EXPECT_THROW((void)array.AddrOf(array.total_slots()), std::out_of_range);
}

TEST(ComputationalArray, WriteThenReadRoundTrip) {
  ComputationalArray array(SmallConfig());
  const SliceAddr addr{.subarray = 3, .row = 100, .col_group = 5};
  const std::vector<std::uint64_t> data = {0xDEADBEEFCAFEF00DULL};
  array.WriteSlice(addr, data);
  const auto read = array.ReadSlice(addr);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_EQ(read[0], data[0]);
  EXPECT_EQ(array.counts().writes, 1u);
  EXPECT_EQ(array.counts().reads, 1u);
}

TEST(ComputationalArray, FreshSlotsReadZero) {
  ComputationalArray array(SmallConfig());
  const auto read = array.ReadSlice({.subarray = 0, .row = 0, .col_group = 0});
  EXPECT_EQ(read[0], 0u);
}

TEST(ComputationalArray, AndPopcountComputesIntersection) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 1, .row = 0, .col_group = 2};
  const SliceAddr b{.subarray = 1, .row = 7, .col_group = 2};
  array.WriteSlice(a, std::vector<std::uint64_t>{0b110110ULL});
  array.WriteSlice(b, std::vector<std::uint64_t>{0b011100ULL});
  EXPECT_EQ(array.AndPopcount(a, b), 2u);  // bits 2 and 4
  EXPECT_EQ(array.accumulated_count(), 2u);
  EXPECT_EQ(array.counts().ands, 1u);
  EXPECT_EQ(array.counts().bitcount_words, 1u);
}

TEST(ComputationalArray, AndSlicesReturnsRawResult) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 0, .row = 1, .col_group = 0};
  const SliceAddr b{.subarray = 0, .row = 2, .col_group = 0};
  array.WriteSlice(a, std::vector<std::uint64_t>{0xF0F0ULL});
  array.WriteSlice(b, std::vector<std::uint64_t>{0xFF00ULL});
  const auto result = array.AndSlices(a, b);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0], 0xF000ULL);
}

TEST(ComputationalArray, AndMatchesSoftwareOnRandomData) {
  ComputationalArray array(SmallConfig());
  util::Xoshiro256 rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    const auto sub = static_cast<std::uint32_t>(rng.UniformBelow(32));
    const auto col = static_cast<std::uint32_t>(rng.UniformBelow(8));
    const SliceAddr a{.subarray = sub, .row = 10, .col_group = col};
    const SliceAddr b{.subarray = sub, .row = 20, .col_group = col};
    const std::uint64_t wa = rng();
    const std::uint64_t wb = rng();
    array.WriteSlice(a, std::vector<std::uint64_t>{wa});
    array.WriteSlice(b, std::vector<std::uint64_t>{wb});
    ASSERT_EQ(array.AndPopcount(a, b),
              static_cast<std::uint64_t>(std::popcount(wa & wb)));
  }
}

TEST(ComputationalArray, AndRejectsCrossSubarray) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  const SliceAddr b{.subarray = 1, .row = 1, .col_group = 0};
  EXPECT_THROW((void)array.AndPopcount(a, b), std::invalid_argument);
}

TEST(ComputationalArray, AndRejectsMisalignedColumns) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  const SliceAddr b{.subarray = 0, .row = 1, .col_group = 1};
  EXPECT_THROW((void)array.AndPopcount(a, b), std::invalid_argument);
}

TEST(ComputationalArray, AndRejectsSameRow) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 0, .row = 5, .col_group = 0};
  EXPECT_THROW((void)array.AndPopcount(a, a), std::invalid_argument);
}

TEST(ComputationalArray, WriteRejectsWrongWordCount) {
  ComputationalArray array(SmallConfig());
  const SliceAddr addr{.subarray = 0, .row = 0, .col_group = 0};
  EXPECT_THROW(
      array.WriteSlice(addr, std::vector<std::uint64_t>{1, 2}),
      std::invalid_argument);
}

TEST(ComputationalArray, WriteRejectsDataBeyondAccessWidth) {
  nvsim::ArrayConfig c = SmallConfig();
  c.access_width_bits = 32;
  ComputationalArray array(c);
  const SliceAddr addr{.subarray = 0, .row = 0, .col_group = 0};
  EXPECT_THROW(
      array.WriteSlice(addr, std::vector<std::uint64_t>{1ULL << 40}),
      std::invalid_argument);
  EXPECT_NO_THROW(
      array.WriteSlice(addr, std::vector<std::uint64_t>{0xFFFFFFFFULL}));
}

TEST(ComputationalArray, OutOfRangeAddressesThrow) {
  ComputationalArray array(SmallConfig());
  EXPECT_THROW(
      (void)array.ReadSlice({.subarray = 32, .row = 0, .col_group = 0}),
      std::out_of_range);
  EXPECT_THROW(
      (void)array.ReadSlice({.subarray = 0, .row = 512, .col_group = 0}),
      std::out_of_range);
  EXPECT_THROW(
      (void)array.ReadSlice({.subarray = 0, .row = 0, .col_group = 8}),
      std::out_of_range);
}

TEST(ComputationalArray, MultiWordSlices) {
  nvsim::ArrayConfig c = SmallConfig();
  c.access_width_bits = 128;
  c.subarray_cols = 512;
  ComputationalArray array(c);
  EXPECT_EQ(array.words_per_slice(), 2u);
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  const SliceAddr b{.subarray = 0, .row = 1, .col_group = 0};
  array.WriteSlice(a, std::vector<std::uint64_t>{~0ULL, 0xF0ULL});
  array.WriteSlice(b, std::vector<std::uint64_t>{0xFFULL, 0xFFULL});
  EXPECT_EQ(array.AndPopcount(a, b), 8u + 4u);
}

TEST(ComputationalArray, TraceRecordsCommandSequence) {
  ComputationalArray array(SmallConfig());
  array.EnableTrace(16);
  const SliceAddr a{.subarray = 2, .row = 0, .col_group = 1};
  const SliceAddr b{.subarray = 2, .row = 9, .col_group = 1};
  array.WriteSlice(a, std::vector<std::uint64_t>{1ULL});
  array.WriteSlice(b, std::vector<std::uint64_t>{3ULL});
  (void)array.AndPopcount(a, b);
  (void)array.ReadSlice(b);
  const auto& trace = array.trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], (TraceEntry{TraceEntry::Op::kWrite, a, {}}));
  EXPECT_EQ(trace[1], (TraceEntry{TraceEntry::Op::kWrite, b, {}}));
  EXPECT_EQ(trace[2], (TraceEntry{TraceEntry::Op::kAnd, a, b}));
  EXPECT_EQ(trace[3], (TraceEntry{TraceEntry::Op::kRead, b, {}}));
  EXPECT_FALSE(array.trace_truncated());
}

TEST(ComputationalArray, TraceTruncatesAtCapacity) {
  ComputationalArray array(SmallConfig());
  array.EnableTrace(2);
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  for (int i = 0; i < 5; ++i) {
    array.WriteSlice(a, std::vector<std::uint64_t>{7ULL});
  }
  EXPECT_EQ(array.trace().size(), 2u);
  EXPECT_TRUE(array.trace_truncated());
  // Commands beyond the trace cap still executed.
  EXPECT_EQ(array.counts().writes, 5u);
}

TEST(ComputationalArray, DisableTraceStopsRecording) {
  ComputationalArray array(SmallConfig());
  array.EnableTrace(16);
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  array.WriteSlice(a, std::vector<std::uint64_t>{1ULL});
  array.DisableTrace();
  array.WriteSlice(a, std::vector<std::uint64_t>{2ULL});
  EXPECT_EQ(array.trace().size(), 1u);
}

TEST(ComputationalArray, ResetCountersClearsAccounting) {
  ComputationalArray array(SmallConfig());
  const SliceAddr a{.subarray = 0, .row = 0, .col_group = 0};
  const SliceAddr b{.subarray = 0, .row = 1, .col_group = 0};
  array.WriteSlice(a, std::vector<std::uint64_t>{3ULL});
  array.WriteSlice(b, std::vector<std::uint64_t>{1ULL});
  (void)array.AndPopcount(a, b);
  array.ResetCounters();
  EXPECT_EQ(array.counts().writes, 0u);
  EXPECT_EQ(array.counts().ands, 0u);
  EXPECT_EQ(array.accumulated_count(), 0u);
  // Contents survive a counter reset (it is accounting-only).
  EXPECT_EQ(array.ReadSlice(a)[0], 3ULL);
}

}  // namespace
}  // namespace tcim::pim
