// Tests for popcount strategies and BitVector.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "bitmatrix/bitvector.h"
#include "bitmatrix/popcount.h"
#include "util/rng.h"

namespace tcim::bit {
namespace {

class PopcountKindTest : public ::testing::TestWithParam<PopcountKind> {};

TEST_P(PopcountKindTest, MatchesStdPopcountOnEdgeValues) {
  const PopcountKind kind = GetParam();
  for (const std::uint64_t v :
       {0ULL, 1ULL, 2ULL, 0xFFULL, 0xFF00ULL, 0x8000000000000000ULL,
        0xFFFFFFFFFFFFFFFFULL, 0xAAAAAAAAAAAAAAAAULL,
        0x5555555555555555ULL, 0x0123456789ABCDEFULL}) {
    EXPECT_EQ(Popcount(v, kind), std::popcount(v)) << v;
  }
}

TEST_P(PopcountKindTest, MatchesStdPopcountOnRandomValues) {
  const PopcountKind kind = GetParam();
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = rng();
    ASSERT_EQ(Popcount(v, kind), std::popcount(v)) << v;
  }
}

TEST_P(PopcountKindTest, Exhaustive16BitInputs) {
  const PopcountKind kind = GetParam();
  for (std::uint64_t v = 0; v < 65536; ++v) {
    ASSERT_EQ(Popcount(v, kind), std::popcount(v)) << v;
  }
}

TEST_P(PopcountKindTest, WordSpanSumsPerWordCounts) {
  const PopcountKind kind = GetParam();
  const std::vector<std::uint64_t> words = {0xF0F0ULL, 0x1ULL, 0ULL,
                                            ~0ULL};
  EXPECT_EQ(PopcountWords(words, kind), 8u + 1u + 0u + 64u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PopcountKindTest,
                         ::testing::Values(PopcountKind::kBuiltin,
                                           PopcountKind::kSwar,
                                           PopcountKind::kLut8,
                                           PopcountKind::kLut16),
                         [](const auto& info) {
                           switch (info.param) {
                             case PopcountKind::kBuiltin: return "builtin";
                             case PopcountKind::kSwar: return "swar";
                             case PopcountKind::kLut8: return "lut8";
                             case PopcountKind::kLut16: return "lut16";
                           }
                           return "unknown";
                         });

TEST(AndPopcount, FusedKernelMatchesSeparateOps) {
  util::Xoshiro256 rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> a(8);
    std::vector<std::uint64_t> b(8);
    for (auto& w : a) w = rng();
    for (auto& w : b) w = rng();
    std::uint64_t expected = 0;
    for (int i = 0; i < 8; ++i) {
      expected += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
    }
    EXPECT_EQ(AndPopcount(a, b), expected);
    EXPECT_EQ(AndPopcount(a, b, PopcountKind::kLut8), expected);
  }
}

TEST(AndPopcount, DisjointVectorsGiveZero) {
  const std::vector<std::uint64_t> a = {0xF0F0F0F0F0F0F0F0ULL};
  const std::vector<std::uint64_t> b = {0x0F0F0F0F0F0F0F0FULL};
  EXPECT_EQ(AndPopcount(a, b), 0u);
}

TEST(BitVector, StartsEmpty) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.Count(), 0u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(v.Get(i));
  }
}

TEST(BitVector, SetClearAssign) {
  BitVector v(70);
  v.Set(0);
  v.Set(63);
  v.Set(64);
  v.Set(69);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(69));
  EXPECT_EQ(v.Count(), 4u);
  v.Clear(63);
  EXPECT_FALSE(v.Get(63));
  EXPECT_EQ(v.Count(), 3u);
  v.Assign(1, true);
  v.Assign(0, false);
  EXPECT_TRUE(v.Get(1));
  EXPECT_FALSE(v.Get(0));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector v(10);
  EXPECT_THROW((void)v.Get(10), std::out_of_range);
  EXPECT_THROW(v.Set(10), std::out_of_range);
  EXPECT_THROW(v.Clear(10), std::out_of_range);
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_THROW(a.AndWith(b), std::invalid_argument);
  EXPECT_THROW(a.OrWith(b), std::invalid_argument);
  EXPECT_THROW((void)a.AndCount(b), std::invalid_argument);
}

TEST(BitVector, LogicalOps) {
  BitVector a(130);
  BitVector b(130);
  a.Set(0);
  a.Set(65);
  a.Set(129);
  b.Set(65);
  b.Set(100);

  BitVector and_result = a;
  and_result.AndWith(b);
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Get(65));

  BitVector or_result = a;
  or_result.OrWith(b);
  EXPECT_EQ(or_result.Count(), 4u);

  BitVector xor_result = a;
  xor_result.XorWith(b);
  EXPECT_EQ(xor_result.Count(), 3u);
  EXPECT_FALSE(xor_result.Get(65));
}

TEST(BitVector, AndCountWithoutMaterializing) {
  util::Xoshiro256 rng(5);
  BitVector a(500);
  BitVector b(500);
  for (int i = 0; i < 200; ++i) {
    a.Set(rng.UniformBelow(500));
    b.Set(rng.UniformBelow(500));
  }
  BitVector c = a;
  c.AndWith(b);
  EXPECT_EQ(a.AndCount(b), c.Count());
}

TEST(BitVector, ForEachSetBitVisitsInOrder) {
  BitVector v(200);
  const std::vector<std::uint64_t> positions = {0, 1, 63, 64, 127, 128, 199};
  for (const auto p : positions) v.Set(p);
  std::vector<std::uint64_t> visited;
  v.ForEachSetBit([&](std::uint64_t p) { visited.push_back(p); });
  EXPECT_EQ(visited, positions);
}

TEST(BitVector, ResetClearsAll) {
  BitVector v(100);
  v.Set(5);
  v.Set(99);
  v.Reset();
  EXPECT_EQ(v.Count(), 0u);
  EXPECT_EQ(v.size(), 100u);
}

TEST(BitVector, NormalizeClearsTailBits) {
  BitVector v(65);
  auto words = v.mutable_words();
  words[1] = ~0ULL;  // garbage beyond bit 65
  v.Normalize();
  EXPECT_EQ(v.Count(), 1u);  // only bit 64 survives
  EXPECT_TRUE(v.Get(64));
}

TEST(BitVector, EqualityComparesContents) {
  BitVector a(64);
  BitVector b(64);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_NE(a, b);
  b.Set(3);
  EXPECT_EQ(a, b);
}

TEST(BitVector, AndCountHonoursRequestedStrategy) {
  // Regression: AndCount used to drop the caller-selected strategy and
  // always run the kBuiltin default. Force kLut8 and assert via the
  // LUT invocation counter that the hardware-model path really ran —
  // and that the default path does NOT touch it.
  util::Xoshiro256 rng(23);
  BitVector a(640);
  BitVector b(640);
  for (int i = 0; i < 250; ++i) {
    a.Set(rng.UniformBelow(640));
    b.Set(rng.UniformBelow(640));
  }
  const std::uint64_t expected = a.AndCount(b);

  const std::uint64_t lut_before = Lut8Invocations();
  EXPECT_EQ(a.AndCount(b, PopcountKind::kLut8), expected);
  // One LUT call per word of the span.
  EXPECT_EQ(Lut8Invocations() - lut_before, a.word_count());

  const std::uint64_t lut_after = Lut8Invocations();
  EXPECT_EQ(a.AndCount(b), expected);
  EXPECT_EQ(a.AndCount(b, PopcountKind::kSwar), expected);
  EXPECT_EQ(Lut8Invocations(), lut_after)
      << "non-LUT strategies must not touch the hardware-model path";
}

TEST(BitVector, CountMatchesAcrossStrategies) {
  util::Xoshiro256 rng(17);
  BitVector v(1000);
  for (int i = 0; i < 400; ++i) v.Set(rng.UniformBelow(1000));
  const auto expected = v.Count(PopcountKind::kBuiltin);
  EXPECT_EQ(v.Count(PopcountKind::kSwar), expected);
  EXPECT_EQ(v.Count(PopcountKind::kLut8), expected);
  EXPECT_EQ(v.Count(PopcountKind::kLut16), expected);
}

TEST(BitVector, ZeroSizeIsWellBehaved) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.Count(), 0u);
  v.ForEachSetBit([](std::uint64_t) { FAIL(); });
}

}  // namespace
}  // namespace tcim::bit
