// Tests for the core layer: bitwise TC paths, config normalization,
// the perf model, and the TcimAccelerator facade.
#include <gtest/gtest.h>

#include "baseline/cpu_tc.h"
#include "core/accelerator.h"
#include "core/bitwise_tc.h"
#include "core/perf_model.h"
#include "graph/generators.h"

namespace tcim::core {
namespace {

using graph::Graph;
using graph::Orientation;

Graph Fig2Graph() {
  graph::GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);
  b.AddEdge(1, 3);
  b.AddEdge(2, 3);
  return std::move(b).Build();
}

TEST(BitwiseTc, Fig2DenseAllOrientations) {
  const Graph g = Fig2Graph();
  EXPECT_EQ(CountTrianglesDense(g, Orientation::kUpper), 2u);
  EXPECT_EQ(CountTrianglesDense(g, Orientation::kDegree), 2u);
  EXPECT_EQ(CountTrianglesDense(g, Orientation::kFullSymmetric), 2u);
}

TEST(BitwiseTc, Fig2SlicedAllOrientations) {
  const Graph g = Fig2Graph();
  for (const auto o : {Orientation::kUpper, Orientation::kDegree,
                       Orientation::kFullSymmetric}) {
    EXPECT_EQ(CountTrianglesSliced(g, o), 2u) << graph::ToString(o);
  }
}

TEST(BitwiseTc, MatchesBaselineOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Graph g = graph::HolmeKim(600, 3600, 0.6, seed);
    const std::uint64_t expected = baseline::CountTrianglesReference(g);
    EXPECT_EQ(CountTrianglesDense(g), expected) << seed;
    EXPECT_EQ(CountTrianglesSliced(g), expected) << seed;
  }
}

TEST(BitwiseTc, SliceWidthDoesNotChangeTheCount) {
  const Graph g = graph::Rmat(512, 4000, graph::RmatParams{}, 3);
  const std::uint64_t expected = baseline::CountTrianglesReference(g);
  for (const std::uint32_t s : {8u, 16u, 32u, 48u, 64u, 128u, 256u}) {
    EXPECT_EQ(CountTrianglesSliced(g, Orientation::kUpper, s), expected)
        << "slice_bits=" << s;
  }
}

TEST(BitwiseTc, DenseRejectsHugeGraphs) {
  const Graph g = graph::ErdosRenyi(20000, 20000, 1);
  EXPECT_THROW((void)CountTrianglesDense(g), std::invalid_argument);
}

TEST(TcimConfig, DefaultsNormalizeCleanly) {
  TcimConfig c;
  EXPECT_NO_THROW(c.Normalize());
  EXPECT_EQ(c.array.access_width_bits, 64u);
  EXPECT_EQ(c.array.capacity_bytes, 16ULL << 20);
}

TEST(TcimConfig, SliceBitsPropagateToArrayAndCounter) {
  TcimConfig c;
  c.slice_bits = 128;
  c.Normalize();
  EXPECT_EQ(c.array.access_width_bits, 128u);
  EXPECT_EQ(c.bit_counter.word_bits, 128u);
}

TEST(TcimConfig, RejectsBadSliceBits) {
  TcimConfig c;
  c.slice_bits = 0;
  EXPECT_THROW(c.Normalize(), std::invalid_argument);
  c.slice_bits = 600;
  EXPECT_THROW(c.Normalize(), std::invalid_argument);
  c = TcimConfig{};
  c.slice_bits = 96;  // does not divide 512 columns
  EXPECT_THROW(c.Normalize(), std::invalid_argument);
}

TEST(PerfModel, ZeroWorkCostsOnlyPipelineDrain) {
  arch::ExecStats stats;
  nvsim::ArrayPerf perf;
  perf.read_slice = {1e-9, 1e-12};
  perf.and_slice = {1e-9, 1e-12};
  perf.write_slice = {2e-9, 1e-11};
  perf.leakage_w = 0.0;
  const PerfResult r = EvaluatePerf(stats, perf, pim::BitCounterParams{});
  EXPECT_DOUBLE_EQ(r.latency.row_write_s, 0.0);
  EXPECT_DOUBLE_EQ(r.energy.and_j, 0.0);
  EXPECT_GT(r.serial_seconds, 0.0);  // drain term only
}

TEST(PerfModel, LatencyAndEnergyScaleLinearlyWithOps) {
  nvsim::ArrayPerf perf;
  perf.and_slice = {2e-9, 3e-12};
  perf.write_slice = {10e-9, 20e-12};
  perf.leakage_w = 0.0;

  arch::ExecStats one;
  one.valid_pairs = 1000;
  one.row_slice_writes = 100;
  one.col_slice_writes = 50;
  one.bitcount_words = 1000;
  one.per_subarray_ands = {1000};
  one.per_subarray_writes = {150};

  arch::ExecStats two = one;
  two.valid_pairs *= 2;
  two.row_slice_writes *= 2;
  two.col_slice_writes *= 2;
  two.bitcount_words *= 2;
  two.per_subarray_ands = {2000};
  two.per_subarray_writes = {300};

  PerfModelParams params;
  params.issue_overhead = 0.0;
  params.issue_energy = 0.0;
  const PerfResult r1 = EvaluatePerf(one, perf, pim::BitCounterParams{},
                                     params);
  const PerfResult r2 = EvaluatePerf(two, perf, pim::BitCounterParams{},
                                     params);
  EXPECT_NEAR(r2.latency.and_s, 2 * r1.latency.and_s, 1e-15);
  EXPECT_NEAR(r2.energy.col_write_j, 2 * r1.energy.col_write_j, 1e-20);
}

TEST(PerfModel, ParallelNeverSlowerThanSerial) {
  nvsim::ArrayPerf perf;
  perf.and_slice = {2e-9, 3e-12};
  perf.write_slice = {10e-9, 20e-12};
  perf.leakage_w = 0.01;
  arch::ExecStats stats;
  stats.valid_pairs = 10000;
  stats.row_slice_writes = 500;
  stats.col_slice_writes = 600;
  stats.bitcount_words = 10000;
  stats.per_subarray_ands.assign(16, 625);    // balanced
  stats.per_subarray_writes.assign(16, 1100 / 16);
  const PerfResult r = EvaluatePerf(stats, perf, pim::BitCounterParams{});
  EXPECT_LE(r.parallel_seconds, r.serial_seconds);
  EXPECT_GT(r.parallel_seconds, 0.0);
  EXPECT_GT(r.energy_joules, 0.0);
  EXPECT_NEAR(r.energy_joules, r.energy.Total(), 1e-18);
}

TEST(PerfModel, SkewConcentratesCriticalPath) {
  nvsim::ArrayPerf perf;
  perf.and_slice = {1e-9, 1e-12};
  perf.write_slice = {1e-9, 1e-12};
  arch::ExecStats balanced;
  balanced.valid_pairs = 1600;
  balanced.per_subarray_ands.assign(16, 100);
  balanced.per_subarray_writes.assign(16, 0);
  arch::ExecStats skewed = balanced;
  skewed.per_subarray_ands.assign(16, 0);
  skewed.per_subarray_ands[0] = 1600;
  PerfModelParams params;
  params.issue_overhead = 0.0;
  const PerfResult rb =
      EvaluatePerf(balanced, perf, pim::BitCounterParams{}, params);
  const PerfResult rs =
      EvaluatePerf(skewed, perf, pim::BitCounterParams{}, params);
  EXPECT_GT(rs.parallel_seconds, 10 * rb.parallel_seconds);
}

TEST(Accelerator, Fig2EndToEnd) {
  const TcimAccelerator accel{TcimConfig{}};
  const TcimResult r = accel.Run(Fig2Graph());
  EXPECT_EQ(r.triangles, 2u);
  EXPECT_EQ(r.exec.valid_pairs, 5u);
  EXPECT_GT(r.perf.serial_seconds, 0.0);
  EXPECT_GT(r.perf.energy_joules, 0.0);
  EXPECT_GT(r.host_seconds, 0.0);
}

TEST(Accelerator, MatchesBaselinesAcrossOrientations) {
  const Graph g = graph::HolmeKim(800, 4800, 0.7, 5);
  const std::uint64_t expected = baseline::CountTrianglesReference(g);
  for (const auto o : {Orientation::kUpper, Orientation::kDegree,
                       Orientation::kFullSymmetric}) {
    TcimConfig c;
    c.orientation = o;
    c.array.capacity_bytes = 2ULL << 20;
    const TcimAccelerator accel{c};
    EXPECT_EQ(accel.Run(g).triangles, expected) << graph::ToString(o);
  }
}

TEST(Accelerator, SliceWidthSweepPreservesCount) {
  const Graph g = graph::GeometricRoad(3000, graph::RoadParams{}, 6);
  const std::uint64_t expected = baseline::CountTrianglesReference(g);
  for (const std::uint32_t s : {16u, 32u, 64u, 128u}) {
    TcimConfig c;
    c.slice_bits = s;
    c.array.capacity_bytes = 2ULL << 20;
    const TcimAccelerator accel{c};
    EXPECT_EQ(accel.Run(g).triangles, expected) << "slice=" << s;
  }
}

TEST(Accelerator, ResultStatsAreConsistent) {
  const Graph g = graph::Rmat(1024, 8000, graph::RmatParams{}, 7);
  TcimConfig c;
  c.array.capacity_bytes = 2ULL << 20;
  const TcimAccelerator accel{c};
  const TcimResult r = accel.Run(g);
  EXPECT_EQ(r.exec.cache.lookups, r.exec.valid_pairs);
  EXPECT_EQ(r.exec.col_slice_writes, r.exec.cache.misses);
  EXPECT_EQ(r.slices.valid_pairs, r.exec.valid_pairs);
  EXPECT_EQ(r.slices.edges, r.exec.edges_processed);
  EXPECT_LE(r.perf.parallel_seconds, r.perf.serial_seconds);
}

TEST(Accelerator, RunOnMatrixRejectsWidthMismatch) {
  const TcimAccelerator accel{TcimConfig{}};  // 64-bit slices
  const bit::SlicedMatrix m32 =
      BuildSlicedMatrix(Fig2Graph(), Orientation::kUpper, 32);
  EXPECT_THROW((void)accel.RunOnMatrix(m32, Orientation::kUpper),
               std::invalid_argument);
}

TEST(Accelerator, ExposesDeviceAndArrayPerf) {
  const TcimAccelerator accel{TcimConfig{}};
  EXPECT_GT(accel.device().Characterize().read_margin, 0.0);
  EXPECT_GT(accel.array_perf().and_slice.latency, 0.0);
}

TEST(Accelerator, SmallerArrayMeansMoreExchanges) {
  const Graph g = graph::HolmeKim(4000, 40000, 0.5, 8);
  TcimConfig big;
  big.array.capacity_bytes = 8ULL << 20;
  TcimConfig small;
  small.array.capacity_bytes = 256ULL << 10;
  const TcimResult rb = TcimAccelerator{big}.Run(g);
  const TcimResult rs = TcimAccelerator{small}.Run(g);
  EXPECT_EQ(rb.triangles, rs.triangles);  // capacity never changes counts
  EXPECT_GE(rs.exec.cache.exchanges, rb.exec.cache.exchanges);
  EXPECT_LE(rs.exec.cache.HitRate(), rb.exec.cache.HitRate() + 1e-9);
}

}  // namespace
}  // namespace tcim::core
