// Tests for graph generators: closed-form triangle counts for the
// deterministic families, structural/determinism properties for the
// random ones.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/cpu_tc.h"
#include "graph/generators.h"

namespace tcim::graph {
namespace {

std::uint64_t Tri(const Graph& g) {
  return baseline::CountTrianglesReference(g);
}

TEST(ClosedForm, CompleteGraphHasChoose3) {
  for (const VertexId n : {3u, 4u, 5u, 8u, 16u, 30u}) {
    const Graph g = Complete(n);
    EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * (n - 1) / 2);
    EXPECT_EQ(Tri(g),
              static_cast<std::uint64_t>(n) * (n - 1) * (n - 2) / 6)
        << "n=" << n;
  }
}

TEST(ClosedForm, TriangleIsSmallestCycle) {
  EXPECT_EQ(Tri(Cycle(3)), 1u);
}

TEST(ClosedForm, LongCyclesHaveNoTriangles) {
  for (const VertexId n : {4u, 5u, 10u, 101u}) {
    EXPECT_EQ(Tri(Cycle(n)), 0u) << "n=" << n;
  }
}

TEST(ClosedForm, CycleRejectsTinyN) {
  EXPECT_THROW((void)Cycle(2), std::invalid_argument);
}

TEST(ClosedForm, PathsAndStarsAreTriangleFree) {
  EXPECT_EQ(Tri(Path(50)), 0u);
  EXPECT_EQ(Tri(Star(50)), 0u);
  EXPECT_EQ(Path(50).num_edges(), 49u);
  EXPECT_EQ(Star(50).num_edges(), 49u);
}

TEST(ClosedForm, WheelHasRimTriangles) {
  // n-1 hub triangles; W_4 = K_4 additionally closes its length-3 rim.
  EXPECT_EQ(Tri(Wheel(4)), 4u);
  for (const VertexId n : {5u, 9u, 33u}) {
    EXPECT_EQ(Tri(Wheel(n)), static_cast<std::uint64_t>(n) - 1) << "n=" << n;
  }
}

TEST(ClosedForm, GridIsTriangleFree) {
  const Graph g = GridLattice(8, 13);
  EXPECT_EQ(g.num_vertices(), 104u);
  EXPECT_EQ(Tri(g), 0u);
  // Interior grid edge count: w*(h-1) + h*(w-1).
  EXPECT_EQ(g.num_edges(), 8u * 12u + 13u * 7u);
}

TEST(ClosedForm, BipartiteIsTriangleFree) {
  const Graph g = CompleteBipartite(7, 9);
  EXPECT_EQ(g.num_edges(), 63u);
  EXPECT_EQ(Tri(g), 0u);
}

// --- random families -------------------------------------------------------

TEST(ErdosRenyi, HitsEdgeTarget) {
  const Graph g = ErdosRenyi(500, 3000, 1);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 3000.0, 30.0);
  EXPECT_EQ(g.num_vertices(), 500u);
}

TEST(ErdosRenyi, DeterministicPerSeed) {
  const Graph a = ErdosRenyi(200, 1000, 9);
  const Graph b = ErdosRenyi(200, 1000, 9);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin()));
  const Graph c = ErdosRenyi(200, 1000, 10);
  EXPECT_FALSE(a.num_edges() == c.num_edges() &&
               std::equal(a.adjacency().begin(), a.adjacency().end(),
                          c.adjacency().begin()));
}

TEST(ErdosRenyi, CapsAtCompleteGraph) {
  const Graph g = ErdosRenyi(10, 1000000, 2);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(ErdosRenyi, TriangleCountNearExpectation) {
  // E[T] = C(n,3) p^3 with p = m / C(n,2).
  const VertexId n = 400;
  const std::uint64_t m = 8000;
  const double p =
      static_cast<double>(m) / (static_cast<double>(n) * (n - 1) / 2);
  const double expected = static_cast<double>(n) * (n - 1) * (n - 2) / 6.0 *
                          p * p * p;
  double total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    total += static_cast<double>(Tri(ErdosRenyi(n, m, seed)));
  }
  EXPECT_NEAR(total / 5.0, expected, expected * 0.35);
}

TEST(Rmat, HitsEdgeTargetApproximately) {
  const Graph g = Rmat(1 << 12, 40000, RmatParams{}, 3);
  EXPECT_GT(g.num_edges(), 39000u);
  EXPECT_LE(g.num_edges(), 40000u);
}

TEST(Rmat, DeterministicPerSeed) {
  const Graph a = Rmat(1024, 5000, RmatParams{}, 4);
  const Graph b = Rmat(1024, 5000, RmatParams{}, 4);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin()));
}

TEST(Rmat, SkewedDegreesVsErdosRenyi) {
  const Graph rmat = Rmat(4096, 30000, RmatParams{}, 5);
  const Graph er = ErdosRenyi(4096, 30000, 5);
  EXPECT_GT(rmat.max_degree(), 2 * er.max_degree());
}

TEST(Rmat, RejectsBadParams) {
  RmatParams p;
  p.a = 0.9;  // sums to 1.33
  EXPECT_THROW((void)Rmat(64, 100, p, 1), std::invalid_argument);
}

TEST(HolmeKim, ProducesTargetEdgesApproximately) {
  const Graph g = HolmeKim(2000, 16000, 0.6, 6);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 16000.0, 1600.0);
}

TEST(HolmeKim, DeterministicPerSeed) {
  const Graph a = HolmeKim(500, 2500, 0.5, 7);
  const Graph b = HolmeKim(500, 2500, 0.5, 7);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin()));
}

TEST(HolmeKim, TriadClosureRaisesTriangleDensity) {
  const Graph low = HolmeKim(3000, 15000, 0.05, 8);
  const Graph high = HolmeKim(3000, 15000, 0.95, 8);
  EXPECT_GT(Tri(high), 2 * Tri(low));
}

TEST(HolmeKim, RejectsBadParams) {
  EXPECT_THROW((void)HolmeKim(2, 10, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)HolmeKim(100, 10, 1.5, 1), std::invalid_argument);
}

TEST(WattsStrogatz, RingWithoutRewiringHasKnownTriangles) {
  // beta=0, half_k=2: each vertex connects to +-1, +-2; every vertex
  // contributes known local triangles: ring of n has n*(half_k choose 2)
  // ... for half_k=2 the count is exactly n (triangles i,i+1,i+2).
  const VertexId n = 100;
  const Graph g = WattsStrogatz(n, 2, 0.0, 1);
  EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * 2);
  EXPECT_EQ(Tri(g), static_cast<std::uint64_t>(n));
}

TEST(WattsStrogatz, RewiringReducesClustering) {
  const Graph ordered = WattsStrogatz(2000, 3, 0.0, 2);
  const Graph random = WattsStrogatz(2000, 3, 0.9, 2);
  EXPECT_LT(Tri(random), Tri(ordered) / 2);
}

TEST(WattsStrogatz, RejectsBadParams) {
  EXPECT_THROW((void)WattsStrogatz(10, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW((void)WattsStrogatz(10, 0, 0.1, 1), std::invalid_argument);
}

TEST(GeometricRoad, LowDegreeAndFewTriangles) {
  const Graph g = GeometricRoad(10000, RoadParams{}, 3);
  EXPECT_LT(g.mean_degree(), 3.5);
  EXPECT_LE(g.max_degree(), 8u);
  // Road networks: triangles per edge well below social graphs.
  EXPECT_LT(static_cast<double>(Tri(g)),
            0.2 * static_cast<double>(g.num_edges()));
}

TEST(GeometricRoad, NoDiagonalsMeansNoTriangles) {
  RoadParams p;
  p.diag_p = 0.0;
  EXPECT_EQ(Tri(GeometricRoad(5000, p, 4)), 0u);
}

TEST(GeometricRoad, DeterministicPerSeed) {
  const Graph a = GeometricRoad(1000, RoadParams{}, 5);
  const Graph b = GeometricRoad(1000, RoadParams{}, 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin()));
}

/// Parameterized determinism + simple-graph invariants across all
/// random families.
struct GenCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

class RandomFamilyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(RandomFamilyTest, ProducesSimpleGraph) {
  const Graph g = GetParam().make(11);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.Neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_NE(nbrs[i], v) << "self loop at " << v;
      if (i > 0) {
        ASSERT_LT(nbrs[i - 1], nbrs[i]) << "dup/unsorted at " << v;
      }
      ASSERT_TRUE(g.HasEdge(nbrs[i], v)) << "asymmetric at " << v;
    }
  }
}

TEST_P(RandomFamilyTest, SeedChangesGraph) {
  const Graph a = GetParam().make(1);
  const Graph b = GetParam().make(2);
  const bool identical =
      a.num_edges() == b.num_edges() &&
      std::equal(a.adjacency().begin(), a.adjacency().end(),
                 b.adjacency().begin());
  EXPECT_FALSE(identical);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RandomFamilyTest,
    ::testing::Values(
        GenCase{"erdos", [](std::uint64_t s) {
                  return ErdosRenyi(300, 2000, s);
                }},
        GenCase{"rmat", [](std::uint64_t s) {
                  return Rmat(512, 3000, RmatParams{}, s);
                }},
        GenCase{"holmekim", [](std::uint64_t s) {
                  return HolmeKim(400, 2400, 0.6, s);
                }},
        GenCase{"wattsstrogatz", [](std::uint64_t s) {
                  return WattsStrogatz(400, 3, 0.2, s);
                }},
        GenCase{"road", [](std::uint64_t s) {
                  return GeometricRoad(900, RoadParams{}, s);
                }}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace tcim::graph
