// Tests for the STT-MRAM reliability models.
#include <gtest/gtest.h>

#include "device/reliability.h"

namespace tcim::device {
namespace {

TEST(Retention, ZeroTimeMeansNoFailure) {
  EXPECT_DOUBLE_EQ(RetentionFailureProbability(60.0, 0.0), 0.0);
}

TEST(Retention, HigherDeltaIsMoreStable) {
  const double ten_years = 10 * 365.25 * 86400.0;
  const double p40 = RetentionFailureProbability(40.0, ten_years);
  const double p60 = RetentionFailureProbability(60.0, ten_years);
  const double p80 = RetentionFailureProbability(80.0, ten_years);
  EXPECT_GT(p40, p60);
  EXPECT_GT(p60, p80);
  // Delta = 40 is NOT retention grade over 10 years; Delta = 80 is.
  EXPECT_GT(p40, 0.5);
  EXPECT_LT(p80, 1e-9);
}

TEST(Retention, MonotoneInTime) {
  double prev = 0.0;
  for (const double t : {1.0, 1e3, 1e6, 1e9}) {
    const double p = RetentionFailureProbability(45.0, t);
    EXPECT_GE(p, prev);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(Retention, RejectsNonPhysical) {
  EXPECT_THROW((void)RetentionFailureProbability(0.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)RetentionFailureProbability(60.0, -1.0),
               std::invalid_argument);
}

TEST(ReadDisturb, ZeroCurrentEqualsRetention) {
  const double p_disturb = ReadDisturbProbability(60.0, 0.0, 100e-6, 1e-9);
  const double p_retention = RetentionFailureProbability(60.0, 1e-9);
  EXPECT_DOUBLE_EQ(p_disturb, p_retention);
}

TEST(ReadDisturb, GrowsWithReadCurrent) {
  double prev = 0.0;
  for (const double i : {10e-6, 30e-6, 60e-6, 90e-6}) {
    const double p = ReadDisturbProbability(60.0, i, 100e-6, 10e-9);
    EXPECT_GT(p, prev) << i;
    prev = p;
  }
}

TEST(ReadDisturb, AboveCriticalIsCertain) {
  EXPECT_DOUBLE_EQ(ReadDisturbProbability(60.0, 120e-6, 100e-6, 1e-9),
                   1.0);
}

TEST(ReadDisturb, PaperDeviceIsReadStable) {
  // The Table I cell senses at ~47 uA against Ic ~137 uA with
  // Delta ~109: disturb per ns-scale sense event must be negligible.
  const MtjDevice dev(PaperMtjParams());
  const MtjElectrical& e = dev.Characterize();
  const double p = ReadDisturbProbability(
      e.thermal_stability, e.i_read_1, e.critical_current, 2e-9);
  EXPECT_LT(p, 1e-15);
}

TEST(SenseError, HalfAtZeroMargin) {
  EXPECT_DOUBLE_EQ(SenseErrorProbability(0.0, 1e-6), 0.5);
}

TEST(SenseError, ShrinksWithMargin) {
  const double sigma = 1e-6;
  double prev = 0.5;
  for (const double margin : {0.5e-6, 1e-6, 2e-6, 4e-6}) {
    const double p = SenseErrorProbability(margin, sigma);
    EXPECT_LT(p, prev);
    prev = p;
  }
  // 5-sigma margin: < 3e-7.
  EXPECT_LT(SenseErrorProbability(5e-6, 1e-6), 3e-7);
}

TEST(SenseError, RejectsBadSigma) {
  EXPECT_THROW((void)SenseErrorProbability(1e-6, 0.0), std::invalid_argument);
}

TEST(AndReliability, CombinesMechanisms) {
  const MtjDevice dev(PaperMtjParams());
  const AndReliability r = AndBitErrorRate(dev, /*sigma=*/0.5e-6,
                                           /*pulse=*/2e-9);
  EXPECT_GT(r.sense_error, 0.0);
  EXPECT_GE(r.per_bit_error, r.sense_error);
  EXPECT_LE(r.per_bit_error, 1.0);
  // The paper's AND margin (~5.3 uA) against 0.5 uA noise: ~10 sigma,
  // essentially error-free.
  EXPECT_LT(r.per_bit_error, 1e-12);
}

TEST(AndReliability, NoisierSenseAmpIsWorse) {
  const MtjDevice dev(PaperMtjParams());
  const double quiet = AndBitErrorRate(dev, 0.5e-6, 2e-9).per_bit_error;
  const double noisy = AndBitErrorRate(dev, 3e-6, 2e-9).per_bit_error;
  EXPECT_GT(noisy, quiet);
}

TEST(ExpectedCountError, ScalesWithWork) {
  EXPECT_DOUBLE_EQ(ExpectedCountError(1e-9, 1000000, 64), 1e-9 * 64e6);
  EXPECT_DOUBLE_EQ(ExpectedCountError(0.0, 1000000, 64), 0.0);
  EXPECT_THROW((void)ExpectedCountError(1.5, 10, 64), std::invalid_argument);
}

}  // namespace
}  // namespace tcim::device
