// k2dHubReplicated partition tests: the exactness matrix (every
// generator family x bank count x orientation x slice width, plus the
// PaperDataset stand-ins), the arc-routing dedup property under
// adversarial hand-built tile plans (fuzz), replica equivalence, the
// auto-hub replica budget, and the strategy-aware stat regression that
// pins the 1D numbers (ISSUE PR 8).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "baseline/cpu_tc.h"
#include "core/accelerator.h"
#include "core/bitwise_tc.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/orientation.h"
#include "runtime/bank_pool.h"
#include "runtime/metrics.h"
#include "runtime/partitioner.h"
#include "util/rng.h"

namespace tcim {
namespace {

using graph::Graph;
using graph::Orientation;
using runtime::BankPool;
using runtime::BankPoolConfig;
using runtime::GraphPartition;
using runtime::Partition2dOptions;
using runtime::PartitionStrategy;
using runtime::TilePlan2d;

core::TcimConfig SmallConfig(std::uint32_t slice_bits = 64) {
  core::TcimConfig config;
  config.array.capacity_bytes = 1ULL << 20;  // 1 MB: forces exchanges
  config.slice_bits = slice_bits;
  return config;
}

BankPoolConfig Pool2dConfig(std::uint32_t banks,
                            std::uint32_t slice_bits = 64) {
  BankPoolConfig config;
  config.num_banks = banks;
  config.partition = PartitionStrategy::k2dHubReplicated;
  config.accelerator = SmallConfig(slice_bits);
  return config;
}

struct FamilyCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

const FamilyCase kFamilies[] = {
    {"erdos", [](std::uint64_t s) { return graph::ErdosRenyi(400, 1800, s); }},
    {"rmat",
     [](std::uint64_t s) {
       return graph::Rmat(512, 4000, graph::RmatParams{}, s);
     }},
    {"holmekim",
     [](std::uint64_t s) { return graph::HolmeKim(350, 2600, 0.8, s); }},
    {"smallworld",
     [](std::uint64_t s) { return graph::WattsStrogatz(500, 4, 0.3, s); }},
    {"road",
     [](std::uint64_t s) {
       return graph::GeometricRoad(900, graph::RoadParams{}, s);
     }},
    {"community",
     [](std::uint64_t s) {
       return graph::CommunityCliques(600, 5000, graph::CommunityParams{}, s);
     }},
    {"complete", [](std::uint64_t) { return graph::Complete(60); }},
};

constexpr Orientation kOrientations[] = {
    Orientation::kUpper, Orientation::kDegree, Orientation::kFullSymmetric};

/// Sums every bank's raw shard bitcount under `plan`.
std::uint64_t SumShards(const bit::SlicedMatrix& matrix, const TilePlan2d& plan,
                        const bit::SlicedStore* replica = nullptr) {
  std::uint64_t raw = 0;
  for (std::uint32_t b = 0; b < plan.num_banks; ++b) {
    raw += runtime::CountBankShard2d(matrix, plan, b, replica);
  }
  return raw;
}

// --- exactness matrix (the headline satellite) -----------------------------

class Partition2dExactnessTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Orientation>> {
};

TEST_P(Partition2dExactnessTest, EveryCellMatchesBaselineRawAndDivided) {
  const auto [banks, orientation] = GetParam();
  for (const FamilyCase& family : kFamilies) {
    const Graph g = family.make(/*seed=*/123);
    const std::uint64_t expected = baseline::CountTrianglesReference(g);
    for (const std::uint32_t slice_bits : {64u, 512u}) {
      SCOPED_TRACE(::testing::Message() << family.name << " banks=" << banks
                                        << " |S|=" << slice_bits);
      const bit::SlicedMatrix matrix =
          core::BuildSlicedMatrix(g, orientation, slice_bits);
      const GraphPartition p = runtime::Partition2dMatrix(
          matrix, banks, Partition2dOptions{});
      ASSERT_NE(p.plan2d, nullptr);
      // Per-tile/lane raw bitcounts must sum to the full-matrix raw
      // bitcount BEFORE the orientation divide — the kFullSymmetric
      // trap (a single shard's bitcount need not divide by 6).
      const std::uint64_t raw_full =
          matrix.AndPopcountRows(0, matrix.num_vertices());
      EXPECT_EQ(SumShards(matrix, *p.plan2d), raw_full);
      EXPECT_EQ(raw_full / graph::CountMultiplier(orientation), expected);
      // And the pool's serving read path agrees end to end.
      const BankPool pool{Pool2dConfig(banks, slice_bits)};
      EXPECT_EQ(pool.HostCountMatrix(matrix, orientation), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BanksByOrientation, Partition2dExactnessTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 7u),
                       ::testing::ValuesIn(kOrientations)));

TEST(Partition2dTest, SimulatedPipelineMatchesSingleAccelerator) {
  // The functional-array path (Controller::RunPlan with replica
  // warm-up) must reproduce the single-accelerator count and the
  // algorithmic op totals on every family.
  const core::TcimAccelerator single{SmallConfig()};
  for (const std::uint32_t banks : {2u, 7u}) {
    const BankPool pool{Pool2dConfig(banks)};
    for (const FamilyCase& family : kFamilies) {
      const Graph g = family.make(/*seed=*/123);
      const core::TcimResult reference = single.Run(g);
      const runtime::ClusterResult cluster = pool.Count(g);
      EXPECT_EQ(cluster.triangles, reference.triangles)
          << family.name << " banks=" << banks;
      EXPECT_EQ(cluster.exec.edges_processed, reference.exec.edges_processed)
          << family.name << " banks=" << banks;
      EXPECT_EQ(cluster.exec.valid_pairs, reference.exec.valid_pairs)
          << family.name << " banks=" << banks;
      EXPECT_EQ(cluster.exec.accumulated_bitcount,
                reference.exec.accumulated_bitcount)
          << family.name << " banks=" << banks;
    }
  }
}

TEST(Partition2dTest, HostCountMatchesSimulatedUnderFullSymmetric) {
  BankPoolConfig config = Pool2dConfig(3);
  config.accelerator.orientation = Orientation::kFullSymmetric;
  const BankPool pool{config};
  const Graph g = graph::HolmeKim(300, 2200, 0.7, 5);
  const std::uint64_t expected = core::CountTrianglesDense(g);
  EXPECT_EQ(pool.HostCount(g), expected);
  EXPECT_EQ(pool.Count(g).triangles, expected);
}

TEST(Partition2dTest, PaperDatasetStandInsMatchBaseline) {
  const BankPool pool{Pool2dConfig(8)};
  for (const graph::PaperRef& ref : graph::AllPaperRefs()) {
    const graph::DatasetInstance inst =
        graph::SynthesizePaperGraph(ref.id, /*scale=*/0.02, /*seed=*/42);
    EXPECT_EQ(pool.HostCount(inst.graph),
              baseline::CountTrianglesReference(inst.graph))
        << ref.name;
  }
}

// --- explicit hub-k edge cases ---------------------------------------------

TEST(Partition2dTest, ExplicitHubCountsIncludingZeroOneAndAllStayExact) {
  const Graph g = graph::Rmat(512, 4000, graph::RmatParams{}, 9);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  const std::uint64_t raw_full =
      matrix.AndPopcountRows(0, matrix.num_vertices());
  const std::uint32_t n = matrix.num_vertices();
  for (const std::uint32_t hub_k : {0u, 1u, n, n + 100u}) {
    for (const std::uint32_t banks : {1u, 3u, 8u}) {
      SCOPED_TRACE(::testing::Message() << "hub_k=" << hub_k
                                        << " banks=" << banks);
      Partition2dOptions options;
      options.hub_k = hub_k;
      const GraphPartition p =
          runtime::Partition2dMatrix(matrix, banks, options);
      ASSERT_NE(p.plan2d, nullptr);
      EXPECT_EQ(p.plan2d->hubs.size(), std::min(hub_k, n));
      EXPECT_EQ(SumShards(matrix, *p.plan2d), raw_full);
    }
  }
}

// --- replica path ----------------------------------------------------------

TEST(Partition2dTest, ReplicaStoreGivesIdenticalShardCounts) {
  const Graph g = graph::HolmeKim(350, 2600, 0.8, 123);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kDegree, 64);
  Partition2dOptions options;
  options.hub_k = 24;
  const GraphPartition p = runtime::Partition2dMatrix(matrix, 4, options);
  ASSERT_NE(p.plan2d, nullptr);
  ASSERT_FALSE(p.plan2d->hubs.empty());
  const bit::SlicedStore replica =
      matrix.cols().ExtractVectors(p.plan2d->hubs);
  for (std::uint32_t b = 0; b < 4; ++b) {
    EXPECT_EQ(runtime::CountBankShard2d(matrix, *p.plan2d, b, &replica),
              runtime::CountBankShard2d(matrix, *p.plan2d, b, nullptr))
        << "bank " << b;
  }
}

TEST(Partition2dTest, AutoHubSelectionRespectsReplicaBudget) {
  // Default options must keep the replica overhead within the 25%
  // budget on a skewed graph at every bank count (the acceptance
  // bound), while the budget stays 0 for a single bank.
  const Graph g = graph::Rmat(2000, 16000, graph::RmatParams{}, 11);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  for (const std::uint32_t banks : {1u, 2u, 8u, 16u}) {
    const GraphPartition p =
        runtime::Partition2dMatrix(matrix, banks, Partition2dOptions{});
    EXPECT_LE(p.stats.ReplicaOverhead(), 0.25 + 1e-9) << "banks=" << banks;
    if (banks == 1) EXPECT_EQ(p.stats.replica_bytes, 0u);
    EXPECT_GE(p.stats.tile_imbalance, 1.0);
  }
}

// --- plan structure invariants ---------------------------------------------

TEST(Partition2dTest, PlanInvariantsHold) {
  const Graph g = graph::Rmat(700, 5000, graph::RmatParams{}, 7);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  for (const std::uint32_t banks : {1u, 2u, 5u, 16u}) {
    const GraphPartition p =
        runtime::Partition2dMatrix(matrix, banks, Partition2dOptions{});
    ASSERT_NE(p.plan2d, nullptr);
    const TilePlan2d& plan = *p.plan2d;
    const std::uint32_t n = matrix.num_vertices();
    // Stripe bounds cover [0, n] monotonically.
    ASSERT_EQ(plan.row_bounds.size(), plan.row_stripes + 1u);
    ASSERT_EQ(plan.col_bounds.size(), plan.col_stripes + 1u);
    EXPECT_EQ(plan.row_bounds.front(), 0u);
    EXPECT_EQ(plan.row_bounds.back(), n);
    EXPECT_EQ(plan.col_bounds.front(), 0u);
    EXPECT_EQ(plan.col_bounds.back(), n);
    EXPECT_TRUE(std::is_sorted(plan.row_bounds.begin(), plan.row_bounds.end()));
    EXPECT_TRUE(std::is_sorted(plan.col_bounds.begin(), plan.col_bounds.end()));
    ASSERT_EQ(plan.hub_row_bounds.size(), banks + 1u);
    EXPECT_TRUE(std::is_sorted(plan.hub_row_bounds.begin(),
                               plan.hub_row_bounds.end()));
    // Hubs sorted ascending (the ExtractVectors keep-list contract).
    EXPECT_TRUE(std::is_sorted(plan.hubs.begin(), plan.hubs.end()));
    // Every tile appears in exactly one bank's list, and each bank's
    // tiles share one column stripe (stripe-major placement).
    std::set<std::uint32_t> seen;
    for (std::uint32_t b = 0; b < banks; ++b) {
      std::set<std::uint32_t> stripes;
      for (const std::uint32_t t : plan.bank_tiles[b]) {
        EXPECT_TRUE(seen.insert(t).second) << "tile " << t << " double-owned";
        stripes.insert(plan.tiles[t].col_stripe);
      }
      EXPECT_LE(stripes.size(), 1u) << "bank " << b << " spans col stripes";
    }
    EXPECT_EQ(seen.size(), plan.tiles.size());
    // Shard invariants shared with the 1D strategies.
    for (const runtime::ShardInfo& shard : p.shards) {
      EXPECT_LE(shard.cut_arcs, shard.owned_arcs);
      EXPECT_LE(shard.remote_cols, shard.needed_cols);
    }
  }
}

TEST(Partition2dTest, RecordsReplicaMetrics) {
  const Graph g = graph::Rmat(512, 4000, graph::RmatParams{}, 9);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  const BankPool pool{Pool2dConfig(4)};
  (void)pool.HostCountMatrix(matrix, Orientation::kUpper);
  const GraphPartition p =
      runtime::Partition2dMatrix(matrix, 4, Partition2dOptions{});
  runtime::BankPoolMetrics& metrics = runtime::BankPoolMetrics::Get();
  EXPECT_EQ(metrics.replica_bytes.Value(),
            static_cast<double>(p.stats.replica_bytes));
  EXPECT_EQ(metrics.tile_imbalance.Value(), p.stats.tile_imbalance);
}

TEST(Partition2dTest, ZeroBanksAndShapeMismatchThrow) {
  const Graph g = graph::Complete(8);
  const bit::SlicedMatrix matrix =
      core::BuildSlicedMatrix(g, Orientation::kUpper, 64);
  EXPECT_THROW(runtime::Partition2dMatrix(matrix, 0, Partition2dOptions{}),
               std::invalid_argument);
  const GraphPartition p =
      runtime::Partition2dMatrix(matrix, 2, Partition2dOptions{});
  ASSERT_NE(p.plan2d, nullptr);
  EXPECT_THROW((void)runtime::CountBankShard2d(matrix, *p.plan2d, 2),
               std::invalid_argument);
  const bit::SlicedMatrix other =
      core::BuildSlicedMatrix(graph::Complete(9), Orientation::kUpper, 64);
  EXPECT_THROW((void)runtime::CountBankShard2d(other, *p.plan2d, 0),
               std::invalid_argument);
}

// --- adversarial fuzz: hand-built tile plans never double-count ------------

/// Builds a random but *valid* TilePlan2d over n vertices: random
/// stripe bounds (empty stripes allowed), a random hub set, random
/// hub-lane bounds, random tile->bank assignment. Any such plan must
/// route every arc exactly once — the dedup property under test.
TilePlan2d RandomPlan(util::Xoshiro256& rng, std::uint32_t n,
                      std::uint32_t num_banks) {
  TilePlan2d plan;
  plan.num_banks = num_banks;
  plan.num_vertices = n;
  plan.row_stripes = 1 + static_cast<std::uint32_t>(rng.UniformBelow(5));
  plan.col_stripes = 1 + static_cast<std::uint32_t>(rng.UniformBelow(5));

  const auto random_bounds = [&](std::uint32_t parts) {
    std::vector<graph::VertexId> bounds;
    bounds.push_back(0);
    for (std::uint32_t p = 1; p < parts; ++p) {
      bounds.push_back(static_cast<graph::VertexId>(rng.UniformBelow(n + 1)));
    }
    bounds.push_back(n);
    std::sort(bounds.begin(), bounds.end());
    return bounds;
  };
  plan.row_bounds = random_bounds(plan.row_stripes);
  plan.col_bounds = random_bounds(plan.col_stripes);
  plan.hub_row_bounds = random_bounds(num_banks);

  // Hub set: 0, 1, all, or a random subset.
  plan.is_hub.assign(n, 0);
  const std::uint64_t mode = rng.UniformBelow(4);
  if (mode == 1 && n > 0) {
    plan.is_hub[rng.UniformBelow(n)] = 1;
  } else if (mode == 2) {
    std::fill(plan.is_hub.begin(), plan.is_hub.end(), std::uint8_t{1});
  } else if (mode == 3) {
    for (std::uint32_t v = 0; v < n; ++v) {
      plan.is_hub[v] = rng.UniformBelow(4) == 0 ? 1 : 0;
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (plan.is_hub[v] != 0) plan.hubs.push_back(v);
  }

  plan.bank_tiles.resize(num_banks);
  for (std::uint32_t rs = 0; rs < plan.row_stripes; ++rs) {
    for (std::uint32_t cs = 0; cs < plan.col_stripes; ++cs) {
      runtime::TileInfo tile;
      tile.row_stripe = rs;
      tile.col_stripe = cs;
      tile.row_begin = plan.row_bounds[rs];
      tile.row_end = plan.row_bounds[rs + 1];
      tile.col_begin = plan.col_bounds[cs];
      tile.col_end = plan.col_bounds[cs + 1];
      tile.bank = static_cast<std::uint32_t>(rng.UniformBelow(num_banks));
      const auto t = static_cast<std::uint32_t>(plan.tiles.size());
      plan.tiles.push_back(tile);
      plan.bank_tiles[tile.bank].push_back(t);
    }
  }
  return plan;
}

TEST(Partition2dFuzzTest, RandomizedTilePlansNeverDoubleCount) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    util::Xoshiro256 rng(seed);
    const Graph g = graph::Rmat(
        200 + static_cast<std::uint32_t>(rng.UniformBelow(200)),
        1000 + static_cast<std::uint32_t>(rng.UniformBelow(2000)),
        graph::RmatParams{}, seed);
    const Orientation orientation =
        kOrientations[rng.UniformBelow(3)];
    const bit::SlicedMatrix matrix =
        core::BuildSlicedMatrix(g, orientation, 64);
    const std::uint32_t n = matrix.num_vertices();
    const std::uint64_t raw_full = matrix.AndPopcountRows(0, n);
    const auto banks =
        static_cast<std::uint32_t>(1 + rng.UniformBelow(9));
    const TilePlan2d plan = RandomPlan(rng, n, banks);
    // Without a replica, and with one (COW extract of the hub cols).
    EXPECT_EQ(SumShards(matrix, plan), raw_full);
    if (!plan.hubs.empty()) {
      const bit::SlicedStore replica =
          matrix.cols().ExtractVectors(plan.hubs);
      EXPECT_EQ(SumShards(matrix, plan, &replica), raw_full);
    }
  }
}

// --- strategy-aware stats: the 1D regression (satellite fix) ---------------

TEST(Partition1dStatsTest, DegreeBalancedStatsUnchangedByStrategyAwareness) {
  // Recompute the 1D communication stats independently from the CSR
  // and pin PartitionOrientedCsr to them — the strategy-aware
  // `total_needed_cols` rework must not move any 1D number.
  const Graph g = graph::Rmat(700, 5000, graph::RmatParams{}, 7);
  const graph::OrientedCsr csr = graph::Orient(g, Orientation::kUpper);
  for (const auto strategy :
       {PartitionStrategy::kContiguous, PartitionStrategy::kDegreeBalanced}) {
    const GraphPartition p = runtime::PartitionOrientedCsr(csr, 6, strategy);
    std::uint64_t total_needed = 0;
    std::uint64_t total_cut = 0;
    std::set<std::uint32_t> distinct;
    for (const runtime::ShardInfo& shard : p.shards) {
      std::set<std::uint32_t> needed;
      std::uint64_t cut = 0;
      for (graph::VertexId i = shard.row_begin; i < shard.row_end; ++i) {
        for (std::uint64_t a = csr.offsets[i]; a < csr.offsets[i + 1]; ++a) {
          const graph::VertexId j = csr.neighbors[a];
          needed.insert(j);
          distinct.insert(j);
          if (j < shard.row_begin || j >= shard.row_end) ++cut;
        }
      }
      EXPECT_EQ(shard.needed_cols, needed.size()) << "bank " << shard.bank;
      EXPECT_EQ(shard.cut_arcs, cut) << "bank " << shard.bank;
      total_needed += needed.size();
      total_cut += cut;
    }
    EXPECT_EQ(p.stats.total_needed_cols, total_needed);
    EXPECT_EQ(p.stats.total_cut_arcs, total_cut);
    EXPECT_EQ(p.stats.distinct_cols, distinct.size());
    // 2D-only stats stay zero under the 1D strategies.
    EXPECT_EQ(p.stats.hub_count, 0u);
    EXPECT_EQ(p.stats.hub_arcs, 0u);
    EXPECT_EQ(p.stats.replica_bytes, 0u);
    EXPECT_EQ(p.stats.row_stripes, 0u);
    EXPECT_EQ(p.stats.col_stripes, 0u);
    EXPECT_EQ(p.stats.tile_imbalance, 0.0);
    EXPECT_EQ(p.plan2d, nullptr);
    EXPECT_EQ(p.stats.ReplicaOverhead(), 0.0);
  }
}

}  // namespace
}  // namespace tcim
