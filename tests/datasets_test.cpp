// Tests for the paper-dataset registry and synthetic stand-in
// generation.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>

#include "baseline/cpu_tc.h"
#include "graph/datasets.h"

namespace tcim::graph {
namespace {

TEST(Registry, HasAllNineDatasets) {
  EXPECT_EQ(AllPaperRefs().size(), 9u);
  std::set<std::string> names;
  for (const PaperRef& ref : AllPaperRefs()) {
    names.insert(ref.name);
  }
  EXPECT_EQ(names.size(), 9u);
}

TEST(Registry, TableIIValuesVerbatim) {
  const PaperRef& fb = GetPaperRef(PaperDataset::kEgoFacebook);
  EXPECT_EQ(fb.vertices, 4039u);
  EXPECT_EQ(fb.edges, 88234u);
  EXPECT_EQ(fb.triangles, 1612010u);
  const PaperRef& lj = GetPaperRef(PaperDataset::kComLiveJournal);
  EXPECT_EQ(lj.vertices, 3997962u);
  EXPECT_EQ(lj.edges, 34681189u);
  EXPECT_EQ(lj.triangles, 177820130u);
}

TEST(Registry, TableVRuntimes) {
  const PaperRef& fb = GetPaperRef(PaperDataset::kEgoFacebook);
  EXPECT_DOUBLE_EQ(fb.cpu_s, 5.399);
  EXPECT_DOUBLE_EQ(fb.gpu_s, 0.15);
  EXPECT_DOUBLE_EQ(fb.fpga_s, 0.093);
  EXPECT_DOUBLE_EQ(fb.wo_pim_s, 0.169);
  EXPECT_DOUBLE_EQ(fb.tcim_s, 0.005);
  // N/A cells encoded negative.
  const PaperRef& amazon = GetPaperRef(PaperDataset::kComAmazon);
  EXPECT_LT(amazon.gpu_s, 0.0);
  EXPECT_LT(amazon.fpga_s, 0.0);
}

TEST(Registry, RoadFlagsMatchNames) {
  for (const PaperRef& ref : AllPaperRefs()) {
    const bool name_is_road =
        std::string(ref.name).find("roadNet") != std::string::npos;
    EXPECT_EQ(ref.is_road, name_is_road) << ref.name;
  }
}

TEST(Registry, LookupByNameAndId) {
  EXPECT_EQ(GetPaperRefByName("com-dblp").id, PaperDataset::kComDblp);
  EXPECT_THROW((void)GetPaperRefByName("no-such-graph"), std::invalid_argument);
}

TEST(Registry, Fig6RatiosPresentForFiveGraphs) {
  int with_ratio = 0;
  for (const PaperRef& ref : AllPaperRefs()) {
    if (ref.fpga_energy_ratio > 0) ++with_ratio;
  }
  EXPECT_EQ(with_ratio, 5);
}

TEST(Synthesize, SmallGraphsIgnoreScale) {
  const DatasetInstance inst =
      SynthesizePaperGraph(PaperDataset::kEgoFacebook, 0.1, 42);
  EXPECT_DOUBLE_EQ(inst.scale, 1.0);
  EXPECT_EQ(inst.graph.num_vertices(), 4039u);
  EXPECT_NEAR(static_cast<double>(inst.graph.num_edges()), 88234.0,
              88234.0 * 0.12);
}

TEST(Synthesize, ScaledGraphTracksTargets) {
  const double scale = 0.05;
  const DatasetInstance inst =
      SynthesizePaperGraph(PaperDataset::kComDblp, scale, 42);
  const PaperRef& ref = GetPaperRef(PaperDataset::kComDblp);
  EXPECT_NEAR(static_cast<double>(inst.graph.num_vertices()),
              ref.vertices * scale, ref.vertices * scale * 0.05);
  EXPECT_NEAR(static_cast<double>(inst.graph.num_edges()),
              ref.edges * scale, ref.edges * scale * 0.15);
  EXPECT_FALSE(inst.is_real);
  EXPECT_FALSE(inst.source.empty());
}

TEST(Synthesize, DeterministicPerSeed) {
  const DatasetInstance a =
      SynthesizePaperGraph(PaperDataset::kRoadNetPa, 0.02, 1);
  const DatasetInstance b =
      SynthesizePaperGraph(PaperDataset::kRoadNetPa, 0.02, 1);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_TRUE(std::equal(a.graph.adjacency().begin(),
                         a.graph.adjacency().end(),
                         b.graph.adjacency().begin()));
  const DatasetInstance c =
      SynthesizePaperGraph(PaperDataset::kRoadNetPa, 0.02, 2);
  EXPECT_FALSE(a.graph.num_edges() == c.graph.num_edges() &&
               std::equal(a.graph.adjacency().begin(),
                          a.graph.adjacency().end(),
                          c.graph.adjacency().begin()));
}

TEST(Synthesize, RoadGraphsAreRoadLike) {
  const DatasetInstance inst =
      SynthesizePaperGraph(PaperDataset::kRoadNetTx, 0.01, 3);
  EXPECT_LT(inst.graph.mean_degree(), 3.5);
  EXPECT_LE(inst.graph.max_degree(), 8u);
  // Triangle density well below 1 per edge.
  const std::uint64_t t = baseline::CountTrianglesReference(inst.graph);
  EXPECT_LT(static_cast<double>(t),
            0.2 * static_cast<double>(inst.graph.num_edges()));
}

TEST(Synthesize, FacebookStandInIsTriangleDense) {
  const DatasetInstance inst =
      SynthesizePaperGraph(PaperDataset::kEgoFacebook, 1.0, 4);
  const std::uint64_t t = baseline::CountTrianglesReference(inst.graph);
  // ego-facebook is extremely triangle-dense (paper: T/E ~ 18); the
  // community stand-in must reach the same super-linear regime.
  EXPECT_GT(static_cast<double>(t),
            5.0 * static_cast<double>(inst.graph.num_edges()));
}

TEST(Synthesize, EnronStandInIsSkewed) {
  const DatasetInstance inst =
      SynthesizePaperGraph(PaperDataset::kEmailEnron, 1.0, 4);
  // Hub-dominated email graph: heavy-tailed degree distribution.
  EXPECT_GT(inst.graph.max_degree(), 10 * inst.graph.mean_degree());
}

TEST(Synthesize, RejectsBadScale) {
  EXPECT_THROW((void)SynthesizePaperGraph(PaperDataset::kComDblp, 0.0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)SynthesizePaperGraph(PaperDataset::kComDblp, 1.5, 1),
               std::invalid_argument);
}

TEST(LoadOrSynthesize, FallsBackWithoutDataDir) {
  ::unsetenv("TCIM_DATA_DIR");
  const DatasetInstance inst =
      LoadOrSynthesize(PaperDataset::kEmailEnron, 1.0, 5);
  EXPECT_FALSE(inst.is_real);
}

TEST(LoadOrSynthesize, LoadsRealFileWhenPresent) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/email-enron.txt";
  {
    std::ofstream out(path);
    out << "# fake tiny enron\n0 1\n1 2\n2 0\n";
  }
  ::setenv("TCIM_DATA_DIR", dir.c_str(), 1);
  const DatasetInstance inst =
      LoadOrSynthesize(PaperDataset::kEmailEnron, 1.0, 5);
  ::unsetenv("TCIM_DATA_DIR");
  EXPECT_TRUE(inst.is_real);
  EXPECT_EQ(inst.graph.num_vertices(), 3u);
  EXPECT_EQ(inst.graph.num_edges(), 3u);
  EXPECT_EQ(inst.source, path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tcim::graph
