// SIMD kernel backends for the Eq. (5) hot path.
//
// Every triangle the system counts funnels through the fused
// AND+BitCount span kernel (popcount.h). This header turns that kernel
// into a pluggable subsystem: each KernelBackend is one vectorization
// of Σ popcount(a[k] & b[k]) — bit-exact with the scalar loop, differing
// only in throughput. Backends are compile-time guarded (a binary only
// contains what its compiler can emit), runtime gated (CPUID feature
// detection picks the widest backend the machine executes), and
// process-wide switchable: a dispatch slot read by every hot-path call,
// overridable via the TCIM_KERNEL environment variable or
// SetActiveBackend() so tests and benches can force any backend.
//
// The hardware-model strategies (PopcountKind::kLut8 etc., used by
// pim::BitCounter to mirror the paper's §V-A LUT + adder tree) never
// route through this dispatch — they stay exact per-word models.
//
// Layer: §12 kernels — see docs/ARCHITECTURE.md and docs/KERNELS.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace tcim::bit {

/// One vectorization of the fused AND+popcount span kernel.
enum class KernelBackend : std::uint8_t {
  kScalar,         ///< per-word loop (hardware POPCNT when the CPU has it)
  kSwar64x4,       ///< 4-way unrolled SWAR, no special instructions
  kAvx2,           ///< AVX2 Harley–Seal CSA + byte-shuffle popcount
  kAvx512Vpopcnt,  ///< AVX-512 VPOPCNTDQ, 8 words per instruction
  kNeon,           ///< AArch64 NEON vcnt + horizontal add
};

inline constexpr std::size_t kNumKernelBackends = 5;

/// Stable lowercase name ("scalar", "swar64x4", "avx2",
/// "avx512vpopcnt", "neon") — the TCIM_KERNEL vocabulary.
[[nodiscard]] const char* ToString(KernelBackend backend) noexcept;

/// Inverse of ToString; also accepts the "swar" and "avx512" aliases.
/// Returns nullopt for unknown names (including "auto").
[[nodiscard]] std::optional<KernelBackend> ParseKernelBackend(
    std::string_view name) noexcept;

/// All enum values in declaration order (for sweeps).
[[nodiscard]] std::span<const KernelBackend> AllKernelBackends() noexcept;

/// The executable subset of AllKernelBackends() on this machine, in
/// declaration order — what parity tests and benches iterate.
[[nodiscard]] std::span<const KernelBackend> SupportedKernelBackends() noexcept;

/// True when this binary contains code for the backend (compile-time
/// guard: e.g. kNeon is never compiled into an x86 binary).
[[nodiscard]] bool BackendCompiledIn(KernelBackend backend) noexcept;

/// True when the kScalar backend executes the hardware POPCNT
/// instruction on this CPU. Whenever this holds, auto-dispatch must
/// never pick kSwar64x4: the SWAR reduction only earns its keep as the
/// fallback on machines without a popcount instruction.
[[nodiscard]] bool ScalarHasPopcntInstruction() noexcept;

/// True when the backend is compiled in *and* this CPU can execute it
/// (runtime feature detection). kScalar and kSwar64x4 are always
/// supported; they need nothing beyond baseline ISA.
[[nodiscard]] bool BackendSupported(KernelBackend backend) noexcept;

/// The widest supported backend — what auto-dispatch picks.
[[nodiscard]] KernelBackend BestSupportedBackend() noexcept;

/// The backend behind every PopcountKind::kBuiltin span call. Resolved
/// once per process: TCIM_KERNEL if set to a supported backend name
/// (unknown or unsupported values warn once on stderr and fall back),
/// otherwise BestSupportedBackend().
[[nodiscard]] KernelBackend ActiveBackend() noexcept;

/// Forces the process-wide dispatch to `backend` (tests/benches).
/// Throws std::invalid_argument when the backend is not supported on
/// this machine — forcing it would execute illegal instructions.
void SetActiveBackend(KernelBackend backend);

/// Re-resolves the active backend from TCIM_KERNEL (for tests that
/// setenv() after process start). Returns the new active backend.
KernelBackend RefreshActiveBackendFromEnv();

/// Σ popcount(a[k] & b[k]) over min(a.size(), b.size()) words with an
/// explicit backend, bypassing the process-wide dispatch — the entry
/// point for parity tests and the perf harness. Throws
/// std::invalid_argument when the backend is not supported.
[[nodiscard]] std::uint64_t AndPopcountBackend(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    KernelBackend backend);

/// Σ popcount(w[k]) with an explicit backend; same contract.
[[nodiscard]] std::uint64_t PopcountWordsBackend(
    std::span<const std::uint64_t> words, KernelBackend backend);

/// Hot-path dispatch through the active backend. No validation, no
/// span plumbing — popcount.cpp calls these for PopcountKind::kBuiltin.
/// `a`/`b`/`words` may be null only when n == 0.
[[nodiscard]] std::uint64_t AndPopcountActive(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::size_t n) noexcept;
[[nodiscard]] std::uint64_t PopcountWordsActive(const std::uint64_t* words,
                                                std::size_t n) noexcept;

// ---------------------------------------------------------------------------
// Batched pair kernel.
//
// A per-slice-pair AndPopcount call pays the full dispatch bill —
// atomic backend load, kind switch, SIMD prologue/epilogue — for a
// payload of 1–8 words, which is why the |S|=64 end-to-end numbers in
// the schema-v1 BENCH_kernels.json seed LOST to scalar on 13 of 18
// rows while the span kernel won 5x in isolation (see docs/KERNELS.md,
// "Dispatch cost and batching"). The batched form restores the
// microbenchmark economics: callers gather matched (row-slice,
// col-slice) word pairs into a PairArena and hand the whole block to
// AndPopcountPairs — ONE dispatch resolution per block, and because the
// two sides are stored as parallel contiguous word streams, pair
// boundaries vanish: Σ_pairs Σ_k popcount(a_k & b_k) is exactly the
// span kernel over the concatenation, so every backend amortizes its
// setup and reduction tree across thousands of pairs.

/// Reusable gather arena for the batched Eq. (5) kernel. Not
/// thread-safe; give each thread its own arena and reuse it across
/// batches (Clear() keeps the capacity).
class PairArena {
 public:
  /// Appends one matched pair: `width` words from `a` and `width`
  /// words from `b` (the words of one row slice and one column slice).
  void Push(const std::uint64_t* a, const std::uint64_t* b,
            std::size_t width) {
    if (size_ + width > a_.size()) Grow(size_ + width);
    std::memcpy(a_.data() + size_, a, width * sizeof(std::uint64_t));
    std::memcpy(b_.data() + size_, b, width * sizeof(std::uint64_t));
    size_ += width;
    ++pairs_;
  }

  /// Forgets the gathered pairs but keeps the allocation.
  void Clear() noexcept {
    size_ = 0;
    pairs_ = 0;
  }

  /// Pre-sizes the backing blocks (optional; Push grows on demand).
  void Reserve(std::size_t words) {
    if (words > a_.size()) Grow(words);
  }

  [[nodiscard]] bool Empty() const noexcept { return size_ == 0; }
  /// Gathered words per side (Σ width over pairs).
  [[nodiscard]] std::size_t word_count() const noexcept { return size_; }
  /// Number of Push calls since the last Clear — the "valid pairs"
  /// accounting of the gathered block.
  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_; }

  /// The two contiguous word blocks (equal length word_count()).
  [[nodiscard]] std::span<const std::uint64_t> a() const noexcept {
    return {a_.data(), size_};
  }
  [[nodiscard]] std::span<const std::uint64_t> b() const noexcept {
    return {b_.data(), size_};
  }

 private:
  void Grow(std::size_t need);

  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
  std::size_t size_ = 0;
  std::size_t pairs_ = 0;
};

/// Σ popcount(a & b) over every pair gathered in `arena`, evaluated by
/// the active backend with one dispatch resolution for the whole
/// block — the batched Eq. (5) hot path.
[[nodiscard]] std::uint64_t AndPopcountPairs(const PairArena& arena) noexcept;

/// Same with an explicit backend (parity tests, perf harness). Throws
/// std::invalid_argument when the backend is not supported.
[[nodiscard]] std::uint64_t AndPopcountPairsBackend(const PairArena& arena,
                                                    KernelBackend backend);

// ---------------------------------------------------------------------------
// Zero-copy pair kernel.
//
// The batched arena above trades one memcpy per gathered word for one
// dispatch per block. That trade wins when pairs are narrow (1–2 words:
// the copy is cheap and the amortized dispatch dominates) but LOSES
// when pairs are wide and scattered — the schema-v3 BENCH_kernels.json
// records the |S|=512 road-graph rows up to 19% SLOWER batched than
// per-pair, because copying 8+8 words per pair costs more than the one
// indirect call it saves. The zero-copy form keeps the single dispatch
// resolution (the backend function pointer is resolved once per list)
// but consumes (a_ptr, b_ptr, words) descriptors in place, software-
// prefetching the next pair's words while the current one is summed.
// No gather copy, no arena traffic — the only per-pair cost is one
// indirect call on already-prefetched L1 lines.

/// One matched slice pair, referenced in place. `words` is the slice
/// width (≤ 8 for every slice geometry the matrix layer produces, but
/// the kernel accepts any length).
struct PairRef {
  const std::uint64_t* a;
  const std::uint64_t* b;
  std::uint32_t words;
};

/// Σ popcount(a & b) over every descriptor, evaluated by the active
/// backend with one dispatch resolution for the whole list and
/// software prefetch of the next pair. Descriptor pointers may be null
/// only when that descriptor's `words` is 0.
[[nodiscard]] std::uint64_t AndPopcountPairsZeroCopy(
    std::span<const PairRef> pairs) noexcept;

/// Same with an explicit backend (parity tests, perf harness). Throws
/// std::invalid_argument when the backend is not supported.
[[nodiscard]] std::uint64_t AndPopcountPairsZeroCopyBackend(
    std::span<const PairRef> pairs, KernelBackend backend);

// ---------------------------------------------------------------------------
// Adaptive pair policy.
//
// Three ways to evaluate a gathered pair list, with measured crossovers
// (docs/KERNELS.md "Adaptive pair policy"):
//   kBatched  — memcpy into a PairArena, one span call per block. The
//               schema-v3 fix for per-pair dispatch; superseded as a
//               default by kZeroCopy, kept as a forced mode and as the
//               harness baseline.
//   kZeroCopy — descriptor list in place, prefetched, one dispatch
//               resolution. Measured ≥ batched at every (width, pairs)
//               cell: it keeps the same once-per-list dispatch
//               amortization while deleting the gather copy entirely.
//   kPerPair  — one full dispatch per pair (atomic backend load each
//               call). Never chosen per flush; the forced
//               counterfactual the perf harness gates against. The
//               pass-level ChooseDirectPairLoop rule routes one regime
//               here adaptively (cold no-reuse wide stores), where
//               immediate dispatch during enumeration beats any
//               deferred descriptor flush.

enum class PairPolicy : std::uint8_t {
  kBatched,   ///< arena gather + one span call per block
  kZeroCopy,  ///< in-place descriptors + prefetch, one resolution
  kPerPair,   ///< full dispatch per pair (counterfactual / forced only)
};

inline constexpr std::size_t kNumPairPolicies = 3;

/// Stable lowercase name ("batched", "zerocopy", "perpair") — the
/// TCIM_PAIR_POLICY vocabulary.
[[nodiscard]] const char* ToString(PairPolicy policy) noexcept;

/// Inverse of ToString; also accepts "zero_copy"/"zero-copy" and
/// "per_pair"/"per-pair". Returns nullopt for unknown names
/// (including "auto").
[[nodiscard]] std::optional<PairPolicy> ParsePairPolicy(
    std::string_view name) noexcept;

/// Crossover constants for ChoosePairPolicy. The defaults are derived
/// from the measured BENCH_kernels.json cells (schema v4, which times
/// all three paths per row): zero-copy matches or beats the batched
/// arena at EVERY (width, pair-count) cell — both paths resolve the
/// backend once per list, so the arena's memcpy is pure overhead
/// (3–15% end-to-end at |S|=64, up to 19% vs per-pair at the |S|=512
/// road rows). The default min-width of 1 therefore routes every
/// slice geometry zero-copy; the knobs remain so tests can pin the
/// crossover logic and ports to hardware where a contiguous stream
/// does beat gathered loads can re-open the batched window.
struct PairPolicyConfig {
  /// When set, every decision returns this policy (TCIM_PAIR_POLICY or
  /// SetActivePairPolicy) — the adaptive rule is bypassed entirely.
  std::optional<PairPolicy> forced;
  /// Slice widths ≥ this many words always route zero-copy.
  std::uint32_t zero_copy_min_width = 1;
  /// Pair lists shorter than this route zero-copy even at narrow
  /// widths — too few pairs to amortize the arena memcpy. Only
  /// reachable when zero_copy_min_width is raised above 1.
  std::size_t batched_min_pairs = 16;

  // Pass-level direct route (ChooseDirectPairLoop). One measured
  // regime defeats every gathered formulation: wide slices whose store
  // both spills the cache hierarchy AND has no slice reuse (sparse
  // near-uniform graphs — the roadNet |S|=512 rows). There every pair
  // is a cold DRAM touch, and dispatching it immediately during
  // enumeration lets out-of-order execution overlap the misses with
  // enumeration work — a deferred descriptor flush, even prefetched,
  // trails by ~5%. Hub-skewed stores of the same byte size
  // (com-youtube, com-lj) stay zero-copy: their reused slices are
  // cache-hot, and zero-copy wins 1.3–1.5x there. Thresholds
  // calibrated on the schema-v4 matrix; see docs/KERNELS.md.
  /// Direct route needs at least this slice width (words).
  std::uint32_t direct_min_width = 8;
  /// Direct route needs the pass's two stores to exceed this many
  /// heap bytes (default 32 MiB ≈ one LLC; sysconf reports
  /// socket-aggregate LLC on chiplet parts, so a fixed knob beats
  /// detection).
  std::uint64_t direct_min_store_bytes = 32ull << 20;
  /// Direct route needs average valid slices per vector at or below
  /// this (low ⇒ no reuse ⇒ cold stream; hub-skewed graphs sit
  /// well above it and keep the zero-copy win).
  double direct_max_avg_valid_slices = 1.6;
};

/// The adaptive decision for one flush batch of `pair_count` pairs of
/// `width_words`-word slices. Forced policy wins; otherwise wide or
/// short batches go zero-copy and everything else goes batched.
/// kPerPair is only ever returned when forced.
[[nodiscard]] PairPolicy ChoosePairPolicy(std::size_t width_words,
                                          std::size_t pair_count,
                                          const PairPolicyConfig& cfg) noexcept;

/// The pass-level adaptive decision made once per AndPopcountRows-style
/// sweep, before any gathering: true routes the whole pass through the
/// direct merge loop — immediate per-pair dispatch during enumeration,
/// no descriptor stream (counted as the per-pair path). Never true
/// when a policy is forced: forced modes pin the gathered executor so
/// baselines and tests exercise exactly the path they name.
/// `store_bytes` is the summed heap footprint of the two stores the
/// pass reads; `avg_valid_slices` is valid_slice_count()/num_vectors()
/// of the pivot-row store.
[[nodiscard]] bool ChooseDirectPairLoop(std::size_t width_words,
                                        std::uint64_t store_bytes,
                                        double avg_valid_slices,
                                        const PairPolicyConfig& cfg) noexcept;

/// The process-wide policy config: default crossover constants plus
/// the forced override resolved once from TCIM_PAIR_POLICY
/// (auto|batched|zerocopy|perpair; unknown values warn once and mean
/// auto) or set by SetActivePairPolicy.
[[nodiscard]] PairPolicyConfig ActivePairPolicy() noexcept;

/// Forces (or, with nullopt, un-forces) the process-wide policy —
/// tests and benches. Unlike backends there is no support gate: every
/// policy executes everywhere.
void SetActivePairPolicy(std::optional<PairPolicy> forced) noexcept;

/// Re-resolves the forced policy from TCIM_PAIR_POLICY (for tests that
/// setenv() after process start). Returns the new active config.
PairPolicyConfig RefreshPairPolicyFromEnv();

}  // namespace tcim::bit
