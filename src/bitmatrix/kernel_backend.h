// SIMD kernel backends for the Eq. (5) hot path.
//
// Every triangle the system counts funnels through the fused
// AND+BitCount span kernel (popcount.h). This header turns that kernel
// into a pluggable subsystem: each KernelBackend is one vectorization
// of Σ popcount(a[k] & b[k]) — bit-exact with the scalar loop, differing
// only in throughput. Backends are compile-time guarded (a binary only
// contains what its compiler can emit), runtime gated (CPUID feature
// detection picks the widest backend the machine executes), and
// process-wide switchable: a dispatch slot read by every hot-path call,
// overridable via the TCIM_KERNEL environment variable or
// SetActiveBackend() so tests and benches can force any backend.
//
// The hardware-model strategies (PopcountKind::kLut8 etc., used by
// pim::BitCounter to mirror the paper's §V-A LUT + adder tree) never
// route through this dispatch — they stay exact per-word models.
//
// Layer: §12 kernels — see docs/ARCHITECTURE.md and docs/KERNELS.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace tcim::bit {

/// One vectorization of the fused AND+popcount span kernel.
enum class KernelBackend : std::uint8_t {
  kScalar,         ///< per-word loop (hardware POPCNT when the CPU has it)
  kSwar64x4,       ///< 4-way unrolled SWAR, no special instructions
  kAvx2,           ///< AVX2 Harley–Seal CSA + byte-shuffle popcount
  kAvx512Vpopcnt,  ///< AVX-512 VPOPCNTDQ, 8 words per instruction
  kNeon,           ///< AArch64 NEON vcnt + horizontal add
};

inline constexpr std::size_t kNumKernelBackends = 5;

/// Stable lowercase name ("scalar", "swar64x4", "avx2",
/// "avx512vpopcnt", "neon") — the TCIM_KERNEL vocabulary.
[[nodiscard]] const char* ToString(KernelBackend backend) noexcept;

/// Inverse of ToString; also accepts the "swar" and "avx512" aliases.
/// Returns nullopt for unknown names (including "auto").
[[nodiscard]] std::optional<KernelBackend> ParseKernelBackend(
    std::string_view name) noexcept;

/// All enum values in declaration order (for sweeps).
[[nodiscard]] std::span<const KernelBackend> AllKernelBackends() noexcept;

/// The executable subset of AllKernelBackends() on this machine, in
/// declaration order — what parity tests and benches iterate.
[[nodiscard]] std::span<const KernelBackend> SupportedKernelBackends() noexcept;

/// True when this binary contains code for the backend (compile-time
/// guard: e.g. kNeon is never compiled into an x86 binary).
[[nodiscard]] bool BackendCompiledIn(KernelBackend backend) noexcept;

/// True when the kScalar backend executes the hardware POPCNT
/// instruction on this CPU. Whenever this holds, auto-dispatch must
/// never pick kSwar64x4: the SWAR reduction only earns its keep as the
/// fallback on machines without a popcount instruction.
[[nodiscard]] bool ScalarHasPopcntInstruction() noexcept;

/// True when the backend is compiled in *and* this CPU can execute it
/// (runtime feature detection). kScalar and kSwar64x4 are always
/// supported; they need nothing beyond baseline ISA.
[[nodiscard]] bool BackendSupported(KernelBackend backend) noexcept;

/// The widest supported backend — what auto-dispatch picks.
[[nodiscard]] KernelBackend BestSupportedBackend() noexcept;

/// The backend behind every PopcountKind::kBuiltin span call. Resolved
/// once per process: TCIM_KERNEL if set to a supported backend name
/// (unknown or unsupported values warn once on stderr and fall back),
/// otherwise BestSupportedBackend().
[[nodiscard]] KernelBackend ActiveBackend() noexcept;

/// Forces the process-wide dispatch to `backend` (tests/benches).
/// Throws std::invalid_argument when the backend is not supported on
/// this machine — forcing it would execute illegal instructions.
void SetActiveBackend(KernelBackend backend);

/// Re-resolves the active backend from TCIM_KERNEL (for tests that
/// setenv() after process start). Returns the new active backend.
KernelBackend RefreshActiveBackendFromEnv();

/// Σ popcount(a[k] & b[k]) over min(a.size(), b.size()) words with an
/// explicit backend, bypassing the process-wide dispatch — the entry
/// point for parity tests and the perf harness. Throws
/// std::invalid_argument when the backend is not supported.
[[nodiscard]] std::uint64_t AndPopcountBackend(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    KernelBackend backend);

/// Σ popcount(w[k]) with an explicit backend; same contract.
[[nodiscard]] std::uint64_t PopcountWordsBackend(
    std::span<const std::uint64_t> words, KernelBackend backend);

/// Hot-path dispatch through the active backend. No validation, no
/// span plumbing — popcount.cpp calls these for PopcountKind::kBuiltin.
/// `a`/`b`/`words` may be null only when n == 0.
[[nodiscard]] std::uint64_t AndPopcountActive(const std::uint64_t* a,
                                              const std::uint64_t* b,
                                              std::size_t n) noexcept;
[[nodiscard]] std::uint64_t PopcountWordsActive(const std::uint64_t* words,
                                                std::size_t n) noexcept;

// ---------------------------------------------------------------------------
// Batched pair kernel.
//
// A per-slice-pair AndPopcount call pays the full dispatch bill —
// atomic backend load, kind switch, SIMD prologue/epilogue — for a
// payload of 1–8 words, which is why the |S|=64 end-to-end numbers in
// the schema-v1 BENCH_kernels.json seed LOST to scalar on 13 of 18
// rows while the span kernel won 5x in isolation (see docs/KERNELS.md,
// "Dispatch cost and batching"). The batched form restores the
// microbenchmark economics: callers gather matched (row-slice,
// col-slice) word pairs into a PairArena and hand the whole block to
// AndPopcountPairs — ONE dispatch resolution per block, and because the
// two sides are stored as parallel contiguous word streams, pair
// boundaries vanish: Σ_pairs Σ_k popcount(a_k & b_k) is exactly the
// span kernel over the concatenation, so every backend amortizes its
// setup and reduction tree across thousands of pairs.

/// Reusable gather arena for the batched Eq. (5) kernel. Not
/// thread-safe; give each thread its own arena and reuse it across
/// batches (Clear() keeps the capacity).
class PairArena {
 public:
  /// Appends one matched pair: `width` words from `a` and `width`
  /// words from `b` (the words of one row slice and one column slice).
  void Push(const std::uint64_t* a, const std::uint64_t* b,
            std::size_t width) {
    if (size_ + width > a_.size()) Grow(size_ + width);
    std::memcpy(a_.data() + size_, a, width * sizeof(std::uint64_t));
    std::memcpy(b_.data() + size_, b, width * sizeof(std::uint64_t));
    size_ += width;
    ++pairs_;
  }

  /// Forgets the gathered pairs but keeps the allocation.
  void Clear() noexcept {
    size_ = 0;
    pairs_ = 0;
  }

  /// Pre-sizes the backing blocks (optional; Push grows on demand).
  void Reserve(std::size_t words) {
    if (words > a_.size()) Grow(words);
  }

  [[nodiscard]] bool Empty() const noexcept { return size_ == 0; }
  /// Gathered words per side (Σ width over pairs).
  [[nodiscard]] std::size_t word_count() const noexcept { return size_; }
  /// Number of Push calls since the last Clear — the "valid pairs"
  /// accounting of the gathered block.
  [[nodiscard]] std::size_t pair_count() const noexcept { return pairs_; }

  /// The two contiguous word blocks (equal length word_count()).
  [[nodiscard]] std::span<const std::uint64_t> a() const noexcept {
    return {a_.data(), size_};
  }
  [[nodiscard]] std::span<const std::uint64_t> b() const noexcept {
    return {b_.data(), size_};
  }

 private:
  void Grow(std::size_t need);

  std::vector<std::uint64_t> a_;
  std::vector<std::uint64_t> b_;
  std::size_t size_ = 0;
  std::size_t pairs_ = 0;
};

/// Σ popcount(a & b) over every pair gathered in `arena`, evaluated by
/// the active backend with one dispatch resolution for the whole
/// block — the batched Eq. (5) hot path.
[[nodiscard]] std::uint64_t AndPopcountPairs(const PairArena& arena) noexcept;

/// Same with an explicit backend (parity tests, perf harness). Throws
/// std::invalid_argument when the backend is not supported.
[[nodiscard]] std::uint64_t AndPopcountPairsBackend(const PairArena& arena,
                                                    KernelBackend backend);

}  // namespace tcim::bit
