#include "bitmatrix/sliced_matrix.h"

#include <stdexcept>

#include "bitmatrix/kernel_backend.h"

namespace tcim::bit {

SlicedMatrix SlicedMatrix::FromCsr(std::uint32_t num_vertices,
                                   std::span<const std::uint64_t> offsets,
                                   std::span<const std::uint32_t> neighbors,
                                   std::uint32_t slice_bits) {
  SlicedMatrix m;
  m.rows_ = SlicedStore::FromCsr(num_vertices, num_vertices, offsets,
                                 neighbors, slice_bits);

  // Transpose by counting sort: bucket each arc (i -> j) under j.
  // Iterating i in increasing order keeps every bucket sorted by i,
  // which FromCsr requires.
  std::vector<std::uint64_t> col_offsets(
      static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const std::uint32_t j : neighbors) {
    if (j >= num_vertices) {
      throw std::invalid_argument("SlicedMatrix: neighbor out of range");
    }
    ++col_offsets[static_cast<std::size_t>(j) + 1];
  }
  for (std::uint32_t v = 0; v < num_vertices; ++v) {
    col_offsets[v + 1] += col_offsets[v];
  }
  std::vector<std::uint32_t> col_sources(neighbors.size());
  std::vector<std::uint64_t> cursor(col_offsets.begin(),
                                    col_offsets.end() - 1);
  for (std::uint32_t i = 0; i < num_vertices; ++i) {
    for (std::uint64_t e = offsets[i]; e < offsets[i + 1]; ++e) {
      const std::uint32_t j = neighbors[e];
      col_sources[cursor[j]++] = i;
    }
  }
  m.cols_ = SlicedStore::FromCsr(num_vertices, num_vertices, col_offsets,
                                 col_sources, slice_bits);
  return m;
}

MatrixPatchStats SlicedMatrix::ApplyArcEdits(std::span<const ArcEdit> edits,
                                             std::uint32_t new_num_vertices) {
  std::vector<SliceEdit> row_edits;
  std::vector<SliceEdit> col_edits;
  row_edits.reserve(edits.size());
  col_edits.reserve(edits.size());
  for (const ArcEdit& edit : edits) {
    row_edits.push_back(SliceEdit{edit.from, edit.to, edit.set});
    col_edits.push_back(SliceEdit{edit.to, edit.from, edit.set});
  }
  MatrixPatchStats stats;
  // The row store validates the whole batch before mutating; once it
  // accepts, the mirrored column batch cannot fail (the stores encode
  // the same matrix), so the two stores move together or not at all.
  stats.rows = rows_.ApplyEdits(row_edits, new_num_vertices, new_num_vertices);
  stats.cols = cols_.ApplyEdits(col_edits, new_num_vertices, new_num_vertices);
  return stats;
}

namespace {

// Flush granularity of the Eq. (5) gather: 2 Ki words = 16 KiB per
// side keeps a batched block L1-resident (the regime where the span
// kernel's SIMD advantage peaks) while still amortizing one backend
// dispatch over hundreds-to-thousands of slice pairs. The zero-copy
// path flushes at the same boundary so the adaptive decision sees
// comparable batch sizes on every route.
constexpr std::size_t kGatherFlushWords = std::size_t{1} << 11;

// Adaptive Eq. (5) pair stream: valid slice pairs are always gathered
// as in-place (a, b, width) descriptors first — a descriptor is 20
// bytes regardless of slice width, so enumeration itself copies no
// slice words — and each flush batch picks its kernel path from the
// measured policy crossovers (zero-copy descriptors at every default
// cell; batched arena and per-pair dispatch reachable via forced
// policy or a raised zero_copy_min_width).
class PairStreamExecutor {
 public:
  PairStreamExecutor(std::size_t width, PairPathCounters* counters)
      : width_(width), cfg_(ActivePairPolicy()), counters_(counters) {
    const std::size_t max_pairs = kGatherFlushWords / (width == 0 ? 1 : width);
    refs_.reserve(max_pairs + 1);
  }

  void Push(const std::uint64_t* a, const std::uint64_t* b) {
#if defined(__GNUC__) || defined(__clang__)
    // Start the pair's lines toward L2 now: enumeration runs hundreds
    // of cycles ahead of the flush that consumes them, which is the
    // prefetch distance a DRAM-resident |S|=512 store needs (the flush
    // loop's own lookahead only hides L2/L3 latency). Locality hint 2
    // (L2, not L1) — a full flush window of wide pairs overflows L1.
    __builtin_prefetch(a, 0, 2);
    __builtin_prefetch(b, 0, 2);
    if (width_ > 1) {
      __builtin_prefetch(a + width_ - 1, 0, 2);
      __builtin_prefetch(b + width_ - 1, 0, 2);
    }
#endif
    refs_.push_back(PairRef{a, b, static_cast<std::uint32_t>(width_)});
    words_ += width_;
  }

  [[nodiscard]] bool ShouldFlush() const noexcept {
    return words_ >= kGatherFlushWords;
  }

  void Flush(std::uint64_t& total) {
    if (refs_.empty()) return;
    switch (ChoosePairPolicy(width_, refs_.size(), cfg_)) {
      case PairPolicy::kBatched:
        arena_.Reserve(words_);
        for (const PairRef& ref : refs_) {
          arena_.Push(ref.a, ref.b, ref.words);
        }
        total += AndPopcountPairs(arena_);
        arena_.Clear();
        if (counters_ != nullptr) {
          counters_->batched_pairs += refs_.size();
          ++counters_->batched_flushes;
        }
        break;
      case PairPolicy::kZeroCopy:
        total += AndPopcountPairsZeroCopy(refs_);
        if (counters_ != nullptr) {
          counters_->zero_copy_pairs += refs_.size();
          ++counters_->zero_copy_flushes;
        }
        break;
      case PairPolicy::kPerPair:
        // The legacy counterfactual: every pair pays the full dispatch
        // (atomic backend load + call) — what the adaptive policy is
        // measured against, reachable only by forcing.
        for (const PairRef& ref : refs_) {
          total += AndPopcountActive(ref.a, ref.b, ref.words);
        }
        if (counters_ != nullptr) counters_->per_pair_pairs += refs_.size();
        break;
    }
    refs_.clear();
    words_ = 0;
  }

 private:
  std::size_t width_;
  PairPolicyConfig cfg_;
  PairPathCounters* counters_;
  std::vector<PairRef> refs_;
  PairArena arena_;
  std::size_t words_ = 0;
};

}  // namespace

std::uint64_t SlicedMatrix::AndPopcountAllEdges(
    PopcountKind kind, PairPathCounters* counters) const {
  return AndPopcountRows(0, num_vertices(), kind, counters);
}

std::uint64_t SlicedMatrix::AndPopcountRows(std::uint32_t row_begin,
                                            std::uint32_t row_end,
                                            PopcountKind kind,
                                            PairPathCounters* counters) const {
  if (row_begin > row_end || row_end > num_vertices()) {
    throw std::out_of_range("SlicedMatrix::AndPopcountRows: invalid range");
  }
  std::uint64_t total = 0;
  if (kind != PopcountKind::kBuiltin) {
    // Hardware-model strategies (kSwar/kLut8/kLut16) keep the exact
    // per-word per-pair loop — they model structure, not throughput.
    for (std::uint32_t i = row_begin; i < row_end; ++i) {
      rows_.ForEachSetBit(i, [&](std::uint64_t j64) {
        const auto j = static_cast<std::uint32_t>(j64);
        ForEachValidPair(i, j, [&](std::uint32_t /*slice*/, std::size_t ra,
                                   std::size_t cb) {
          total += AndPopcount(rows_.SliceWords(i, ra),
                               cols_.SliceWords(j, cb), kind);
        });
      });
    }
    return total;
  }

  const std::size_t width = rows_.words_per_slice();

  // Pass-level adaptive escape hatch: a wide-slice store that spills
  // the cache AND has no slice reuse (sparse near-uniform graphs) is a
  // pure cold stream — dispatching each pair immediately during
  // enumeration lets the OoO window overlap the DRAM misses with
  // enumeration work, which a deferred descriptor flush cannot match
  // even with prefetch. Hub-skewed stores keep the gathered zero-copy
  // path (their reused slices are cache-hot). See ChooseDirectPairLoop.
  if (rows_.num_vectors() > 0 &&
      ChooseDirectPairLoop(
          width, rows_.HeapBytes() + cols_.HeapBytes(),
          static_cast<double>(rows_.valid_slice_count()) /
              static_cast<double>(rows_.num_vectors()),
          ActivePairPolicy())) {
    std::size_t pairs = 0;
    for (std::uint32_t i = row_begin; i < row_end; ++i) {
      rows_.ForEachSetBit(i, [&](std::uint64_t j64) {
        const auto j = static_cast<std::uint32_t>(j64);
        ForEachValidPair(i, j, [&](std::uint32_t /*slice*/, std::size_t ra,
                                   std::size_t cb) {
          const std::span<const std::uint64_t> a = rows_.SliceWords(i, ra);
          const std::span<const std::uint64_t> b = cols_.SliceWords(j, cb);
          total += AndPopcountActive(a.data(), b.data(), a.size());
          ++pairs;
        });
      });
    }
    if (counters != nullptr) counters->per_pair_pairs += pairs;
    return total;
  }

  // Adaptive host path: one gather pass per pivot row — the row's
  // valid slices are indexed ONCE into a sparse lookup table (the
  // §IV-A row-reuse idea on the host), so each edge pays O(|Cj|)
  // lookups instead of re-merging the row's whole valid-slice list;
  // every matched pair lands as a zero-copy descriptor, and each flush
  // batch routes through the policy-chosen kernel path.
  PairStreamExecutor exec(width, counters);
  // row_ordinal_of_slice[k] = ordinal of slice k within the current
  // pivot row, or -1. Only the row's own entries are ever written and
  // reset, so the table costs O(|Ri|) per row after one O(slots) init.
  std::vector<std::int32_t> row_ordinal_of_slice(
      static_cast<std::size_t>(rows_.slices_per_vector()), -1);
  for (std::uint32_t i = row_begin; i < row_end; ++i) {
    const SlicedStore::VectorSlices row = rows_.Slices(i);
    if (row.indices.empty()) continue;
    for (std::size_t a = 0; a < row.indices.size(); ++a) {
      row_ordinal_of_slice[row.indices[a]] = static_cast<std::int32_t>(a);
    }
    rows_.ForEachSetBit(i, [&](std::uint64_t j64) {
      const auto j = static_cast<std::uint32_t>(j64);
      // Column j holds bit i (the arc exists), so it has valid slices.
      const SlicedStore::VectorSlices col = cols_.Slices(j);
      for (std::size_t b = 0; b < col.indices.size(); ++b) {
        const std::int32_t a = row_ordinal_of_slice[col.indices[b]];
        if (a >= 0) {
          exec.Push(row.words + static_cast<std::size_t>(a) * width,
                    col.words + b * width);
        }
      }
      // Flush per edge, not per row: a single hub row can gather far
      // past the L1 budget otherwise (pair boundaries don't affect
      // the sum, so flushing mid-row is safe).
      if (exec.ShouldFlush()) exec.Flush(total);
    });
    for (const std::uint32_t slice : row.indices) {
      row_ordinal_of_slice[slice] = -1;
    }
  }
  exec.Flush(total);
  return total;
}

std::uint64_t SlicedMatrix::AndPopcountRect(
    std::uint32_t row_begin, std::uint32_t row_end, std::uint32_t col_begin,
    std::uint32_t col_end, const std::uint8_t* col_mask, bool mask_value,
    const SlicedStore* cols_override, PopcountKind kind,
    PairPathCounters* counters) const {
  if (row_begin > row_end || row_end > num_vertices() ||
      col_begin > col_end || col_end > num_vertices()) {
    throw std::out_of_range("SlicedMatrix::AndPopcountRect: invalid range");
  }
  const SlicedStore& cols = cols_override != nullptr ? *cols_override : cols_;
  if (cols_override != nullptr &&
      (cols.slice_bits() != slice_bits() ||
       cols.num_vectors() != cols_.num_vectors())) {
    throw std::invalid_argument(
        "SlicedMatrix::AndPopcountRect: cols_override shape mismatch");
  }
  const auto keep = [&](std::uint32_t j) {
    return col_mask == nullptr || (col_mask[j] != 0) == mask_value;
  };
  std::uint64_t total = 0;
  if (kind != PopcountKind::kBuiltin) {
    // Hardware-model strategies keep the exact per-word per-pair loop
    // (merging against `cols`, which may be the replica store).
    for (std::uint32_t i = row_begin; i < row_end; ++i) {
      rows_.ForEachSetBitInRange(i, col_begin, col_end, [&](std::uint64_t j64) {
        const auto j = static_cast<std::uint32_t>(j64);
        if (!keep(j)) return;
        const std::span<const std::uint32_t> ri = rows_.SliceIndices(i);
        const std::span<const std::uint32_t> cj = cols.SliceIndices(j);
        std::size_t a = 0;
        std::size_t b = 0;
        while (a < ri.size() && b < cj.size()) {
          if (ri[a] < cj[b]) {
            ++a;
          } else if (ri[a] > cj[b]) {
            ++b;
          } else {
            total += AndPopcount(rows_.SliceWords(i, a), cols.SliceWords(j, b),
                                 kind);
            ++a;
            ++b;
          }
        }
      });
    }
    return total;
  }

  // Adaptive host path — same shape as AndPopcountRows, with the arc
  // enumeration restricted to the rectangle/mask and the column
  // lookups routed through `cols`.
  const std::size_t width = rows_.words_per_slice();
  PairStreamExecutor exec(width, counters);
  std::vector<std::int32_t> row_ordinal_of_slice(
      static_cast<std::size_t>(rows_.slices_per_vector()), -1);
  for (std::uint32_t i = row_begin; i < row_end; ++i) {
    const SlicedStore::VectorSlices row = rows_.Slices(i);
    if (row.indices.empty()) continue;
    for (std::size_t a = 0; a < row.indices.size(); ++a) {
      row_ordinal_of_slice[row.indices[a]] = static_cast<std::int32_t>(a);
    }
    rows_.ForEachSetBitInRange(i, col_begin, col_end, [&](std::uint64_t j64) {
      const auto j = static_cast<std::uint32_t>(j64);
      if (!keep(j)) return;
      const SlicedStore::VectorSlices col = cols.Slices(j);
      for (std::size_t b = 0; b < col.indices.size(); ++b) {
        const std::int32_t a = row_ordinal_of_slice[col.indices[b]];
        if (a >= 0) {
          exec.Push(row.words + static_cast<std::size_t>(a) * width,
                    col.words + b * width);
        }
      }
      if (exec.ShouldFlush()) exec.Flush(total);
    });
    for (const std::uint32_t slice : row.indices) {
      row_ordinal_of_slice[slice] = -1;
    }
  }
  exec.Flush(total);
  return total;
}

SliceStats SlicedMatrix::ComputeStats() const {
  SliceStats stats;
  stats.slice_bits = slice_bits();
  stats.row_valid_slices = rows_.valid_slice_count();
  stats.col_valid_slices = cols_.valid_slice_count();
  stats.row_slice_slots = rows_.total_slice_slots();
  stats.col_slice_slots = cols_.total_slice_slots();

  std::vector<bool> row_touched(rows_.valid_slice_count(), false);
  std::vector<bool> col_touched(cols_.valid_slice_count(), false);

  const std::uint32_t n = num_vertices();
  const std::uint64_t per_vector = rows_.slices_per_vector();
  for (std::uint32_t i = 0; i < n; ++i) {
    rows_.ForEachSetBit(i, [&](std::uint64_t j64) {
      const auto j = static_cast<std::uint32_t>(j64);
      ++stats.edges;
      stats.total_pairs += per_vector;
      ForEachValidPair(i, j, [&](std::uint32_t /*slice*/, std::size_t ra,
                                 std::size_t cb) {
        ++stats.valid_pairs;
        row_touched[rows_.GlobalOrdinal(i, ra)] = true;
        col_touched[cols_.GlobalOrdinal(j, cb)] = true;
      });
    });
  }
  for (const bool t : row_touched) stats.touched_row_slices += t ? 1 : 0;
  for (const bool t : col_touched) stats.touched_col_slices += t ? 1 : 0;
  return stats;
}

}  // namespace tcim::bit
