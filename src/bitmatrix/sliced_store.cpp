#include "bitmatrix/sliced_store.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tcim::bit {

namespace {

// Slab index / local vector index of a global vector id.
constexpr std::size_t SlabOf(std::uint32_t v) noexcept {
  return static_cast<std::size_t>(v) >> SlicedStore::kSlabVectorShift;
}
constexpr std::uint32_t LocalOf(std::uint32_t v) noexcept {
  return v & (SlicedStore::kSlabVectors - 1);
}
constexpr std::size_t SlabCountFor(std::uint32_t num_vectors) noexcept {
  return (static_cast<std::size_t>(num_vectors) + SlicedStore::kSlabVectors -
          1) >>
         SlicedStore::kSlabVectorShift;
}

}  // namespace

StoreMetrics& StoreMetrics::Get() {
  static StoreMetrics* metrics = [] {
    obs::Registry& reg = obs::Registry::Global();
    return new StoreMetrics{
        reg.GetCounter("store.apply.batches_total"),
        reg.GetCounter("store.apply.bits_patched_total"),
        reg.GetCounter("store.apply.slices_inserted_total"),
        reg.GetCounter("store.apply.slices_removed_total"),
        reg.GetCounter("store.apply.slabs_cow_cloned_total"),
        reg.GetCounter("store.apply.recompactions_total"),
    };
  }();
  return *metrics;
}

std::shared_ptr<SlicedStore::Slab> SlicedStore::MakeEmptySlab() {
  auto slab = std::make_shared<Slab>();
  slab->offsets.assign(kSlabVectors + 1, 0);
  return slab;
}

SlicedStore::Slab& SlicedStore::WritableSlab(std::size_t s,
                                             PatchStats& stats) {
  std::shared_ptr<Slab>& slot = slabs_[s];
  // use_count() is racy in general but exact here: the thread-safety
  // contract serializes ApplyEdits against copy construction of this
  // object, and already-published copies only ever *drop* references.
  if (slot.use_count() != 1) {
    slot = std::make_shared<Slab>(*slot);
    ++stats.slabs_cow_cloned;
  }
  return *slot;
}

SlicedStore SlicedStore::FromCsr(std::uint32_t num_vectors,
                                 std::uint64_t universe,
                                 std::span<const std::uint64_t> offsets,
                                 std::span<const std::uint32_t> positions,
                                 std::uint32_t slice_bits) {
  if (slice_bits == 0 || slice_bits > 512) {
    throw std::invalid_argument("SlicedStore: slice_bits must be in [1,512]");
  }
  if (offsets.size() != static_cast<std::size_t>(num_vectors) + 1) {
    throw std::invalid_argument("SlicedStore: offsets size mismatch");
  }
  if (!offsets.empty() &&
      (offsets.front() != 0 || offsets.back() != positions.size())) {
    throw std::invalid_argument("SlicedStore: offsets must span positions");
  }

  SlicedStore store;
  store.num_vectors_ = num_vectors;
  store.universe_ = universe;
  store.slice_bits_ = slice_bits;
  store.words_per_slice_ = (slice_bits + 63) / 64;
  store.slices_per_vector_ =
      universe == 0 ? 0 : (universe + slice_bits - 1) / slice_bits;

  // Pass 1: validate and count valid slices per vector.
  std::vector<std::uint64_t> valid_per_vector(num_vectors, 0);
  for (std::uint32_t v = 0; v < num_vectors; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      throw std::invalid_argument("SlicedStore: offsets not monotone");
    }
    std::uint64_t prev_slice = ~0ULL;
    std::uint64_t prev_pos = ~0ULL;
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t pos = positions[e];
      if (pos >= universe) {
        throw std::invalid_argument("SlicedStore: position out of universe");
      }
      if (prev_pos != ~0ULL && pos <= prev_pos) {
        throw std::invalid_argument(
            "SlicedStore: positions must be strictly increasing per vector");
      }
      prev_pos = pos;
      const std::uint64_t s = pos / slice_bits;
      if (s != prev_slice) {
        ++valid_per_vector[v];
        prev_slice = s;
      }
    }
  }

  // Pass 2: materialize one slab per kSlabVectors vectors.
  const std::size_t num_slabs = SlabCountFor(num_vectors);
  store.slabs_.reserve(num_slabs);
  store.slab_base_.assign(num_slabs + 1, 0);
  for (std::size_t s = 0; s < num_slabs; ++s) {
    auto slab = MakeEmptySlab();
    const std::uint32_t base_v =
        static_cast<std::uint32_t>(s << kSlabVectorShift);
    std::uint64_t slab_valid = 0;
    for (std::uint32_t lv = 0; lv < kSlabVectors; ++lv) {
      const std::uint32_t v = base_v + lv;
      if (v < num_vectors) slab_valid += valid_per_vector[v];
      slab->offsets[lv + 1] = slab_valid;
    }
    slab->indices.assign(slab_valid, 0);
    slab->words.assign(slab_valid * store.words_per_slice_, 0);
    for (std::uint32_t lv = 0; lv < kSlabVectors; ++lv) {
      const std::uint32_t v = base_v + lv;
      if (v >= num_vectors) break;
      std::uint64_t cursor = slab->offsets[lv];
      std::uint64_t prev_slice = ~0ULL;
      for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        const std::uint64_t pos = positions[e];
        const std::uint64_t sl = pos / slice_bits;
        if (sl != prev_slice) {
          slab->indices[cursor] = static_cast<std::uint32_t>(sl);
          prev_slice = sl;
          ++cursor;
        }
        const std::uint64_t in_slice = pos % slice_bits;
        const std::uint64_t word_base = (cursor - 1) * store.words_per_slice_;
        slab->words[word_base + in_slice / 64] |= 1ULL << (in_slice % 64);
      }
    }
    store.slab_base_[s + 1] = store.slab_base_[s] + slab_valid;
    store.slabs_.push_back(std::move(slab));
  }
  return store;
}

std::uint64_t SlicedStore::set_bit_count() const noexcept {
  std::uint64_t total = 0;
  for (const std::shared_ptr<Slab>& slab : slabs_) {
    total += PopcountWords(slab->words, PopcountKind::kBuiltin);
  }
  return total;
}

std::size_t SlicedStore::SliceCount(std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceCount: vector out of range");
  }
  const Slab& slab = *slabs_[SlabOf(v)];
  const std::uint32_t lv = LocalOf(v);
  return static_cast<std::size_t>(slab.offsets[lv + 1] - slab.offsets[lv]);
}

std::span<const std::uint32_t> SlicedStore::SliceIndices(
    std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceIndices: vector out of range");
  }
  return Slices(v).indices;
}

std::span<const std::uint64_t> SlicedStore::SliceWords(
    std::uint32_t v, std::size_t ordinal) const {
  const VectorSlices vs = Slices(v);
  if (ordinal >= vs.indices.size()) {
    throw std::out_of_range("SlicedStore::SliceWords: ordinal out of range");
  }
  return {vs.words + ordinal * words_per_slice_, words_per_slice_};
}

std::uint64_t SlicedStore::GlobalOrdinal(std::uint32_t v,
                                         std::size_t ordinal) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: vector out of range");
  }
  const std::size_t s = SlabOf(v);
  const Slab& slab = *slabs_[s];
  const std::uint32_t lv = LocalOf(v);
  const std::uint64_t local = slab.offsets[lv] + ordinal;
  if (local >= slab.offsets[lv + 1]) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: ordinal out of range");
  }
  return slab_base_[s] + local;
}

bool SlicedStore::TestBit(std::uint32_t v, std::uint64_t position) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::TestBit: vector out of range");
  }
  if (position >= universe_) return false;
  const std::uint32_t slice =
      static_cast<std::uint32_t>(position / slice_bits_);
  const VectorSlices vs = Slices(v);
  const auto it = std::lower_bound(vs.indices.begin(), vs.indices.end(), slice);
  if (it == vs.indices.end() || *it != slice) return false;
  const std::uint64_t k =
      static_cast<std::uint64_t>(it - vs.indices.begin());
  const std::uint64_t in_slice = position % slice_bits_;
  return (vs.words[k * words_per_slice_ + in_slice / 64] >>
          (in_slice % 64)) &
         1ULL;
}

PatchStats SlicedStore::ApplyEdits(std::span<const SliceEdit> edits,
                                   std::uint32_t new_num_vectors,
                                   std::uint64_t new_universe) {
  if (new_num_vectors < num_vectors_ || new_universe < universe_) {
    throw std::invalid_argument("SlicedStore::ApplyEdits: cannot shrink");
  }
  PatchStats stats;
  const bool grows =
      new_num_vectors != num_vectors_ || new_universe != universe_;
  if (edits.empty() && !grows) return stats;

  // Order edits by (vector, slice, position) so one walk sees each
  // affected slice's edits contiguously; duplicates become adjacent.
  std::vector<SliceEdit> sorted(edits.begin(), edits.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SliceEdit& x, const SliceEdit& y) {
              return x.vector != y.vector ? x.vector < y.vector
                                          : x.position < y.position;
            });
  for (std::size_t e = 0; e < sorted.size(); ++e) {
    if (sorted[e].vector >= new_num_vectors ||
        sorted[e].position >= new_universe) {
      throw std::invalid_argument("SlicedStore::ApplyEdits: edit out of range");
    }
    if (e > 0 && sorted[e].vector == sorted[e - 1].vector &&
        sorted[e].position == sorted[e - 1].position) {
      throw std::invalid_argument(
          "SlicedStore::ApplyEdits: duplicate edit for one (vector, position)");
    }
  }

  // Classification pass — read-only, so an invalid batch throws before
  // the store (or any published copy's view of it) changes. Per slab,
  // decide whether its edits force a structural rebuild (a slice
  // becoming valid or empty) or stay pure in-place word flips; also
  // validates that every edit is a real flip.
  const std::size_t new_slab_count = SlabCountFor(new_num_vectors);
  std::vector<unsigned char> structural_slab(new_slab_count, 0);
  std::vector<std::uint64_t> scratch(words_per_slice_);
  std::size_t e = 0;
  while (e < sorted.size()) {
    const std::uint32_t v = sorted[e].vector;
    const std::uint32_t slice =
        static_cast<std::uint32_t>(sorted[e].position / slice_bits_);
    bool valid = false;
    std::uint64_t k = 0;
    VectorSlices vs{};
    if (v < num_vectors_) {
      vs = Slices(v);
      const auto it =
          std::lower_bound(vs.indices.begin(), vs.indices.end(), slice);
      if (it != vs.indices.end() && *it == slice) {
        valid = true;
        k = static_cast<std::uint64_t>(it - vs.indices.begin());
      }
    }
    if (valid) {
      std::copy_n(vs.words + k * words_per_slice_, words_per_slice_,
                  scratch.begin());
    } else {
      std::fill(scratch.begin(), scratch.end(), 0);
    }
    for (; e < sorted.size() && sorted[e].vector == v &&
           sorted[e].position / slice_bits_ == slice;
         ++e) {
      const std::uint64_t in_slice = sorted[e].position % slice_bits_;
      const std::uint64_t mask = 1ULL << (in_slice % 64);
      std::uint64_t& word = scratch[in_slice / 64];
      if (((word & mask) != 0) == sorted[e].set) {
        throw std::invalid_argument(
            "SlicedStore::ApplyEdits: edit is not a flip (store and caller "
            "bookkeeping diverged)");
      }
      word ^= mask;
    }
    const bool now_empty =
        std::all_of(scratch.begin(), scratch.end(),
                    [](std::uint64_t w) { return w == 0; });
    if (!valid || now_empty) {
      structural_slab[SlabOf(v)] = 1;
    }
  }

  // Mutation phase. Growth first: new vectors start empty, and thanks
  // to the trailing-repeat offsets invariant the existing final slab
  // absorbs them without a rebuild; fresh slabs are appended empty.
  if (grows) {
    num_vectors_ = new_num_vectors;
    universe_ = new_universe;
    slices_per_vector_ =
        new_universe == 0 ? 0 : (new_universe + slice_bits_ - 1) / slice_bits_;
    while (slabs_.size() < new_slab_count) slabs_.push_back(MakeEmptySlab());
  }

  // Walk the (vector-sorted) edits one slab group at a time.
  e = 0;
  bool any_structural = false;
  while (e < sorted.size()) {
    const std::size_t s = SlabOf(sorted[e].vector);
    std::size_t group_end = e;
    while (group_end < sorted.size() && SlabOf(sorted[group_end].vector) == s) {
      ++group_end;
    }
    ++stats.slabs_touched;

    if (!structural_slab[s]) {
      // In-place path: every edit in this slab flips a bit inside a
      // slice that stays valid — patch words directly, no realloc.
      Slab& slab = WritableSlab(s, stats);
      for (; e < group_end; ++e) {
        const SliceEdit& edit = sorted[e];
        const std::uint32_t lv = LocalOf(edit.vector);
        const std::uint32_t slice =
            static_cast<std::uint32_t>(edit.position / slice_bits_);
        const auto begin = slab.indices.begin() +
                           static_cast<std::ptrdiff_t>(slab.offsets[lv]);
        const auto end = slab.indices.begin() +
                         static_cast<std::ptrdiff_t>(slab.offsets[lv + 1]);
        const auto it = std::lower_bound(begin, end, slice);
        const std::uint64_t global = static_cast<std::uint64_t>(
            it - slab.indices.begin());
        const std::uint64_t in_slice = edit.position % slice_bits_;
        slab.words[global * words_per_slice_ + in_slice / 64] ^=
            1ULL << (in_slice % 64);
        ++stats.bits_patched;
      }
      continue;
    }

    // Structural path: rebuild just this slab by merging its old
    // slices with the edit groups, in slice order per vector. A shared
    // slab is not cloned first — the rebuilt arrays replace the
    // pointer wholesale and the old slab stays alive for its other
    // owners (that replacement IS the copy-on-write cost).
    any_structural = true;
    const std::shared_ptr<Slab> old = slabs_[s];
    if (old.use_count() > 2) ++stats.slabs_cow_cloned;  // `old` + slabs_[s]
    Slab fresh;
    fresh.offsets.assign(kSlabVectors + 1, 0);
    fresh.indices.reserve(old->indices.size() + (group_end - e));
    fresh.words.reserve(old->words.size() +
                        (group_end - e) * words_per_slice_);
    const std::uint32_t base_v =
        static_cast<std::uint32_t>(s << kSlabVectorShift);
    for (std::uint32_t lv = 0; lv < kSlabVectors; ++lv) {
      const std::uint32_t v = base_v + lv;
      std::uint64_t o = old->offsets[lv];
      const std::uint64_t old_end = old->offsets[lv + 1];
      while (o < old_end || (e < group_end && sorted[e].vector == v)) {
        const std::uint32_t old_slice =
            o < old_end ? old->indices[o] : ~std::uint32_t{0};
        const std::uint32_t edit_slice =
            (e < group_end && sorted[e].vector == v)
                ? static_cast<std::uint32_t>(sorted[e].position / slice_bits_)
                : ~std::uint32_t{0};
        const std::uint32_t slice = std::min(old_slice, edit_slice);
        if (old_slice == slice) {
          std::copy_n(old->words.begin() +
                          static_cast<std::ptrdiff_t>(o * words_per_slice_),
                      words_per_slice_, scratch.begin());
          ++o;
        } else {
          std::fill(scratch.begin(), scratch.end(), 0);
        }
        std::uint64_t slice_edits = 0;
        for (; e < group_end && sorted[e].vector == v &&
               sorted[e].position / slice_bits_ == slice;
             ++e) {
          const std::uint64_t in_slice = sorted[e].position % slice_bits_;
          scratch[in_slice / 64] ^= 1ULL << (in_slice % 64);
          ++slice_edits;
        }
        const bool now_empty =
            std::all_of(scratch.begin(), scratch.end(),
                        [](std::uint64_t w) { return w == 0; });
        if (now_empty) {
          ++stats.slices_removed;  // old slice emptied (fresh ones can't)
          continue;
        }
        if (old_slice != slice) {
          ++stats.slices_inserted;
        } else {
          stats.bits_patched += slice_edits;
        }
        fresh.indices.push_back(slice);
        fresh.words.insert(fresh.words.end(), scratch.begin(), scratch.end());
      }
      fresh.offsets[lv + 1] = fresh.indices.size();
    }
    slabs_[s] = std::make_shared<Slab>(std::move(fresh));
  }

  stats.rebuilt = any_structural || grows;

  // Refresh the global-ordinal prefix sums (touched slabs may have
  // changed their valid-slice counts; growth may have added slabs).
  slab_base_.assign(slabs_.size() + 1, 0);
  for (std::size_t s = 0; s < slabs_.size(); ++s) {
    slab_base_[s + 1] = slab_base_[s] + slabs_[s]->indices.size();
  }

  // Registry accounting: once per batch, never per edit.
  StoreMetrics& metrics = StoreMetrics::Get();
  metrics.apply_batches.Increment();
  metrics.bits_patched.Add(stats.bits_patched);
  metrics.slices_inserted.Add(stats.slices_inserted);
  metrics.slices_removed.Add(stats.slices_removed);
  metrics.slabs_cow_cloned.Add(stats.slabs_cow_cloned);
  if (stats.rebuilt) metrics.recompactions.Increment();
  return stats;
}

std::size_t GatherValidPairs(const SlicedStore& a, std::uint32_t va,
                             const SlicedStore& b, std::uint32_t vb,
                             PairArena& arena) {
  if (a.slice_bits() != b.slice_bits()) {
    throw std::invalid_argument(
        "GatherValidPairs: stores disagree on slice_bits");
  }
  const SlicedStore::VectorSlices sa = a.Slices(va);
  const SlicedStore::VectorSlices sb = b.Slices(vb);
  if (sa.indices.empty() || sb.indices.empty()) return 0;
  const std::size_t width = a.words_per_slice();
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t appended = 0;
  while (x < sa.indices.size() && y < sb.indices.size()) {
    if (sa.indices[x] < sb.indices[y]) {
      ++x;
    } else if (sa.indices[x] > sb.indices[y]) {
      ++y;
    } else {
      arena.Push(sa.words + x * width, sb.words + y * width, width);
      ++appended;
      ++x;
      ++y;
    }
  }
  return appended;
}

std::size_t GatherValidPairRefs(const SlicedStore& a, std::uint32_t va,
                                const SlicedStore& b, std::uint32_t vb,
                                std::vector<PairRef>& refs) {
  if (a.slice_bits() != b.slice_bits()) {
    throw std::invalid_argument(
        "GatherValidPairRefs: stores disagree on slice_bits");
  }
  const SlicedStore::VectorSlices sa = a.Slices(va);
  const SlicedStore::VectorSlices sb = b.Slices(vb);
  if (sa.indices.empty() || sb.indices.empty()) return 0;
  const std::size_t width = a.words_per_slice();
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t appended = 0;
  while (x < sa.indices.size() && y < sb.indices.size()) {
    if (sa.indices[x] < sb.indices[y]) {
      ++x;
    } else if (sa.indices[x] > sb.indices[y]) {
      ++y;
    } else {
      refs.push_back(PairRef{sa.words + x * width, sb.words + y * width,
                             static_cast<std::uint32_t>(width)});
      ++appended;
      ++x;
      ++y;
    }
  }
  return appended;
}

std::uint64_t AndPopcountVectors(const SlicedStore& a, std::uint32_t va,
                                 const SlicedStore& b, std::uint32_t vb,
                                 PopcountKind kind, std::uint64_t* pairs) {
  if (kind == PopcountKind::kBuiltin) {
    // Adaptive host path: gather in-place descriptors, then route the
    // whole list through the policy-chosen kernel path.
    thread_local std::vector<PairRef> refs;
    refs.clear();
    const std::size_t matched = GatherValidPairRefs(a, va, b, vb, refs);
    if (pairs != nullptr) *pairs += matched;
    switch (ChoosePairPolicy(a.words_per_slice(), refs.size(),
                             ActivePairPolicy())) {
      case PairPolicy::kBatched: {
        thread_local PairArena arena;
        arena.Clear();
        for (const PairRef& ref : refs) arena.Push(ref.a, ref.b, ref.words);
        return AndPopcountPairs(arena);
      }
      case PairPolicy::kZeroCopy:
        return AndPopcountPairsZeroCopy(refs);
      case PairPolicy::kPerPair: {
        std::uint64_t total = 0;
        for (const PairRef& ref : refs) {
          total += AndPopcountActive(ref.a, ref.b, ref.words);
        }
        return total;
      }
    }
    return 0;
  }
  if (a.slice_bits() != b.slice_bits()) {
    throw std::invalid_argument(
        "AndPopcountVectors: stores disagree on slice_bits");
  }
  // Hardware-model strategies keep the exact per-word per-pair loop.
  const std::span<const std::uint32_t> ia = a.SliceIndices(va);
  const std::span<const std::uint32_t> ib = b.SliceIndices(vb);
  std::uint64_t total = 0;
  std::size_t x = 0;
  std::size_t y = 0;
  while (x < ia.size() && y < ib.size()) {
    if (ia[x] < ib[y]) {
      ++x;
    } else if (ia[x] > ib[y]) {
      ++y;
    } else {
      total += AndPopcount(a.SliceWords(va, x), b.SliceWords(vb, y), kind);
      if (pairs != nullptr) ++*pairs;
      ++x;
      ++y;
    }
  }
  return total;
}

BitVector SlicedStore::ToBitVector(std::uint32_t v) const {
  BitVector out(universe_);
  ForEachSetBit(v, [&](std::uint64_t pos) { out.Set(pos); });
  return out;
}

SlicedStore SlicedStore::ExtractVectors(
    std::span<const std::uint32_t> keep) const {
  for (std::size_t k = 0; k < keep.size(); ++k) {
    if (keep[k] >= num_vectors_ || (k > 0 && keep[k] <= keep[k - 1])) {
      throw std::invalid_argument(
          "SlicedStore::ExtractVectors: keep must be sorted, unique and in "
          "range");
    }
  }
  SlicedStore out;
  out.num_vectors_ = num_vectors_;
  out.universe_ = universe_;
  out.slice_bits_ = slice_bits_;
  out.words_per_slice_ = words_per_slice_;
  out.slices_per_vector_ = slices_per_vector_;
  out.slabs_.reserve(slabs_.size());
  out.slab_base_.assign(slabs_.size() + 1, 0);

  // Every all-dropped slab points at ONE lazily-made empty slab, so
  // dropping a large tail costs O(1) allocations, not O(#slabs).
  std::shared_ptr<Slab> empty;
  std::size_t cursor = 0;  // into keep
  for (std::size_t s = 0; s < slabs_.size(); ++s) {
    const std::uint32_t base_v =
        static_cast<std::uint32_t>(s << kSlabVectorShift);
    const std::uint64_t end_v = std::min<std::uint64_t>(
        num_vectors_, static_cast<std::uint64_t>(base_v) + kSlabVectors);
    std::size_t next = cursor;
    while (next < keep.size() && keep[next] < end_v) ++next;
    const Slab& src = *slabs_[s];
    const std::uint64_t src_slices = src.offsets[kSlabVectors];
    std::uint64_t kept_slices = 0;
    for (std::size_t k = cursor; k < next; ++k) {
      const std::uint32_t lv = LocalOf(keep[k]);
      kept_slices += src.offsets[lv + 1] - src.offsets[lv];
    }
    if (kept_slices == src_slices) {
      out.slabs_.push_back(slabs_[s]);  // everything kept: share, zero copy
    } else if (kept_slices == 0) {
      if (empty == nullptr) empty = MakeEmptySlab();
      out.slabs_.push_back(empty);
    } else {
      auto slab = MakeEmptySlab();
      slab->indices.reserve(kept_slices);
      slab->words.reserve(kept_slices * words_per_slice_);
      std::size_t k = cursor;
      std::uint64_t written = 0;
      for (std::uint32_t lv = 0; lv < kSlabVectors; ++lv) {
        if (k < next && keep[k] == base_v + lv) {
          const auto b = static_cast<std::ptrdiff_t>(src.offsets[lv]);
          const auto e = static_cast<std::ptrdiff_t>(src.offsets[lv + 1]);
          slab->indices.insert(slab->indices.end(), src.indices.begin() + b,
                               src.indices.begin() + e);
          slab->words.insert(
              slab->words.end(),
              src.words.begin() + b * static_cast<std::ptrdiff_t>(
                                          words_per_slice_),
              src.words.begin() + e * static_cast<std::ptrdiff_t>(
                                          words_per_slice_));
          written += static_cast<std::uint64_t>(e - b);
          ++k;
        }
        slab->offsets[lv + 1] = written;
      }
      out.slabs_.push_back(std::move(slab));
    }
    out.slab_base_[s + 1] =
        out.slab_base_[s] + out.slabs_.back()->indices.size();
    cursor = next;
  }
  return out;
}

std::uint64_t SlicedStore::HeapBytes() const noexcept {
  std::uint64_t bytes =
      slabs_.capacity() * sizeof(std::shared_ptr<Slab>) +
      slab_base_.capacity() * sizeof(std::uint64_t);
  for (const std::shared_ptr<Slab>& slab : slabs_) {
    bytes += sizeof(Slab) +
             slab->offsets.capacity() * sizeof(std::uint64_t) +
             slab->indices.capacity() * sizeof(std::uint32_t) +
             slab->words.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace tcim::bit
