#include "bitmatrix/sliced_store.h"

#include <algorithm>
#include <stdexcept>

namespace tcim::bit {

SlicedStore SlicedStore::FromCsr(std::uint32_t num_vectors,
                                 std::uint64_t universe,
                                 std::span<const std::uint64_t> offsets,
                                 std::span<const std::uint32_t> positions,
                                 std::uint32_t slice_bits) {
  if (slice_bits == 0 || slice_bits > 512) {
    throw std::invalid_argument("SlicedStore: slice_bits must be in [1,512]");
  }
  if (offsets.size() != static_cast<std::size_t>(num_vectors) + 1) {
    throw std::invalid_argument("SlicedStore: offsets size mismatch");
  }
  if (!offsets.empty() &&
      (offsets.front() != 0 || offsets.back() != positions.size())) {
    throw std::invalid_argument("SlicedStore: offsets must span positions");
  }

  SlicedStore store;
  store.num_vectors_ = num_vectors;
  store.universe_ = universe;
  store.slice_bits_ = slice_bits;
  store.words_per_slice_ = (slice_bits + 63) / 64;
  store.slices_per_vector_ =
      universe == 0 ? 0 : (universe + slice_bits - 1) / slice_bits;
  store.offsets_.assign(static_cast<std::size_t>(num_vectors) + 1, 0);

  // Pass 1: count valid slices per vector.
  std::uint64_t total_valid = 0;
  for (std::uint32_t v = 0; v < num_vectors; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      throw std::invalid_argument("SlicedStore: offsets not monotone");
    }
    std::uint64_t prev_slice = ~0ULL;
    std::uint64_t prev_pos = ~0ULL;
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t pos = positions[e];
      if (pos >= universe) {
        throw std::invalid_argument("SlicedStore: position out of universe");
      }
      if (prev_pos != ~0ULL && pos <= prev_pos) {
        throw std::invalid_argument(
            "SlicedStore: positions must be strictly increasing per vector");
      }
      prev_pos = pos;
      const std::uint64_t s = pos / slice_bits;
      if (s != prev_slice) {
        ++total_valid;
        prev_slice = s;
      }
    }
    store.offsets_[v + 1] = total_valid;
  }

  // Pass 2: fill indices and packed words.
  store.indices_.assign(total_valid, 0);
  store.words_.assign(total_valid * store.words_per_slice_, 0);
  for (std::uint32_t v = 0; v < num_vectors; ++v) {
    std::uint64_t cursor = store.offsets_[v];
    std::uint64_t prev_slice = ~0ULL;
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t pos = positions[e];
      const std::uint64_t s = pos / slice_bits;
      if (s != prev_slice) {
        store.indices_[cursor] = static_cast<std::uint32_t>(s);
        prev_slice = s;
        ++cursor;
      }
      const std::uint64_t in_slice = pos % slice_bits;
      const std::uint64_t word_base = (cursor - 1) * store.words_per_slice_;
      store.words_[word_base + in_slice / 64] |= 1ULL << (in_slice % 64);
    }
  }
  return store;
}

std::uint64_t SlicedStore::set_bit_count() const noexcept {
  return PopcountWords(words_, PopcountKind::kBuiltin);
}

std::size_t SlicedStore::SliceCount(std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceCount: vector out of range");
  }
  return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
}

std::span<const std::uint32_t> SlicedStore::SliceIndices(
    std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceIndices: vector out of range");
  }
  return {indices_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::span<const std::uint64_t> SlicedStore::SliceWords(
    std::uint32_t v, std::size_t ordinal) const {
  const std::uint64_t global = GlobalOrdinal(v, ordinal);
  return {words_.data() + global * words_per_slice_, words_per_slice_};
}

std::uint64_t SlicedStore::GlobalOrdinal(std::uint32_t v,
                                         std::size_t ordinal) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: vector out of range");
  }
  const std::uint64_t global = offsets_[v] + ordinal;
  if (global >= offsets_[v + 1]) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: ordinal out of range");
  }
  return global;
}

bool SlicedStore::TestBit(std::uint32_t v, std::uint64_t position) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::TestBit: vector out of range");
  }
  if (position >= universe_) return false;
  const std::uint32_t slice = static_cast<std::uint32_t>(position / slice_bits_);
  const std::span<const std::uint32_t> indices = SliceIndices(v);
  const auto it = std::lower_bound(indices.begin(), indices.end(), slice);
  if (it == indices.end() || *it != slice) return false;
  const std::uint64_t global =
      offsets_[v] + static_cast<std::uint64_t>(it - indices.begin());
  const std::uint64_t in_slice = position % slice_bits_;
  return (words_[global * words_per_slice_ + in_slice / 64] >>
          (in_slice % 64)) &
         1ULL;
}

PatchStats SlicedStore::ApplyEdits(std::span<const SliceEdit> edits,
                                   std::uint32_t new_num_vectors,
                                   std::uint64_t new_universe) {
  if (new_num_vectors < num_vectors_ || new_universe < universe_) {
    throw std::invalid_argument("SlicedStore::ApplyEdits: cannot shrink");
  }
  PatchStats stats;
  const bool grows =
      new_num_vectors != num_vectors_ || new_universe != universe_;
  if (edits.empty() && !grows) return stats;

  // Order edits by (vector, slice, position) so one walk sees each
  // affected slice's edits contiguously; duplicates become adjacent.
  std::vector<SliceEdit> sorted(edits.begin(), edits.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const SliceEdit& x, const SliceEdit& y) {
              return x.vector != y.vector ? x.vector < y.vector
                                          : x.position < y.position;
            });
  for (std::size_t e = 0; e < sorted.size(); ++e) {
    if (sorted[e].vector >= new_num_vectors ||
        sorted[e].position >= new_universe) {
      throw std::invalid_argument("SlicedStore::ApplyEdits: edit out of range");
    }
    if (e > 0 && sorted[e].vector == sorted[e - 1].vector &&
        sorted[e].position == sorted[e - 1].position) {
      throw std::invalid_argument(
          "SlicedStore::ApplyEdits: duplicate edit for one (vector, position)");
    }
  }

  // Classification pass: does any edit force a structural change?
  // (slice becoming valid or empty). Also validates flip-ness.
  bool structural = grows;
  std::vector<std::uint64_t> scratch(words_per_slice_);
  std::size_t e = 0;
  while (e < sorted.size()) {
    const std::uint32_t v = sorted[e].vector;
    const std::uint32_t slice =
        static_cast<std::uint32_t>(sorted[e].position / slice_bits_);
    // Locate the slice among v's valid slices (v may be a new vector).
    bool valid = false;
    std::uint64_t global = 0;
    if (v < num_vectors_) {
      const std::span<const std::uint32_t> indices = SliceIndices(v);
      const auto it = std::lower_bound(indices.begin(), indices.end(), slice);
      if (it != indices.end() && *it == slice) {
        valid = true;
        global = offsets_[v] + static_cast<std::uint64_t>(it - indices.begin());
      }
    }
    if (valid) {
      std::copy_n(words_.begin() +
                      static_cast<std::ptrdiff_t>(global * words_per_slice_),
                  words_per_slice_, scratch.begin());
    } else {
      std::fill(scratch.begin(), scratch.end(), 0);
    }
    // Apply this slice's edit group to the scratch copy.
    for (; e < sorted.size() && sorted[e].vector == v &&
           sorted[e].position / slice_bits_ == slice;
         ++e) {
      const std::uint64_t in_slice = sorted[e].position % slice_bits_;
      const std::uint64_t mask = 1ULL << (in_slice % 64);
      std::uint64_t& word = scratch[in_slice / 64];
      if (((word & mask) != 0) == sorted[e].set) {
        throw std::invalid_argument(
            "SlicedStore::ApplyEdits: edit is not a flip (store and caller "
            "bookkeeping diverged)");
      }
      word ^= mask;
    }
    const bool now_empty =
        std::all_of(scratch.begin(), scratch.end(),
                    [](std::uint64_t w) { return w == 0; });
    if (valid && !now_empty) {
      // In-place candidate; count the flips now, patch later.
    } else if (valid && now_empty) {
      structural = true;
      ++stats.slices_removed;
    } else {  // !valid: at least one set edit landed in a fresh slice
      structural = true;
      ++stats.slices_inserted;
    }
  }

  if (!structural) {
    // Fast path: every edit flips a bit inside a slice that stays
    // valid — patch the words directly, no reallocation.
    for (const SliceEdit& edit : sorted) {
      const std::uint32_t slice =
          static_cast<std::uint32_t>(edit.position / slice_bits_);
      const std::span<const std::uint32_t> indices = SliceIndices(edit.vector);
      const auto it = std::lower_bound(indices.begin(), indices.end(), slice);
      const std::uint64_t global =
          offsets_[edit.vector] +
          static_cast<std::uint64_t>(it - indices.begin());
      const std::uint64_t in_slice = edit.position % slice_bits_;
      words_[global * words_per_slice_ + in_slice / 64] ^=
          1ULL << (in_slice % 64);
      ++stats.bits_patched;
    }
    return stats;
  }

  // Structural path: rebuild the flat arrays in one merge pass of the
  // old slices and the edit groups, per vector.
  stats.rebuilt = true;
  stats.slices_inserted = 0;  // recounted below
  stats.slices_removed = 0;
  std::vector<std::uint64_t> new_offsets(
      static_cast<std::size_t>(new_num_vectors) + 1, 0);
  std::vector<std::uint32_t> new_indices;
  std::vector<std::uint64_t> new_words;
  new_indices.reserve(indices_.size() + sorted.size());
  new_words.reserve(words_.size() + sorted.size() * words_per_slice_);

  e = 0;
  for (std::uint32_t v = 0; v < new_num_vectors; ++v) {
    const std::uint64_t old_begin = v < num_vectors_ ? offsets_[v] : 0;
    const std::uint64_t old_end = v < num_vectors_ ? offsets_[v + 1] : 0;
    std::uint64_t o = old_begin;
    // Merge old slices of v with edit groups of v in slice order.
    while (o < old_end ||
           (e < sorted.size() && sorted[e].vector == v)) {
      const std::uint32_t old_slice =
          o < old_end ? indices_[o] : ~std::uint32_t{0};
      const std::uint32_t edit_slice =
          (e < sorted.size() && sorted[e].vector == v)
              ? static_cast<std::uint32_t>(sorted[e].position / slice_bits_)
              : ~std::uint32_t{0};
      const std::uint32_t slice = std::min(old_slice, edit_slice);
      if (old_slice == slice) {
        std::copy_n(words_.begin() +
                        static_cast<std::ptrdiff_t>(o * words_per_slice_),
                    words_per_slice_, scratch.begin());
        ++o;
      } else {
        std::fill(scratch.begin(), scratch.end(), 0);
      }
      std::uint64_t slice_edits = 0;
      for (; e < sorted.size() && sorted[e].vector == v &&
             sorted[e].position / slice_bits_ == slice;
           ++e) {
        const std::uint64_t in_slice = sorted[e].position % slice_bits_;
        scratch[in_slice / 64] ^= 1ULL << (in_slice % 64);
        ++slice_edits;
      }
      const bool now_empty =
          std::all_of(scratch.begin(), scratch.end(),
                      [](std::uint64_t w) { return w == 0; });
      if (now_empty) {
        ++stats.slices_removed;  // old slice emptied (fresh ones can't)
        continue;
      }
      if (old_slice != slice) {
        ++stats.slices_inserted;
      } else {
        stats.bits_patched += slice_edits;
      }
      new_indices.push_back(slice);
      new_words.insert(new_words.end(), scratch.begin(), scratch.end());
    }
    new_offsets[v + 1] = new_indices.size();
  }

  num_vectors_ = new_num_vectors;
  universe_ = new_universe;
  slices_per_vector_ =
      new_universe == 0 ? 0 : (new_universe + slice_bits_ - 1) / slice_bits_;
  offsets_ = std::move(new_offsets);
  indices_ = std::move(new_indices);
  words_ = std::move(new_words);
  return stats;
}

std::size_t GatherValidPairs(const SlicedStore& a, std::uint32_t va,
                             const SlicedStore& b, std::uint32_t vb,
                             PairArena& arena) {
  if (a.slice_bits() != b.slice_bits()) {
    throw std::invalid_argument(
        "GatherValidPairs: stores disagree on slice_bits");
  }
  const SlicedStore::VectorSlices sa = a.Slices(va);
  const SlicedStore::VectorSlices sb = b.Slices(vb);
  if (sa.indices.empty() || sb.indices.empty()) return 0;
  const std::size_t width = a.words_per_slice();
  std::size_t x = 0;
  std::size_t y = 0;
  std::size_t appended = 0;
  while (x < sa.indices.size() && y < sb.indices.size()) {
    if (sa.indices[x] < sb.indices[y]) {
      ++x;
    } else if (sa.indices[x] > sb.indices[y]) {
      ++y;
    } else {
      arena.Push(sa.words + x * width, sb.words + y * width, width);
      ++appended;
      ++x;
      ++y;
    }
  }
  return appended;
}

std::uint64_t AndPopcountVectors(const SlicedStore& a, std::uint32_t va,
                                 const SlicedStore& b, std::uint32_t vb,
                                 PopcountKind kind, std::uint64_t* pairs) {
  if (kind == PopcountKind::kBuiltin) {
    // Batched host path: gather the matched slices, one dispatch.
    thread_local PairArena arena;
    arena.Clear();
    const std::size_t matched = GatherValidPairs(a, va, b, vb, arena);
    if (pairs != nullptr) *pairs += matched;
    return AndPopcountPairs(arena);
  }
  if (a.slice_bits() != b.slice_bits()) {
    throw std::invalid_argument(
        "AndPopcountVectors: stores disagree on slice_bits");
  }
  // Hardware-model strategies keep the exact per-word per-pair loop.
  const std::span<const std::uint32_t> ia = a.SliceIndices(va);
  const std::span<const std::uint32_t> ib = b.SliceIndices(vb);
  std::uint64_t total = 0;
  std::size_t x = 0;
  std::size_t y = 0;
  while (x < ia.size() && y < ib.size()) {
    if (ia[x] < ib[y]) {
      ++x;
    } else if (ia[x] > ib[y]) {
      ++y;
    } else {
      total += AndPopcount(a.SliceWords(va, x), b.SliceWords(vb, y), kind);
      if (pairs != nullptr) ++*pairs;
      ++x;
      ++y;
    }
  }
  return total;
}

BitVector SlicedStore::ToBitVector(std::uint32_t v) const {
  BitVector out(universe_);
  ForEachSetBit(v, [&](std::uint64_t pos) { out.Set(pos); });
  return out;
}

std::uint64_t SlicedStore::HeapBytes() const noexcept {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         indices_.capacity() * sizeof(std::uint32_t) +
         words_.capacity() * sizeof(std::uint64_t);
}

}  // namespace tcim::bit
