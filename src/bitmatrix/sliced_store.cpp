#include "bitmatrix/sliced_store.h"

#include <stdexcept>

namespace tcim::bit {

SlicedStore SlicedStore::FromCsr(std::uint32_t num_vectors,
                                 std::uint64_t universe,
                                 std::span<const std::uint64_t> offsets,
                                 std::span<const std::uint32_t> positions,
                                 std::uint32_t slice_bits) {
  if (slice_bits == 0 || slice_bits > 512) {
    throw std::invalid_argument("SlicedStore: slice_bits must be in [1,512]");
  }
  if (offsets.size() != static_cast<std::size_t>(num_vectors) + 1) {
    throw std::invalid_argument("SlicedStore: offsets size mismatch");
  }
  if (!offsets.empty() &&
      (offsets.front() != 0 || offsets.back() != positions.size())) {
    throw std::invalid_argument("SlicedStore: offsets must span positions");
  }

  SlicedStore store;
  store.num_vectors_ = num_vectors;
  store.universe_ = universe;
  store.slice_bits_ = slice_bits;
  store.words_per_slice_ = (slice_bits + 63) / 64;
  store.slices_per_vector_ =
      universe == 0 ? 0 : (universe + slice_bits - 1) / slice_bits;
  store.offsets_.assign(static_cast<std::size_t>(num_vectors) + 1, 0);

  // Pass 1: count valid slices per vector.
  std::uint64_t total_valid = 0;
  for (std::uint32_t v = 0; v < num_vectors; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      throw std::invalid_argument("SlicedStore: offsets not monotone");
    }
    std::uint64_t prev_slice = ~0ULL;
    std::uint64_t prev_pos = ~0ULL;
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t pos = positions[e];
      if (pos >= universe) {
        throw std::invalid_argument("SlicedStore: position out of universe");
      }
      if (prev_pos != ~0ULL && pos <= prev_pos) {
        throw std::invalid_argument(
            "SlicedStore: positions must be strictly increasing per vector");
      }
      prev_pos = pos;
      const std::uint64_t s = pos / slice_bits;
      if (s != prev_slice) {
        ++total_valid;
        prev_slice = s;
      }
    }
    store.offsets_[v + 1] = total_valid;
  }

  // Pass 2: fill indices and packed words.
  store.indices_.assign(total_valid, 0);
  store.words_.assign(total_valid * store.words_per_slice_, 0);
  for (std::uint32_t v = 0; v < num_vectors; ++v) {
    std::uint64_t cursor = store.offsets_[v];
    std::uint64_t prev_slice = ~0ULL;
    for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
      const std::uint64_t pos = positions[e];
      const std::uint64_t s = pos / slice_bits;
      if (s != prev_slice) {
        store.indices_[cursor] = static_cast<std::uint32_t>(s);
        prev_slice = s;
        ++cursor;
      }
      const std::uint64_t in_slice = pos % slice_bits;
      const std::uint64_t word_base = (cursor - 1) * store.words_per_slice_;
      store.words_[word_base + in_slice / 64] |= 1ULL << (in_slice % 64);
    }
  }
  return store;
}

std::uint64_t SlicedStore::set_bit_count() const noexcept {
  return PopcountWords(words_, PopcountKind::kBuiltin);
}

std::size_t SlicedStore::SliceCount(std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceCount: vector out of range");
  }
  return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
}

std::span<const std::uint32_t> SlicedStore::SliceIndices(
    std::uint32_t v) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::SliceIndices: vector out of range");
  }
  return {indices_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::span<const std::uint64_t> SlicedStore::SliceWords(
    std::uint32_t v, std::size_t ordinal) const {
  const std::uint64_t global = GlobalOrdinal(v, ordinal);
  return {words_.data() + global * words_per_slice_, words_per_slice_};
}

std::uint64_t SlicedStore::GlobalOrdinal(std::uint32_t v,
                                         std::size_t ordinal) const {
  if (v >= num_vectors_) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: vector out of range");
  }
  const std::uint64_t global = offsets_[v] + ordinal;
  if (global >= offsets_[v + 1]) {
    throw std::out_of_range("SlicedStore::GlobalOrdinal: ordinal out of range");
  }
  return global;
}

BitVector SlicedStore::ToBitVector(std::uint32_t v) const {
  BitVector out(universe_);
  ForEachSetBit(v, [&](std::uint64_t pos) { out.Set(pos); });
  return out;
}

std::uint64_t SlicedStore::HeapBytes() const noexcept {
  return offsets_.capacity() * sizeof(std::uint64_t) +
         indices_.capacity() * sizeof(std::uint32_t) +
         words_.capacity() * sizeof(std::uint64_t);
}

}  // namespace tcim::bit
