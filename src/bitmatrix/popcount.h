// Population-count strategies.
//
// The TCIM architecture (paper §V-A) realizes BitCount in hardware as
// per-byte 8→256 look-up tables followed by an adder tree. This header
// provides that LUT variant (used by pim::BitCounter to model the
// hardware bit counter), the classic SWAR reduction, and the compiler
// builtin — all behaviourally identical, which the tests assert and the
// micro-kernel bench compares for throughput.
//
// Span kernels (PopcountWords / AndPopcount) called with the default
// PopcountKind::kBuiltin route through the process-wide SIMD kernel
// backend (kernel_backend.h) — the vectorized host stand-in for the
// in-MRAM AND+BitCount unit. A per-slice-pair AndPopcount call pays
// the whole dispatch bill for a 1–8 word payload, so the Eq. (5) hot
// paths gather their pairs and use the batched form instead
// (bit::PairArena + bit::AndPopcountPairs; see docs/KERNELS.md,
// "Dispatch cost and batching"). The hardware-model strategies (kSwar,
// kLut8, kLut16) always run the exact per-word loop so pim::BitCounter
// and the ablations stay faithful to the modeled structure.
//
// Layer: §5 bitmatrix — see docs/ARCHITECTURE.md and docs/KERNELS.md.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace tcim::bit {

/// Which popcount implementation to use.
enum class PopcountKind : std::uint8_t {
  kBuiltin,   ///< host fast path: SIMD backend for spans (kernel_backend.h),
              ///< std::popcount for single words
  kSwar,      ///< branch-free SWAR bit trickery
  kLut8,      ///< per-byte 8->256 LUT + adder tree (hardware model)
  kLut16,     ///< per-halfword 16->65536 LUT
};

/// Branch-free SWAR popcount of one 64-bit word.
[[nodiscard]] constexpr int PopcountSwar(std::uint64_t x) noexcept {
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
  return static_cast<int>((x * 0x0101010101010101ULL) >> 56);
}

/// Per-byte LUT popcount — the software twin of the paper's 8-256 LUT
/// bit counter module.
[[nodiscard]] int PopcountLut8(std::uint64_t x) noexcept;

/// Number of PopcountLut8 calls made by the *calling thread* so far.
/// The LUT path is the hardware *model*, not a fast path — this
/// counter lets tests assert that a caller which requested kLut8
/// really exercised it (and that hot paths did not). Per-thread so
/// the increment stays a plain add inside the benchmarked loop.
[[nodiscard]] std::uint64_t Lut8Invocations() noexcept;

/// Per-16-bit LUT popcount.
[[nodiscard]] int PopcountLut16(std::uint64_t x) noexcept;

/// Popcount of one word with the selected strategy.
[[nodiscard]] int Popcount(std::uint64_t x, PopcountKind kind) noexcept;

/// Popcount of a word span (Σ per-word counts) with the selected
/// strategy. Used to count a multi-word slice in one call.
[[nodiscard]] std::uint64_t PopcountWords(std::span<const std::uint64_t> words,
                                          PopcountKind kind) noexcept;

/// Σ popcount(a[k] & b[k]) — the fused AND+BitCount kernel at the heart
/// of Eq. (5). `a` and `b` must have equal size.
[[nodiscard]] std::uint64_t AndPopcount(std::span<const std::uint64_t> a,
                                        std::span<const std::uint64_t> b,
                                        PopcountKind kind =
                                            PopcountKind::kBuiltin) noexcept;

}  // namespace tcim::bit
