// Compressed valid-slice storage (paper §IV-B).
//
// A row (or column) of the adjacency matrix is partitioned into slices
// of |S| bits; a slice is *valid* iff it contains at least one set bit,
// and only valid slices are stored: a 4-byte slice index plus |S|/8
// bytes of slice data — exactly the paper's
//   space(G) = NVS * (|S|/8 + 4) bytes
// format, which "is friendly for directly mapping onto the
// computational memory arrays".
//
// SlicedStore holds one such compressed store for *all* vectors of one
// orientation (all rows, or all columns), partitioned into refcounted
// *slabs* of kSlabVectors consecutive vectors. Within a slab the valid
// slices live in CSR-like flat arrays (contiguous per vector, so the
// gather hot path still walks plain spans); across store copies slabs
// are shared copy-on-write: copying a SlicedStore costs O(#slabs)
// shared_ptr bumps, and ApplyEdits re-materializes only the slabs the
// batch touches, leaving every untouched slab physically shared with
// all previously taken copies. This is the storage half of the
// epoch-snapshot serving layer (docs/SERVING.md): a published epoch is
// a store copy, and its memory cost over its neighbours is exactly the
// slabs its batches touched.
//
// Thread-safety: a SlicedStore value is not internally synchronized —
// concurrent readers of one *const* store are safe (slabs are
// immutable through the accessors), but ApplyEdits must be externally
// serialized against both other writers and copies being taken of the
// *same object* (runtime::StreamSession's writer lock provides this;
// already-taken copies are unaffected and stay valid).
//
// Layer: §5 bitmatrix — see docs/ARCHITECTURE.md. Units: storage in
// bytes, |S| in bits; all other fields are dimensionless counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "bitmatrix/bitvector.h"
#include "bitmatrix/kernel_backend.h"
#include "bitmatrix/popcount.h"
#include "obs/metrics.h"

namespace tcim::bit {

/// store.* metrics group — write-path accounting ApplyEdits folds
/// into the process registry once per batch (never per edit). The
/// matching read-side gauges (heap bytes, shared-slab ratio) live
/// with the epoch publisher in runtime::StreamMetrics, which has the
/// two store copies to compare. See docs/OBSERVABILITY.md.
struct StoreMetrics {
  obs::Counter& apply_batches;      // ApplyEdits calls
  obs::Counter& bits_patched;       // in-place word flips
  obs::Counter& slices_inserted;    // structural inserts
  obs::Counter& slices_removed;     // structural removals
  obs::Counter& slabs_cow_cloned;   // shared slabs copied before write
  obs::Counter& recompactions;      // batches that rebuilt >= 1 slab

  static StoreMetrics& Get();
};

/// One single-bit mutation of a stored vector (streaming updates).
/// `set == true` sets the bit at `position`, `false` clears it. Edits
/// must be real flips: setting an already-set bit (or clearing an
/// already-clear one) is a caller bookkeeping bug and throws.
struct SliceEdit {
  std::uint32_t vector = 0;
  std::uint32_t position = 0;
  bool set = true;
};

/// What one ApplyEdits call did to the store — the per-batch write
/// accounting the streaming layer folds into its ExecStats.
struct PatchStats {
  /// Bits flipped inside slices that stayed valid (in-place word edit).
  std::uint64_t bits_patched = 0;
  /// Slices that became valid (structural insert into the store).
  std::uint64_t slices_inserted = 0;
  /// Slices whose last bit was cleared (structural removal).
  std::uint64_t slices_removed = 0;
  /// COW slabs written by this batch (patched in place or rebuilt).
  std::uint64_t slabs_touched = 0;
  /// Touched slabs that were shared with a store copy (a published
  /// epoch snapshot) and had to be cloned before writing — the
  /// incremental memory cost of copy-on-write publication.
  std::uint64_t slabs_cow_cloned = 0;
  /// True when any slab had to be recompacted (a structural change —
  /// slice inserted/removed — or vector growth); false = pure in-place
  /// word patching.
  bool rebuilt = false;

  PatchStats& operator+=(const PatchStats& other) noexcept {
    bits_patched += other.bits_patched;
    slices_inserted += other.slices_inserted;
    slices_removed += other.slices_removed;
    slabs_touched += other.slabs_touched;
    slabs_cow_cloned += other.slabs_cow_cloned;
    rebuilt = rebuilt || other.rebuilt;
    return *this;
  }
};

/// Compressed slice store; see file comment.
/// Invariants: per-vector slice indices are strictly increasing; every
/// stored slice has at least one set bit; words beyond slice_bits are
/// zero. ApplyEdits preserves all three (asserted by the round-trip
/// tests against a freshly built store).
class SlicedStore {
 public:
  /// Vectors per copy-on-write slab (power of two). The granularity
  /// trade: smaller slabs share more between epochs but cost more
  /// shared_ptr bookkeeping per copy; 64 keeps the per-copy cost at
  /// n/64 pointer bumps while a k-edit batch touches at most 2k slabs.
  static constexpr std::uint32_t kSlabVectorShift = 6;
  static constexpr std::uint32_t kSlabVectors = 1u << kSlabVectorShift;

  SlicedStore() = default;

  /// Packs a CSR-style adjacency into slices.
  ///  - `num_vectors`: number of rows (or columns);
  ///  - `universe`: bit-length of each vector (≥ max position + 1);
  ///  - `offsets` (size num_vectors+1) and `positions`: per-vector
  ///    sorted, duplicate-free bit positions;
  ///  - `slice_bits`: |S|, in [1, 512].
  /// Throws std::invalid_argument on malformed input (unsorted
  /// positions, offsets not monotone, positions >= universe).
  static SlicedStore FromCsr(std::uint32_t num_vectors, std::uint64_t universe,
                             std::span<const std::uint64_t> offsets,
                             std::span<const std::uint32_t> positions,
                             std::uint32_t slice_bits);

  [[nodiscard]] std::uint32_t num_vectors() const noexcept {
    return num_vectors_;
  }
  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }
  [[nodiscard]] std::uint32_t slice_bits() const noexcept {
    return slice_bits_;
  }
  [[nodiscard]] std::uint32_t words_per_slice() const noexcept {
    return words_per_slice_;
  }
  /// Number of slice positions per vector, i.e. ceil(universe / |S|).
  [[nodiscard]] std::uint64_t slices_per_vector() const noexcept {
    return slices_per_vector_;
  }

  /// Total number of valid slices across all vectors (the paper's NVS
  /// for this orientation).
  [[nodiscard]] std::uint64_t valid_slice_count() const noexcept {
    return slab_base_.back();
  }
  /// Total number of slice slots (valid + empty) = num_vectors *
  /// slices_per_vector; denominator of the Table IV percentage.
  [[nodiscard]] std::uint64_t total_slice_slots() const noexcept {
    return static_cast<std::uint64_t>(num_vectors_) * slices_per_vector_;
  }
  /// NVS * (|S|/8 + 4) — the paper's compressed-size formula.
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return valid_slice_count() * (slice_bits_ / 8 + 4);
  }
  /// Number of set bits across the whole store.
  [[nodiscard]] std::uint64_t set_bit_count() const noexcept;

  /// Valid-slice count of one vector.
  [[nodiscard]] std::size_t SliceCount(std::uint32_t v) const;
  /// Sorted valid slice indices of vector v.
  [[nodiscard]] std::span<const std::uint32_t> SliceIndices(
      std::uint32_t v) const;
  /// Data words of the ordinal-th valid slice of vector v
  /// (words_per_slice() words).
  [[nodiscard]] std::span<const std::uint64_t> SliceWords(
      std::uint32_t v, std::size_t ordinal) const;
  /// Store-wide ordinal of the ordinal-th valid slice of vector v;
  /// stable id in [0, valid_slice_count()), used as a cache tag.
  [[nodiscard]] std::uint64_t GlobalOrdinal(std::uint32_t v,
                                            std::size_t ordinal) const;

  /// One-lookup view of vector v's valid slices for gather loops:
  /// sorted slice indices plus the raw words base — the words of
  /// indices[k] start at words + k * words_per_slice(). `words` is
  /// meaningful only when indices is non-empty. Equivalent to
  /// combining SliceIndices(v) with per-ordinal SliceWords() calls,
  /// but with ONE bounds check and one offsets_ load for the whole
  /// vector — the per-edge column lookup of the batched Eq. (5)
  /// gather is memory-latency-bound, so duplicate checked loads
  /// showed in the end-to-end numbers.
  struct VectorSlices {
    std::span<const std::uint32_t> indices;
    const std::uint64_t* words;
  };
  [[nodiscard]] VectorSlices Slices(std::uint32_t v) const {
    if (v >= num_vectors_) {
      throw std::out_of_range("SlicedStore::Slices: vector out of range");
    }
    const Slab& slab = *slabs_[v >> kSlabVectorShift];
    const std::uint32_t local = v & (kSlabVectors - 1);
    const std::uint64_t begin = slab.offsets[local];
    const std::uint64_t end = slab.offsets[local + 1];
    return {{slab.indices.data() + begin,
             static_cast<std::size_t>(end - begin)},
            slab.words.data() + begin * words_per_slice_};
  }

  /// O(log slices) membership test of one bit of vector v.
  [[nodiscard]] bool TestBit(std::uint32_t v, std::uint64_t position) const;

  /// Applies a batch of single-bit edits, the row-rewrite entry point
  /// of the streaming layer. `new_num_vectors` / `new_universe` allow
  /// the store to grow (never shrink) in the same pass — new vectors
  /// start empty. Edits are processed as one batch: when every edit
  /// lands inside a slice that stays valid, words are patched in place
  /// (no allocation); otherwise the flat arrays are recompacted in one
  /// linear pass (O(store size + edits)).
  /// Throws std::invalid_argument on: duplicate (vector, position)
  /// edits, out-of-range vector/position, shrinking dimensions, or an
  /// edit that is not a real flip (set of a set bit / clear of a clear
  /// bit) — redundant edits mean the caller's graph bookkeeping has
  /// diverged from the store, which must not go unnoticed.
  PatchStats ApplyEdits(std::span<const SliceEdit> edits,
                        std::uint32_t new_num_vectors,
                        std::uint64_t new_universe);

  /// Reconstructs the dense bit vector for v (validation/round-trip).
  [[nodiscard]] BitVector ToBitVector(std::uint32_t v) const;

  /// Calls fn(position) for every set bit of vector v with position in
  /// [lo, hi), in increasing order — the column-range arc iteration of
  /// the 2D tile executor (a tile enumerates only arcs whose target
  /// falls inside its column stripe). Seeks the first candidate slice
  /// by binary search, so a narrow range costs O(log slices + slices
  /// overlapping the range) instead of a full-vector walk.
  template <typename Fn>
  void ForEachSetBitInRange(std::uint32_t v, std::uint64_t lo,
                            std::uint64_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    const VectorSlices vs = Slices(v);
    const auto first_slice = static_cast<std::uint32_t>(lo / slice_bits_);
    std::size_t k = static_cast<std::size_t>(
        std::lower_bound(vs.indices.begin(), vs.indices.end(), first_slice) -
        vs.indices.begin());
    for (; k < vs.indices.size(); ++k) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(vs.indices[k]) * slice_bits_;
      if (base >= hi) break;
      const std::uint64_t* slice = vs.words + k * words_per_slice_;
      for (std::uint32_t w = 0; w < words_per_slice_; ++w) {
        const std::uint64_t word_base = base + w * 64ULL;
        if (word_base >= hi) break;
        if (word_base + 64 <= lo) continue;
        std::uint64_t word = slice[w];
        if (word_base < lo) word &= ~0ULL << (lo - word_base);
        if (hi - word_base < 64) word &= (1ULL << (hi - word_base)) - 1;
        while (word != 0) {
          const int b = std::countr_zero(word);
          fn(word_base + static_cast<std::uint64_t>(b));
          word &= word - 1;
        }
      }
    }
  }

  /// COW sub-view extraction: returns a store of the SAME shape
  /// (num_vectors, universe, slice_bits) in which the vectors listed in
  /// `keep` retain their slices and every other vector is empty — the
  /// hub-replica builder of the 2D partitioner (each bank's private
  /// working set holds just the hub columns). `keep` must be sorted,
  /// strictly increasing and in range (throws std::invalid_argument).
  /// Slabs whose valid slices are all kept are SHARED with this store
  /// (a shared_ptr bump, zero copy); slabs with nothing kept all point
  /// at one empty slab; only partially-kept slabs are rebuilt. Copies
  /// of the result stay COW exactly like copies of a full store.
  [[nodiscard]] SlicedStore ExtractVectors(
      std::span<const std::uint32_t> keep) const;

  /// Calls fn(position) for every set bit of vector v in increasing
  /// order (drives the edge iteration of Algorithm 1).
  template <typename Fn>
  void ForEachSetBit(std::uint32_t v, Fn&& fn) const {
    const VectorSlices vs = Slices(v);
    for (std::size_t k = 0; k < vs.indices.size(); ++k) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(vs.indices[k]) * slice_bits_;
      const std::uint64_t* slice = vs.words + k * words_per_slice_;
      for (std::uint32_t w = 0; w < words_per_slice_; ++w) {
        std::uint64_t word = slice[w];
        while (word != 0) {
          const int b = std::countr_zero(word);
          fn(base + w * 64ULL + static_cast<std::uint64_t>(b));
          word &= word - 1;
        }
      }
    }
  }

  /// Approximate heap footprint of the store itself (diagnostics).
  /// Shared slabs are counted in full for every copy that holds them.
  [[nodiscard]] std::uint64_t HeapBytes() const noexcept;

  /// Number of COW slabs = ceil(num_vectors / kSlabVectors).
  [[nodiscard]] std::size_t slab_count() const noexcept {
    return slabs_.size();
  }

  friend std::size_t SharedSlabCount(const SlicedStore& a,
                                     const SlicedStore& b) noexcept;

 private:
  /// One refcounted group of kSlabVectors consecutive vectors. The
  /// arrays are the same CSR layout the store used to hold globally,
  /// but local to the slab: offsets has kSlabVectors+1 entries
  /// (offsets[0] == 0; for vectors past num_vectors_ the trailing
  /// entries repeat the last value, so growing the store never forces
  /// a rebuild of its final slab). A slab is immutable once any copy
  /// of the owning store exists; ApplyEdits clones it first
  /// (use_count() > 1) before writing.
  struct Slab {
    std::vector<std::uint64_t> offsets;   // kSlabVectors+1, into indices
    std::vector<std::uint32_t> indices;   // valid slice index within vector
    std::vector<std::uint64_t> words;     // words_per_slice_ per valid slice
  };

  /// Returns a uniquely-owned, writable slab s, cloning a shared one.
  Slab& WritableSlab(std::size_t s, PatchStats& stats);
  static std::shared_ptr<Slab> MakeEmptySlab();

  std::uint32_t num_vectors_ = 0;
  std::uint64_t universe_ = 0;
  std::uint32_t slice_bits_ = 64;
  std::uint32_t words_per_slice_ = 1;
  std::uint64_t slices_per_vector_ = 0;
  std::vector<std::shared_ptr<Slab>> slabs_;
  /// Prefix sums of per-slab valid-slice counts (size slabs_.size()+1,
  /// slab_base_[0] == 0) — keeps GlobalOrdinal O(1) and
  /// valid_slice_count() a single load. Recomputed per ApplyEdits.
  std::vector<std::uint64_t> slab_base_{0};
};

/// Number of slab pointers a and b share (same Slab object) — the
/// test-layer probe that COW publication really shares untouched
/// storage between epochs. Stores of different shapes share nothing.
[[nodiscard]] inline std::size_t SharedSlabCount(
    const SlicedStore& a, const SlicedStore& b) noexcept {
  const std::size_t n = std::min(a.slabs_.size(), b.slabs_.size());
  std::size_t shared = 0;
  for (std::size_t s = 0; s < n; ++s) {
    shared += a.slabs_[s] == b.slabs_[s] ? 1 : 0;
  }
  return shared;
}

/// Merges the valid-slice index lists of (a, va) and (b, vb) and
/// appends every matched pair's slice words to `arena` — the gather
/// half of the batched Eq. (5) kernel (AndPopcountPairs consumes the
/// block). Returns the number of pairs appended. Callers batching
/// several vector pairs (e.g. the stream layer's 4-way wedge kernel)
/// gather them all before issuing ONE dispatched call. The stores must
/// share slice_bits.
std::size_t GatherValidPairs(const SlicedStore& a, std::uint32_t va,
                             const SlicedStore& b, std::uint32_t vb,
                             PairArena& arena);

/// Zero-copy variant of GatherValidPairs: appends in-place (a, b,
/// width) descriptors to `refs` instead of copying slice words — the
/// gather half of the adaptive Eq. (5) kernel. Callers decide the
/// execution path afterwards (ChoosePairPolicy on the gathered count),
/// so enumeration never pays the arena memcpy up front. Returns the
/// number of descriptors appended. The stores must share slice_bits.
std::size_t GatherValidPairRefs(const SlicedStore& a, std::uint32_t va,
                                const SlicedStore& b, std::uint32_t vb,
                                std::vector<PairRef>& refs);

/// AND-popcount of two stored vectors from any store combination
/// (row x row, row x col, ...): merges the two sorted valid-slice
/// index lists and sums BitCount(AND) over the matching slices — the
/// Eq. (5) kernel generalized beyond the row x col pairing of
/// SlicedMatrix. The stores must share slice_bits. If `pairs` is
/// non-null it is incremented by the number of slice ANDs issued (the
/// streaming layer's AND-op accounting). Like AndPopcountAllEdges,
/// the default kind gathers the matched slices as zero-copy
/// descriptors and routes them through the adaptive pair policy with
/// one dispatch resolution; the hardware-model kinds keep the exact
/// per-word per-pair loop.
[[nodiscard]] std::uint64_t AndPopcountVectors(
    const SlicedStore& a, std::uint32_t va, const SlicedStore& b,
    std::uint32_t vb, PopcountKind kind = PopcountKind::kBuiltin,
    std::uint64_t* pairs = nullptr);

}  // namespace tcim::bit
