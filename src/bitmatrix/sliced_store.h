// Compressed valid-slice storage (paper §IV-B).
//
// A row (or column) of the adjacency matrix is partitioned into slices
// of |S| bits; a slice is *valid* iff it contains at least one set bit,
// and only valid slices are stored: a 4-byte slice index plus |S|/8
// bytes of slice data — exactly the paper's
//   space(G) = NVS * (|S|/8 + 4) bytes
// format, which "is friendly for directly mapping onto the
// computational memory arrays".
//
// SlicedStore holds one such compressed store for *all* vectors of one
// orientation (all rows, or all columns) in CSR-like flat arrays, so a
// multi-million-vertex graph costs three allocations, not millions.
//
// Layer: §5 bitmatrix — see docs/ARCHITECTURE.md. Units: storage in
// bytes, |S| in bits; all other fields are dimensionless counts.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "bitmatrix/bitvector.h"
#include "bitmatrix/kernel_backend.h"
#include "bitmatrix/popcount.h"

namespace tcim::bit {

/// One single-bit mutation of a stored vector (streaming updates).
/// `set == true` sets the bit at `position`, `false` clears it. Edits
/// must be real flips: setting an already-set bit (or clearing an
/// already-clear one) is a caller bookkeeping bug and throws.
struct SliceEdit {
  std::uint32_t vector = 0;
  std::uint32_t position = 0;
  bool set = true;
};

/// What one ApplyEdits call did to the store — the per-batch write
/// accounting the streaming layer folds into its ExecStats.
struct PatchStats {
  /// Bits flipped inside slices that stayed valid (in-place word edit).
  std::uint64_t bits_patched = 0;
  /// Slices that became valid (structural insert into the store).
  std::uint64_t slices_inserted = 0;
  /// Slices whose last bit was cleared (structural removal).
  std::uint64_t slices_removed = 0;
  /// True when the flat arrays had to be recompacted (any structural
  /// change or vector growth); false = pure in-place word patching.
  bool rebuilt = false;

  PatchStats& operator+=(const PatchStats& other) noexcept {
    bits_patched += other.bits_patched;
    slices_inserted += other.slices_inserted;
    slices_removed += other.slices_removed;
    rebuilt = rebuilt || other.rebuilt;
    return *this;
  }
};

/// Compressed slice store; see file comment.
/// Invariants: per-vector slice indices are strictly increasing; every
/// stored slice has at least one set bit; words beyond slice_bits are
/// zero. ApplyEdits preserves all three (asserted by the round-trip
/// tests against a freshly built store).
class SlicedStore {
 public:
  SlicedStore() = default;

  /// Packs a CSR-style adjacency into slices.
  ///  - `num_vectors`: number of rows (or columns);
  ///  - `universe`: bit-length of each vector (≥ max position + 1);
  ///  - `offsets` (size num_vectors+1) and `positions`: per-vector
  ///    sorted, duplicate-free bit positions;
  ///  - `slice_bits`: |S|, in [1, 512].
  /// Throws std::invalid_argument on malformed input (unsorted
  /// positions, offsets not monotone, positions >= universe).
  static SlicedStore FromCsr(std::uint32_t num_vectors, std::uint64_t universe,
                             std::span<const std::uint64_t> offsets,
                             std::span<const std::uint32_t> positions,
                             std::uint32_t slice_bits);

  [[nodiscard]] std::uint32_t num_vectors() const noexcept {
    return num_vectors_;
  }
  [[nodiscard]] std::uint64_t universe() const noexcept { return universe_; }
  [[nodiscard]] std::uint32_t slice_bits() const noexcept {
    return slice_bits_;
  }
  [[nodiscard]] std::uint32_t words_per_slice() const noexcept {
    return words_per_slice_;
  }
  /// Number of slice positions per vector, i.e. ceil(universe / |S|).
  [[nodiscard]] std::uint64_t slices_per_vector() const noexcept {
    return slices_per_vector_;
  }

  /// Total number of valid slices across all vectors (the paper's NVS
  /// for this orientation).
  [[nodiscard]] std::uint64_t valid_slice_count() const noexcept {
    return indices_.size();
  }
  /// Total number of slice slots (valid + empty) = num_vectors *
  /// slices_per_vector; denominator of the Table IV percentage.
  [[nodiscard]] std::uint64_t total_slice_slots() const noexcept {
    return static_cast<std::uint64_t>(num_vectors_) * slices_per_vector_;
  }
  /// NVS * (|S|/8 + 4) — the paper's compressed-size formula.
  [[nodiscard]] std::uint64_t compressed_bytes() const noexcept {
    return valid_slice_count() * (slice_bits_ / 8 + 4);
  }
  /// Number of set bits across the whole store.
  [[nodiscard]] std::uint64_t set_bit_count() const noexcept;

  /// Valid-slice count of one vector.
  [[nodiscard]] std::size_t SliceCount(std::uint32_t v) const;
  /// Sorted valid slice indices of vector v.
  [[nodiscard]] std::span<const std::uint32_t> SliceIndices(
      std::uint32_t v) const;
  /// Data words of the ordinal-th valid slice of vector v
  /// (words_per_slice() words).
  [[nodiscard]] std::span<const std::uint64_t> SliceWords(
      std::uint32_t v, std::size_t ordinal) const;
  /// Store-wide ordinal of the ordinal-th valid slice of vector v;
  /// stable id in [0, valid_slice_count()), used as a cache tag.
  [[nodiscard]] std::uint64_t GlobalOrdinal(std::uint32_t v,
                                            std::size_t ordinal) const;

  /// One-lookup view of vector v's valid slices for gather loops:
  /// sorted slice indices plus the raw words base — the words of
  /// indices[k] start at words + k * words_per_slice(). `words` is
  /// meaningful only when indices is non-empty. Equivalent to
  /// combining SliceIndices(v) with per-ordinal SliceWords() calls,
  /// but with ONE bounds check and one offsets_ load for the whole
  /// vector — the per-edge column lookup of the batched Eq. (5)
  /// gather is memory-latency-bound, so duplicate checked loads
  /// showed in the end-to-end numbers.
  struct VectorSlices {
    std::span<const std::uint32_t> indices;
    const std::uint64_t* words;
  };
  [[nodiscard]] VectorSlices Slices(std::uint32_t v) const {
    if (v >= num_vectors_) {
      throw std::out_of_range("SlicedStore::Slices: vector out of range");
    }
    const std::uint64_t begin = offsets_[v];
    const std::uint64_t end = offsets_[v + 1];
    return {{indices_.data() + begin, static_cast<std::size_t>(end - begin)},
            words_.data() + begin * words_per_slice_};
  }

  /// O(log slices) membership test of one bit of vector v.
  [[nodiscard]] bool TestBit(std::uint32_t v, std::uint64_t position) const;

  /// Applies a batch of single-bit edits, the row-rewrite entry point
  /// of the streaming layer. `new_num_vectors` / `new_universe` allow
  /// the store to grow (never shrink) in the same pass — new vectors
  /// start empty. Edits are processed as one batch: when every edit
  /// lands inside a slice that stays valid, words are patched in place
  /// (no allocation); otherwise the flat arrays are recompacted in one
  /// linear pass (O(store size + edits)).
  /// Throws std::invalid_argument on: duplicate (vector, position)
  /// edits, out-of-range vector/position, shrinking dimensions, or an
  /// edit that is not a real flip (set of a set bit / clear of a clear
  /// bit) — redundant edits mean the caller's graph bookkeeping has
  /// diverged from the store, which must not go unnoticed.
  PatchStats ApplyEdits(std::span<const SliceEdit> edits,
                        std::uint32_t new_num_vectors,
                        std::uint64_t new_universe);

  /// Reconstructs the dense bit vector for v (validation/round-trip).
  [[nodiscard]] BitVector ToBitVector(std::uint32_t v) const;

  /// Calls fn(position) for every set bit of vector v in increasing
  /// order (drives the edge iteration of Algorithm 1).
  template <typename Fn>
  void ForEachSetBit(std::uint32_t v, Fn&& fn) const {
    const std::uint64_t begin = offsets_[v];
    const std::uint64_t end = offsets_[v + 1];
    for (std::uint64_t s = begin; s < end; ++s) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(indices_[s]) * slice_bits_;
      for (std::uint32_t w = 0; w < words_per_slice_; ++w) {
        std::uint64_t word = words_[s * words_per_slice_ + w];
        while (word != 0) {
          const int b = std::countr_zero(word);
          fn(base + w * 64ULL + static_cast<std::uint64_t>(b));
          word &= word - 1;
        }
      }
    }
  }

  /// Approximate heap footprint of the store itself (diagnostics).
  [[nodiscard]] std::uint64_t HeapBytes() const noexcept;

 private:
  std::uint32_t num_vectors_ = 0;
  std::uint64_t universe_ = 0;
  std::uint32_t slice_bits_ = 64;
  std::uint32_t words_per_slice_ = 1;
  std::uint64_t slices_per_vector_ = 0;
  std::vector<std::uint64_t> offsets_;  // size num_vectors_+1, into indices_
  std::vector<std::uint32_t> indices_;  // valid slice index within vector
  std::vector<std::uint64_t> words_;    // words_per_slice_ per valid slice
};

/// Merges the valid-slice index lists of (a, va) and (b, vb) and
/// appends every matched pair's slice words to `arena` — the gather
/// half of the batched Eq. (5) kernel (AndPopcountPairs consumes the
/// block). Returns the number of pairs appended. Callers batching
/// several vector pairs (e.g. the stream layer's 4-way wedge kernel)
/// gather them all before issuing ONE dispatched call. The stores must
/// share slice_bits.
std::size_t GatherValidPairs(const SlicedStore& a, std::uint32_t va,
                             const SlicedStore& b, std::uint32_t vb,
                             PairArena& arena);

/// AND-popcount of two stored vectors from any store combination
/// (row x row, row x col, ...): merges the two sorted valid-slice
/// index lists and sums BitCount(AND) over the matching slices — the
/// Eq. (5) kernel generalized beyond the row x col pairing of
/// SlicedMatrix. The stores must share slice_bits. If `pairs` is
/// non-null it is incremented by the number of slice ANDs issued (the
/// streaming layer's AND-op accounting). Like AndPopcountAllEdges,
/// the default kind gathers the matched slices and evaluates them with
/// ONE dispatched call on the active SIMD kernel backend
/// (AndPopcountPairs); the hardware-model kinds keep the exact
/// per-word per-pair loop.
[[nodiscard]] std::uint64_t AndPopcountVectors(
    const SlicedStore& a, std::uint32_t va, const SlicedStore& b,
    std::uint32_t vb, PopcountKind kind = PopcountKind::kBuiltin,
    std::uint64_t* pairs = nullptr);

}  // namespace tcim::bit
