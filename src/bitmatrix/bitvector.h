// Dense dynamic bit vector.
//
// Used for the dense adjacency rows of small graphs (Fig. 2-style
// walkthroughs, the trace(A^3)/6 reference) and as the ground truth the
// sliced representation is validated against.
//
// Layer: §5 bitmatrix — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmatrix/popcount.h"

namespace tcim::bit {

/// Fixed-length vector of bits backed by 64-bit words. Bits beyond
/// size() in the last word are kept zero (class invariant), so
/// word-level operations never see garbage tail bits.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::uint64_t size);

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::uint64_t word_count() const noexcept {
    return words_.size();
  }

  [[nodiscard]] bool Get(std::uint64_t pos) const;
  void Set(std::uint64_t pos);
  void Clear(std::uint64_t pos);
  void Assign(std::uint64_t pos, bool value);
  /// Sets every bit to zero, keeping the size.
  void Reset() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::uint64_t Count(
      PopcountKind kind = PopcountKind::kBuiltin) const noexcept;

  /// this &= other (sizes must match).
  void AndWith(const BitVector& other);
  /// this |= other (sizes must match).
  void OrWith(const BitVector& other);
  /// this ^= other (sizes must match).
  void XorWith(const BitVector& other);

  /// popcount(this & other) without materializing the intersection —
  /// the software analogue of one full-row Eq. (5) evaluation. The
  /// caller-selected strategy is honoured (it used to be silently
  /// dropped in favour of kBuiltin; regression-tested via the kLut8
  /// invocation counter).
  [[nodiscard]] std::uint64_t AndCount(
      const BitVector& other,
      PopcountKind kind = PopcountKind::kBuiltin) const;

  /// Calls `fn(pos)` for each set bit, in increasing position order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (std::uint64_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::uint64_t>(bit));
        w &= w - 1;
      }
    }
  }

  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept {
    return words_;
  }
  /// Mutable word access for bulk loads; caller must respect the
  /// zero-tail invariant (Normalize() re-establishes it).
  [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept {
    return words_;
  }
  /// Clears any bits at positions >= size() in the last word.
  void Normalize() noexcept;

  [[nodiscard]] bool operator==(const BitVector& other) const = default;

 private:
  void CheckSameSize(const BitVector& other) const;

  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tcim::bit
