#include "bitmatrix/popcount.h"

#include <array>

#include "bitmatrix/kernel_backend.h"

namespace tcim::bit {
namespace {

// Per-thread call counter for the hardware-model path; see
// Lut8Invocations(). thread_local keeps the increment a plain add —
// an atomic here would put a locked RMW inside the loop the strategy
// benchmarks measure.
thread_local std::uint64_t t_lut8_invocations = 0;

constexpr std::array<std::uint8_t, 256> MakeLut8() {
  std::array<std::uint8_t, 256> lut{};
  for (int i = 0; i < 256; ++i) {
    lut[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(PopcountSwar(static_cast<std::uint64_t>(i)));
  }
  return lut;
}

const std::array<std::uint8_t, 256> kLut8 = MakeLut8();

std::array<std::uint8_t, 65536> MakeLut16() {
  std::array<std::uint8_t, 65536> lut{};
  for (std::size_t i = 0; i < lut.size(); ++i) {
    lut[i] = static_cast<std::uint8_t>(PopcountSwar(i));
  }
  return lut;
}

const std::array<std::uint8_t, 65536>& Lut16() {
  static const std::array<std::uint8_t, 65536> lut = MakeLut16();
  return lut;
}

}  // namespace

int PopcountLut8(std::uint64_t x) noexcept {
  ++t_lut8_invocations;
  // Eight byte lookups summed pairwise — mirrors the hardware adder
  // tree (4 + 2 + 1 adders) described in paper §V-A.
  const int b0 = kLut8[static_cast<std::uint8_t>(x)];
  const int b1 = kLut8[static_cast<std::uint8_t>(x >> 8)];
  const int b2 = kLut8[static_cast<std::uint8_t>(x >> 16)];
  const int b3 = kLut8[static_cast<std::uint8_t>(x >> 24)];
  const int b4 = kLut8[static_cast<std::uint8_t>(x >> 32)];
  const int b5 = kLut8[static_cast<std::uint8_t>(x >> 40)];
  const int b6 = kLut8[static_cast<std::uint8_t>(x >> 48)];
  const int b7 = kLut8[static_cast<std::uint8_t>(x >> 56)];
  const int s0 = b0 + b1;
  const int s1 = b2 + b3;
  const int s2 = b4 + b5;
  const int s3 = b6 + b7;
  return (s0 + s1) + (s2 + s3);
}

std::uint64_t Lut8Invocations() noexcept { return t_lut8_invocations; }

int PopcountLut16(std::uint64_t x) noexcept {
  const auto& lut = Lut16();
  return lut[static_cast<std::uint16_t>(x)] +
         lut[static_cast<std::uint16_t>(x >> 16)] +
         lut[static_cast<std::uint16_t>(x >> 32)] +
         lut[static_cast<std::uint16_t>(x >> 48)];
}

int Popcount(std::uint64_t x, PopcountKind kind) noexcept {
  switch (kind) {
    case PopcountKind::kBuiltin:
      return std::popcount(x);
    case PopcountKind::kSwar:
      return PopcountSwar(x);
    case PopcountKind::kLut8:
      return PopcountLut8(x);
    case PopcountKind::kLut16:
      return PopcountLut16(x);
  }
  return std::popcount(x);  // unreachable; keeps -Wreturn-type quiet
}

std::uint64_t PopcountWords(std::span<const std::uint64_t> words,
                            PopcountKind kind) noexcept {
  if (kind == PopcountKind::kBuiltin) {
    // Host fast path: the active SIMD kernel backend.
    return PopcountWordsActive(words.data(), words.size());
  }
  std::uint64_t total = 0;
  for (const std::uint64_t w : words) {
    total += static_cast<std::uint64_t>(Popcount(w, kind));
  }
  return total;
}

std::uint64_t AndPopcount(std::span<const std::uint64_t> a,
                          std::span<const std::uint64_t> b,
                          PopcountKind kind) noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  if (kind == PopcountKind::kBuiltin) {
    // Host fast path: the active SIMD kernel backend. The hardware-
    // model strategies below keep the exact per-word loop instead.
    return AndPopcountActive(a.data(), b.data(), n);
  }
  std::uint64_t total = 0;
  for (std::size_t k = 0; k < n; ++k) {
    total += static_cast<std::uint64_t>(Popcount(a[k] & b[k], kind));
  }
  return total;
}

}  // namespace tcim::bit
