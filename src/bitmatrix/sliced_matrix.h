// Sliced adjacency matrix: row store + column store (paper §IV-B).
//
// For each non-zero A[i][j], Eq. (5) ANDs row i with column j, so the
// compressed graph is kept in *both* orientations: a row store (out-
// neighbor bitmaps) and a column store (in-neighbor bitmaps). The AND
// runs only on *valid slice pairs* — slice index k such that both
// RiSk and CjSk are valid — enumerated here by merging the two sorted
// valid-slice index lists.
//
// Layer: §5 bitmatrix — see docs/ARCHITECTURE.md. Units:
// CompressedBytes()/WorkingSetBytes() are bytes under the paper's
// NVS*(|S|/8+4) formula; slice_bits is |S| in bits; every other
// SliceStats field is a dimensionless count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmatrix/popcount.h"
#include "bitmatrix/sliced_store.h"

namespace tcim::bit {

/// Aggregate slice statistics behind Tables III and IV; see the field
/// comments for the exact definitions used (EXPERIMENTS.md discusses
/// how they map onto the paper's numbers).
struct SliceStats {
  std::uint64_t row_valid_slices = 0;
  std::uint64_t col_valid_slices = 0;
  std::uint64_t row_slice_slots = 0;
  std::uint64_t col_slice_slots = 0;
  std::uint64_t edges = 0;

  /// Σ over non-zero A[i][j] of |valid slices of Ri ∩ valid slices of
  /// Cj| — the number of in-memory AND operations Algorithm 1 issues.
  std::uint64_t valid_pairs = 0;
  /// Σ over non-zero A[i][j] of slices_per_vector — the AND count a
  /// slicing-oblivious implementation would issue (denominator of the
  /// "99.99% computation reduction" claim).
  std::uint64_t total_pairs = 0;

  /// Distinct row/column slices that participate in >= 1 valid pair —
  /// the slices that are ever loaded into the computational array.
  /// WorkingSetBytes() is the Table III "valid slice data size".
  std::uint64_t touched_row_slices = 0;
  std::uint64_t touched_col_slices = 0;

  std::uint32_t slice_bits = 64;

  /// NVS*(|S|/8+4) over both stores (paper's storage formula).
  [[nodiscard]] std::uint64_t CompressedBytes() const noexcept {
    return (row_valid_slices + col_valid_slices) *
           (slice_bits / 8ULL + 4ULL);
  }
  /// Bytes of slices ever loaded for computation (Table III analog).
  [[nodiscard]] std::uint64_t WorkingSetBytes() const noexcept {
    return (touched_row_slices + touched_col_slices) *
           (slice_bits / 8ULL + 4ULL);
  }
  /// Valid slices / slice slots over both stores (Table IV analog,
  /// storage view).
  [[nodiscard]] double ValidSliceFraction() const noexcept {
    const auto slots = row_slice_slots + col_slice_slots;
    return slots == 0 ? 0.0
                      : static_cast<double>(row_valid_slices +
                                            col_valid_slices) /
                            static_cast<double>(slots);
  }
  /// valid_pairs / total_pairs (Table IV analog, computation view; the
  /// "reduce computation by 99.99%" figure is 1 - this).
  [[nodiscard]] double ValidPairFraction() const noexcept {
    return total_pairs == 0 ? 0.0
                            : static_cast<double>(valid_pairs) /
                                  static_cast<double>(total_pairs);
  }
};

/// Per-path pair accounting of one adaptive Eq. (5) pass: how many
/// valid slice pairs each kernel path consumed and how many flush
/// batches it ran. The adaptive policy (kernel_backend.h, "Adaptive
/// pair policy") is otherwise invisible from outside — these counters
/// are how tests pin the routing and how ExecStats reports it.
struct PairPathCounters {
  std::uint64_t batched_pairs = 0;
  std::uint64_t zero_copy_pairs = 0;
  std::uint64_t per_pair_pairs = 0;
  std::uint64_t batched_flushes = 0;
  std::uint64_t zero_copy_flushes = 0;

  PairPathCounters& operator+=(const PairPathCounters& o) noexcept {
    batched_pairs += o.batched_pairs;
    zero_copy_pairs += o.zero_copy_pairs;
    per_pair_pairs += o.per_pair_pairs;
    batched_flushes += o.batched_flushes;
    zero_copy_flushes += o.zero_copy_flushes;
    return *this;
  }

  [[nodiscard]] std::uint64_t TotalPairs() const noexcept {
    return batched_pairs + zero_copy_pairs + per_pair_pairs;
  }
};

/// One arc mutation of the oriented adjacency matrix: set (insert) or
/// clear (remove) A[from][to]. Mirrored automatically into both the
/// row store (bit `to` of row `from`) and the column store (bit `from`
/// of column `to`) by ApplyArcEdits, so the two stores can never
/// disagree.
struct ArcEdit {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  bool set = true;
};

/// Per-store patch accounting of one ApplyArcEdits batch.
struct MatrixPatchStats {
  PatchStats rows;
  PatchStats cols;

  /// Structural slice writes across both stores — the streaming
  /// analogue of ExecStats' row/col slice writes.
  [[nodiscard]] std::uint64_t TotalSliceWrites() const noexcept {
    return rows.slices_inserted + rows.slices_removed + cols.slices_inserted +
           cols.slices_removed;
  }
};

/// Row + column compressed slice stores for one (oriented) adjacency
/// matrix, with the valid-slice-pair merge kernel.
class SlicedMatrix {
 public:
  SlicedMatrix() = default;

  /// Builds both stores from a CSR adjacency (out-neighbors).
  ///  - offsets/neighbors: CSR of the *oriented* matrix, per-row sorted
  ///    strictly increasing;
  ///  - the column store is derived internally by transposition.
  static SlicedMatrix FromCsr(std::uint32_t num_vertices,
                              std::span<const std::uint64_t> offsets,
                              std::span<const std::uint32_t> neighbors,
                              std::uint32_t slice_bits);

  [[nodiscard]] const SlicedStore& rows() const noexcept { return rows_; }
  [[nodiscard]] const SlicedStore& cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint32_t num_vertices() const noexcept {
    return rows_.num_vectors();
  }
  [[nodiscard]] std::uint32_t slice_bits() const noexcept {
    return rows_.slice_bits();
  }
  [[nodiscard]] std::uint64_t edge_count() const noexcept {
    return rows_.set_bit_count();
  }

  /// Merge-enumerates valid slice pairs of (row i, column j), calling
  ///   fn(slice_index, row_ordinal, col_ordinal)
  /// in increasing slice_index order, where the ordinals index into
  /// SliceWords/GlobalOrdinal of the respective stores.
  template <typename Fn>
  void ForEachValidPair(std::uint32_t i, std::uint32_t j, Fn&& fn) const {
    const std::span<const std::uint32_t> ri = rows_.SliceIndices(i);
    const std::span<const std::uint32_t> cj = cols_.SliceIndices(j);
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < ri.size() && b < cj.size()) {
      if (ri[a] < cj[b]) {
        ++a;
      } else if (ri[a] > cj[b]) {
        ++b;
      } else {
        fn(ri[a], a, b);
        ++a;
        ++b;
      }
    }
  }

  /// Software evaluation of Eq. (5) over the compressed stores: for
  /// every non-zero A[i][j], Σ BitCount(AND(RiSk, CjSk)) over valid
  /// pairs. With an upper-triangular (oriented) adjacency this *is*
  /// the triangle count; the caller owns that interpretation. At the
  /// default kind (kBuiltin) the valid slice pairs are gathered per
  /// pivot row and evaluated in flush batches whose kernel path —
  /// batched arena, zero-copy descriptors, or per-pair dispatch — is
  /// chosen per batch by the adaptive pair policy (kernel_backend.h,
  /// "Adaptive pair policy"; forceable via TCIM_PAIR_POLICY); the
  /// hardware-model kinds run the exact per-word per-pair loop
  /// instead. When `counters` is non-null the per-path pair/flush
  /// accounting of this pass is accumulated into it.
  [[nodiscard]] std::uint64_t AndPopcountAllEdges(
      PopcountKind kind = PopcountKind::kBuiltin,
      PairPathCounters* counters = nullptr) const;

  /// Eq. (5) over rows [row_begin, row_end) only — the shard unit of
  /// the multi-bank runtime's host-kernel path (runtime::BankPool::
  /// HostCount). Column lookups see the whole matrix, so disjoint row
  /// ranges partition AndPopcountAllEdges() exactly: summing shards
  /// reproduces the full pass. Throws std::out_of_range on an invalid
  /// range. Same batching/policy rules as AndPopcountAllEdges.
  [[nodiscard]] std::uint64_t AndPopcountRows(
      std::uint32_t row_begin, std::uint32_t row_end,
      PopcountKind kind = PopcountKind::kBuiltin,
      PairPathCounters* counters = nullptr) const;

  /// Eq. (5) over the sub-rectangle rows [row_begin, row_end) x
  /// columns [col_begin, col_end) — the tile unit of the 2D
  /// hub-replicated runtime. Only arcs A[i][j] with i and j inside the
  /// rectangle are enumerated, but each enumerated arc still ANDs the
  /// FULL row i against the FULL column j: tiling selects which arcs a
  /// bank pivots on, never which slices get paired, so any family of
  /// disjoint rectangles covering all non-zeros partitions
  /// AndPopcountAllEdges() exactly.
  ///
  /// `col_mask` (when non-null, num_vertices() entries) filters arcs:
  /// A[i][j] is enumerated only when (col_mask[j] != 0) == mask_value —
  /// the hub/tail split (hub lanes pass mask_value=true, tail tiles
  /// false, same mask, so together they see each arc exactly once).
  ///
  /// `cols_override` (when non-null) replaces the column store for the
  /// ANDs — the per-bank hub-replica store. It must match slice_bits
  /// and num_vectors (throws std::invalid_argument) and must hold
  /// bit-identical data for every enumerated column.
  /// Throws std::out_of_range on an invalid rectangle.
  [[nodiscard]] std::uint64_t AndPopcountRect(
      std::uint32_t row_begin, std::uint32_t row_end, std::uint32_t col_begin,
      std::uint32_t col_end, const std::uint8_t* col_mask = nullptr,
      bool mask_value = true, const SlicedStore* cols_override = nullptr,
      PopcountKind kind = PopcountKind::kBuiltin,
      PairPathCounters* counters = nullptr) const;

  /// Full statistics pass (Tables III/IV); costs one edge iteration.
  [[nodiscard]] SliceStats ComputeStats() const;

  /// O(log slices) test of one non-zero: is A[i][j] set?
  [[nodiscard]] bool TestArc(std::uint32_t i, std::uint32_t j) const {
    return rows_.TestBit(i, j);
  }

  /// Batched in-place arc mutation — the row-rewrite entry point of
  /// the streaming layer (stream::DynamicGraph). Each edit is applied
  /// to the row store and mirrored into the column store in the same
  /// call; `new_num_vertices` >= num_vertices() grows both stores.
  /// Duplicate edits or non-flips throw std::invalid_argument (see
  /// SlicedStore::ApplyEdits); on throw the matrix is unchanged
  /// (edits are validated against the row store before either store
  /// is touched).
  MatrixPatchStats ApplyArcEdits(std::span<const ArcEdit> edits,
                                 std::uint32_t new_num_vertices);

  /// Heap footprint of both stores (diagnostics).
  [[nodiscard]] std::uint64_t HeapBytes() const noexcept {
    return rows_.HeapBytes() + cols_.HeapBytes();
  }

 private:
  SlicedStore rows_;
  SlicedStore cols_;
};

}  // namespace tcim::bit
