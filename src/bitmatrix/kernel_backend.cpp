#include "bitmatrix/kernel_backend.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "bitmatrix/popcount.h"
#include "util/env.h"

// Compile-time guards. x86 backends use per-function target attributes
// (GCC/Clang), so no translation unit needs special -m flags and the
// binary stays runnable on machines without the wide ISA — the runtime
// CPUID gate decides what actually executes.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define TCIM_KERNEL_HAVE_X86 1
#include <immintrin.h>
#else
#define TCIM_KERNEL_HAVE_X86 0
#endif

#if defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define TCIM_KERNEL_HAVE_NEON 1
#include <arm_neon.h>
#else
#define TCIM_KERNEL_HAVE_NEON 0
#endif

namespace tcim::bit {
namespace {

using AndFn = std::uint64_t (*)(const std::uint64_t*, const std::uint64_t*,
                                std::size_t);

// ---------------------------------------------------------------------------
// kScalar: the reference loop. Two bodies: one compiled for the
// baseline ISA, one with the POPCNT instruction enabled — detection
// picks at process start, so "scalar" means "one word per iteration",
// not "crippled libcall popcount".

std::uint64_t AndScalarGeneric(const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

#if TCIM_KERNEL_HAVE_X86
__attribute__((target("popcnt"))) std::uint64_t AndScalarPopcnt(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}
#endif

// ---------------------------------------------------------------------------
// kSwar64x4: four words share one SWAR reduction pipeline. Each word is
// reduced to per-byte counts (three shift/mask stages), the four byte-
// count words are summed vertically (bytes reach at most 4*8 = 32, so
// no carry crosses a byte lane), and ONE shared horizontal fold
// replaces the four multiply+shift reductions the previous formulation
// paid per quad — that multiply chain is what put it at 0.39–0.45x
// scalar in the schema-v1 seed. Even so, this backend is formally the
// no-POPCNT *fallback*: with a hardware popcount instruction the
// scalar backend beats any SWAR formulation, and auto-dispatch never
// selects kSwar64x4 when ScalarHasPopcntInstruction() (tested).

std::uint64_t AndSwar64x4(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  constexpr std::uint64_t k1 = 0x5555555555555555ULL;
  constexpr std::uint64_t k2 = 0x3333333333333333ULL;
  constexpr std::uint64_t k4 = 0x0F0F0F0F0F0F0F0FULL;
  const auto byte_counts = [](std::uint64_t x) {
    x = x - ((x >> 1) & k1);
    x = (x & k2) + ((x >> 2) & k2);
    return (x + (x >> 4)) & k4;
  };
  std::uint64_t total = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    std::uint64_t s = byte_counts(a[i] & b[i]) +
                      byte_counts(a[i + 1] & b[i + 1]) +
                      byte_counts(a[i + 2] & b[i + 2]) +
                      byte_counts(a[i + 3] & b[i + 3]);
    // Horizontal byte sum. Bytes of s reach 32, so fold through 16-bit
    // lanes; the classic multiply trick would overflow its top byte at
    // the all-ones quad (256 > 255).
    s = (s & 0x00FF00FF00FF00FFULL) + ((s >> 8) & 0x00FF00FF00FF00FFULL);
    total += (s * 0x0001000100010001ULL) >> 48;
  }
  for (; i < n; ++i) {
    total += static_cast<std::uint64_t>(PopcountSwar(a[i] & b[i]));
  }
  return total;
}

// ---------------------------------------------------------------------------
// kAvx2: Harley–Seal carry-save popcount (Muła, Kurz & Lemire, "Faster
// population counts using AVX2 instructions"). Blocks of 16 x 256-bit
// vectors (64 words) are reduced through a CSA tree so the byte-shuffle
// popcount runs once per 16 vectors instead of once per vector.

#if TCIM_KERNEL_HAVE_X86

__attribute__((target("avx2"))) inline __m256i PopcountBytes256(__m256i v) {
  const __m256i lookup = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  // Per-64-bit-lane byte sums: safe to accumulate with 64-bit adds.
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline void Csa256(__m256i& h, __m256i& l,
                                                   __m256i a, __m256i b,
                                                   __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

__attribute__((target("avx2"))) inline __m256i LoadAnd256(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t word) {
  return _mm256_and_si256(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + word)),
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + word)));
}

__attribute__((target("avx2"))) std::uint64_t AndAvx2HarleySeal(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    Csa256(twos_a, ones, ones, LoadAnd256(a, b, i), LoadAnd256(a, b, i + 4));
    Csa256(twos_b, ones, ones, LoadAnd256(a, b, i + 8),
           LoadAnd256(a, b, i + 12));
    Csa256(fours_a, twos, twos, twos_a, twos_b);
    Csa256(twos_a, ones, ones, LoadAnd256(a, b, i + 16),
           LoadAnd256(a, b, i + 20));
    Csa256(twos_b, ones, ones, LoadAnd256(a, b, i + 24),
           LoadAnd256(a, b, i + 28));
    Csa256(fours_b, twos, twos, twos_a, twos_b);
    Csa256(eights_a, fours, fours, fours_a, fours_b);
    Csa256(twos_a, ones, ones, LoadAnd256(a, b, i + 32),
           LoadAnd256(a, b, i + 36));
    Csa256(twos_b, ones, ones, LoadAnd256(a, b, i + 40),
           LoadAnd256(a, b, i + 44));
    Csa256(fours_a, twos, twos, twos_a, twos_b);
    Csa256(twos_a, ones, ones, LoadAnd256(a, b, i + 48),
           LoadAnd256(a, b, i + 52));
    Csa256(twos_b, ones, ones, LoadAnd256(a, b, i + 56),
           LoadAnd256(a, b, i + 60));
    Csa256(fours_b, twos, twos, twos_a, twos_b);
    Csa256(eights_b, fours, fours, fours_a, fours_b);
    Csa256(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, PopcountBytes256(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountBytes256(eights), 3));
  total =
      _mm256_add_epi64(total, _mm256_slli_epi64(PopcountBytes256(fours), 2));
  total =
      _mm256_add_epi64(total, _mm256_slli_epi64(PopcountBytes256(twos), 1));
  total = _mm256_add_epi64(total, PopcountBytes256(ones));
  for (; i + 4 <= n; i += 4) {
    total = _mm256_add_epi64(total, PopcountBytes256(LoadAnd256(a, b, i)));
  }
  std::uint64_t result =
      static_cast<std::uint64_t>(_mm256_extract_epi64(total, 0)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(total, 1)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(total, 2)) +
      static_cast<std::uint64_t>(_mm256_extract_epi64(total, 3));
  for (; i < n; ++i) {
    result += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return result;
}

// ---------------------------------------------------------------------------
// kAvx512Vpopcnt: VPOPCNTDQ counts 8 words per instruction; two
// accumulator chains hide the add latency.

__attribute__((target("avx512f,avx512vpopcntdq"))) std::uint64_t
AndAvx512Vpopcnt(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t n) {
  __m512i acc0 = _mm512_setzero_si512();
  __m512i acc1 = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i v0 = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                        _mm512_loadu_si512(b + i));
    const __m512i v1 = _mm512_and_si512(_mm512_loadu_si512(a + i + 8),
                                        _mm512_loadu_si512(b + i + 8));
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(v0));
    acc1 = _mm512_add_epi64(acc1, _mm512_popcnt_epi64(v1));
  }
  if (i + 8 <= n) {
    const __m512i v = _mm512_and_si512(_mm512_loadu_si512(a + i),
                                       _mm512_loadu_si512(b + i));
    acc0 = _mm512_add_epi64(acc0, _mm512_popcnt_epi64(v));
    i += 8;
  }
  // Lane sum via a store: GCC 12's _mm512_reduce_add_epi64 header
  // trips -Werror=uninitialized (maskless extract false positive).
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, _mm512_add_epi64(acc0, acc1));
  std::uint64_t result = 0;
  for (const std::uint64_t lane : lanes) result += lane;
  for (; i < n; ++i) {
    result += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return result;
}

#endif  // TCIM_KERNEL_HAVE_X86

// ---------------------------------------------------------------------------
// kNeon: vcnt counts bits per byte; the pairwise-widening add chain
// folds bytes up to one 64-bit count per lane.

#if TCIM_KERNEL_HAVE_NEON
std::uint64_t AndNeon(const std::uint64_t* a, const std::uint64_t* b,
                      std::size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint8x16_t v =
        vreinterpretq_u8_u64(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(v)))));
  }
  std::uint64_t result = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) {
    result += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  }
  return result;
}
#endif  // TCIM_KERNEL_HAVE_NEON

// ---------------------------------------------------------------------------
// Detection, dispatch table, active slot.

bool CpuSupports(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kScalar:
    case KernelBackend::kSwar64x4:
      return true;
    case KernelBackend::kAvx2:
#if TCIM_KERNEL_HAVE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelBackend::kAvx512Vpopcnt:
#if TCIM_KERNEL_HAVE_X86
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
      return false;
#endif
    case KernelBackend::kNeon:
      return TCIM_KERNEL_HAVE_NEON != 0;
  }
  return false;
}

AndFn ResolveFn(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kScalar:
#if TCIM_KERNEL_HAVE_X86
      return __builtin_cpu_supports("popcnt") != 0 ? &AndScalarPopcnt
                                                   : &AndScalarGeneric;
#else
      return &AndScalarGeneric;
#endif
    case KernelBackend::kSwar64x4:
      return &AndSwar64x4;
    case KernelBackend::kAvx2:
#if TCIM_KERNEL_HAVE_X86
      return &AndAvx2HarleySeal;
#else
      return nullptr;
#endif
    case KernelBackend::kAvx512Vpopcnt:
#if TCIM_KERNEL_HAVE_X86
      return &AndAvx512Vpopcnt;
#else
      return nullptr;
#endif
    case KernelBackend::kNeon:
#if TCIM_KERNEL_HAVE_NEON
      return &AndNeon;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

constexpr std::array<KernelBackend, kNumKernelBackends> kAllBackends = {
    KernelBackend::kScalar, KernelBackend::kSwar64x4, KernelBackend::kAvx2,
    KernelBackend::kAvx512Vpopcnt, KernelBackend::kNeon};

struct DispatchTable {
  std::array<AndFn, kNumKernelBackends> fn{};
  std::array<bool, kNumKernelBackends> supported{};

  DispatchTable() noexcept {
    for (const KernelBackend backend : kAllBackends) {
      const auto i = static_cast<std::size_t>(backend);
      fn[i] = ResolveFn(backend);
      supported[i] = fn[i] != nullptr && CpuSupports(backend);
    }
  }
};

const DispatchTable& Table() noexcept {
  static const DispatchTable table;
  return table;
}

KernelBackend ResolveFromEnv() {
  const std::string raw = util::EnvString("TCIM_KERNEL", "");
  if (raw.empty() || raw == "auto") {
    return BestSupportedBackend();
  }
  const std::optional<KernelBackend> parsed = ParseKernelBackend(raw);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "tcim: TCIM_KERNEL='%s' is not a known backend "
                 "(scalar|swar64x4|avx2|avx512vpopcnt|neon|auto); "
                 "using auto dispatch\n",
                 raw.c_str());
    return BestSupportedBackend();
  }
  if (!BackendSupported(*parsed)) {
    std::fprintf(stderr,
                 "tcim: TCIM_KERNEL='%s' is not executable on this machine "
                 "(%s); using '%s'\n",
                 raw.c_str(),
                 BackendCompiledIn(*parsed) ? "CPU lacks the instructions"
                                            : "not compiled into this binary",
                 ToString(BestSupportedBackend()));
    return BestSupportedBackend();
  }
  return *parsed;
}

// The active slot stores the enum, not the function pointer, so
// ActiveBackend() and the dispatched function can never disagree.
std::atomic<std::uint8_t>& ActiveSlot() noexcept {
  static std::atomic<std::uint8_t> slot{
      static_cast<std::uint8_t>(ResolveFromEnv())};
  return slot;
}

// Zero-copy driver: one function-pointer resolution for the whole
// list, then a tight loop that prefetches the next pair's words while
// the current pair is summed. The descriptors themselves stream
// linearly, so only the slice words need explicit prefetch.
// Single-word pairs (|S|=64, the narrowest slice geometry) are summed
// inline: no vector unit can engage on 8 bytes, and skipping the
// indirect call there is what keeps every backend at parity with
// scalar on width-1 streams (perf_harness floor 1).
std::uint64_t RunPairsZeroCopy(AndFn fn,
                               std::span<const PairRef> pairs) noexcept {
  std::uint64_t total = 0;
  const std::size_t n = pairs.size();
#if defined(__GNUC__) || defined(__clang__)
  // Summing one pair is a few dozen cycles — far less than a DRAM miss —
  // so a lookahead of one pair only hides latency while the list is
  // cache-resident. Prime a deeper window and keep it full: 8 pairs of
  // lookahead is enough slack for an LLC-spilling |S|=512 working set
  // (the roadNet rows at full scale) without hurting the L1/L2 case.
  constexpr std::size_t kPrefetchPairs = 8;
  // Slice spans are 8-byte aligned, so an 8-word (|S|=512) span usually
  // straddles two cache lines — prefetch the tail line as well or half
  // the flush loop's loads still miss.
  const auto prefetch = [](const PairRef& p) {
    __builtin_prefetch(p.a);
    __builtin_prefetch(p.b);
    if (p.words > 1) {
      __builtin_prefetch(p.a + p.words - 1);
      __builtin_prefetch(p.b + p.words - 1);
    }
  };
  for (std::size_t i = 0, prime = std::min(n, kPrefetchPairs); i < prime;
       ++i) {
    prefetch(pairs[i]);
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
#if defined(__GNUC__) || defined(__clang__)
    if (i + kPrefetchPairs < n) prefetch(pairs[i + kPrefetchPairs]);
#endif
    const PairRef& p = pairs[i];
    if (p.words == 1) {
      total += static_cast<std::uint64_t>(std::popcount(p.a[0] & p.b[0]));
    } else {
      total += fn(p.a, p.b, p.words);
    }
  }
  return total;
}

// Forced-policy slot for TCIM_PAIR_POLICY / SetActivePairPolicy.
// 0 = auto (adaptive rule decides); 1 + enum = forced.
constexpr std::uint8_t kPolicyAuto = 0;

std::uint8_t ResolvePolicyFromEnv() {
  const std::string raw = util::EnvString("TCIM_PAIR_POLICY", "");
  if (raw.empty() || raw == "auto") return kPolicyAuto;
  const std::optional<PairPolicy> parsed = ParsePairPolicy(raw);
  if (!parsed.has_value()) {
    std::fprintf(stderr,
                 "tcim: TCIM_PAIR_POLICY='%s' is not a known policy "
                 "(batched|zerocopy|perpair|auto); using auto\n",
                 raw.c_str());
    return kPolicyAuto;
  }
  return static_cast<std::uint8_t>(1 + static_cast<std::uint8_t>(*parsed));
}

std::atomic<std::uint8_t>& PolicySlot() noexcept {
  static std::atomic<std::uint8_t> slot{ResolvePolicyFromEnv()};
  return slot;
}

}  // namespace

const char* ToString(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kSwar64x4:
      return "swar64x4";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512Vpopcnt:
      return "avx512vpopcnt";
    case KernelBackend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::optional<KernelBackend> ParseKernelBackend(
    std::string_view name) noexcept {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "swar64x4" || name == "swar") return KernelBackend::kSwar64x4;
  if (name == "avx2") return KernelBackend::kAvx2;
  if (name == "avx512vpopcnt" || name == "avx512") {
    return KernelBackend::kAvx512Vpopcnt;
  }
  if (name == "neon") return KernelBackend::kNeon;
  return std::nullopt;
}

std::span<const KernelBackend> AllKernelBackends() noexcept {
  return kAllBackends;
}

std::span<const KernelBackend> SupportedKernelBackends() noexcept {
  struct Supported {
    std::array<KernelBackend, kNumKernelBackends> list{};
    std::size_t count = 0;
    Supported() noexcept {
      for (const KernelBackend backend : kAllBackends) {
        if (BackendSupported(backend)) list[count++] = backend;
      }
    }
  };
  static const Supported supported;
  return {supported.list.data(), supported.count};
}

bool BackendCompiledIn(KernelBackend backend) noexcept {
  const auto i = static_cast<std::size_t>(backend);
  return i < kNumKernelBackends && Table().fn[i] != nullptr;
}

bool ScalarHasPopcntInstruction() noexcept {
#if TCIM_KERNEL_HAVE_X86
  return __builtin_cpu_supports("popcnt") != 0;
#else
  // AArch64 has CNT in the baseline ISA; std::popcount lowers to it.
  return TCIM_KERNEL_HAVE_NEON != 0;
#endif
}

bool BackendSupported(KernelBackend backend) noexcept {
  const auto i = static_cast<std::size_t>(backend);
  return i < kNumKernelBackends && Table().supported[i];
}

KernelBackend BestSupportedBackend() noexcept {
  // Widest first; kSwar64x4 never wins auto-dispatch over kScalar when
  // the CPU has POPCNT, and on machines without it the SWAR unroll is
  // exactly what you want — hence the tie-break order below.
  if (BackendSupported(KernelBackend::kAvx512Vpopcnt)) {
    return KernelBackend::kAvx512Vpopcnt;
  }
  if (BackendSupported(KernelBackend::kAvx2)) return KernelBackend::kAvx2;
  if (BackendSupported(KernelBackend::kNeon)) return KernelBackend::kNeon;
#if TCIM_KERNEL_HAVE_X86
  if (__builtin_cpu_supports("popcnt") != 0) return KernelBackend::kScalar;
#endif
  return KernelBackend::kSwar64x4;
}

KernelBackend ActiveBackend() noexcept {
  return static_cast<KernelBackend>(
      ActiveSlot().load(std::memory_order_relaxed));
}

void SetActiveBackend(KernelBackend backend) {
  if (!BackendSupported(backend)) {
    throw std::invalid_argument(
        std::string("SetActiveBackend: backend '") + ToString(backend) +
        "' is not supported on this machine");
  }
  ActiveSlot().store(static_cast<std::uint8_t>(backend),
                     std::memory_order_relaxed);
}

KernelBackend RefreshActiveBackendFromEnv() {
  const KernelBackend backend = ResolveFromEnv();
  ActiveSlot().store(static_cast<std::uint8_t>(backend),
                     std::memory_order_relaxed);
  return backend;
}

std::uint64_t AndPopcountBackend(std::span<const std::uint64_t> a,
                                 std::span<const std::uint64_t> b,
                                 KernelBackend backend) {
  if (!BackendSupported(backend)) {
    throw std::invalid_argument(
        std::string("AndPopcountBackend: backend '") + ToString(backend) +
        "' is not supported on this machine");
  }
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  return Table().fn[static_cast<std::size_t>(backend)](a.data(), b.data(), n);
}

std::uint64_t PopcountWordsBackend(std::span<const std::uint64_t> words,
                                   KernelBackend backend) {
  // popcount(w & w) == popcount(w): the AND kernel with both streams
  // aliased is the span popcount, at the cost of one redundant L1 load.
  return AndPopcountBackend(words, words, backend);
}

std::uint64_t AndPopcountActive(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t n) noexcept {
  const auto i =
      static_cast<std::size_t>(ActiveSlot().load(std::memory_order_relaxed));
  return Table().fn[i](a, b, n);
}

std::uint64_t PopcountWordsActive(const std::uint64_t* words,
                                  std::size_t n) noexcept {
  return AndPopcountActive(words, words, n);
}

void PairArena::Grow(std::size_t need) {
  // Doubling keeps the amortized Push cost O(width); 256 words floors
  // the first allocation above the typical single-vector gather.
  std::size_t capacity = a_.size() < 256 ? 256 : a_.size() * 2;
  if (capacity < need) capacity = need;
  a_.resize(capacity);
  b_.resize(capacity);
}

std::uint64_t AndPopcountPairs(const PairArena& arena) noexcept {
  // The gathered blocks are one long span each: pair boundaries do not
  // affect the sum, so this is a single active-backend span call.
  return AndPopcountActive(arena.a().data(), arena.b().data(),
                           arena.word_count());
}

std::uint64_t AndPopcountPairsBackend(const PairArena& arena,
                                      KernelBackend backend) {
  if (!BackendSupported(backend)) {
    throw std::invalid_argument(
        std::string("AndPopcountPairsBackend: backend '") + ToString(backend) +
        "' is not supported on this machine");
  }
  return Table().fn[static_cast<std::size_t>(backend)](
      arena.a().data(), arena.b().data(), arena.word_count());
}

std::uint64_t AndPopcountPairsZeroCopy(
    std::span<const PairRef> pairs) noexcept {
  const auto i =
      static_cast<std::size_t>(ActiveSlot().load(std::memory_order_relaxed));
  return RunPairsZeroCopy(Table().fn[i], pairs);
}

std::uint64_t AndPopcountPairsZeroCopyBackend(std::span<const PairRef> pairs,
                                              KernelBackend backend) {
  if (!BackendSupported(backend)) {
    throw std::invalid_argument(
        std::string("AndPopcountPairsZeroCopyBackend: backend '") +
        ToString(backend) + "' is not supported on this machine");
  }
  return RunPairsZeroCopy(Table().fn[static_cast<std::size_t>(backend)],
                          pairs);
}

const char* ToString(PairPolicy policy) noexcept {
  switch (policy) {
    case PairPolicy::kBatched:
      return "batched";
    case PairPolicy::kZeroCopy:
      return "zerocopy";
    case PairPolicy::kPerPair:
      return "perpair";
  }
  return "unknown";
}

std::optional<PairPolicy> ParsePairPolicy(std::string_view name) noexcept {
  if (name == "batched") return PairPolicy::kBatched;
  if (name == "zerocopy" || name == "zero_copy" || name == "zero-copy") {
    return PairPolicy::kZeroCopy;
  }
  if (name == "perpair" || name == "per_pair" || name == "per-pair") {
    return PairPolicy::kPerPair;
  }
  return std::nullopt;
}

PairPolicy ChoosePairPolicy(std::size_t width_words, std::size_t pair_count,
                            const PairPolicyConfig& cfg) noexcept {
  if (cfg.forced.has_value()) return *cfg.forced;
  if (width_words >= cfg.zero_copy_min_width) return PairPolicy::kZeroCopy;
  if (pair_count < cfg.batched_min_pairs) return PairPolicy::kZeroCopy;
  return PairPolicy::kBatched;
}

bool ChooseDirectPairLoop(std::size_t width_words, std::uint64_t store_bytes,
                          double avg_valid_slices,
                          const PairPolicyConfig& cfg) noexcept {
  if (cfg.forced.has_value()) return false;
  return width_words >= cfg.direct_min_width &&
         store_bytes > cfg.direct_min_store_bytes &&
         avg_valid_slices <= cfg.direct_max_avg_valid_slices;
}

PairPolicyConfig ActivePairPolicy() noexcept {
  PairPolicyConfig cfg;
  const std::uint8_t slot = PolicySlot().load(std::memory_order_relaxed);
  if (slot != kPolicyAuto) {
    cfg.forced = static_cast<PairPolicy>(slot - 1);
  }
  return cfg;
}

void SetActivePairPolicy(std::optional<PairPolicy> forced) noexcept {
  PolicySlot().store(
      forced.has_value()
          ? static_cast<std::uint8_t>(1 + static_cast<std::uint8_t>(*forced))
          : kPolicyAuto,
      std::memory_order_relaxed);
}

PairPolicyConfig RefreshPairPolicyFromEnv() {
  PolicySlot().store(ResolvePolicyFromEnv(), std::memory_order_relaxed);
  return ActivePairPolicy();
}

}  // namespace tcim::bit
