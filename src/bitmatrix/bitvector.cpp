#include "bitmatrix/bitvector.h"

#include <stdexcept>

namespace tcim::bit {

BitVector::BitVector(std::uint64_t size)
    : size_(size), words_((size + 63) / 64, 0) {}

bool BitVector::Get(std::uint64_t pos) const {
  if (pos >= size_) {
    throw std::out_of_range("BitVector::Get: position out of range");
  }
  return (words_[pos / 64] >> (pos % 64)) & 1ULL;
}

void BitVector::Set(std::uint64_t pos) {
  if (pos >= size_) {
    throw std::out_of_range("BitVector::Set: position out of range");
  }
  words_[pos / 64] |= 1ULL << (pos % 64);
}

void BitVector::Clear(std::uint64_t pos) {
  if (pos >= size_) {
    throw std::out_of_range("BitVector::Clear: position out of range");
  }
  words_[pos / 64] &= ~(1ULL << (pos % 64));
}

void BitVector::Assign(std::uint64_t pos, bool value) {
  if (value) {
    Set(pos);
  } else {
    Clear(pos);
  }
}

void BitVector::Reset() noexcept {
  for (auto& w : words_) w = 0;
}

std::uint64_t BitVector::Count(PopcountKind kind) const noexcept {
  return PopcountWords(words_, kind);
}

void BitVector::AndWith(const BitVector& other) {
  CheckSameSize(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] &= other.words_[i];
  }
}

void BitVector::OrWith(const BitVector& other) {
  CheckSameSize(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void BitVector::XorWith(const BitVector& other) {
  CheckSameSize(other);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  Normalize();
}

std::uint64_t BitVector::AndCount(const BitVector& other,
                                  PopcountKind kind) const {
  CheckSameSize(other);
  return AndPopcount(words_, other.words_, kind);
}

void BitVector::Normalize() noexcept {
  const std::uint64_t tail = size_ % 64;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

void BitVector::CheckSameSize(const BitVector& other) const {
  if (size_ != other.size_) {
    throw std::invalid_argument("BitVector: size mismatch");
  }
}

}  // namespace tcim::bit
