#include "pim/computational_array.h"

#include <algorithm>
#include <stdexcept>

namespace tcim::pim {

ComputationalArray::ComputationalArray(const nvsim::ArrayConfig& config,
                                       const BitCounterParams& counter_params)
    : config_(config),
      words_per_slice_((config.access_width_bits + 63) / 64),
      num_subarrays_(config.total_subarrays()),
      slots_per_subarray_(static_cast<std::uint64_t>(config.subarray_rows) *
                          config.slices_per_row()),
      total_slots_(num_subarrays_ * slots_per_subarray_),
      counter_(counter_params) {
  config_.Validate();
  storage_.assign(total_slots_ * words_per_slice_, 0);
}

std::uint64_t ComputationalArray::FlatIndex(const SliceAddr& addr) const {
  CheckAddr(addr);
  return (static_cast<std::uint64_t>(addr.subarray) * config_.subarray_rows +
          addr.row) *
             config_.slices_per_row() +
         addr.col_group;
}

SliceAddr ComputationalArray::AddrOf(std::uint64_t flat_index) const {
  if (flat_index >= total_slots_) {
    throw std::out_of_range("ComputationalArray: flat index out of range");
  }
  SliceAddr addr;
  addr.col_group =
      static_cast<std::uint32_t>(flat_index % config_.slices_per_row());
  const std::uint64_t row_major = flat_index / config_.slices_per_row();
  addr.row = static_cast<std::uint32_t>(row_major % config_.subarray_rows);
  addr.subarray =
      static_cast<std::uint32_t>(row_major / config_.subarray_rows);
  return addr;
}

void ComputationalArray::CheckAddr(const SliceAddr& addr) const {
  if (addr.subarray >= num_subarrays_ ||
      addr.row >= config_.subarray_rows ||
      addr.col_group >= config_.slices_per_row()) {
    throw std::out_of_range("ComputationalArray: address out of range");
  }
}

std::span<std::uint64_t> ComputationalArray::SlotWords(std::uint64_t flat) {
  return {storage_.data() + flat * words_per_slice_, words_per_slice_};
}

void ComputationalArray::EnableTrace(std::size_t max_entries) {
  tracing_ = true;
  trace_truncated_ = false;
  trace_capacity_ = max_entries;
  trace_.clear();
  trace_.reserve(std::min<std::size_t>(max_entries, 4096));
}

void ComputationalArray::DisableTrace() noexcept { tracing_ = false; }

void ComputationalArray::Record(TraceEntry::Op op, const SliceAddr& a,
                                const SliceAddr& b) {
  if (!tracing_) return;
  if (trace_.size() >= trace_capacity_) {
    trace_truncated_ = true;
    return;
  }
  trace_.push_back(TraceEntry{op, a, b});
}

void ComputationalArray::WriteSlice(const SliceAddr& addr,
                                    std::span<const std::uint64_t> words) {
  if (words.size() != words_per_slice_) {
    throw std::invalid_argument(
        "ComputationalArray::WriteSlice: word count mismatch");
  }
  // Bits beyond the access width would silently alias onto other
  // columns in real hardware; reject them.
  const std::uint32_t tail_bits = config_.access_width_bits % 64;
  if (tail_bits != 0 &&
      (words.back() >> tail_bits) != 0) {
    throw std::invalid_argument(
        "ComputationalArray::WriteSlice: data beyond access width");
  }
  const std::uint64_t flat = FlatIndex(addr);
  auto dst = SlotWords(flat);
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = words[i];
  ++counts_.writes;
  Record(TraceEntry::Op::kWrite, addr);
}

std::span<const std::uint64_t> ComputationalArray::ReadSlice(
    const SliceAddr& addr) {
  const std::uint64_t flat = FlatIndex(addr);
  ++counts_.reads;
  Record(TraceEntry::Op::kRead, addr);
  return SlotWords(flat);
}

std::uint64_t ComputationalArray::AndPopcount(const SliceAddr& a,
                                              const SliceAddr& b) {
  if (a.subarray != b.subarray) {
    throw std::invalid_argument(
        "ComputationalArray::AND: operands must share a subarray "
        "(multi-row activation is subarray-local)");
  }
  if (a.col_group != b.col_group) {
    throw std::invalid_argument(
        "ComputationalArray::AND: operands must be column-aligned");
  }
  if (a.row == b.row) {
    throw std::invalid_argument(
        "ComputationalArray::AND: operands must be in different rows");
  }
  const auto wa = SlotWords(FlatIndex(a));
  const auto wb = SlotWords(FlatIndex(b));
  ++counts_.ands;
  counts_.bitcount_words += words_per_slice_;
  Record(TraceEntry::Op::kAnd, a, b);
  std::uint64_t popcount = 0;
  for (std::uint32_t i = 0; i < words_per_slice_; ++i) {
    popcount += counter_.Feed(wa[i] & wb[i]);
  }
  return popcount;
}

std::vector<std::uint64_t> ComputationalArray::AndSlices(const SliceAddr& a,
                                                         const SliceAddr& b) {
  if (a.subarray != b.subarray || a.col_group != b.col_group ||
      a.row == b.row) {
    throw std::invalid_argument(
        "ComputationalArray::AndSlices: operand placement violates "
        "multi-row activation constraints");
  }
  const auto wa = SlotWords(FlatIndex(a));
  const auto wb = SlotWords(FlatIndex(b));
  ++counts_.ands;
  std::vector<std::uint64_t> out(words_per_slice_);
  for (std::uint32_t i = 0; i < words_per_slice_; ++i) {
    out[i] = wa[i] & wb[i];
  }
  return out;
}

}  // namespace tcim::pim
