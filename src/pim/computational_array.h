// Functional simulator of the computational STT-MRAM chip.
//
// Models the Fig. 1/Fig. 4 organization at slice granularity: the chip
// is a pool of subarrays, each subarray a grid of rows x slice-columns;
// a *slot* addresses one slice-sized row segment. Three operations
// exist, mirroring the modified read circuitry:
//   WRITE  — put slice data into a slot (write drivers);
//   READ   — sense one row against the READ reference;
//   AND    — activate TWO rows of the same subarray simultaneously and
//            sense the summed column currents against the AND
//            reference (Rref-AND in (R_P-P, R_P-AP)); the result
//            streams into the per-subarray BitCounter.
//
// The multi-row-activation constraint is physical: operands must live
// in the SAME subarray and the SAME slice-column, in different rows —
// enforced here with exceptions, because a mapper that violates it is
// a bug the tests must catch.
//
// The simulator is functional (bit-exact contents) + accounting (op
// counters used by core::PerfModel to derive time/energy from the
// NVSim per-op costs).
//
// Layer: §6 pim — see docs/ARCHITECTURE.md. This simulator is
// functional only: it carries no time or energy. Its op counts are
// priced with nvsim::ArrayPerf per-op costs by core::PerfModel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nvsim/array_model.h"
#include "pim/bit_counter.h"

namespace tcim::pim {

/// Physical address of one slice slot.
struct SliceAddr {
  std::uint32_t subarray = 0;
  std::uint32_t row = 0;
  std::uint32_t col_group = 0;  ///< which slice-column within the row

  [[nodiscard]] bool operator==(const SliceAddr&) const = default;
};

/// Operation counters (inputs to the behavioural perf model).
struct ArrayOpCounts {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t ands = 0;
  std::uint64_t bitcount_words = 0;
};

/// One recorded array command (see ComputationalArray::EnableTrace).
struct TraceEntry {
  enum class Op : std::uint8_t { kWrite, kRead, kAnd };
  Op op = Op::kWrite;
  SliceAddr a;
  SliceAddr b;  // second operand for kAnd; unused otherwise

  [[nodiscard]] bool operator==(const TraceEntry&) const = default;
};

class ComputationalArray {
 public:
  /// Geometry comes from the NVSim-level config; slice width =
  /// access_width_bits.
  explicit ComputationalArray(const nvsim::ArrayConfig& config,
                              const BitCounterParams& counter_params = {});

  [[nodiscard]] const nvsim::ArrayConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::uint32_t words_per_slice() const noexcept {
    return words_per_slice_;
  }
  [[nodiscard]] std::uint64_t total_slots() const noexcept {
    return total_slots_;
  }
  [[nodiscard]] std::uint32_t rows_per_subarray() const noexcept {
    return config_.subarray_rows;
  }
  [[nodiscard]] std::uint64_t num_subarrays() const noexcept {
    return num_subarrays_;
  }
  [[nodiscard]] std::uint32_t slices_per_row() const noexcept {
    return config_.slices_per_row();
  }

  /// Flat slot id <-> physical address (round-trip tested).
  [[nodiscard]] std::uint64_t FlatIndex(const SliceAddr& addr) const;
  [[nodiscard]] SliceAddr AddrOf(std::uint64_t flat_index) const;

  /// WRITE: stores `words` (words_per_slice words; extra bits beyond
  /// the access width must be zero) into the slot.
  void WriteSlice(const SliceAddr& addr, std::span<const std::uint64_t> words);

  /// READ: returns the stored words.
  [[nodiscard]] std::span<const std::uint64_t> ReadSlice(
      const SliceAddr& addr);

  /// AND with multi-row activation; returns the popcount of the AND
  /// result via the subarray's bit counter. Throws std::invalid_argument
  /// if the operands violate the same-subarray / same-column /
  /// different-row constraint.
  [[nodiscard]] std::uint64_t AndPopcount(const SliceAddr& a,
                                          const SliceAddr& b);

  /// AND returning the raw result words (diagnostics/tests); same
  /// constraints and accounting as AndPopcount minus the bit counter.
  [[nodiscard]] std::vector<std::uint64_t> AndSlices(const SliceAddr& a,
                                                     const SliceAddr& b);

  [[nodiscard]] const ArrayOpCounts& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] const BitCounter& bit_counter() const noexcept {
    return counter_;
  }
  /// Accumulated triangle count (total of all AND popcounts).
  [[nodiscard]] std::uint64_t accumulated_count() const noexcept {
    return counter_.total();
  }

  void ResetCounters() noexcept {
    counts_ = {};
    counter_.Reset();
  }

  /// Starts recording the command stream (up to max_entries; further
  /// commands still execute but are not recorded — `trace_truncated`
  /// reports it). Used by tests and the debugging playground to assert
  /// exact command sequences.
  void EnableTrace(std::size_t max_entries);
  void DisableTrace() noexcept;
  [[nodiscard]] const std::vector<TraceEntry>& trace() const noexcept {
    return trace_;
  }
  [[nodiscard]] bool trace_truncated() const noexcept {
    return trace_truncated_;
  }

 private:
  void Record(TraceEntry::Op op, const SliceAddr& a,
              const SliceAddr& b = {});
  void CheckAddr(const SliceAddr& addr) const;
  [[nodiscard]] std::span<std::uint64_t> SlotWords(std::uint64_t flat);

  nvsim::ArrayConfig config_;
  std::uint32_t words_per_slice_;
  std::uint64_t num_subarrays_;
  std::uint64_t slots_per_subarray_;
  std::uint64_t total_slots_;
  std::vector<std::uint64_t> storage_;  // total_slots_ * words_per_slice_
  ArrayOpCounts counts_;
  BitCounter counter_;
  bool tracing_ = false;
  bool trace_truncated_ = false;
  std::size_t trace_capacity_ = 0;
  std::vector<TraceEntry> trace_;
};

}  // namespace tcim::pim
