#include "pim/bit_counter.h"

#include <stdexcept>

#include "bitmatrix/popcount.h"

namespace tcim::pim {

BitCounter::BitCounter(const BitCounterParams& params) : params_(params) {
  if (params_.word_bits == 0 || params_.word_bits % 8 != 0) {
    throw std::invalid_argument(
        "BitCounter: word_bits must be a positive multiple of 8 (LUT bytes)");
  }
}

std::uint32_t BitCounter::Feed(std::uint64_t word) {
  const auto count =
      static_cast<std::uint32_t>(bit::PopcountLut8(word));
  total_ += count;
  ++words_processed_;
  return count;
}

std::uint64_t BitCounter::FeedWords(std::span<const std::uint64_t> words) {
  std::uint64_t sum = 0;
  for (const std::uint64_t w : words) {
    sum += Feed(w);
  }
  return sum;
}

}  // namespace tcim::pim
