// Hardware bit-counter module model (paper §V-A): "we split the vector
// and feed each 8-bit sub-vector into an 8-256 look-up-table to get its
// non-zero element number, then sum up the non-zero numbers in all
// sub-vectors", synthesized at 45nm.
//
// Functionally identical to popcount (asserted against all other
// popcount strategies by the tests); architecturally it contributes a
// per-word latency/energy that the perf model accounts for. The module
// sits behind the sense amplifiers (Fig. 4) and is pipelined: its
// throughput matches one slice per AND issue, so in the parallel
// latency model it only adds a drain term.
//
// Layer: §6 pim — see docs/ARCHITECTURE.md. Units: latency_per_word
// in seconds, energy_per_word in joules (SI).
#pragma once

#include <cstdint>
#include <span>

namespace tcim::pim {

/// Synthesis-class constants for the 45nm LUT+adder-tree implementation.
struct BitCounterParams {
  std::uint32_t word_bits = 64;      ///< vector width processed per op
  double latency_per_word = 1.0e-9;  ///< LUT + 3-level adder tree [s]
  double energy_per_word = 50e-15;   ///< [J]
  double leakage = 5e-6;             ///< [W]
};

/// Stateful accumulator mirroring the hardware counter: AND results
/// stream in word by word, the count accumulates until Reset().
class BitCounter {
 public:
  explicit BitCounter(const BitCounterParams& params = {});

  /// Feeds one word; returns its popcount and adds it to the running
  /// total. Uses the per-byte LUT path (the hardware structure).
  std::uint32_t Feed(std::uint64_t word);
  /// Feeds a multi-word slice.
  std::uint64_t FeedWords(std::span<const std::uint64_t> words);

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t words_processed() const noexcept {
    return words_processed_;
  }
  [[nodiscard]] const BitCounterParams& params() const noexcept {
    return params_;
  }

  /// Total dynamic energy spent so far [J].
  [[nodiscard]] double DynamicEnergy() const noexcept {
    return static_cast<double>(words_processed_) * params_.energy_per_word;
  }
  /// Serial processing time of everything fed so far [s].
  [[nodiscard]] double SerialLatency() const noexcept {
    return static_cast<double>(words_processed_) * params_.latency_per_word;
  }

  void Reset() noexcept {
    total_ = 0;
    words_processed_ = 0;
  }

 private:
  BitCounterParams params_;
  std::uint64_t total_ = 0;
  std::uint64_t words_processed_ = 0;
};

}  // namespace tcim::pim
