// TcimAccelerator — the public end-to-end API of this library.
//
// One call runs the paper's complete pipeline (Fig. 4 / Algorithm 1):
//
//   graph  -> orientation -> slicing/compression -> mapping onto the
//   computational STT-MRAM array (staging + LRU column cache) ->
//   dual-row-activation ANDs + bit counting  -> triangle count,
//   plus the device-to-architecture latency/energy evaluation.
//
// Typical use:
//   tcim::core::TcimConfig config;                 // paper defaults
//   tcim::core::TcimAccelerator accel(config);
//   tcim::core::TcimResult r = accel.Run(graph);
//   r.triangles, r.perf.serial_seconds, r.exec.cache.HitRate(), ...
//
// Layer: §8 core — see docs/ARCHITECTURE.md. Units: all latencies in
// seconds and energies in joules (SI throughout, util/units.h);
// capacities in bytes. TcimResult::triangles counts each triangle
// exactly once regardless of the configured orientation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "arch/controller.h"
#include "bitmatrix/sliced_matrix.h"
#include "core/perf_model.h"
#include "device/mtj_device.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "nvsim/array_model.h"
#include "nvsim/tech.h"
#include "pim/bit_counter.h"

namespace tcim::core {

/// Full configuration with the paper's evaluation defaults:
/// |S| = 64, 16 MB computational array, LRU replacement,
/// upper-triangular orientation.
struct TcimConfig {
  std::uint32_t slice_bits = 64;
  graph::Orientation orientation = graph::Orientation::kUpper;
  device::MtjParams mtj = device::PaperMtjParams();
  nvsim::TechnologyParams tech = nvsim::Default45nm();
  nvsim::ArrayConfig array;  // 16 MB default; access width synced to slice_bits
  arch::ControllerConfig controller;
  pim::BitCounterParams bit_counter;
  PerfModelParams perf;

  /// Normalizes dependent fields (array.access_width_bits = slice_bits,
  /// bit_counter.word_bits) and validates. Called by the accelerator.
  void Normalize();
};

/// Everything a run produces.
struct TcimResult {
  std::uint64_t triangles = 0;
  arch::ExecStats exec;             ///< op counts, cache stats (Fig. 5)
  bit::SliceStats slices;           ///< Tables III/IV inputs
  PerfResult perf;                  ///< Table V "TCIM" / Fig. 6 inputs
  double host_seconds = 0.0;        ///< wall-clock of the simulation itself
};

class TcimAccelerator {
 public:
  explicit TcimAccelerator(TcimConfig config);

  /// Full pipeline on an undirected graph.
  [[nodiscard]] TcimResult Run(const graph::Graph& g) const;

  /// Pipeline over a pre-built sliced matrix (skips orientation +
  /// slicing; used by benches that sweep cache/policy on a fixed
  /// matrix). `orientation` must match how the matrix was built.
  [[nodiscard]] TcimResult RunOnMatrix(const bit::SlicedMatrix& matrix,
                                       graph::Orientation orientation) const;

  /// Pipeline over rows [row_begin, row_end) of a pre-built matrix —
  /// one bank's shard in the multi-bank runtime (runtime::BankPool).
  /// Disjoint row ranges partition the accumulated bitcount exactly,
  /// so summing shards reproduces the full-run count. Caveats of the
  /// partial view: `triangles` divides the shard's raw bitcount by the
  /// orientation multiplier (for kFullSymmetric a shard's bitcount
  /// need not be divisible by 6 — aggregate raw bitcounts across
  /// shards first, as runtime::AggregateClusterResult does), and
  /// `slices` is left empty (the matrix is shared; the caller computes
  /// its stats once, not per shard).
  [[nodiscard]] TcimResult RunOnMatrixRows(const bit::SlicedMatrix& matrix,
                                           graph::Orientation orientation,
                                           std::uint32_t row_begin,
                                           std::uint32_t row_end) const;

  /// Pipeline over one bank's 2D execution plan (hub lane + tail
  /// tiles) — the shard unit of the k2dHubReplicated runtime. Same
  /// partial-view caveats as RunOnMatrixRows: aggregate raw bitcounts
  /// across banks before the orientation divide, and `slices` is left
  /// empty.
  [[nodiscard]] TcimResult RunOnMatrixPlan(const bit::SlicedMatrix& matrix,
                                           graph::Orientation orientation,
                                           const arch::BankExecPlan& plan)
      const;

  [[nodiscard]] const TcimConfig& config() const noexcept { return config_; }
  /// The characterized device (Table I downstream values).
  [[nodiscard]] const device::MtjDevice& device() const noexcept {
    return *device_;
  }
  /// The NVSim-level per-op costs in effect.
  [[nodiscard]] const nvsim::ArrayPerf& array_perf() const noexcept {
    return array_model_->perf();
  }

 private:
  TcimConfig config_;
  std::unique_ptr<device::MtjDevice> device_;
  std::unique_ptr<nvsim::ArrayModel> array_model_;
};

}  // namespace tcim::core
