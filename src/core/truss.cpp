#include "core/truss.h"

#include <algorithm>
#include <stdexcept>

namespace tcim::core {
namespace {

using graph::Graph;
using graph::VertexId;

/// Edge-indexed adjacency view: for each vertex, its incident
/// canonical edge ids alongside the neighbor ids, supporting O(deg)
/// merge enumeration of triangles through an edge.
struct EdgeAdjacency {
  explicit EdgeAdjacency(const Graph& g)
      : offsets(g.offsets().begin(), g.offsets().end()),
        neighbor(g.adjacency().begin(), g.adjacency().end()),
        edge_id(g.adjacency().size()) {
    // Assign canonical ids in ForEachEdge order, then mirror them to
    // the reverse arcs.
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    std::uint64_t next_id = 0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (const VertexId v : g.Neighbors(u)) {
        if (v > u) {
          const std::uint64_t arc_uv = cursor[u]++;
          // Find the reverse arc position via the cursor of v as well:
          // arcs are visited in sorted order on both sides, so v's
          // cursor points at u exactly when we get here.
          const std::uint64_t arc_vu = cursor[v]++;
          edge_id[arc_uv] = next_id;
          edge_id[arc_vu] = next_id;
          ++next_id;
        }
      }
    }
    // The cursor trick above assumes each adjacency list is consumed
    // in order, which holds only if for every edge (u,v), all of v's
    // neighbors smaller than u have already been processed — true
    // because we sweep u ascending and lists are sorted. Validate in
    // debug builds via the arc endpoints.
  }

  std::vector<std::uint64_t> offsets;
  std::vector<VertexId> neighbor;
  std::vector<std::uint64_t> edge_id;
};

}  // namespace

std::uint64_t TrussResult::KTrussEdgeCount(std::uint32_t k) const {
  std::uint64_t count = 0;
  for (const std::uint32_t t : trussness) {
    if (t >= k) ++count;
  }
  return count;
}

std::vector<std::uint64_t> TrussResult::Histogram() const {
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_truss) + 1, 0);
  for (const std::uint32_t t : trussness) {
    ++hist[t];
  }
  return hist;
}

TrussResult DecomposeTruss(const Graph& g,
                           std::vector<std::uint32_t> support) {
  const std::uint64_t m = g.num_edges();
  if (support.size() != m) {
    throw std::invalid_argument("DecomposeTruss: support size mismatch");
  }
  TrussResult result;
  result.trussness.assign(m, 2);
  if (m == 0) return result;

  const EdgeAdjacency adj(g);

  // Endpoints per canonical edge.
  std::vector<VertexId> eu(m);
  std::vector<VertexId> ev(m);
  {
    std::uint64_t e = 0;
    g.ForEachEdge([&](VertexId u, VertexId v) {
      eu[e] = u;
      ev[e] = v;
      ++e;
    });
  }

  // Bucket queue over supports (supports only decrease).
  std::uint32_t max_sup = 0;
  for (const std::uint32_t s : support) max_sup = std::max(max_sup, s);
  std::vector<std::vector<std::uint32_t>> buckets(max_sup + 1);
  for (std::uint64_t e = 0; e < m; ++e) {
    buckets[support[e]].push_back(static_cast<std::uint32_t>(e));
  }
  std::vector<bool> removed(m, false);

  std::uint32_t k = 2;
  std::uint64_t remaining = m;
  std::uint32_t scan = 0;  // current bucket floor
  while (remaining > 0) {
    // Find the lowest-support live edge.
    while (scan <= max_sup &&
           (buckets[scan].empty() ||
            [&] {  // drop stale entries lazily
              while (!buckets[scan].empty()) {
                const std::uint32_t e = buckets[scan].back();
                if (removed[e] || support[e] != scan) {
                  buckets[scan].pop_back();
                } else {
                  return false;  // live entry found
                }
              }
              return true;
            }())) {
      ++scan;
    }
    if (scan > max_sup) break;  // defensive; remaining should be 0

    const std::uint32_t e = buckets[scan].back();
    buckets[scan].pop_back();
    if (support[e] > k - 2) {
      k = support[e] + 2;  // peel level rises to this edge's support
    }
    result.trussness[e] = k;
    removed[e] = true;
    --remaining;

    // Destroy every triangle through e = (u, v): the two partner
    // edges (u, w), (v, w) lose one support each.
    const VertexId u = eu[e];
    const VertexId v = ev[e];
    std::uint64_t a = adj.offsets[u];
    std::uint64_t b = adj.offsets[v];
    const std::uint64_t ae = adj.offsets[u + 1];
    const std::uint64_t be = adj.offsets[v + 1];
    while (a < ae && b < be) {
      if (adj.neighbor[a] < adj.neighbor[b]) {
        ++a;
      } else if (adj.neighbor[a] > adj.neighbor[b]) {
        ++b;
      } else {
        const std::uint64_t euw = adj.edge_id[a];
        const std::uint64_t evw = adj.edge_id[b];
        if (!removed[euw] && !removed[evw]) {
          for (const std::uint64_t partner : {euw, evw}) {
            // Support never drops below the current peel floor k-2:
            // such edges are already doomed at level k and clamping
            // keeps trussness assignment monotone.
            if (support[partner] > k - 2) {
              --support[partner];
              buckets[support[partner]].push_back(
                  static_cast<std::uint32_t>(partner));
              if (support[partner] < scan) {
                scan = support[partner];
              }
            }
          }
        }
        ++a;
        ++b;
      }
    }
  }

  result.max_truss = 2;
  for (const std::uint32_t t : result.trussness) {
    result.max_truss = std::max(result.max_truss, t);
  }
  return result;
}

TrussResult DecomposeTrussCpu(const Graph& g) {
  return DecomposeTruss(g, ComputeEdgeSupportsCpu(g).support);
}

}  // namespace tcim::core
