#include "core/bitwise_tc.h"

#include <stdexcept>
#include <vector>

#include "bitmatrix/bitvector.h"

namespace tcim::core {

bit::SlicedMatrix BuildSlicedMatrix(const graph::Graph& g,
                                    graph::Orientation orientation,
                                    std::uint32_t slice_bits) {
  const graph::OrientedCsr oriented = Orient(g, orientation);
  return bit::SlicedMatrix::FromCsr(oriented.num_vertices, oriented.offsets,
                                    oriented.neighbors, slice_bits);
}

std::uint64_t CountTrianglesDense(const graph::Graph& g,
                                  graph::Orientation orientation) {
  constexpr std::uint32_t kMaxDense = 1 << 14;
  if (g.num_vertices() > kMaxDense) {
    throw std::invalid_argument(
        "CountTrianglesDense: graph too large for dense bitmaps");
  }
  const graph::OrientedCsr oriented = Orient(g, orientation);
  const std::uint32_t n = oriented.num_vertices;

  // Materialize rows (out-neighbours) and columns (in-neighbours).
  std::vector<bit::BitVector> rows(n, bit::BitVector(n));
  std::vector<bit::BitVector> cols(n, bit::BitVector(n));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint64_t e = oriented.offsets[i]; e < oriented.offsets[i + 1];
         ++e) {
      const std::uint32_t j = oriented.neighbors[e];
      rows[i].Set(j);
      cols[j].Set(i);
    }
  }

  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    rows[i].ForEachSetBit([&](std::uint64_t j) {
      total += rows[i].AndCount(cols[static_cast<std::uint32_t>(j)]);
    });
  }
  return total / graph::CountMultiplier(orientation);
}

std::uint64_t CountTrianglesSliced(const bit::SlicedMatrix& matrix,
                                   graph::Orientation orientation,
                                   bit::PopcountKind popcount) {
  return matrix.AndPopcountAllEdges(popcount) /
         graph::CountMultiplier(orientation);
}

std::uint64_t CountTrianglesSliced(const graph::Graph& g,
                                   graph::Orientation orientation,
                                   std::uint32_t slice_bits,
                                   bit::PopcountKind popcount) {
  const bit::SlicedMatrix matrix =
      BuildSlicedMatrix(g, orientation, slice_bits);
  return CountTrianglesSliced(matrix, orientation, popcount);
}

}  // namespace tcim::core
