// k-truss decomposition on top of the TCIM support kernel.
//
// The k-truss of G is the maximal subgraph in which every edge is
// contained in at least k-2 triangles (of that subgraph); the
// *trussness* of an edge is the largest k whose k-truss contains it.
// Truss decomposition = TC's per-edge generalization, and the standard
// companion benchmark of the paper's GPU/FPGA comparators [2][3].
//
// Pipeline: edge supports from the (in-memory) AND+BitCount kernel
// (core/edge_support.h), then the classic peeling algorithm on the
// host: repeatedly remove the edge of minimum support, fixing up the
// supports of the other two edges of each destroyed triangle.
//
// Layer: §8 core — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "core/edge_support.h"
#include "graph/graph.h"

namespace tcim::core {

struct TrussResult {
  /// trussness[e] for canonical edge e (ForEachEdge order); >= 2.
  std::vector<std::uint32_t> trussness;
  /// Largest k with a non-empty k-truss (>= 2; 2 for triangle-free).
  std::uint32_t max_truss = 2;

  /// Number of edges with trussness >= k.
  [[nodiscard]] std::uint64_t KTrussEdgeCount(std::uint32_t k) const;
  /// Histogram: count of edges per trussness value (index = k).
  [[nodiscard]] std::vector<std::uint64_t> Histogram() const;
};

/// Peeling decomposition given precomputed supports (consumed).
/// Supports must be the triangle supports of `g`'s canonical edges.
[[nodiscard]] TrussResult DecomposeTruss(const graph::Graph& g,
                                         std::vector<std::uint32_t> support);

/// Convenience: CPU supports + peeling.
[[nodiscard]] TrussResult DecomposeTrussCpu(const graph::Graph& g);

}  // namespace tcim::core
