// Behavioural latency/energy model (paper §V-A: "a behavioural-level
// simulator ... taking architectural-level results and memory array
// performance to calculate the latency and energy that spends on TC
// in-memory accelerator").
//
// Inputs: the architectural op counts (arch::ExecStats) and the
// NVSim-level per-op costs (nvsim::ArrayPerf). Outputs: two latency
// views and an energy breakdown.
//
//  * serial latency — every array command issued back-to-back by the
//    single controller (Fig. 4 has one controller/global buffer); this
//    is the conservative figure closest to the paper's Table V "TCIM"
//    column.
//  * parallel latency — critical-path over subarrays: commands to
//    different subarrays overlap, each subarray serializes its own
//    ops; plus the controller issue overhead per command. This is the
//    upper bound the architecture's bank-level parallelism exposes.
//
// Layer: §8 core — see docs/ARCHITECTURE.md. Units: latencies in
// seconds, energies in joules, power in watts (SI).
#pragma once

#include <cstdint>
#include <string>

#include "arch/controller.h"
#include "nvsim/array_model.h"
#include "pim/bit_counter.h"

namespace tcim::core {

struct EnergyBreakdown {
  double row_write_j = 0.0;
  double col_write_j = 0.0;
  double and_j = 0.0;
  double bitcount_j = 0.0;
  double buffer_io_j = 0.0;   ///< controller/data-buffer overhead
  double leakage_j = 0.0;     ///< background power x serial latency

  [[nodiscard]] double Total() const noexcept {
    return row_write_j + col_write_j + and_j + bitcount_j + buffer_io_j +
           leakage_j;
  }
};

struct LatencyBreakdown {
  double row_write_s = 0.0;
  double col_write_s = 0.0;
  double and_s = 0.0;
  double bitcount_s = 0.0;  ///< pipeline drain only (counter is pipelined)

  [[nodiscard]] double SerialTotal() const noexcept {
    return row_write_s + col_write_s + and_s + bitcount_s;
  }
};

struct PerfResult {
  LatencyBreakdown latency;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;  ///< subarray critical path
  EnergyBreakdown energy;
  double energy_joules = 0.0;     ///< accelerator (chip) energy only
  /// Whole-platform energy: chip energy + host power x serial runtime.
  /// The paper's TCIM runs on a single-core host that drives the
  /// controller (§V-A), and its Fig. 6 energy is platform-level — this
  /// is the number comparable against the FPGA board energy.
  double platform_joules = 0.0;
  double avg_power_w = 0.0;  ///< chip energy / serial time

  [[nodiscard]] std::string Summary() const;
};

/// Model knobs beyond what ArrayPerf carries.
struct PerfModelParams {
  /// Effective controller/data-buffer occupancy per issued array
  /// command [s]: valid-slice index lookup, array status update and
  /// command generation on the host-driven controller (Fig. 4 left).
  /// Calibrated so the serial TCIM runtime lands in the regime of the
  /// paper's Table V TCIM column (see EXPERIMENTS.md).
  double issue_overhead = 10e-9;
  /// Data-buffer energy per issued command [J].
  double issue_energy = 0.5e-12;
  /// Active power of the single-core host platform driving the
  /// accelerator [W] (E5430-class core, as in the paper's setup).
  double host_platform_power = 20.0;
};

/// Combines op counts with per-op costs. Pure function of its inputs.
[[nodiscard]] PerfResult EvaluatePerf(const arch::ExecStats& stats,
                                      const nvsim::ArrayPerf& array_perf,
                                      const pim::BitCounterParams& counter,
                                      const PerfModelParams& params = {});

}  // namespace tcim::core
