// The paper's bitwise triangle-counting method (§III), in pure
// software.
//
//   TC(G) = BitCount(AND(A[i][*], A[*][j]^T))  summed over A[i][j]=1
//
// Two software paths:
//  * a dense path over BitVector rows/columns (the Fig. 2 walkthrough,
//    exact for any orientation) — reference for small graphs;
//  * the sliced path over the compressed valid-slice stores — this is
//    the paper's Table V "This Work w/o PIM" configuration (slicing +
//    reuse running on a plain CPU, no in-memory hardware).
//
// Layer: §8 core — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "bitmatrix/popcount.h"
#include "bitmatrix/sliced_matrix.h"
#include "graph/graph.h"
#include "graph/orientation.h"

namespace tcim::core {

/// Builds the compressed slice stores for `g` under `orientation`.
/// This is the offline "Data Slicing" stage of Fig. 4.
[[nodiscard]] bit::SlicedMatrix BuildSlicedMatrix(
    const graph::Graph& g, graph::Orientation orientation,
    std::uint32_t slice_bits);

/// Dense-bitmap evaluation of Eq. (5). Memory O(n^2 / 8); intended for
/// graphs up to a few thousand vertices (tests, walkthroughs).
[[nodiscard]] std::uint64_t CountTrianglesDense(
    const graph::Graph& g,
    graph::Orientation orientation = graph::Orientation::kUpper);

/// Sliced evaluation of Eq. (5) — the "w/o PIM" software path.
/// Returns the triangle count (orientation multiplier applied). At
/// the default popcount the valid slice pairs are gathered per pivot
/// row and evaluated in blocks by the batched pair kernel on the
/// active SIMD backend — one dispatch per block, not per slice pair
/// (bit::AndPopcountPairs; forceable via TCIM_KERNEL).
[[nodiscard]] std::uint64_t CountTrianglesSliced(
    const graph::Graph& g,
    graph::Orientation orientation = graph::Orientation::kUpper,
    std::uint32_t slice_bits = 64,
    bit::PopcountKind popcount = bit::PopcountKind::kBuiltin);

/// Same, over a pre-built matrix (lets benches time compute separately
/// from slicing).
[[nodiscard]] std::uint64_t CountTrianglesSliced(
    const bit::SlicedMatrix& matrix, graph::Orientation orientation,
    bit::PopcountKind popcount = bit::PopcountKind::kBuiltin);

}  // namespace tcim::core
