#include "core/edge_support.h"

#include <algorithm>
#include <stdexcept>

#include "arch/controller.h"
#include "core/bitwise_tc.h"
#include "pim/computational_array.h"

namespace tcim::core {
namespace {

using graph::Graph;
using graph::VertexId;

/// Canonical edge id lookup: for (u, v) with u < v, the edge's
/// position in ForEachEdge order = rank of v among u's
/// greater-neighbors plus the running offset of u.
class EdgeIndex {
 public:
  explicit EdgeIndex(const Graph& g) : graph_(g) {
    offsets_.assign(static_cast<std::size_t>(g.num_vertices()) + 1, 0);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const auto nbrs = g.Neighbors(u);
      const auto greater = std::upper_bound(nbrs.begin(), nbrs.end(), u);
      offsets_[u + 1] =
          offsets_[u] + static_cast<std::uint64_t>(nbrs.end() - greater);
    }
  }

  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return offsets_.back();
  }

  /// Edge id of (u, v); arguments may be in either order.
  [[nodiscard]] std::uint64_t IdOf(VertexId u, VertexId v) const {
    if (u > v) std::swap(u, v);
    const auto nbrs = graph_.Neighbors(u);
    const auto greater = std::upper_bound(nbrs.begin(), nbrs.end(), u);
    const auto it = std::lower_bound(greater, nbrs.end(), v);
    if (it == nbrs.end() || *it != v) {
      throw std::invalid_argument("EdgeIndex::IdOf: no such edge");
    }
    return offsets_[u] + static_cast<std::uint64_t>(it - greater);
  }

 private:
  const Graph& graph_;
  std::vector<std::uint64_t> offsets_;
};

}  // namespace

std::uint64_t EdgeSupports::TriangleCount() const noexcept {
  std::uint64_t total = 0;
  for (const std::uint32_t s : support) total += s;
  return total / 3;
}

EdgeSupports ComputeEdgeSupportsCpu(const Graph& g) {
  EdgeSupports out;
  out.support.reserve(g.num_edges());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    const auto nu = g.Neighbors(u);
    const auto nv = g.Neighbors(v);
    std::uint32_t common = 0;
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < nu.size() && b < nv.size()) {
      if (nu[a] < nv[b]) {
        ++a;
      } else if (nu[a] > nv[b]) {
        ++b;
      } else {
        ++common;
        ++a;
        ++b;
      }
    }
    out.support.push_back(common);
  });
  return out;
}

EdgeSupports ComputeEdgeSupportsTcim(const Graph& g,
                                     const TcimAccelerator& accelerator,
                                     TcimResult* result) {
  // Supports need full neighborhoods: build the symmetric matrix
  // regardless of the accelerator's counting orientation.
  const bit::SlicedMatrix matrix = BuildSlicedMatrix(
      g, graph::Orientation::kFullSymmetric,
      accelerator.config().slice_bits);

  struct Sink final : arch::EdgeCountSink {
    explicit Sink(const Graph& g) : index(g), supports(index.num_edges(), 0) {}
    void OnEdge(std::uint32_t i, std::uint32_t j,
                std::uint64_t bitcount) override {
      // Each undirected edge arrives twice (both arc directions) with
      // the same support; keep the max (they must agree — tests pin
      // the symmetric-visit equality separately).
      const std::uint64_t e = index.IdOf(i, j);
      supports[e] = static_cast<std::uint32_t>(bitcount);
    }
    EdgeIndex index;
    std::vector<std::uint32_t> supports;
  } sink{g};

  pim::ComputationalArray array(accelerator.config().array,
                                accelerator.config().bit_counter);
  arch::Controller controller(array, accelerator.config().controller);
  arch::ExecStats stats = controller.Run(matrix, &sink);

  if (result != nullptr) {
    result->exec = std::move(stats);
    result->triangles = result->exec.accumulated_bitcount /
                        graph::CountMultiplier(
                            graph::Orientation::kFullSymmetric);
    result->slices = matrix.ComputeStats();
    result->perf =
        EvaluatePerf(result->exec, accelerator.array_perf(),
                     accelerator.config().bit_counter,
                     accelerator.config().perf);
  }

  EdgeSupports out;
  out.support = std::move(sink.supports);
  return out;
}

}  // namespace tcim::core
