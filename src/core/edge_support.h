// Per-edge triangle support via the TCIM kernel.
//
// The support of edge (u, v) — the number of triangles containing it —
// is |N(u) ∩ N(v)|, which in the bitwise formulation is exactly
// BitCount(AND(Row_u, Col_v)) over the FULL SYMMETRIC adjacency
// matrix (both stores hold complete neighborhoods). TCIM therefore
// computes truss-style supports with the identical in-memory dataflow
// it uses for counting: one accumulated BitCount per edge instead of
// one global total. This is the enabling kernel for the k-truss
// extension (the paper's GPU/FPGA comparators [2][3] solve TC *and*
// truss decomposition; the conclusion positions TCIM's machinery as
// problem-agnostic).
//
// Layer: §8 core — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "core/accelerator.h"
#include "graph/graph.h"

namespace tcim::core {

/// Canonical edge indexing: edges in Graph::ForEachEdge order
/// (u < v, lexicographic). EdgeId is the position in that order.
struct EdgeSupports {
  /// support[e] = number of triangles containing canonical edge e.
  std::vector<std::uint32_t> support;
  /// Σ support / 3 (each triangle has three edges) — cross-check.
  [[nodiscard]] std::uint64_t TriangleCount() const noexcept;
};

/// Software path: merge-intersect full neighborhoods per edge.
[[nodiscard]] EdgeSupports ComputeEdgeSupportsCpu(const graph::Graph& g);

/// TCIM path: full pipeline on the symmetric sliced matrix with the
/// per-edge BitCount sink; also returns the run's ExecStats/perf via
/// `result` when non-null. Each undirected edge is visited twice (as
/// (u,v) and (v,u)); both visits produce the same support, asserted in
/// tests.
[[nodiscard]] EdgeSupports ComputeEdgeSupportsTcim(
    const graph::Graph& g, const TcimAccelerator& accelerator,
    TcimResult* result = nullptr);

}  // namespace tcim::core
