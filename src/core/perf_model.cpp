#include "core/perf_model.h"

#include <algorithm>
#include <cstdio>

namespace tcim::core {

PerfResult EvaluatePerf(const arch::ExecStats& stats,
                        const nvsim::ArrayPerf& array_perf,
                        const pim::BitCounterParams& counter,
                        const PerfModelParams& params) {
  PerfResult r;

  const double t_write = array_perf.write_slice.latency;
  const double t_and = array_perf.and_slice.latency;

  r.latency.row_write_s =
      static_cast<double>(stats.row_slice_writes) * t_write;
  r.latency.col_write_s =
      static_cast<double>(stats.col_slice_writes) * t_write;
  r.latency.and_s = static_cast<double>(stats.valid_pairs) * t_and;
  // The bit counter is pipelined behind the sense amplifiers: in
  // steady state it overlaps the AND stream and only the drain of the
  // last slice shows up.
  r.latency.bitcount_s = counter.latency_per_word;

  const double issue =
      static_cast<double>(stats.TotalWrites() + stats.valid_pairs) *
      params.issue_overhead;
  r.serial_seconds = r.latency.SerialTotal() + issue;

  // Parallel view: each subarray serializes its own writes+ANDs; the
  // chip finishes when the busiest subarray does. The single
  // controller still pays the issue overhead for every command.
  double critical = 0.0;
  for (std::size_t s = 0; s < stats.per_subarray_ands.size(); ++s) {
    const double t =
        static_cast<double>(stats.per_subarray_ands[s]) * t_and +
        static_cast<double>(stats.per_subarray_writes[s]) * t_write;
    critical = std::max(critical, t);
  }
  r.parallel_seconds = std::max(critical, issue) + counter.latency_per_word;

  r.energy.row_write_j = static_cast<double>(stats.row_slice_writes) *
                         array_perf.write_slice.energy;
  // Replica warm-up writes (2D hub replication) are load-time work:
  // they cost write energy but sit off the per-query latency path, so
  // they are priced here and nowhere in the latency model above.
  r.energy.col_write_j =
      static_cast<double>(stats.col_slice_writes + stats.replica_slice_writes) *
      array_perf.write_slice.energy;
  r.energy.and_j =
      static_cast<double>(stats.valid_pairs) * array_perf.and_slice.energy;
  r.energy.bitcount_j =
      static_cast<double>(stats.bitcount_words) * counter.energy_per_word;
  r.energy.buffer_io_j =
      static_cast<double>(stats.TotalWrites() + stats.valid_pairs) *
      params.issue_energy;
  r.energy.leakage_j = array_perf.leakage_w * r.serial_seconds;
  r.energy_joules = r.energy.Total();
  r.platform_joules =
      r.energy_joules + params.host_platform_power * r.serial_seconds;
  r.avg_power_w =
      r.serial_seconds > 0 ? r.energy_joules / r.serial_seconds : 0.0;
  return r;
}

std::string PerfResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "serial %.3f ms, parallel %.3f ms, energy %.3f mJ, avg "
                "power %.1f mW",
                serial_seconds * 1e3, parallel_seconds * 1e3,
                energy_joules * 1e3, avg_power_w * 1e3);
  return buf;
}

}  // namespace tcim::core
