#include "core/accelerator.h"

#include <stdexcept>

#include "core/bitwise_tc.h"
#include "pim/computational_array.h"
#include "util/timer.h"

namespace tcim::core {

void TcimConfig::Normalize() {
  if (slice_bits == 0 || slice_bits > 512) {
    throw std::invalid_argument("TcimConfig: slice_bits must be in [1,512]");
  }
  array.access_width_bits = slice_bits;
  if (array.subarray_cols % array.access_width_bits != 0) {
    throw std::invalid_argument(
        "TcimConfig: subarray columns must be a multiple of slice_bits");
  }
  bit_counter.word_bits = ((slice_bits + 7) / 8) * 8;
  mtj.Validate();
  tech.Validate();
  array.Validate();
}

TcimAccelerator::TcimAccelerator(TcimConfig config)
    : config_(std::move(config)) {
  config_.Normalize();
  device_ = std::make_unique<device::MtjDevice>(config_.mtj);
  array_model_ = std::make_unique<nvsim::ArrayModel>(config_.tech,
                                                     config_.array, *device_);
}

TcimResult TcimAccelerator::Run(const graph::Graph& g) const {
  util::Timer timer;
  const bit::SlicedMatrix matrix =
      BuildSlicedMatrix(g, config_.orientation, config_.slice_bits);
  TcimResult result = RunOnMatrix(matrix, config_.orientation);
  result.host_seconds = timer.ElapsedSeconds();
  return result;
}

TcimResult TcimAccelerator::RunOnMatrix(const bit::SlicedMatrix& matrix,
                                        graph::Orientation orientation) const {
  util::Timer timer;
  TcimResult result =
      RunOnMatrixRows(matrix, orientation, 0, matrix.num_vertices());
  result.slices = matrix.ComputeStats();
  result.host_seconds = timer.ElapsedSeconds();
  return result;
}

TcimResult TcimAccelerator::RunOnMatrixRows(const bit::SlicedMatrix& matrix,
                                            graph::Orientation orientation,
                                            std::uint32_t row_begin,
                                            std::uint32_t row_end) const {
  util::Timer timer;
  if (matrix.slice_bits() != config_.slice_bits) {
    throw std::invalid_argument(
        "TcimAccelerator: matrix slice width != configured slice_bits");
  }

  pim::ComputationalArray array(config_.array, config_.bit_counter);
  arch::Controller controller(array, config_.controller);

  TcimResult result;
  result.exec = controller.RunRows(matrix, row_begin, row_end);
  result.triangles = result.exec.accumulated_bitcount /
                     graph::CountMultiplier(orientation);
  result.perf = EvaluatePerf(result.exec, array_model_->perf(),
                             config_.bit_counter, config_.perf);
  result.host_seconds = timer.ElapsedSeconds();
  return result;
}

TcimResult TcimAccelerator::RunOnMatrixPlan(
    const bit::SlicedMatrix& matrix, graph::Orientation orientation,
    const arch::BankExecPlan& plan) const {
  util::Timer timer;
  if (matrix.slice_bits() != config_.slice_bits) {
    throw std::invalid_argument(
        "TcimAccelerator: matrix slice width != configured slice_bits");
  }

  pim::ComputationalArray array(config_.array, config_.bit_counter);
  arch::Controller controller(array, config_.controller);

  TcimResult result;
  result.exec = controller.RunPlan(matrix, plan);
  result.triangles = result.exec.accumulated_bitcount /
                     graph::CountMultiplier(orientation);
  result.perf = EvaluatePerf(result.exec, array_model_->perf(),
                             config_.bit_counter, config_.perf);
  result.host_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace tcim::core
