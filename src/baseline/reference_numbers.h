// Published comparator numbers (Table V GPU/FPGA columns, Fig. 6 FPGA
// energy), and the documented assumptions used to turn the paper's
// runtimes into energies.
//
// The GPU/FPGA comparators of the paper are the HPEC'18 collaborative
// CPU+GPU and FPGA triangle-counting systems ([2],[3] in the paper);
// neither the hardware (Titan Xp-class GPU, VCU110-class FPGA) nor the
// authors' binaries are available here, so — per the substitution rule
// in DESIGN.md §3 — their *published* runtimes are carried as
// constants through graph::PaperRef, and this header adds the board
// power assumptions needed for energy comparisons.
//
// Layer: §9 baseline — see docs/ARCHITECTURE.md. Units: published
// runtimes in seconds, assumed board power in watts, derived
// energies in joules; values < 0 mean the paper reports N/A.
#pragma once

#include "graph/datasets.h"

namespace tcim::baseline {

/// Typical board power assumed for the FPGA comparator when deriving
/// absolute energy from the paper's runtime (Huang et al. HPEC'18
/// report ~20-25 W for their design; we take the midpoint).
inline constexpr double kFpgaBoardPowerWatts = 22.5;

/// Typical board power for the GPU comparator (Titan Xp class).
inline constexpr double kGpuBoardPowerWatts = 250.0;

/// Paper's FPGA runtime x assumed power; <0 when the paper has no
/// FPGA number for this dataset.
[[nodiscard]] double FpgaEnergyJoules(const graph::PaperRef& ref);

/// Paper's GPU runtime x assumed power; <0 when N/A.
[[nodiscard]] double GpuEnergyJoules(const graph::PaperRef& ref);

/// Speedup helper: paper_seconds / measured_seconds, or <0 if either
/// side is unavailable.
[[nodiscard]] double Speedup(double baseline_seconds, double ours_seconds);

}  // namespace tcim::baseline
