#include "baseline/truss_ref.h"

#include <algorithm>

namespace tcim::baseline {

std::vector<std::uint32_t> TrussDecompositionReference(
    const graph::Graph& g) {
  using graph::VertexId;
  const std::uint64_t m = g.num_edges();

  // Canonical edge list + per-edge endpoints.
  std::vector<VertexId> eu;
  std::vector<VertexId> ev;
  eu.reserve(m);
  ev.reserve(m);
  g.ForEachEdge([&](VertexId u, VertexId v) {
    eu.push_back(u);
    ev.push_back(v);
  });

  // Alive-edge adjacency as sorted neighbor lists we can rebuild.
  std::vector<bool> alive(m, true);
  std::vector<std::uint32_t> trussness(m, 2);

  const auto support_of = [&](std::uint64_t e,
                              const std::vector<std::vector<VertexId>>& adj) {
    const auto& nu = adj[eu[e]];
    const auto& nv = adj[ev[e]];
    std::uint32_t common = 0;
    std::size_t a = 0;
    std::size_t b = 0;
    while (a < nu.size() && b < nv.size()) {
      if (nu[a] < nv[b]) {
        ++a;
      } else if (nu[a] > nv[b]) {
        ++b;
      } else {
        ++common;
        ++a;
        ++b;
      }
    }
    return common;
  };

  std::uint64_t remaining = m;
  for (std::uint32_t k = 3; remaining > 0; ++k) {
    // Tighten to the k-truss: fixpoint deletion of low-support edges.
    bool changed = true;
    while (changed && remaining > 0) {
      changed = false;
      // Rebuild alive adjacency.
      std::vector<std::vector<VertexId>> adj(g.num_vertices());
      for (std::uint64_t e = 0; e < m; ++e) {
        if (!alive[e]) continue;
        adj[eu[e]].push_back(ev[e]);
        adj[ev[e]].push_back(eu[e]);
      }
      for (auto& list : adj) std::sort(list.begin(), list.end());

      for (std::uint64_t e = 0; e < m; ++e) {
        if (!alive[e]) continue;
        if (support_of(e, adj) < k - 2) {
          alive[e] = false;
          trussness[e] = k - 1;
          --remaining;
          changed = true;
        }
      }
    }
  }
  return trussness;
}

}  // namespace tcim::baseline
