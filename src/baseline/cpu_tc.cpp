#include "baseline/cpu_tc.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "bitmatrix/bitvector.h"
#include "graph/orientation.h"

namespace tcim::baseline {
namespace {

using graph::Graph;
using graph::OrientedCsr;
using graph::VertexId;

std::uint64_t NodeIterator(const Graph& g) {
  std::uint64_t count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.Neighbors(v);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      if (nbrs[a] <= v) continue;
      for (std::size_t b = a + 1; b < nbrs.size(); ++b) {
        if (g.HasEdge(nbrs[a], nbrs[b])) ++count;
      }
    }
  }
  return count;
}

std::uint64_t EdgeIteratorMerge(const Graph& g) {
  const OrientedCsr dag = Orient(g, graph::Orientation::kDegree);
  std::uint64_t count = 0;
  const auto* nbr = dag.neighbors.data();
  for (VertexId u = 0; u < dag.num_vertices; ++u) {
    const std::uint64_t ub = dag.offsets[u];
    const std::uint64_t ue = dag.offsets[u + 1];
    for (std::uint64_t e = ub; e < ue; ++e) {
      const VertexId v = nbr[e];
      // |N+(u) ∩ N+(v)| via linear merge of two sorted runs.
      std::uint64_t a = ub;
      std::uint64_t b = dag.offsets[v];
      const std::uint64_t ae = ue;
      const std::uint64_t be = dag.offsets[v + 1];
      while (a < ae && b < be) {
        if (nbr[a] < nbr[b]) {
          ++a;
        } else if (nbr[a] > nbr[b]) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
    }
  }
  return count;
}

std::uint64_t EdgeIteratorMark(const Graph& g) {
  const OrientedCsr dag = Orient(g, graph::Orientation::kDegree);
  std::vector<std::uint8_t> mark(dag.num_vertices, 0);
  std::uint64_t count = 0;
  for (VertexId u = 0; u < dag.num_vertices; ++u) {
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      mark[dag.neighbors[e]] = 1;
    }
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      const VertexId v = dag.neighbors[e];
      for (std::uint64_t f = dag.offsets[v]; f < dag.offsets[v + 1]; ++f) {
        count += mark[dag.neighbors[f]];
      }
    }
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      mark[dag.neighbors[e]] = 0;
    }
  }
  return count;
}

std::uint64_t Forward(const Graph& g) {
  const OrientedCsr dag = Orient(g, graph::Orientation::kDegree);
  // A[v]: processed in-neighbours of v, appended in increasing rank,
  // hence always sorted — intersections are linear merges.
  std::vector<std::vector<VertexId>> lower(dag.num_vertices);
  std::uint64_t count = 0;
  for (VertexId u = 0; u < dag.num_vertices; ++u) {
    for (std::uint64_t e = dag.offsets[u]; e < dag.offsets[u + 1]; ++e) {
      const VertexId v = dag.neighbors[e];
      const auto& au = lower[u];
      const auto& av = lower[v];
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < au.size() && b < av.size()) {
        if (au[a] < av[b]) {
          ++a;
        } else if (au[a] > av[b]) {
          ++b;
        } else {
          ++count;
          ++a;
          ++b;
        }
      }
      lower[v].push_back(u);
    }
  }
  return count;
}

std::uint64_t DenseTrace(const Graph& g) {
  constexpr VertexId kMaxDense = 4096;
  if (g.num_vertices() > kMaxDense) {
    throw std::invalid_argument(
        "CountTriangles(kDenseTrace): graph too large for dense rows");
  }
  const VertexId n = g.num_vertices();
  std::vector<bit::BitVector> rows(n, bit::BitVector(n));
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.Neighbors(v)) rows[v].Set(u);
  }
  // trace(A^3) = Σ_i Σ_{j in N(i)} |N(i) ∩ N(j)| counts each triangle
  // six times (3 starting vertices x 2 directions).
  std::uint64_t six_t = 0;
  for (VertexId i = 0; i < n; ++i) {
    for (const VertexId j : g.Neighbors(i)) {
      six_t += rows[i].AndCount(rows[j]);
    }
  }
  return six_t / 6;
}

}  // namespace

std::string ToString(TcAlgorithm algo) {
  switch (algo) {
    case TcAlgorithm::kNodeIterator:
      return "node-iterator";
    case TcAlgorithm::kEdgeIteratorMerge:
      return "edge-iterator-merge";
    case TcAlgorithm::kEdgeIteratorMark:
      return "edge-iterator-mark";
    case TcAlgorithm::kForward:
      return "forward";
    case TcAlgorithm::kDenseTrace:
      return "dense-trace";
  }
  return "?";
}

std::uint64_t CountTriangles(const graph::Graph& g, TcAlgorithm algo) {
  switch (algo) {
    case TcAlgorithm::kNodeIterator:
      return NodeIterator(g);
    case TcAlgorithm::kEdgeIteratorMerge:
      return EdgeIteratorMerge(g);
    case TcAlgorithm::kEdgeIteratorMark:
      return EdgeIteratorMark(g);
    case TcAlgorithm::kForward:
      return Forward(g);
    case TcAlgorithm::kDenseTrace:
      return DenseTrace(g);
  }
  throw std::invalid_argument("CountTriangles: unknown algorithm");
}

}  // namespace tcim::baseline
