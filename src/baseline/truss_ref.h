// Naive reference k-truss decomposition (definition-driven, quadratic)
// used solely to validate the bucket-peeling implementation in
// core/truss.h on small graphs.
//
// For k = 3, 4, ...: repeatedly delete every remaining edge whose
// support *within the remaining subgraph* is < k-2 until a fixpoint;
// edges deleted while tightening to the (k)-truss have trussness k-1.
//
// Layer: §9 baseline — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcim::baseline {

/// trussness per canonical edge (Graph::ForEachEdge order).
/// Intended for graphs up to ~10^4 edges (it recomputes supports from
/// scratch on every peel round).
[[nodiscard]] std::vector<std::uint32_t> TrussDecompositionReference(
    const graph::Graph& g);

}  // namespace tcim::baseline
