#include "baseline/reference_numbers.h"

namespace tcim::baseline {

double FpgaEnergyJoules(const graph::PaperRef& ref) {
  return ref.fpga_s < 0 ? -1.0 : ref.fpga_s * kFpgaBoardPowerWatts;
}

double GpuEnergyJoules(const graph::PaperRef& ref) {
  return ref.gpu_s < 0 ? -1.0 : ref.gpu_s * kGpuBoardPowerWatts;
}

double Speedup(double baseline_seconds, double ours_seconds) {
  if (baseline_seconds < 0 || ours_seconds <= 0) return -1.0;
  return baseline_seconds / ours_seconds;
}

}  // namespace tcim::baseline
