// Approximate triangle counting estimators (the paper's introduction
// surveys TC methods "from ... exact to approximate"; these two are
// the standard sampling baselines of that literature).
//
//  * DOULION (Tsourakakis et al., KDD'09): keep each edge with
//    probability p, count exactly on the sparsified graph, scale by
//    1/p^3. Unbiased; variance shrinks as p^3 * T grows.
//  * Wedge sampling (Seshadhri et al., SDM'13): sample wedges
//    (length-2 paths) uniformly, measure the closure probability,
//    then T = closed_fraction * total_wedges / 3.
//
// Layer: §9 baseline — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace tcim::baseline {

struct ApproxResult {
  double estimate = 0.0;
  /// Work actually performed, for accuracy/cost trade-off reporting.
  std::uint64_t sampled_units = 0;  // edges kept / wedges sampled
};

/// DOULION: sparsify-and-count. p in (0, 1].
[[nodiscard]] ApproxResult DoulionEstimate(const graph::Graph& g, double p,
                                           std::uint64_t seed);

/// Wedge sampling with `samples` wedges.
[[nodiscard]] ApproxResult WedgeSamplingEstimate(const graph::Graph& g,
                                                 std::uint64_t samples,
                                                 std::uint64_t seed);

}  // namespace tcim::baseline
