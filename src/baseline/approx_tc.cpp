#include "baseline/approx_tc.h"

#include <stdexcept>

#include "baseline/cpu_tc.h"
#include "graph/stats.h"
#include "util/rng.h"

namespace tcim::baseline {

ApproxResult DoulionEstimate(const graph::Graph& g, double p,
                             std::uint64_t seed) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("DoulionEstimate: p must be in (0,1]");
  }
  util::Xoshiro256 rng(seed);
  graph::GraphBuilder builder(g.num_vertices());
  builder.ReserveEdges(
      static_cast<std::uint64_t>(static_cast<double>(g.num_edges()) * p));
  g.ForEachEdge([&](graph::VertexId u, graph::VertexId v) {
    if (rng.Bernoulli(p)) builder.AddEdge(u, v);
  });
  const graph::Graph sparse = std::move(builder).Build();
  const std::uint64_t sparse_triangles = CountTrianglesReference(sparse);

  ApproxResult result;
  result.sampled_units = sparse.num_edges();
  result.estimate = static_cast<double>(sparse_triangles) / (p * p * p);
  return result;
}

ApproxResult WedgeSamplingEstimate(const graph::Graph& g,
                                   std::uint64_t samples,
                                   std::uint64_t seed) {
  if (samples == 0) {
    throw std::invalid_argument("WedgeSamplingEstimate: need samples > 0");
  }
  const std::uint64_t total_wedges = graph::WedgeCount(g);
  ApproxResult result;
  result.sampled_units = samples;
  if (total_wedges == 0) return result;

  // Sample a wedge uniformly: pick the center v with probability
  // proportional to C(deg(v), 2) via a cumulative table, then two
  // distinct neighbors uniformly.
  std::vector<std::uint64_t> cumulative(g.num_vertices() + 1, 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.Degree(v);
    cumulative[v + 1] = cumulative[v] + d * (d - 1) / 2;
  }

  util::Xoshiro256 rng(seed);
  std::uint64_t closed = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const std::uint64_t pick = rng.UniformBelow(total_wedges);
    // Binary search the center vertex.
    std::uint32_t lo = 0;
    std::uint32_t hi = g.num_vertices();
    while (lo + 1 < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (cumulative[mid] <= pick) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const auto nbrs = g.Neighbors(lo);
    const std::uint64_t a = rng.UniformBelow(nbrs.size());
    std::uint64_t b = rng.UniformBelow(nbrs.size() - 1);
    if (b >= a) ++b;
    if (g.HasEdge(nbrs[a], nbrs[b])) ++closed;
  }
  const double closure =
      static_cast<double>(closed) / static_cast<double>(samples);
  result.estimate = closure * static_cast<double>(total_wedges) / 3.0;
  return result;
}

}  // namespace tcim::baseline
