// CPU triangle-counting baselines (paper §II-A).
//
// The paper classifies sequential TC into matrix-multiplication-based
// and set-intersection-based algorithms; its measured CPU baseline is
// an intersection-based implementation. This module provides five
// independent implementations spanning both classes. They serve as
// (1) the Table V "CPU" column, and (2) mutual cross-checks for every
// property test in the repository — all five must agree with each
// other and with the TCIM paths on every input.
//
// Layer: §9 baseline — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace tcim::baseline {

enum class TcAlgorithm : std::uint8_t {
  /// For each v: pairs (u,w) in N(v)^2 with v<u<w and (u,w) an edge
  /// (binary search). O(Σ d(v)^2 · log d).
  kNodeIterator,
  /// Degree-oriented DAG; per arc (u,v) merge-intersect out-lists.
  /// The classic choice for sparse skewed graphs; Table V's CPU column.
  kEdgeIteratorMerge,
  /// Degree-oriented DAG; per vertex u mark out-neighbours in a dense
  /// flag array, then probe out-lists of out-neighbours ("hashed"
  /// intersection without hashing cost).
  kEdgeIteratorMark,
  /// Forward algorithm (Schank & Wagner): incremental lower-rank
  /// adjacency sets intersected on the fly.
  kForward,
  /// trace(A^3)/6 over dense bit-matrix rows — the matrix-multiply
  /// class of §II-A. Quadratic memory; only for n <= 4096.
  kDenseTrace,
};

[[nodiscard]] std::string ToString(TcAlgorithm algo);

/// Exact triangle count of an undirected simple graph.
/// Throws std::invalid_argument if kDenseTrace is requested for a
/// graph too large for the dense representation.
[[nodiscard]] std::uint64_t CountTriangles(const graph::Graph& g,
                                           TcAlgorithm algo);

/// Default exact reference used across tests/benches (edge-iterator
/// with merge intersection).
[[nodiscard]] inline std::uint64_t CountTrianglesReference(
    const graph::Graph& g) {
  return CountTriangles(g, TcAlgorithm::kEdgeIteratorMerge);
}

}  // namespace tcim::baseline
