// Annotated mutex wrappers: util::Mutex / util::MutexLock /
// util::CondVar are drop-in replacements for std::mutex /
// std::lock_guard / std::condition_variable that carry the Clang
// Thread Safety Analysis capability attributes
// (util/thread_annotations.h), so `clang++ -Werror=thread-safety`
// can prove every access to a TCIM_GUARDED_BY field happens under
// its lock. Off-clang the attributes vanish and each wrapper is a
// zero-overhead veneer over the std primitive it owns — TSan and
// the runtime behavior are identical to the pre-annotation code.
//
// Conventions (docs/STATIC_ANALYSIS.md):
//  * fields: `Mutex mu_;` + `T field_ TCIM_GUARDED_BY(mu_);`
//  * scopes: `MutexLock lock(&mu_);` (never manual Lock/Unlock pairs
//    outside this header)
//  * waits: explicit predicate loops — `while (!pred) cv_.Wait(mu_);`
//    — because a lambda passed to std::condition_variable::wait is a
//    separate function body the analysis cannot see into.
//  * The only TCIM_NO_THREAD_SAFETY_ANALYSIS escapes live inside this
//    header (CondVar::Wait must release/reacquire the capability it
//    formally REQUIRES); tools/lint_tcim.py counts escapes elsewhere.
//
// Layer: §1 util — see docs/ARCHITECTURE.md. Conventions: wrappers
// add no state beyond the std primitive (zero-cost; dimensionless).
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tcim::util {

/// std::mutex carrying the TSA "mutex" capability. Exclusive only —
/// the repo has no reader/writer locks.
class TCIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TCIM_ACQUIRE() { mu_.lock(); }
  void Unlock() TCIM_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() TCIM_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock scope over util::Mutex (the std::lock_guard shape).
class TCIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TCIM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TCIM_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to util::Mutex. Wait() formally REQUIRES
/// the mutex — the analysis treats the capability as held across the
/// call, which matches the caller-visible contract (the lock is held
/// again whenever guarded state is read) even though the primitive
/// releases it while blocked. The predicate-loop convention lives at
/// the call site: `while (!predicate) cv.Wait(mu);`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, reacquires.
  /// The release/reacquire is invisible to the analysis by design —
  /// hence the escape hatch, the one sanctioned use in the repo.
  void Wait(Mutex& mu) TCIM_REQUIRES(mu) TCIM_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the capability stays with the caller
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tcim::util
