#include "util/units.h"

#include <cmath>
#include <cstdio>

namespace tcim::util {
namespace {

std::string FormatScaled(double value, int precision, const char* unit,
                         const double* thresholds, const char* const* prefixes,
                         int count) {
  const double abs = std::fabs(value);
  for (int i = 0; i < count; ++i) {
    if (abs >= thresholds[i]) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f %s%s", precision,
                    value / thresholds[i], prefixes[i], unit);
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g %s", precision, value, unit);
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes, int precision) {
  static constexpr double kThresh[] = {kGiB, kMiB, kKiB, 1.0};
  static constexpr const char* kPrefix[] = {"Gi", "Mi", "Ki", ""};
  return FormatScaled(bytes, precision, "B", kThresh, kPrefix, 4);
}

std::string FormatJoules(double joules, int precision) {
  static constexpr double kThresh[] = {1.0,   1e-3,  1e-6, 1e-9,
                                       1e-12, 1e-15, 1e-18};
  static constexpr const char* kPrefix[] = {"", "m", "u", "n", "p", "f", "a"};
  return FormatScaled(joules, precision, "J", kThresh, kPrefix, 7);
}

std::string FormatOhms(double ohms, int precision) {
  static constexpr double kThresh[] = {1e9, 1e6, 1e3, 1.0};
  static constexpr const char* kPrefix[] = {"G", "M", "k", ""};
  return FormatScaled(ohms, precision, "Ohm", kThresh, kPrefix, 4);
}

std::string FormatAmps(double amps, int precision) {
  static constexpr double kThresh[] = {1.0, 1e-3, 1e-6, 1e-9};
  static constexpr const char* kPrefix[] = {"", "m", "u", "n"};
  return FormatScaled(amps, precision, "A", kThresh, kPrefix, 4);
}

}  // namespace tcim::util
