// Physical-unit helpers shared by the device, NVSim and perf-model
// layers. All internal computation is SI (seconds, joules, meters,
// ohms, amperes); these helpers exist only at formatting boundaries
// and for readable literals in parameter tables.
//
// Layer: §1 util — defines the repo-wide SI units convention that
// every physical-quantity header references (docs/ARCHITECTURE.md §1).
#pragma once

#include <cstdint>
#include <string>

namespace tcim::util {

// --- readable literals for parameter tables -------------------------------
constexpr double kNano = 1e-9;
constexpr double kMicro = 1e-6;
constexpr double kMilli = 1e-3;
constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Boltzmann constant [J/K].
constexpr double kBoltzmann = 1.380649e-23;
/// Vacuum permeability [T·m/A].
constexpr double kMu0 = 1.25663706212e-6;
/// Elementary charge [C].
constexpr double kElectronCharge = 1.602176634e-19;
/// Reduced Planck constant [J·s].
constexpr double kHbar = 1.054571817e-34;
/// Bohr magneton [J/T].
constexpr double kBohrMagneton = 9.2740100783e-24;
/// Gyromagnetic ratio of the electron [rad/(s·T)].
constexpr double kGyromagneticRatio = 1.760859644e11;

/// "16.8 MB", "18 KB" style formatting (powers of 1024).
[[nodiscard]] std::string FormatBytes(double bytes, int precision = 2);

/// "1.2 pJ", "3.4 nJ" style energy formatting.
[[nodiscard]] std::string FormatJoules(double joules, int precision = 2);

/// "625 Ohm", "1.25 kOhm" style resistance formatting.
[[nodiscard]] std::string FormatOhms(double ohms, int precision = 2);

/// "52.3 uA" style current formatting.
[[nodiscard]] std::string FormatAmps(double amps, int precision = 2);

}  // namespace tcim::util
