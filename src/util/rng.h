// Deterministic pseudo-random number generation for workload synthesis.
//
// Every stochastic component in the repository (graph generators, cache
// ablation randomization, property-test inputs) draws from these
// generators with an explicit seed, so each experiment is reproducible
// bit-for-bit from its printed seed.
//
// Xoshiro256** is the workhorse (fast, 256-bit state, passes BigCrush);
// SplitMix64 seeds it and serves as a cheap stateless mixer.
//
// Layer: §1 util — see docs/ARCHITECTURE.md.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace tcim::util {

/// Stateless 64-bit mixing function (Steele, Lea, Flood 2014).
/// Useful both as a seed expander and as a hash for property tests.
[[nodiscard]] constexpr std::uint64_t SplitMix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator so it can drive <random>
/// distributions, though the helpers below avoid <random> for exact
/// cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 so that no state is
  /// all-zero (which would be a fixed point).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5EEDu) noexcept {
    std::uint64_t s = seed;
    for (auto& w : state_) {
      s = SplitMix64(s);
      w = s;
    }
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
      state_[0] = 0x9E3779B97F4A7C15ULL;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method,
  /// simplified: 128-bit multiply + rejection).
  [[nodiscard]] std::uint64_t UniformBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] std::uint64_t UniformInRange(std::uint64_t lo,
                                             std::uint64_t hi) noexcept {
    return lo + UniformBelow(hi - lo + 1);
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  [[nodiscard]] double UniformDouble() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool Bernoulli(double p) noexcept {
    return UniformDouble() < p;
  }

  /// Standard-normal variate (Marsaglia polar method).
  [[nodiscard]] double Gaussian() noexcept;

  /// Forks an independent stream; child streams are decorrelated from
  /// the parent and from each other by SplitMix64 on the fork index.
  [[nodiscard]] Xoshiro256 Fork() noexcept {
    return Xoshiro256{SplitMix64((*this)()) ^ 0xA5A5A5A5DEADBEEFULL};
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace tcim::util
