#include "util/timer.h"

#include <cmath>
#include <cstdio>

namespace tcim::util {

std::string FormatSeconds(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.3f ms", seconds * 1e3);
  } else if (abs >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  }
  return buf;
}

}  // namespace tcim::util
