#include "util/env.h"

#include <algorithm>
#include <cstdlib>

namespace tcim::util {

double EnvDouble(const std::string& name, double fallback, double min_value,
                 double max_value) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return std::clamp(fallback, min_value, max_value);
  }
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw) {
    return std::clamp(fallback, min_value, max_value);
  }
  return std::clamp(parsed, min_value, max_value);
}

std::uint64_t EnvU64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return parsed;
}

std::string EnvString(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return raw;
}

double WorkloadScale(double fallback) {
  return EnvDouble("TCIM_SCALE", fallback, 1e-4, 1.0);
}

std::uint64_t BaseSeed() { return EnvU64("TCIM_SEED", 42); }

}  // namespace tcim::util
