#include "util/rng.h"

#include <cmath>

namespace tcim::util {

std::uint64_t Xoshiro256::UniformBelow(std::uint64_t bound) noexcept {
  if (bound == 0) {
    return 0;  // degenerate request; defined as 0 rather than UB
  }
  // Lemire's multiply-shift with rejection of the biased low region.
  __extension__ typedef unsigned __int128 u128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::Gaussian() noexcept {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * factor;
  has_spare_gaussian_ = true;
  return u * factor;
}

}  // namespace tcim::util
