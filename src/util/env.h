// Environment-variable knobs shared by the bench harnesses.
//
//   TCIM_SCALE  — multiplier in (0, 1] applied to the vertex/edge
//                 counts of the synthesized paper graphs. Defaults
//                 below keep the default `ctest`/bench run to minutes;
//                 TCIM_SCALE=1 reproduces full Table II sizes.
//   TCIM_SEED   — base RNG seed for workload synthesis (default 42).
//   TCIM_KERNEL — forces the SIMD kernel backend of the Eq. (5) host
//                 hot path (scalar|swar64x4|avx2|avx512vpopcnt|neon|
//                 auto); consumed by bit::ActiveBackend(), see
//                 docs/KERNELS.md.
//
// Layer: §1 util — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <string>

namespace tcim::util {

/// Reads a double from the environment; returns `fallback` when unset
/// or unparsable. Values are clamped to [min_value, max_value].
[[nodiscard]] double EnvDouble(const std::string& name, double fallback,
                               double min_value, double max_value);

/// Reads an unsigned integer from the environment with a fallback.
[[nodiscard]] std::uint64_t EnvU64(const std::string& name,
                                   std::uint64_t fallback);

/// Reads a string from the environment; returns `fallback` when the
/// variable is unset or empty.
[[nodiscard]] std::string EnvString(const std::string& name,
                                    const std::string& fallback);

/// Global workload scale factor in (0, 1]; see file comment.
[[nodiscard]] double WorkloadScale(double fallback = 0.25);

/// Global base seed; see file comment.
[[nodiscard]] std::uint64_t BaseSeed();

}  // namespace tcim::util
