// Clang Thread Safety Analysis macro shims: TCIM_GUARDED_BY and
// friends expand to the [-Wthread-safety] capability attributes under
// clang and to nothing everywhere else, so annotating lock discipline
// costs zero bytes and zero cycles on every compiler while the clang
// CI leg (`-Werror=thread-safety`) turns a missed lock into a build
// failure instead of a stress-test flake.
//
// Vocabulary (docs/STATIC_ANALYSIS.md walks a worked example):
//   TCIM_CAPABILITY("mutex")   — a class is a lockable capability
//   TCIM_SCOPED_CAPABILITY     — an RAII class acquires in ctor /
//                                releases in dtor (util::MutexLock)
//   TCIM_GUARDED_BY(mu)        — field access requires holding `mu`
//   TCIM_PT_GUARDED_BY(mu)     — like GUARDED_BY, for pointed-to data
//   TCIM_REQUIRES(mu)          — caller must hold `mu` (the *Locked
//                                private-method convention)
//   TCIM_EXCLUDES(mu)          — caller must NOT hold `mu` (deadlock
//                                documentation for re-entrant fronts)
//   TCIM_ACQUIRE / TCIM_RELEASE / TCIM_TRY_ACQUIRE
//                              — lock-transfer effects of a function
//   TCIM_ASSERT_CAPABILITY(mu) — runtime-checked "is held here"
//   TCIM_RETURN_CAPABILITY(mu) — accessor returning a capability
//   TCIM_NO_THREAD_SAFETY_ANALYSIS
//                              — opt a function out; reserved for
//                                wrapper internals (util/mutex.h) and
//                                audited, commented exceptions only —
//                                tools/lint_tcim.py counts escapes.
//
// Layer: §1 util — see docs/ARCHITECTURE.md. Conventions: annotations
// are compile-time only (dimensionless; no runtime unit or cost).
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define TCIM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define TCIM_THREAD_ANNOTATION_(x)  // no-op off-clang
#endif

#define TCIM_CAPABILITY(x) TCIM_THREAD_ANNOTATION_(capability(x))

#define TCIM_SCOPED_CAPABILITY TCIM_THREAD_ANNOTATION_(scoped_lockable)

#define TCIM_GUARDED_BY(x) TCIM_THREAD_ANNOTATION_(guarded_by(x))

#define TCIM_PT_GUARDED_BY(x) TCIM_THREAD_ANNOTATION_(pt_guarded_by(x))

#define TCIM_ACQUIRED_BEFORE(...) \
  TCIM_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))

#define TCIM_ACQUIRED_AFTER(...) \
  TCIM_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define TCIM_REQUIRES(...) \
  TCIM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

#define TCIM_REQUIRES_SHARED(...) \
  TCIM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define TCIM_ACQUIRE(...) \
  TCIM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

#define TCIM_ACQUIRE_SHARED(...) \
  TCIM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

#define TCIM_RELEASE(...) \
  TCIM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

#define TCIM_RELEASE_SHARED(...) \
  TCIM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define TCIM_TRY_ACQUIRE(...) \
  TCIM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

#define TCIM_EXCLUDES(...) TCIM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define TCIM_ASSERT_CAPABILITY(x) \
  TCIM_THREAD_ANNOTATION_(assert_capability(x))

#define TCIM_RETURN_CAPABILITY(x) TCIM_THREAD_ANNOTATION_(lock_returned(x))

#define TCIM_NO_THREAD_SAFETY_ANALYSIS \
  TCIM_THREAD_ANNOTATION_(no_thread_safety_analysis)
