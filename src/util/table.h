// Plain-text table rendering for the bench harnesses that regenerate
// the paper's tables. Produces aligned, Markdown-compatible output so
// bench logs can be pasted directly into EXPERIMENTS.md.
//
// Layer: §1 util — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace tcim::util {

/// Column alignment inside a TablePrinter.
enum class Align : std::uint8_t { kLeft, kRight };

/// Accumulates rows of strings and renders them with aligned columns.
///
///   TablePrinter t({"Dataset", "Vertices", "Edges"});
///   t.AddRow({"ego-facebook", "4039", "88234"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<Align> alignments = {});

  /// Appends one row; pads/truncates nothing — cell count must match
  /// the header count (throws std::invalid_argument otherwise).
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table. `markdown` selects pipe-table syntax;
  /// otherwise a space-padded layout is used.
  void Print(std::ostream& os, bool markdown = true) const;

  [[nodiscard]] std::size_t row_count() const noexcept {
    return rows_.size();
  }

  /// Formatting helpers used throughout the bench binaries.
  static std::string Fixed(double v, int precision);
  static std::string Scientific(double v, int precision);
  static std::string WithThousands(std::uint64_t v);
  static std::string Percent(double fraction, int precision = 2);
  static std::string Ratio(double v, int precision = 1);  // "12.3x"
  /// Compact magnitude for wide count columns: "999", "1.2k", "3.4M",
  /// "5.6G" (powers of 1000; values < 1000 are printed verbatim).
  static std::string Compact(std::uint64_t v, int precision = 1);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> alignments_;
  std::vector<Row> rows_;
};

/// Prints a section banner used by every bench binary:
///   ==== Table V: Runtime comparison ====
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace tcim::util
