#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace tcim::util {

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<Align> alignments)
    : headers_(std::move(headers)), alignments_(std::move(alignments)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
  if (alignments_.empty()) {
    alignments_.assign(headers_.size(), Align::kLeft);
    for (std::size_t i = 1; i < alignments_.size(); ++i) {
      alignments_[i] = Align::kRight;  // default: first col left, rest right
    }
  }
  if (alignments_.size() != headers_.size()) {
    throw std::invalid_argument(
        "TablePrinter: alignment count must match header count");
  }
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row/header size mismatch");
  }
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{{}, /*separator=*/true});
}

void TablePrinter::Print(std::ostream& os, bool markdown) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }

  const auto pad = [&](const std::string& s, std::size_t w, Align a) {
    std::string out;
    const std::size_t fill = w > s.size() ? w - s.size() : 0;
    if (a == Align::kRight) {
      out.append(fill, ' ').append(s);
    } else {
      out.append(s).append(fill, ' ');
    }
    return out;
  };

  const char* sep = markdown ? " | " : "  ";
  const char* edge = markdown ? "| " : "";
  const char* edge_end = markdown ? " |" : "";

  const auto print_rule = [&] {
    os << edge;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      if (i) os << sep;
      os << std::string(widths[i], '-');
    }
    os << edge_end << '\n';
  };

  os << edge;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    if (i) os << sep;
    os << pad(headers_[i], widths[i], Align::kLeft);
  }
  os << edge_end << '\n';
  print_rule();

  for (const Row& r : rows_) {
    if (r.separator) {
      print_rule();
      continue;
    }
    os << edge;
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      if (i) os << sep;
      os << pad(r.cells[i], widths[i], alignments_[i]);
    }
    os << edge_end << '\n';
  }
}

std::string TablePrinter::Fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Scientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string TablePrinter::WithThousands(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string TablePrinter::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::Ratio(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*fx", precision, v);
  return buf;
}

std::string TablePrinter::Compact(std::uint64_t v, int precision) {
  if (v < 1000) return std::to_string(v);
  static constexpr const char* kSuffix[] = {"k", "M", "G", "T", "P", "E"};
  double scaled = static_cast<double>(v);
  std::size_t mag = 0;
  do {
    scaled /= 1000.0;
    ++mag;
  } while (scaled >= 1000.0 && mag < std::size(kSuffix));
  // printf rounding can push the mantissa back to 1000 (999.96 with
  // precision 1 prints "1000.0"); bump the magnitude instead.
  if (scaled >= 1000.0 - 0.5 * std::pow(10.0, -precision) &&
      mag < std::size(kSuffix)) {
    scaled /= 1000.0;
    ++mag;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%s", precision, scaled, kSuffix[mag - 1]);
  return buf;
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n==== " << title << " ====\n\n";
}

}  // namespace tcim::util
