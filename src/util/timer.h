// Wall-clock timing helpers for benchmarks and the "w/o PIM" software
// measurements in Table V.
//
// Layer: §1 util — see docs/ARCHITECTURE.md. Units: seconds (SI).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tcim::util {

/// Monotonic stopwatch. Started on construction; Restart() re-arms it.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void Restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double ElapsedSeconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  [[nodiscard]] double ElapsedMillis() const noexcept {
    return ElapsedSeconds() * 1e3;
  }
  [[nodiscard]] std::uint64_t ElapsedNanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `fn` once and returns the elapsed wall-clock seconds.
template <typename Fn>
[[nodiscard]] double TimeOnce(Fn&& fn) {
  Timer t;
  std::forward<Fn>(fn)();
  return t.ElapsedSeconds();
}

/// Runs `fn` repeatedly until `min_seconds` of wall-clock time has
/// accumulated (at least once) and returns seconds-per-iteration.
/// Used by the micro-kernel benches that do not go through
/// google-benchmark.
template <typename Fn>
[[nodiscard]] double TimePerIteration(Fn&& fn, double min_seconds = 0.05) {
  Timer t;
  std::uint64_t iters = 0;
  do {
    fn();
    ++iters;
  } while (t.ElapsedSeconds() < min_seconds);
  return t.ElapsedSeconds() / static_cast<double>(iters);
}

/// Human-readable duration, e.g. "1.234 s", "56.7 ms", "890 ns".
[[nodiscard]] std::string FormatSeconds(double seconds);

}  // namespace tcim::util
