// StreamSession: a live graph under streaming updates, shared between
// the scheduler's update jobs and direct callers.
//
// stream::IncrementalCounter is single-threaded by design (the overlay
// bookkeeping assumes batches apply one at a time); StreamSession adds
// the concurrency contract the runtime needs: Apply() serializes
// batches under a mutex, accumulates the per-batch ExecStats into a
// StreamStats aggregate, and Snapshot() hands out a consistent
// graph::Graph copy for whole-graph counting jobs — so one session can
// interleave update batches and full queries through the same
// Scheduler (see scheduler.h SubmitUpdate).
//
// Serialization is not ordering: when several batches for one session
// are in flight at once (multiple scheduler dispatch threads, priority
// scheduling, or concurrent direct callers), they apply one at a time
// but in whatever order the mutex is won. Callers that need a specific
// order must impose it — the scheduler defaults (FIFO, one dispatcher)
// do, as does awaiting each batch before submitting the next.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: SI seconds in
// StreamStats; counts dimensionless.
#pragma once

#include <cstdint>
#include <mutex>

#include "graph/graph.h"
#include "runtime/aggregate.h"
#include "stream/edge_delta.h"
#include "stream/incremental_counter.h"

namespace tcim::runtime {

class StreamSession {
 public:
  explicit StreamSession(const graph::Graph& g,
                         stream::StreamConfig config = {});

  /// Applies one batch (serialized; blocks while another batch or
  /// snapshot is in flight) and folds its stats into the aggregate.
  stream::BatchResult Apply(const stream::EdgeDelta& delta);

  [[nodiscard]] std::uint64_t triangles() const;
  /// Consistent copy of the current graph (for Scheduler::Submit
  /// counting jobs interleaved with the stream).
  [[nodiscard]] graph::Graph Snapshot() const;
  /// Aggregate over every batch applied so far.
  [[nodiscard]] StreamStats stats() const;

 private:
  mutable std::mutex mu_;
  stream::IncrementalCounter counter_;
  StreamStats stats_;
};

}  // namespace tcim::runtime
