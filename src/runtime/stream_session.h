// StreamSession: a live graph under streaming updates, shared between
// the scheduler's update jobs, its query jobs, and direct callers —
// the writer half of the epoch-snapshot serving layer.
//
// stream::IncrementalCounter is single-threaded by design (the overlay
// bookkeeping assumes batches apply one at a time); StreamSession adds
// the concurrency contract the runtime needs:
//
//  * Apply() serializes batches under the writer lock, then PUBLISHES
//    the post-batch state as an immutable EpochSnapshot (a COW copy of
//    the sliced matrix — O(#slabs) pointer bumps plus the slabs the
//    batch touched; see bitmatrix/sliced_store.h).
//  * PinEpoch() / triangles() / Snapshot() read the *published* epoch
//    and never take the writer lock: readers never block on a batch in
//    flight, they see the last published state. This is the snapshot-
//    isolation contract the snapshot/stress tests enforce against the
//    sequential oracle (docs/SERVING.md).
//
// Batch ordering across concurrent Apply() callers is whatever order
// the writer lock is won; the Scheduler's dedicated update lane
// guarantees submission order for SubmitUpdate batches (scheduler.h).
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md and docs/SERVING.md.
// Units: SI seconds in StreamStats; counts dimensionless.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "graph/graph.h"
#include "runtime/aggregate.h"
#include "runtime/epoch_manager.h"
#include "stream/edge_delta.h"
#include "stream/incremental_counter.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::runtime {

class StreamSession {
 public:
  /// Seeds the live graph and publishes epoch 0 (the seed snapshot),
  /// so readers have a pinnable state before any batch applies.
  explicit StreamSession(const graph::Graph& g,
                         stream::StreamConfig config = {});

  /// What one Apply() did: the batch result plus the epoch id the
  /// post-batch state was published under.
  struct AppliedBatch {
    stream::BatchResult batch;
    std::uint64_t epoch = 0;
  };

  /// Applies one batch (serialized under the writer lock; blocks while
  /// another batch is in flight — never while readers count), folds
  /// its stats into the aggregate, and publishes the new epoch.
  AppliedBatch Apply(const stream::EdgeDelta& delta);

  /// Pins the current published epoch; never blocks on a writer.
  [[nodiscard]] EpochManager::Pin PinEpoch() const {
    return epochs_.PinCurrent();
  }
  /// Triangle count of the published epoch; never blocks on a writer.
  [[nodiscard]] std::uint64_t triangles() const;
  /// Consistent graph copy of the published epoch (for
  /// Scheduler::Submit counting jobs interleaved with the stream);
  /// never blocks on a writer.
  [[nodiscard]] graph::Graph Snapshot() const;
  /// Aggregate over every batch applied so far.
  [[nodiscard]] StreamStats stats() const;
  /// Built 2D serving plans dropped because a batch touched a hub
  /// column or grew the vertex space (stream.plan_invalidations_total
  /// for this session only; the hub-flip regression test's probe).
  [[nodiscard]] std::uint64_t plan2d_invalidations() const noexcept {
    return plan2d_invalidations_.load(std::memory_order_relaxed);
  }
  /// Epoch bookkeeping (published / live / retired counters).
  [[nodiscard]] const EpochManager& epochs() const noexcept {
    return epochs_;
  }

  /// Test-only: runs inside Apply() after the batch has been applied
  /// but BEFORE the new epoch publishes — the deterministic-
  /// interleaving hook the scheduler tests use to hold a writer
  /// mid-publish while readers pin. Set before any concurrent use.
  void SetBeforePublishHook(std::function<void()> hook) {
    before_publish_ = std::move(hook);
  }

 private:
  /// Builds and publishes the snapshot of counter_'s current state.
  /// `delta` is the batch that produced it (nullptr for the seed
  /// publish) — it decides whether the previous epoch's 2D serving-
  /// plan cache carries forward or the new epoch starts fresh. Caller
  /// holds writer_mu_.
  std::uint64_t PublishLocked(const stream::EdgeDelta* delta)
      TCIM_REQUIRES(writer_mu_);

  mutable util::Mutex writer_mu_;  ///< serializes Apply (and the ctor)
  /// The single-threaded incremental counter; every touch is a batch
  /// apply or a publish, both under the writer lock.
  stream::IncrementalCounter counter_ TCIM_GUARDED_BY(writer_mu_);
  EpochManager epochs_;
  std::function<void()> before_publish_;  ///< test hook; set pre-concurrency
  mutable util::Mutex stats_mu_;  ///< guards stats_ (readers vs writer)
  StreamStats stats_ TCIM_GUARDED_BY(stats_mu_);
  std::atomic<std::uint64_t> plan2d_invalidations_{0};
};

}  // namespace tcim::runtime
