#include "runtime/stream_session.h"

#include <memory>

namespace tcim::runtime {

StreamSession::StreamSession(const graph::Graph& g,
                             stream::StreamConfig config)
    : counter_(g, config) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  (void)PublishLocked();  // epoch 0: the seed graph
}

std::uint64_t StreamSession::PublishLocked() {
  EpochSnapshot snap;
  snap.orientation = counter_.config().orientation;
  snap.slice_bits = counter_.config().slice_bits;
  snap.num_vertices = counter_.graph().num_vertices();
  snap.num_edges = counter_.graph().num_edges();
  snap.triangles = counter_.triangles();
  // COW copy: O(#slabs) shared_ptr bumps; the slabs themselves are
  // shared with the previous epoch except those the batch touched.
  snap.matrix =
      std::make_shared<const bit::SlicedMatrix>(counter_.graph().matrix());
  return epochs_.Publish(std::move(snap));
}

StreamSession::AppliedBatch StreamSession::Apply(
    const stream::EdgeDelta& delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  stream::BatchResult result = counter_.ApplyBatch(delta);
  if (before_publish_) before_publish_();
  const std::uint64_t epoch = PublishLocked();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.Add(result);
  }
  return AppliedBatch{std::move(result), epoch};
}

std::uint64_t StreamSession::triangles() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? 0 : pin->triangles;
}

graph::Graph StreamSession::Snapshot() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? graph::Graph{} : MaterializeEpochGraph(*pin);
}

StreamStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace tcim::runtime
