#include "runtime/stream_session.h"

#include <memory>
#include <string>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/timer.h"

namespace tcim::runtime {

namespace {

/// True when `delta` may change the previous epoch's built 2D serving
/// plan: the vertex space grew (is_hub / tile bounds are sized to the
/// old n), or an op endpoint is a hub column (its replicated slice
/// data changes — either endpoint, conservatively, since orientation
/// decides which side lands in the column store).
bool Invalidates2dPlan(const ServingPlan2d& plan,
                       const stream::EdgeDelta& delta,
                       graph::VertexId new_num_vertices) {
  const TilePlan2d* plan2d = plan.partition.plan2d.get();
  if (plan2d == nullptr || plan2d->num_vertices != new_num_vertices) {
    return true;
  }
  for (const stream::EdgeOp& op : delta.ops) {
    if (op.u < plan2d->is_hub.size() && plan2d->is_hub[op.u] != 0) return true;
    if (op.v < plan2d->is_hub.size() && plan2d->is_hub[op.v] != 0) return true;
  }
  return false;
}

}  // namespace

StreamSession::StreamSession(const graph::Graph& g,
                             stream::StreamConfig config)
    : counter_(g, config) {
  util::MutexLock lock(&writer_mu_);
  (void)PublishLocked(nullptr);  // epoch 0: the seed graph
}

std::uint64_t StreamSession::PublishLocked(const stream::EdgeDelta* delta) {
  obs::TraceSpan span("stream.publish", "stream");
  const EpochManager::Pin prev = epochs_.PinCurrent();
  EpochSnapshot snap;
  snap.orientation = counter_.config().orientation;
  snap.slice_bits = counter_.config().slice_bits;
  snap.num_vertices = counter_.graph().num_vertices();
  snap.num_edges = counter_.graph().num_edges();
  snap.triangles = counter_.triangles();
  // COW copy: O(#slabs) shared_ptr bumps; the slabs themselves are
  // shared with the previous epoch except those the batch touched.
  snap.matrix =
      std::make_shared<const bit::SlicedMatrix>(counter_.graph().matrix());

  // 2D serving-plan carry-forward: the new epoch shares the previous
  // epoch's plan cache when the batch provably cannot change a built
  // plan (no hub-touching ops, no vertex growth) — steady-state tail
  // traffic then re-plans zero times. Otherwise the new epoch starts
  // with the fresh cache EpochSnapshot default-constructs; the old
  // epoch keeps its own cache untouched, so pinned readers still see
  // the pre-batch plan and replicas (snapshot isolation).
  if (prev != nullptr && prev->plan2d != nullptr && delta != nullptr) {
    const PlanCache2d::PlanPtr built = prev->plan2d->Get();
    if (built != nullptr) {
      if (!Invalidates2dPlan(*built, *delta, snap.num_vertices)) {
        snap.plan2d = prev->plan2d;
      } else {
        plan2d_invalidations_.fetch_add(1, std::memory_order_relaxed);
        StreamMetrics::Get().plan_invalidations.Increment();
      }
    }
  }

  // Registry gauges of the published matrix: live heap footprint and
  // the COW effectiveness (fraction of slabs physically shared with
  // the predecessor epoch — 1.0 means the batch touched nothing).
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.heap_bytes.Set(static_cast<double>(snap.matrix->HeapBytes()));
  if (prev != nullptr && prev->matrix != nullptr) {
    const std::size_t shared =
        SharedSlabCount(prev->matrix->rows(), snap.matrix->rows()) +
        SharedSlabCount(prev->matrix->cols(), snap.matrix->cols());
    const std::size_t total =
        snap.matrix->rows().slab_count() + snap.matrix->cols().slab_count();
    if (total > 0) {
      metrics.shared_slab_ratio.Set(static_cast<double>(shared) /
                                    static_cast<double>(total));
    }
  }
  return epochs_.Publish(std::move(snap));
}

StreamSession::AppliedBatch StreamSession::Apply(
    const stream::EdgeDelta& delta) {
  util::MutexLock lock(&writer_mu_);
  std::string span_args;
  if (obs::TraceEnabled()) {
    span_args = "\"ops\":" + std::to_string(delta.size());
  }
  obs::TraceSpan span("stream.apply", "stream", std::move(span_args));
  util::Timer clock;
  stream::BatchResult result = counter_.ApplyBatch(delta);
  if (before_publish_) before_publish_();
  const std::uint64_t epoch = PublishLocked(&delta);
  {
    util::MutexLock stats_lock(&stats_mu_);
    stats_.Add(result);
  }
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.batches.Increment();
  if (result.stats.used_recount) metrics.recounts.Increment();
  metrics.batch_ops.Observe(static_cast<double>(result.stats.ops_submitted));
  metrics.apply_seconds.Observe(clock.ElapsedSeconds());
  return AppliedBatch{std::move(result), epoch};
}

std::uint64_t StreamSession::triangles() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? 0 : pin->triangles;
}

graph::Graph StreamSession::Snapshot() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? graph::Graph{} : MaterializeEpochGraph(*pin);
}

StreamStats StreamSession::stats() const {
  util::MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace tcim::runtime
