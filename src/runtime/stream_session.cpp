#include "runtime/stream_session.h"

#include <memory>
#include <string>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/timer.h"

namespace tcim::runtime {

StreamSession::StreamSession(const graph::Graph& g,
                             stream::StreamConfig config)
    : counter_(g, config) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  (void)PublishLocked();  // epoch 0: the seed graph
}

std::uint64_t StreamSession::PublishLocked() {
  obs::TraceSpan span("stream.publish", "stream");
  const EpochManager::Pin prev = epochs_.PinCurrent();
  EpochSnapshot snap;
  snap.orientation = counter_.config().orientation;
  snap.slice_bits = counter_.config().slice_bits;
  snap.num_vertices = counter_.graph().num_vertices();
  snap.num_edges = counter_.graph().num_edges();
  snap.triangles = counter_.triangles();
  // COW copy: O(#slabs) shared_ptr bumps; the slabs themselves are
  // shared with the previous epoch except those the batch touched.
  snap.matrix =
      std::make_shared<const bit::SlicedMatrix>(counter_.graph().matrix());

  // Registry gauges of the published matrix: live heap footprint and
  // the COW effectiveness (fraction of slabs physically shared with
  // the predecessor epoch — 1.0 means the batch touched nothing).
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.heap_bytes.Set(static_cast<double>(snap.matrix->HeapBytes()));
  if (prev != nullptr && prev->matrix != nullptr) {
    const std::size_t shared =
        SharedSlabCount(prev->matrix->rows(), snap.matrix->rows()) +
        SharedSlabCount(prev->matrix->cols(), snap.matrix->cols());
    const std::size_t total =
        snap.matrix->rows().slab_count() + snap.matrix->cols().slab_count();
    if (total > 0) {
      metrics.shared_slab_ratio.Set(static_cast<double>(shared) /
                                    static_cast<double>(total));
    }
  }
  return epochs_.Publish(std::move(snap));
}

StreamSession::AppliedBatch StreamSession::Apply(
    const stream::EdgeDelta& delta) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  std::string span_args;
  if (obs::TraceEnabled()) {
    span_args = "\"ops\":" + std::to_string(delta.size());
  }
  obs::TraceSpan span("stream.apply", "stream", std::move(span_args));
  util::Timer clock;
  stream::BatchResult result = counter_.ApplyBatch(delta);
  if (before_publish_) before_publish_();
  const std::uint64_t epoch = PublishLocked();
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.Add(result);
  }
  StreamMetrics& metrics = StreamMetrics::Get();
  metrics.batches.Increment();
  if (result.stats.used_recount) metrics.recounts.Increment();
  metrics.batch_ops.Observe(static_cast<double>(result.stats.ops_submitted));
  metrics.apply_seconds.Observe(clock.ElapsedSeconds());
  return AppliedBatch{std::move(result), epoch};
}

std::uint64_t StreamSession::triangles() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? 0 : pin->triangles;
}

graph::Graph StreamSession::Snapshot() const {
  const EpochManager::Pin pin = epochs_.PinCurrent();
  return pin == nullptr ? graph::Graph{} : MaterializeEpochGraph(*pin);
}

StreamStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace tcim::runtime
