#include "runtime/stream_session.h"

namespace tcim::runtime {

StreamSession::StreamSession(const graph::Graph& g,
                             stream::StreamConfig config)
    : counter_(g, config) {}

stream::BatchResult StreamSession::Apply(const stream::EdgeDelta& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  stream::BatchResult result = counter_.ApplyBatch(delta);
  stats_.Add(result);
  return result;
}

std::uint64_t StreamSession::triangles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_.triangles();
}

graph::Graph StreamSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_.graph().ToGraph();
}

StreamStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tcim::runtime
