#include "runtime/epoch_manager.h"

#include <string>
#include <utility>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/timer.h"

namespace tcim::runtime {

std::uint64_t EpochManager::Publish(EpochSnapshot snapshot) {
  auto* raw = new EpochSnapshot(std::move(snapshot));
  // The deleter owns the counters: retirement accounting must work
  // even when the last pin outlives the manager, and it must run
  // synchronously in whatever thread drops the last reference.
  Pin next(raw, [counters = counters_](const EpochSnapshot* p) {
    const std::uint64_t epoch = p->epoch;
    delete p;
    counters->live.fetch_sub(1, std::memory_order_relaxed);
    counters->retired.fetch_add(1, std::memory_order_relaxed);
    EpochMetrics& metrics = EpochMetrics::Get();
    metrics.retired.Increment();
    metrics.live.Set(static_cast<double>(
        counters->live.load(std::memory_order_relaxed)));
    // Closes the lifecycle span opened at Publish; also an instant so
    // the retire moment is visible even when the publish predates the
    // capture (bench --trace flags can start mid-run).
    obs::TraceAsyncEnd("epoch.lifecycle", "epoch", epoch);
    if (obs::TraceEnabled()) {
      obs::TraceInstant("epoch.retire", "epoch",
                        "\"epoch\":" + std::to_string(epoch));
    }
  });
  counters_->live.fetch_add(1, std::memory_order_relaxed);
  counters_->published.fetch_add(1, std::memory_order_relaxed);
  EpochMetrics& metrics = EpochMetrics::Get();
  metrics.published.Increment();
  metrics.live.Set(static_cast<double>(
      counters_->live.load(std::memory_order_relaxed)));
  std::uint64_t id = 0;
  {
    util::MutexLock lock(&mu_);
    id = next_epoch_++;
    raw->epoch = id;
    current_ = std::move(next);  // may retire the predecessor here
  }
  // Lifecycle span: publish -> retire, keyed by epoch id (epochs
  // overlap, so they cannot be thread-scoped complete events).
  obs::TraceAsyncBegin("epoch.lifecycle", "epoch", id);
  if (obs::TraceEnabled()) {
    obs::TraceInstant("epoch.publish", "epoch",
                      "\"epoch\":" + std::to_string(id));
  }
  return id;
}

EpochManager::Pin EpochManager::PinCurrent() const {
  util::Timer clock;
  Pin pin;
  {
    util::MutexLock lock(&mu_);
    pin = current_;
  }
  EpochMetrics::Get().pin_seconds.Observe(clock.ElapsedSeconds());
  return pin;
}

std::uint64_t EpochManager::current_epoch() const {
  util::MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->epoch;
}

graph::Graph MaterializeEpochGraph(const EpochSnapshot& epoch) {
  graph::GraphBuilder builder(epoch.num_vertices);
  if (epoch.matrix != nullptr) {
    const bit::SlicedStore& rows = epoch.matrix->rows();
    builder.ReserveEdges(rows.set_bit_count());
    for (graph::VertexId u = 0; u < rows.num_vectors(); ++u) {
      rows.ForEachSetBit(u, [&](std::uint64_t v) {
        // kFullSymmetric stores both (u,v) and (v,u); the builder's
        // dedupe folds them, so adding every arc is correct for all
        // three orientations.
        builder.AddEdge(u, static_cast<graph::VertexId>(v));
      });
    }
  }
  return std::move(builder).Build();
}

}  // namespace tcim::runtime
