// Bank pool: N independent TCIM accelerators (the paper's Fig. 4
// architecture is explicitly bank-parallel) driven by a worker thread
// pool, counting one graph cooperatively.
//
// One Count(g) call runs the offline stages once — orientation,
// slicing/compression, partitioning — then fans the shards out: bank b
// executes Algorithm 1 over its owned row range of the *shared*
// compressed matrix (core::TcimAccelerator::RunOnMatrixRows), and the
// per-shard results fold into a runtime::ClusterResult. The total is
// count-exact by construction (see runtime/partitioner.h); the
// registered exactness tests assert it against the single-accelerator
// path on every dataset and generator family.
//
// Each bank gets its own TcimConfig with a *derived* rng seed
// (DeriveBankSeed: SplitMix64 over bank id), so random-replacement
// ablations stay reproducible without the banks' victim choices being
// lockstep-identical.
//
// Thread-safety: Count() is const and safe to call concurrently; each
// call creates its own functional array + controller per shard, and
// the shared SlicedMatrix is immutable during the run.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: SI seconds /
// joules via core::PerfResult; counts dimensionless.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/accelerator.h"
#include "graph/graph.h"
#include "runtime/aggregate.h"
#include "runtime/epoch_manager.h"
#include "runtime/partitioner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::runtime {

/// Derives bank b's rng seed from the cluster base seed (SplitMix64
/// mixing; distinct per bank, never equal to plain `base` for b > 0).
[[nodiscard]] std::uint64_t DeriveBankSeed(std::uint64_t base,
                                           std::uint32_t bank) noexcept;

/// Fixed-size FIFO worker pool. Post() never blocks; the destructor
/// drains every pending task before joining the threads.
class WorkerPool {
 public:
  explicit WorkerPool(std::uint32_t num_threads);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void Post(std::function<void()> task);
  [[nodiscard]] std::uint32_t num_threads() const noexcept {
    return static_cast<std::uint32_t>(threads_.size());
  }

 private:
  void WorkerLoop();

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::function<void()>> tasks_ TCIM_GUARDED_BY(mu_);
  bool stopping_ TCIM_GUARDED_BY(mu_) = false;
  /// Written only in the constructor; joined by the destructor.
  std::vector<std::thread> threads_;
};

/// Upper bound on banks per pool: far beyond any plausible layout, it
/// exists to reject configs whose per-bank arrays would exhaust host
/// memory (each bank prices a full configured-capacity array).
inline constexpr std::uint32_t kMaxBanks = 4096;

struct BankPoolConfig {
  std::uint32_t num_banks = 2;  ///< in [1, kMaxBanks]
  /// Worker threads driving the banks; 0 = one per bank, capped at the
  /// hardware concurrency (bounds peak memory: each in-flight shard
  /// holds one full functional array). Explicit values are bounded by
  /// kMaxBanks.
  std::uint32_t num_threads = 0;
  PartitionStrategy partition = PartitionStrategy::kDegreeBalanced;
  /// 2D planner knobs, used when partition == k2dHubReplicated
  /// (slice_bits is synced from the accelerator config).
  Partition2dOptions partition2d;
  /// Per-bank template; controller.rng_seed is re-derived per bank.
  core::TcimConfig accelerator;
};

class BankPool {
 public:
  explicit BankPool(BankPoolConfig config);

  /// Full multi-bank pipeline: orient, slice, partition, run every
  /// shard on the pool, aggregate. Exact: ClusterResult::triangles ==
  /// TcimAccelerator::Run(g).triangles for every graph.
  [[nodiscard]] ClusterResult Count(const graph::Graph& g) const;

  /// Host-kernel twin of Count(): same orient → slice → partition
  /// pipeline and the same per-bank row shards, but each shard runs
  /// the *batched host* Eq. (5) pass (SlicedMatrix::AndPopcountRows on
  /// the active SIMD kernel backend) instead of the functional in-MRAM
  /// simulation — the fast path when only the count is needed, not the
  /// architectural statistics. Raw shard bitcounts are summed before
  /// the orientation divide, so the result is exact for every
  /// orientation: HostCount(g) == Count(g).triangles.
  [[nodiscard]] std::uint64_t HostCount(const graph::Graph& g) const;

  /// The epoch-serving read path: counts an ALREADY-SLICED matrix (a
  /// pinned COW epoch snapshot) on the bank shards — no orient, no
  /// re-slice, just PartitionMatrixRows + per-shard AndPopcountRows.
  /// `orientation` must be the orientation the matrix was built under
  /// (EpochSnapshot carries it); it only supplies the final count
  /// multiplier. Exact: equals HostCount of the materialized graph.
  /// Thread-safe and concurrent like Count() — this is what query
  /// jobs run while update batches apply.
  [[nodiscard]] std::uint64_t HostCountMatrix(
      const bit::SlicedMatrix& matrix, graph::Orientation orientation) const;

  /// HostCountMatrix against a pinned epoch snapshot, with serving-plan
  /// reuse: under k2dHubReplicated the tile plan + per-bank hub
  /// replicas are fetched from (or built into) the epoch's PlanCache2d
  /// instead of re-planned per query, so steady-state queries pay only
  /// the per-shard rectangle counts. Under 1D strategies it is exactly
  /// HostCountMatrix. The scheduler's query path calls this.
  [[nodiscard]] std::uint64_t HostCountEpoch(const EpochSnapshot& epoch) const;

  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(banks_.size());
  }
  [[nodiscard]] const core::TcimAccelerator& bank(std::uint32_t i) const {
    return *banks_.at(i);
  }
  [[nodiscard]] const BankPoolConfig& config() const noexcept {
    return config_;
  }

 private:
  /// The shared offline stages (Fig. 4 "data slicing") of Count() and
  /// HostCount(): orient, slice, partition.
  struct PreparedRun {
    bit::SlicedMatrix matrix;
    GraphPartition partition;
  };
  [[nodiscard]] PreparedRun Prepare(const graph::Graph& g) const;

  /// The 2D planner options with slice_bits synced from the
  /// accelerator config (the one field the two configs share).
  [[nodiscard]] Partition2dOptions Options2d() const noexcept;
  /// Plans the 2D partition of `matrix` and extracts the per-bank hub
  /// replica stores (COW; shared slabs across banks).
  [[nodiscard]] ServingPlan2d BuildServingPlan2d(
      const bit::SlicedMatrix& matrix) const;
  /// Host-kernel 2D fan-out: one CountBankShard2d per bank against its
  /// replica, raw sum divided once by the orientation multiplier.
  [[nodiscard]] std::uint64_t HostCount2d(const bit::SlicedMatrix& matrix,
                                          const ServingPlan2d& plan,
                                          graph::Orientation orientation) const;

  /// Fans one task per shard out to the worker pool and waits for all
  /// of them; the first shard exception (if any) is rethrown. Shared
  /// by Count() and HostCount().
  void RunShards(
      const GraphPartition& partition,
      const std::function<void(std::uint32_t, const ShardInfo&)>& run_shard)
      const;

  BankPoolConfig config_;
  std::vector<std::unique_ptr<core::TcimAccelerator>> banks_;
  /// Cached runtime.bank.<b>.busy_micros_total registry counters, one
  /// per bank (resolved once in the constructor, bumped per shard).
  std::vector<obs::Counter*> bank_busy_;
  mutable WorkerPool workers_;
};

}  // namespace tcim::runtime
