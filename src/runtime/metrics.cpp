#include "runtime/metrics.h"

#include <string>

#include "bitmatrix/sliced_store.h"

namespace tcim::runtime {

namespace {

SchedulerMetrics::PerKind MakePerKind(const std::string& kind) {
  obs::Registry& reg = obs::Registry::Global();
  const std::string base = "scheduler." + kind + ".";
  return SchedulerMetrics::PerKind{
      reg.GetCounter(base + "submitted_total"),
      reg.GetCounter(base + "dispatched_total"),
      reg.GetCounter(base + "done_total"),
      reg.GetHistogram(base + "wait_seconds"),
      reg.GetHistogram(base + "service_seconds"),
  };
}

}  // namespace

SchedulerMetrics& SchedulerMetrics::Get() {
  static SchedulerMetrics* metrics = [] {
    obs::Registry& reg = obs::Registry::Global();
    return new SchedulerMetrics{
        reg.GetGauge("scheduler.policy_lane.depth"),
        reg.GetGauge("scheduler.update_lane.depth"),
        reg.GetCounter("scheduler.rejected_total"),
        reg.GetCounter("scheduler.coalesced_total"),
        MakePerKind("count"),
        MakePerKind("update"),
        MakePerKind("query"),
    };
  }();
  return *metrics;
}

SchedulerMetrics::PerKind& SchedulerMetrics::ForKind(JobKind kind) {
  switch (kind) {
    case JobKind::kCount:
      return count;
    case JobKind::kUpdate:
      return update;
    case JobKind::kQuery:
      break;
  }
  return query;
}

EpochMetrics& EpochMetrics::Get() {
  static EpochMetrics* metrics = [] {
    obs::Registry& reg = obs::Registry::Global();
    return new EpochMetrics{
        reg.GetCounter("epoch.published_total"),
        reg.GetCounter("epoch.retired_total"),
        reg.GetGauge("epoch.live"),
        reg.GetHistogram("epoch.pin_seconds"),
    };
  }();
  return *metrics;
}

BankPoolMetrics& BankPoolMetrics::Get() {
  static BankPoolMetrics* metrics = [] {
    obs::Registry& reg = obs::Registry::Global();
    return new BankPoolMetrics{
        reg.GetCounter("runtime.bank.shard_runs_total"),
        reg.GetHistogram("runtime.bank.shard_seconds"),
        reg.GetGauge("runtime.bank.shard_imbalance"),
        reg.GetCounter("runtime.bank.busy_micros_total"),
        reg.GetGauge("runtime.bank.replica_bytes"),
        reg.GetGauge("runtime.bank.tile_imbalance"),
        reg.GetCounter("runtime.bank.pairs_batched_total"),
        reg.GetCounter("runtime.bank.pairs_zerocopy_total"),
        reg.GetCounter("runtime.bank.pairs_perpair_total"),
    };
  }();
  return *metrics;
}

obs::Counter& BankPoolMetrics::BankBusyMicros(std::size_t bank) {
  return obs::Registry::Global().GetCounter(
      "runtime.bank." + std::to_string(bank) + ".busy_micros_total");
}

StreamMetrics& StreamMetrics::Get() {
  static StreamMetrics* metrics = [] {
    obs::Registry& reg = obs::Registry::Global();
    return new StreamMetrics{
        reg.GetCounter("stream.batches_total"),
        reg.GetCounter("stream.recounts_total"),
        reg.GetHistogram("stream.batch_ops"),
        reg.GetHistogram("stream.apply_seconds"),
        reg.GetGauge("stream.heap_bytes"),
        reg.GetGauge("stream.shared_slab_ratio"),
        reg.GetCounter("stream.plan_invalidations_total"),
    };
  }();
  return *metrics;
}

void TouchServingMetrics() {
  SchedulerMetrics::Get();
  EpochMetrics::Get();
  BankPoolMetrics::Get();
  StreamMetrics::Get();
  bit::StoreMetrics::Get();
}

}  // namespace tcim::runtime
