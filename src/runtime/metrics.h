// Serving-layer metric groups over obs::Registry.
//
// Each struct caches references to its registry entries so the
// instrumented code pays a relaxed atomic bump, not a name lookup.
// Get() registers the whole group on first call — scrape surfaces
// (tcim_cli --metrics-json) call Get() up front so every serving
// metric appears in the dump, zero-valued, even before traffic.
//
// Units follow the repo convention: *_seconds histograms record
// seconds, *_total counters are monotonically increasing event
// counts, gauges are instantaneous levels. docs/OBSERVABILITY.md is
// the operator-facing catalog.
//
// Layer: §13 runtime — see docs/ARCHITECTURE.md.
#pragma once

#include "obs/metrics.h"
#include "runtime/job.h"

namespace tcim::runtime {

// scheduler.* — two-lane async scheduler (src/runtime/scheduler.*).
struct SchedulerMetrics {
  struct PerKind {
    obs::Counter& submitted;       // jobs accepted into a lane
    obs::Counter& dispatched;      // jobs handed to a worker
    obs::Counter& done;            // jobs finished (ok or failed)
    obs::Histogram& wait_seconds;  // submit -> dispatch
    obs::Histogram& service_seconds;  // dispatch -> done
  };

  obs::Gauge& policy_depth;   // queued entries, policy lane
  obs::Gauge& update_depth;   // queued entries, update lane
  obs::Counter& rejected;     // shed by max_pending admission
  obs::Counter& coalesced;    // queries folded into a queued twin
  PerKind count;
  PerKind update;
  PerKind query;

  static SchedulerMetrics& Get();
  PerKind& ForKind(JobKind kind);
};

// epoch.* — MVCC snapshot lifecycle (src/runtime/epoch_manager.*).
struct EpochMetrics {
  obs::Counter& published;        // epochs made current
  obs::Counter& retired;          // epochs freed on last unpin
  obs::Gauge& live;               // snapshots currently reachable
  obs::Histogram& pin_seconds;    // PinCurrent latency

  static EpochMetrics& Get();
};

// runtime.bank.* — bank pool shard execution (src/runtime/bank_pool.*).
struct BankPoolMetrics {
  obs::Counter& shard_runs;          // RunShards fan-outs
  obs::Histogram& shard_seconds;     // one sample per shard task
  obs::Gauge& shard_imbalance;       // max/mean shard time, last run
  obs::Counter& bank_busy_micros;    // summed shard wall time, all banks
  obs::Gauge& replica_bytes;         // 2D hub-replica bytes, last plan
  obs::Gauge& tile_imbalance;        // 2D max/mean bank weight, last plan
  // Adaptive pair-policy routing on the host-kernel count paths: valid
  // pairs consumed per kernel path (kernel_backend.h, PairPolicy).
  obs::Counter& pairs_batched;       // pairs via the arena path
  obs::Counter& pairs_zero_copy;     // pairs via zero-copy descriptors
  obs::Counter& pairs_per_pair;      // pairs via forced per-pair dispatch

  static BankPoolMetrics& Get();
  // Per-bank busy counter, registered on first use:
  // runtime.bank.<index>.busy_micros_total
  static obs::Counter& BankBusyMicros(std::size_t bank);
};

// stream.* — streaming update sessions (src/runtime/stream_session.*).
struct StreamMetrics {
  obs::Counter& batches;             // Apply calls
  obs::Counter& recounts;            // batches that fell back to recount
  obs::Histogram& batch_ops;         // delta size (edge ops per batch)
  obs::Histogram& apply_seconds;     // Apply incl. publish
  obs::Gauge& heap_bytes;            // live matrix heap, last publish
  obs::Gauge& shared_slab_ratio;     // slabs shared with prior epoch
  obs::Counter& plan_invalidations;  // 2D serving plans dropped by a batch

  static StreamMetrics& Get();
};

// Registers every serving metric group (plus the bitmatrix store.*
// group) so a scrape lists the full catalog even in a process that
// never constructed a Scheduler or StreamSession.
void TouchServingMetrics();

}  // namespace tcim::runtime
