// Epoch-based snapshot isolation for the serving runtime.
//
// The storage layer (bitmatrix/sliced_store.h) makes SlicedMatrix
// copies cheap — O(#slabs) shared_ptr bumps, touched slabs only — so
// the runtime can afford to publish a *complete immutable matrix* per
// applied batch. EpochManager is the MVCC hinge between one writer and
// many readers:
//
//   writer:   ApplyBatch → Publish(EpochSnapshot)   (advances current)
//   readers:  PinCurrent() → count on pin->matrix   (never blocks)
//   retire:   last pin of an old epoch drops        (slabs freed)
//
// Pins are plain shared_ptr<const EpochSnapshot>: pinning is one
// atomic refcount bump under a short mutex (no reader ever waits on a
// writer's Apply), and retirement is the *synchronous* destructor of
// the last reference — the moment the final pin of a superseded epoch
// drops, its snapshot (and every COW slab only it held) is freed and
// the retired() counter ticks. Tests assert live/retired counts
// immediately after dropping a pin; no polling, no grace periods.
//
// Memory bound: live bytes = current matrix + Σ over live old epochs
// of the slabs their successor batches touched (docs/SERVING.md works
// the arithmetic). live_epochs() is the knob to watch in a server.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md and docs/SERVING.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bitmatrix/sliced_matrix.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "runtime/partitioner.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::runtime {

/// A materialized 2D serving plan for one epoch: the tile/hub
/// partition plus the per-bank hub-column replica stores (COW extracts
/// of the epoch matrix's column store — shared slabs, so N replicas of
/// k hub columns cost ~one copy of those columns, not N).
struct ServingPlan2d {
  GraphPartition partition;
  /// One replica store per bank; same shape as the epoch matrix's
  /// column store with non-hub vectors empty (see
  /// bit::SlicedStore::ExtractVectors).
  std::vector<bit::SlicedStore> replicas;
};

/// Lazily-built, shareable cache of one epoch's ServingPlan2d.
///
/// The pointer lives on the EpochSnapshot so the plan follows the
/// epoch's lifetime, and StreamSession *carries the same cache object
/// forward* across publishes whose batches provably cannot change the
/// plan (no hub-touching ops, no vertex growth) — that carry-forward
/// is what keeps the 2D read path from re-planning per batch. When a
/// batch may invalidate the plan the session attaches a fresh, empty
/// cache instead (it never mutates a published one, so pinned readers
/// of old epochs keep their plan).
class PlanCache2d {
 public:
  using PlanPtr = std::shared_ptr<const ServingPlan2d>;

  /// The cached plan, or null if none was built yet.
  [[nodiscard]] PlanPtr Get() const {
    util::MutexLock lock(&mu_);
    return plan_;
  }
  /// True once a plan has been built (used by the invalidation metric:
  /// only a *built* plan being dropped counts as an invalidation).
  [[nodiscard]] bool has_plan() const {
    util::MutexLock lock(&mu_);
    return plan_ != nullptr;
  }
  /// Returns the cached plan if it matches `num_banks`, else builds
  /// one via `build` and caches it. The bank check makes a stale
  /// carry-forward (different pool) a rebuild, never a wrong answer.
  /// `build` runs under mu_ (one builder at a time, by design: a plan
  /// is expensive and concurrent queries should share one build).
  [[nodiscard]] PlanPtr GetOrBuild(
      std::uint32_t num_banks,
      const std::function<ServingPlan2d()>& build) {
    util::MutexLock lock(&mu_);
    if (plan_ == nullptr || plan_->partition.shards.size() != num_banks) {
      plan_ = std::make_shared<const ServingPlan2d>(build());
    }
    return plan_;
  }

 private:
  mutable util::Mutex mu_;
  PlanPtr plan_ TCIM_GUARDED_BY(mu_);
};

/// One published, immutable version of a streamed graph. Everything a
/// reader needs to count (and to cross-check the count) without ever
/// touching writer state again.
struct EpochSnapshot {
  std::uint64_t epoch = 0;  ///< stamped by Publish; strictly increasing
  graph::Orientation orientation = graph::Orientation::kUpper;
  std::uint32_t slice_bits = 64;
  graph::VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// The writer's maintained count at publication — the oracle every
  /// epoch-pinned recount must reproduce exactly.
  std::uint64_t triangles = 0;
  /// COW copy of the sliced matrix as of this epoch; immutable.
  std::shared_ptr<const bit::SlicedMatrix> matrix;
  /// Shared 2D serving-plan cache (lazily built by the first 2D query
  /// against this epoch; carried forward across publishes whose
  /// batches cannot invalidate it — see PlanCache2d). Always non-null.
  std::shared_ptr<PlanCache2d> plan2d = std::make_shared<PlanCache2d>();
};

class EpochManager {
 public:
  /// A pinned epoch: holding one keeps the snapshot (and its slabs)
  /// alive. Copyable; dropping the last Pin of a superseded epoch
  /// retires it synchronously.
  using Pin = std::shared_ptr<const EpochSnapshot>;

  EpochManager() : counters_(std::make_shared<Counters>()) {}
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Stamps `snapshot` with the next epoch id, makes it current, and
  /// returns the id. The previous epoch stays alive while any Pin
  /// holds it. Writer-side only (externally serialized; StreamSession
  /// calls it under its writer lock).
  std::uint64_t Publish(EpochSnapshot snapshot);

  /// Pins the current epoch. Never blocks on a writer's ApplyBatch —
  /// only on another Pin/Publish pointer swap (a few instructions).
  /// Null until the first Publish.
  [[nodiscard]] Pin PinCurrent() const;

  /// Id of the current epoch (0 before the first Publish).
  [[nodiscard]] std::uint64_t current_epoch() const;
  /// Number of Publish calls.
  [[nodiscard]] std::uint64_t published() const noexcept {
    return counters_->published.load(std::memory_order_relaxed);
  }
  /// Epochs whose snapshot is still referenced (current counts as 1).
  [[nodiscard]] std::uint64_t live_epochs() const noexcept {
    return counters_->live.load(std::memory_order_relaxed);
  }
  /// Epochs fully released (snapshot destroyed, slabs freed).
  [[nodiscard]] std::uint64_t retired() const noexcept {
    return counters_->retired.load(std::memory_order_relaxed);
  }

 private:
  /// Shared with every snapshot's deleter so retirement accounting
  /// survives the manager (a pin may outlive it).
  struct Counters {
    std::atomic<std::uint64_t> published{0};
    std::atomic<std::uint64_t> live{0};
    std::atomic<std::uint64_t> retired{0};
  };

  std::shared_ptr<Counters> counters_;
  mutable util::Mutex mu_;  ///< guards the current_ swap only
  Pin current_ TCIM_GUARDED_BY(mu_);
  std::uint64_t next_epoch_ TCIM_GUARDED_BY(mu_) = 0;
};

/// From-scratch materialization of a pinned epoch as an undirected
/// graph::Graph — the sequential-oracle path of the snapshot tests:
/// rebuild the graph from the *matrix alone* and recount with a
/// baseline. Under kUpper/kDegree every stored arc is one undirected
/// edge; under kFullSymmetric both directions are stored and the
/// builder dedupes them.
[[nodiscard]] graph::Graph MaterializeEpochGraph(const EpochSnapshot& epoch);

}  // namespace tcim::runtime
