// Stats aggregation across parallel TCIM banks: merges per-shard
// architectural counts and perf results into one cluster-level view.
//
// Mirrors core::PerfModel's serial/parallel split one level up:
//
//  * serial_sum_seconds     — Σ of the banks' serial latencies: the
//    time one bank would take to do all the work back-to-back (the
//    cluster's "serial" view, and the speedup baseline);
//  * critical_path_seconds  — max over banks of the per-bank serial
//    latency: all banks run concurrently, each internally serial (the
//    cluster's answer-ready latency);
//  * parallel_critical_path_seconds — max over banks of the per-bank
//    *parallel* (subarray critical-path) latency: bank-level and
//    subarray-level overlap combined, the deepest parallelism the
//    architecture exposes.
//
// The triangle count is reassembled from the shards' *raw* Eq. (5)
// bitcounts — summed before dividing by the orientation multiplier,
// because a single shard's bitcount need not be divisible by it under
// kFullSymmetric.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: seconds /
// joules (SI); ExecStats fields stay dimensionless counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/controller.h"
#include "core/accelerator.h"
#include "core/perf_model.h"
#include "runtime/partitioner.h"

namespace tcim::runtime {

/// Element-wise sum of per-bank cache statistics.
[[nodiscard]] arch::CacheStats MergeCacheStats(
    std::span<const arch::CacheStats> stats);

/// Sums op counts, cache stats and per-subarray histograms. `spread`
/// is taken as the max (identical across banks of one cluster run).
[[nodiscard]] arch::ExecStats MergeExecStats(
    std::span<const arch::ExecStats> stats);

/// The cluster-level result of one multi-bank run.
struct ClusterResult {
  std::uint64_t triangles = 0;
  graph::Orientation orientation = graph::Orientation::kUpper;
  arch::ExecStats exec;    ///< merged op counts across banks
  bit::SliceStats slices;  ///< of the shared matrix (computed once)

  double serial_sum_seconds = 0.0;
  double critical_path_seconds = 0.0;
  double parallel_critical_path_seconds = 0.0;
  double energy_joules = 0.0;    ///< Σ per-bank chip energy
  double platform_joules = 0.0;  ///< chip energy + host power × critical path
  /// Wall-clock of the simulation itself; set by BankPool::Count
  /// (AggregateClusterResult leaves it 0 — shard wall-clocks overlap,
  /// their sum means nothing).
  double host_seconds = 0.0;

  GraphPartition partition;
  std::vector<core::TcimResult> banks;  ///< per-shard results, bank order

  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(banks.size());
  }
  /// Bank-level parallel speedup over the one-bank-serial view.
  [[nodiscard]] double Speedup() const noexcept {
    return critical_path_seconds == 0.0
               ? 1.0
               : serial_sum_seconds / critical_path_seconds;
  }
  [[nodiscard]] std::string Summary() const;
};

/// Folds the per-bank shard results (bank order, one per shard of
/// `partition`) into the cluster view. `perf_params` supplies the host
/// platform power for the cluster-level platform energy.
[[nodiscard]] ClusterResult AggregateClusterResult(
    GraphPartition partition, graph::Orientation orientation,
    std::vector<core::TcimResult> per_bank, bit::SliceStats slices,
    const core::PerfModelParams& perf_params);

}  // namespace tcim::runtime
