// Stats aggregation across parallel TCIM banks: merges per-shard
// architectural counts and perf results into one cluster-level view.
//
// Mirrors core::PerfModel's serial/parallel split one level up:
//
//  * serial_sum_seconds     — Σ of the banks' serial latencies: the
//    time one bank would take to do all the work back-to-back (the
//    cluster's "serial" view, and the speedup baseline);
//  * critical_path_seconds  — max over banks of the per-bank serial
//    latency: all banks run concurrently, each internally serial (the
//    cluster's answer-ready latency);
//  * parallel_critical_path_seconds — max over banks of the per-bank
//    *parallel* (subarray critical-path) latency: bank-level and
//    subarray-level overlap combined, the deepest parallelism the
//    architecture exposes.
//
// The triangle count is reassembled from the shards' *raw* Eq. (5)
// bitcounts — summed before dividing by the orientation multiplier,
// because a single shard's bitcount need not be divisible by it under
// kFullSymmetric.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: seconds /
// joules (SI); ExecStats fields stay dimensionless counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/controller.h"
#include "core/accelerator.h"
#include "core/perf_model.h"
#include "obs/metrics.h"
#include "runtime/partitioner.h"
#include "stream/incremental_counter.h"

namespace tcim::runtime {

/// Element-wise sum of per-bank cache statistics.
[[nodiscard]] arch::CacheStats MergeCacheStats(
    std::span<const arch::CacheStats> stats);

/// Sums op counts, cache stats and per-subarray histograms. `spread`
/// is taken as the max (identical across banks of one cluster run).
[[nodiscard]] arch::ExecStats MergeExecStats(
    std::span<const arch::ExecStats> stats);

/// The cluster-level result of one multi-bank run.
struct ClusterResult {
  std::uint64_t triangles = 0;
  graph::Orientation orientation = graph::Orientation::kUpper;
  arch::ExecStats exec;    ///< merged op counts across banks
  bit::SliceStats slices;  ///< of the shared matrix (computed once)

  double serial_sum_seconds = 0.0;
  double critical_path_seconds = 0.0;
  double parallel_critical_path_seconds = 0.0;
  double energy_joules = 0.0;    ///< Σ per-bank chip energy
  double platform_joules = 0.0;  ///< chip energy + host power × critical path
  /// Wall-clock of the simulation itself; set by BankPool::Count
  /// (AggregateClusterResult leaves it 0 — shard wall-clocks overlap,
  /// their sum means nothing).
  double host_seconds = 0.0;

  GraphPartition partition;
  std::vector<core::TcimResult> banks;  ///< per-shard results, bank order

  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(banks.size());
  }
  /// Bank-level parallel speedup over the one-bank-serial view.
  [[nodiscard]] double Speedup() const noexcept {
    return critical_path_seconds == 0.0
               ? 1.0
               : serial_sum_seconds / critical_path_seconds;
  }
  [[nodiscard]] std::string Summary() const;
};

/// Folds the per-bank shard results (bank order, one per shard of
/// `partition`) into the cluster view. `perf_params` supplies the host
/// platform power for the cluster-level platform energy.
[[nodiscard]] ClusterResult AggregateClusterResult(
    GraphPartition partition, graph::Orientation orientation,
    std::vector<core::TcimResult> per_bank, bit::SliceStats slices,
    const core::PerfModelParams& perf_params);

/// Translates one stream batch's accounting into the ExecStats
/// vocabulary so update batches merge with counting runs: AND ops map
/// to valid_pairs, in-place bit patches + structural slice inserts map
/// to row/col slice writes, net edge changes to edges_processed. The
/// array-specific fields (cache, per-subarray histograms,
/// accumulated_bitcount) stay zero — an update batch never touches the
/// computational array.
[[nodiscard]] arch::ExecStats ToExecStats(const stream::BatchResult& batch);

/// Running aggregate over the per-batch results of one edge stream —
/// the stream-side mirror of ClusterResult (per-batch ExecStats merged
/// via MergeExecStats; StreamSession keeps one, the CLI prints it).
struct StreamStats {
  std::uint64_t batches = 0;
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_dropped = 0;
  std::uint64_t edges_inserted = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t flipped_arcs = 0;
  std::uint64_t recounts = 0;       ///< batches that hit the fallback
  std::int64_t net_delta = 0;       ///< Σ per-batch triangle deltas
  double host_seconds = 0.0;        ///< Σ per-batch wall-clock
  arch::ExecStats exec;             ///< merged per-batch ExecStats

  void Add(const stream::BatchResult& batch);
  [[nodiscard]] std::string Summary() const;
};

/// Thread-safe latency aggregator for the serving layer: request
/// threads Record() their end-to-end seconds, the reporter reads
/// count/mean/max and nearest-rank percentiles (p50/p99 in the
/// service_simulation tables and the mixed-mode scaling_stream bench).
/// Backed by an (unregistered) obs::Histogram: Record() is a few
/// relaxed atomic bumps instead of a lock + vector push, and memory
/// stays O(buckets) instead of O(samples). Percentiles are therefore
/// bucketed: nearest-rank over the log2 buckets, within a relative
/// error of 1/(2 * obs::Histogram::kSubBuckets) (~0.8%) of the exact
/// sample — count/mean/max stay exact (tests/obs_test.cpp pins the
/// parity bound against the exact sorted-sample nearest rank).
class LatencyRecorder {
 public:
  void Record(double seconds);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double max() const;
  /// Bucketed nearest-rank percentile, p in [0, 100]; 0 when empty.
  [[nodiscard]] double Percentile(double p) const;
  /// "n=… mean=… p50=… p99=… max=…" with times in milliseconds.
  [[nodiscard]] std::string Summary() const;

 private:
  obs::Histogram hist_;
};

}  // namespace tcim::runtime
