// Async job scheduler: the concurrent front door of the multi-bank
// runtime. Clients Submit(graph) / SubmitQuery(session) /
// SubmitUpdate(session, delta) from any thread and get a JobHandle
// with future-style Wait(); dispatcher threads pull jobs off two
// thread-safe lanes and run them on the shared BankPool.
//
// Two lanes (the cross-kind ordering fix; docs/SERVING.md):
//  * the POLICY lane holds count and query jobs, ordered FIFO or by
//    priority — reads have no ordering obligation beyond the epoch
//    they pin, so the policy may reorder them freely;
//  * the UPDATE lane is strict FIFO per session at ANY dispatch_threads
//    count: a session's next batch dispatches only when its previous
//    batch finished (per-session busy set), so updates serialize among
//    themselves in submission order. Updates for different sessions
//    still run concurrently, and updates never wait behind queued
//    counts or queries (nor vice versa).
//
// Query jobs pin the session's current epoch AT DISPATCH and count it
// on the bank pool without re-slicing (BankPool::HostCountMatrix over
// the pinned COW matrix). Queries queued for the same session COALESCE
// at dispatch: the leader absorbs every queued query for that session,
// pins once, runs ONE shared pass, and resolves them all — because
// pinning happens at dispatch, the coalesced answer is the same one
// each query would have computed alone.
//
// Admission control: with max_pending > 0, a submission that would
// push pending() past the bound is REJECTED — its handle resolves to
// kFailed immediately ("admission: queue full") and rejected() ticks.
// Rejection is a handle outcome, not an exception: the serving front
// end sheds load by branching, not by unwinding.
//
// Shutdown is graceful in two flavours:
//  * kDrain         — stop accepting, finish everything queued;
//  * kCancelPending — stop accepting, cancel still-queued jobs
//                     (their handles resolve to kCancelled), finish
//                     only the jobs already running.
// The destructor drains. Pause()/Resume() gate dispatch without
// touching the queues — tests use it to stage deterministic orderings,
// operators to hold traffic during reconfiguration.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "graph/graph.h"
#include "runtime/bank_pool.h"
#include "runtime/job.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::runtime {

enum class SchedulingPolicy : std::uint8_t {
  kFifo,      ///< strict submission order
  kPriority,  ///< JobOptions::priority desc, FIFO within a priority
};

struct SchedulerConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  /// Jobs in flight at once. Each dispatched job still fans out over
  /// all banks; >1 interleaves shard tasks of multiple jobs on the
  /// pool's workers — and lets queries run while an update applies.
  std::uint32_t dispatch_threads = 1;
  /// Admission bound: submissions beyond this many pending jobs are
  /// rejected (handle resolves kFailed). 0 = unlimited.
  std::uint64_t max_pending = 0;
  BankPoolConfig pool;
};

/// Test-only interleaving hooks, injected with SetTestHooks BEFORE any
/// submission. They let scheduler_test pin exact orders ("publish
/// during count", "pin during publish", "retire while last reader
/// exits") instead of hoping a stress run hits them. Hooks run on
/// dispatcher threads; they must not call back into the scheduler.
struct SchedulerTestHooks {
  /// After a query leader pinned its epoch, before counting begins.
  std::function<void(std::uint64_t /*epoch*/)> after_query_pin;
  /// After MarkRunning, before the job's work runs.
  std::function<void(JobKind)> before_job_run;
  /// After the job's work, before the terminal Mark*.
  std::function<void(JobKind)> after_job_run;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();  // Shutdown(kDrain)
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a counting job; thread-safe. Throws std::runtime_error
  /// after Shutdown(). May resolve kFailed without queueing under
  /// admission control (max_pending).
  [[nodiscard]] JobHandle Submit(graph::Graph graph, JobOptions options = {});

  /// Enqueues an epoch-pinned serving query against `session`: at
  /// dispatch the job pins the session's current epoch and counts it
  /// on the bank pool (no re-slice; the COW matrix is counted as-is).
  /// Queries for the same session coalesce at dispatch into one shared
  /// pass (JobOutcome::query reports batch_size/coalesced). Rides the
  /// policy lane with counting jobs. Thread-safe; throws
  /// std::runtime_error after Shutdown() and std::invalid_argument on
  /// a null session.
  [[nodiscard]] JobHandle SubmitQuery(std::shared_ptr<StreamSession> session,
                                      JobOptions options = {});

  /// Enqueues a streaming-update job: one EdgeDelta batch applied to
  /// `session` (shared, usually across many update jobs). Updates ride
  /// the dedicated FIFO update lane: batches for one session apply in
  /// SUBMISSION order at any dispatch_threads count and never queue
  /// behind counts or queries. The outcome's `update` payload carries
  /// the batch's delta/new total/stats; `epoch` the published epoch.
  /// Thread-safe; throws std::runtime_error after Shutdown() and
  /// std::invalid_argument on a null session.
  [[nodiscard]] JobHandle SubmitUpdate(std::shared_ptr<StreamSession> session,
                                       stream::EdgeDelta delta,
                                       JobOptions options = {});

  /// Holds dispatch (running jobs finish; queued jobs stay queued).
  void Pause();
  /// Releases Pause().
  void Resume();

  enum class ShutdownMode : std::uint8_t { kDrain, kCancelPending };
  /// Idempotent and safe to call from several threads; returns once
  /// every dispatcher thread has exited. Implies Resume() — a paused
  /// scheduler drains, it never deadlocks.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  /// Installs the test hooks. Call before the first submission; not
  /// synchronized against in-flight dispatch.
  void SetTestHooks(SchedulerTestHooks hooks) { hooks_ = std::move(hooks); }

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t pending() const;   ///< queued, both lanes
  [[nodiscard]] std::uint64_t running() const;
  [[nodiscard]] std::uint64_t completed() const; ///< done + failed + cancelled
  [[nodiscard]] std::uint64_t rejected() const;  ///< admission rejections
  [[nodiscard]] std::uint64_t coalesced() const; ///< queries answered by a
                                                 ///< shared pass (followers)
  [[nodiscard]] const BankPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct QueueEntry {
    std::shared_ptr<JobRecord> record;
    graph::Graph graph;                      ///< kCount payload
    std::shared_ptr<StreamSession> session;  ///< kUpdate/kQuery payload
    stream::EdgeDelta delta;                 ///< kUpdate payload
    std::uint64_t sequence = 0;  ///< submission order, FIFO tiebreak
  };

  void DispatcherLoop();
  /// The DispatcherLoop wait predicate: true when a dispatcher has
  /// work it may take right now, or (during shutdown) when both lanes
  /// drained and the thread should exit. Caller holds mu_.
  [[nodiscard]] bool DispatcherShouldWakeLocked() const TCIM_REQUIRES(mu_);
  /// Pops the next policy-lane entry per policy; lane must be
  /// non-empty. Caller holds mu_.
  QueueEntry PopPolicyLocked() TCIM_REQUIRES(mu_);
  /// Index of the first update-lane entry whose session is not busy,
  /// or update lane size when none is dispatchable. Caller holds mu_.
  [[nodiscard]] std::size_t DispatchableUpdateLocked() const
      TCIM_REQUIRES(mu_);
  /// Admission check + record creation shared by the Submit* fronts.
  /// Returns {record, admitted}; a rejected record is already terminal
  /// (kFailed) and must not be queued. Caller holds mu_.
  std::pair<std::shared_ptr<JobRecord>, bool> AdmitLocked(JobKind kind,
                                                          JobOptions options)
      TCIM_REQUIRES(mu_);
  /// Mirrors the lane depths into the scheduler.* registry gauges.
  /// Caller holds mu_.
  void UpdateDepthGaugesLocked() const TCIM_REQUIRES(mu_);
  /// Runs one entry (and its coalesced followers) outside mu_.
  void RunEntry(QueueEntry entry, std::vector<QueueEntry> followers,
                std::uint64_t start_order,
                std::vector<std::uint64_t> follower_orders);

  const SchedulerConfig config_;
  BankPool pool_;
  SchedulerTestHooks hooks_;

  mutable util::Mutex mu_;
  util::CondVar cv_;
  /// kCount + kQuery
  std::deque<QueueEntry> policy_lane_ TCIM_GUARDED_BY(mu_);
  /// kUpdate, FIFO
  std::deque<QueueEntry> update_lane_ TCIM_GUARDED_BY(mu_);
  /// Sessions with an update batch currently applying — the gate that
  /// keeps one session's batches in submission order.
  std::unordered_set<const StreamSession*> busy_sessions_
      TCIM_GUARDED_BY(mu_);
  bool accepting_ TCIM_GUARDED_BY(mu_) = true;
  bool cancel_pending_ TCIM_GUARDED_BY(mu_) = false;
  bool paused_ TCIM_GUARDED_BY(mu_) = false;
  bool shut_down_ TCIM_GUARDED_BY(mu_) = false;
  std::uint64_t next_sequence_ TCIM_GUARDED_BY(mu_) = 0;
  /// Submissions that entered a lane.
  std::uint64_t accepted_ TCIM_GUARDED_BY(mu_) = 0;
  std::uint64_t next_start_order_ TCIM_GUARDED_BY(mu_) = 0;
  std::uint64_t running_ TCIM_GUARDED_BY(mu_) = 0;
  std::uint64_t completed_ TCIM_GUARDED_BY(mu_) = 0;
  std::uint64_t rejected_ TCIM_GUARDED_BY(mu_) = 0;
  std::uint64_t coalesced_ TCIM_GUARDED_BY(mu_) = 0;
  util::Mutex join_mu_;  ///< serializes the Shutdown join phase
  /// Written only in the constructor; joined under join_mu_.
  std::vector<std::thread> dispatchers_;
};

}  // namespace tcim::runtime
