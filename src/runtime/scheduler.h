// Async job scheduler: the concurrent front door of the multi-bank
// runtime. Clients Submit(graph) from any thread and get a JobHandle
// with future-style Wait(); dispatcher threads pull jobs off the
// thread-safe queue (FIFO or priority order) and run them on the
// shared BankPool.
//
// Shutdown is graceful in two flavours:
//  * kDrain         — stop accepting, finish everything queued;
//  * kCancelPending — stop accepting, cancel still-queued jobs
//                     (their handles resolve to kCancelled), finish
//                     only the jobs already running.
// The destructor drains. Pause()/Resume() gate dispatch without
// touching the queue — tests use it to stage deterministic orderings,
// operators to hold traffic during reconfiguration.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "graph/graph.h"
#include "runtime/bank_pool.h"
#include "runtime/job.h"
#include "runtime/stream_session.h"
#include "stream/edge_delta.h"

namespace tcim::runtime {

enum class SchedulingPolicy : std::uint8_t {
  kFifo,      ///< strict submission order
  kPriority,  ///< JobOptions::priority desc, FIFO within a priority
};

struct SchedulerConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  /// Jobs in flight at once. Each dispatched job still fans out over
  /// all banks; >1 interleaves shard tasks of multiple jobs on the
  /// pool's workers.
  std::uint32_t dispatch_threads = 1;
  BankPoolConfig pool;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config);
  ~Scheduler();  // Shutdown(kDrain)
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a counting job; thread-safe. Throws std::runtime_error
  /// after Shutdown().
  [[nodiscard]] JobHandle Submit(graph::Graph graph, JobOptions options = {});

  /// Enqueues a streaming-update job: one EdgeDelta batch applied to
  /// `session` (shared, usually across many update jobs). Update jobs
  /// ride the same queue and policies as counting jobs, so an edge
  /// stream interleaves with whole-graph queries; batches for one
  /// session serialize inside StreamSession::Apply. Ordering contract:
  /// batches apply in *dispatch* order, which equals submission order
  /// only under the defaults (kFifo, dispatch_threads == 1). With
  /// several dispatch threads or priority scheduling, two in-flight
  /// batches for one session may apply in either order — for
  /// order-dependent streams either keep the defaults or Wait() on
  /// each handle before submitting the next batch. The outcome's
  /// `update` payload carries the batch's delta/new total/stats.
  /// Thread-safe; throws std::runtime_error after Shutdown() and
  /// std::invalid_argument on a null session.
  [[nodiscard]] JobHandle SubmitUpdate(std::shared_ptr<StreamSession> session,
                                       stream::EdgeDelta delta,
                                       JobOptions options = {});

  /// Holds dispatch (running jobs finish; queued jobs stay queued).
  void Pause();
  /// Releases Pause().
  void Resume();

  enum class ShutdownMode : std::uint8_t { kDrain, kCancelPending };
  /// Idempotent and safe to call from several threads; returns once
  /// every dispatcher thread has exited. Implies Resume() — a paused
  /// scheduler drains, it never deadlocks.
  void Shutdown(ShutdownMode mode = ShutdownMode::kDrain);

  // --- introspection ------------------------------------------------------
  [[nodiscard]] std::uint64_t submitted() const;
  [[nodiscard]] std::uint64_t pending() const;   ///< queued, not dispatched
  [[nodiscard]] std::uint64_t running() const;
  [[nodiscard]] std::uint64_t completed() const; ///< done + failed + cancelled
  [[nodiscard]] const BankPool& pool() const noexcept { return pool_; }
  [[nodiscard]] const SchedulerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct QueueEntry {
    std::shared_ptr<JobRecord> record;
    graph::Graph graph;                      ///< kCount payload
    std::shared_ptr<StreamSession> session;  ///< kUpdate payload
    stream::EdgeDelta delta;                 ///< kUpdate payload
    std::uint64_t sequence = 0;  ///< submission order, FIFO tiebreak
  };

  void DispatcherLoop();
  /// Pops the next entry per policy; queue must be non-empty.
  QueueEntry PopLocked();

  const SchedulerConfig config_;
  BankPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueueEntry> queue_;
  bool accepting_ = true;
  bool cancel_pending_ = false;
  bool paused_ = false;
  bool shut_down_ = false;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_start_order_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t completed_ = 0;
  std::mutex join_mu_;  ///< serializes the Shutdown join phase
  std::vector<std::thread> dispatchers_;
};

}  // namespace tcim::runtime
