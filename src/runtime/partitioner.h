// Graph partitioner for the multi-bank runtime: shards an oriented
// adjacency matrix across banks.
//
// Ownership rule (all strategies): under Eq. (5) every triangle is
// counted at exactly one non-zero (its pivot arc), so any assignment
// that hands every arc to exactly one bank partitions the raw bitcount
// sum *by construction* — the shards' accumulated bitcounts sum to the
// single-accelerator total for every graph and every orientation, and
// the orientation divide happens once on the cluster total.
//
// Strategies:
//  * kContiguous      — equal-width row ranges (the naive 1D split);
//  * kDegreeBalanced  — 1D row ranges cut on the oriented out-degree
//    prefix sum so every bank owns ~the same number of non-zeros;
//  * k2dHubReplicated — row x column tiles with a replicated hub set
//    (LA3-style). The top-degree "hub" columns are cloned into every
//    bank's private working set (COW slab shares, not copies) and
//    their arcs run in per-bank hub *lanes* balanced on AND work; the
//    long-tail arcs are tiled into a row-stripe x column-stripe grid
//    placed stripe-major so each bank serves exactly ONE column
//    stripe — the per-bank distinct-column working set shrinks by ~the
//    column-stripe count, which is what breaks the hub-column cache
//    bottleneck that caps 1D scaling on skewed graphs (ROADMAP #1).
//
// Besides the ranges the partitioner reports the communication
// geometry a physical multi-bank layout would pay for: cut arcs,
// column replication, and (2D only) hub/replica/tile-balance stats.
//
// Stat semantics are STRATEGY-AWARE: `total_needed_cols` counts the
// bank-resident column-slice copies each strategy actually
// materializes — for the 1D strategies that is the per-bank distinct
// columns its arcs touch (every bank reads the shared store); for 2D
// it is hub replicas (one per bank) plus the distinct tail columns of
// the bank's column stripe. ColReplicationFactor() therefore compares
// like with like across strategies instead of assuming the 1D
// whole-matrix-shared model.
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md and
// docs/PARTITIONING.md. Units: every count is dimensionless; bytes
// fields use the paper's NVS*(|S|/8+4) formula; fractions lie in
// [0, 1]; LoadImbalance() and TileImbalance() >= 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "bitmatrix/sliced_matrix.h"
#include "graph/orientation.h"

namespace tcim::runtime {

enum class PartitionStrategy : std::uint8_t {
  kContiguous,
  kDegreeBalanced,
  k2dHubReplicated,
};

[[nodiscard]] std::string ToString(PartitionStrategy strategy);
/// Parses "contiguous" / "degree" / "2d" (and the long spellings
/// "degree-balanced", "2d-hub", "2d-hub-replicated"). Throws
/// std::invalid_argument.
[[nodiscard]] PartitionStrategy ParsePartitionStrategy(
    const std::string& name);

/// Tuning knobs of the k2dHubReplicated planner.
struct Partition2dOptions {
  /// Sentinel for hub_k: size the hub set automatically (degree rule +
  /// replica budget below).
  static constexpr std::uint32_t kAutoHubs = 0xFFFFFFFFu;

  /// Exact hub count (top-k by in-degree), or kAutoHubs. Explicit
  /// values — including 0, 1 and n — bypass the degree/budget rules
  /// (the property-test escape hatch).
  std::uint32_t hub_k = kAutoHubs;
  /// Auto rule budget: extra replica bytes, (num_banks - 1) x hub
  /// column slice bytes, must stay <= this fraction of the matrix's
  /// total store bytes.
  double replica_budget_fraction = 0.25;
  /// Auto rule threshold: a column is hub-eligible while its in-degree
  /// is >= this multiple of the mean degree.
  double hub_degree_factor = 8.0;
  /// Target tail tiles per bank; with c = ceil(sqrt(banks)) column
  /// stripes the grid gets r = ceil(tiles_per_bank * banks / c) row
  /// stripes.
  std::uint32_t tiles_per_bank = 2;
  /// |S| used for the slice-count weights and byte stats. Callers with
  /// a built matrix should pass its slice_bits (Partition2dMatrix does
  /// this automatically).
  std::uint32_t slice_bits = 64;
};

/// One tail tile of the 2D grid: the arcs A[i][j] with i in
/// [row_begin, row_end), j in [col_begin, col_end) and j NOT a hub.
struct TileInfo {
  std::uint32_t row_stripe = 0;
  std::uint32_t col_stripe = 0;
  graph::VertexId row_begin = 0;
  graph::VertexId row_end = 0;  ///< exclusive
  graph::VertexId col_begin = 0;
  graph::VertexId col_end = 0;  ///< exclusive
  std::uint64_t arcs = 0;       ///< tail arcs inside the rectangle
  std::uint64_t weight = 0;     ///< Σ min(row slices, col slices) proxy
  std::uint32_t bank = 0;       ///< executing bank
};

/// The complete 2D execution plan. Arc routing invariant: an arc
/// (i, j) with is_hub[j] runs in the hub lane of the unique bank b
/// with hub_row_bounds[b] <= i < hub_row_bounds[b+1]; a tail arc runs
/// in the unique tile (row stripe of i, col stripe of j). Every arc
/// therefore lands in exactly one executor region — the dedup
/// invariant the property tests pin.
struct TilePlan2d {
  std::uint32_t num_banks = 0;
  std::uint32_t num_vertices = 0;
  std::uint32_t row_stripes = 0;
  std::uint32_t col_stripes = 0;
  /// Stripe bounds over [0, num_vertices], sizes row_stripes+1 /
  /// col_stripes+1, balanced on tail AND-work prefix sums.
  std::vector<graph::VertexId> row_bounds;
  std::vector<graph::VertexId> col_bounds;
  /// Hub vertex ids, sorted ascending (the ExtractVectors keep list).
  std::vector<std::uint32_t> hubs;
  /// num_vertices entries; is_hub[j] != 0 iff j is a hub column.
  std::vector<std::uint8_t> is_hub;
  /// Per-bank hub-lane row bounds over [0, num_vertices], size
  /// num_banks+1, balanced on per-row hub AND-work.
  std::vector<graph::VertexId> hub_row_bounds;
  /// Row-major [row_stripe * col_stripes + col_stripe] tile table.
  std::vector<TileInfo> tiles;
  /// Per-bank tile-index lists (indices into `tiles`). Each bank's
  /// tiles all share one column stripe (stripe-major placement).
  std::vector<std::vector<std::uint32_t>> bank_tiles;
  std::uint64_t hub_arcs = 0;      ///< arcs routed through hub lanes
  std::uint64_t total_weight = 0;  ///< Σ per-bank AND-work proxy
  std::uint64_t max_bank_weight = 0;

  /// Heaviest bank over the mean bank in the AND-work proxy
  /// (1.0 = perfectly balanced; the obs gauge).
  [[nodiscard]] double TileImbalance() const noexcept {
    return total_weight == 0
               ? 1.0
               : static_cast<double>(max_bank_weight) * num_banks /
                     static_cast<double>(total_weight);
  }
};

/// One bank's share of the arc space, plus its communication stats.
/// For the 1D strategies [row_begin, row_end) is the owned row range;
/// for k2dHubReplicated it is the bank's hub-lane row range and the
/// tail tiles live in GraphPartition::plan2d.
struct ShardInfo {
  std::uint32_t bank = 0;
  graph::VertexId row_begin = 0;
  graph::VertexId row_end = 0;  ///< exclusive
  std::uint64_t owned_arcs = 0;  ///< non-zeros enumerated by this bank
  std::uint64_t cut_arcs = 0;    ///< owned arcs targeting a shared/remote col
  std::uint64_t needed_cols = 0; ///< distinct columns this bank ANDs against
  std::uint64_t remote_cols = 0; ///< needed columns not exclusively local

  [[nodiscard]] std::uint64_t num_rows() const noexcept {
    return row_end - row_begin;
  }
  /// Fraction of this shard's arcs that cross the partition boundary.
  [[nodiscard]] double CutFraction() const noexcept {
    return owned_arcs == 0 ? 0.0
                           : static_cast<double>(cut_arcs) /
                                 static_cast<double>(owned_arcs);
  }
};

/// Cluster-level summary of one partition (the Table-style report the
/// CLI prints; see PrintPartitionTable). The 2D-only fields stay 0
/// under the 1D strategies.
struct PartitionStats {
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  std::uint32_t num_banks = 0;
  std::uint64_t total_arcs = 0;
  std::uint64_t total_cut_arcs = 0;
  std::uint64_t max_arcs = 0;          ///< heaviest shard
  std::uint64_t total_needed_cols = 0; ///< Σ per-bank resident col copies
  std::uint64_t distinct_cols = 0;     ///< columns needed by >= 1 bank

  // k2dHubReplicated only:
  std::uint32_t row_stripes = 0;
  std::uint32_t col_stripes = 0;
  std::uint64_t hub_count = 0;
  std::uint64_t hub_arcs = 0;
  /// Extra bytes the replicas cost beyond the shared store:
  /// (num_banks - 1) x Σ hub column slice bytes.
  std::uint64_t replica_bytes = 0;
  /// Both stores under the paper's NVS*(|S|/8+4) formula (the
  /// ReplicaOverhead denominator).
  std::uint64_t store_bytes = 0;
  double tile_imbalance = 0.0;

  [[nodiscard]] double EdgeCutFraction() const noexcept {
    return total_arcs == 0 ? 0.0
                           : static_cast<double>(total_cut_arcs) /
                                 static_cast<double>(total_arcs);
  }
  [[nodiscard]] double MeanArcs() const noexcept {
    return num_banks == 0 ? 0.0
                          : static_cast<double>(total_arcs) /
                                static_cast<double>(num_banks);
  }
  /// Heaviest shard over the mean shard (1.0 = perfectly balanced).
  [[nodiscard]] double LoadImbalance() const noexcept {
    const double mean = MeanArcs();
    return mean == 0.0 ? 1.0 : static_cast<double>(max_arcs) / mean;
  }
  /// Average bank-local copies per needed column (>= 1; 1.0 = no
  /// column slice is duplicated across banks). Strategy-aware: see the
  /// file comment for what "bank-local copy" means per strategy.
  [[nodiscard]] double ColReplicationFactor() const noexcept {
    return distinct_cols == 0
               ? 1.0
               : static_cast<double>(total_needed_cols) /
                     static_cast<double>(distinct_cols);
  }
  /// replica_bytes / store_bytes — the ≤ 25% acceptance bound of the
  /// default hub-k (0.0 under the 1D strategies).
  [[nodiscard]] double ReplicaOverhead() const noexcept {
    return store_bytes == 0 ? 0.0
                            : static_cast<double>(replica_bytes) /
                                  static_cast<double>(store_bytes);
  }
};

/// A complete sharding: per-bank ranges + the aggregate stats, plus
/// the tile plan when strategy == k2dHubReplicated (null otherwise).
struct GraphPartition {
  std::vector<ShardInfo> shards;
  PartitionStats stats;
  std::shared_ptr<const TilePlan2d> plan2d;

  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(shards.size());
  }
};

/// Shards `csr` into `num_banks` banks. For the 1D strategies the
/// shards are contiguous row ranges covering [0, csr.num_vertices);
/// k2dHubReplicated delegates to Partition2dCsr with default options.
/// Every bank appears in the result (possibly with an empty range when
/// num_banks > vertices). Throws std::invalid_argument when
/// num_banks == 0.
[[nodiscard]] GraphPartition PartitionOrientedCsr(
    const graph::OrientedCsr& csr, std::uint32_t num_banks,
    PartitionStrategy strategy);

/// Shards an ALREADY-SLICED matrix — the partition step of the
/// epoch-pinned serving path, where re-deriving a CSR from the pinned
/// COW matrix would cost exactly the layout work the snapshot is there
/// to avoid. For the 1D strategies owned_arcs comes from per-row set-
/// bit counts (same degree balance as PartitionOrientedCsr) and the
/// communication fields (cut_arcs, needed/remote cols, distinct_cols)
/// are left 0 — the serving path never prints them, and computing them
/// would need the per-arc column walk this function exists to skip.
/// k2dHubReplicated delegates to Partition2dMatrix (which does walk
/// the arcs — the tile plan needs them). Throws std::invalid_argument
/// when num_banks == 0.
[[nodiscard]] GraphPartition PartitionMatrixRows(
    const bit::SlicedMatrix& matrix, std::uint32_t num_banks,
    PartitionStrategy strategy);

/// Builds the full k2dHubReplicated plan from a CSR: three passes over
/// the arcs (slice/degree analysis; hub selection; tile accumulation),
/// then stripe-major tile->bank placement. options.slice_bits must
/// match the matrix the plan will execute against. Throws
/// std::invalid_argument when num_banks == 0.
[[nodiscard]] GraphPartition Partition2dCsr(const graph::OrientedCsr& csr,
                                            std::uint32_t num_banks,
                                            const Partition2dOptions& options);

/// Same planner over an already-sliced matrix (the serving path);
/// options.slice_bits is overridden by matrix.slice_bits().
[[nodiscard]] GraphPartition Partition2dMatrix(
    const bit::SlicedMatrix& matrix, std::uint32_t num_banks,
    const Partition2dOptions& options);

/// Executes bank `bank`'s share of `plan` on the host kernel: the hub
/// lane (columns with is_hub[j], rows in the bank's lane range) plus
/// its tail tiles. Returns the RAW Eq. (5) bitcount — the caller sums
/// the banks and applies the orientation divide once. When `replica`
/// is non-null it is used as the column store for the hub lane (the
/// bank's private hub replica; must be shape-compatible and
/// bit-identical on hub columns). Throws std::invalid_argument when
/// the matrix shape disagrees with the plan or bank is out of range.
[[nodiscard]] std::uint64_t CountBankShard2d(
    const bit::SlicedMatrix& matrix, const TilePlan2d& plan,
    std::uint32_t bank, const bit::SlicedStore* replica = nullptr,
    bit::PopcountKind kind = bit::PopcountKind::kBuiltin,
    bit::PairPathCounters* counters = nullptr);

/// Renders the per-shard table and the summary lines (edge-cut %,
/// load imbalance, replication factor; plus grid/hub/replica lines for
/// 2D partitions) via util::TablePrinter — the `tcim_cli --banks`
/// report block.
void PrintPartitionTable(std::ostream& os, const GraphPartition& partition);

}  // namespace tcim::runtime
