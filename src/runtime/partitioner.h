// Graph partitioner for the multi-bank runtime: shards an oriented
// adjacency matrix into per-bank contiguous vertex (row) ranges.
//
// Ownership rule: bank b owns the rows in [shard.row_begin,
// shard.row_end), and processes exactly the non-zeros A[i][j] with i
// in its range. Under Eq. (5) every triangle is counted at exactly one
// non-zero (its pivot edge), so disjoint row ranges that cover
// [0, n) partition the triangle count *by construction* — the shards'
// accumulated bitcounts sum to the single-accelerator total for every
// graph and every orientation.
//
// Two strategies:
//  * kContiguous      — equal-width vertex ranges (the naive split);
//  * kDegreeBalanced  — range boundaries chosen on the oriented
//    out-degree prefix sum so every bank owns ~the same number of
//    non-zeros (the per-unit load balance that multi-unit PIM triangle
//    counting lives or dies by).
//
// Besides the ranges the partitioner reports the communication
// geometry a physical multi-bank layout would pay for: cut arcs (owned
// non-zeros whose column lives outside the owned range) and the
// column-replication factor (how many bank-local copies of column
// slices the cluster holds in total).
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: every count is
// dimensionless; fractions lie in [0, 1]; LoadImbalance() >= 1.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bitmatrix/sliced_matrix.h"
#include "graph/orientation.h"

namespace tcim::runtime {

enum class PartitionStrategy : std::uint8_t {
  kContiguous,
  kDegreeBalanced,
};

[[nodiscard]] std::string ToString(PartitionStrategy strategy);
/// Parses "contiguous" / "degree". Throws std::invalid_argument.
[[nodiscard]] PartitionStrategy ParsePartitionStrategy(
    const std::string& name);

/// One bank's share of the row space, plus its communication stats.
struct ShardInfo {
  std::uint32_t bank = 0;
  graph::VertexId row_begin = 0;
  graph::VertexId row_end = 0;  ///< exclusive
  std::uint64_t owned_arcs = 0;  ///< non-zeros enumerated by this bank
  std::uint64_t cut_arcs = 0;    ///< owned arcs targeting a remote column
  std::uint64_t needed_cols = 0; ///< distinct columns this bank ANDs against
  std::uint64_t remote_cols = 0; ///< needed columns outside the owned range

  [[nodiscard]] std::uint64_t num_rows() const noexcept {
    return row_end - row_begin;
  }
  /// Fraction of this shard's arcs that cross the partition boundary.
  [[nodiscard]] double CutFraction() const noexcept {
    return owned_arcs == 0 ? 0.0
                           : static_cast<double>(cut_arcs) /
                                 static_cast<double>(owned_arcs);
  }
};

/// Cluster-level summary of one partition (the Table-style report the
/// CLI prints; see PrintPartitionTable).
struct PartitionStats {
  PartitionStrategy strategy = PartitionStrategy::kContiguous;
  std::uint32_t num_banks = 0;
  std::uint64_t total_arcs = 0;
  std::uint64_t total_cut_arcs = 0;
  std::uint64_t max_arcs = 0;          ///< heaviest shard
  std::uint64_t total_needed_cols = 0; ///< Σ per-bank needed columns
  std::uint64_t distinct_cols = 0;     ///< columns needed by >= 1 bank

  [[nodiscard]] double EdgeCutFraction() const noexcept {
    return total_arcs == 0 ? 0.0
                           : static_cast<double>(total_cut_arcs) /
                                 static_cast<double>(total_arcs);
  }
  [[nodiscard]] double MeanArcs() const noexcept {
    return num_banks == 0 ? 0.0
                          : static_cast<double>(total_arcs) /
                                static_cast<double>(num_banks);
  }
  /// Heaviest shard over the mean shard (1.0 = perfectly balanced).
  [[nodiscard]] double LoadImbalance() const noexcept {
    const double mean = MeanArcs();
    return mean == 0.0 ? 1.0 : static_cast<double>(max_arcs) / mean;
  }
  /// Average bank-local copies per needed column (>= 1; 1.0 = no
  /// column slice is duplicated across banks).
  [[nodiscard]] double ColReplicationFactor() const noexcept {
    return distinct_cols == 0
               ? 1.0
               : static_cast<double>(total_needed_cols) /
                     static_cast<double>(distinct_cols);
  }
};

/// A complete sharding: per-bank ranges + the aggregate stats.
struct GraphPartition {
  std::vector<ShardInfo> shards;
  PartitionStats stats;

  [[nodiscard]] std::uint32_t num_banks() const noexcept {
    return static_cast<std::uint32_t>(shards.size());
  }
};

/// Shards `csr` into `num_banks` contiguous row ranges covering
/// [0, csr.num_vertices). Every bank appears in the result (possibly
/// with an empty range when num_banks > vertices). Throws
/// std::invalid_argument when num_banks == 0.
[[nodiscard]] GraphPartition PartitionOrientedCsr(
    const graph::OrientedCsr& csr, std::uint32_t num_banks,
    PartitionStrategy strategy);

/// Shards an ALREADY-SLICED matrix into per-bank row ranges — the
/// partition step of the epoch-pinned serving path, where re-deriving
/// a CSR from the pinned COW matrix would cost exactly the layout work
/// the snapshot is there to avoid. owned_arcs comes from per-row set-
/// bit counts (same degree balance as PartitionOrientedCsr); the
/// communication fields (cut_arcs, needed/remote cols, distinct_cols)
/// are left 0 — the serving path never prints them, and computing them
/// would need the per-arc column walk this function exists to skip.
/// Throws std::invalid_argument when num_banks == 0.
[[nodiscard]] GraphPartition PartitionMatrixRows(
    const bit::SlicedMatrix& matrix, std::uint32_t num_banks,
    PartitionStrategy strategy);

/// Renders the per-shard table (rows, arcs, cut %, remote columns) and
/// the summary lines (edge-cut %, load imbalance, replication factor)
/// via util::TablePrinter — the `tcim_cli --banks` report block.
void PrintPartitionTable(std::ostream& os, const GraphPartition& partition);

}  // namespace tcim::runtime
