#include "runtime/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace tcim::runtime {

std::string ToString(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kDegreeBalanced:
      return "degree-balanced";
    case PartitionStrategy::k2dHubReplicated:
      return "2d-hub-replicated";
  }
  return "?";
}

PartitionStrategy ParsePartitionStrategy(const std::string& name) {
  if (name == "contiguous") return PartitionStrategy::kContiguous;
  if (name == "degree" || name == "degree-balanced") {
    return PartitionStrategy::kDegreeBalanced;
  }
  if (name == "2d" || name == "2d-hub" || name == "2d-hub-replicated") {
    return PartitionStrategy::k2dHubReplicated;
  }
  throw std::invalid_argument("unknown partition strategy: " + name);
}

namespace {

/// Range boundaries: boundaries[b]..boundaries[b+1] is bank b's rows.
std::vector<graph::VertexId> Boundaries(const graph::OrientedCsr& csr,
                                        std::uint32_t num_banks,
                                        PartitionStrategy strategy) {
  const std::uint64_t n = csr.num_vertices;
  std::vector<graph::VertexId> bounds(num_banks + 1);
  bounds[0] = 0;
  bounds[num_banks] = static_cast<graph::VertexId>(n);
  for (std::uint32_t b = 1; b < num_banks; ++b) {
    if (strategy == PartitionStrategy::kContiguous) {
      bounds[b] = static_cast<graph::VertexId>(n * b / num_banks);
    } else {
      // Degree-balanced: cut where the arc prefix sum crosses the
      // b-th equal share of the total arc count.
      const std::uint64_t target = csr.arc_count() * b / num_banks;
      const auto it = std::lower_bound(csr.offsets.begin(),
                                       csr.offsets.end(), target);
      bounds[b] = static_cast<graph::VertexId>(
          std::distance(csr.offsets.begin(), it));
    }
  }
  // Monotonicity guard: degree-balanced cuts can collide when a single
  // row holds more than one share of the arcs.
  for (std::uint32_t b = 1; b <= num_banks; ++b) {
    bounds[b] = std::max(bounds[b], bounds[b - 1]);
  }
  return bounds;
}

/// Cuts [0, n) into `parts` parts balanced on the weight prefix sums
/// (prefix has n+1 entries, prefix[0] == 0), with the same
/// lower_bound + monotonic-fix shape as the 1D Boundaries().
std::vector<graph::VertexId> BalancedBounds(
    const std::vector<std::uint64_t>& prefix, std::uint32_t parts) {
  const auto n = static_cast<std::uint32_t>(prefix.size() - 1);
  std::vector<graph::VertexId> bounds(parts + 1);
  bounds[0] = 0;
  bounds[parts] = n;
  const std::uint64_t total = prefix[n];
  for (std::uint32_t p = 1; p < parts; ++p) {
    const std::uint64_t target = total * p / parts;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    bounds[p] =
        static_cast<graph::VertexId>(std::distance(prefix.begin(), it));
  }
  for (std::uint32_t p = 1; p <= parts; ++p) {
    bounds[p] = std::max(bounds[p], bounds[p - 1]);
  }
  return bounds;
}

std::vector<std::uint64_t> PrefixOf(const std::vector<std::uint64_t>& w) {
  std::vector<std::uint64_t> prefix(w.size() + 1, 0);
  for (std::size_t v = 0; v < w.size(); ++v) prefix[v + 1] = prefix[v] + w[v];
  return prefix;
}

/// The k2dHubReplicated planner core, shared by the CSR and matrix
/// wrappers. `for_each_arc(fn)` must call fn(i, j) for every arc with
/// i ascending and, within a row, j strictly ascending (both sources
/// guarantee this) — the slice-transition counting below depends on
/// that order. Three arc passes: (A) degree + per-vector valid-slice
/// counts, (B) hub/tail AND-work weights, (C) tile accumulation.
template <typename ForEachArc>
GraphPartition Plan2dImpl(std::uint32_t n, const ForEachArc& for_each_arc,
                          std::uint32_t num_banks,
                          const Partition2dOptions& opt) {
  if (num_banks == 0) {
    throw std::invalid_argument("Partition2d: num_banks must be > 0");
  }
  if (opt.slice_bits == 0 || opt.slice_bits > 512) {
    throw std::invalid_argument("Partition2d: slice_bits must be in [1,512]");
  }
  const std::uint32_t sb = opt.slice_bits;
  const std::uint64_t bytes_per_slice = sb / 8 + 4;

  // Pass A: in-degrees and per-row/column valid-slice counts. Rows
  // count j/|S| transitions within each (sorted) row; columns count
  // i/|S| transitions per target, exploiting the ascending-i outer
  // order via one last-seen-slice slot per column.
  std::vector<std::uint32_t> in_deg(n, 0);
  std::vector<std::uint32_t> row_slices(n, 0);
  std::vector<std::uint32_t> col_slices(n, 0);
  {
    std::vector<std::uint32_t> last_col_slice(n, ~std::uint32_t{0});
    std::uint32_t cur_row = ~std::uint32_t{0};
    std::uint32_t prev_row_slice = ~std::uint32_t{0};
    for_each_arc([&](std::uint32_t i, std::uint32_t j) {
      ++in_deg[j];
      if (i != cur_row) {
        cur_row = i;
        prev_row_slice = ~std::uint32_t{0};
      }
      const std::uint32_t rs = j / sb;
      if (rs != prev_row_slice) {
        ++row_slices[i];
        prev_row_slice = rs;
      }
      const std::uint32_t cs = i / sb;
      if (last_col_slice[j] != cs) {
        ++col_slices[j];
        last_col_slice[j] = cs;
      }
    });
  }
  std::uint64_t total_arcs = 0;
  std::uint64_t total_row_slices = 0;
  std::uint64_t total_col_slices = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    total_arcs += in_deg[v];
    total_row_slices += row_slices[v];
    total_col_slices += col_slices[v];
  }
  const std::uint64_t store_bytes =
      (total_row_slices + total_col_slices) * bytes_per_slice;

  // Hub selection: columns by in-degree descending (id ascending as
  // tiebreak so the plan is deterministic).
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return in_deg[a] != in_deg[b] ? in_deg[a] > in_deg[b] : a < b;
            });
  std::vector<std::uint32_t> hubs;
  std::uint64_t hub_bytes = 0;  // one replica copy of the hub columns
  if (opt.hub_k != Partition2dOptions::kAutoHubs) {
    const auto k = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(opt.hub_k, n));
    hubs.assign(order.begin(), order.begin() + k);
    for (const std::uint32_t h : hubs) {
      hub_bytes += col_slices[h] * bytes_per_slice;
    }
  } else if (n > 0 && total_arcs > 0) {
    const double mean_deg =
        static_cast<double>(total_arcs) / static_cast<double>(n);
    const double budget =
        opt.replica_budget_fraction * static_cast<double>(store_bytes);
    const std::uint64_t extra_copies = num_banks > 1 ? num_banks - 1 : 0;
    for (const std::uint32_t j : order) {
      if (static_cast<double>(in_deg[j]) < opt.hub_degree_factor * mean_deg) {
        break;
      }
      const std::uint64_t cost = col_slices[j] * bytes_per_slice;
      if (static_cast<double>(extra_copies) *
              static_cast<double>(hub_bytes + cost) >
          budget) {
        break;
      }
      hubs.push_back(j);
      hub_bytes += cost;
    }
  }
  std::sort(hubs.begin(), hubs.end());
  std::vector<std::uint8_t> is_hub(n, 0);
  for (const std::uint32_t h : hubs) is_hub[h] = 1;

  // Pass B: AND-work weights. w(i, j) = min(row_slices[i],
  // col_slices[j]) approximates the valid-pair count of the arc (the
  // merge can match at most that many slices) in O(1) per arc — raw
  // arc counts balance arcs, not work, and hub rows' arcs each cost
  // far more valid pairs than tail arcs (the 1D plateau's second
  // cause).
  std::vector<std::uint64_t> hub_row_w(n, 0);
  std::vector<std::uint64_t> hub_row_arcs(n, 0);
  std::vector<std::uint64_t> tail_row_w(n, 0);
  std::vector<std::uint64_t> tail_col_w(n, 0);
  std::uint64_t hub_arcs = 0;
  for_each_arc([&](std::uint32_t i, std::uint32_t j) {
    const std::uint64_t w = std::min(row_slices[i], col_slices[j]);
    if (is_hub[j] != 0) {
      hub_row_w[i] += w;
      ++hub_row_arcs[i];
      ++hub_arcs;
    } else {
      tail_row_w[i] += w;
      tail_col_w[j] += w;
    }
  });

  // Grid shape: c = ceil(sqrt(banks)) column stripes (c <= banks, so
  // stripe-major placement can give every stripe >= 1 bank), r sized
  // for ~tiles_per_bank tiles per bank.
  std::uint32_t c = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(num_banks))));
  c = std::max(1u, std::min({c, num_banks, std::max(1u, n)}));
  const std::uint32_t tiles_per_bank = std::max(1u, opt.tiles_per_bank);
  std::uint32_t r = static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(tiles_per_bank) * num_banks + c - 1) / c);
  r = std::max(1u, std::min(r, std::max(1u, n)));

  const std::vector<graph::VertexId> row_bounds =
      BalancedBounds(PrefixOf(tail_row_w), r);
  const std::vector<graph::VertexId> col_bounds =
      BalancedBounds(PrefixOf(tail_col_w), c);
  const std::vector<graph::VertexId> hub_row_bounds =
      BalancedBounds(PrefixOf(hub_row_w), num_banks);

  // Pass C: per-tile arc and weight accumulation.
  std::vector<std::uint32_t> row_stripe_of(n, 0);
  std::vector<std::uint32_t> col_stripe_of(n, 0);
  for (std::uint32_t s = 0; s < r; ++s) {
    for (graph::VertexId v = row_bounds[s]; v < row_bounds[s + 1]; ++v) {
      row_stripe_of[v] = s;
    }
  }
  for (std::uint32_t s = 0; s < c; ++s) {
    for (graph::VertexId v = col_bounds[s]; v < col_bounds[s + 1]; ++v) {
      col_stripe_of[v] = s;
    }
  }
  struct TileAcc {
    std::uint64_t arcs = 0;
    std::uint64_t weight = 0;
  };
  std::vector<TileAcc> acc(static_cast<std::size_t>(r) * c);
  for_each_arc([&](std::uint32_t i, std::uint32_t j) {
    if (is_hub[j] != 0) return;
    TileAcc& tile =
        acc[static_cast<std::size_t>(row_stripe_of[i]) * c + col_stripe_of[j]];
    ++tile.arcs;
    tile.weight += std::min(row_slices[i], col_slices[j]);
  });

  // Per-bank hub-lane loads (the LPT seed) and per-stripe weights.
  std::vector<std::uint64_t> lane_w(num_banks, 0);
  std::vector<std::uint64_t> lane_arcs(num_banks, 0);
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    for (graph::VertexId v = hub_row_bounds[b]; v < hub_row_bounds[b + 1];
         ++v) {
      lane_w[b] += hub_row_w[v];
      lane_arcs[b] += hub_row_arcs[v];
    }
  }
  std::vector<std::uint64_t> stripe_w(c, 0);
  std::uint64_t tail_weight = 0;
  for (std::uint32_t rs = 0; rs < r; ++rs) {
    for (std::uint32_t cs = 0; cs < c; ++cs) {
      stripe_w[cs] += acc[static_cast<std::size_t>(rs) * c + cs].weight;
    }
  }
  for (const std::uint64_t w : stripe_w) tail_weight += w;

  // Stripe-major bank allocation: every stripe starts with one bank,
  // then the remaining banks water-fill onto the stripe with the
  // heaviest per-bank load. Consequence: each bank serves exactly ONE
  // column stripe, so its distinct-column working set shrinks to that
  // stripe's tail columns plus the (locally replicated) hubs.
  std::vector<std::uint32_t> stripe_banks(c, 1);
  if (tail_weight == 0) {
    for (std::uint32_t s = 0; s < c; ++s) {
      stripe_banks[s] = num_banks / c + (s < num_banks % c ? 1 : 0);
    }
  } else {
    for (std::uint32_t extra = c; extra < num_banks; ++extra) {
      std::uint32_t best = 0;
      double best_load = -1.0;
      for (std::uint32_t s = 0; s < c; ++s) {
        const double load =
            static_cast<double>(stripe_w[s]) / stripe_banks[s];
        if (load > best_load) {
          best_load = load;
          best = s;
        }
      }
      ++stripe_banks[best];
    }
  }
  std::vector<std::uint32_t> stripe_bank_begin(c + 1, 0);
  for (std::uint32_t s = 0; s < c; ++s) {
    stripe_bank_begin[s + 1] = stripe_bank_begin[s] + stripe_banks[s];
  }
  std::vector<std::uint32_t> stripe_of_bank(num_banks, 0);
  for (std::uint32_t s = 0; s < c; ++s) {
    for (std::uint32_t b = stripe_bank_begin[s]; b < stripe_bank_begin[s + 1];
         ++b) {
      stripe_of_bank[b] = s;
    }
  }

  // LPT within each stripe group, seeded with the hub-lane loads:
  // heaviest tile first onto the currently lightest bank of the group.
  std::vector<std::uint64_t> bank_w = lane_w;
  std::vector<std::uint32_t> tile_bank(acc.size(), 0);
  for (std::uint32_t s = 0; s < c; ++s) {
    std::vector<std::uint32_t> stripe_tiles;
    stripe_tiles.reserve(r);
    for (std::uint32_t rs = 0; rs < r; ++rs) {
      stripe_tiles.push_back(rs * c + s);
    }
    std::sort(stripe_tiles.begin(), stripe_tiles.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return acc[a].weight != acc[b].weight
                           ? acc[a].weight > acc[b].weight
                           : a < b;
              });
    for (const std::uint32_t t : stripe_tiles) {
      std::uint32_t lightest = stripe_bank_begin[s];
      for (std::uint32_t b = stripe_bank_begin[s] + 1;
           b < stripe_bank_begin[s + 1]; ++b) {
        if (bank_w[b] < bank_w[lightest]) lightest = b;
      }
      tile_bank[t] = lightest;
      bank_w[lightest] += acc[t].weight;
    }
  }

  // Assemble the plan.
  auto plan = std::make_shared<TilePlan2d>();
  plan->num_banks = num_banks;
  plan->num_vertices = n;
  plan->row_stripes = r;
  plan->col_stripes = c;
  plan->row_bounds = row_bounds;
  plan->col_bounds = col_bounds;
  plan->hubs = hubs;
  plan->is_hub = std::move(is_hub);
  plan->hub_row_bounds = hub_row_bounds;
  plan->hub_arcs = hub_arcs;
  plan->tiles.resize(acc.size());
  plan->bank_tiles.resize(num_banks);
  for (std::uint32_t rs = 0; rs < r; ++rs) {
    for (std::uint32_t cs = 0; cs < c; ++cs) {
      const std::uint32_t t = rs * c + cs;
      TileInfo& tile = plan->tiles[t];
      tile.row_stripe = rs;
      tile.col_stripe = cs;
      tile.row_begin = row_bounds[rs];
      tile.row_end = row_bounds[rs + 1];
      tile.col_begin = col_bounds[cs];
      tile.col_end = col_bounds[cs + 1];
      tile.arcs = acc[t].arcs;
      tile.weight = acc[t].weight;
      tile.bank = tile_bank[t];
      plan->bank_tiles[tile.bank].push_back(t);
    }
  }
  std::uint64_t total_weight = 0;
  std::uint64_t max_bank_weight = 0;
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    total_weight += bank_w[b];
    max_bank_weight = std::max(max_bank_weight, bank_w[b]);
  }
  plan->total_weight = total_weight;
  plan->max_bank_weight = max_bank_weight;

  // Shards + stats. needed_cols counts what the bank actually holds:
  // every hub (its private replica) plus the distinct tail columns of
  // its stripe; those tail columns are "remote" (shared) when the
  // stripe group has more than one bank.
  std::vector<std::uint64_t> stripe_tail_cols(c, 0);
  for (std::uint32_t j = 0; j < n; ++j) {
    if (in_deg[j] > 0 && plan->is_hub[j] == 0) {
      ++stripe_tail_cols[col_stripe_of[j]];
    }
  }
  GraphPartition partition;
  partition.shards.resize(num_banks);
  partition.stats.strategy = PartitionStrategy::k2dHubReplicated;
  partition.stats.num_banks = num_banks;
  partition.stats.total_arcs = total_arcs;
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    ShardInfo& shard = partition.shards[b];
    shard.bank = b;
    shard.row_begin = hub_row_bounds[b];
    shard.row_end = hub_row_bounds[b + 1];
    shard.owned_arcs = lane_arcs[b];
    std::uint64_t tile_arcs = 0;
    for (const std::uint32_t t : plan->bank_tiles[b]) {
      tile_arcs += plan->tiles[t].arcs;
    }
    shard.owned_arcs += tile_arcs;
    const std::uint32_t s = stripe_of_bank[b];
    const bool shared_stripe = stripe_banks[s] > 1;
    shard.cut_arcs = shared_stripe ? tile_arcs : 0;
    shard.needed_cols = hubs.size() + stripe_tail_cols[s];
    shard.remote_cols = (num_banks > 1 ? hubs.size() : 0) +
                        (shared_stripe ? stripe_tail_cols[s] : 0);
    partition.stats.total_cut_arcs += shard.cut_arcs;
    partition.stats.total_needed_cols += shard.needed_cols;
    partition.stats.max_arcs =
        std::max(partition.stats.max_arcs, shard.owned_arcs);
  }
  for (std::uint32_t j = 0; j < n; ++j) {
    if (in_deg[j] > 0) ++partition.stats.distinct_cols;
  }
  partition.stats.row_stripes = r;
  partition.stats.col_stripes = c;
  partition.stats.hub_count = hubs.size();
  partition.stats.hub_arcs = hub_arcs;
  partition.stats.replica_bytes =
      num_banks > 1 ? (num_banks - 1) * hub_bytes : 0;
  partition.stats.store_bytes = store_bytes;
  partition.stats.tile_imbalance = plan->TileImbalance();
  partition.plan2d = std::move(plan);
  return partition;
}

}  // namespace

GraphPartition Partition2dCsr(const graph::OrientedCsr& csr,
                              std::uint32_t num_banks,
                              const Partition2dOptions& options) {
  return Plan2dImpl(
      csr.num_vertices,
      [&](auto&& fn) {
        for (graph::VertexId i = 0; i < csr.num_vertices; ++i) {
          for (std::uint64_t a = csr.offsets[i]; a < csr.offsets[i + 1]; ++a) {
            fn(i, csr.neighbors[a]);
          }
        }
      },
      num_banks, options);
}

GraphPartition Partition2dMatrix(const bit::SlicedMatrix& matrix,
                                 std::uint32_t num_banks,
                                 const Partition2dOptions& options) {
  Partition2dOptions opt = options;
  opt.slice_bits = matrix.slice_bits();
  const std::uint32_t n = matrix.num_vertices();
  return Plan2dImpl(
      n,
      [&](auto&& fn) {
        for (std::uint32_t i = 0; i < n; ++i) {
          matrix.rows().ForEachSetBit(i, [&](std::uint64_t j) {
            fn(i, static_cast<std::uint32_t>(j));
          });
        }
      },
      num_banks, opt);
}

std::uint64_t CountBankShard2d(const bit::SlicedMatrix& matrix,
                               const TilePlan2d& plan, std::uint32_t bank,
                               const bit::SlicedStore* replica,
                               bit::PopcountKind kind,
                               bit::PairPathCounters* counters) {
  if (matrix.num_vertices() != plan.num_vertices) {
    throw std::invalid_argument(
        "CountBankShard2d: matrix shape disagrees with the plan");
  }
  if (bank >= plan.num_banks) {
    throw std::invalid_argument("CountBankShard2d: bank out of range");
  }
  const std::uint8_t* mask =
      plan.is_hub.empty() ? nullptr : plan.is_hub.data();
  std::uint64_t raw = 0;
  if (!plan.hubs.empty()) {
    raw += matrix.AndPopcountRect(plan.hub_row_bounds[bank],
                                  plan.hub_row_bounds[bank + 1], 0,
                                  plan.num_vertices, mask,
                                  /*mask_value=*/true, replica, kind,
                                  counters);
  }
  for (const std::uint32_t t : plan.bank_tiles[bank]) {
    const TileInfo& tile = plan.tiles[t];
    raw += matrix.AndPopcountRect(tile.row_begin, tile.row_end, tile.col_begin,
                                  tile.col_end, mask, /*mask_value=*/false,
                                  /*cols_override=*/nullptr, kind, counters);
  }
  return raw;
}

GraphPartition PartitionOrientedCsr(const graph::OrientedCsr& csr,
                                    std::uint32_t num_banks,
                                    PartitionStrategy strategy) {
  if (num_banks == 0) {
    throw std::invalid_argument("PartitionOrientedCsr: num_banks must be > 0");
  }
  if (strategy == PartitionStrategy::k2dHubReplicated) {
    return Partition2dCsr(csr, num_banks, Partition2dOptions{});
  }
  const std::vector<graph::VertexId> bounds =
      Boundaries(csr, num_banks, strategy);

  GraphPartition partition;
  partition.shards.resize(num_banks);
  partition.stats.strategy = strategy;
  partition.stats.num_banks = num_banks;
  partition.stats.total_arcs = csr.arc_count();

  // seen_by[j] remembers the last marker that touched column j: bank id
  // + 1 for per-shard dedup, then one global pass for distinct_cols.
  std::vector<std::uint32_t> seen_by(csr.num_vertices, 0);
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    ShardInfo& shard = partition.shards[b];
    shard.bank = b;
    shard.row_begin = bounds[b];
    shard.row_end = bounds[b + 1];
    shard.owned_arcs =
        csr.offsets[shard.row_end] - csr.offsets[shard.row_begin];
    for (std::uint64_t a = csr.offsets[shard.row_begin];
         a < csr.offsets[shard.row_end]; ++a) {
      const graph::VertexId j = csr.neighbors[a];
      const bool remote = j < shard.row_begin || j >= shard.row_end;
      if (remote) ++shard.cut_arcs;
      if (seen_by[j] != b + 1) {
        seen_by[j] = b + 1;
        ++shard.needed_cols;
        if (remote) ++shard.remote_cols;
      }
    }
    partition.stats.total_cut_arcs += shard.cut_arcs;
    partition.stats.total_needed_cols += shard.needed_cols;
    partition.stats.max_arcs =
        std::max(partition.stats.max_arcs, shard.owned_arcs);
  }
  // Distinct columns needed by any bank: a column was needed iff some
  // arc targets it, and each bank marked it above.
  for (const std::uint32_t marker : seen_by) {
    if (marker != 0) ++partition.stats.distinct_cols;
  }
  return partition;
}

GraphPartition PartitionMatrixRows(const bit::SlicedMatrix& matrix,
                                   std::uint32_t num_banks,
                                   PartitionStrategy strategy) {
  if (num_banks == 0) {
    throw std::invalid_argument("PartitionMatrixRows: num_banks must be > 0");
  }
  if (strategy == PartitionStrategy::k2dHubReplicated) {
    return Partition2dMatrix(matrix, num_banks, Partition2dOptions{});
  }
  const std::uint32_t n = matrix.num_vertices();
  const bit::SlicedStore& rows = matrix.rows();

  // Per-row arc (set-bit) prefix sums give the same degree-balanced
  // boundaries PartitionOrientedCsr derives from CSR offsets.
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const bit::SlicedStore::VectorSlices vs = rows.Slices(v);
    prefix[v + 1] =
        prefix[v] +
        bit::PopcountWords({vs.words, vs.indices.size() *
                                          rows.words_per_slice()},
                           bit::PopcountKind::kBuiltin);
  }
  const std::uint64_t total_arcs = prefix[n];

  std::vector<graph::VertexId> bounds(num_banks + 1);
  bounds[0] = 0;
  bounds[num_banks] = n;
  for (std::uint32_t b = 1; b < num_banks; ++b) {
    if (strategy == PartitionStrategy::kContiguous) {
      bounds[b] = static_cast<graph::VertexId>(
          static_cast<std::uint64_t>(n) * b / num_banks);
    } else {
      const std::uint64_t target = total_arcs * b / num_banks;
      const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
      bounds[b] =
          static_cast<graph::VertexId>(std::distance(prefix.begin(), it));
    }
  }
  for (std::uint32_t b = 1; b <= num_banks; ++b) {
    bounds[b] = std::max(bounds[b], bounds[b - 1]);
  }

  GraphPartition partition;
  partition.shards.resize(num_banks);
  partition.stats.strategy = strategy;
  partition.stats.num_banks = num_banks;
  partition.stats.total_arcs = total_arcs;
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    ShardInfo& shard = partition.shards[b];
    shard.bank = b;
    shard.row_begin = bounds[b];
    shard.row_end = bounds[b + 1];
    shard.owned_arcs = prefix[shard.row_end] - prefix[shard.row_begin];
    partition.stats.max_arcs =
        std::max(partition.stats.max_arcs, shard.owned_arcs);
  }
  return partition;
}

void PrintPartitionTable(std::ostream& os, const GraphPartition& partition) {
  using util::TablePrinter;
  const bool is_2d =
      partition.stats.strategy == PartitionStrategy::k2dHubReplicated &&
      partition.plan2d != nullptr;
  if (is_2d) {
    const TilePlan2d& plan = *partition.plan2d;
    TablePrinter t({"Bank", "Lane rows", "Tiles", "Arcs", "Share", "Cut %",
                    "Resident cols"});
    for (const ShardInfo& shard : partition.shards) {
      const double share =
          partition.stats.total_arcs == 0
              ? 0.0
              : static_cast<double>(shard.owned_arcs) /
                    static_cast<double>(partition.stats.total_arcs);
      t.AddRow({std::to_string(shard.bank),
                TablePrinter::Compact(shard.num_rows()),
                std::to_string(plan.bank_tiles[shard.bank].size()),
                TablePrinter::Compact(shard.owned_arcs),
                TablePrinter::Percent(share, 1),
                TablePrinter::Percent(shard.CutFraction(), 1),
                TablePrinter::Compact(shard.needed_cols)});
    }
    t.Print(os);
    const double hub_share =
        partition.stats.total_arcs == 0
            ? 0.0
            : static_cast<double>(partition.stats.hub_arcs) /
                  static_cast<double>(partition.stats.total_arcs);
    os << "  strategy " << ToString(partition.stats.strategy) << ", grid "
       << partition.stats.row_stripes << "x" << partition.stats.col_stripes
       << ", hubs " << partition.stats.hub_count << " ("
       << TablePrinter::Percent(hub_share, 1) << " of arcs), replica overhead "
       << TablePrinter::Percent(partition.stats.ReplicaOverhead(), 1)
       << "\n  residual cut "
       << TablePrinter::Percent(partition.stats.EdgeCutFraction(), 1)
       << ", tile imbalance "
       << TablePrinter::Ratio(partition.stats.tile_imbalance, 2)
       << ", column replication "
       << TablePrinter::Ratio(partition.stats.ColReplicationFactor(), 2)
       << "\n";
    return;
  }
  TablePrinter t({"Bank", "Rows", "Arcs", "Share", "Cut %", "Remote cols"});
  for (const ShardInfo& shard : partition.shards) {
    const double share =
        partition.stats.total_arcs == 0
            ? 0.0
            : static_cast<double>(shard.owned_arcs) /
                  static_cast<double>(partition.stats.total_arcs);
    t.AddRow({std::to_string(shard.bank),
              TablePrinter::Compact(shard.num_rows()),
              TablePrinter::Compact(shard.owned_arcs),
              TablePrinter::Percent(share, 1),
              TablePrinter::Percent(shard.CutFraction(), 1),
              TablePrinter::Compact(shard.remote_cols)});
  }
  t.Print(os);
  os << "  strategy " << ToString(partition.stats.strategy) << ", edge cut "
     << TablePrinter::Percent(partition.stats.EdgeCutFraction(), 1)
     << ", load imbalance "
     << TablePrinter::Ratio(partition.stats.LoadImbalance(), 2)
     << ", column replication "
     << TablePrinter::Ratio(partition.stats.ColReplicationFactor(), 2)
     << "\n";
}

}  // namespace tcim::runtime
