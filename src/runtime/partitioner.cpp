#include "runtime/partitioner.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace tcim::runtime {

std::string ToString(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kContiguous:
      return "contiguous";
    case PartitionStrategy::kDegreeBalanced:
      return "degree-balanced";
  }
  return "?";
}

PartitionStrategy ParsePartitionStrategy(const std::string& name) {
  if (name == "contiguous") return PartitionStrategy::kContiguous;
  if (name == "degree" || name == "degree-balanced") {
    return PartitionStrategy::kDegreeBalanced;
  }
  throw std::invalid_argument("unknown partition strategy: " + name);
}

namespace {

/// Range boundaries: boundaries[b]..boundaries[b+1] is bank b's rows.
std::vector<graph::VertexId> Boundaries(const graph::OrientedCsr& csr,
                                        std::uint32_t num_banks,
                                        PartitionStrategy strategy) {
  const std::uint64_t n = csr.num_vertices;
  std::vector<graph::VertexId> bounds(num_banks + 1);
  bounds[0] = 0;
  bounds[num_banks] = static_cast<graph::VertexId>(n);
  for (std::uint32_t b = 1; b < num_banks; ++b) {
    if (strategy == PartitionStrategy::kContiguous) {
      bounds[b] = static_cast<graph::VertexId>(n * b / num_banks);
    } else {
      // Degree-balanced: cut where the arc prefix sum crosses the
      // b-th equal share of the total arc count.
      const std::uint64_t target = csr.arc_count() * b / num_banks;
      const auto it = std::lower_bound(csr.offsets.begin(),
                                       csr.offsets.end(), target);
      bounds[b] = static_cast<graph::VertexId>(
          std::distance(csr.offsets.begin(), it));
    }
  }
  // Monotonicity guard: degree-balanced cuts can collide when a single
  // row holds more than one share of the arcs.
  for (std::uint32_t b = 1; b <= num_banks; ++b) {
    bounds[b] = std::max(bounds[b], bounds[b - 1]);
  }
  return bounds;
}

}  // namespace

GraphPartition PartitionOrientedCsr(const graph::OrientedCsr& csr,
                                    std::uint32_t num_banks,
                                    PartitionStrategy strategy) {
  if (num_banks == 0) {
    throw std::invalid_argument("PartitionOrientedCsr: num_banks must be > 0");
  }
  const std::vector<graph::VertexId> bounds =
      Boundaries(csr, num_banks, strategy);

  GraphPartition partition;
  partition.shards.resize(num_banks);
  partition.stats.strategy = strategy;
  partition.stats.num_banks = num_banks;
  partition.stats.total_arcs = csr.arc_count();

  // seen_by[j] remembers the last marker that touched column j: bank id
  // + 1 for per-shard dedup, then one global pass for distinct_cols.
  std::vector<std::uint32_t> seen_by(csr.num_vertices, 0);
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    ShardInfo& shard = partition.shards[b];
    shard.bank = b;
    shard.row_begin = bounds[b];
    shard.row_end = bounds[b + 1];
    shard.owned_arcs =
        csr.offsets[shard.row_end] - csr.offsets[shard.row_begin];
    for (std::uint64_t a = csr.offsets[shard.row_begin];
         a < csr.offsets[shard.row_end]; ++a) {
      const graph::VertexId j = csr.neighbors[a];
      const bool remote = j < shard.row_begin || j >= shard.row_end;
      if (remote) ++shard.cut_arcs;
      if (seen_by[j] != b + 1) {
        seen_by[j] = b + 1;
        ++shard.needed_cols;
        if (remote) ++shard.remote_cols;
      }
    }
    partition.stats.total_cut_arcs += shard.cut_arcs;
    partition.stats.total_needed_cols += shard.needed_cols;
    partition.stats.max_arcs =
        std::max(partition.stats.max_arcs, shard.owned_arcs);
  }
  // Distinct columns needed by any bank: a column was needed iff some
  // arc targets it, and each bank marked it above.
  for (const std::uint32_t marker : seen_by) {
    if (marker != 0) ++partition.stats.distinct_cols;
  }
  return partition;
}

GraphPartition PartitionMatrixRows(const bit::SlicedMatrix& matrix,
                                   std::uint32_t num_banks,
                                   PartitionStrategy strategy) {
  if (num_banks == 0) {
    throw std::invalid_argument("PartitionMatrixRows: num_banks must be > 0");
  }
  const std::uint32_t n = matrix.num_vertices();
  const bit::SlicedStore& rows = matrix.rows();

  // Per-row arc (set-bit) prefix sums give the same degree-balanced
  // boundaries PartitionOrientedCsr derives from CSR offsets.
  std::vector<std::uint64_t> prefix(static_cast<std::size_t>(n) + 1, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    const bit::SlicedStore::VectorSlices vs = rows.Slices(v);
    prefix[v + 1] =
        prefix[v] +
        bit::PopcountWords({vs.words, vs.indices.size() *
                                          rows.words_per_slice()},
                           bit::PopcountKind::kBuiltin);
  }
  const std::uint64_t total_arcs = prefix[n];

  std::vector<graph::VertexId> bounds(num_banks + 1);
  bounds[0] = 0;
  bounds[num_banks] = n;
  for (std::uint32_t b = 1; b < num_banks; ++b) {
    if (strategy == PartitionStrategy::kContiguous) {
      bounds[b] = static_cast<graph::VertexId>(
          static_cast<std::uint64_t>(n) * b / num_banks);
    } else {
      const std::uint64_t target = total_arcs * b / num_banks;
      const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
      bounds[b] =
          static_cast<graph::VertexId>(std::distance(prefix.begin(), it));
    }
  }
  for (std::uint32_t b = 1; b <= num_banks; ++b) {
    bounds[b] = std::max(bounds[b], bounds[b - 1]);
  }

  GraphPartition partition;
  partition.shards.resize(num_banks);
  partition.stats.strategy = strategy;
  partition.stats.num_banks = num_banks;
  partition.stats.total_arcs = total_arcs;
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    ShardInfo& shard = partition.shards[b];
    shard.bank = b;
    shard.row_begin = bounds[b];
    shard.row_end = bounds[b + 1];
    shard.owned_arcs = prefix[shard.row_end] - prefix[shard.row_begin];
    partition.stats.max_arcs =
        std::max(partition.stats.max_arcs, shard.owned_arcs);
  }
  return partition;
}

void PrintPartitionTable(std::ostream& os, const GraphPartition& partition) {
  using util::TablePrinter;
  TablePrinter t({"Bank", "Rows", "Arcs", "Share", "Cut %", "Remote cols"});
  for (const ShardInfo& shard : partition.shards) {
    const double share =
        partition.stats.total_arcs == 0
            ? 0.0
            : static_cast<double>(shard.owned_arcs) /
                  static_cast<double>(partition.stats.total_arcs);
    t.AddRow({std::to_string(shard.bank),
              TablePrinter::Compact(shard.num_rows()),
              TablePrinter::Compact(shard.owned_arcs),
              TablePrinter::Percent(share, 1),
              TablePrinter::Percent(shard.CutFraction(), 1),
              TablePrinter::Compact(shard.remote_cols)});
  }
  t.Print(os);
  os << "  strategy " << ToString(partition.stats.strategy) << ", edge cut "
     << TablePrinter::Percent(partition.stats.EdgeCutFraction(), 1)
     << ", load imbalance "
     << TablePrinter::Ratio(partition.stats.LoadImbalance(), 2)
     << ", column replication "
     << TablePrinter::Ratio(partition.stats.ColReplicationFactor(), 2)
     << "\n";
}

}  // namespace tcim::runtime
