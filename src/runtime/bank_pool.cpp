#include "runtime/bank_pool.h"

#include <algorithm>
#include <exception>
#include <span>
#include <stdexcept>
#include <utility>

#include "core/bitwise_tc.h"
#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/rng.h"
#include "util/timer.h"

namespace tcim::runtime {

std::uint64_t DeriveBankSeed(std::uint64_t base, std::uint32_t bank) noexcept {
  // Mix the bank id through SplitMix64 so neighbouring banks land far
  // apart in seed space; bank 0 keeps the base seed, preserving the
  // single-bank ablation numbers verbatim.
  if (bank == 0) return base;
  return util::SplitMix64(base ^ util::SplitMix64(bank));
}

// --- WorkerPool ------------------------------------------------------------

WorkerPool::WorkerPool(std::uint32_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("WorkerPool: need at least one thread");
  }
  threads_.reserve(num_threads);
  try {
    for (std::uint32_t t = 0; t < num_threads; ++t) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  } catch (...) {
    // A failed spawn (EAGAIN) must not leave live workers blocked on
    // members about to be destroyed, nor joinable threads for
    // ~vector<thread> to terminate on.
    {
      util::MutexLock lock(&mu_);
      stopping_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& t : threads_) t.join();
    throw;
  }
}

WorkerPool::~WorkerPool() {
  {
    util::MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Post(std::function<void()> task) {
  {
    util::MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(&mu_);
      while (!stopping_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

// --- BankPool --------------------------------------------------------------

namespace {

/// Translates bank `bank`'s share of the tile plan into the arch
/// layer's execution plan (hub lane bounds + its tiles' rectangles).
arch::BankExecPlan MakeBankExecPlan(const TilePlan2d& plan,
                                    std::uint32_t bank) {
  arch::BankExecPlan exec;
  exec.hub_row_begin = plan.hub_row_bounds[bank];
  exec.hub_row_end = plan.hub_row_bounds[bank + 1];
  exec.hub_cols = plan.hubs;
  exec.is_hub = plan.is_hub.empty() ? nullptr : plan.is_hub.data();
  exec.tiles.reserve(plan.bank_tiles[bank].size());
  for (const std::uint32_t t : plan.bank_tiles[bank]) {
    const TileInfo& tile = plan.tiles[t];
    exec.tiles.push_back(arch::BankExecPlan::Tile{
        tile.row_begin, tile.row_end, tile.col_begin, tile.col_end});
  }
  return exec;
}

/// One hub replica store per bank: a single COW extract of the hub
/// columns, copied per bank (slab shared_ptr bumps, not data copies).
std::vector<bit::SlicedStore> MakeReplicas(
    const bit::SlicedStore& cols, const std::vector<std::uint32_t>& hubs,
    std::uint32_t num_banks) {
  std::vector<bit::SlicedStore> replicas;
  if (hubs.empty()) return replicas;
  const bit::SlicedStore hub_store =
      cols.ExtractVectors(std::span<const std::uint32_t>(hubs));
  replicas.reserve(num_banks);
  for (std::uint32_t b = 0; b < num_banks; ++b) {
    replicas.push_back(hub_store);
  }
  return replicas;
}

void Record2dMetrics(const PartitionStats& stats) {
  BankPoolMetrics& metrics = BankPoolMetrics::Get();
  metrics.replica_bytes.Set(static_cast<double>(stats.replica_bytes));
  metrics.tile_imbalance.Set(stats.tile_imbalance);
}

/// Sums the per-shard adaptive-policy routing counters (each shard
/// writes its own slot — RunShards runs them concurrently) into the
/// registry once per host-count fan-out.
void RecordPairPathMetrics(std::span<const bit::PairPathCounters> per_bank) {
  bit::PairPathCounters total;
  for (const bit::PairPathCounters& c : per_bank) total += c;
  if (total.TotalPairs() == 0) return;
  BankPoolMetrics& metrics = BankPoolMetrics::Get();
  metrics.pairs_batched.Add(total.batched_pairs);
  metrics.pairs_zero_copy.Add(total.zero_copy_pairs);
  metrics.pairs_per_pair.Add(total.per_pair_pairs);
}

std::uint32_t ThreadCount(const BankPoolConfig& config) {
  if (config.num_banks == 0 || config.num_banks > kMaxBanks) {
    throw std::invalid_argument("BankPool: num_banks must be in [1, " +
                                std::to_string(kMaxBanks) + "]");
  }
  if (config.num_threads > kMaxBanks) {
    throw std::invalid_argument("BankPool: num_threads must be <= " +
                                std::to_string(kMaxBanks));
  }
  if (config.num_threads != 0) return config.num_threads;
  // Default: one thread per bank, capped at the hardware concurrency.
  // Each in-flight shard instantiates a full configured-capacity
  // functional array + cache bookkeeping, so the cap also bounds peak
  // simulation memory at O(threads x array capacity).
  const std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::min(config.num_banks, hw);
}

}  // namespace

BankPool::BankPool(BankPoolConfig config)
    : config_(std::move(config)), workers_(ThreadCount(config_)) {
  banks_.reserve(config_.num_banks);
  bank_busy_.reserve(config_.num_banks);
  for (std::uint32_t b = 0; b < config_.num_banks; ++b) {
    core::TcimConfig bank_config = config_.accelerator;
    bank_config.controller.rng_seed =
        DeriveBankSeed(config_.accelerator.controller.rng_seed, b);
    banks_.push_back(std::make_unique<core::TcimAccelerator>(bank_config));
    bank_busy_.push_back(&BankPoolMetrics::BankBusyMicros(b));
  }
}

void BankPool::RunShards(
    const GraphPartition& partition,
    const std::function<void(std::uint32_t, const ShardInfo&)>& run_shard)
    const {
  // One completion latch per call so concurrent Count()/HostCount()
  // invocations can interleave on the same worker pool. Local state, so
  // the lock discipline is scope-visible rather than TCIM_GUARDED_BY:
  // `remaining`/`first_error` are only touched under `mu`.
  util::Mutex mu;
  util::CondVar done_cv;
  std::uint32_t remaining = num_banks();
  std::exception_ptr first_error;
  // Per-shard wall times, slot-per-bank so the workers write without
  // contending; folded into the registry after the latch.
  std::vector<double> shard_seconds(num_banks(), 0.0);

  const auto wait_for_shards = [&] {
    util::MutexLock lock(&mu);
    while (remaining != 0) done_cv.Wait(mu);
  };
  std::uint32_t posted = 0;
  try {
    for (std::uint32_t b = 0; b < num_banks(); ++b) {
      const ShardInfo& shard = partition.shards[b];
      workers_.Post([&, b, shard] {
        std::exception_ptr error;
        {
          std::string span_args;
          if (obs::TraceEnabled()) {
            span_args = "\"bank\":" + std::to_string(b) + ",\"rows\":[" +
                        std::to_string(shard.row_begin) + "," +
                        std::to_string(shard.row_end) + "]";
          }
          obs::TraceSpan span("shard", "bank", std::move(span_args));
          util::Timer clock;
          try {
            run_shard(b, shard);
          } catch (...) {
            error = std::current_exception();
          }
          shard_seconds[b] = clock.ElapsedSeconds();
        }
        util::MutexLock lock(&mu);
        if (error && !first_error) first_error = error;
        if (--remaining == 0) done_cv.NotifyAll();
      });
      ++posted;
    }
  } catch (...) {
    // Post() failed mid-loop: already-posted tasks reference this
    // frame's locals, so drain them before unwinding.
    {
      util::MutexLock lock(&mu);
      remaining -= num_banks() - posted;
    }
    wait_for_shards();
    throw;
  }
  wait_for_shards();

  // Fold the run into runtime.bank.*: per-bank busy time, the shard
  // latency histogram, and the load-imbalance gauge (max/mean shard
  // time of THIS fan-out — the hub-bottleneck signal of ROADMAP #1).
  BankPoolMetrics& metrics = BankPoolMetrics::Get();
  metrics.shard_runs.Increment();
  double sum = 0.0;
  double max_shard = 0.0;
  for (std::uint32_t b = 0; b < num_banks(); ++b) {
    const double s = shard_seconds[b];
    metrics.shard_seconds.Observe(s);
    bank_busy_[b]->Add(static_cast<std::uint64_t>(s * 1e6));
    sum += s;
    max_shard = std::max(max_shard, s);
  }
  metrics.bank_busy_micros.Add(static_cast<std::uint64_t>(sum * 1e6));
  if (sum > 0.0) {
    metrics.shard_imbalance.Set(max_shard * num_banks() / sum);
  }
  if (first_error) std::rethrow_exception(first_error);
}

Partition2dOptions BankPool::Options2d() const noexcept {
  Partition2dOptions options = config_.partition2d;
  options.slice_bits = banks_.front()->config().slice_bits;
  return options;
}

BankPool::PreparedRun BankPool::Prepare(const graph::Graph& g) const {
  const graph::OrientedCsr csr =
      graph::Orient(g, config_.accelerator.orientation);
  const std::uint32_t slice_bits = banks_.front()->config().slice_bits;
  bit::SlicedMatrix matrix = bit::SlicedMatrix::FromCsr(
      csr.num_vertices, csr.offsets, csr.neighbors, slice_bits);
  GraphPartition partition;
  if (config_.partition == PartitionStrategy::k2dHubReplicated) {
    obs::TraceSpan span("partition.plan2d", "bank", "");
    partition = Partition2dCsr(csr, num_banks(), Options2d());
    Record2dMetrics(partition.stats);
  } else {
    partition = PartitionOrientedCsr(csr, num_banks(), config_.partition);
  }
  return PreparedRun{std::move(matrix), std::move(partition)};
}

ClusterResult BankPool::Count(const graph::Graph& g) const {
  util::Timer timer;
  const graph::Orientation orientation = config_.accelerator.orientation;
  PreparedRun run = Prepare(g);

  std::vector<core::TcimResult> per_bank(num_banks());
  if (run.partition.plan2d != nullptr) {
    const TilePlan2d& plan = *run.partition.plan2d;
    RunShards(run.partition, [&](std::uint32_t b, const ShardInfo&) {
      per_bank[b] =
          banks_[b]->RunOnMatrixPlan(run.matrix, orientation,
                                     MakeBankExecPlan(plan, b));
    });
  } else {
    RunShards(run.partition, [&](std::uint32_t b, const ShardInfo& shard) {
      per_bank[b] = banks_[b]->RunOnMatrixRows(
          run.matrix, orientation, shard.row_begin, shard.row_end);
    });
  }

  ClusterResult cluster =
      AggregateClusterResult(std::move(run.partition), orientation,
                             std::move(per_bank), run.matrix.ComputeStats(),
                             config_.accelerator.perf);
  cluster.host_seconds = timer.ElapsedSeconds();
  return cluster;
}

std::uint64_t BankPool::HostCount(const graph::Graph& g) const {
  const PreparedRun run = Prepare(g);

  if (run.partition.plan2d != nullptr) {
    ServingPlan2d plan;
    plan.replicas = MakeReplicas(run.matrix.cols(),
                                 run.partition.plan2d->hubs, num_banks());
    plan.partition = run.partition;
    return HostCount2d(run.matrix, plan, config_.accelerator.orientation);
  }

  // Each shard runs the adaptive host kernel over its owned row range;
  // disjoint ranges partition the raw Eq. (5) sum exactly, and the
  // orientation divide happens once on the cluster total (a single
  // kFullSymmetric shard's bitcount need not be divisible by 6).
  std::vector<std::uint64_t> per_bank(num_banks(), 0);
  std::vector<bit::PairPathCounters> paths(num_banks());
  RunShards(run.partition, [&](std::uint32_t b, const ShardInfo& shard) {
    per_bank[b] = run.matrix.AndPopcountRows(
        shard.row_begin, shard.row_end, bit::PopcountKind::kBuiltin,
        &paths[b]);
  });
  RecordPairPathMetrics(paths);
  std::uint64_t raw = 0;
  for (const std::uint64_t shard_count : per_bank) raw += shard_count;
  return raw / graph::CountMultiplier(config_.accelerator.orientation);
}

std::uint64_t BankPool::HostCountMatrix(const bit::SlicedMatrix& matrix,
                                        graph::Orientation orientation) const {
  if (config_.partition == PartitionStrategy::k2dHubReplicated) {
    const ServingPlan2d plan = BuildServingPlan2d(matrix);
    return HostCount2d(matrix, plan, orientation);
  }
  const GraphPartition partition =
      PartitionMatrixRows(matrix, num_banks(), config_.partition);
  std::vector<std::uint64_t> per_bank(num_banks(), 0);
  std::vector<bit::PairPathCounters> paths(num_banks());
  RunShards(partition, [&](std::uint32_t b, const ShardInfo& shard) {
    per_bank[b] = matrix.AndPopcountRows(shard.row_begin, shard.row_end,
                                         bit::PopcountKind::kBuiltin,
                                         &paths[b]);
  });
  RecordPairPathMetrics(paths);
  std::uint64_t raw = 0;
  for (const std::uint64_t shard_count : per_bank) raw += shard_count;
  return raw / graph::CountMultiplier(orientation);
}

ServingPlan2d BankPool::BuildServingPlan2d(
    const bit::SlicedMatrix& matrix) const {
  obs::TraceSpan span("partition.plan2d", "bank", "");
  ServingPlan2d plan;
  plan.partition = Partition2dMatrix(matrix, num_banks(), Options2d());
  plan.replicas = MakeReplicas(matrix.cols(), plan.partition.plan2d->hubs,
                               num_banks());
  Record2dMetrics(plan.partition.stats);
  return plan;
}

std::uint64_t BankPool::HostCount2d(const bit::SlicedMatrix& matrix,
                                    const ServingPlan2d& plan,
                                    graph::Orientation orientation) const {
  const TilePlan2d& plan2d = *plan.partition.plan2d;
  std::vector<std::uint64_t> per_bank(num_banks(), 0);
  std::vector<bit::PairPathCounters> paths(num_banks());
  RunShards(plan.partition, [&](std::uint32_t b, const ShardInfo&) {
    const bit::SlicedStore* replica =
        plan.replicas.empty() ? nullptr : &plan.replicas[b];
    per_bank[b] = CountBankShard2d(matrix, plan2d, b, replica,
                                   bit::PopcountKind::kBuiltin, &paths[b]);
  });
  RecordPairPathMetrics(paths);
  std::uint64_t raw = 0;
  for (const std::uint64_t shard_count : per_bank) raw += shard_count;
  return raw / graph::CountMultiplier(orientation);
}

std::uint64_t BankPool::HostCountEpoch(const EpochSnapshot& epoch) const {
  const bit::SlicedMatrix& matrix = *epoch.matrix;
  if (config_.partition != PartitionStrategy::k2dHubReplicated) {
    return HostCountMatrix(matrix, epoch.orientation);
  }
  PlanCache2d::PlanPtr plan;
  if (epoch.plan2d != nullptr) {
    plan = epoch.plan2d->GetOrBuild(
        num_banks(), [&] { return BuildServingPlan2d(matrix); });
  }
  // Defensive rebuild: a plan carried forward across publishes is only
  // valid while the vertex range it was sized for still matches (the
  // session invalidates on growth; never trust it blindly).
  if (plan == nullptr || plan->partition.plan2d == nullptr ||
      plan->partition.plan2d->num_vertices != matrix.num_vertices()) {
    plan = std::make_shared<const ServingPlan2d>(BuildServingPlan2d(matrix));
  }
  return HostCount2d(matrix, *plan, epoch.orientation);
}

}  // namespace tcim::runtime
