// Jobs for the async runtime scheduler: shared state between the
// submitting client (JobHandle) and the dispatcher (JobRecord's Mark*
// transitions).
//
// State machine:
//
//   kQueued ──MarkRunning──> kRunning ──MarkDone────> kDone
//      │                        └──────MarkFailed──> kFailed
//      └────MarkCancelled──> kCancelled                (terminal)
//
// Wait() blocks until a terminal state and returns the JobOutcome; it
// never throws on failure/cancellation — the outcome carries the state
// so callers can branch (the scheduler tests rely on that).
//
// Layer: §10 runtime — see docs/ARCHITECTURE.md. Units: the outcome's
// queue/run times are host wall-clock seconds (SI).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "runtime/aggregate.h"
#include "stream/incremental_counter.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace tcim::runtime {

enum class JobState : std::uint8_t {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

/// What a job computes. kCount runs the multi-bank pipeline on a whole
/// graph; kUpdate applies one stream::EdgeDelta batch to a
/// StreamSession; kQuery counts a StreamSession's *pinned epoch* on
/// the bank pool without re-slicing (the serving read path — see
/// docs/SERVING.md). Count and query jobs share the policy lane;
/// updates ride a dedicated FIFO lane so the two kinds never race for
/// ordering (scheduler.h, "Two lanes").
enum class JobKind : std::uint8_t {
  kCount,
  kUpdate,
  kQuery,
};

[[nodiscard]] inline std::string ToString(JobKind kind) {
  switch (kind) {
    case JobKind::kCount:
      return "count";
    case JobKind::kUpdate:
      return "update";
    case JobKind::kQuery:
      return "query";
  }
  return "?";
}

[[nodiscard]] inline std::string ToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct JobOptions {
  /// Higher runs first under SchedulingPolicy::kPriority; ignored (pure
  /// FIFO) under kFifo. Ties break by submission order.
  int priority = 0;
  /// Free-form label carried into reports (service_simulation uses it).
  std::string tag;
};

/// Result of one epoch-pinned serving query (JobKind::kQuery).
struct QueryResult {
  std::uint64_t epoch = 0;      ///< epoch the count was pinned to
  std::uint64_t triangles = 0;  ///< bank-pool count of that epoch
  graph::VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  /// True when this query's answer came from another query's shared
  /// AndPopcountRows pass (request coalescing; see docs/SERVING.md).
  bool coalesced = false;
  /// Queries answered by the one pass this job belonged to (>= 1; the
  /// leader and every coalesced follower report the same value).
  std::uint64_t batch_size = 1;
};

/// Terminal result of a job, valid once state is kDone/kFailed/
/// kCancelled. On kDone exactly one payload is meaningful: `result`
/// for kCount jobs, `update` for kUpdate jobs, `query` for kQuery
/// jobs (see `kind`).
struct JobOutcome {
  JobState state = JobState::kCancelled;
  JobKind kind = JobKind::kCount;
  ClusterResult result;         ///< kCount payload
  stream::BatchResult update;   ///< kUpdate payload
  QueryResult query;            ///< kQuery payload
  /// Epoch this job interacted with: the epoch an update published, or
  /// the epoch a query pinned (== query.epoch). 0 for kCount.
  std::uint64_t epoch = 0;
  std::string error;          ///< set when kFailed
  double queue_seconds = 0.0; ///< submit → dispatch (or cancel)
  double run_seconds = 0.0;   ///< dispatch → completion
  /// Global dispatch sequence number (0 = dispatched first); the
  /// ordering probe of the FIFO/priority scheduler tests.
  std::uint64_t start_order = 0;
};

/// Shared job state. Created by the scheduler; clients hold it through
/// JobHandle. All methods are thread-safe.
class JobRecord {
 public:
  JobRecord(std::uint64_t id, JobOptions options,
            JobKind kind = JobKind::kCount)
      : id_(id), options_(std::move(options)), kind_(kind) {
    outcome_.kind = kind;
  }

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] JobKind kind() const noexcept { return kind_; }
  [[nodiscard]] const JobOptions& options() const noexcept {
    return options_;
  }

  [[nodiscard]] JobState state() const {
    util::MutexLock lock(&mu_);
    return state_;
  }

  /// Submit → dispatch wait; valid once the job left the queue
  /// (MarkRunning / MarkCancelled). Feeds the scheduler.*.wait_seconds
  /// registry histograms.
  [[nodiscard]] double QueueSeconds() const {
    util::MutexLock lock(&mu_);
    return outcome_.queue_seconds;
  }

  /// Blocks until terminal and returns the outcome (by value: the
  /// record outlives the scheduler, handles may Wait() after shutdown).
  [[nodiscard]] JobOutcome Wait() const {
    util::MutexLock lock(&mu_);
    while (!IsTerminalLocked()) cv_.Wait(mu_);
    return outcome_;
  }

  // --- dispatcher-side transitions ---------------------------------------

  /// kQueued → kRunning. Returns false (no-op) if already cancelled.
  [[nodiscard]] bool MarkRunning(std::uint64_t start_order) {
    util::MutexLock lock(&mu_);
    if (state_ != JobState::kQueued) return false;
    state_ = JobState::kRunning;
    outcome_.queue_seconds = clock_.ElapsedSeconds();
    outcome_.start_order = start_order;
    clock_.Restart();
    return true;
  }

  void MarkDone(ClusterResult result) {
    Finish(JobState::kDone, std::move(result), {}, {}, {}, 0);
  }
  /// kUpdate flavour: the payload is the batch result plus the epoch
  /// the batch published.
  void MarkDone(stream::BatchResult result, std::uint64_t epoch = 0) {
    Finish(JobState::kDone, {}, std::move(result), {}, {}, epoch);
  }
  /// kQuery flavour: the payload is the epoch-pinned query result.
  void MarkDone(QueryResult result) {
    const std::uint64_t epoch = result.epoch;
    Finish(JobState::kDone, {}, {}, std::move(result), {}, epoch);
  }
  void MarkFailed(std::string error) {
    Finish(JobState::kFailed, {}, {}, {}, std::move(error), 0);
  }

  /// kQueued → kCancelled. Returns false if the job already left the
  /// queue (running or terminal).
  [[nodiscard]] bool MarkCancelled() {
    util::MutexLock lock(&mu_);
    if (state_ != JobState::kQueued) return false;
    state_ = JobState::kCancelled;
    outcome_.state = JobState::kCancelled;
    outcome_.queue_seconds = clock_.ElapsedSeconds();
    cv_.NotifyAll();
    return true;
  }

 private:
  /// The single terminal transition; exactly one payload is set.
  void Finish(JobState state, ClusterResult result,
              stream::BatchResult update, QueryResult query,
              std::string error, std::uint64_t epoch) {
    util::MutexLock lock(&mu_);
    state_ = state;
    outcome_.state = state;
    outcome_.result = std::move(result);
    outcome_.update = std::move(update);
    outcome_.query = std::move(query);
    outcome_.epoch = epoch;
    outcome_.error = std::move(error);
    outcome_.run_seconds = clock_.ElapsedSeconds();
    cv_.NotifyAll();
  }

  [[nodiscard]] bool IsTerminalLocked() const TCIM_REQUIRES(mu_) {
    return state_ == JobState::kDone || state_ == JobState::kFailed ||
           state_ == JobState::kCancelled;
  }

  const std::uint64_t id_;
  const JobOptions options_;
  const JobKind kind_;
  mutable util::Mutex mu_;
  mutable util::CondVar cv_;
  JobState state_ TCIM_GUARDED_BY(mu_) = JobState::kQueued;
  JobOutcome outcome_ TCIM_GUARDED_BY(mu_);
  util::Timer clock_ TCIM_GUARDED_BY(mu_);  ///< re-armed at each transition
};

/// Client-side view of a submitted job.
class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<JobRecord> record)
      : record_(std::move(record)) {}

  [[nodiscard]] bool valid() const noexcept { return record_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return record_->id(); }
  [[nodiscard]] JobState state() const { return record_->state(); }
  /// Blocks until the job reaches a terminal state.
  [[nodiscard]] JobOutcome Wait() const { return record_->Wait(); }

 private:
  std::shared_ptr<JobRecord> record_;
};

}  // namespace tcim::runtime
