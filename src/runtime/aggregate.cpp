#include "runtime/aggregate.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "util/table.h"
#include "util/timer.h"
#include "util/units.h"

namespace tcim::runtime {

arch::CacheStats MergeCacheStats(std::span<const arch::CacheStats> stats) {
  arch::CacheStats merged;
  for (const arch::CacheStats& s : stats) {
    merged.lookups += s.lookups;
    merged.hits += s.hits;
    merged.misses += s.misses;
    merged.exchanges += s.exchanges;
    merged.inserts += s.inserts;
  }
  return merged;
}

arch::ExecStats MergeExecStats(std::span<const arch::ExecStats> stats) {
  arch::ExecStats merged;
  merged.spread = 0;
  std::vector<arch::CacheStats> caches;
  caches.reserve(stats.size());
  for (const arch::ExecStats& s : stats) {
    merged.edges_processed += s.edges_processed;
    merged.valid_pairs += s.valid_pairs;
    merged.row_slice_writes += s.row_slice_writes;
    merged.col_slice_writes += s.col_slice_writes;
    merged.replica_slice_writes += s.replica_slice_writes;
    merged.bitcount_words += s.bitcount_words;
    merged.accumulated_bitcount += s.accumulated_bitcount;
    merged.host_pairs_batched += s.host_pairs_batched;
    merged.host_pairs_zero_copy += s.host_pairs_zero_copy;
    merged.host_pairs_per_pair += s.host_pairs_per_pair;
    merged.spread = std::max(merged.spread, s.spread);
    caches.push_back(s.cache);
    if (merged.per_subarray_ands.size() < s.per_subarray_ands.size()) {
      merged.per_subarray_ands.resize(s.per_subarray_ands.size(), 0);
    }
    for (std::size_t i = 0; i < s.per_subarray_ands.size(); ++i) {
      merged.per_subarray_ands[i] += s.per_subarray_ands[i];
    }
    if (merged.per_subarray_writes.size() < s.per_subarray_writes.size()) {
      merged.per_subarray_writes.resize(s.per_subarray_writes.size(), 0);
    }
    for (std::size_t i = 0; i < s.per_subarray_writes.size(); ++i) {
      merged.per_subarray_writes[i] += s.per_subarray_writes[i];
    }
  }
  merged.spread = std::max<std::uint64_t>(merged.spread, 1);
  merged.cache = MergeCacheStats(caches);
  return merged;
}

std::string ClusterResult::Summary() const {
  std::ostringstream os;
  os << num_banks() << " banks: " << triangles << " triangles, critical path "
     << util::FormatSeconds(critical_path_seconds) << " (serial sum "
     << util::FormatSeconds(serial_sum_seconds) << ", speedup "
     << util::TablePrinter::Ratio(Speedup(), 2) << "), chip energy "
     << util::FormatJoules(energy_joules);
  return os.str();
}

arch::ExecStats ToExecStats(const stream::BatchResult& batch) {
  arch::ExecStats exec;
  exec.edges_processed =
      batch.stats.applied.inserted + batch.stats.applied.deleted;
  exec.valid_pairs = batch.stats.and_ops;
  exec.row_slice_writes = batch.stats.applied.patch.rows.bits_patched +
                          batch.stats.applied.patch.rows.slices_inserted;
  exec.col_slice_writes = batch.stats.applied.patch.cols.bits_patched +
                          batch.stats.applied.patch.cols.slices_inserted;
  exec.host_pairs_batched = batch.stats.paths.batched_pairs;
  exec.host_pairs_zero_copy = batch.stats.paths.zero_copy_pairs;
  exec.host_pairs_per_pair = batch.stats.paths.per_pair_pairs;
  return exec;
}

void StreamStats::Add(const stream::BatchResult& batch) {
  ++batches;
  ops_submitted += batch.stats.ops_submitted;
  ops_dropped += batch.stats.ops_dropped;
  edges_inserted += batch.stats.applied.inserted;
  edges_deleted += batch.stats.applied.deleted;
  flipped_arcs += batch.stats.applied.flipped_arcs;
  recounts += batch.stats.used_recount ? 1 : 0;
  net_delta += batch.delta;
  host_seconds += batch.stats.host_seconds;
  const arch::ExecStats merged[] = {exec, ToExecStats(batch)};
  exec = MergeExecStats(merged);
}

std::string StreamStats::Summary() const {
  std::ostringstream os;
  os << batches << " batches: +" << edges_inserted << "/-" << edges_deleted
     << " edges, net triangle delta " << net_delta << ", "
     << exec.valid_pairs << " AND ops, " << recounts << " recounts, "
     << util::FormatSeconds(host_seconds) << " total";
  return os.str();
}

ClusterResult AggregateClusterResult(GraphPartition partition,
                                     graph::Orientation orientation,
                                     std::vector<core::TcimResult> per_bank,
                                     bit::SliceStats slices,
                                     const core::PerfModelParams& perf_params) {
  ClusterResult cluster;
  cluster.orientation = orientation;
  cluster.partition = std::move(partition);
  cluster.slices = std::move(slices);
  cluster.banks = std::move(per_bank);

  std::vector<arch::ExecStats> execs;
  execs.reserve(cluster.banks.size());
  std::uint64_t raw_bitcount = 0;
  for (const core::TcimResult& bank : cluster.banks) {
    execs.push_back(bank.exec);
    raw_bitcount += bank.exec.accumulated_bitcount;
    cluster.serial_sum_seconds += bank.perf.serial_seconds;
    cluster.critical_path_seconds =
        std::max(cluster.critical_path_seconds, bank.perf.serial_seconds);
    cluster.parallel_critical_path_seconds =
        std::max(cluster.parallel_critical_path_seconds,
                 bank.perf.parallel_seconds);
    cluster.energy_joules += bank.perf.energy_joules;
  }
  cluster.exec = MergeExecStats(execs);
  cluster.triangles = raw_bitcount / graph::CountMultiplier(orientation);
  // Platform view: the single host drives all banks and is busy until
  // the slowest one finishes.
  cluster.platform_joules =
      cluster.energy_joules +
      perf_params.host_platform_power * cluster.critical_path_seconds;
  return cluster;
}

// --- LatencyRecorder --------------------------------------------------------

namespace {

std::string Millis(double seconds) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << seconds * 1e3 << "ms";
  return os.str();
}

}  // namespace

void LatencyRecorder::Record(double seconds) { hist_.Observe(seconds); }

std::uint64_t LatencyRecorder::count() const { return hist_.Count(); }

double LatencyRecorder::mean() const { return hist_.Mean(); }

double LatencyRecorder::max() const { return hist_.Max(); }

double LatencyRecorder::Percentile(double p) const {
  return hist_.Percentile(p);
}

std::string LatencyRecorder::Summary() const {
  const std::uint64_t n = count();
  std::ostringstream os;
  os << "n=" << n;
  if (n > 0) {
    os << " mean=" << Millis(mean()) << " p50=" << Millis(Percentile(50.0))
       << " p99=" << Millis(Percentile(99.0)) << " max=" << Millis(max());
  }
  return os.str();
}

}  // namespace tcim::runtime
