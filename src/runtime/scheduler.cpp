#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tcim::runtime {

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)), pool_(config_.pool) {
  const std::uint32_t n = std::clamp<std::uint32_t>(
      config_.dispatch_threads, 1, kMaxBanks);
  dispatchers_.reserve(n);
  try {
    for (std::uint32_t t = 0; t < n; ++t) {
      dispatchers_.emplace_back([this] { DispatcherLoop(); });
    }
  } catch (...) {
    // Same spawn-failure discipline as WorkerPool: release any
    // started dispatchers before the members they block on go away.
    {
      std::lock_guard<std::mutex> lock(mu_);
      shut_down_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : dispatchers_) t.join();
    throw;
  }
}

Scheduler::~Scheduler() { Shutdown(ShutdownMode::kDrain); }

JobHandle Scheduler::Submit(graph::Graph graph, JobOptions options) {
  std::shared_ptr<JobRecord> record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      throw std::runtime_error("Scheduler::Submit: scheduler is shut down");
    }
    const std::uint64_t sequence = next_sequence_++;
    record = std::make_shared<JobRecord>(sequence, std::move(options),
                                         JobKind::kCount);
    queue_.push_back(
        QueueEntry{record, std::move(graph), nullptr, {}, sequence});
  }
  cv_.notify_one();
  return JobHandle{std::move(record)};
}

JobHandle Scheduler::SubmitUpdate(std::shared_ptr<StreamSession> session,
                                  stream::EdgeDelta delta,
                                  JobOptions options) {
  if (session == nullptr) {
    throw std::invalid_argument("Scheduler::SubmitUpdate: null session");
  }
  std::shared_ptr<JobRecord> record;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      throw std::runtime_error(
          "Scheduler::SubmitUpdate: scheduler is shut down");
    }
    const std::uint64_t sequence = next_sequence_++;
    record = std::make_shared<JobRecord>(sequence, std::move(options),
                                         JobKind::kUpdate);
    queue_.push_back(QueueEntry{record, graph::Graph{}, std::move(session),
                                std::move(delta), sequence});
  }
  cv_.notify_one();
  return JobHandle{std::move(record)};
}

void Scheduler::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Scheduler::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Scheduler::Shutdown(ShutdownMode mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    paused_ = false;
    shut_down_ = true;
    if (mode == ShutdownMode::kCancelPending) {
      cancel_pending_ = true;
      for (QueueEntry& entry : queue_) {
        if (entry.record->MarkCancelled()) ++completed_;
      }
      queue_.clear();
    }
  }
  cv_.notify_all();
  // Serialize the join phase: std::thread objects are not safe to
  // joinable()/join() from two threads, and Shutdown is documented
  // safe to call concurrently/repeatedly.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Scheduler::submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_sequence_;
}
std::uint64_t Scheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}
std::uint64_t Scheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}
std::uint64_t Scheduler::completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

Scheduler::QueueEntry Scheduler::PopLocked() {
  auto best = queue_.begin();
  if (config_.policy == SchedulingPolicy::kPriority) {
    for (auto it = std::next(best); it != queue_.end(); ++it) {
      if (it->record->options().priority >
          best->record->options().priority) {
        best = it;  // FIFO tiebreak: keep the earliest of equal priority
      }
    }
  }
  QueueEntry entry = std::move(*best);
  queue_.erase(best);
  return entry;
}

void Scheduler::DispatcherLoop() {
  for (;;) {
    QueueEntry entry;
    std::uint64_t start_order = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return shut_down_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() || cancel_pending_) {
        if (shut_down_) return;  // drained (or pending was cancelled)
        continue;
      }
      entry = PopLocked();
      start_order = next_start_order_++;
      ++running_;
    }
    if (!entry.record->MarkRunning(start_order)) {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++completed_;
      continue;
    }
    // Update the counters before publishing the terminal state, so a
    // client returning from Wait() observes them already settled.
    ClusterResult count_result;
    stream::BatchResult update_result;
    std::string error;
    bool ok = true;
    try {
      if (entry.record->kind() == JobKind::kUpdate) {
        update_result = entry.session->Apply(entry.delta);
      } else {
        count_result = pool_.Count(entry.graph);
      }
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "unknown error";
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      ++completed_;
    }
    if (!ok) {
      entry.record->MarkFailed(std::move(error));
    } else if (entry.record->kind() == JobKind::kUpdate) {
      entry.record->MarkDone(std::move(update_result));
    } else {
      entry.record->MarkDone(std::move(count_result));
    }
  }
}

}  // namespace tcim::runtime
