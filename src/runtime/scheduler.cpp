#include "runtime/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "runtime/metrics.h"
#include "util/timer.h"

namespace tcim::runtime {

namespace {

// Span/async-event names must be string literals (obs::TraceEvent
// stores the pointer).
const char* KindSpanName(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::kCount:
      return "job.count";
    case JobKind::kUpdate:
      return "job.update";
    case JobKind::kQuery:
      break;
  }
  return "job.query";
}

}  // namespace

Scheduler::Scheduler(SchedulerConfig config)
    : config_(std::move(config)), pool_(config_.pool) {
  const std::uint32_t n = std::clamp<std::uint32_t>(
      config_.dispatch_threads, 1, kMaxBanks);
  dispatchers_.reserve(n);
  try {
    for (std::uint32_t t = 0; t < n; ++t) {
      dispatchers_.emplace_back([this] { DispatcherLoop(); });
    }
  } catch (...) {
    // Same spawn-failure discipline as WorkerPool: release any
    // started dispatchers before the members they block on go away.
    {
      util::MutexLock lock(&mu_);
      shut_down_ = true;
    }
    cv_.NotifyAll();
    for (std::thread& t : dispatchers_) t.join();
    throw;
  }
}

Scheduler::~Scheduler() { Shutdown(ShutdownMode::kDrain); }

std::pair<std::shared_ptr<JobRecord>, bool> Scheduler::AdmitLocked(
    JobKind kind, JobOptions options) {
  const std::uint64_t sequence = next_sequence_++;
  auto record = std::make_shared<JobRecord>(sequence, std::move(options), kind);
  if (config_.max_pending > 0 &&
      policy_lane_.size() + update_lane_.size() >= config_.max_pending) {
    ++rejected_;
    SchedulerMetrics::Get().rejected.Increment();
    record->MarkFailed("admission: queue full");
    return {std::move(record), false};
  }
  ++accepted_;
  SchedulerMetrics::Get().ForKind(kind).submitted.Increment();
  // The job's queue->run lifetime crosses threads (submit here,
  // dispatch on a worker), so it is an async span keyed by job id.
  obs::TraceAsyncBegin(KindSpanName(kind), "job", sequence);
  return {std::move(record), true};
}

void Scheduler::UpdateDepthGaugesLocked() const {
  SchedulerMetrics& metrics = SchedulerMetrics::Get();
  metrics.policy_depth.Set(static_cast<double>(policy_lane_.size()));
  metrics.update_depth.Set(static_cast<double>(update_lane_.size()));
}

JobHandle Scheduler::Submit(graph::Graph graph, JobOptions options) {
  std::shared_ptr<JobRecord> record;
  bool admitted = false;
  {
    util::MutexLock lock(&mu_);
    if (!accepting_) {
      throw std::runtime_error("Scheduler::Submit: scheduler is shut down");
    }
    std::tie(record, admitted) = AdmitLocked(JobKind::kCount,
                                             std::move(options));
    if (admitted) {
      policy_lane_.push_back(QueueEntry{record, std::move(graph), nullptr, {},
                                        record->id()});
      UpdateDepthGaugesLocked();
    }
  }
  if (admitted) cv_.NotifyOne();
  return JobHandle{std::move(record)};
}

JobHandle Scheduler::SubmitQuery(std::shared_ptr<StreamSession> session,
                                 JobOptions options) {
  if (session == nullptr) {
    throw std::invalid_argument("Scheduler::SubmitQuery: null session");
  }
  std::shared_ptr<JobRecord> record;
  bool admitted = false;
  {
    util::MutexLock lock(&mu_);
    if (!accepting_) {
      throw std::runtime_error(
          "Scheduler::SubmitQuery: scheduler is shut down");
    }
    std::tie(record, admitted) = AdmitLocked(JobKind::kQuery,
                                             std::move(options));
    if (admitted) {
      policy_lane_.push_back(QueueEntry{record, graph::Graph{},
                                        std::move(session), {}, record->id()});
      UpdateDepthGaugesLocked();
    }
  }
  if (admitted) cv_.NotifyOne();
  return JobHandle{std::move(record)};
}

JobHandle Scheduler::SubmitUpdate(std::shared_ptr<StreamSession> session,
                                  stream::EdgeDelta delta,
                                  JobOptions options) {
  if (session == nullptr) {
    throw std::invalid_argument("Scheduler::SubmitUpdate: null session");
  }
  std::shared_ptr<JobRecord> record;
  bool admitted = false;
  {
    util::MutexLock lock(&mu_);
    if (!accepting_) {
      throw std::runtime_error(
          "Scheduler::SubmitUpdate: scheduler is shut down");
    }
    std::tie(record, admitted) = AdmitLocked(JobKind::kUpdate,
                                             std::move(options));
    if (admitted) {
      update_lane_.push_back(QueueEntry{record, graph::Graph{},
                                        std::move(session), std::move(delta),
                                        record->id()});
      UpdateDepthGaugesLocked();
    }
  }
  if (admitted) cv_.NotifyOne();
  return JobHandle{std::move(record)};
}

void Scheduler::Pause() {
  util::MutexLock lock(&mu_);
  paused_ = true;
}

void Scheduler::Resume() {
  {
    util::MutexLock lock(&mu_);
    paused_ = false;
  }
  cv_.NotifyAll();
}

void Scheduler::Shutdown(ShutdownMode mode) {
  {
    util::MutexLock lock(&mu_);
    accepting_ = false;
    paused_ = false;
    shut_down_ = true;
    if (mode == ShutdownMode::kCancelPending) {
      cancel_pending_ = true;
      for (std::deque<QueueEntry>* lane : {&policy_lane_, &update_lane_}) {
        for (QueueEntry& entry : *lane) {
          if (entry.record->MarkCancelled()) {
            ++completed_;
            // Close the async span opened at admission so traces stay
            // balanced even for jobs that never ran.
            obs::TraceAsyncEnd(KindSpanName(entry.record->kind()), "job",
                               entry.record->id(), "\"cancelled\":true");
          }
        }
        lane->clear();
      }
      UpdateDepthGaugesLocked();
    }
  }
  cv_.NotifyAll();
  // Serialize the join phase: std::thread objects are not safe to
  // joinable()/join() from two threads, and Shutdown is documented
  // safe to call concurrently/repeatedly.
  util::MutexLock join_lock(&join_mu_);
  for (std::thread& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
}

std::uint64_t Scheduler::submitted() const {
  util::MutexLock lock(&mu_);
  return accepted_;
}
std::uint64_t Scheduler::pending() const {
  util::MutexLock lock(&mu_);
  return policy_lane_.size() + update_lane_.size();
}
std::uint64_t Scheduler::running() const {
  util::MutexLock lock(&mu_);
  return running_;
}
std::uint64_t Scheduler::completed() const {
  util::MutexLock lock(&mu_);
  return completed_;
}
std::uint64_t Scheduler::rejected() const {
  util::MutexLock lock(&mu_);
  return rejected_;
}
std::uint64_t Scheduler::coalesced() const {
  util::MutexLock lock(&mu_);
  return coalesced_;
}

Scheduler::QueueEntry Scheduler::PopPolicyLocked() {
  auto best = policy_lane_.begin();
  if (config_.policy == SchedulingPolicy::kPriority) {
    for (auto it = std::next(best); it != policy_lane_.end(); ++it) {
      if (it->record->options().priority >
          best->record->options().priority) {
        best = it;  // FIFO tiebreak: keep the earliest of equal priority
      }
    }
  }
  QueueEntry entry = std::move(*best);
  policy_lane_.erase(best);
  return entry;
}

std::size_t Scheduler::DispatchableUpdateLocked() const {
  // First update whose session has no batch applying: the earliest
  // queue position per session, so per-session submission order holds
  // at any dispatcher count. Updates for distinct idle sessions can
  // dispatch concurrently.
  for (std::size_t i = 0; i < update_lane_.size(); ++i) {
    if (busy_sessions_.count(update_lane_[i].session.get()) == 0) return i;
  }
  return update_lane_.size();
}

bool Scheduler::DispatcherShouldWakeLocked() const {
  const bool dispatchable =
      !policy_lane_.empty() ||
      DispatchableUpdateLocked() < update_lane_.size();
  if (shut_down_) {
    // Drain: exit only when both lanes are empty; a lane held up
    // by a busy session wakes us again when the batch finishes.
    return dispatchable || (policy_lane_.empty() && update_lane_.empty());
  }
  return !paused_ && dispatchable;
}

void Scheduler::DispatcherLoop() {
  for (;;) {
    QueueEntry entry;
    std::vector<QueueEntry> followers;
    std::vector<std::uint64_t> follower_orders;
    std::uint64_t start_order = 0;
    {
      util::MutexLock lock(&mu_);
      while (!DispatcherShouldWakeLocked()) cv_.Wait(mu_);
      if (policy_lane_.empty() && update_lane_.empty()) {
        if (shut_down_) return;
        continue;
      }
      const std::size_t u = DispatchableUpdateLocked();
      if (u < update_lane_.size()) {
        // Update lane first: batches are cheap relative to counting
        // passes and keeping the published epoch fresh is the point of
        // the serving split.
        entry = std::move(update_lane_[u]);
        update_lane_.erase(update_lane_.begin() +
                           static_cast<std::ptrdiff_t>(u));
        busy_sessions_.insert(entry.session.get());
      } else if (!policy_lane_.empty()) {
        entry = PopPolicyLocked();
        if (entry.record->kind() == JobKind::kQuery) {
          // Coalesce: absorb every queued query for this session into
          // one shared pass. Pinning happens at dispatch, so answering
          // them all from the leader's pin is exactly what each would
          // have computed alone.
          for (auto it = policy_lane_.begin(); it != policy_lane_.end();) {
            if (it->record->kind() == JobKind::kQuery &&
                it->session == entry.session) {
              followers.push_back(std::move(*it));
              it = policy_lane_.erase(it);
            } else {
              ++it;
            }
          }
        }
      } else {
        continue;  // raced with another dispatcher
      }
      start_order = next_start_order_++;
      follower_orders.reserve(followers.size());
      for (std::size_t f = 0; f < followers.size(); ++f) {
        follower_orders.push_back(next_start_order_++);
      }
      running_ += 1 + followers.size();
      UpdateDepthGaugesLocked();
    }
    RunEntry(std::move(entry), std::move(followers), start_order,
             std::move(follower_orders));
  }
}

void Scheduler::RunEntry(QueueEntry entry, std::vector<QueueEntry> followers,
                         std::uint64_t start_order,
                         std::vector<std::uint64_t> follower_orders) {
  const JobKind kind = entry.record->kind();
  SchedulerMetrics& metrics = SchedulerMetrics::Get();
  SchedulerMetrics::PerKind& kind_metrics = metrics.ForKind(kind);
  const bool leader_running = entry.record->MarkRunning(start_order);
  if (leader_running) {
    kind_metrics.wait_seconds.Observe(entry.record->QueueSeconds());
  }
  bool any_running = leader_running;
  for (std::size_t f = 0; f < followers.size(); ++f) {
    if (followers[f].record->MarkRunning(follower_orders[f])) {
      any_running = true;
      kind_metrics.wait_seconds.Observe(followers[f].record->QueueSeconds());
    }
  }
  kind_metrics.dispatched.Add(1 + followers.size());
  ClusterResult count_result;
  StreamSession::AppliedBatch applied;
  QueryResult query_base;
  std::string error;
  bool ok = true;
  util::Timer service_clock;
  if (any_running) {
    std::string span_args;
    if (obs::TraceEnabled()) {
      span_args = "\"id\":" + std::to_string(entry.record->id()) +
                  ",\"batch\":" + std::to_string(1 + followers.size());
    }
    obs::TraceSpan span(KindSpanName(kind), "scheduler",
                        std::move(span_args));
    try {
      if (hooks_.before_job_run) hooks_.before_job_run(kind);
      switch (kind) {
        case JobKind::kUpdate:
          applied = entry.session->Apply(entry.delta);
          break;
        case JobKind::kCount:
          count_result = pool_.Count(entry.graph);
          break;
        case JobKind::kQuery: {
          // Pin once for the whole coalesced group; count the pinned
          // COW matrix on the bank pool without re-slicing. The writer
          // may publish newer epochs mid-pass — this answer is exact
          // for the epoch it names.
          const EpochManager::Pin pin = entry.session->PinEpoch();
          if (hooks_.after_query_pin) hooks_.after_query_pin(pin->epoch);
          query_base.epoch = pin->epoch;
          query_base.triangles = pool_.HostCountEpoch(*pin);
          query_base.num_vertices = pin->num_vertices;
          query_base.num_edges = pin->num_edges;
          query_base.batch_size = 1 + followers.size();
          break;
        }
      }
      if (hooks_.after_job_run) hooks_.after_job_run(kind);
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "unknown error";
    }
    kind_metrics.service_seconds.Observe(service_clock.ElapsedSeconds());
  }
  // Update the counters (and free the session for its next batch)
  // before publishing the terminal state, so a client returning from
  // Wait() observes them already settled.
  {
    util::MutexLock lock(&mu_);
    running_ -= 1 + followers.size();
    completed_ += 1 + followers.size();
    if (ok && any_running) coalesced_ += followers.size();
    if (kind == JobKind::kUpdate) {
      busy_sessions_.erase(entry.session.get());
    }
  }
  kind_metrics.done.Add(1 + followers.size());
  if (ok && any_running) metrics.coalesced.Add(followers.size());
  obs::TraceAsyncEnd(KindSpanName(kind), "job", entry.record->id());
  for (const QueueEntry& f : followers) {
    obs::TraceAsyncEnd(KindSpanName(kind), "job", f.record->id());
  }
  cv_.NotifyAll();
  if (!any_running) return;  // every record already terminal
  if (!ok) {
    entry.record->MarkFailed(error);
    for (QueueEntry& f : followers) f.record->MarkFailed(error);
    return;
  }
  switch (kind) {
    case JobKind::kUpdate:
      entry.record->MarkDone(std::move(applied.batch), applied.epoch);
      break;
    case JobKind::kCount:
      entry.record->MarkDone(std::move(count_result));
      break;
    case JobKind::kQuery: {
      QueryResult leader = query_base;
      leader.coalesced = false;
      entry.record->MarkDone(std::move(leader));
      for (QueueEntry& f : followers) {
        QueryResult follower = query_base;
        follower.coalesced = true;
        f.record->MarkDone(std::move(follower));
      }
      break;
    }
  }
}

}  // namespace tcim::runtime
