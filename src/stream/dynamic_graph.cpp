#include "stream/dynamic_graph.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace tcim::stream {

namespace {

using graph::VertexId;

bool SortedContains(const std::vector<VertexId>& list, VertexId v) noexcept {
  return std::binary_search(list.begin(), list.end(), v);
}

void SortedInsert(std::vector<VertexId>& list, VertexId v) {
  list.insert(std::lower_bound(list.begin(), list.end(), v), v);
}

void SortedErase(std::vector<VertexId>& list, VertexId v) {
  list.erase(std::lower_bound(list.begin(), list.end(), v));
}

}  // namespace

DynamicGraph::DynamicGraph(const graph::Graph& g,
                           graph::Orientation orientation,
                           std::uint32_t slice_bits)
    : orientation_(orientation),
      slice_bits_(slice_bits),
      n_(g.num_vertices()),
      m_(g.num_edges()),
      adj_(g.num_vertices()) {
  for (VertexId v = 0; v < n_; ++v) {
    const std::span<const VertexId> neighbors = g.Neighbors(v);
    adj_[v].assign(neighbors.begin(), neighbors.end());
  }
  RebuildMatrix();
}

std::uint64_t DynamicGraph::Degree(VertexId v) const {
  return adj_.at(v).size();
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= n_ || v >= n_ || u == v) return false;
  return SortedContains(adj_[u], v);
}

std::vector<EdgeOp> DynamicGraph::Normalize(const EdgeDelta& delta) const {
  std::vector<EdgeOp> normalized;
  normalized.reserve(delta.ops.size());
  // Membership of every pair the batch has touched so far; pairs not
  // in the map are still at their pre-batch state.
  std::unordered_map<std::uint64_t, bool> pending;
  for (const EdgeOp& op : delta.ops) {
    if (op.u == op.v) continue;  // self-loop, never representable
    const std::uint64_t key = PackEdgeKey(op.u, op.v);
    const auto it = pending.find(key);
    const bool present = it != pending.end() ? it->second
                                             : HasEdge(op.u, op.v);
    if (op.insert == present) continue;  // duplicate insert / absent delete
    normalized.push_back(op);
    pending[key] = op.insert;
  }
  return normalized;
}

ApplyStats DynamicGraph::ApplyNormalized(std::span<const EdgeOp> ops,
                                         bool patch_matrix) {
  ApplyStats stats;

  // Pass A (pre-mutation): vertex growth and the old-degree snapshot
  // the kDegree key comparisons need.
  VertexId new_n = n_;
  std::unordered_map<VertexId, std::uint64_t> old_degree;
  for (const EdgeOp& op : ops) {
    new_n = std::max({new_n, op.u + 1, op.v + 1});
    for (const VertexId x : {op.u, op.v}) {
      old_degree.try_emplace(x, x < n_ ? adj_[x].size() : 0);
    }
  }
  adj_.resize(new_n);

  // Pass B: replay the sequence against the adjacency, recording each
  // touched pair's pre-batch and final membership.
  struct PairState {
    bool before;
    bool after;
  };
  std::unordered_map<std::uint64_t, PairState> touched;
  for (const EdgeOp& op : ops) {
    const std::uint64_t key = PackEdgeKey(op.u, op.v);
    const bool present = SortedContains(adj_[op.u], op.v);
    if (op.insert == present || op.u == op.v) {
      throw std::invalid_argument(
          "DynamicGraph::ApplyNormalized: ops are not a normalized "
          "sequence (use Normalize)");
    }
    touched.try_emplace(key, PairState{present, present});
    touched[key].after = op.insert;
    if (op.insert) {
      SortedInsert(adj_[op.u], op.v);
      SortedInsert(adj_[op.v], op.u);
      ++m_;
    } else {
      SortedErase(adj_[op.u], op.v);
      SortedErase(adj_[op.v], op.u);
      --m_;
    }
  }

  // Keys as of now (adjacency final) vs the pre-batch snapshot.
  const auto new_key = [&](VertexId x) {
    return std::make_pair(orientation_ == graph::Orientation::kDegree
                              ? static_cast<std::uint64_t>(adj_[x].size())
                              : 0,
                          x);
  };
  const auto old_key = [&](VertexId x) {
    std::uint64_t deg = 0;
    if (orientation_ == graph::Orientation::kDegree) {
      const auto it = old_degree.find(x);
      deg = it != old_degree.end()
                ? it->second
                : static_cast<std::uint64_t>(adj_[x].size());
    }
    return std::make_pair(deg, x);
  };

  // Net membership changes become arc edits: inserts are oriented by
  // the *new* keys (that is the matrix state being built), deletes by
  // the *old* keys (that is the arc currently stored).
  std::vector<bit::ArcEdit> edits;
  std::unordered_map<std::uint64_t, bool> net_inserted;
  for (const auto& [key, state] : touched) {
    if (state.before == state.after) continue;
    const auto u = static_cast<VertexId>(key >> 32);
    const auto v = static_cast<VertexId>(key & 0xffffffffu);
    if (state.after) {
      ++stats.inserted;
      if (!patch_matrix) continue;
      net_inserted.emplace(key, true);
      if (orientation_ == graph::Orientation::kFullSymmetric) {
        edits.push_back(bit::ArcEdit{u, v, true});
        edits.push_back(bit::ArcEdit{v, u, true});
      } else {
        const auto [from, to] = new_key(u) < new_key(v)
                                    ? std::make_pair(u, v)
                                    : std::make_pair(v, u);
        edits.push_back(bit::ArcEdit{from, to, true});
      }
    } else {
      ++stats.deleted;
      if (!patch_matrix) continue;
      if (orientation_ == graph::Orientation::kFullSymmetric) {
        edits.push_back(bit::ArcEdit{u, v, false});
        edits.push_back(bit::ArcEdit{v, u, false});
      } else {
        const auto [from, to] = old_key(u) < old_key(v)
                                    ? std::make_pair(u, v)
                                    : std::make_pair(v, u);
        edits.push_back(bit::ArcEdit{from, to, false});
      }
    }
  }

  // kDegree re-orientation of the *affected vertices*: a surviving arc
  // flips iff the relative key order of its endpoints changed, which
  // can only involve a vertex whose degree changed.
  if (patch_matrix && orientation_ == graph::Orientation::kDegree) {
    std::vector<VertexId> changed;
    for (const auto& [x, deg] : old_degree) {
      if (x < adj_.size() && adj_[x].size() != deg) changed.push_back(x);
    }
    std::sort(changed.begin(), changed.end());
    const auto is_changed = [&](VertexId x) {
      return std::binary_search(changed.begin(), changed.end(), x);
    };
    for (const VertexId a : changed) {
      for (const VertexId w : adj_[a]) {
        if (net_inserted.count(PackEdgeKey(a, w)) != 0) continue;
        if (w < a && is_changed(w)) continue;  // handled from w's side
        const bool was_out = old_key(a) < old_key(w);
        const bool now_out = new_key(a) < new_key(w);
        if (was_out == now_out) continue;
        const VertexId old_from = was_out ? a : w;
        const VertexId old_to = was_out ? w : a;
        edits.push_back(bit::ArcEdit{old_from, old_to, false});
        edits.push_back(bit::ArcEdit{old_to, old_from, true});
        ++stats.flipped_arcs;
      }
    }
  }

  if (patch_matrix) stats.patch = matrix_.ApplyArcEdits(edits, new_n);
  stats.grown_vertices = new_n - n_;
  n_ = new_n;
  return stats;
}

ApplyStats DynamicGraph::Apply(const EdgeDelta& delta) {
  return ApplyNormalized(Normalize(delta));
}

graph::Graph DynamicGraph::ToGraph() const {
  graph::GraphBuilder builder(n_);
  builder.ReserveEdges(m_);
  for (VertexId u = 0; u < n_; ++u) {
    for (const VertexId v : adj_[u]) {
      if (v > u) builder.AddEdge(u, v);
    }
  }
  return std::move(builder).Build();
}

void DynamicGraph::RebuildMatrix() {
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<std::uint32_t> neighbors;
  neighbors.reserve(orientation_ == graph::Orientation::kFullSymmetric
                        ? 2 * m_
                        : m_);
  for (VertexId u = 0; u < n_; ++u) {
    for (const VertexId v : adj_[u]) {
      if (orientation_ == graph::Orientation::kFullSymmetric ||
          Key(u) < Key(v)) {
        neighbors.push_back(v);
      }
    }
    offsets[u + 1] = neighbors.size();
  }
  matrix_ = bit::SlicedMatrix::FromCsr(n_, offsets, neighbors, slice_bits_);
}

}  // namespace tcim::stream
