// Live oriented graph + sliced bit-matrix under streaming edge
// updates.
//
// DynamicGraph owns two synchronized views of an evolving undirected
// simple graph:
//  * per-vertex sorted adjacency lists (the mutable ground truth);
//  * a bit::SlicedMatrix of the *oriented* adjacency, kept patched in
//    place through bit::SlicedMatrix::ApplyArcEdits so the §5 AND/
//    popcount kernel always runs against the current graph without a
//    full re-slice.
//
// Orientation is maintained by a total order on vertices:
//  * kUpper          — key = vertex id; static, updates never flip arcs;
//  * kDegree         — key = (degree, id); an update changes only the
//    keys of its endpoints, so re-orientation touches only *affected
//    vertices*: arcs between an endpoint and the neighbours whose
//    relative key order flipped are reversed (two arc edits each),
//    everything else is untouched. Because every vertex is oriented by
//    its *current* key, the orientation stays a DAG at all times —
//    the invariant Eq. (5) exactness rests on;
//  * kFullSymmetric  — both arc directions stored; no flips, Eq. (5)
//    accumulates 6x the triangle count.
//
// Unlike graph::Orient(kDegree), no relabelling is performed: vertex
// ids are stable across updates (matrix row i is always vertex i).
//
// Layer: §11 stream — see docs/ARCHITECTURE.md and docs/STREAMING.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmatrix/sliced_matrix.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "stream/edge_delta.h"

namespace tcim::stream {

/// What one Apply call did (stream::BatchStats embeds this).
struct ApplyStats {
  std::uint64_t inserted = 0;      ///< edges added (net, after Normalize)
  std::uint64_t deleted = 0;       ///< edges removed
  std::uint64_t flipped_arcs = 0;  ///< surviving arcs reversed (kDegree)
  std::uint32_t grown_vertices = 0;  ///< vertex-universe growth
  bit::MatrixPatchStats patch;       ///< row/col store patch accounting
};

class DynamicGraph {
 public:
  /// Seeds the live graph from a static snapshot and slices it.
  DynamicGraph(const graph::Graph& g, graph::Orientation orientation,
               std::uint32_t slice_bits);

  [[nodiscard]] graph::VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept { return m_; }
  [[nodiscard]] graph::Orientation orientation() const noexcept {
    return orientation_;
  }
  [[nodiscard]] std::uint32_t slice_bits() const noexcept {
    return slice_bits_;
  }
  [[nodiscard]] const bit::SlicedMatrix& matrix() const noexcept {
    return matrix_;
  }
  [[nodiscard]] std::uint64_t Degree(graph::VertexId v) const;
  [[nodiscard]] bool HasEdge(graph::VertexId u, graph::VertexId v) const;

  /// Replays `delta` against the *evolving* membership and keeps only
  /// the ops that change it: self-loops, duplicate inserts, deletes of
  /// absent edges, and deletes of never-seen vertices are dropped.
  /// Every returned op is a real membership flip at its position in
  /// the sequence. Does not modify the graph.
  [[nodiscard]] std::vector<EdgeOp> Normalize(const EdgeDelta& delta) const;

  /// Applies a normalized op sequence (from Normalize; anything else
  /// throws std::invalid_argument): updates the adjacency, grows the
  /// vertex universe when endpoints exceed it, re-orients the affected
  /// vertices (kDegree key changes), and patches both slice stores of
  /// the matrix in one batched pass. With `patch_matrix == false` the
  /// arc-edit and flip computation is skipped entirely and the matrix
  /// is left STALE — the recount fallback uses this (it re-slices from
  /// scratch right after, so patching first would pay the layout cost
  /// twice); the caller must RebuildMatrix() before touching it.
  ApplyStats ApplyNormalized(std::span<const EdgeOp> ops,
                             bool patch_matrix = true);

  /// Normalize + ApplyNormalized in one call.
  ApplyStats Apply(const EdgeDelta& delta);

  /// Immutable snapshot for the CPU cross-checks.
  [[nodiscard]] graph::Graph ToGraph() const;

  /// Re-slices the matrix from scratch from the live adjacency (the
  /// recount path; also the reference the patch tests diff against).
  void RebuildMatrix();

 private:
  /// Total-order key of vertex v under the configured orientation.
  /// Arcs run low key -> high key.
  [[nodiscard]] std::pair<std::uint64_t, graph::VertexId> Key(
      graph::VertexId v) const {
    return {orientation_ == graph::Orientation::kDegree
                ? static_cast<std::uint64_t>(adj_[v].size())
                : 0,
            v};
  }

  graph::Orientation orientation_;
  std::uint32_t slice_bits_;
  graph::VertexId n_ = 0;
  std::uint64_t m_ = 0;
  std::vector<std::vector<graph::VertexId>> adj_;  ///< sorted per vertex
  bit::SlicedMatrix matrix_;
};

}  // namespace tcim::stream
