#include "stream/edge_delta.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace tcim::stream {

std::vector<EdgeDelta> ReadDeltaStream(std::istream& in) {
  std::vector<EdgeDelta> batches;
  EdgeDelta current;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Trim leading whitespace; skip blanks and comments.
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    const char head = line[start];
    if (head == '#' || head == '%') continue;
    if (head == '=') {
      batches.push_back(std::move(current));
      current = EdgeDelta{};
      continue;
    }
    if (head != '+' && head != '-') {
      throw std::runtime_error("delta line " + std::to_string(line_no) +
                               ": expected '+', '-', '=' or comment");
    }
    std::istringstream fields(line.substr(start + 1));
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("delta line " + std::to_string(line_no) +
                               ": expected two vertex ids");
    }
    // Reject ids that do not fit VertexId instead of silently
    // truncating to a different vertex (istream also wraps negative
    // input into huge unsigned values — caught here too).
    constexpr std::uint64_t kMaxId =
        std::numeric_limits<graph::VertexId>::max();
    if (u > kMaxId || v > kMaxId) {
      throw std::runtime_error("delta line " + std::to_string(line_no) +
                               ": vertex id out of 32-bit range");
    }
    current.ops.push_back(EdgeOp{static_cast<graph::VertexId>(u),
                                 static_cast<graph::VertexId>(v),
                                 head == '+'});
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

std::vector<EdgeDelta> ReadDeltaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open delta file: " + path);
  }
  return ReadDeltaStream(in);
}

void WriteDeltaStream(std::span<const EdgeDelta> batches, std::ostream& out) {
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (const EdgeOp& op : batches[b].ops) {
      out << (op.insert ? '+' : '-') << ' ' << op.u << ' ' << op.v << '\n';
    }
    if (b + 1 < batches.size()) out << "=\n";
  }
}

}  // namespace tcim::stream
