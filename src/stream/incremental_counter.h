// Exact incremental triangle counting over the live sliced bit-matrix.
//
// The paper counts triangles on a static snapshot; under an edge
// stream a full re-slice + recount per update wastes exactly the cost
// the related work (Asquini et al.; Wang et al., journal version)
// identifies as dominant: data layout and movement, not the bitwise
// kernel. IncrementalCounter instead maintains the count across
// EdgeDelta batches by measuring only the wedges each changed edge
// closes or opens:
//
//   T(G +/- e) - T(G) = +/- |N(u) ∩ N(v)|   for e = {u, v}
//
// evaluated with the §5 AND/popcount kernel over the *touched rows and
// columns only*: in an oriented matrix N(u) splits into row_u (out)
// and col_u (in), so the common-neighbour count is the sum of four
// sliced AND-popcounts — row/row, row/col, col/row, col/col. Batches
// are processed sequentially (op k sees the graph after ops 0..k-1)
// which makes the delta exact for arbitrary batch composition; the
// matrix itself is patched once per batch, so per-op state is carried
// by a small overlay whose membership corrections are O(batch) per op
// (see docs/STREAMING.md for the derivation and a worked example).
//
// A cost model guards the incremental path: when the batch touches
// more than recount_fraction of the current edges, patch-and-rescan
// loses to a fresh slice + full Eq. (5) pass, and ApplyBatch falls
// back to exactly that (stats.used_recount reports it).
//
// Layer: §11 stream — see docs/ARCHITECTURE.md and docs/STREAMING.md.
#pragma once

#include <cstdint>

#include "bitmatrix/kernel_backend.h"
#include "bitmatrix/popcount.h"
#include "bitmatrix/sliced_matrix.h"
#include "graph/graph.h"
#include "graph/orientation.h"
#include "stream/dynamic_graph.h"
#include "stream/edge_delta.h"

namespace tcim::stream {

struct StreamConfig {
  /// Matrix orientation maintained under updates. kUpper never flips
  /// arcs; kDegree re-orients affected vertices to keep out-degrees
  /// low; kFullSymmetric stores both directions (6x bitcounts).
  graph::Orientation orientation = graph::Orientation::kUpper;
  std::uint32_t slice_bits = 64;
  /// Incremental-vs-recount threshold: when a batch's normalized op
  /// count exceeds this fraction of the current edge count, ApplyBatch
  /// re-slices and recounts instead of patching (the incremental
  /// path's per-op overlay corrections are O(batch), so total batch
  /// cost grows quadratically while recount cost is flat). The
  /// bench/scaling_stream sweep puts the measured crossover near
  /// 0.5–1% of edges on the Table II stand-ins, hence the 1% default.
  double recount_fraction = 0.01;
  /// Strategy for the 4-way AND-popcount kernel and recount passes; at
  /// the default (kBuiltin) every slice AND runs on the active SIMD
  /// kernel backend (bit::ActiveBackend, forceable via TCIM_KERNEL).
  bit::PopcountKind popcount = bit::PopcountKind::kBuiltin;
};

/// Per-batch accounting (the streaming analogue of arch::ExecStats;
/// runtime::StreamAggregate folds it into merged ExecStats).
struct BatchStats {
  std::uint64_t ops_submitted = 0;
  std::uint64_t ops_dropped = 0;  ///< self-loops, duplicates, absent deletes
  ApplyStats applied;             ///< net inserts/deletes/flips + patches
  std::uint64_t and_ops = 0;      ///< slice ANDs issued by the wedge kernel
  /// Adaptive-policy routing of those ANDs: which kernel path consumed
  /// each wedge (kernel_backend.h, PairPolicy). Zero under the
  /// hardware-model kinds and on recount batches (the recount pass
  /// reports through ExecStats of the full count, not here).
  bit::PairPathCounters paths;
  std::uint64_t probe_checks = 0; ///< overlay membership corrections
  bool used_recount = false;
  double host_seconds = 0.0;
};

/// Outcome of one ApplyBatch.
struct BatchResult {
  std::int64_t delta = 0;        ///< triangle-count change of this batch
  std::uint64_t triangles = 0;   ///< new total
  BatchStats stats;
};

class IncrementalCounter {
 public:
  explicit IncrementalCounter(const graph::Graph& g, StreamConfig config = {});

  /// Applies one batch and returns the exact new count. Exactness is
  /// the contract: `triangles` equals a from-scratch recount of the
  /// post-batch graph for every batch (the property tests sweep this
  /// against baseline::cpu_tc on every generator family).
  BatchResult ApplyBatch(const EdgeDelta& delta);

  [[nodiscard]] std::uint64_t triangles() const noexcept { return triangles_; }
  [[nodiscard]] const DynamicGraph& graph() const noexcept { return graph_; }
  [[nodiscard]] const StreamConfig& config() const noexcept {
    return config_;
  }

 private:
  /// |N(u) ∩ N(v)| against the pre-batch matrix (zero for vertices
  /// beyond its universe). At the default kBuiltin the four store
  /// combinations are gathered as zero-copy descriptors and the whole
  /// wedge routes through the adaptive pair policy (kernel_backend.h)
  /// with one dispatch resolution instead of four per-pair sweeps.
  /// `stats` (when non-null) accumulates and_ops + per-path routing.
  [[nodiscard]] std::uint64_t MatrixCommonNeighbors(
      graph::VertexId u, graph::VertexId v, BatchStats* stats) const;

  StreamConfig config_;
  DynamicGraph graph_;
  std::uint64_t triangles_ = 0;
  /// Gather scratch of the 4-way wedge kernel, reused across ops of a
  /// batch. mutable: MatrixCommonNeighbors is logically const; the
  /// class is single-writer (ApplyBatch is not thread-safe) already.
  mutable std::vector<bit::PairRef> wedge_refs_;
  mutable bit::PairArena wedge_arena_;
};

}  // namespace tcim::stream
