#include "stream/incremental_counter.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "bitmatrix/sliced_store.h"
#include "util/timer.h"

namespace tcim::stream {

namespace {

using graph::VertexId;

}  // namespace

IncrementalCounter::IncrementalCounter(const graph::Graph& g,
                                       StreamConfig config)
    : config_(config), graph_(g, config.orientation, config.slice_bits) {
  if (config_.recount_fraction < 0.0) {
    throw std::invalid_argument(
        "IncrementalCounter: recount_fraction must be >= 0");
  }
  triangles_ = graph_.matrix().AndPopcountAllEdges(config_.popcount) /
               graph::CountMultiplier(config_.orientation);
}

std::uint64_t IncrementalCounter::MatrixCommonNeighbors(
    VertexId u, VertexId v, BatchStats* stats) const {
  const bit::SlicedMatrix& m = graph_.matrix();
  if (u >= m.num_vertices() || v >= m.num_vertices()) return 0;
  const bit::SlicedStore& rows = m.rows();
  const bit::SlicedStore& cols = m.cols();
  std::uint64_t* const and_ops = stats != nullptr ? &stats->and_ops : nullptr;
  const bool symmetric =
      config_.orientation == graph::Orientation::kFullSymmetric;
  if (config_.popcount != bit::PopcountKind::kBuiltin) {
    // Hardware-model strategies keep the exact per-pair evaluation.
    if (symmetric) {
      // row_u is the whole neighbourhood: one AND covers it.
      return bit::AndPopcountVectors(rows, u, rows, v, config_.popcount,
                                     and_ops);
    }
    return bit::AndPopcountVectors(rows, u, rows, v, config_.popcount,
                                   and_ops) +
           bit::AndPopcountVectors(rows, u, cols, v, config_.popcount,
                                   and_ops) +
           bit::AndPopcountVectors(cols, u, rows, v, config_.popcount,
                                   and_ops) +
           bit::AndPopcountVectors(cols, u, cols, v, config_.popcount,
                                   and_ops);
  }
  // Adaptive host path. N(u) = row_u (out) ⊎ col_u (in): the common
  // neighbourhood is the disjoint sum of the four store combinations
  // (just row/row when full-symmetric), so all four gather as
  // zero-copy descriptors and the whole wedge routes through the
  // policy-chosen kernel path with one dispatch resolution.
  wedge_refs_.clear();
  std::size_t matched = bit::GatherValidPairRefs(rows, u, rows, v,
                                                 wedge_refs_);
  if (!symmetric) {
    matched += bit::GatherValidPairRefs(rows, u, cols, v, wedge_refs_);
    matched += bit::GatherValidPairRefs(cols, u, rows, v, wedge_refs_);
    matched += bit::GatherValidPairRefs(cols, u, cols, v, wedge_refs_);
  }
  if (and_ops != nullptr) *and_ops += matched;
  switch (bit::ChoosePairPolicy(m.rows().words_per_slice(),
                                wedge_refs_.size(),
                                bit::ActivePairPolicy())) {
    case bit::PairPolicy::kBatched: {
      wedge_arena_.Clear();
      for (const bit::PairRef& ref : wedge_refs_) {
        wedge_arena_.Push(ref.a, ref.b, ref.words);
      }
      if (stats != nullptr) {
        stats->paths.batched_pairs += matched;
        ++stats->paths.batched_flushes;
      }
      return bit::AndPopcountPairs(wedge_arena_);
    }
    case bit::PairPolicy::kZeroCopy:
      if (stats != nullptr) {
        stats->paths.zero_copy_pairs += matched;
        ++stats->paths.zero_copy_flushes;
      }
      return bit::AndPopcountPairsZeroCopy(wedge_refs_);
    case bit::PairPolicy::kPerPair: {
      std::uint64_t total = 0;
      for (const bit::PairRef& ref : wedge_refs_) {
        total += bit::AndPopcountActive(ref.a, ref.b, ref.words);
      }
      if (stats != nullptr) stats->paths.per_pair_pairs += matched;
      return total;
    }
  }
  return 0;
}

BatchResult IncrementalCounter::ApplyBatch(const EdgeDelta& delta) {
  const util::Timer timer;
  BatchResult result;
  result.stats.ops_submitted = delta.size();

  const std::vector<EdgeOp> ops = graph_.Normalize(delta);
  result.stats.ops_dropped = delta.size() - ops.size();

  const double recount_threshold =
      config_.recount_fraction * static_cast<double>(graph_.num_edges());
  if (static_cast<double>(ops.size()) > recount_threshold) {
    // Cost-model fallback: the batch touches too much of the graph —
    // apply to the adjacency only (patching the matrix first would pay
    // the layout cost twice), then re-slice from scratch and run the
    // full Eq. (5) pass.
    result.stats.used_recount = true;
    result.stats.applied =
        graph_.ApplyNormalized(ops, /*patch_matrix=*/false);
    graph_.RebuildMatrix();
    const std::uint64_t total =
        graph_.matrix().AndPopcountAllEdges(config_.popcount) /
        graph::CountMultiplier(config_.orientation);
    result.delta = static_cast<std::int64_t>(total) -
                   static_cast<std::int64_t>(triangles_);
    triangles_ = total;
    result.triangles = total;
    result.stats.host_seconds = timer.ElapsedSeconds();
    return result;
  }

  // Incremental path. The matrix stays at the pre-batch state S0 while
  // the ops are costed sequentially; state S_k (after ops 0..k-1) is
  // S0 plus the overlay of net membership changes so far.
  //
  // For op k on {u, v}:   cn_k = |N_{S_k}(u) ∩ N_{S_k}(v)|
  //   = base(u, v)                              [4-way AND kernel, S0]
  //   + Σ_{(u,w) in overlay} net(u,w) · mem_{S_k}(v, w)
  //   + Σ_{(v,w) in overlay} net(v,w) · mem_{S0}(u, w)
  // (the asymmetric mixed-state probes come from telescoping
  //  a'b' − ab = (a'−a)b' + a(b'−b); see docs/STREAMING.md), and the
  // batch delta is Σ_k ± cn_k (+ for insert, − for delete).
  struct OverlayEntry {
    VertexId u;
    VertexId v;
    int net;  // mem_{S_k} − mem_{S0} ∈ {−1, 0, +1}
  };
  std::vector<OverlayEntry> overlay;
  std::unordered_map<std::uint64_t, std::size_t> overlay_index;
  const auto overlay_net = [&](VertexId a, VertexId b) {
    const auto it = overlay_index.find(PackEdgeKey(a, b));
    return it != overlay_index.end() ? overlay[it->second].net : 0;
  };
  // Membership in S0 (the graph is not mutated until ApplyNormalized).
  const auto mem_s0 = [&](VertexId a, VertexId b) {
    return graph_.HasEdge(a, b);
  };
  const auto mem_now = [&](VertexId a, VertexId b) {
    const int net = overlay_net(a, b);
    return net != 0 ? net > 0 : mem_s0(a, b);
  };

  std::int64_t delta_sum = 0;
  for (const EdgeOp& op : ops) {
    std::int64_t cn = static_cast<std::int64_t>(
        MatrixCommonNeighbors(op.u, op.v, &result.stats));
    for (const OverlayEntry& entry : overlay) {
      if (entry.net == 0) continue;
      if (entry.u == op.u || entry.v == op.u) {
        const VertexId w = entry.u == op.u ? entry.v : entry.u;
        if (w == op.v) continue;  // the (u,v) pair itself never probes
        cn += entry.net * static_cast<int>(mem_now(op.v, w));
        ++result.stats.probe_checks;
      } else if (entry.u == op.v || entry.v == op.v) {
        const VertexId w = entry.u == op.v ? entry.v : entry.u;
        if (w == op.u) continue;
        cn += entry.net * static_cast<int>(mem_s0(op.u, w));
        ++result.stats.probe_checks;
      }
    }
    delta_sum += op.insert ? cn : -cn;

    const std::uint64_t key = PackEdgeKey(op.u, op.v);
    const auto [it, fresh] = overlay_index.try_emplace(key, overlay.size());
    if (fresh) {
      overlay.push_back(OverlayEntry{op.u, op.v, op.insert ? 1 : -1});
    } else {
      overlay[it->second].net += op.insert ? 1 : -1;
    }
  }

  result.stats.applied = graph_.ApplyNormalized(ops);
  result.delta = delta_sum;
  triangles_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(triangles_) + delta_sum);
  result.triangles = triangles_;
  result.stats.host_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace tcim::stream
