// Edge-update batches for the streaming layer.
//
// Real graphs arrive as edge streams: a social network gains
// friendships (and loses them), a road network opens and closes
// segments. An EdgeDelta is one *batch* of such updates — an ordered
// list of single-edge insert/delete operations — the unit that
// stream::IncrementalCounter applies and counts in one step.
//
// Batch semantics are sequential: ops apply in list order against the
// evolving graph, so a batch may insert and later delete the same edge
// (net no-op), or insert an edge twice (the second op is dropped as a
// duplicate). Endpoints beyond the current vertex count grow the
// graph.
//
// The replay text format (tcim_cli --stream, WriteDeltaStream):
//   # comment                (also '%')
//   + u v                    insert undirected edge {u, v}
//   - u v                    delete undirected edge {u, v}
//   =                        commit the batch, start the next one
// A trailing non-empty batch at EOF is committed implicitly.
//
// Layer: §11 stream — see docs/ARCHITECTURE.md and docs/STREAMING.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/relabel.h"

namespace tcim::stream {

/// One edge operation; `insert == false` means delete.
struct EdgeOp {
  graph::VertexId u = 0;
  graph::VertexId v = 0;
  bool insert = true;
};

/// Order-free key of an undirected pair — the shared map key of the
/// layer's per-batch bookkeeping (DynamicGraph pair states,
/// IncrementalCounter overlay), kept in one place so the encodings
/// cannot drift apart.
[[nodiscard]] constexpr std::uint64_t PackEdgeKey(graph::VertexId u,
                                                  graph::VertexId v) noexcept {
  const graph::VertexId lo = u < v ? u : v;
  const graph::VertexId hi = u < v ? v : u;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// One batch of edge operations, applied in order.
struct EdgeDelta {
  std::vector<EdgeOp> ops;

  void Insert(graph::VertexId u, graph::VertexId v) {
    ops.push_back(EdgeOp{u, v, true});
  }
  void Erase(graph::VertexId u, graph::VertexId v) {
    ops.push_back(EdgeOp{u, v, false});
  }
  [[nodiscard]] bool empty() const noexcept { return ops.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return ops.size(); }
};

/// Parses the replay format (see file comment) into batches. Throws
/// std::runtime_error on an unparsable line.
[[nodiscard]] std::vector<EdgeDelta> ReadDeltaStream(std::istream& in);
[[nodiscard]] std::vector<EdgeDelta> ReadDeltaFile(const std::string& path);

/// Writes batches in the replay format (round-trips through
/// ReadDeltaStream; used by tests and the CLI examples).
void WriteDeltaStream(std::span<const EdgeDelta> batches, std::ostream& out);

/// Rewrites a delta from original vertex ids (the replay file's
/// vocabulary) to internal ids (the relabeled matrix's vocabulary).
/// Originals the map has never seen are assigned fresh internal ids —
/// exactly the growth semantics the un-relabeled path gets from
/// endpoints beyond the current vertex count. The map grows; callers
/// keep it alive for the inverse translation when reporting.
[[nodiscard]] inline EdgeDelta MapToInternal(const EdgeDelta& delta,
                                             graph::VertexRelabeling& map) {
  EdgeDelta mapped;
  mapped.ops.reserve(delta.ops.size());
  for (const EdgeOp& op : delta.ops) {
    mapped.ops.push_back(
        EdgeOp{map.ToInternal(op.u), map.ToInternal(op.v), op.insert});
  }
  return mapped;
}

}  // namespace tcim::stream
