// STT-MRAM reliability models for the computational array — the
// device-level failure mechanisms that bound how aggressively the
// READ/AND sensing of Fig. 1 can be driven (the paper's device
// methodology builds on the radiation/soft-error analysis of [15];
// these are the standard thermal-activation and sense-noise models of
// that literature).
//
// Three mechanisms:
//  * retention — spontaneous thermal switching of an idle cell over
//    time t: P = 1 - exp(-t/tau0 * exp(-Delta));
//  * read disturb — a read/AND current I < Ic lowers the effective
//    barrier to Delta * (1 - I/Ic): repeated sensing can flip the
//    cell;
//  * sense error — Gaussian noise on the bit-line current against the
//    reference margin: P = Q(margin / sigma).
//
// AndBitErrorRate combines them into the per-bit error probability of
// one in-memory AND — the quantity an architecture-level ECC/refresh
// policy would be provisioned against.
//
// Layer: §3 device — see docs/ARCHITECTURE.md. Units: SI; failure
// probabilities in [0, 1]; thermal stability Δ is dimensionless
// (barrier height in units of kT).
#pragma once

#include "device/mtj_device.h"

namespace tcim::device {

/// Thermal attempt time of the macrospin [s] (standard 1 ns).
inline constexpr double kAttemptTime = 1e-9;

/// P(cell flips spontaneously within `seconds`) given stability Delta.
[[nodiscard]] double RetentionFailureProbability(double delta,
                                                 double seconds);

/// P(cell flips during one sensing event of duration `pulse_seconds`
/// at read current `i_read` against critical current `ic`), via the
/// current-lowered barrier Delta_eff = delta * (1 - i_read/ic)^2
/// (Koch/Li-Zhang barrier scaling; exponent 2 is the standard
/// intermediate-regime choice).
[[nodiscard]] double ReadDisturbProbability(double delta, double i_read,
                                            double ic,
                                            double pulse_seconds);

/// P(comparator resolves the wrong side) for a sense margin
/// `margin_amps` under Gaussian bit-line current noise of standard
/// deviation `sigma_amps`: Q(margin/sigma).
[[nodiscard]] double SenseErrorProbability(double margin_amps,
                                           double sigma_amps);

/// Per-bit error probability of one dual-row AND: the sense error at
/// the AND margin plus the disturb probability of the two activated
/// cells (each carrying its read-level current).
struct AndReliability {
  double sense_error = 0.0;
  double disturb_per_cell = 0.0;
  double per_bit_error = 0.0;  ///< combined (union bound)
};
[[nodiscard]] AndReliability AndBitErrorRate(const MtjDevice& device,
                                             double sigma_amps,
                                             double pulse_seconds);

/// Expected absolute error of a TC run that issues `and_ops` slice
/// ANDs of `slice_bits` bits each, at per-bit error rate `ber`
/// (each bit error perturbs the accumulated count by +-1).
[[nodiscard]] double ExpectedCountError(double ber, std::uint64_t and_ops,
                                        std::uint32_t slice_bits);

}  // namespace tcim::device
