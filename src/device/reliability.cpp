#include "device/reliability.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcim::device {

double RetentionFailureProbability(double delta, double seconds) {
  if (delta <= 0 || seconds < 0) {
    throw std::invalid_argument(
        "RetentionFailureProbability: need delta > 0, seconds >= 0");
  }
  const double rate = std::exp(-delta) / kAttemptTime;
  return -std::expm1(-seconds * rate);
}

double ReadDisturbProbability(double delta, double i_read, double ic,
                              double pulse_seconds) {
  if (ic <= 0 || i_read < 0 || pulse_seconds < 0) {
    throw std::invalid_argument(
        "ReadDisturbProbability: non-physical arguments");
  }
  if (i_read >= ic) return 1.0;  // above threshold: deterministic flip
  const double x = 1.0 - i_read / ic;
  const double delta_eff = delta * x * x;
  const double rate = std::exp(-delta_eff) / kAttemptTime;
  return -std::expm1(-pulse_seconds * rate);
}

double SenseErrorProbability(double margin_amps, double sigma_amps) {
  if (sigma_amps <= 0) {
    throw std::invalid_argument("SenseErrorProbability: sigma must be > 0");
  }
  if (margin_amps <= 0) return 0.5;  // no margin: coin flip
  // Q(x) = erfc(x / sqrt 2) / 2.
  return 0.5 * std::erfc(margin_amps / (sigma_amps * std::sqrt(2.0)));
}

AndReliability AndBitErrorRate(const MtjDevice& device, double sigma_amps,
                               double pulse_seconds) {
  const MtjElectrical& e = device.Characterize();
  AndReliability r;
  r.sense_error = SenseErrorProbability(e.and_margin, sigma_amps);
  // Each activated cell conducts at most its read-level current.
  r.disturb_per_cell = ReadDisturbProbability(
      e.thermal_stability, e.i_read_1, e.critical_current, pulse_seconds);
  // Union bound over one sense event + two cell disturbs. Summing
  // (instead of 1 - Π(1-p)) keeps precision when the probabilities are
  // far below double epsilon, and is exact to first order.
  r.per_bit_error =
      std::min(1.0, r.sense_error + 2.0 * r.disturb_per_cell);
  return r;
}

double ExpectedCountError(double ber, std::uint64_t and_ops,
                          std::uint32_t slice_bits) {
  if (ber < 0 || ber > 1) {
    throw std::invalid_argument("ExpectedCountError: ber must be in [0,1]");
  }
  return ber * static_cast<double>(and_ops) *
         static_cast<double>(slice_bits);
}

}  // namespace tcim::device
