// MTJ cell electrical characterization — the device-level scalars the
// NVSim-style array model consumes (paper §V-A: "After getting the
// device level simulation results, we integrate the parameters in the
// open-source NVSim simulator").
//
// Combines the Brinkman bias-dependent resistance with the LLG
// switching transient, through the 1T1R cell series path (access
// transistor + MTJ). Logic convention throughout the stack: bit '1' is
// the parallel (low-resistance, high-current) state.
//
// The computational READ/AND sensing follows Fig. 1/Fig. 4 of the
// paper: for AND, two word lines are activated and the summed bit-line
// current is compared against a reference placed between the (P,P) and
// (P,AP) levels — equivalently R_ref-AND in (R_P-P, R_P-AP).
//
// Layer: §3 device — see docs/ARCHITECTURE.md. Units: SI throughout
// (ohms, amperes, volts, seconds, joules; see util/units.h).
#pragma once

#include "device/brinkman.h"
#include "device/llg.h"
#include "device/mtj_params.h"

namespace tcim::device {

/// All electrical scalars of one characterized MTJ cell.
struct MtjElectrical {
  // Resistances at the read operating point [Ohm].
  double r_p = 0.0;
  double r_ap = 0.0;

  // Single-cell READ: bit-line currents and sensing [A].
  double i_read_1 = 0.0;  ///< cell stores '1' (P)
  double i_read_0 = 0.0;  ///< cell stores '0' (AP)
  double read_reference = 0.0;
  double read_margin = 0.0;  ///< min distance of a level to the reference

  // Two-cell AND (double word-line activation) [A].
  double i_and_11 = 0.0;
  double i_and_10 = 0.0;
  double i_and_00 = 0.0;
  double and_reference = 0.0;
  double and_margin = 0.0;

  // WRITE path.
  double write_current = 0.0;    ///< worst-case (smaller) polarity [A]
  double switching_time = 0.0;   ///< LLG transient at write_current [s]
  double write_energy_bit = 0.0; ///< V_write * I * t_switch [J]

  // Context.
  double critical_current = 0.0;
  double thermal_stability = 0.0;
};

/// Facade over BrinkmanModel + LlgSolver.
class MtjDevice {
 public:
  explicit MtjDevice(const MtjParams& params);

  [[nodiscard]] const MtjParams& params() const noexcept { return params_; }
  [[nodiscard]] const BrinkmanModel& brinkman() const noexcept {
    return brinkman_;
  }
  [[nodiscard]] const LlgSolver& llg() const noexcept { return llg_; }

  /// Cell current when `cell_voltage` is applied across the series
  /// access-transistor + MTJ path; the MTJ bias is solved
  /// self-consistently against the Brinkman R(V).
  [[nodiscard]] double CellCurrent(MtjState state,
                                   double cell_voltage) const;

  /// Full characterization (computed once, cached).
  [[nodiscard]] const MtjElectrical& Characterize() const;

 private:
  MtjParams params_;
  BrinkmanModel brinkman_;
  LlgSolver llg_;
  mutable bool cached_ = false;
  mutable MtjElectrical electrical_;
};

}  // namespace tcim::device
