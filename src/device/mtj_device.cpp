#include "device/mtj_device.h"

#include <algorithm>
#include <cmath>

namespace tcim::device {

MtjDevice::MtjDevice(const MtjParams& params)
    : params_(params), brinkman_(params), llg_(params) {}

double MtjDevice::CellCurrent(MtjState state, double cell_voltage) const {
  // Voltage divider between the access transistor and the
  // bias-dependent MTJ; a few fixed-point iterations converge because
  // R(V) varies slowly within one step.
  double v_mtj = cell_voltage * 0.5;
  for (int iter = 0; iter < 8; ++iter) {
    const double r_mtj = brinkman_.Resistance(state, v_mtj);
    v_mtj = cell_voltage * r_mtj / (r_mtj + params_.access_resistance);
  }
  const double r_mtj = brinkman_.Resistance(state, v_mtj);
  return cell_voltage / (r_mtj + params_.access_resistance);
}

const MtjElectrical& MtjDevice::Characterize() const {
  if (cached_) return electrical_;
  MtjElectrical e;

  const double vr = params_.read_voltage;
  e.r_p = brinkman_.Resistance(MtjState::kParallel, vr);
  e.r_ap = brinkman_.Resistance(MtjState::kAntiParallel, vr);

  // Single-cell READ levels ('1' = P = high current).
  e.i_read_1 = CellCurrent(MtjState::kParallel, vr);
  e.i_read_0 = CellCurrent(MtjState::kAntiParallel, vr);
  e.read_reference = 0.5 * (e.i_read_1 + e.i_read_0);
  e.read_margin = 0.5 * (e.i_read_1 - e.i_read_0);

  // Two-cell AND levels: both word lines enabled, currents sum on the
  // bit line (each cell sees the same read voltage through its own
  // access device, Fig. 1 right).
  e.i_and_11 = 2.0 * e.i_read_1;
  e.i_and_10 = e.i_read_1 + e.i_read_0;
  e.i_and_00 = 2.0 * e.i_read_0;
  e.and_reference = 0.5 * (e.i_and_11 + e.i_and_10);
  e.and_margin =
      std::min(e.i_and_11 - e.and_reference, e.and_reference - e.i_and_10);

  // WRITE: worst-case polarity is writing toward AP (higher path
  // resistance, smaller current).
  const double i_to_ap =
      CellCurrent(MtjState::kAntiParallel, params_.write_voltage);
  const double i_to_p =
      CellCurrent(MtjState::kParallel, params_.write_voltage);
  e.write_current = std::min(i_to_ap, i_to_p);

  const LlgResult sw = llg_.SimulateSwitching(e.write_current);
  // A non-switching write current would make the whole design invalid;
  // surface it loudly instead of silently producing zero time.
  e.switching_time = sw.switched ? sw.switching_time : -1.0;
  e.write_energy_bit = sw.switched ? params_.write_voltage * e.write_current *
                                         sw.switching_time
                                   : -1.0;

  e.critical_current = llg_.CriticalCurrent();
  e.thermal_stability = llg_.ThermalStability();

  electrical_ = e;
  cached_ = true;
  return electrical_;
}

}  // namespace tcim::device
