#include "device/mtj_params.h"

#include <stdexcept>

namespace tcim::device {

void MtjParams::Validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("MtjParams: ") + what);
    }
  };
  check(surface_length > 0 && surface_width > 0, "surface must be positive");
  check(resistance_area_product > 0, "RA must be positive");
  check(oxide_thickness > 0, "oxide thickness must be positive");
  check(tmr > 0, "TMR must be positive");
  check(saturation_magnetization > 0, "Ms must be positive");
  check(gilbert_damping > 0 && gilbert_damping < 1, "alpha must be in (0,1)");
  check(anisotropy_field > 0, "Hk must be positive");
  check(temperature > 0, "temperature must be positive");
  check(free_layer_thickness > 0, "free layer thickness must be positive");
  check(spin_polarization > 0 && spin_polarization <= 1,
        "polarization must be in (0,1]");
  check(barrier_height_ev > 0, "barrier height must be positive");
  check(read_voltage > 0 && write_voltage > read_voltage,
        "need 0 < V_read < V_write");
}

MtjParams PaperMtjParams() noexcept { return MtjParams{}; }

}  // namespace tcim::device
