// Brinkman tunneling model (Brinkman, Dynes & Rowell 1970) for the MTJ
// barrier, as used by the paper's device-level characterization
// ("we jointly use the Brinkman model and LLG equation", §V-A).
//
// The model gives the bias-dependent conductance of a trapezoidal
// tunnel barrier:
//   G(V)/G(0) = 1 - (A0 * dphi / (16 * phi^1.5)) * eV
//               + (9/128) * A0^2 / phi * (eV)^2
// with A0 = 4 * sqrt(2m) * d / (3 hbar) (d = barrier thickness, phi =
// mean barrier height, dphi = barrier asymmetry). We use a symmetric
// barrier (dphi = 0) so only the quadratic term survives, and
// normalize G(0) to the measured RA product at each magnetic state.
// The TMR itself rolls off with bias through the standard
// phenomenological TMR(V) = TMR0 / (1 + (V/Vh)^2).
//
// Layer: §3 device — see docs/ARCHITECTURE.md. Units: SI throughout
// (volts, ohms, meters, joules; see util/units.h).
#pragma once

#include "device/mtj_params.h"

namespace tcim::device {

/// Magnetic state of the junction.
enum class MtjState : int { kParallel = 0, kAntiParallel = 1 };

class BrinkmanModel {
 public:
  explicit BrinkmanModel(const MtjParams& params);

  /// Zero-bias resistance of the given state [Ohm]:
  /// R_P = RA / area, R_AP = R_P * (1 + TMR).
  [[nodiscard]] double ZeroBiasResistance(MtjState state) const noexcept;

  /// Bias-dependent resistance [Ohm] at voltage v across the junction.
  /// Monotonically decreasing in |v| (barrier transmission grows).
  [[nodiscard]] double Resistance(MtjState state, double v) const noexcept;

  /// Bias-dependent conductance [S].
  [[nodiscard]] double Conductance(MtjState state, double v) const noexcept {
    return 1.0 / Resistance(state, v);
  }

  /// Current through the junction at bias v [A].
  [[nodiscard]] double Current(MtjState state, double v) const noexcept {
    return v * Conductance(state, v);
  }

  /// Effective TMR at bias v (rolls off with |v|).
  [[nodiscard]] double TmrAtBias(double v) const noexcept;

  /// The dimensionless quadratic Brinkman coefficient
  /// (9/128) * A0^2 / phi in 1/V^2; exposed for tests.
  [[nodiscard]] double QuadraticCoefficient() const noexcept {
    return quad_coeff_;
  }

 private:
  MtjParams params_;
  double r_p0_;        // zero-bias parallel resistance
  double quad_coeff_;  // (9/128) A0^2 / phi  [1/V^2]
};

}  // namespace tcim::device
