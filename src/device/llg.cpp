#include "device/llg.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.h"

namespace tcim::device {
namespace {

using Vec3 = std::array<double, 3>;

constexpr Vec3 Cross(const Vec3& a, const Vec3& b) noexcept {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

void Normalize(Vec3& v) noexcept {
  const double n = std::sqrt(v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
  if (n > 0) {
    v[0] /= n;
    v[1] /= n;
    v[2] /= n;
  }
}

}  // namespace

LlgSolver::LlgSolver(const MtjParams& params) : params_(params) {
  params_.Validate();
}

double LlgSolver::ThermalStability() const noexcept {
  const double barrier = util::kMu0 * params_.saturation_magnetization *
                         params_.anisotropy_field * params_.Volume() / 2.0;
  return barrier / (util::kBoltzmann * params_.temperature);
}

double LlgSolver::InitialTiltAngle() const noexcept {
  return std::sqrt(1.0 / (2.0 * ThermalStability()));
}

double LlgSolver::CriticalCurrentDensity() const noexcept {
  // PMA macrospin instability threshold: the linearized LLGS around
  // +z loses stability when the spin-torque field aj exceeds
  // alpha * Hk, i.e. Jc0 = (2e/hbar) (alpha/P) mu0 Ms t_f Hk
  // (equivalently the often-quoted (4e/hbar)(alpha/P) mu0 Ms t_f Hk/2).
  return (2.0 * util::kElectronCharge / util::kHbar) *
         (params_.gilbert_damping / params_.spin_polarization) * util::kMu0 *
         params_.saturation_magnetization * params_.free_layer_thickness *
         params_.anisotropy_field;
}

double LlgSolver::CriticalCurrent() const noexcept {
  return CriticalCurrentDensity() * params_.Area();
}

std::array<double, 3> LlgSolver::Derivative(const Vec3& m,
                                            double aj) const noexcept {
  const double alpha = params_.gilbert_damping;
  const double g = util::kGyromagneticRatio * util::kMu0 /
                   (1.0 + alpha * alpha);
  // Effective field: perpendicular anisotropy only (Hk is the *net*
  // out-of-plane field, demag already folded in per Table I).
  const Vec3 h = {0.0, 0.0, params_.anisotropy_field * m[2]};
  const Vec3 p = {0.0, 0.0, 1.0};  // fixed layer along +z

  const Vec3 mxh = Cross(m, h);
  const Vec3 mxmxh = Cross(m, mxh);
  const Vec3 mxp = Cross(m, p);
  const Vec3 mxmxp = Cross(m, mxp);

  // Anti-damping sign convention: positive current opposes the Gilbert
  // damping around the +z pole, i.e. [m x (m x p)]_z = -sin^2(theta)
  // enters with +g*aj so that it pulls m_z downward (switching).
  Vec3 dm;
  for (int i = 0; i < 3; ++i) {
    dm[i] = -g * (mxh[i] + alpha * mxmxh[i]) +
            g * aj * (mxmxp[i] + alpha * mxp[i]);
  }
  return dm;
}

LlgResult LlgSolver::SimulateSwitching(double current_amps, double max_time,
                                       double dt) const {
  if (dt <= 0 || max_time <= 0) {
    throw std::invalid_argument("LlgSolver: dt and max_time must be positive");
  }
  const double j = current_amps / params_.Area();
  // Spin-torque field aj = hbar J P / (2 e mu0 Ms t_f)  [A/m].
  const double aj = util::kHbar * j * params_.spin_polarization /
                    (2.0 * util::kElectronCharge * util::kMu0 *
                     params_.saturation_magnetization *
                     params_.free_layer_thickness);

  const double theta0 = InitialTiltAngle();
  Vec3 m = {std::sin(theta0), 0.0, std::cos(theta0)};

  LlgResult result;
  const auto max_steps = static_cast<std::uint64_t>(max_time / dt);
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    // Classic RK4 with renormalization (the ODE preserves |m| exactly;
    // renormalization removes integration drift).
    const Vec3 k1 = Derivative(m, aj);
    Vec3 m2;
    for (int i = 0; i < 3; ++i) m2[i] = m[i] + 0.5 * dt * k1[i];
    const Vec3 k2 = Derivative(m2, aj);
    Vec3 m3;
    for (int i = 0; i < 3; ++i) m3[i] = m[i] + 0.5 * dt * k2[i];
    const Vec3 k3 = Derivative(m3, aj);
    Vec3 m4;
    for (int i = 0; i < 3; ++i) m4[i] = m[i] + dt * k3[i];
    const Vec3 k4 = Derivative(m4, aj);
    for (int i = 0; i < 3; ++i) {
      m[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    Normalize(m);
    result.steps = step + 1;
    if (m[2] < -0.9) {
      result.switched = true;
      result.switching_time = static_cast<double>(step + 1) * dt;
      break;
    }
  }
  result.final_mz = m[2];
  return result;
}

double LlgSolver::CurrentForSwitchingTime(double target_seconds) const {
  const double ic0 = CriticalCurrent();
  double lo = 1.05 * ic0;
  double hi = 32.0 * ic0;
  const auto time_at = [&](double current) {
    const LlgResult r = SimulateSwitching(
        current, /*max_time=*/std::max(8.0 * target_seconds, 20e-9));
    return r.switched ? r.switching_time
                      : std::numeric_limits<double>::infinity();
  };
  if (time_at(hi) > target_seconds) {
    throw std::runtime_error(
        "LlgSolver: switching-time target unreachable below 32*Ic0");
  }
  for (int iter = 0; iter < 48; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (time_at(mid) <= target_seconds) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace tcim::device
