// MTJ device parameters — paper Table I, verbatim, plus the handful of
// quantities any compact model additionally needs (free-layer
// thickness, spin polarization, barrier height) with documented
// defaults taken from the literature the paper builds on ([8][15]).
//
// All values SI.
//
// Layer: §3 device — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

namespace tcim::device {

struct MtjParams {
  // --- Table I, verbatim ---------------------------------------------------
  double surface_length = 40e-9;        ///< MTJ surface length [m]
  double surface_width = 40e-9;         ///< MTJ surface width [m]
  double spin_hall_angle = 0.3;         ///< SHE efficiency (SOT-assist)
  double resistance_area_product = 1e-12;  ///< RA [Ohm * m^2]
  double oxide_thickness = 0.82e-9;     ///< MgO barrier thickness [m]
  double tmr = 1.0;                     ///< TMR ratio (100%)
  double saturation_magnetization = 1e6;  ///< Ms [A/m]
  double gilbert_damping = 0.03;        ///< alpha
  double anisotropy_field = 4.5e5;      ///< Hk (perpendicular) [A/m]
  double temperature = 300.0;           ///< T [K]

  // --- standard complements (not in Table I; see file comment) -------------
  double free_layer_thickness = 1.0e-9;  ///< t_f [m]
  double spin_polarization = 0.6;        ///< P of the fixed layer
  /// Effective MgO barrier height from Brinkman fits of CoFeB/MgO
  /// junctions (~1.1-1.3 eV in the literature).
  double barrier_height_ev = 1.2;
  /// Phenomenological TMR(V) roll-off: TMR(V) = TMR0 / (1 + (V/V_h)^2).
  double tmr_rolloff_volts = 0.5;

  // --- operating points -----------------------------------------------------
  double read_voltage = 0.1;   ///< V_read across BL-SL [V]
  double write_voltage = 0.6;  ///< V_write across BL-SL [V]
  /// On-resistance of the 1T access transistor in series with the MTJ
  /// (45nm-class, near-minimum width). Limits the cell current.
  double access_resistance = 1.5e3;

  /// Junction area [m^2] (rectangular cell, as Table I implies 40x40).
  [[nodiscard]] double Area() const noexcept {
    return surface_length * surface_width;
  }
  /// Free layer volume [m^3].
  [[nodiscard]] double Volume() const noexcept {
    return Area() * free_layer_thickness;
  }

  /// Throws std::invalid_argument if any parameter is non-physical.
  void Validate() const;
};

/// The exact Table I configuration.
[[nodiscard]] MtjParams PaperMtjParams() noexcept;

}  // namespace tcim::device
