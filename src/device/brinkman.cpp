#include "device/brinkman.h"

#include <cmath>

#include "util/units.h"

namespace tcim::device {
namespace {
/// Free electron mass [kg].
constexpr double kElectronMass = 9.1093837015e-31;
}  // namespace

BrinkmanModel::BrinkmanModel(const MtjParams& params) : params_(params) {
  params_.Validate();
  r_p0_ = params_.resistance_area_product / params_.Area();

  // Dimensionless barrier strength a0 = 4 d sqrt(2 m phi) / (3 hbar);
  // with it the symmetric-barrier Brinkman expansion reads
  //   G(V)/G(0) = 1 + (9/128) a0^2 (eV/phi)^2,
  // so the coefficient of V^2 is (9/128) a0^2 / phi_eV^2.
  const double phi_j = params_.barrier_height_ev * util::kElectronCharge;
  const double d = params_.oxide_thickness;
  const double a0 =
      4.0 * d * std::sqrt(2.0 * kElectronMass * phi_j) / (3.0 * util::kHbar);
  quad_coeff_ = 9.0 / 128.0 * a0 * a0 /
                (params_.barrier_height_ev * params_.barrier_height_ev);
}

double BrinkmanModel::ZeroBiasResistance(MtjState state) const noexcept {
  return state == MtjState::kParallel ? r_p0_ : r_p0_ * (1.0 + params_.tmr);
}

double BrinkmanModel::TmrAtBias(double v) const noexcept {
  const double x = v / params_.tmr_rolloff_volts;
  return params_.tmr / (1.0 + x * x);
}

double BrinkmanModel::Resistance(MtjState state, double v) const noexcept {
  // Conductance enhancement from the quadratic Brinkman term.
  const double g_factor = 1.0 + quad_coeff_ * v * v;
  const double r_p = r_p0_ / g_factor;
  if (state == MtjState::kParallel) {
    return r_p;
  }
  // AP resistance additionally shrinks through the TMR roll-off.
  return r_p * (1.0 + TmrAtBias(v));
}

}  // namespace tcim::device
