// Macrospin Landau-Lifshitz-Gilbert(-Slonczewski) transient solver —
// the second half of the paper's device model ("we jointly use the
// Brinkman model and Landau-Lifshitz-Gilbert (LLG) equation to
// characterize MTJ", §V-A, citing [15]).
//
// The free layer is a single macrospin m (|m| = 1) with a perpendicular
// effective anisotropy field Hk m_z z_hat (Table I), damped by the
// Gilbert term (alpha) and driven by the Slonczewski spin-transfer
// torque of the write current. The explicit (Landau-Lifshitz) form
// integrated with RK4:
//
//   dm/dt = -g/(1+a^2) [ m x H + a m x (m x H) ]
//           -g/(1+a^2) [ aj m x (m x p) - a * aj m x p ]
//
// with g = gamma * mu0, aj = hbar J P / (2 e mu0 Ms t_f) the
// spin-torque field [A/m], and p the fixed-layer polarization (+z).
// Positive current destabilizes +z (P -> AP direction by convention;
// the magnitude symmetry is what the array model consumes).
//
// Layer: §3 device — see docs/ARCHITECTURE.md. Units: SI throughout
// (seconds, amperes, tesla; see util/units.h).
#pragma once

#include <array>
#include <cstdint>

#include "device/mtj_params.h"

namespace tcim::device {

/// Outcome of a transient switching simulation.
struct LlgResult {
  bool switched = false;
  double switching_time = -1.0;  ///< first crossing of m_z = -0.9 [s]
  double final_mz = 1.0;
  std::uint64_t steps = 0;
};

class LlgSolver {
 public:
  explicit LlgSolver(const MtjParams& params);

  /// Thermal stability factor Delta = E_b / kT with
  /// E_b = mu0 Ms Hk V / 2 (uniaxial barrier).
  [[nodiscard]] double ThermalStability() const noexcept;

  /// Typical thermal initial tilt theta_0 = sqrt(1 / (2 Delta)) from
  /// equipartition; the transient starts from this angle (a macrospin
  /// at exactly m_z = 1 never switches — zero torque).
  [[nodiscard]] double InitialTiltAngle() const noexcept;

  /// Analytic zero-temperature critical switching current for the PMA
  /// macrospin: Ic0 = (2e/hbar) (alpha/P) mu0 Ms t_f Hk * Area [A].
  [[nodiscard]] double CriticalCurrent() const noexcept;
  [[nodiscard]] double CriticalCurrentDensity() const noexcept;

  /// Integrates the LLGS equation under constant current [A] until the
  /// macrospin crosses m_z = -0.9 or max_time elapses.
  [[nodiscard]] LlgResult SimulateSwitching(double current_amps,
                                            double max_time = 50e-9,
                                            double dt = 1e-12) const;

  /// Smallest current whose simulated switching time is <= target
  /// (bisection over [1.05*Ic0, 32*Ic0]); throws std::runtime_error if
  /// the target is unreachable in that range.
  [[nodiscard]] double CurrentForSwitchingTime(double target_seconds) const;

 private:
  /// dm/dt at state m under spin-torque field aj.
  [[nodiscard]] std::array<double, 3> Derivative(
      const std::array<double, 3>& m, double aj) const noexcept;

  MtjParams params_;
};

}  // namespace tcim::device
