// Process-wide metrics registry: named counters, gauges, and
// log2-bucketed histograms with a lock-free record path.
//
// Design contract (docs/OBSERVABILITY.md has the operator view):
//   - Recording is wait-free: every metric is a handful of relaxed
//     atomics. No locks, no allocation, no syscalls on the hot path.
//   - Metric objects are created once (registry mutex held only at
//     first lookup) and never destroyed, so call sites cache a
//     reference in a function-local static and pay one map lookup per
//     process lifetime.
//   - Histograms bucket values into log2 octaves subdivided into
//     kSubBuckets linear sub-buckets (HDR style), so percentiles
//     computed at scrape time carry a bounded relative error of
//     1/(2*kSubBuckets) while count/sum/min/max stay exact.
//   - Scrapes (Snapshot / WriteJson / WriteText) read the atomics
//     without stopping writers; a snapshot is per-metric consistent,
//     not globally consistent, which is fine for monitoring.
//
// This layer sits below bitmatrix/stream/runtime and depends only on
// the standard library.
//
// Layer: §14 obs — see docs/ARCHITECTURE.md. Units: histogram values
// are whatever the call site records (the name suffix says — seconds,
// bytes, counts); registry math never converts.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tcim::obs {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Add(std::uint64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() noexcept { Add(1); }
  std::uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins floating point level (queue depth, bytes, ratios).
class Gauge {
 public:
  void Set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  double Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-octave histogram over non-negative doubles (seconds, bytes,
// counts). Values below 2^kMinExponent land in a dedicated underflow
// bucket whose representative is 0; values at or above 2^kMaxExponent
// clamp into the top bucket.
class Histogram {
 public:
  static constexpr int kMinExponent = -34;  // ~58 ps when recording seconds
  static constexpr int kMaxExponent = 6;    // 64 s
  static constexpr std::uint32_t kSubBuckets = 64;
  static constexpr std::uint32_t kNumBuckets =
      1 + static_cast<std::uint32_t>(kMaxExponent - kMinExponent) * kSubBuckets;

  Histogram();

  void Observe(double value) noexcept;

  std::uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double Mean() const noexcept;
  double Min() const noexcept;  // 0 when empty
  double Max() const noexcept;  // 0 when empty

  // Nearest-rank percentile over the bucketed distribution: returns
  // the representative (midpoint) of the bucket holding the rank'th
  // smallest sample. Relative error <= 1/(2*kSubBuckets) vs the exact
  // sample. p in [0, 100]; returns 0 when empty.
  double Percentile(double p) const noexcept;

  // Index of the bucket a value falls into — exposed so tests can
  // assert the error bound directly.
  static std::uint32_t BucketIndex(double value) noexcept;
  static double BucketRepresentative(std::uint32_t index) noexcept;

 private:
  std::atomic<std::uint64_t> count_;
  std::atomic<double> sum_;
  std::atomic<double> min_;
  std::atomic<double> max_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
};

struct MetricSample {
  std::string name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  // Counter: value in `count`. Gauge: value in `sum`.
  // Histogram: all fields populated.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

// Process-wide named metric registry. Get* registers on first use and
// returns a reference that stays valid for the process lifetime.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  // Scrape every registered metric, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  // {"meta":{...run metadata...},"counters":{...},"gauges":{...},
  //  "histograms":{name:{count,sum,min,max,p50,p90,p99}}}
  void WriteJson(std::ostream& os) const;

  // Aligned "name value" lines for humans; when `prefix` is non-empty
  // only metrics whose name starts with it are printed.
  void WriteText(std::ostream& os, std::string_view prefix = {}) const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// Run-attribution metadata shared by every dump this process writes
// (metrics JSON, trace files, BENCH_kernels.json): wall-clock UTC
// date, compiler id, and the TCIM_SCALE in effect.
struct RunMetadata {
  std::string date;      // ISO-8601 UTC, e.g. "2026-08-08T12:34:56Z"
  std::string compiler;  // e.g. "gcc 12.2.0"
  double scale = 1.0;    // util::WorkloadScale() equivalent (TCIM_SCALE)
};

RunMetadata CollectRunMetadata();

// The same metadata pre-rendered as JSON object *members* (no braces):
// `"date":"...","compiler":"...","scale":1`
std::string RunMetadataJsonFields();

// Minimal JSON string escaping for metric names / metadata values.
std::string JsonEscape(std::string_view s);

}  // namespace tcim::obs
