// Chrome trace-event span tracing, gated behind TCIM_TRACE.
//
// When TCIM_TRACE=file.json is set (or StartTracing(path) is called),
// TraceSpan/TraceInstant/TraceAsync* record events into a bounded
// per-thread buffer; buffers drain into a process-wide collector when
// full and when their thread exits, and the collector writes a Chrome
// trace-event JSON file ({"traceEvents":[...]}) loadable in Perfetto
// or chrome://tracing. The file is written by StopTracing() and again
// at process exit if new events arrived after the explicit stop — so
// binaries that only set the env var still get a complete capture
// once their worker threads have joined.
//
// When tracing is off, every emit site costs one relaxed atomic load
// and a branch: no clock read, no allocation, no buffer touch.
//
// Name/category arguments must be string literals (or otherwise
// outlive the process): events store the pointers, not copies.
//
// Layer: §14 obs — see docs/ARCHITECTURE.md. Units: timestamps and
// durations are steady-clock nanoseconds since trace start; the
// written JSON converts to Chrome's microseconds at format time.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace tcim::obs {

namespace internal {
extern std::atomic<bool> g_trace_enabled;

struct TraceEvent {
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'X';        // 'X' complete, 'i' instant, 'b'/'e' async
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;  // since trace start
  std::uint64_t dur_ns = 0; // 'X' only
  std::uint64_t id = 0;     // async pairing key
  std::string args;         // pre-rendered JSON members ("k":v,...) or empty
};

void Emit(TraceEvent event) noexcept;
std::uint64_t NowNs() noexcept;
}  // namespace internal

// The one check hot paths pay when tracing is disabled.
inline bool TraceEnabled() noexcept {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Begin capturing to `path`. Idempotent while already tracing (the
// first path wins). Called automatically at static-init time when
// TCIM_TRACE names a file.
void StartTracing(const std::string& path);

// Flush the calling thread's buffer, write the JSON file, and disable
// capture. Safe to call when tracing never started. Buffers of threads
// still alive at this point flush on their exit and are folded into
// the process-exit rewrite of the same file.
void StopTracing();

// Destination path of the active (or last) capture; empty when
// tracing was never started.
std::string TracePath();

// RAII complete event ('X') on the calling thread: [ctor, dtor].
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat) noexcept
      : TraceSpan(name, cat, std::string()) {}
  TraceSpan(const char* name, const char* cat, std::string args) noexcept
      : name_(name), cat_(cat), active_(TraceEnabled()) {
    if (active_) {
      args_ = std::move(args);
      start_ns_ = internal::NowNs();
    }
  }
  ~TraceSpan() {
    if (active_) Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Finish() noexcept;
  const char* name_;
  const char* cat_;
  std::string args_;
  std::uint64_t start_ns_ = 0;
  bool active_;
};

// Zero-duration marker ('i', thread scope).
void TraceInstant(const char* name, const char* cat,
                  std::string args = std::string());

// Async begin/end pair ('b'/'e') keyed by (cat, id): spans that cross
// threads, e.g. a job's submit -> done lifetime.
void TraceAsyncBegin(const char* name, const char* cat, std::uint64_t id,
                     std::string args = std::string());
void TraceAsyncEnd(const char* name, const char* cat, std::uint64_t id,
                   std::string args = std::string());

// Test hooks: copy of everything flushed to the collector so far
// (call after joining emitter threads), and total events dropped by
// the bound. Not part of the operator surface.
std::vector<internal::TraceEvent> TraceSnapshotForTest();
std::uint64_t TraceDroppedForTest();

}  // namespace tcim::obs
