#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::obs {

namespace {

// atomic<double> fetch_add is C++20 but spotty across toolchains —
// spell the CAS loop so every supported compiler takes the same path.
void AtomicAdd(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (value < cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (value > cur && !target.compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

constexpr double kEmptyMin = std::numeric_limits<double>::infinity();
constexpr double kEmptyMax = -std::numeric_limits<double>::infinity();

}  // namespace

Histogram::Histogram()
    : count_(0), sum_(0.0), min_(kEmptyMin), max_(kEmptyMax),
      buckets_(kNumBuckets) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::uint32_t Histogram::BucketIndex(double value) noexcept {
  if (!(value > 0.0) || std::isinf(value)) {
    // <= 0, NaN: underflow bucket. +inf clamps below via kMaxExponent.
    if (std::isinf(value) && value > 0.0) return kNumBuckets - 1;
    return 0;
  }
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  if (exp <= kMinExponent) return 0;
  if (exp > kMaxExponent) return kNumBuckets - 1;
  // Octave [2^(exp-1), 2^exp) split into kSubBuckets linear cells.
  const auto sub = static_cast<std::uint32_t>(
      (mantissa - 0.5) * 2.0 * static_cast<double>(kSubBuckets));
  const auto octave = static_cast<std::uint32_t>(exp - 1 - kMinExponent);
  return 1 + octave * kSubBuckets + std::min(sub, kSubBuckets - 1);
}

double Histogram::BucketRepresentative(std::uint32_t index) noexcept {
  if (index == 0) return 0.0;
  const std::uint32_t octave = (index - 1) / kSubBuckets;
  const std::uint32_t sub = (index - 1) % kSubBuckets;
  const double lo = std::ldexp(1.0, kMinExponent + static_cast<int>(octave));
  const double width = lo / static_cast<double>(kSubBuckets);
  return lo + (static_cast<double>(sub) + 0.5) * width;
}

void Histogram::Observe(double value) noexcept {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Mean() const noexcept {
  const std::uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

double Histogram::Min() const noexcept {
  const double v = min_.load(std::memory_order_relaxed);
  return v == kEmptyMin ? 0.0 : v;
}

double Histogram::Max() const noexcept {
  const double v = max_.load(std::memory_order_relaxed);
  return v == kEmptyMax ? 0.0 : v;
}

double Histogram::Percentile(double p) const noexcept {
  const std::uint64_t n = Count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank: smallest k with cumulative count >= ceil(p/100 * n).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(n))));
  std::uint64_t cumulative = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return BucketRepresentative(i);
  }
  return Max();  // racing writers between Count() and the scan
}

// ---------------------------------------------------------------------------
// Registry

struct Registry::Impl {
  mutable util::Mutex mu;
  // map keeps scrape output sorted and node addresses stable. The maps
  // are guarded; the pointed-to metric objects are deliberately NOT
  // (recording is wait-free on relaxed atomics once a reference is
  // handed out — the design contract in the header).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      TCIM_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges
      TCIM_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      TCIM_GUARDED_BY(mu);
};

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

Registry::Impl& Registry::impl() const {
  // Leaked on purpose: worker threads may bump cached metric
  // references during late thread exit, after static destruction.
  static Impl* instance = new Impl();
  return *instance;
}

Counter& Registry::GetCounter(std::string_view name) {
  Impl& im = impl();
  util::MutexLock lock(&im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  Impl& im = impl();
  util::MutexLock lock(&im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  Impl& im = impl();
  util::MutexLock lock(&im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> Registry::Snapshot() const {
  Impl& im = impl();
  util::MutexLock lock(&im.mu);
  std::vector<MetricSample> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, c] : im.counters) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kCounter;
    s.count = c->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : im.gauges) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kGauge;
    s.sum = g->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSample s;
    s.name = name;
    s.kind = MetricSample::Kind::kHistogram;
    s.count = h->Count();
    s.sum = h->Sum();
    s.min = h->Min();
    s.max = h->Max();
    s.p50 = h->Percentile(50);
    s.p90 = h->Percentile(90);
    s.p99 = h->Percentile(99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

namespace {

void WriteDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  os << buf;
}

}  // namespace

void Registry::WriteJson(std::ostream& os) const {
  const std::vector<MetricSample> samples = Snapshot();
  os << "{\"meta\":{" << RunMetadataJsonFields() << "}";
  const char* kind_keys[] = {"counters", "gauges", "histograms"};
  for (int k = 0; k < 3; ++k) {
    os << ",\"" << kind_keys[k] << "\":{";
    bool first = true;
    for (const MetricSample& s : samples) {
      if (static_cast<int>(s.kind) != k) continue;
      if (!first) os << ",";
      first = false;
      os << "\"" << JsonEscape(s.name) << "\":";
      switch (s.kind) {
        case MetricSample::Kind::kCounter:
          os << s.count;
          break;
        case MetricSample::Kind::kGauge:
          WriteDouble(os, s.sum);
          break;
        case MetricSample::Kind::kHistogram:
          os << "{\"count\":" << s.count << ",\"sum\":";
          WriteDouble(os, s.sum);
          os << ",\"min\":";
          WriteDouble(os, s.min);
          os << ",\"max\":";
          WriteDouble(os, s.max);
          os << ",\"p50\":";
          WriteDouble(os, s.p50);
          os << ",\"p90\":";
          WriteDouble(os, s.p90);
          os << ",\"p99\":";
          WriteDouble(os, s.p99);
          os << "}";
          break;
      }
    }
    os << "}";
  }
  os << "}";
}

void Registry::WriteText(std::ostream& os, std::string_view prefix) const {
  for (const MetricSample& s : Snapshot()) {
    if (!prefix.empty() &&
        std::string_view(s.name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    os << "  " << s.name << " = ";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        os << s.count;
        break;
      case MetricSample::Kind::kGauge:
        WriteDouble(os, s.sum);
        break;
      case MetricSample::Kind::kHistogram:
        os << "n=" << s.count << " mean=";
        WriteDouble(os, s.count == 0
                            ? 0.0
                            : s.sum / static_cast<double>(s.count));
        os << " p50=";
        WriteDouble(os, s.p50);
        os << " p90=";
        WriteDouble(os, s.p90);
        os << " p99=";
        WriteDouble(os, s.p99);
        os << " max=";
        WriteDouble(os, s.max);
        break;
    }
    os << "\n";
  }
}

// ---------------------------------------------------------------------------
// Run metadata

RunMetadata CollectRunMetadata() {
  RunMetadata meta;
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  meta.date = buf;
#if defined(__clang__)
  meta.compiler = "clang " + std::to_string(__clang_major__) + "." +
                  std::to_string(__clang_minor__) + "." +
                  std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  meta.compiler = "gcc " + std::to_string(__GNUC__) + "." +
                  std::to_string(__GNUC_MINOR__) + "." +
                  std::to_string(__GNUC_PATCHLEVEL__);
#else
  meta.compiler = "unknown";
#endif
  meta.scale = util::WorkloadScale();
  return meta;
}

std::string RunMetadataJsonFields() {
  const RunMetadata meta = CollectRunMetadata();
  std::ostringstream os;
  os << "\"date\":\"" << JsonEscape(meta.date) << "\",\"compiler\":\""
     << JsonEscape(meta.compiler) << "\",\"scale\":";
  WriteDouble(os, meta.scale);
  return os.str();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace tcim::obs
