#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "obs/metrics.h"
#include "util/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tcim::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using internal::TraceEvent;

// A thread buffer this full drains into the collector.
constexpr std::size_t kFlushThreshold = 4096;
// Collector hard cap: beyond this, events are counted as dropped
// instead of growing without bound. ~100 MB worst case.
constexpr std::size_t kMaxCollectedEvents = std::size_t{1} << 20;

// The collector is leaked on purpose: thread-exit flushes from
// late-dying worker threads must never race static destruction.
class Collector {
 public:
  static Collector& Get() {
    static Collector* instance = new Collector();
    return *instance;
  }

  void Start(const std::string& path) {
    bool register_atexit = false;
    {
      util::MutexLock lock(&mu_);
      if (internal::g_trace_enabled.load(std::memory_order_relaxed)) return;
      if (!atexit_registered_) {
        atexit_registered_ = true;
        register_atexit = true;
      }
      // A fresh Start begins a fresh capture: drop anything the
      // previous capture (already written by Stop) left behind.
      path_ = path;
      events_.clear();
      dropped_.store(0, std::memory_order_relaxed);
      dirty_ = false;
      // base_ is atomic, not guarded: NowNs() is the wait-free stamp
      // path and must not take mu_. Annotating the class surfaced
      // this as a plain-field data race (Start wrote a non-atomic
      // time_point under mu_ that every Emit read lock-free) — see
      // obs_test TraceRestartWhileEmittingIsRaceFree.
      base_.store(SteadyNowNs(), std::memory_order_relaxed);
      internal::g_trace_enabled.store(true, std::memory_order_relaxed);
    }
    if (register_atexit) {
      std::atexit([] { Collector::Get().WriteAtExit(); });
    }
  }

  void Stop() {
    internal::g_trace_enabled.store(false, std::memory_order_relaxed);
    util::MutexLock lock(&mu_);
    if (!path_.empty()) WriteFileLocked();
  }

  void WriteAtExit() {
    internal::g_trace_enabled.store(false, std::memory_order_relaxed);
    util::MutexLock lock(&mu_);
    if (dirty_ && !path_.empty()) WriteFileLocked();
  }

  void Absorb(std::vector<TraceEvent>&& events) {
    if (events.empty()) return;
    util::MutexLock lock(&mu_);
    for (TraceEvent& e : events) {
      if (events_.size() >= kMaxCollectedEvents) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      events_.push_back(std::move(e));
    }
    dirty_ = true;
  }

  std::uint64_t NowNs() const noexcept {
    return SteadyNowNs() - base_.load(std::memory_order_relaxed);
  }

  std::string Path() {
    util::MutexLock lock(&mu_);
    return path_;
  }

  std::vector<TraceEvent> SnapshotEvents() {
    util::MutexLock lock(&mu_);
    return events_;
  }

  std::uint64_t Dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  Collector() : base_(SteadyNowNs()) {}

  static std::uint64_t SteadyNowNs() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void WriteFileLocked() TCIM_REQUIRES(mu_) {
    std::ofstream out(path_, std::ios::trunc);
    if (!out) return;
    out << "{\"displayTimeUnit\":\"ms\",\"metadata\":{"
        << RunMetadataJsonFields() << ",\"tool\":\"tcim\",\"dropped_events\":"
        << Dropped() << "},\"traceEvents\":[";
    char buf[64];
    bool first = true;
    for (const TraceEvent& e : events_) {
      if (!first) out << ",";
      first = false;
      out << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
          << "\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid;
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(e.ts_ns) / 1000.0);
      out << ",\"ts\":" << buf;
      if (e.phase == 'X') {
        std::snprintf(buf, sizeof(buf), "%.3f",
                      static_cast<double>(e.dur_ns) / 1000.0);
        out << ",\"dur\":" << buf;
      } else if (e.phase == 'b' || e.phase == 'e') {
        out << ",\"id\":\"" << e.id << "\"";
      } else if (e.phase == 'i') {
        out << ",\"s\":\"t\"";
      }
      if (!e.args.empty()) out << ",\"args\":{" << e.args << "}";
      out << "}";
    }
    out << "]}\n";
    dirty_ = false;
  }

  util::Mutex mu_;
  std::string path_ TCIM_GUARDED_BY(mu_);
  /// Capture origin, steady-clock ns since epoch. Atomic, not guarded:
  /// Start() rebases it while emitter threads stamp events through
  /// NowNs() lock-free (the wait-free hot path).
  std::atomic<std::uint64_t> base_;
  std::vector<TraceEvent> events_ TCIM_GUARDED_BY(mu_);
  std::atomic<std::uint64_t> dropped_{0};
  bool dirty_ TCIM_GUARDED_BY(mu_) = false;
  bool atexit_registered_ TCIM_GUARDED_BY(mu_) = false;
};

struct ThreadBuffer {
  ThreadBuffer() { events.reserve(kFlushThreshold); }
  ~ThreadBuffer() { Flush(); }

  void Flush() {
    Collector::Get().Absorb(std::move(events));
    events.clear();
    events.reserve(kFlushThreshold);
  }

  std::vector<TraceEvent> events;
  std::uint32_t tid = [] {
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }();
};

ThreadBuffer& LocalBuffer() {
  thread_local ThreadBuffer buffer;
  return buffer;
}

// TCIM_TRACE=file.json enables capture before main() runs. trace.o is
// pulled into every binary that references TraceEnabled(), so any
// instrumented program honors the variable without extra wiring.
const bool g_env_init = [] {
  const std::string path = util::EnvString("TCIM_TRACE", "");
  if (!path.empty()) StartTracing(path);
  return true;
}();

}  // namespace

namespace internal {

std::uint64_t NowNs() noexcept { return Collector::Get().NowNs(); }

void Emit(TraceEvent event) noexcept {
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
  if (buffer.events.size() >= kFlushThreshold) buffer.Flush();
}

}  // namespace internal

void StartTracing(const std::string& path) { Collector::Get().Start(path); }

void StopTracing() {
  if (!TracePath().empty()) LocalBuffer().Flush();
  Collector::Get().Stop();
}

std::string TracePath() { return Collector::Get().Path(); }

void TraceSpan::Finish() noexcept {
  internal::TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.phase = 'X';
  e.ts_ns = start_ns_;
  e.dur_ns = internal::NowNs() - start_ns_;
  e.args = std::move(args_);
  internal::Emit(std::move(e));
}

void TraceInstant(const char* name, const char* cat, std::string args) {
  if (!TraceEnabled()) return;
  internal::TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.ts_ns = internal::NowNs();
  e.args = std::move(args);
  internal::Emit(std::move(e));
}

void TraceAsyncBegin(const char* name, const char* cat, std::uint64_t id,
                     std::string args) {
  if (!TraceEnabled()) return;
  internal::TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'b';
  e.id = id;
  e.ts_ns = internal::NowNs();
  e.args = std::move(args);
  internal::Emit(std::move(e));
}

void TraceAsyncEnd(const char* name, const char* cat, std::uint64_t id,
                   std::string args) {
  if (!TraceEnabled()) return;
  internal::TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.phase = 'e';
  e.id = id;
  e.ts_ns = internal::NowNs();
  e.args = std::move(args);
  internal::Emit(std::move(e));
}

std::vector<internal::TraceEvent> TraceSnapshotForTest() {
  LocalBuffer().Flush();
  return Collector::Get().SnapshotEvents();
}

std::uint64_t TraceDroppedForTest() { return Collector::Get().Dropped(); }

}  // namespace tcim::obs
