// DAG orientation of an undirected graph (paper §III / Fig. 2).
//
// Eq. (5) evaluated over the *full symmetric* adjacency counts every
// triangle six times (Eq. 1 divides by 6); the paper's walkthrough in
// Fig. 2 instead uses the upper-triangular matrix, under which every
// triangle {a<b<c} is counted exactly once — at edge (a,c) with b as
// the intermediate. This module produces the oriented CSR consumed by
// the slicing layer, in three flavours that the orientation ablation
// compares.
//
// Layer: §2 graph — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace tcim::graph {

enum class Orientation : std::uint8_t {
  /// Arc u -> v iff u < v (natural ids; the paper's Fig. 2 layout).
  kUpper,
  /// Arc from lower (degree, id) rank to higher — bounds out-degree by
  /// O(sqrt(m)) on skewed graphs; classic TC optimization.
  kDegree,
  /// Both arcs kept; Eq. (5) totals 6x the triangle count (Eq. 1).
  kFullSymmetric,
};

[[nodiscard]] std::string ToString(Orientation o);

/// Triangle-count multiplier of Eq. (5) under orientation o: the
/// accumulated BitCount equals multiplier * triangles.
[[nodiscard]] constexpr std::uint64_t CountMultiplier(Orientation o) noexcept {
  return o == Orientation::kFullSymmetric ? 6 : 1;
}

/// The oriented adjacency matrix in CSR form, ready for slicing.
struct OrientedCsr {
  VertexId num_vertices = 0;
  Orientation orientation = Orientation::kUpper;
  std::vector<std::uint64_t> offsets;    // size num_vertices+1
  std::vector<VertexId> neighbors;       // per-row sorted ascending
  /// For kDegree: new_id_of[old_id]; identity otherwise (left empty).
  std::vector<VertexId> relabel;

  [[nodiscard]] std::uint64_t arc_count() const noexcept {
    return neighbors.size();
  }
  [[nodiscard]] std::uint64_t MaxOutDegree() const noexcept;
};

/// Orients `g` as requested. For kDegree the vertices are relabelled by
/// ascending (degree, id); `relabel` records the mapping.
[[nodiscard]] OrientedCsr Orient(const Graph& g, Orientation o);

}  // namespace tcim::graph
