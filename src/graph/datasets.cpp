#include "graph/datasets.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/io.h"

namespace tcim::graph {
namespace {

// Tables II-V and Fig. 6 of the paper, verbatim. -1 encodes N/A.
constexpr std::array<PaperRef, 9> kPaperRefs = {{
    {PaperDataset::kEgoFacebook, "ego-facebook", 4039, 88234, 1612010,
     0.182, 7.017, 5.399, 0.15, 0.093, 0.169, 0.005, 15.8, false},
    {PaperDataset::kEmailEnron, "email-enron", 36692, 183831, 727044,
     1.02, 1.607, 9.545, 0.146, 0.22, 0.8, 0.021, 9.3, false},
    {PaperDataset::kComAmazon, "com-amazon", 334863, 925872, 667129,
     7.4, 0.014, 20.344, -1, -1, 0.295, 0.011, -1, false},
    {PaperDataset::kComDblp, "com-dblp", 317080, 1049866, 2224385,
     7.6, 0.036, 20.803, -1, -1, 0.413, 0.027, -1, false},
    {PaperDataset::kComYoutube, "com-youtube", 1134890, 2987624, 3056386,
     16.8, 0.013, 61.309, -1, -1, 2.442, 0.098, -1, false},
    {PaperDataset::kRoadNetPa, "roadNet-PA", 1088092, 1541898, 67150,
     9.96, 0.013, 77.320, 0.169, 1.291, 0.704, 0.043, 26.5, true},
    {PaperDataset::kRoadNetTx, "roadNet-TX", 1379917, 1921660, 82869,
     12.38, 0.010, 94.379, 0.173, 1.586, 0.789, 0.053, 26.4, true},
    {PaperDataset::kRoadNetCa, "roadNet-CA", 1965206, 2766607, 120676,
     16.78, 0.007, 146.858, 0.18, 2.342, 3.561, 0.081, 25.4, true},
    {PaperDataset::kComLiveJournal, "com-lj", 3997962, 34681189, 177820130,
     16.8, 0.006, 820.616, -1, -1, 33.034, 2.006, -1, false},
}};

/// Community-model calibration per dataset. community_size is solved
/// from the target triangle density: a partition into ER blobs of size
/// s at intra-probability p has T/E ~ p^2 (s-2) / 3 with p pinned by
/// the mean degree, so s calibrates T/E while hub_fraction reproduces
/// degree skew (see EXPERIMENTS.md for measured-vs-paper).
CommunityParams SocialParams(PaperDataset id) {
  CommunityParams p;
  switch (id) {
    case PaperDataset::kEgoFacebook:  // T/E ~ 18, extreme ego circles
      p.community_size = 60;
      p.inter_fraction = 0.05;
      p.hub_fraction = 0.0;
      break;
    case PaperDataset::kEmailEnron:  // T/E ~ 4, strong hubs
      p.community_size = 11;
      p.inter_fraction = 0.05;
      p.hub_fraction = 0.15;
      break;
    case PaperDataset::kComAmazon:  // T/E ~ 0.7, mild clustering
      p.community_size = 12;
      p.inter_fraction = 0.15;
      p.hub_fraction = 0.0;
      break;
    case PaperDataset::kComDblp:  // T/E ~ 2.1, co-author cliques
      p.community_size = 8;
      p.inter_fraction = 0.10;
      p.hub_fraction = 0.0;
      break;
    case PaperDataset::kComLiveJournal:  // T/E ~ 5.1, hubs + communities
      p.community_size = 19;
      p.inter_fraction = 0.08;
      p.hub_fraction = 0.05;
      break;
    default:
      break;
  }
  return p;
}

}  // namespace

std::span<const PaperRef> AllPaperRefs() { return kPaperRefs; }

const PaperRef& GetPaperRef(PaperDataset id) {
  for (const PaperRef& ref : kPaperRefs) {
    if (ref.id == id) return ref;
  }
  throw std::invalid_argument("GetPaperRef: unknown dataset");
}

const PaperRef& GetPaperRefByName(const std::string& name) {
  for (const PaperRef& ref : kPaperRefs) {
    if (name == ref.name) return ref;
  }
  throw std::invalid_argument("GetPaperRefByName: unknown dataset " + name);
}

DatasetInstance SynthesizePaperGraph(PaperDataset id, double scale,
                                     std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("SynthesizePaperGraph: scale must be (0,1]");
  }
  const PaperRef& ref = GetPaperRef(id);
  // The two small graphs are always synthesized at full size — scaling
  // them saves nothing and would distort the per-dataset comparisons.
  if (id == PaperDataset::kEgoFacebook || id == PaperDataset::kEmailEnron) {
    scale = 1.0;
  }
  const auto n = static_cast<VertexId>(
      std::max<double>(64.0, std::llround(ref.vertices * scale)));
  const auto m = static_cast<std::uint64_t>(
      std::max<double>(128.0, std::llround(ref.edges * scale)));

  DatasetInstance inst;
  inst.id = id;
  inst.scale = scale;
  inst.is_real = false;
  const std::uint64_t mixed_seed =
      seed * 1000003ULL + static_cast<std::uint64_t>(id);
  if (ref.is_road) {
    RoadParams params;
    // Grid with keep_p per side edge plus diag_p diagonals per cell
    // gives E/V ~ 2*keep_p + diag_p; solve for this dataset's density.
    const double edge_density =
        static_cast<double>(ref.edges) / static_cast<double>(ref.vertices);
    params.diag_p = 0.06;
    params.keep_p = std::clamp((edge_density - params.diag_p) / 2.0,
                               0.05, 1.0);
    inst.graph = GeometricRoad(n, params, mixed_seed);
    inst.source = "GeometricRoad(keep_p=" + std::to_string(params.keep_p) +
                  ", diag_p=" + std::to_string(params.diag_p) + ")";
  } else if (id == PaperDataset::kComYoutube) {
    // Hub-dominated, weak clustering: R-MAT fits better than
    // community models.
    inst.graph = Rmat(n, m, RmatParams{}, mixed_seed);
    inst.source = "Rmat(a=0.57,b=0.19,c=0.19,d=0.05)";
  } else {
    // Social / collaboration graphs: dense overlapping communities
    // (triangle density near the clique bound) + hub overlay for the
    // heavy tail.
    const CommunityParams params = SocialParams(id);
    inst.graph = CommunityCliques(n, m, params, mixed_seed);
    inst.source = "CommunityCliques(size=" +
                  std::to_string(params.community_size) +
                  ", inter=" + std::to_string(params.inter_fraction) +
                  ", hub=" + std::to_string(params.hub_fraction) + ")";
  }
  return inst;
}

DatasetInstance LoadOrSynthesize(PaperDataset id, double scale,
                                 std::uint64_t seed) {
  const PaperRef& ref = GetPaperRef(id);
  if (const char* dir = std::getenv("TCIM_DATA_DIR");
      dir != nullptr && *dir != '\0') {
    const std::string path = std::string(dir) + "/" + ref.name + ".txt";
    if (std::ifstream probe(path); probe.good()) {
      DatasetInstance inst;
      inst.id = id;
      inst.graph = ReadSnapEdgeListFile(path);
      inst.is_real = true;
      inst.scale = 1.0;
      inst.source = path;
      return inst;
    }
  }
  return SynthesizePaperGraph(id, scale, seed);
}

}  // namespace tcim::graph
