// Registry of the paper's evaluation datasets (Table II) with every
// number the paper reports about them (Tables II-V, Fig. 5/6), plus
// synthetic stand-in generation.
//
// The SNAP files themselves are not redistributable and this
// environment is offline, so by default each dataset is *synthesized*
// by a generator family matched to its structure (DESIGN.md §3). If a
// real SNAP edge list is present under $TCIM_DATA_DIR (e.g.
// "$TCIM_DATA_DIR/roadNet-PA.txt"), it is loaded instead and the
// instance is flagged `is_real`.
//
// Layer: §2 graph — see docs/ARCHITECTURE.md. Units: PaperRef runtimes
// in seconds, sizes in MB (as printed in the paper's tables); the
// Fig. 6 energy ratio is dimensionless (normalized to TCIM).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "graph/graph.h"

namespace tcim::graph {

enum class PaperDataset : std::uint8_t {
  kEgoFacebook,
  kEmailEnron,
  kComAmazon,
  kComDblp,
  kComYoutube,
  kRoadNetPa,
  kRoadNetTx,
  kRoadNetCa,
  kComLiveJournal,
};

/// Values < 0 mean "not reported" (the paper's N/A cells).
struct PaperRef {
  PaperDataset id;
  const char* name;       // SNAP name, also the TCIM_DATA_DIR filename stem
  std::uint64_t vertices;  // Table II
  std::uint64_t edges;     // Table II
  std::uint64_t triangles; // Table II
  double slice_mb;         // Table III (valid slice data size)
  double valid_slice_pct;  // Table IV (percentage of valid slices)
  double cpu_s;            // Table V: CPU (Spark GraphX, E5430)
  double gpu_s;            // Table V: GPU [3]
  double fpga_s;           // Table V: FPGA [3]
  double wo_pim_s;         // Table V: This work w/o PIM
  double tcim_s;           // Table V: TCIM
  double fpga_energy_ratio;  // Fig. 6: FPGA energy normalized to TCIM
  bool is_road;            // generator family selector
};

/// All nine datasets in the paper's table order.
[[nodiscard]] std::span<const PaperRef> AllPaperRefs();
[[nodiscard]] const PaperRef& GetPaperRef(PaperDataset id);
[[nodiscard]] const PaperRef& GetPaperRefByName(const std::string& name);

/// A concrete graph instance for one dataset.
struct DatasetInstance {
  PaperDataset id;
  Graph graph;
  bool is_real = false;  // loaded from a real SNAP file
  double scale = 1.0;    // applied to vertices/edges when synthesized
  std::string source;    // generator description or file path
};

/// Synthesizes the stand-in at the given scale in (0, 1]. Scale
/// multiplies both V and E targets (mean degree preserved); the two
/// smallest graphs ignore scale (always full size, they are cheap).
[[nodiscard]] DatasetInstance SynthesizePaperGraph(PaperDataset id,
                                                   double scale,
                                                   std::uint64_t seed);

/// Loads "$TCIM_DATA_DIR/<name>.txt" if it exists, else synthesizes.
[[nodiscard]] DatasetInstance LoadOrSynthesize(PaperDataset id, double scale,
                                               std::uint64_t seed);

}  // namespace tcim::graph
