#include "graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace tcim::graph {

std::span<const VertexId> Graph::Neighbors(VertexId v) const {
  if (v >= n_) {
    throw std::out_of_range("Graph::Neighbors: vertex out of range");
  }
  return {adjacency_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::uint64_t Graph::Degree(VertexId v) const {
  if (v >= n_) {
    throw std::out_of_range("Graph::Degree: vertex out of range");
  }
  return offsets_[v + 1] - offsets_[v];
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::HasEdge: vertex out of range");
  }
  // Search the smaller adjacency list.
  if (Degree(u) > Degree(v)) std::swap(u, v);
  const auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

GraphBuilder::GraphBuilder(VertexId num_vertices) : n_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v) {
  if (u >= n_ || v >= n_) {
    throw std::out_of_range("GraphBuilder::AddEdge: vertex out of range");
  }
  if (u == v) return;  // self-loop: irrelevant for triangle counting
  if (u > v) std::swap(u, v);
  edges_.push_back((static_cast<std::uint64_t>(u) << 32) | v);
}

Graph GraphBuilder::Build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.n_ = n_;
  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);

  // Degree counting for both directions, then scatter.
  for (const std::uint64_t packed : edges_) {
    const auto u = static_cast<VertexId>(packed >> 32);
    const auto v = static_cast<VertexId>(packed & 0xFFFFFFFFULL);
    ++g.offsets_[static_cast<std::size_t>(u) + 1];
    ++g.offsets_[static_cast<std::size_t>(v) + 1];
  }
  for (VertexId v = 0; v < n_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.adjacency_.assign(g.offsets_.back(), 0);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const std::uint64_t packed : edges_) {
    const auto u = static_cast<VertexId>(packed >> 32);
    const auto v = static_cast<VertexId>(packed & 0xFFFFFFFFULL);
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  // Edges were globally sorted by (u, v); scattering preserves order
  // for the forward direction but not for the reverse one, so sort
  // each adjacency list. Lists are usually short; std::sort is fine.
  for (VertexId v = 0; v < n_; ++v) {
    std::sort(g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
    g.max_degree_ =
        std::max(g.max_degree_, g.offsets_[v + 1] - g.offsets_[v]);
  }
  edges_.clear();
  edges_.shrink_to_fit();
  return g;
}

}  // namespace tcim::graph
