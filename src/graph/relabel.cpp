#include "graph/relabel.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace tcim::graph {

VertexRelabeling VertexRelabeling::Identity(VertexId n) {
  VertexRelabeling map;
  map.new_of_old_.resize(n);
  map.old_of_new_.resize(n);
  std::iota(map.new_of_old_.begin(), map.new_of_old_.end(), VertexId{0});
  std::iota(map.old_of_new_.begin(), map.old_of_new_.end(), VertexId{0});
  return map;
}

VertexRelabeling VertexRelabeling::DegreeAscending(const Graph& g) {
  const VertexId n = g.num_vertices();
  VertexRelabeling map;
  map.old_of_new_.resize(n);
  std::iota(map.old_of_new_.begin(), map.old_of_new_.end(), VertexId{0});
  std::sort(map.old_of_new_.begin(), map.old_of_new_.end(),
            [&](VertexId a, VertexId b) {
              const std::uint64_t da = g.Degree(a);
              const std::uint64_t db = g.Degree(b);
              if (da != db) return da < db;
              return a < b;
            });
  map.new_of_old_.resize(n);
  for (VertexId internal = 0; internal < n; ++internal) {
    map.new_of_old_[map.old_of_new_[internal]] = internal;
  }
  return map;
}

VertexRelabeling VertexRelabeling::BfsFromHubs(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> seeds(n);
  std::iota(seeds.begin(), seeds.end(), VertexId{0});
  std::sort(seeds.begin(), seeds.end(), [&](VertexId a, VertexId b) {
    const std::uint64_t da = g.Degree(a);
    const std::uint64_t db = g.Degree(b);
    if (da != db) return da > db;
    return a < b;
  });
  VertexRelabeling map;
  map.new_of_old_.assign(n, kUnassigned);
  map.old_of_new_.reserve(n);
  std::deque<VertexId> queue;
  const auto visit = [&](VertexId v) {
    if (map.new_of_old_[v] != kUnassigned) return;
    map.new_of_old_[v] = static_cast<VertexId>(map.old_of_new_.size());
    map.old_of_new_.push_back(v);
    queue.push_back(v);
  };
  for (const VertexId seed : seeds) {
    visit(seed);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      for (const VertexId v : g.Neighbors(u)) visit(v);
    }
  }
  return map;
}

VertexId VertexRelabeling::ToInternal(VertexId original) {
  if (original >= new_of_old_.size()) {
    new_of_old_.resize(static_cast<std::size_t>(original) + 1, kUnassigned);
  }
  VertexId& slot = new_of_old_[original];
  if (slot == kUnassigned) {
    slot = static_cast<VertexId>(old_of_new_.size());
    old_of_new_.push_back(original);
  }
  return slot;
}

std::optional<VertexId> VertexRelabeling::FindInternal(
    VertexId original) const noexcept {
  if (original >= new_of_old_.size() ||
      new_of_old_[original] == kUnassigned) {
    return std::nullopt;
  }
  return new_of_old_[original];
}

VertexId VertexRelabeling::ToOriginal(VertexId internal) const {
  if (internal >= old_of_new_.size()) {
    throw std::out_of_range("VertexRelabeling::ToOriginal: id unassigned");
  }
  return old_of_new_[internal];
}

bool VertexRelabeling::IsIdentity() const noexcept {
  for (VertexId internal = 0; internal < old_of_new_.size(); ++internal) {
    if (old_of_new_[internal] != internal) return false;
  }
  return true;
}

Graph VertexRelabeling::Apply(const Graph& g) const {
  GraphBuilder builder(size());
  builder.ReserveEdges(g.num_edges());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    const std::optional<VertexId> iu = FindInternal(u);
    const std::optional<VertexId> iv = FindInternal(v);
    if (!iu.has_value() || !iv.has_value()) {
      throw std::invalid_argument(
          "VertexRelabeling::Apply: graph has unmapped vertices");
    }
    builder.AddEdge(*iu, *iv);
  });
  return std::move(builder).Build();
}

Graph RelabelByDegree(const Graph& g, VertexRelabeling* map) {
  VertexRelabeling local = VertexRelabeling::DegreeAscending(g);
  Graph relabeled = local.Apply(g);
  if (map != nullptr) *map = std::move(local);
  return relabeled;
}

std::string_view ToString(RelabelMode m) noexcept {
  switch (m) {
    case RelabelMode::kNone:
      return "none";
    case RelabelMode::kDegree:
      return "degree";
    case RelabelMode::kBfs:
      return "bfs";
    case RelabelMode::kAuto:
      return "auto";
  }
  return "?";
}

std::optional<RelabelMode> ParseRelabelMode(std::string_view s) noexcept {
  if (s == "none") return RelabelMode::kNone;
  if (s == "degree") return RelabelMode::kDegree;
  if (s == "bfs") return RelabelMode::kBfs;
  if (s == "auto") return RelabelMode::kAuto;
  return std::nullopt;
}

std::uint64_t CountValidSlices(const Graph& g, const VertexRelabeling& map,
                               std::uint32_t slice_bits) {
  if (slice_bits == 0) {
    throw std::invalid_argument("CountValidSlices: slice_bits must be > 0");
  }
  // Under kUpper in internal ids, edge {iu < iv} sets row iu bit iv
  // and column iv bit iu. A (vector, block) pair is one valid slice;
  // counting distinct pairs per store counts NVS without building it.
  std::vector<std::uint64_t> row_keys;
  std::vector<std::uint64_t> col_keys;
  row_keys.reserve(g.num_edges());
  col_keys.reserve(g.num_edges());
  g.ForEachEdge([&](VertexId u, VertexId v) {
    const std::optional<VertexId> ou = map.FindInternal(u);
    const std::optional<VertexId> ov = map.FindInternal(v);
    if (!ou.has_value() || !ov.has_value()) {
      throw std::invalid_argument("CountValidSlices: unmapped vertex");
    }
    VertexId iu = *ou;
    VertexId iv = *ov;
    if (iu > iv) std::swap(iu, iv);
    row_keys.push_back((static_cast<std::uint64_t>(iu) << 32) |
                       (iv / slice_bits));
    col_keys.push_back((static_cast<std::uint64_t>(iv) << 32) |
                       (iu / slice_bits));
  });
  const auto distinct = [](std::vector<std::uint64_t>& keys) {
    std::sort(keys.begin(), keys.end());
    return static_cast<std::uint64_t>(
        std::unique(keys.begin(), keys.end()) - keys.begin());
  };
  return distinct(row_keys) + distinct(col_keys);
}

RelabelChoice ChooseRelabeling(const Graph& g, RelabelMode requested,
                               std::uint32_t slice_bits) {
  RelabelChoice choice;
  choice.map = VertexRelabeling::Identity(g.num_vertices());
  choice.identity_valid_slices = CountValidSlices(g, choice.map, slice_bits);
  choice.chosen_valid_slices = choice.identity_valid_slices;
  const auto consider = [&](RelabelMode mode, VertexRelabeling candidate,
                            bool unconditional) {
    const std::uint64_t nvs = CountValidSlices(g, candidate, slice_bits);
    if (unconditional || nvs < choice.chosen_valid_slices) {
      choice.applied = mode;
      choice.map = std::move(candidate);
      choice.chosen_valid_slices = nvs;
    }
  };
  switch (requested) {
    case RelabelMode::kNone:
      break;
    case RelabelMode::kDegree:
      consider(RelabelMode::kDegree, VertexRelabeling::DegreeAscending(g),
               true);
      break;
    case RelabelMode::kBfs:
      consider(RelabelMode::kBfs, VertexRelabeling::BfsFromHubs(g), true);
      break;
    case RelabelMode::kAuto:
      consider(RelabelMode::kDegree, VertexRelabeling::DegreeAscending(g),
               false);
      consider(RelabelMode::kBfs, VertexRelabeling::BfsFromHubs(g), false);
      break;
  }
  return choice;
}

}  // namespace tcim::graph
