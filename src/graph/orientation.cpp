#include "graph/orientation.h"

#include <algorithm>
#include <numeric>

namespace tcim::graph {

std::string ToString(Orientation o) {
  switch (o) {
    case Orientation::kUpper:
      return "upper";
    case Orientation::kDegree:
      return "degree";
    case Orientation::kFullSymmetric:
      return "full";
  }
  return "?";
}

std::uint64_t OrientedCsr::MaxOutDegree() const noexcept {
  std::uint64_t best = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    best = std::max(best, offsets[v + 1] - offsets[v]);
  }
  return best;
}

namespace {

OrientedCsr OrientUpper(const Graph& g) {
  OrientedCsr out;
  out.num_vertices = g.num_vertices();
  out.orientation = Orientation::kUpper;
  out.offsets.assign(static_cast<std::size_t>(g.num_vertices()) + 1, 0);
  out.neighbors.reserve(g.num_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.Neighbors(u)) {
      if (v > u) out.neighbors.push_back(v);
    }
    out.offsets[u + 1] = out.neighbors.size();
  }
  return out;
}

OrientedCsr OrientFull(const Graph& g) {
  OrientedCsr out;
  out.num_vertices = g.num_vertices();
  out.orientation = Orientation::kFullSymmetric;
  out.offsets.assign(g.offsets().begin(), g.offsets().end());
  out.neighbors.assign(g.adjacency().begin(), g.adjacency().end());
  return out;
}

OrientedCsr OrientDegree(const Graph& g) {
  const VertexId n = g.num_vertices();
  // rank[old] = position of old in the (degree, id)-ascending order.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const auto da = g.Degree(a);
    const auto db = g.Degree(b);
    return da != db ? da < db : a < b;
  });
  std::vector<VertexId> rank(n);
  for (VertexId pos = 0; pos < n; ++pos) {
    rank[order[pos]] = pos;
  }

  OrientedCsr out;
  out.num_vertices = n;
  out.orientation = Orientation::kDegree;
  out.relabel = rank;
  out.offsets.assign(static_cast<std::size_t>(n) + 1, 0);

  // Count arcs per relabelled source, then fill and sort rows.
  for (VertexId u = 0; u < n; ++u) {
    const VertexId ru = rank[u];
    for (const VertexId v : g.Neighbors(u)) {
      if (rank[v] > ru) {
        ++out.offsets[static_cast<std::size_t>(ru) + 1];
      }
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    out.offsets[v + 1] += out.offsets[v];
  }
  out.neighbors.assign(g.num_edges(), 0);
  std::vector<std::uint64_t> cursor(out.offsets.begin(),
                                    out.offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    const VertexId ru = rank[u];
    for (const VertexId v : g.Neighbors(u)) {
      const VertexId rv = rank[v];
      if (rv > ru) out.neighbors[cursor[ru]++] = rv;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(out.neighbors.begin() +
                  static_cast<std::ptrdiff_t>(out.offsets[v]),
              out.neighbors.begin() +
                  static_cast<std::ptrdiff_t>(out.offsets[v + 1]));
  }
  return out;
}

}  // namespace

OrientedCsr Orient(const Graph& g, Orientation o) {
  switch (o) {
    case Orientation::kUpper:
      return OrientUpper(g);
    case Orientation::kDegree:
      return OrientDegree(g);
    case Orientation::kFullSymmetric:
      return OrientFull(g);
  }
  return OrientUpper(g);
}

}  // namespace tcim::graph
