#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace tcim::graph {
namespace {

using util::Xoshiro256;

/// Accumulates distinct normalized (u<v) edges across generation
/// rounds without a hash set: candidates are sorted, deduplicated and
/// merged into the sorted accepted list. Lets R-MAT / G(n,m) hit an
/// edge target within ~1% on multi-million-edge graphs cheaply.
class DistinctEdgeAccumulator {
 public:
  explicit DistinctEdgeAccumulator(std::uint64_t target)
      : target_(target) {}

  [[nodiscard]] std::uint64_t size() const noexcept {
    return accepted_.size();
  }
  [[nodiscard]] bool Done() const noexcept {
    return accepted_.size() >= target_;
  }
  [[nodiscard]] std::uint64_t Remaining() const noexcept {
    return Done() ? 0 : target_ - accepted_.size();
  }

  void AddCandidate(VertexId u, VertexId v) {
    if (u == v) return;
    if (u > v) std::swap(u, v);
    batch_.push_back((static_cast<std::uint64_t>(u) << 32) | v);
  }

  void MergeBatch() {
    std::sort(batch_.begin(), batch_.end());
    batch_.erase(std::unique(batch_.begin(), batch_.end()), batch_.end());
    std::vector<std::uint64_t> merged;
    merged.reserve(accepted_.size() + batch_.size());
    std::set_union(accepted_.begin(), accepted_.end(), batch_.begin(),
                   batch_.end(), std::back_inserter(merged));
    accepted_ = std::move(merged);
    if (accepted_.size() > target_) accepted_.resize(target_);
    batch_.clear();
  }

  void EmitInto(GraphBuilder& builder) const {
    for (const std::uint64_t packed : accepted_) {
      builder.AddEdge(static_cast<VertexId>(packed >> 32),
                      static_cast<VertexId>(packed & 0xFFFFFFFFULL));
    }
  }

 private:
  std::uint64_t target_;
  std::vector<std::uint64_t> accepted_;
  std::vector<std::uint64_t> batch_;
};

std::uint64_t MaxEdges(VertexId n) {
  return static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

}  // namespace

Graph Complete(VertexId n) {
  GraphBuilder b(n);
  b.ReserveEdges(MaxEdges(n));
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) b.AddEdge(u, v);
  }
  return std::move(b).Build();
}

Graph Cycle(VertexId n) {
  if (n < 3) throw std::invalid_argument("Cycle: need n >= 3");
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) b.AddEdge(v, (v + 1) % n);
  return std::move(b).Build();
}

Graph Path(VertexId n) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1);
  return std::move(b).Build();
}

Graph Star(VertexId n) {
  if (n < 1) throw std::invalid_argument("Star: need n >= 1");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.AddEdge(0, v);
  return std::move(b).Build();
}

Graph Wheel(VertexId n) {
  if (n < 4) throw std::invalid_argument("Wheel: need n >= 4");
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) {
    b.AddEdge(0, v);
    b.AddEdge(v, v + 1 == n ? 1 : v + 1);
  }
  return std::move(b).Build();
}

Graph GridLattice(VertexId width, VertexId height) {
  const std::uint64_t n64 = static_cast<std::uint64_t>(width) * height;
  if (n64 > 0xFFFFFFFFULL) {
    throw std::invalid_argument("GridLattice: too many vertices");
  }
  const auto n = static_cast<VertexId>(n64);
  GraphBuilder b(n);
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      const VertexId v = y * width + x;
      if (x + 1 < width) b.AddEdge(v, v + 1);
      if (y + 1 < height) b.AddEdge(v, v + width);
    }
  }
  return std::move(b).Build();
}

Graph CompleteBipartite(VertexId a, VertexId b_count) {
  GraphBuilder b(a + b_count);
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b_count; ++v) b.AddEdge(u, a + v);
  }
  return std::move(b).Build();
}

Graph ErdosRenyi(VertexId n, std::uint64_t target_edges, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("ErdosRenyi: need n >= 2");
  target_edges = std::min(target_edges, MaxEdges(n));
  Xoshiro256 rng(seed);
  DistinctEdgeAccumulator acc(target_edges);
  for (int round = 0; round < 64 && !acc.Done(); ++round) {
    const std::uint64_t want = acc.Remaining() + acc.Remaining() / 8 + 16;
    for (std::uint64_t k = 0; k < want; ++k) {
      acc.AddCandidate(static_cast<VertexId>(rng.UniformBelow(n)),
                       static_cast<VertexId>(rng.UniformBelow(n)));
    }
    acc.MergeBatch();
  }
  GraphBuilder b(n);
  b.ReserveEdges(acc.size());
  acc.EmitInto(b);
  return std::move(b).Build();
}

Graph Rmat(VertexId n, std::uint64_t target_edges, const RmatParams& params,
           std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("Rmat: need n >= 2");
  const double sum = params.a + params.b + params.c + params.d;
  if (sum < 0.99 || sum > 1.01) {
    throw std::invalid_argument("Rmat: a+b+c+d must sum to ~1");
  }
  int levels = 0;
  while ((1ULL << levels) < n) ++levels;
  target_edges = std::min(target_edges, MaxEdges(n));

  Xoshiro256 rng(seed);
  DistinctEdgeAccumulator acc(target_edges);
  for (int round = 0; round < 64 && !acc.Done(); ++round) {
    const std::uint64_t want = acc.Remaining() + acc.Remaining() / 4 + 16;
    for (std::uint64_t k = 0; k < want; ++k) {
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      for (int level = 0; level < levels; ++level) {
        // Multiplicative noise keeps expectation at (a,b,c,d) while
        // smearing the self-similar artifacts.
        const double na =
            params.a * (1.0 + params.noise * (rng.UniformDouble() - 0.5));
        const double nb =
            params.b * (1.0 + params.noise * (rng.UniformDouble() - 0.5));
        const double nc =
            params.c * (1.0 + params.noise * (rng.UniformDouble() - 0.5));
        const double nd =
            params.d * (1.0 + params.noise * (rng.UniformDouble() - 0.5));
        const double total = na + nb + nc + nd;
        const double r = rng.UniformDouble() * total;
        u <<= 1;
        v <<= 1;
        if (r < na) {
          // top-left: no bits set
        } else if (r < na + nb) {
          v |= 1;
        } else if (r < na + nb + nc) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u < n && v < n) {
        acc.AddCandidate(static_cast<VertexId>(u), static_cast<VertexId>(v));
      }
    }
    acc.MergeBatch();
  }
  GraphBuilder b(n);
  b.ReserveEdges(acc.size());
  acc.EmitInto(b);
  return std::move(b).Build();
}

Graph HolmeKim(VertexId n, std::uint64_t target_edges, double triad_p,
               std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("HolmeKim: need n >= 3");
  if (triad_p < 0.0 || triad_p > 1.0) {
    throw std::invalid_argument("HolmeKim: triad_p must be in [0,1]");
  }
  target_edges = std::min(target_edges, MaxEdges(n));
  const double avg = static_cast<double>(target_edges) / n;
  const auto m0 =
      static_cast<VertexId>(std::min<double>(n, std::ceil(avg) + 1));

  Xoshiro256 rng(seed);
  std::vector<std::vector<VertexId>> adj(n);
  // Repeated-endpoint pool: vertex v appears deg(v) times; sampling it
  // uniformly realizes preferential attachment.
  std::vector<VertexId> pool;
  pool.reserve(2 * target_edges);
  std::uint64_t edges_made = 0;

  const auto connect = [&](VertexId u, VertexId v) {
    adj[u].push_back(v);
    adj[v].push_back(u);
    pool.push_back(u);
    pool.push_back(v);
    ++edges_made;
  };
  const auto connected = [&](VertexId u, VertexId v) {
    const auto& list = adj[u].size() <= adj[v].size() ? adj[u] : adj[v];
    const VertexId probe = adj[u].size() <= adj[v].size() ? v : u;
    return std::find(list.begin(), list.end(), probe) != list.end();
  };

  // Seed clique over the first m0 vertices.
  for (VertexId u = 0; u < m0; ++u) {
    for (VertexId v = u + 1; v < m0; ++v) connect(u, v);
  }

  for (VertexId v = m0; v < n; ++v) {
    // Edges for this vertex: keep the running total on the target line.
    const double ideal =
        static_cast<double>(target_edges - edges_made) /
        static_cast<double>(n - v);
    auto k = static_cast<std::uint32_t>(ideal);
    if (rng.UniformDouble() < ideal - k) ++k;
    k = std::min<std::uint32_t>(std::max<std::uint32_t>(k, 1), v);

    VertexId last_target = 0;
    bool have_target = false;
    for (std::uint32_t e = 0; e < k; ++e) {
      VertexId t = 0;
      bool picked = false;
      if (have_target && rng.Bernoulli(triad_p) &&
          !adj[last_target].empty()) {
        // Triad-formation step: close a triangle through a random
        // neighbour of the previous preferential target.
        for (int attempt = 0; attempt < 4 && !picked; ++attempt) {
          const VertexId cand = adj[last_target][rng.UniformBelow(
              adj[last_target].size())];
          if (cand != v && !connected(v, cand)) {
            t = cand;
            picked = true;
          }
        }
      }
      for (int attempt = 0; attempt < 16 && !picked; ++attempt) {
        const VertexId cand =
            pool[rng.UniformBelow(pool.size())];
        if (cand != v && !connected(v, cand)) {
          t = cand;
          picked = true;
        }
      }
      if (!picked) break;  // saturated neighbourhood; move on
      connect(v, t);
      last_target = t;
      have_target = true;
    }
  }

  GraphBuilder b(n);
  b.ReserveEdges(edges_made);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : adj[u]) {
      if (v > u) b.AddEdge(u, v);
    }
  }
  return std::move(b).Build();
}

Graph WattsStrogatz(VertexId n, std::uint32_t half_k, double beta,
                    std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("WattsStrogatz: need n >= 3");
  if (half_k == 0 || 2ULL * half_k >= n) {
    throw std::invalid_argument("WattsStrogatz: need 0 < 2*half_k < n");
  }
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  b.ReserveEdges(static_cast<std::uint64_t>(n) * half_k);
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t d = 1; d <= half_k; ++d) {
      VertexId v = static_cast<VertexId>((u + d) % n);
      if (rng.Bernoulli(beta)) {
        v = static_cast<VertexId>(rng.UniformBelow(n));
        if (v == u) v = static_cast<VertexId>((u + d) % n);
      }
      b.AddEdge(u, v);
    }
  }
  return std::move(b).Build();
}

Graph CommunityCliques(VertexId n, std::uint64_t target_edges,
                       const CommunityParams& params, std::uint64_t seed) {
  const VertexId community_size = params.community_size;
  const double inter_fraction = params.inter_fraction;
  if (n < 4 || community_size < 3) {
    throw std::invalid_argument(
        "CommunityCliques: need n >= 4 and community_size >= 3");
  }
  if (inter_fraction < 0.0 || inter_fraction >= 1.0 ||
      params.hub_fraction < 0.0 ||
      inter_fraction + params.hub_fraction >= 1.0) {
    throw std::invalid_argument(
        "CommunityCliques: inter/hub fractions must be in [0,1) and sum "
        "below 1");
  }
  target_edges = std::min(target_edges, MaxEdges(n));
  Xoshiro256 rng(seed);

  // Partition [0, n) into contiguous communities with ±25% size jitter
  // (contiguity keeps vertex-id locality, like real ego circles
  // crawled breadth-first).
  std::vector<std::pair<VertexId, VertexId>> communities;  // [begin, end)
  VertexId begin = 0;
  std::uint64_t pair_budget = 0;
  while (begin < n) {
    const auto jitter = static_cast<VertexId>(
        rng.UniformInRange(community_size * 3 / 4, community_size * 5 / 4));
    const VertexId end = std::min<VertexId>(n, begin + std::max<VertexId>(
                                                           3, jitter));
    communities.emplace_back(begin, end);
    const std::uint64_t s = end - begin;
    pair_budget += s * (s - 1) / 2;
    begin = end;
  }

  const double intra_target =
      static_cast<double>(target_edges) *
      (1.0 - inter_fraction - params.hub_fraction);
  const double p = std::min(1.0, intra_target /
                                     std::max<double>(1.0, pair_budget));

  GraphBuilder b(n);
  b.ReserveEdges(target_edges + target_edges / 8);
  for (const auto& [lo, hi] : communities) {
    for (VertexId u = lo; u < hi; ++u) {
      for (VertexId v = u + 1; v < hi; ++v) {
        if (rng.Bernoulli(p)) b.AddEdge(u, v);
      }
    }
  }
  const auto inter_edges =
      static_cast<std::uint64_t>(target_edges * inter_fraction);
  for (std::uint64_t e = 0; e < inter_edges; ++e) {
    b.AddEdge(static_cast<VertexId>(rng.UniformBelow(n)),
              static_cast<VertexId>(rng.UniformBelow(n)));
  }
  // Hub overlay: a small hub set (0.5% of vertices, >= 1) receives the
  // hub edge budget from uniformly random sources — heavy tail without
  // materially changing the triangle census.
  const auto hub_edges =
      static_cast<std::uint64_t>(target_edges * params.hub_fraction);
  if (hub_edges > 0) {
    const VertexId hub_count = std::max<VertexId>(1, n / 200);
    for (std::uint64_t e = 0; e < hub_edges; ++e) {
      // Zipf-ish hub popularity: square the uniform pick to favour the
      // first hubs.
      const double z = rng.UniformDouble();
      const auto hub = static_cast<VertexId>(z * z * hub_count);
      b.AddEdge(static_cast<VertexId>(rng.UniformBelow(n)),
                std::min<VertexId>(hub, n - 1));
    }
  }
  return std::move(b).Build();
}

Graph GeometricRoad(VertexId n, const RoadParams& params,
                    std::uint64_t seed) {
  if (n < 4) throw std::invalid_argument("GeometricRoad: need n >= 4");
  const auto width =
      static_cast<VertexId>(std::max(2.0, std::floor(std::sqrt(n))));
  const VertexId height = (n + width - 1) / width;
  Xoshiro256 rng(seed);
  GraphBuilder b(width * height);
  const auto id = [&](VertexId x, VertexId y) { return y * width + x; };
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      const VertexId v = id(x, y);
      if (x + 1 < width && rng.Bernoulli(params.keep_p)) {
        b.AddEdge(v, id(x + 1, y));
      }
      if (y + 1 < height && rng.Bernoulli(params.keep_p)) {
        b.AddEdge(v, id(x, y + 1));
      }
      if (x + 1 < width && y + 1 < height &&
          rng.Bernoulli(params.diag_p)) {
        if (rng.Bernoulli(0.5)) {
          b.AddEdge(v, id(x + 1, y + 1));
        } else {
          b.AddEdge(id(x + 1, y), id(x, y + 1));
        }
      }
    }
  }
  return std::move(b).Build();
}

}  // namespace tcim::graph
