// Graph serialization: SNAP-style text edge lists and a fast binary
// format.
//
// The paper evaluates on graphs from the SNAP collection [17]
// distributed as '#'-commented whitespace-separated edge lists; this
// loader accepts exactly that shape, so real SNAP downloads can be
// dropped into TCIM_DATA_DIR to replace the synthetic stand-ins (see
// datasets.h).
//
// Layer: §2 graph — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace tcim::graph {

/// Parses a SNAP-style edge list:
///  * lines starting with '#' or '%' are comments;
///  * other lines contain two (or more; extras ignored) integer ids;
///  * ids may be arbitrary (non-dense) and are remapped to [0, n) in
///    first-appearance order;
///  * duplicate edges / self-loops are dropped by GraphBuilder.
/// Throws std::runtime_error on unparsable lines.
[[nodiscard]] Graph ReadSnapEdgeList(std::istream& in);
[[nodiscard]] Graph ReadSnapEdgeListFile(const std::string& path);

/// Writes g as a SNAP-style edge list with one "u v" line per edge.
void WriteSnapEdgeList(const Graph& g, std::ostream& out);

/// Binary round-trip format ("TCIMG001" magic, little-endian u32/u64
/// arrays). ~20x faster to load than text for multi-million edge
/// graphs; used to cache synthesized workloads between bench runs.
void WriteBinary(const Graph& g, std::ostream& out);
void WriteBinaryFile(const Graph& g, const std::string& path);
[[nodiscard]] Graph ReadBinary(std::istream& in);
[[nodiscard]] Graph ReadBinaryFile(const std::string& path);

}  // namespace tcim::graph
