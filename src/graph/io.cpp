#include "graph/io.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace tcim::graph {
namespace {

constexpr std::array<char, 8> kMagic = {'T', 'C', 'I', 'M',
                                        'G', '0', '0', '1'};

[[noreturn]] void Fail(const std::string& what) {
  throw std::runtime_error("graph::io: " + what);
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T ReadPod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!in) Fail("truncated binary graph");
  return value;
}

}  // namespace

Graph ReadSnapEdgeList(std::istream& in) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw_edges;
  std::unordered_map<std::uint64_t, VertexId> remap;
  std::string line;
  std::uint64_t line_no = 0;
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r';
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#' || line[first] == '%') continue;
    const char* p = line.c_str() + first;
    char* end = nullptr;
    const unsigned long long u = std::strtoull(p, &end, 10);
    if (end == p) Fail("unparsable line " + std::to_string(line_no));
    // A token must end at whitespace or end-of-line: "2garbage" parsing
    // as 2 would silently corrupt the edge list.
    if (*end != '\0' && !is_space(*end)) {
      Fail("trailing junk after first id on line " + std::to_string(line_no));
    }
    p = end;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p) Fail("missing second id on line " + std::to_string(line_no));
    if (*end != '\0' && !is_space(*end)) {
      Fail("trailing junk after second id on line " + std::to_string(line_no));
    }
    // SNAP files may carry extra columns (temporal edge lists'
    // timestamps, weighted lists' real-valued weights): accept
    // additional *numeric* tokens — integer or floating-point — and
    // reject anything else so junk cannot ride along unnoticed.
    p = end;
    for (;;) {
      while (is_space(*p)) ++p;
      if (*p == '\0') break;
      (void)std::strtod(p, &end);
      if (end == p || (*end != '\0' && !is_space(*end))) {
        Fail("trailing junk on line " + std::to_string(line_no));
      }
      p = end;
    }
    raw_edges.emplace_back(u, v);
    remap.try_emplace(u, 0);
    remap.try_emplace(v, 0);
  }

  // Dense relabeling in first-appearance order of the *sorted* id set
  // keeps the mapping deterministic regardless of edge order.
  std::vector<std::uint64_t> ids;
  ids.reserve(remap.size());
  for (const auto& [id, _] : remap) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (VertexId dense = 0; dense < ids.size(); ++dense) {
    remap[ids[dense]] = dense;
  }

  GraphBuilder builder(static_cast<VertexId>(ids.size()));
  builder.ReserveEdges(raw_edges.size());
  for (const auto& [u, v] : raw_edges) {
    builder.AddEdge(remap[u], remap[v]);
  }
  return std::move(builder).Build();
}

Graph ReadSnapEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) Fail("cannot open " + path);
  return ReadSnapEdgeList(in);
}

void WriteSnapEdgeList(const Graph& g, std::ostream& out) {
  out << "# Undirected graph, " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges\n";
  out << "# FromNodeId\tToNodeId\n";
  g.ForEachEdge([&](VertexId u, VertexId v) { out << u << '\t' << v << '\n'; });
}

void WriteBinary(const Graph& g, std::ostream& out) {
  out.write(kMagic.data(), kMagic.size());
  WritePod(out, static_cast<std::uint32_t>(g.num_vertices()));
  WritePod(out, static_cast<std::uint64_t>(g.adjacency().size()));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() *
                                         sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() *
                                         sizeof(VertexId)));
  if (!out) Fail("binary write failed");
}

void WriteBinaryFile(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) Fail("cannot open " + path + " for writing");
  WriteBinary(g, out);
}

Graph ReadBinary(std::istream& in) {
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) Fail("bad magic in binary graph");
  const auto n = ReadPod<std::uint32_t>(in);
  const auto arcs = ReadPod<std::uint64_t>(in);
  if (arcs % 2 != 0) Fail("binary graph arc count must be even");

  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() *
                                       sizeof(std::uint64_t)));
  std::vector<VertexId> adjacency(arcs);
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(VertexId)));
  if (!in) Fail("truncated binary graph");

  // Rebuild through the builder to re-establish all invariants rather
  // than trusting the file.
  GraphBuilder builder(n);
  builder.ReserveEdges(arcs / 2);
  for (VertexId u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1] || offsets[u + 1] > arcs) {
      Fail("corrupt offsets in binary graph");
    }
    for (std::uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      if (adjacency[e] > u) builder.AddEdge(u, adjacency[e]);
    }
  }
  return std::move(builder).Build();
}

Graph ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open " + path);
  return ReadBinary(in);
}

}  // namespace tcim::graph
