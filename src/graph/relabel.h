// Degree-ordered vertex relabeling — load-time graph preprocessing.
//
// The sliced stores (§5 bitmatrix) pay for every 64/512-bit slice that
// holds at least one neighbor bit: a hub's neighbors scattered across
// the whole id range touch many slices, each nearly empty. Renaming
// vertices in degree order packs the hubs into one contiguous id range
// and concentrates the dense rows/columns of the adjacency matrix into
// few slice indices, which (a) shrinks the valid-slice count NVS —
// less slice storage and fewer cache fills — and (b) shrinks
// |Ri ∩ Cj| merge work per edge. The order is ascending so that under
// kUpper orientation the id order is simultaneously a proper degree
// orientation (every edge points to its higher-degree endpoint). The TC journal version (arXiv 2112.00471) and the real-PIM
// study (arXiv 2505.04269) both identify this enumeration/layout cost,
// not the popcount, as the dominant term; bench/perf_harness measures
// the reduction per dataset and gates it in --check.
//
// The relabeling is a pure bijection on vertex ids: triangle counts
// are invariant, and every user-facing surface (CLI reports, stream
// replay, examples) maps ids back through ToOriginal so the rename is
// invisible outside the engine. VertexRelabeling is growable: a stream
// can introduce vertices the load-time graph never saw, and ToInternal
// assigns them fresh internal ids on first sight.
//
// Layer: §2 graph — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace tcim::graph {

/// Growable bijection original-id <-> internal-id. Internal ids are
/// dense in [0, size()); original ids may be sparse (stream growth
/// can mention any id).
class VertexRelabeling {
 public:
  VertexRelabeling() = default;

  /// internal == original for ids in [0, n) — the --relabel none map.
  [[nodiscard]] static VertexRelabeling Identity(VertexId n);

  /// Internal ids ordered by degree ascending, original id ascending
  /// as the tie-break: the hubs share the dense top of the id range,
  /// and under kUpper orientation the id order doubles as a proper
  /// degree orientation (u < v implies deg(u) <= deg(v), so every
  /// edge points from its lower- to its higher-degree endpoint).
  [[nodiscard]] static VertexRelabeling DegreeAscending(const Graph& g);

  /// Internal ids in BFS visit order, traversals seeded from the
  /// highest-degree unvisited vertex: neighbors land in adjacent id
  /// blocks, which is the locality that matters on low-skew graphs
  /// (road networks) where a degree sort has nothing to separate.
  [[nodiscard]] static VertexRelabeling BfsFromHubs(const Graph& g);

  /// Number of originals that currently have an internal id.
  [[nodiscard]] VertexId size() const noexcept {
    return static_cast<VertexId>(old_of_new_.size());
  }

  /// Internal id of `original`, assigning the next free internal id on
  /// first sight (the stream-growth path — a delta may name vertices
  /// the loaded graph never had).
  [[nodiscard]] VertexId ToInternal(VertexId original);

  /// Internal id of `original` if it has one; nullopt otherwise.
  [[nodiscard]] std::optional<VertexId> FindInternal(
      VertexId original) const noexcept;

  /// Original id behind `internal`. Throws std::out_of_range when
  /// internal >= size().
  [[nodiscard]] VertexId ToOriginal(VertexId internal) const;

  /// True when every assigned id maps to itself (reporting can skip
  /// the translation).
  [[nodiscard]] bool IsIdentity() const noexcept;

  /// The graph with every vertex renamed to its internal id —
  /// structurally identical (triangle counts invariant), ids permuted.
  /// Every vertex of `g` must already have an internal id (throws
  /// std::invalid_argument otherwise — build the map from this graph,
  /// or grow it first).
  [[nodiscard]] Graph Apply(const Graph& g) const;

  /// internal -> original, dense (the inverse map threaded through
  /// CLI/stream output).
  [[nodiscard]] std::span<const VertexId> old_of_new() const noexcept {
    return old_of_new_;
  }

 private:
  static constexpr VertexId kUnassigned = 0xFFFFFFFFu;

  std::vector<VertexId> new_of_old_;  // sparse, kUnassigned holes
  std::vector<VertexId> old_of_new_;  // dense
};

/// Builds the DegreeAscending map of `g` and applies it in one call.
/// When `map` is non-null the relabeling is stored there for the
/// caller's inverse lookups (reporting, stream delta mapping).
[[nodiscard]] Graph RelabelByDegree(const Graph& g,
                                    VertexRelabeling* map = nullptr);

/// The load-time relabeling knob (tcim_cli --relabel). kAuto measures
/// every candidate order with CountValidSlices and keeps the cheapest,
/// including identity — graphs whose native ids are already local
/// (community-block generators, pre-ordered inputs) stay untouched
/// instead of being scrambled by a degree sort.
enum class RelabelMode : std::uint8_t { kNone, kDegree, kBfs, kAuto };

[[nodiscard]] std::string_view ToString(RelabelMode m) noexcept;

/// "none" | "degree" | "bfs" | "auto" -> mode; nullopt otherwise.
[[nodiscard]] std::optional<RelabelMode> ParseRelabelMode(
    std::string_view s) noexcept;

/// Exact valid-slice count (row store + column store) the kUpper
/// orientation of `g` would produce after relabeling by `map`, at
/// `slice_bits` bits per slice — computed in O(E log E) from the edge
/// list alone, no stores built. This is the NVS term of the paper's
/// storage formula and the objective kAuto minimizes. Every vertex of
/// `g` must be mapped (throws std::invalid_argument otherwise).
[[nodiscard]] std::uint64_t CountValidSlices(const Graph& g,
                                             const VertexRelabeling& map,
                                             std::uint32_t slice_bits);

/// Outcome of ChooseRelabeling: which order was applied, its map, and
/// the measured valid-slice counts driving (and auditing) the choice.
struct RelabelChoice {
  RelabelMode applied = RelabelMode::kNone;  ///< never kAuto
  VertexRelabeling map;
  std::uint64_t identity_valid_slices = 0;
  std::uint64_t chosen_valid_slices = 0;

  /// chosen / identity valid slices; <= 1.0 under kAuto by
  /// construction, 1.0 when nothing was applied.
  [[nodiscard]] double ValidSliceRatio() const noexcept {
    return identity_valid_slices == 0
               ? 1.0
               : static_cast<double>(chosen_valid_slices) /
                     static_cast<double>(identity_valid_slices);
  }
};

/// Resolves `requested` against `g`: kAuto scores identity, degree and
/// BFS orders with CountValidSlices and keeps the minimum; explicit
/// modes are honored unconditionally. The returned map is always
/// usable for inverse lookups (identity map under kNone).
[[nodiscard]] RelabelChoice ChooseRelabeling(const Graph& g,
                                             RelabelMode requested,
                                             std::uint32_t slice_bits = 64);

}  // namespace tcim::graph
