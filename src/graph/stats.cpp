#include "graph/stats.h"

#include <algorithm>
#include <bit>

#include "util/rng.h"

namespace tcim::graph {

DegreeSummary SummarizeDegrees(const Graph& g) {
  DegreeSummary s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  std::vector<std::uint64_t> degrees(n);
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = g.Degree(v);
    if (degrees[v] == 0) ++s.isolated_vertices;
  }
  std::sort(degrees.begin(), degrees.end());
  s.min = degrees.front();
  s.max = degrees.back();
  s.mean = g.mean_degree();
  s.median = degrees[n / 2];
  s.p99 = degrees[static_cast<std::size_t>(
      std::min<std::uint64_t>(n - 1, n * 99ULL / 100ULL))];
  return s;
}

std::uint64_t WedgeCount(const Graph& g) {
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.Degree(v);
    wedges += d * (d - 1) / 2;
  }
  return wedges;
}

double Transitivity(const Graph& g, std::uint64_t triangles) {
  const std::uint64_t wedges = WedgeCount(g);
  return wedges == 0 ? 0.0
                     : 3.0 * static_cast<double>(triangles) /
                           static_cast<double>(wedges);
}

double AverageLocalClustering(const Graph& g, std::uint64_t max_samples,
                              std::uint64_t seed) {
  const VertexId n = g.num_vertices();
  if (n == 0) return 0.0;
  util::Xoshiro256 rng(seed);
  const bool exhaustive = max_samples >= n;
  const std::uint64_t samples = exhaustive ? n : max_samples;

  double total = 0.0;
  std::uint64_t counted = 0;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const VertexId v = exhaustive ? static_cast<VertexId>(s)
                                  : static_cast<VertexId>(rng.UniformBelow(n));
    const auto nbrs = g.Neighbors(v);
    const std::uint64_t d = nbrs.size();
    if (d < 2) continue;
    // Count edges among neighbours by merge-intersecting each
    // neighbour's adjacency with nbrs.
    std::uint64_t links = 0;
    for (const VertexId u : nbrs) {
      const auto un = g.Neighbors(u);
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < nbrs.size() && b < un.size()) {
        if (nbrs[a] < un[b]) {
          ++a;
        } else if (nbrs[a] > un[b]) {
          ++b;
        } else {
          ++links;
          ++a;
          ++b;
        }
      }
    }
    // Each neighbour-neighbour edge found twice (once per endpoint).
    total += static_cast<double>(links) / static_cast<double>(d * (d - 1));
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

std::vector<std::uint64_t> Log2DegreeHistogram(const Graph& g) {
  std::vector<std::uint64_t> hist;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.Degree(v);
    const std::size_t bucket =
        d == 0 ? 0 : 1 + static_cast<std::size_t>(std::bit_width(d) - 1);
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

}  // namespace tcim::graph
