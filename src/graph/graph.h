// Undirected simple graph in CSR form — the substrate every layer
// above (baselines, slicing, the TCIM accelerator) consumes.
//
// Invariants established by GraphBuilder::Build and assumed everywhere:
//  * no self-loops, no parallel edges;
//  * adjacency of each vertex sorted strictly increasing;
//  * symmetric: (u,v) present iff (v,u) present;
//  * vertex ids are dense in [0, num_vertices).
//
// Layer: §2 graph — see docs/ARCHITECTURE.md. Conventions: vertex ids
// are dense u32; num_edges() counts each undirected edge once.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tcim::graph {

using VertexId = std::uint32_t;

/// Immutable undirected simple graph (CSR, both directions stored).
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  /// Number of undirected edges (each counted once).
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::span<const VertexId> Neighbors(VertexId v) const;
  [[nodiscard]] std::uint64_t Degree(VertexId v) const;
  /// O(log deg) membership test.
  [[nodiscard]] bool HasEdge(VertexId u, VertexId v) const;

  /// Raw CSR access for algorithms that stream the whole structure.
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> adjacency() const noexcept {
    return adjacency_;
  }

  [[nodiscard]] std::uint64_t max_degree() const noexcept {
    return max_degree_;
  }
  [[nodiscard]] double mean_degree() const noexcept {
    return n_ == 0 ? 0.0
                   : static_cast<double>(adjacency_.size()) /
                         static_cast<double>(n_);
  }

  /// Calls fn(u, v) once per undirected edge with u < v, in
  /// lexicographic order.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    for (VertexId u = 0; u < n_; ++u) {
      for (std::uint64_t e = offsets_[u]; e < offsets_[u + 1]; ++e) {
        const VertexId v = adjacency_[e];
        if (v > u) fn(u, v);
      }
    }
  }

  /// Approximate heap footprint (diagnostics for the big graphs).
  [[nodiscard]] std::uint64_t HeapBytes() const noexcept {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           adjacency_.capacity() * sizeof(VertexId);
  }

 private:
  friend class GraphBuilder;

  VertexId n_ = 0;
  std::uint64_t max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<VertexId> adjacency_;     // size 2 * num_edges
};

/// Accumulates an edge list and normalizes it into a Graph.
/// Self-loops and duplicate/parallel edges are silently dropped at
/// Build() — generators and file loaders may emit both.
class GraphBuilder {
 public:
  explicit GraphBuilder(VertexId num_vertices);

  void ReserveEdges(std::uint64_t count) { edges_.reserve(count); }
  /// Records an undirected edge; order of endpoints is irrelevant.
  /// Throws std::out_of_range if an endpoint is >= num_vertices.
  void AddEdge(VertexId u, VertexId v);
  [[nodiscard]] std::uint64_t pending_edges() const noexcept {
    return edges_.size();
  }
  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }

  /// Sorts, deduplicates, symmetrizes and freezes into a Graph.
  /// The builder is consumed.
  [[nodiscard]] Graph Build() &&;

 private:
  VertexId n_;
  // Edges normalized to (min, max) packed in one u64 for fast
  // sort+dedupe of multi-ten-million edge lists.
  std::vector<std::uint64_t> edges_;
};

}  // namespace tcim::graph
