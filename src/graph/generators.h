// Synthetic graph generators.
//
// Two roles: (1) deterministic closed-form families (complete, cycle,
// grid, wheel…) whose triangle counts are known analytically — the
// backbone of the property tests; (2) random families (R-MAT,
// Holme-Kim powerlaw-cluster, Erdős–Rényi, Watts–Strogatz, geometric
// road lattice) used to synthesize stand-ins for the paper's SNAP
// datasets (see datasets.h and DESIGN.md §3 for the substitution
// rationale).
//
// All generators are deterministic functions of their explicit seed.
//
// Layer: §2 graph — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "util/rng.h"

namespace tcim::graph {

// --- closed-form families (tests, examples) -------------------------------

/// K_n: C(n,3) triangles.
[[nodiscard]] Graph Complete(VertexId n);
/// C_n (n>=3): 0 triangles for n>3, 1 for n==3.
[[nodiscard]] Graph Cycle(VertexId n);
/// P_n: 0 triangles.
[[nodiscard]] Graph Path(VertexId n);
/// K_{1,n-1}: 0 triangles.
[[nodiscard]] Graph Star(VertexId n);
/// Wheel W_n (hub + cycle of n-1, n>=4): n-1 triangles.
[[nodiscard]] Graph Wheel(VertexId n);
/// w*h grid lattice: 0 triangles.
[[nodiscard]] Graph GridLattice(VertexId width, VertexId height);
/// K_{a,b}: 0 triangles (bipartite).
[[nodiscard]] Graph CompleteBipartite(VertexId a, VertexId b);

// --- random families -------------------------------------------------------

/// G(n, m): m distinct uniform edges (exact when feasible).
[[nodiscard]] Graph ErdosRenyi(VertexId n, std::uint64_t target_edges,
                               std::uint64_t seed);

/// R-MAT parameters (Chakrabarti et al.); a+b+c+d must be ~1.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  /// Per-level multiplicative noise on (a,b,c,d); avoids the artificial
  /// "staircase" degree plateaus of noiseless R-MAT.
  double noise = 0.1;
};

/// R-MAT graph over the smallest power-of-two grid >= n, filtered to n.
/// Tops up duplicates to land within ~1% of target_edges when the
/// graph is not near-complete.
[[nodiscard]] Graph Rmat(VertexId n, std::uint64_t target_edges,
                         const RmatParams& params, std::uint64_t seed);

/// Holme–Kim powerlaw-cluster model: preferential attachment where each
/// added edge is followed, with probability triad_p, by a
/// triangle-closing edge. High triad_p reproduces the strong local
/// clustering of social graphs (ego-facebook, com-lj, ...).
[[nodiscard]] Graph HolmeKim(VertexId n, std::uint64_t target_edges,
                             double triad_p, std::uint64_t seed);

/// Watts–Strogatz small world: ring of degree 2*half_k, rewired with
/// probability beta.
[[nodiscard]] Graph WattsStrogatz(VertexId n, std::uint32_t half_k,
                                  double beta, std::uint64_t seed);

/// Dense-overlapping-communities model (social/collaboration graphs):
/// vertices are grouped into communities of ~community_size, each
/// community is an Erdős–Rényi blob whose intra-community probability
/// is solved from target_edges; inter_fraction of the edge budget
/// connects random cross-community pairs, and hub_fraction attaches to
/// a small hub set (0.5% of vertices) to reproduce heavy-tailed degree
/// distributions. Triangle density approaches the clique bound
/// (s-2)/3 — far above what preferential-attachment models reach at
/// the same edge count; community_size therefore calibrates T/E.
struct CommunityParams {
  VertexId community_size = 60;
  double inter_fraction = 0.05;
  double hub_fraction = 0.0;
};
[[nodiscard]] Graph CommunityCliques(VertexId n, std::uint64_t target_edges,
                                     const CommunityParams& params,
                                     std::uint64_t seed);

/// Road-network-like lattice: near-planar W×H grid with edges kept with
/// probability keep_p and a diagonal chord added per cell with
/// probability diag_p (the only triangle source — road networks have
/// few triangles). Vertex ids are row-major, matching the strong id
/// locality of the SNAP roadNet graphs.
struct RoadParams {
  double keep_p = 0.72;
  double diag_p = 0.06;
};
[[nodiscard]] Graph GeometricRoad(VertexId n, const RoadParams& params,
                                  std::uint64_t seed);

}  // namespace tcim::graph
