// Structural graph statistics: degree summaries, wedge counts,
// clustering/transitivity — the metrics the paper's intro motivates TC
// with ("the first fundamental step in calculating metrics such as
// clustering coefficient and transitivity ratio").
//
// Layer: §2 graph — see docs/ARCHITECTURE.md. Units: counts are
// dimensionless; clustering/transitivity coefficients lie in [0, 1].
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace tcim::graph {

struct DegreeSummary {
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t median = 0;
  std::uint64_t p99 = 0;
  std::uint64_t isolated_vertices = 0;
};

[[nodiscard]] DegreeSummary SummarizeDegrees(const Graph& g);

/// Number of wedges (paths of length 2): Σ_v d(v)·(d(v)-1)/2.
[[nodiscard]] std::uint64_t WedgeCount(const Graph& g);

/// Transitivity ratio (a.k.a. global clustering coefficient):
/// 3·triangles / wedges. Caller supplies the triangle count (from any
/// of the TC implementations in this repo).
[[nodiscard]] double Transitivity(const Graph& g, std::uint64_t triangles);

/// Mean of the local clustering coefficients over up to `max_samples`
/// uniformly sampled vertices (exact when max_samples >= n).
/// Deterministic for a fixed seed.
[[nodiscard]] double AverageLocalClustering(const Graph& g,
                                            std::uint64_t max_samples,
                                            std::uint64_t seed);

/// Histogram of degrees bucketed by floor(log2(d)) + an underflow
/// bucket for d==0; bucket[i] counts vertices with degree in
/// [2^(i-1), 2^i) for i>=1. Used to eyeball power-law shape of the
/// synthetic social graphs.
[[nodiscard]] std::vector<std::uint64_t> Log2DegreeHistogram(const Graph& g);

}  // namespace tcim::graph
