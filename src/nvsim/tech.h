// 45nm-class technology parameters for the NVSim-style array model.
//
// The paper characterizes its circuits with the 45nm FreePDK CMOS
// library and feeds device results into NVSim [16]; this header plays
// the role of NVSim's technology file. Values are calibrated to the
// FreePDK45 / NVSim 45nm defaults (wire RC, FO4, sense-amp class
// numbers) — the tests pin sanity ranges rather than exact values.
//
// Layer: §4 nvsim — see docs/ARCHITECTURE.md. Units: SI (seconds,
// joules, Ohm/m, F/m); per-field comments state each quantity.
#pragma once

#include <cstdint>

namespace tcim::nvsim {

struct TechnologyParams {
  double feature_size = 45e-9;     ///< F [m]
  double vdd = 1.1;                ///< core supply [V]
  double fo4_delay = 17e-12;       ///< FO4 inverter delay [s]

  // Interconnect (intermediate metal), per meter.
  double wire_res_per_m = 2.5e6;   ///< [Ohm/m]  (2.5 Ohm/um)
  double wire_cap_per_m = 0.20e-9; ///< [F/m]    (0.20 fF/um)
  /// Repeated global wire velocity used for H-tree estimates [s/m].
  double global_wire_delay_per_m = 80e-12 / 1e-3;  // 80 ps/mm

  // 1T1R STT-MRAM cell.
  double cell_area_f2 = 40.0;      ///< cell area [F^2]
  double wl_cap_per_cell = 0.10e-15;  ///< access gate load on WL [F]
  double bl_cap_per_cell = 0.05e-15;  ///< drain junction load on BL [F]

  // Sense amplifier (current-mode, with READ and AND references,
  // Fig. 4 right).
  double sa_base_latency = 0.5e-9;  ///< resolve time at nominal margin [s]
  double sa_nominal_margin = 5e-6;  ///< margin the base latency assumes [A]
  double sa_energy = 5e-15;         ///< per sense event [J]
  double sa_leakage = 2e-6;         ///< per SA [W]

  // Row decoder / drivers.
  double decoder_stage_delay_factor = 1.5;  ///< stages = f * log2(rows)
  double decoder_energy = 20e-15;   ///< per activation [J]
  double wl_driver_delay = 50e-12;  ///< driver insertion delay [s]
  double write_driver_energy_overhead = 0.2;  ///< fraction of cell E_write

  // Background leakage of one subarray's periphery other than SAs [W].
  double subarray_ctrl_leakage = 20e-6;

  // Per-access controller/buffer overhead at the chip edge.
  double io_fixed_latency = 0.5e-9;  ///< [s]
  double io_energy_per_bit = 2e-15;  ///< [J/bit]

  void Validate() const;
};

/// The default 45nm configuration used throughout the repo.
[[nodiscard]] TechnologyParams Default45nm() noexcept;

/// Scaled technology presets for cross-node exploration. Constant-
/// field-style scaling of the 45nm anchor: wire RC per meter worsens
/// (resistance grows faster than capacitance shrinks), gate delay and
/// cell caps improve with the node.
[[nodiscard]] TechnologyParams Scaled65nm() noexcept;
[[nodiscard]] TechnologyParams Scaled32nm() noexcept;

}  // namespace tcim::nvsim
