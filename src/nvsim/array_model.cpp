#include "nvsim/array_model.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tcim::nvsim {

void ArrayConfig::Validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("ArrayConfig: ") + what);
    }
  };
  check(capacity_bytes > 0, "capacity must be positive");
  check(subarray_rows >= 8 && subarray_cols >= 8, "subarray too small");
  check((subarray_rows & (subarray_rows - 1)) == 0,
        "subarray rows must be a power of two");
  check(access_width_bits > 0 && access_width_bits <= subarray_cols,
        "access width must fit in a row");
  check(subarray_cols % access_width_bits == 0,
        "cols must be a multiple of the access width");
  check(banks > 0 && mats_per_bank > 0, "need at least one bank/mat");
}

ArrayModel::ArrayModel(const TechnologyParams& tech, const ArrayConfig& config,
                       const device::MtjDevice& device)
    : tech_(tech), config_(config) {
  tech_.Validate();
  config_.Validate();
  Compute(device);
}

double ArrayModel::DecoderDelay() const noexcept {
  const double stages = tech_.decoder_stage_delay_factor *
                        std::log2(static_cast<double>(config_.subarray_rows));
  return stages * tech_.fo4_delay;
}

double ArrayModel::WordlineDelay() const noexcept {
  // Distributed RC (Elmore, 0.38 factor) across the row + driver.
  const double cell_pitch =
      std::sqrt(tech_.cell_area_f2) * tech_.feature_size;
  const double r = tech_.wire_res_per_m * cell_pitch * config_.subarray_cols;
  const double c = tech_.wl_cap_per_cell * config_.subarray_cols +
                   tech_.wire_cap_per_m * cell_pitch * config_.subarray_cols;
  return tech_.wl_driver_delay + 0.38 * r * c;
}

double ArrayModel::BitlineDelay() const noexcept {
  const double cell_pitch =
      std::sqrt(tech_.cell_area_f2) * tech_.feature_size;
  const double r = tech_.wire_res_per_m * cell_pitch * config_.subarray_rows;
  const double c = tech_.bl_cap_per_cell * config_.subarray_rows +
                   tech_.wire_cap_per_m * cell_pitch * config_.subarray_rows;
  return 0.38 * r * c;
}

double ArrayModel::SenseDelay(double margin_amps) const noexcept {
  // Current-mode SA resolves slower as the margin shrinks; nominal
  // margin -> base latency, half margin -> double latency.
  if (margin_amps <= 0) return 1e-6;  // pathological margin: flag via huge t
  return tech_.sa_base_latency * (tech_.sa_nominal_margin / margin_amps);
}

double ArrayModel::SubarrayAreaMm2() const noexcept {
  const double cell_area =
      tech_.cell_area_f2 * tech_.feature_size * tech_.feature_size;
  const double cells_mm2 = cell_area * config_.subarray_bits() * 1e6;
  // NVSim-class periphery overhead (decoder, SA strip, drivers): ~40%.
  return cells_mm2 * 1.4;
}

double ArrayModel::GlobalTransferDelay() const noexcept {
  // H-tree from chip edge to a mat: half the chip diagonal as the
  // representative repeated-wire distance.
  const double chip_mm2 = SubarrayAreaMm2() *
                          static_cast<double>(config_.total_subarrays());
  const double edge_m = std::sqrt(chip_mm2) * 1e-3;
  return tech_.io_fixed_latency +
         tech_.global_wire_delay_per_m * edge_m * 0.5;
}

void ArrayModel::Compute(const device::MtjDevice& device) {
  const device::MtjElectrical& e = device.Characterize();
  if (e.switching_time <= 0) {
    throw std::invalid_argument(
        "ArrayModel: device write current does not switch the MTJ");
  }
  const double bits = config_.access_width_bits;
  const double vdd = tech_.vdd;
  const double v_read = device.params().read_voltage;
  const double v_write = device.params().write_voltage;

  const double cell_pitch =
      std::sqrt(tech_.cell_area_f2) * tech_.feature_size;
  const double wl_cap = tech_.wl_cap_per_cell * config_.subarray_cols +
                        tech_.wire_cap_per_m * cell_pitch *
                            config_.subarray_cols;
  const double wl_energy = wl_cap * vdd * vdd;
  const double transfer = GlobalTransferDelay();
  const double io_energy = tech_.io_energy_per_bit * bits;

  // READ: decode -> activate one WL -> bit-line develop -> sense.
  const double t_read_core = DecoderDelay() + WordlineDelay() +
                             BitlineDelay() +
                             SenseDelay(e.read_margin);
  const double read_sense_energy =
      bits * (tech_.sa_energy +
              e.i_read_1 * v_read * SenseDelay(e.read_margin));
  perf_.read_slice.latency = t_read_core + transfer;
  perf_.read_slice.energy =
      tech_.decoder_energy + wl_energy + read_sense_energy + io_energy;

  // AND: two WLs activated simultaneously (multi-row activation),
  // summed current sensed against the AND reference.
  const double t_and_core = DecoderDelay() + WordlineDelay() +
                            BitlineDelay() + SenseDelay(e.and_margin);
  const double and_sense_energy =
      bits * (tech_.sa_energy +
              e.i_and_11 * v_read * SenseDelay(e.and_margin));
  perf_.and_slice.latency = t_and_core + transfer;
  perf_.and_slice.energy = tech_.decoder_energy + 2.0 * wl_energy +
                           and_sense_energy + io_energy;

  // WRITE: decode -> activate -> drive the switching pulse on all
  // access_width bits in parallel.
  perf_.write_slice.latency =
      DecoderDelay() + WordlineDelay() + e.switching_time + transfer;
  const double write_cell_energy =
      bits * e.write_energy_bit * (1.0 + tech_.write_driver_energy_overhead);
  // Unselected-column precharge + driver CV^2, folded into the
  // overhead factor; half-selected rows do not conduct (1T1R).
  perf_.write_slice.energy = tech_.decoder_energy + wl_energy +
                             write_cell_energy + io_energy;
  (void)v_write;  // absorbed in e.write_energy_bit

  // Chip level.
  perf_.subarrays = config_.total_subarrays();
  perf_.banks = config_.banks;
  perf_.parallel_lanes = perf_.subarrays;
  const std::uint32_t sas_per_subarray =
      config_.subarray_cols;  // one SA per column, muxed per access
  perf_.leakage_w =
      static_cast<double>(perf_.subarrays) *
      (tech_.subarray_ctrl_leakage +
       tech_.sa_leakage * sas_per_subarray /
           static_cast<double>(config_.subarray_cols / bits));
  perf_.area_mm2 =
      SubarrayAreaMm2() * static_cast<double>(perf_.subarrays);
}

std::string ArrayPerf::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "read %.2f ns / %.2f pJ; and %.2f ns / %.2f pJ; write %.2f ns / "
      "%.2f pJ; %llu subarrays, %.1f mm^2, %.1f mW leakage",
      read_slice.latency * 1e9, read_slice.energy * 1e12,
      and_slice.latency * 1e9, and_slice.energy * 1e12,
      write_slice.latency * 1e9, write_slice.energy * 1e12,
      static_cast<unsigned long long>(subarrays), area_mm2,
      leakage_w * 1e3);
  return buf;
}

}  // namespace tcim::nvsim
