// NVSim-style analytical performance model of the computational
// STT-MRAM chip (paper §IV-C Fig. 4 organization; §V-A methodology).
//
// Hierarchy (matching Fig. 4): chip -> banks -> mats -> subarrays.
// Every subarray is rows x cols 1T1R cells with a shared row decoder,
// multi-row activation support, per-column-group sense amplifiers with
// READ and AND references, and write drivers. An access moves one
// *slice* (access_width_bits, default 64 = |S|) between the local row
// buffer and one subarray row segment.
//
// The model produces per-op latency/energy (OpCost) and chip-level
// area/leakage — the numbers the behavioural simulator (core/perf_model)
// multiplies with the architectural op counts.
//
// Layer: §4 nvsim — see docs/ARCHITECTURE.md. Units: OpCost
// latencies in seconds and energies in joules; chip leakage in
// watts; chip area in mm².
#pragma once

#include <cstdint>
#include <string>

#include "device/mtj_device.h"
#include "nvsim/tech.h"

namespace tcim::nvsim {

/// Latency + dynamic energy of one array operation.
struct OpCost {
  double latency = 0.0;  ///< [s]
  double energy = 0.0;   ///< [J]
};

/// Physical organization of the computational array.
struct ArrayConfig {
  std::uint64_t capacity_bytes = 16ULL << 20;  ///< paper: 16 MB
  std::uint32_t subarray_rows = 512;
  std::uint32_t subarray_cols = 512;
  std::uint32_t access_width_bits = 64;  ///< one slice per access
  std::uint32_t banks = 8;
  std::uint32_t mats_per_bank = 8;
  // subarrays_per_mat is derived from capacity.

  void Validate() const;

  [[nodiscard]] std::uint64_t bits() const noexcept {
    return capacity_bytes * 8ULL;
  }
  [[nodiscard]] std::uint64_t subarray_bits() const noexcept {
    return static_cast<std::uint64_t>(subarray_rows) * subarray_cols;
  }
  [[nodiscard]] std::uint64_t total_subarrays() const noexcept {
    return (bits() + subarray_bits() - 1) / subarray_bits();
  }
  [[nodiscard]] std::uint64_t subarrays_per_mat() const noexcept {
    const std::uint64_t mats =
        static_cast<std::uint64_t>(banks) * mats_per_bank;
    return (total_subarrays() + mats - 1) / mats;
  }
  /// Slices a subarray row holds (cols / access width).
  [[nodiscard]] std::uint32_t slices_per_row() const noexcept {
    return subarray_cols / access_width_bits;
  }
};

/// Chip-level performance summary.
struct ArrayPerf {
  OpCost read_slice;   ///< read one slice (READ reference)
  OpCost write_slice;  ///< write one slice
  OpCost and_slice;    ///< dual-row activation AND of two slices
  double leakage_w = 0.0;   ///< whole chip background power
  double area_mm2 = 0.0;    ///< whole chip estimate
  std::uint64_t subarrays = 0;
  std::uint32_t banks = 0;
  /// Independent op pipelines for the parallel latency model
  /// (= subarrays; each subarray can activate independently).
  std::uint64_t parallel_lanes = 0;

  [[nodiscard]] std::string Summary() const;
};

/// The analytical model; immutable after construction.
class ArrayModel {
 public:
  ArrayModel(const TechnologyParams& tech, const ArrayConfig& config,
             const device::MtjDevice& device);

  [[nodiscard]] const ArrayPerf& perf() const noexcept { return perf_; }
  [[nodiscard]] const ArrayConfig& config() const noexcept { return config_; }
  [[nodiscard]] const TechnologyParams& tech() const noexcept {
    return tech_;
  }

  // Individual component estimates, exposed for tests and the
  // device-exploration example.
  [[nodiscard]] double DecoderDelay() const noexcept;
  [[nodiscard]] double WordlineDelay() const noexcept;
  [[nodiscard]] double BitlineDelay() const noexcept;
  [[nodiscard]] double SenseDelay(double margin_amps) const noexcept;
  [[nodiscard]] double GlobalTransferDelay() const noexcept;
  [[nodiscard]] double SubarrayAreaMm2() const noexcept;

 private:
  void Compute(const device::MtjDevice& device);

  TechnologyParams tech_;
  ArrayConfig config_;
  ArrayPerf perf_;
};

}  // namespace tcim::nvsim
