#include "nvsim/tech.h"

#include <stdexcept>

namespace tcim::nvsim {

void TechnologyParams::Validate() const {
  const auto check = [](bool ok, const char* what) {
    if (!ok) {
      throw std::invalid_argument(std::string("TechnologyParams: ") + what);
    }
  };
  check(feature_size > 0, "feature size must be positive");
  check(vdd > 0, "vdd must be positive");
  check(fo4_delay > 0, "fo4 delay must be positive");
  check(wire_res_per_m > 0 && wire_cap_per_m > 0, "wire RC must be positive");
  check(cell_area_f2 > 0, "cell area must be positive");
  check(wl_cap_per_cell > 0 && bl_cap_per_cell > 0,
        "cell caps must be positive");
  check(sa_base_latency > 0 && sa_nominal_margin > 0,
        "SA parameters must be positive");
}

TechnologyParams Default45nm() noexcept { return TechnologyParams{}; }

namespace {

/// First-order node scaling from the 45nm anchor by linear factor s
/// (s > 1 = older node). Wire resistance per meter scales ~1/s^2
/// (cross-section), capacitance per meter is roughly constant, device
/// delay and caps scale ~s.
TechnologyParams ScaleFrom45(double s) noexcept {
  TechnologyParams t = Default45nm();
  t.feature_size *= s;
  t.fo4_delay *= s;
  t.vdd *= (s >= 1.0 ? 1.0 + 0.1 * (s - 1.0) : 1.0 - 0.15 * (1.0 - s));
  t.wire_res_per_m /= s * s;
  t.wl_cap_per_cell *= s;
  t.bl_cap_per_cell *= s;
  t.sa_energy *= s;
  t.decoder_energy *= s;
  t.io_energy_per_bit *= s;
  return t;
}

}  // namespace

TechnologyParams Scaled65nm() noexcept { return ScaleFrom45(65.0 / 45.0); }

TechnologyParams Scaled32nm() noexcept { return ScaleFrom45(32.0 / 45.0); }

}  // namespace tcim::nvsim
