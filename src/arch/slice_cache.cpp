#include "arch/slice_cache.h"

#include <stdexcept>

namespace tcim::arch {

std::string ToString(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kFifo:
      return "FIFO";
    case ReplacementPolicy::kRandom:
      return "random";
  }
  return "?";
}

SliceCache::SliceCache(std::uint64_t num_sets, std::uint32_t associativity,
                       ReplacementPolicy policy, std::uint64_t seed)
    : associativity_(associativity), policy_(policy), rng_(seed) {
  if (num_sets == 0 || associativity == 0) {
    throw std::invalid_argument(
        "SliceCache: need at least one set and one way");
  }
  sets_.resize(num_sets);
  for (Set& s : sets_) {
    s.ways.resize(associativity_);
  }
}

std::uint32_t SliceCache::PickVictim(const Set& set) {
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < associativity_; ++w) {
        if (set.ways[w].last_use < set.ways[victim].last_use) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::kFifo: {
      std::uint32_t victim = 0;
      for (std::uint32_t w = 1; w < associativity_; ++w) {
        if (set.ways[w].inserted < set.ways[victim].inserted) victim = w;
      }
      return victim;
    }
    case ReplacementPolicy::kRandom:
      return static_cast<std::uint32_t>(rng_.UniformBelow(associativity_));
  }
  return 0;
}

AccessResult SliceCache::AccessImpl(std::uint64_t set_id, std::uint64_t tag,
                                    bool count_stats) {
  if (set_id >= sets_.size()) {
    throw std::out_of_range("SliceCache::Access: set out of range");
  }
  Set& set = sets_[set_id];
  if (count_stats) ++stats_.lookups;
  ++clock_;

  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Way& way = set.ways[w];
    if (way.valid && way.tag == tag) {
      way.last_use = clock_;
      if (count_stats) ++stats_.hits;
      return {.hit = true, .way = w, .evicted = false, .evicted_tag = 0};
    }
  }

  if (count_stats) {
    ++stats_.misses;
    ++stats_.inserts;
  }
  // Prefer an invalid way (cold fill).
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Way& way = set.ways[w];
    if (!way.valid) {
      way = Way{.tag = tag, .valid = true, .last_use = clock_,
                .inserted = clock_};
      return {.hit = false, .way = w, .evicted = false, .evicted_tag = 0};
    }
  }
  // Full set: evict per policy (the paper's "data exchange").
  const std::uint32_t victim = PickVictim(set);
  const std::uint64_t old_tag = set.ways[victim].tag;
  set.ways[victim] = Way{.tag = tag, .valid = true, .last_use = clock_,
                         .inserted = clock_};
  if (count_stats) ++stats_.exchanges;
  return {.hit = false, .way = victim, .evicted = true,
          .evicted_tag = old_tag};
}

AccessResult SliceCache::Access(std::uint64_t set_id, std::uint64_t tag) {
  return AccessImpl(set_id, tag, /*count_stats=*/true);
}

AccessResult SliceCache::Install(std::uint64_t set_id, std::uint64_t tag) {
  return AccessImpl(set_id, tag, /*count_stats=*/false);
}

bool SliceCache::Contains(std::uint64_t set_id, std::uint64_t tag) const {
  if (set_id >= sets_.size()) {
    throw std::out_of_range("SliceCache::Contains: set out of range");
  }
  for (const Way& way : sets_[set_id].ways) {
    if (way.valid && way.tag == tag) return true;
  }
  return false;
}

std::uint32_t SliceCache::Occupancy(std::uint64_t set_id) const {
  if (set_id >= sets_.size()) {
    throw std::out_of_range("SliceCache::Occupancy: set out of range");
  }
  std::uint32_t n = 0;
  for (const Way& way : sets_[set_id].ways) {
    if (way.valid) ++n;
  }
  return n;
}

}  // namespace tcim::arch
