// Slice-index -> physical placement mapping.
//
// The multi-row-activation AND can only combine slices that sit in the
// SAME subarray and the SAME column group (pim::ComputationalArray
// enforces this). Because the AND partners of a row slice RiSk are
// exactly the column slices CjSk with the *same slice index k*, the
// mapper sends column slice CjSk to the set
//
//   set(k, j) = (k * spread + j mod spread) mod num_sets,
//   num_sets = subarrays * slices_per_row,
//
// where `spread` >= 1 fans the columns of one slice index out over
// several sets. spread = 1 is the minimal mapping (row slice staged
// once per (row, k) — the paper's "row loaded once"); the controller
// raises spread when the graph has fewer slice indices than the array
// has sets, so capacity is not stranded — at the price of staging the
// row slice once per (k, j mod spread) group actually touched.
//
// Inside a set, row 0 of the subarray is the STAGING row that holds
// the current row slice (overwritten per processed graph row, the
// paper's row-reuse), and rows 1..R-1 are cache ways for column
// slices. Row slices and their column partners are therefore always
// AND-compatible by construction.
//
// Layer: §7 arch — see docs/ARCHITECTURE.md.
#pragma once

#include <cstdint>

#include "pim/computational_array.h"

namespace tcim::arch {

class SliceMapper {
 public:
  explicit SliceMapper(const nvsim::ArrayConfig& config)
      : slices_per_row_(config.slices_per_row()),
        num_sets_(config.total_subarrays() *
                  static_cast<std::uint64_t>(config.slices_per_row())),
        ways_per_set_(config.subarray_rows - 1) {}

  [[nodiscard]] std::uint64_t num_sets() const noexcept { return num_sets_; }
  /// Cache ways per set (one row reserved for staging).
  [[nodiscard]] std::uint32_t ways_per_set() const noexcept {
    return ways_per_set_;
  }

  /// Set of column slice CjSk under the given spread; see file
  /// comment. spread must be >= 1. Deterministic in (k, j).
  [[nodiscard]] std::uint64_t SetOf(std::uint32_t slice_index,
                                    std::uint32_t column_vertex,
                                    std::uint64_t spread) const noexcept {
    const std::uint64_t base =
        static_cast<std::uint64_t>(slice_index) * spread +
        column_vertex % spread;
    return base % num_sets_;
  }

  /// Spread that fills the array for a graph whose vectors have
  /// `slices_per_vector` slice positions.
  [[nodiscard]] std::uint64_t SpreadFor(
      std::uint64_t slices_per_vector) const noexcept {
    if (slices_per_vector == 0) return 1;
    const std::uint64_t spread = num_sets_ / slices_per_vector;
    return spread == 0 ? 1 : spread;
  }

  /// Physical address of a set's staging row slot.
  [[nodiscard]] pim::SliceAddr StagingAddr(std::uint64_t set) const noexcept {
    return MakeAddr(set, /*row=*/0);
  }

  /// Physical address of cache way w of a set (w in [0, ways_per_set)).
  [[nodiscard]] pim::SliceAddr WayAddr(std::uint64_t set,
                                       std::uint32_t way) const noexcept {
    return MakeAddr(set, /*row=*/way + 1);
  }

 private:
  [[nodiscard]] pim::SliceAddr MakeAddr(std::uint64_t set,
                                        std::uint32_t row) const noexcept {
    pim::SliceAddr addr;
    addr.subarray = static_cast<std::uint32_t>(set / slices_per_row_);
    addr.col_group = static_cast<std::uint32_t>(set % slices_per_row_);
    addr.row = row;
    return addr;
  }

  std::uint32_t slices_per_row_;
  std::uint64_t num_sets_;
  std::uint32_t ways_per_set_;
};

}  // namespace tcim::arch
