// Column-slice cache implementing the paper's data reuse & exchange
// policy (§IV-A, Algorithm 1).
//
// The computational array is managed as a set-associative cache of
// column slices: slice index k maps to a fixed set (a (subarray,
// column-group) pair — the multi-row-activation constraint makes this
// mapping *mandatory*, see arch/mapper.h), and the rows of that set
// are the ways. On a full set the paper replaces the least recently
// used column ("We choose the least recently used (LRU) column for
// replacement, and more optimized replacement strategy could be
// possible" — the alternative policies exist for exactly that
// ablation).
//
// Taxonomy (Fig. 5): a lookup is a *hit* if the slice is resident; a
// *miss* otherwise; a miss that must evict a resident slice to make
// room is additionally an *exchange*.
//
// Layer: §7 arch — see docs/ARCHITECTURE.md. Units: CacheStats fields
// are dimensionless counts; HitRate() lies in [0, 1].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace tcim::arch {

enum class ReplacementPolicy : std::uint8_t {
  kLru,     ///< paper default
  kFifo,    ///< insertion order
  kRandom,  ///< uniform victim (seeded, deterministic)
};

[[nodiscard]] std::string ToString(ReplacementPolicy policy);

/// Statistics of one run (also the Fig. 5 data source).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;     ///< = lookups - hits
  std::uint64_t exchanges = 0;  ///< misses that evicted a resident slice
  std::uint64_t inserts = 0;    ///< = misses (every miss loads the slice)

  [[nodiscard]] double HitRate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
  [[nodiscard]] double ExchangeRate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(exchanges) /
                              static_cast<double>(lookups);
  }
  /// Cold-miss fraction (miss but no eviction needed).
  [[nodiscard]] double ColdMissRate() const noexcept {
    return lookups == 0 ? 0.0
                        : static_cast<double>(misses - exchanges) /
                              static_cast<double>(lookups);
  }
};

/// Result of one cache access.
struct AccessResult {
  bool hit = false;
  std::uint32_t way = 0;       ///< way now holding the slice
  bool evicted = false;        ///< an older slice was displaced
  std::uint64_t evicted_tag = 0;
};

/// Set-associative cache of slice tags. Pure bookkeeping — data
/// movement is the controller's job; this class only decides placement
/// and victims.
class SliceCache {
 public:
  /// num_sets sets of `associativity` ways each.
  SliceCache(std::uint64_t num_sets, std::uint32_t associativity,
             ReplacementPolicy policy, std::uint64_t seed = 1);

  [[nodiscard]] std::uint64_t num_sets() const noexcept {
    return sets_.size();
  }
  [[nodiscard]] std::uint32_t associativity() const noexcept {
    return associativity_;
  }
  [[nodiscard]] std::uint64_t capacity_slices() const noexcept {
    return num_sets() * associativity_;
  }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ReplacementPolicy policy() const noexcept { return policy_; }

  /// Looks up `tag` in `set`; on miss, allocates a way (evicting per
  /// policy when full). The returned way is where the slice data must
  /// reside after the call.
  AccessResult Access(std::uint64_t set, std::uint64_t tag);

  /// Same placement/eviction as Access but WITHOUT touching the run
  /// statistics — the hub-replica warm-up path of the 2D runtime
  /// (load-time work, so it must not count as lookups/misses in the
  /// Fig. 5 accounting). The LRU clock still advances, so warmed
  /// slices age normally against later fills.
  AccessResult Install(std::uint64_t set, std::uint64_t tag);

  /// Lookup without allocation (tests/diagnostics).
  [[nodiscard]] bool Contains(std::uint64_t set, std::uint64_t tag) const;
  /// Number of resident slices in one set.
  [[nodiscard]] std::uint32_t Occupancy(std::uint64_t set) const;

  void ResetStats() noexcept { stats_ = {}; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    bool valid = false;
    std::uint64_t last_use = 0;   // LRU clock
    std::uint64_t inserted = 0;   // FIFO clock
  };
  struct Set {
    std::vector<Way> ways;
  };

  [[nodiscard]] std::uint32_t PickVictim(const Set& set);
  AccessResult AccessImpl(std::uint64_t set, std::uint64_t tag,
                          bool count_stats);

  std::uint32_t associativity_;
  ReplacementPolicy policy_;
  std::vector<Set> sets_;
  CacheStats stats_;
  std::uint64_t clock_ = 0;
  util::Xoshiro256 rng_;
};

}  // namespace tcim::arch
