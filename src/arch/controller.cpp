#include "arch/controller.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace tcim::arch {

std::uint32_t Controller::EffectiveWays(const nvsim::ArrayConfig& config,
                                        const ControllerConfig& controller) {
  const std::uint32_t physical = config.subarray_rows - 1;  // minus staging
  if (controller.capacity_model == CapacityModel::kDataOnly) {
    return physical;
  }
  // Charge the 4-byte valid-slice index against capacity:
  // usable fraction = (|S|/8) / (|S|/8 + 4).
  const double slice_bytes = config.access_width_bits / 8.0;
  const double fraction = slice_bytes / (slice_bytes + 4.0);
  const auto ways = static_cast<std::uint32_t>(physical * fraction);
  return std::max<std::uint32_t>(ways, 1);
}

Controller::Controller(pim::ComputationalArray& array,
                       const ControllerConfig& config)
    : array_(array),
      config_(config),
      mapper_(array.config()),
      cache_(mapper_.num_sets(), EffectiveWays(array.config(), config),
             config.policy, config.rng_seed) {}

ExecStats Controller::Run(const bit::SlicedMatrix& matrix,
                          EdgeCountSink* sink) {
  return RunRows(matrix, 0, matrix.num_vertices(), sink);
}

// One work item = one valid slice pair of one edge.
struct Controller::WorkItem {
  std::uint32_t slice_index;
  std::uint32_t row_ordinal;   // ordinal of RiSk within row i
  std::uint32_t col_vertex;    // j
  std::uint32_t col_ordinal;   // ordinal of CjSk within column j
  std::uint32_t edge_ordinal;  // index into this row's edge list
};

void Controller::ProcessRowWork(const bit::SlicedMatrix& matrix,
                                std::uint32_t i, std::uint64_t spread,
                                std::vector<WorkItem>& work,
                                const std::vector<std::uint32_t>& row_edges,
                                std::vector<std::uint64_t>& row_edge_count,
                                ExecStats& stats, EdgeCountSink* sink) {
  const bit::SlicedStore& rows = matrix.rows();
  const bit::SlicedStore& cols = matrix.cols();
  const std::uint32_t slices_per_row = array_.slices_per_row();
  if (sink != nullptr) {
    row_edge_count.assign(row_edges.size(), 0);
  }
  // Group by target set so each (row slice, set) staging write
  // happens once per processed row.
  std::sort(work.begin(), work.end(),
            [&](const WorkItem& a, const WorkItem& b) {
              if (a.slice_index != b.slice_index) {
                return a.slice_index < b.slice_index;
              }
              const std::uint32_t am = a.col_vertex % spread;
              const std::uint32_t bm = b.col_vertex % spread;
              return am != bm ? am < bm : a.col_vertex < b.col_vertex;
            });

  std::uint64_t staged_set = 0;
  std::uint32_t staged_k = 0;
  bool staged = false;
  for (const WorkItem& item : work) {
    const std::uint64_t set =
        mapper_.SetOf(item.slice_index, item.col_vertex, spread);
    const std::uint64_t subarray = set / slices_per_row;
    // Stage the row slice on first use within this row's set group.
    // The slice index is part of the staging key: two distinct k can
    // alias onto one set (k mod num_sets), and the staging row then
    // must be rewritten with the new RiSk.
    if (!staged || staged_set != set || staged_k != item.slice_index) {
      array_.WriteSlice(mapper_.StagingAddr(set),
                        rows.SliceWords(i, item.row_ordinal));
      ++stats.row_slice_writes;
      ++stats.per_subarray_writes[subarray];
      staged = true;
      staged_set = set;
      staged_k = item.slice_index;
    }
    // Column slice: cache lookup, fill on miss.
    const std::uint64_t tag =
        cols.GlobalOrdinal(item.col_vertex, item.col_ordinal);
    const AccessResult access = cache_.Access(set, tag);
    const pim::SliceAddr col_addr = mapper_.WayAddr(set, access.way);
    if (!access.hit) {
      array_.WriteSlice(col_addr,
                        cols.SliceWords(item.col_vertex, item.col_ordinal));
      ++stats.col_slice_writes;
      ++stats.per_subarray_writes[subarray];
    }
    // Dual-row activation AND + bit count.
    const std::uint64_t pair_count =
        array_.AndPopcount(mapper_.StagingAddr(set), col_addr);
    if (sink != nullptr) {
      row_edge_count[item.edge_ordinal] += pair_count;
    }
    ++stats.valid_pairs;
    ++stats.per_subarray_ands[subarray];
    stats.bitcount_words += array_.words_per_slice();
  }
  if (sink != nullptr) {
    for (std::size_t e = 0; e < row_edges.size(); ++e) {
      sink->OnEdge(i, row_edges[e], row_edge_count[e]);
    }
  }
}

ExecStats Controller::RunRows(const bit::SlicedMatrix& matrix,
                              std::uint32_t row_begin, std::uint32_t row_end,
                              EdgeCountSink* sink) {
  if (matrix.slice_bits() != array_.config().access_width_bits) {
    throw std::invalid_argument(
        "Controller: matrix slice width != array access width");
  }
  if (row_begin > row_end || row_end > matrix.num_vertices()) {
    throw std::out_of_range("Controller::RunRows: invalid row range");
  }
  const bit::SlicedStore& rows = matrix.rows();

  ExecStats stats;
  stats.per_subarray_ands.assign(array_.num_subarrays(), 0);
  stats.per_subarray_writes.assign(array_.num_subarrays(), 0);
  // Fan columns of one slice index over several sets when the graph
  // has fewer slice indices than the array has sets (see mapper.h).
  const std::uint64_t spread =
      config_.spread_override != 0
          ? config_.spread_override
          : mapper_.SpreadFor(rows.slices_per_vector());
  stats.spread = spread;

  std::vector<WorkItem> work;
  std::vector<std::uint32_t> row_edges;       // j per edge of this row
  std::vector<std::uint64_t> row_edge_count;  // per-edge BitCount

  for (std::uint32_t i = row_begin; i < row_end; ++i) {
    // Gather this row's work, then process it grouped by slice index so
    // each RiSk is staged exactly once per row (Algorithm 1's
    // "load Slice1 into memory" amortized by the row-reuse rule).
    work.clear();
    row_edges.clear();
    rows.ForEachSetBit(i, [&](std::uint64_t j64) {
      const auto j = static_cast<std::uint32_t>(j64);
      ++stats.edges_processed;
      const auto edge_ordinal = static_cast<std::uint32_t>(row_edges.size());
      row_edges.push_back(j);
      matrix.ForEachValidPair(
          i, j, [&](std::uint32_t k, std::size_t ra, std::size_t cb) {
            work.push_back(WorkItem{k, static_cast<std::uint32_t>(ra), j,
                                    static_cast<std::uint32_t>(cb),
                                    edge_ordinal});
          });
    });
    ProcessRowWork(matrix, i, spread, work, row_edges, row_edge_count, stats,
                   sink);
  }

  stats.cache = cache_.stats();
  stats.accumulated_bitcount = array_.accumulated_count();
  return stats;
}

void Controller::WarmReplicas(const bit::SlicedMatrix& matrix,
                              const std::vector<std::uint32_t>& hub_cols,
                              std::uint64_t spread, ExecStats& stats) {
  // Install every valid slice of the hub columns into its set before
  // the run — the bank's private replica pre-load. Install() places
  // without counting lookup stats; the array write is real (the
  // functional array then serves hits from the warmed way), counted in
  // replica_slice_writes so the perf model can price the energy while
  // keeping it off the per-query latency path.
  const bit::SlicedStore& cols = matrix.cols();
  for (const std::uint32_t j : hub_cols) {
    const bit::SlicedStore::VectorSlices vs = cols.Slices(j);
    for (std::size_t k = 0; k < vs.indices.size(); ++k) {
      const std::uint64_t set = mapper_.SetOf(vs.indices[k], j, spread);
      const AccessResult placed = cache_.Install(set, cols.GlobalOrdinal(j, k));
      if (!placed.hit) {
        array_.WriteSlice(mapper_.WayAddr(set, placed.way),
                          cols.SliceWords(j, k));
        ++stats.replica_slice_writes;
      }
    }
  }
}

ExecStats Controller::RunPlan(const bit::SlicedMatrix& matrix,
                              const BankExecPlan& plan, EdgeCountSink* sink) {
  if (matrix.slice_bits() != array_.config().access_width_bits) {
    throw std::invalid_argument(
        "Controller: matrix slice width != array access width");
  }
  const std::uint32_t n = matrix.num_vertices();
  if (plan.hub_row_begin > plan.hub_row_end || plan.hub_row_end > n) {
    throw std::out_of_range("Controller::RunPlan: invalid hub row range");
  }
  for (const BankExecPlan::Tile& tile : plan.tiles) {
    if (tile.row_begin > tile.row_end || tile.row_end > n ||
        tile.col_begin > tile.col_end || tile.col_end > n) {
      throw std::out_of_range("Controller::RunPlan: invalid tile");
    }
  }
  const bit::SlicedStore& rows = matrix.rows();

  ExecStats stats;
  stats.per_subarray_ands.assign(array_.num_subarrays(), 0);
  stats.per_subarray_writes.assign(array_.num_subarrays(), 0);
  const std::uint64_t spread =
      config_.spread_override != 0
          ? config_.spread_override
          : mapper_.SpreadFor(rows.slices_per_vector());
  stats.spread = spread;

  const bool have_hubs = plan.is_hub != nullptr && !plan.hub_cols.empty();
  if (have_hubs) {
    WarmReplicas(matrix, plan.hub_cols, spread, stats);
  }

  std::vector<WorkItem> work;
  std::vector<std::uint32_t> row_edges;
  std::vector<std::uint64_t> row_edge_count;
  const auto gather_arc = [&](std::uint32_t i, std::uint32_t j) {
    ++stats.edges_processed;
    const auto edge_ordinal = static_cast<std::uint32_t>(row_edges.size());
    row_edges.push_back(j);
    matrix.ForEachValidPair(
        i, j, [&](std::uint32_t k, std::size_t ra, std::size_t cb) {
          work.push_back(WorkItem{k, static_cast<std::uint32_t>(ra), j,
                                  static_cast<std::uint32_t>(cb),
                                  edge_ordinal});
        });
  };

  // Hub lane: the bank's lane rows against the (replicated) hub
  // columns. Runs first so the lane's lookups hit the warmed ways
  // before tail fills start competing for them.
  if (have_hubs) {
    for (std::uint32_t i = plan.hub_row_begin; i < plan.hub_row_end; ++i) {
      work.clear();
      row_edges.clear();
      rows.ForEachSetBit(i, [&](std::uint64_t j64) {
        const auto j = static_cast<std::uint32_t>(j64);
        if (plan.is_hub[j] == 0) return;
        gather_arc(i, j);
      });
      ProcessRowWork(matrix, i, spread, work, row_edges, row_edge_count,
                     stats, sink);
    }
  }
  // Tail tiles: rectangle-restricted arc enumeration, hubs excluded.
  for (const BankExecPlan::Tile& tile : plan.tiles) {
    for (std::uint32_t i = tile.row_begin; i < tile.row_end; ++i) {
      work.clear();
      row_edges.clear();
      rows.ForEachSetBitInRange(
          i, tile.col_begin, tile.col_end, [&](std::uint64_t j64) {
            const auto j = static_cast<std::uint32_t>(j64);
            if (plan.is_hub != nullptr && plan.is_hub[j] != 0) return;
            gather_arc(i, j);
          });
      ProcessRowWork(matrix, i, spread, work, row_edges, row_edge_count,
                     stats, sink);
    }
  }

  stats.cache = cache_.stats();
  stats.accumulated_bitcount = array_.accumulated_count();
  return stats;
}

}  // namespace tcim::arch
