// The PIM controller: executes Algorithm 1 ("TCIM: Triangle Counting
// with Processing-In-MRAM Architecture") against the functional
// computational array.
//
// Per the paper's dataflow (Fig. 4): the compressed graph (valid slice
// index + slice data) streams from the data buffer; for each non-zero
// A[i][j] the valid slice pairs (RiSk, CjSk) are enumerated; the row
// slice is staged into the set's staging row (once per (row, k) — the
// data-reuse "rows are overwritten" rule), the column slice is looked
// up in the set's cache ways (hit = reuse, miss = WRITE, full = LRU
// exchange), and a dual-row-activation AND feeds the bit counter.
//
// The run is *functionally verified*: the accumulated bit-counter
// total is the Eq. (5) sum computed entirely through simulated array
// operations.
//
// Layer: §7 arch — see docs/ARCHITECTURE.md. Units: every ExecStats
// field is a raw operation count (dimensionless); this layer carries
// no time or energy — core::PerfModel prices the counts with the
// nvsim::ArrayPerf per-op costs (seconds/joules, SI).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/mapper.h"
#include "arch/slice_cache.h"
#include "bitmatrix/sliced_matrix.h"
#include "pim/computational_array.h"

namespace tcim::arch {

/// Capacity accounting mode for the column cache (DESIGN.md §5).
enum class CapacityModel : std::uint8_t {
  /// Every array row segment holds one slice: ways = rows - 1.
  kDataOnly,
  /// Paper's space formula NVS*(|S|/8+4): the 4-byte valid-slice index
  /// is charged against array capacity, shrinking the usable ways by
  /// the factor (|S|/8) / (|S|/8 + 4). With |S|=64 this makes a 16 MB
  /// array hold ~1.4M slices — the accounting under which Table III's
  /// 16.8 MB graphs "will have to do data exchange" in a 16 MB array.
  kWithIndexOverhead,
};

/// Everything one execution produces (Fig. 5 / Table V inputs).
struct ExecStats {
  std::uint64_t edges_processed = 0;
  std::uint64_t valid_pairs = 0;       ///< = AND operations issued
  std::uint64_t row_slice_writes = 0;  ///< staging writes (per (i, set))
  std::uint64_t spread = 1;            ///< column spread used (mapper.h)
  std::uint64_t col_slice_writes = 0;  ///< cache fills (= cache misses)
  /// Hub-replica slices pre-loaded into the array before the run (the
  /// 2D runtime's warm-up). Load-time work: priced as write ENERGY by
  /// the perf model but kept out of TotalWrites() and the latency
  /// path — the replicas are installed while the graph is loaded, not
  /// on the per-query critical path.
  std::uint64_t replica_slice_writes = 0;
  std::uint64_t bitcount_words = 0;
  CacheStats cache;
  /// Raw Eq. (5) accumulator (NOT divided by the orientation
  /// multiplier; core::TcimAccelerator owns that interpretation).
  std::uint64_t accumulated_bitcount = 0;

  /// Host-kernel adaptive-policy routing (bit::PairPathCounters): how
  /// many valid pairs each kernel path consumed on the host Eq. (5)
  /// paths. Always zero for hardware-model runs — the simulated array
  /// never routes through the host dispatch.
  std::uint64_t host_pairs_batched = 0;
  std::uint64_t host_pairs_zero_copy = 0;
  std::uint64_t host_pairs_per_pair = 0;

  /// Per-subarray AND / WRITE counts — the inputs of the
  /// critical-path ("parallel") latency model in core::PerfModel.
  std::vector<std::uint64_t> per_subarray_ands;
  std::vector<std::uint64_t> per_subarray_writes;

  /// Fraction of column loads avoided by reuse — the paper's "saves on
  /// average 72% memory WRITE operations" metric.
  [[nodiscard]] double WriteSavings() const noexcept {
    return cache.HitRate();
  }
  /// Total slice writes into the array.
  [[nodiscard]] std::uint64_t TotalWrites() const noexcept {
    return row_slice_writes + col_slice_writes;
  }
};

/// Controller configuration.
struct ControllerConfig {
  ReplacementPolicy policy = ReplacementPolicy::kLru;
  CapacityModel capacity_model = CapacityModel::kWithIndexOverhead;
  std::uint64_t rng_seed = 1;  ///< for the random replacement ablation
  /// Column-spread override: 0 = auto (fill the array, mapper.h), 1 =
  /// the paper's minimal one-set-per-slice-index mapping, n = fixed.
  std::uint64_t spread_override = 0;
};

/// Receives the per-edge BitCount results during a Controller run.
/// Used by the k-truss extension, where the AND+BitCount of one edge
/// (i, j) *is* that edge's triangle support.
class EdgeCountSink {
 public:
  virtual ~EdgeCountSink() = default;
  /// Called once per non-zero A[i][j] with the accumulated BitCount of
  /// all its valid slice pairs (0 when the edge closes no triangle).
  virtual void OnEdge(std::uint32_t i, std::uint32_t j,
                      std::uint64_t bitcount) = 0;
};

/// One bank's 2D execution plan in pure arch terms — the runtime layer
/// translates its runtime::TilePlan2d into this so arch stays
/// independent of the partitioner. Region semantics: the hub lane
/// processes arcs A[i][j] with i in [hub_row_begin, hub_row_end) and
/// is_hub[j]; each tile processes arcs inside its rectangle with
/// !is_hub[j]. The caller guarantees the regions cover each of the
/// bank's arcs exactly once.
struct BankExecPlan {
  struct Tile {
    std::uint32_t row_begin = 0;
    std::uint32_t row_end = 0;  ///< exclusive
    std::uint32_t col_begin = 0;
    std::uint32_t col_end = 0;  ///< exclusive
  };
  std::uint32_t hub_row_begin = 0;
  std::uint32_t hub_row_end = 0;  ///< exclusive
  /// Sorted hub column ids; their slices are warmed into the bank's
  /// cache + array before execution (the replica pre-load).
  std::vector<std::uint32_t> hub_cols;
  /// num_vertices entries, or nullptr when hub_cols is empty.
  const std::uint8_t* is_hub = nullptr;
  std::vector<Tile> tiles;
};

class Controller {
 public:
  /// The array defines the geometry; the controller builds its mapper
  /// and cache bookkeeping around it.
  Controller(pim::ComputationalArray& array, const ControllerConfig& config);

  /// Runs Algorithm 1 over the whole compressed matrix and returns the
  /// statistics. The array's accumulated bit-counter total equals
  /// stats.accumulated_bitcount afterwards. If `sink` is non-null it
  /// receives every edge's individual BitCount.
  [[nodiscard]] ExecStats Run(const bit::SlicedMatrix& matrix,
                              EdgeCountSink* sink = nullptr);

  /// Runs Algorithm 1 over rows [row_begin, row_end) only — the shard
  /// unit of the multi-bank runtime (runtime::BankPool). Column lookups
  /// still see the whole matrix, so the per-edge counts are identical
  /// to a full run's: partitioning the row space across disjoint ranges
  /// partitions the accumulated bitcount exactly. Throws
  /// std::out_of_range on an invalid range.
  [[nodiscard]] ExecStats RunRows(const bit::SlicedMatrix& matrix,
                                  std::uint32_t row_begin,
                                  std::uint32_t row_end,
                                  EdgeCountSink* sink = nullptr);

  /// Runs one bank's 2D plan: warms the hub replicas into the cache +
  /// array (counted in stats.replica_slice_writes, not in the lookup
  /// stats), then executes the hub lane and the tail tiles. Cache and
  /// bit-counter state are cumulative across calls, so use a fresh
  /// controller per run (as BankPool does). Throws std::out_of_range
  /// on a plan that exceeds the matrix's vertex range.
  [[nodiscard]] ExecStats RunPlan(const bit::SlicedMatrix& matrix,
                                  const BankExecPlan& plan,
                                  EdgeCountSink* sink = nullptr);

  [[nodiscard]] const SliceMapper& mapper() const noexcept { return mapper_; }
  [[nodiscard]] const SliceCache& cache() const noexcept { return cache_; }

 private:
  static std::uint32_t EffectiveWays(const nvsim::ArrayConfig& config,
                                     const ControllerConfig& controller);

  struct WorkItem;
  /// Executes one pivot row's gathered work (set-grouped sort, staging
  /// writes, cache lookups, ANDs, sink flush) — the inner loop shared
  /// by RunRows and RunPlan. `work`/`row_edges` are the caller's
  /// gather output; `row_edge_count` is reusable scratch.
  void ProcessRowWork(const bit::SlicedMatrix& matrix, std::uint32_t i,
                      std::uint64_t spread, std::vector<WorkItem>& work,
                      const std::vector<std::uint32_t>& row_edges,
                      std::vector<std::uint64_t>& row_edge_count,
                      ExecStats& stats, EdgeCountSink* sink);
  /// Pre-loads every valid slice of `hub_cols` into the cache + array.
  void WarmReplicas(const bit::SlicedMatrix& matrix,
                    const std::vector<std::uint32_t>& hub_cols,
                    std::uint64_t spread, ExecStats& stats);

  pim::ComputationalArray& array_;
  ControllerConfig config_;
  SliceMapper mapper_;
  SliceCache cache_;
};

}  // namespace tcim::arch
