#!/usr/bin/env python3
"""Markdown link-and-anchor checker for the repo's doc set.

Validates every inline link in the checked Markdown files:
  * relative file links must resolve to an existing file or directory
    (relative to the linking file);
  * fragment links (``file.md#anchor`` or ``#anchor``) must match a
    heading in the target file, using GitHub's heading-slug rules;
  * absolute http(s)/mailto links are skipped (offline CI).

Links inside fenced code blocks and inline code spans are ignored.

Usage:  check_md_links.py [repo_root]
Exit status 0 when every link resolves, 1 otherwise (one line per
broken link). Registered as the ``markdown_links`` ctest and run in
CI so the doc set cannot rot silently.
"""

import re
import sys
from pathlib import Path

# Files under the repo root to check: the top-level docs and docs/.
CHECKED_GLOBS = ["README.md", "CHANGES.md", "ROADMAP.md", "docs/*.md"]

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
CODE_SPAN_RE = re.compile(r"`[^`]*`")


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug: strip markup, lowercase, keep word chars,
    hyphens and spaces, spaces to hyphens, -N suffix for repeats."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)  # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"[*_]", "", text)  # emphasis markers
    slug = "".join(c for c in text.lower() if c.isalnum() or c in "- _")
    slug = slug.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_anchors(path: Path) -> set:
    anchors = set()
    seen: dict = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    return anchors


def iter_links(path: Path):
    in_fence = False
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        stripped = CODE_SPAN_RE.sub("", line)
        for regex in (LINK_RE, IMAGE_RE):
            for match in regex.finditer(stripped):
                yield line_no, match.group(1)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    files = sorted(
        {f for pattern in CHECKED_GLOBS for f in root.glob(pattern)}
    )
    if not files:
        print(f"check_md_links: no Markdown files found under {root}")
        return 1

    anchor_cache: dict = {}
    errors = []
    for md in files:
        for line_no, target in iter_links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # URL scheme
                continue
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (md.parent / raw_path).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md}:{line_no}: broken link target '{target}'"
                    )
                    continue
            else:
                resolved = md.resolve()
            if fragment:
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    continue  # anchors into non-Markdown: not checkable
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = heading_anchors(resolved)
                if fragment.lower() not in anchor_cache[resolved]:
                    errors.append(
                        f"{md}:{line_no}: broken anchor '#{fragment}' "
                        f"in '{target}'"
                    )

    for error in errors:
        print(error)
    checked = ", ".join(str(f.relative_to(root)) for f in files)
    if errors:
        print(f"check_md_links: {len(errors)} broken link(s) in [{checked}]")
        return 1
    print(f"check_md_links: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
