#!/usr/bin/env python3
"""Repo-invariant linter: freezes the conventions the tree maintains by hand.

Four rules, each of which was previously enforced only by review:

  layer-dag      The ARCHITECTURE.md include DAG. Every `#include "dir/..."`
                 edge between two directories under src/ must point strictly
                 downward in the layer order (util at the bottom, runtime at
                 the top). A back-edge — e.g. a util header including
                 runtime/ — is the layering violation nine PRs have avoided
                 by convention.
  env-sync       Every TCIM_* environment variable the code reads (a
                 "TCIM_FOO" string literal in src/bench/examples/tests)
                 must be documented in README.md or docs/*.md, and every
                 TCIM_* name those documents mention must exist — as a code
                 read or as a CMakeLists.txt option/variable. Names starting
                 with TCIM_TEST_ are test-internal knobs and exempt from the
                 documentation requirement.
  header-banner  Every public header under src/ carries the layer banner:
                 a `Layer: §N` line referencing ARCHITECTURE (the repo's
                 paper-to-code cross-reference convention).
  tsa-escape     TCIM_NO_THREAD_SAFETY_ANALYSIS is reserved for the
                 annotated-wrapper internals (src/util/mutex.h and the macro
                 definition in src/util/thread_annotations.h). Any other use
                 silently blinds `clang++ -Werror=thread-safety` and must
                 instead fix the lock discipline or take a reviewed
                 exemption here.

Usage:
  lint_tcim.py [REPO_ROOT]      lint the repo (default: parent of tools/)
  lint_tcim.py --self-test      seed one violation of each rule in a
                                scratch tree and assert each is caught
                                (and that the clean fixture passes)

Exit status 0 when clean, 1 with one `rule: file: message` line per
violation otherwise. Registered as the `lint_tcim` / `lint_tcim_selftest`
ctest entries and run by the clang-analysis CI leg.
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

# ---------------------------------------------------------------------------
# Rule 1: the layer include DAG (docs/ARCHITECTURE.md section numbers).
#
# An include edge dir_a -> dir_b (a file in src/dir_a including
# "dir_b/...") is legal iff RANK[dir_b] < RANK[dir_a]. Equal ranks are
# peers (obs/graph/device share an altitude) and must not include each
# other. A directory missing from this map is itself an error: adding a
# layer means placing it in the order here and in ARCHITECTURE.md.
# ---------------------------------------------------------------------------

LAYER_RANK = {
    "util": 0,        # §1  — under everything
    "obs": 1,         # §14 — beside util, above only it
    "graph": 1,       # §2
    "device": 1,      # §3
    "nvsim": 2,       # §4  — device physics consumer
    "bitmatrix": 2,   # §5 + §12 kernel backends
    "pim": 3,         # §6
    "baseline": 3,    # §9
    "arch": 4,        # §7
    "stream": 4,      # §11 — below runtime, above bitmatrix/graph
    "core": 5,        # §8
    "runtime": 6,     # §10 + §13 — the top of the library
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z_0-9]+)/', re.MULTILINE)
ENV_LITERAL_RE = re.compile(r'"(TCIM_[A-Z0-9_]+)"')
ENV_NAME_RE = re.compile(r"\b(TCIM_[A-Z0-9_]+)\b")
BANNER_RE = re.compile(r"Layer: §\d+")
ESCAPE_MACRO = "TCIM_NO_THREAD_SAFETY_ANALYSIS"

# Files allowed to say TCIM_NO_THREAD_SAFETY_ANALYSIS (repo-relative).
TSA_ESCAPE_ALLOWLIST = {
    "src/util/thread_annotations.h",   # defines the macro
    "src/util/mutex.h",                # CondVar::Wait release/reacquire
    "tests/annotations_test.cpp",      # stringizes it to prove the no-op
}

# Documented names that are build-system knobs, not env reads: they
# must appear in CMakeLists.txt instead of code.
CMAKE_FILES = ("CMakeLists.txt",)


def _sources(root: Path, subdir: str, exts: tuple[str, ...]) -> list[Path]:
    base = root / subdir
    if not base.is_dir():
        return []
    return sorted(p for p in base.rglob("*") if p.suffix in exts and p.is_file())


def _read(path: Path) -> str:
    return path.read_text(encoding="utf-8", errors="replace")


def check_layer_dag(root: Path) -> list[str]:
    errors = []
    for path in _sources(root, "src", (".h", ".cpp")):
        rel = path.relative_to(root)
        src_dir = rel.parts[1]
        if src_dir not in LAYER_RANK:
            errors.append(
                f"layer-dag: {rel}: directory src/{src_dir} is not in the "
                f"layer order — add it to LAYER_RANK and docs/ARCHITECTURE.md"
            )
            continue
        for dep in INCLUDE_RE.findall(_read(path)):
            if dep == src_dir:
                continue  # intra-layer includes are free
            if dep not in LAYER_RANK:
                # Not a src/ layer include (e.g. a bench-local header).
                continue
            if LAYER_RANK[dep] >= LAYER_RANK[src_dir]:
                errors.append(
                    f"layer-dag: {rel}: includes \"{dep}/...\" but "
                    f"{dep} (rank {LAYER_RANK[dep]}) is not below "
                    f"{src_dir} (rank {LAYER_RANK[src_dir]}) — back-edge "
                    f"in the §-layer DAG"
                )
    return errors


def check_env_sync(root: Path) -> list[str]:
    errors = []
    code_reads: dict[str, Path] = {}
    for subdir in ("src", "bench", "examples", "tests"):
        for path in _sources(root, subdir, (".h", ".cpp")):
            for name in ENV_LITERAL_RE.findall(_read(path)):
                code_reads.setdefault(name, path.relative_to(root))

    doc_names: set[str] = set()
    doc_files = [root / "README.md"] + _sources(root, "docs", (".md",))
    for path in doc_files:
        if path.is_file():
            doc_names.update(ENV_NAME_RE.findall(_read(path)))

    cmake_names: set[str] = set()
    for name in CMAKE_FILES:
        path = root / name
        if path.is_file():
            cmake_names.update(ENV_NAME_RE.findall(_read(path)))

    for name, where in sorted(code_reads.items()):
        if name.startswith("TCIM_TEST_"):
            continue  # test-internal knobs; not operator surface
        if name not in doc_names:
            errors.append(
                f"env-sync: {where}: reads ${name} but no README.md/docs/*.md "
                f"documents it"
            )

    for name in sorted(doc_names):
        if name in code_reads or name in cmake_names:
            continue
        # Macro vocabulary (TCIM_GUARDED_BY etc.) legitimately appears in
        # docs without being an env var; only flag names that look like
        # documented knobs nothing defines anywhere.
        if name in _macro_vocabulary(root):
            continue
        errors.append(
            f"env-sync: docs mention {name} but nothing reads it in "
            f"src/bench/examples/tests or defines it in CMakeLists.txt"
        )
    return errors


def _macro_vocabulary(root: Path) -> set[str]:
    """TCIM_* names #define'd in source (annotation macros, feature
    guards) — documented freely, never env vars."""
    names: set[str] = set()
    define_re = re.compile(r"^\s*#\s*define\s+(TCIM_[A-Z0-9_]+)", re.MULTILINE)
    for path in _sources(root, "src", (".h", ".cpp")):
        names.update(define_re.findall(_read(path)))
    return names


def check_header_banner(root: Path) -> list[str]:
    errors = []
    for path in _sources(root, "src", (".h",)):
        text = _read(path)
        rel = path.relative_to(root)
        if not BANNER_RE.search(text):
            errors.append(
                f"header-banner: {rel}: missing the `Layer: §N` banner line "
                f"(see docs/ARCHITECTURE.md layer numbers)"
            )
        elif "ARCHITECTURE" not in text:
            errors.append(
                f"header-banner: {rel}: `Layer:` banner does not reference "
                f"docs/ARCHITECTURE.md"
            )
    return errors


def check_tsa_escape(root: Path) -> list[str]:
    errors = []
    for subdir in ("src", "bench", "examples", "tests"):
        for path in _sources(root, subdir, (".h", ".cpp")):
            rel = path.relative_to(root)
            if str(rel) in TSA_ESCAPE_ALLOWLIST:
                continue
            for i, line in enumerate(_read(path).splitlines(), start=1):
                if ESCAPE_MACRO in line:
                    errors.append(
                        f"tsa-escape: {rel}:{i}: {ESCAPE_MACRO} outside the "
                        f"wrapper allowlist — fix the lock discipline or add "
                        f"a reviewed exemption in tools/lint_tcim.py"
                    )
    return errors


CHECKS = {
    "layer-dag": check_layer_dag,
    "env-sync": check_env_sync,
    "header-banner": check_header_banner,
    "tsa-escape": check_tsa_escape,
}


def lint(root: Path) -> list[str]:
    errors: list[str] = []
    for check in CHECKS.values():
        errors.extend(check(root))
    return errors


# ---------------------------------------------------------------------------
# Self-test: a minimal clean fixture must pass every rule, then one
# seeded violation per rule must be caught by exactly that rule.
# ---------------------------------------------------------------------------

_CLEAN_HEADER = (
    "// Widget.\n"
    "// Layer: §1 util — see docs/ARCHITECTURE.md. Units: dimensionless.\n"
    "#pragma once\n"
)


def _write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")


def _make_clean_fixture(root: Path) -> None:
    _write(root / "src/util/widget.h", _CLEAN_HEADER)
    _write(
        root / "src/runtime/svc.h",
        '// Svc.\n// Layer: §10 runtime — see docs/ARCHITECTURE.md.\n'
        '#pragma once\n#include "util/widget.h"\n',
    )
    _write(
        root / "src/runtime/svc.cpp",
        '#include "runtime/svc.h"\n'
        'static const char* k = "TCIM_SCALE";\n',
    )
    _write(root / "README.md", "Set TCIM_SCALE to shrink workloads.\n")
    _write(root / "CMakeLists.txt", "project(fixture)\n")


def self_test() -> int:
    failures = []

    def expect(name: str, errors: list[str], rule: str, needle: str) -> None:
        hits = [e for e in errors if e.startswith(rule + ":") and needle in e]
        if not hits:
            failures.append(
                f"self-test {name}: expected a `{rule}` violation mentioning "
                f"{needle!r}, got: {errors or '[]'}"
            )

    with tempfile.TemporaryDirectory(prefix="lint_tcim_selftest_") as tmp:
        root = Path(tmp)

        _make_clean_fixture(root)
        clean = lint(root)
        if clean:
            failures.append(f"self-test clean fixture: expected no errors, got {clean}")

        # layer back-edge: util including runtime.
        _make_clean_fixture(root)
        _write(
            root / "src/util/widget.h",
            _CLEAN_HEADER + '#include "runtime/svc.h"\n',
        )
        expect("layer back-edge", lint(root), "layer-dag", "src/util/widget.h")

        # undocumented env var read.
        _make_clean_fixture(root)
        _write(
            root / "src/runtime/svc.cpp",
            '#include "runtime/svc.h"\n'
            'static const char* k = "TCIM_UNDOCUMENTED_KNOB";\n',
        )
        expect("undocumented env var", lint(root), "env-sync",
               "TCIM_UNDOCUMENTED_KNOB")

        # documented-but-phantom env var.
        _make_clean_fixture(root)
        _write(root / "README.md",
               "Set TCIM_SCALE. Also TCIM_PHANTOM_KNOB does nothing.\n")
        expect("phantom documented var", lint(root), "env-sync",
               "TCIM_PHANTOM_KNOB")

        # missing header banner.
        _make_clean_fixture(root)
        _write(root / "src/util/widget.h", "// Widget, no banner.\n#pragma once\n")
        expect("missing banner", lint(root), "header-banner",
               "src/util/widget.h")

        # thread-safety-analysis escape outside the allowlist.
        _make_clean_fixture(root)
        _write(
            root / "src/runtime/svc.cpp",
            '#include "runtime/svc.h"\n'
            'static const char* k = "TCIM_SCALE";\n'
            "void F() TCIM_NO_THREAD_SAFETY_ANALYSIS {}\n",
        )
        expect("tsa escape", lint(root), "tsa-escape", "src/runtime/svc.cpp")

    if failures:
        print("\n".join(failures))
        return 1
    print("lint_tcim self-test: all seeded violations caught; clean fixture passes")
    return 0


def main(argv: list[str]) -> int:
    if "--self-test" in argv:
        return self_test()
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    errors = lint(root)
    if errors:
        print("\n".join(errors))
        print(f"lint_tcim: {len(errors)} violation(s)")
        return 1
    print("lint_tcim: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
